// Cross-cutting invariants swept over modes, populations, and channel
// conditions — the properties every configuration of the library must
// satisfy regardless of parameters.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analytical/delay.hpp"
#include "analytical/throughput.hpp"
#include "analytical/utility.hpp"
#include "game/equilibrium.hpp"

namespace smac {
namespace {

using Case = std::tuple<phy::AccessMode, int, double>;  // mode, n, PER

class InvariantSweep : public ::testing::TestWithParam<Case> {
 protected:
  phy::Parameters params_ = phy::Parameters::paper();

  void SetUp() override {
    params_.packet_error_rate = std::get<2>(GetParam());
  }
};

TEST_P(InvariantSweep, FixedPointIsConsistent) {
  const auto [mode, n, per] = GetParam();
  (void)mode;
  const auto state = analytical::solve_network_homogeneous(
      64.0, n, params_.max_backoff_stage, per);
  // τ, p in range and mutually consistent.
  EXPECT_GT(state.tau[0], 0.0);
  EXPECT_LT(state.tau[0], 1.0);
  EXPECT_GE(state.p[0], 0.0);
  EXPECT_LT(state.p[0], 1.0);
  const double p_check = 1.0 - std::pow(1.0 - state.tau[0], n - 1);
  EXPECT_NEAR(state.p[0], p_check, 1e-9);
}

TEST_P(InvariantSweep, ChannelProbabilitiesPartition) {
  const auto [mode, n, per] = GetParam();
  const auto state = analytical::solve_network_homogeneous(
      48.0, n, params_.max_backoff_stage, per);
  const auto m = analytical::channel_metrics(state.tau, params_, mode);
  // Idle + success + collision probabilities sum to 1.
  double p_succ = 0.0;
  for (double s : m.per_node_success) p_succ += s;
  const double p_idle = 1.0 - m.p_tr;
  const double p_coll = m.p_tr - p_succ;
  EXPECT_NEAR(p_idle + p_succ + p_coll, 1.0, 1e-12);
  EXPECT_GE(p_coll, -1e-12);
  // Average slot length bounded by its extremes.
  const auto t = params_.slot_times(mode);
  EXPECT_GE(m.t_slot_us, t.sigma_us - 1e-9);
  EXPECT_LE(m.t_slot_us, std::max(t.ts_us, t.tc_us) + 1e-9);
}

TEST_P(InvariantSweep, UtilityBoundedByPhysics) {
  const auto [mode, n, per] = GetParam();
  // No node can earn faster than one gain per T_s (back-to-back
  // deliveries with zero overhead).
  const auto t = params_.slot_times(mode);
  for (int w : {2, 32, 512}) {
    const double u = analytical::homogeneous_utility_rate(w, n, params_, mode);
    EXPECT_LT(u, params_.gain / t.ts_us);
    EXPECT_GT(u, -params_.cost / t.sigma_us);  // cannot lose faster than
                                               // paying e every σ-slot
  }
}

TEST_P(InvariantSweep, EfficientNeExistsAndIsInterior) {
  const auto [mode, n, per] = GetParam();
  const game::StageGame game(params_, mode);
  const game::EquilibriumFinder finder(game, n);
  const int w_star = finder.efficient_cw();
  EXPECT_GE(w_star, 1);
  EXPECT_LT(w_star, params_.w_max);  // never pinned at the cap
  // Local optimality (discrete second-order condition).
  const double u_star = game.homogeneous_utility_rate(w_star, n);
  if (w_star > 1) {
    EXPECT_GE(u_star, game.homogeneous_utility_rate(w_star - 1, n));
  }
  EXPECT_GE(u_star, game.homogeneous_utility_rate(w_star + 1, n));
}

TEST_P(InvariantSweep, DelayThroughputDuality) {
  const auto [mode, n, per] = GetParam();
  // Per-node delivery rate × mean delay ≈ 1 (Little's-law flavor of the
  // geometric service model).
  const auto state = analytical::solve_network_homogeneous(
      64.0, n, params_.max_backoff_stage, per);
  const auto metrics = analytical::channel_metrics(state.tau, params_, mode);
  const auto delay = analytical::access_delays(state, params_, mode)[0];
  const double q = state.tau[0] * (1.0 - state.p[0]);
  const double rate_per_us = q / metrics.t_slot_us;
  EXPECT_NEAR(rate_per_us * delay.mean_us, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvariantSweep,
    ::testing::Combine(::testing::Values(phy::AccessMode::kBasic,
                                         phy::AccessMode::kRtsCts),
                       ::testing::Values(2, 7, 25),
                       ::testing::Values(0.0, 0.2)));

}  // namespace
}  // namespace smac
