// Compile-and-smoke test of the umbrella header: every public module is
// reachable through one include, and the README's one-liner works.
#include "smac.hpp"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, ReadmeOneLinerWorks) {
  const auto w = smac::game::EquilibriumFinder(
                     smac::game::StageGame(smac::phy::Parameters::paper(),
                                           smac::phy::AccessMode::kBasic),
                     10)
                     .efficient_cw();
  EXPECT_GT(w, 100);
  EXPECT_LT(w, 300);
}

TEST(UmbrellaTest, EveryNamespaceIsReachable) {
  smac::util::Rng rng(1);
  EXPECT_LT(rng.uniform01(), 1.0);
  EXPECT_GT(smac::phy::Parameters::paper().payload_us(), 0.0);
  EXPECT_GT(smac::analytical::transmission_probability(32, 0.1, 6), 0.0);
  smac::sim::SimConfig sim_config;
  EXPECT_EQ(sim_config.arrival_rate_pps, 0.0);
  smac::multihop::Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

}  // namespace
