// Assertions pinning the paper's headline quantitative claims (at
// test-friendly scale; the full-scale numbers live in the bench harness).
#include <gtest/gtest.h>

#include <algorithm>

#include "game/deviation.hpp"
#include "game/equilibrium.hpp"
#include "game/repeated_game.hpp"
#include "multihop/local_game.hpp"
#include "multihop/multihop_simulator.hpp"

namespace smac {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();

TEST(PaperResultsTest, TableII_BasicNeWindows) {
  const game::StageGame game(kParams, phy::AccessMode::kBasic);
  const struct { int n; int w_paper; } rows[] = {{5, 76}, {20, 336}, {50, 879}};
  for (const auto& row : rows) {
    const int w = game::EquilibriumFinder(game, row.n).efficient_cw();
    EXPECT_NEAR(w, row.w_paper, 0.05 * row.w_paper) << "n=" << row.n;
  }
}

TEST(PaperResultsTest, TableIII_RtsCtsMuchSmallerAndGrowing) {
  // Paper Table III: 22/48/116. The paper derives these from the Q-root
  // (T_s ≈ T_c approximation); our continuous Q-root matches the n = 20
  // and n = 50 entries well. Assert shape + the Q-root proximity.
  const game::StageGame game(kParams, phy::AccessMode::kRtsCts);
  const auto w20 = game::EquilibriumFinder(game, 20).w_star_continuous();
  const auto w50 = game::EquilibriumFinder(game, 50).w_star_continuous();
  ASSERT_TRUE(w20 && w50);
  EXPECT_NEAR(*w20, 48.0, 5.0);
  EXPECT_NEAR(*w50, 116.0, 10.0);
  const int d5 = game::EquilibriumFinder(game, 5).efficient_cw();
  const int d20 = game::EquilibriumFinder(game, 20).efficient_cw();
  const int d50 = game::EquilibriumFinder(game, 50).efficient_cw();
  EXPECT_LT(d5, d20);
  EXPECT_LT(d20, d50);
}

TEST(PaperResultsTest, Figure23_EfficientNeIsRobustPlateau) {
  // "CW values near W_c* yield almost the same global and local payoff":
  // ±20% around W_c* must stay within a few percent of the peak.
  for (auto mode : {phy::AccessMode::kBasic, phy::AccessMode::kRtsCts}) {
    const game::StageGame game(kParams, mode);
    const int n = 20;
    const int w_star = game::EquilibriumFinder(game, n).efficient_cw();
    const double peak = game.normalized_global_payoff(w_star, n);
    for (double f : {0.8, 0.9, 1.1, 1.2}) {
      const int w = static_cast<int>(w_star * f);
      const double payoff = game.normalized_global_payoff(w, n);
      EXPECT_GT(payoff, 0.97 * peak)
          << to_string(mode) << " w=" << w << " vs w*=" << w_star;
    }
  }
}

TEST(PaperResultsTest, SectionVD_ShortSightedDegradesNetwork) {
  // A short-sighted deviator gains, the network as a whole loses.
  const game::StageGame game(kParams, phy::AccessMode::kBasic);
  const int n = 5;
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();
  const auto best = game::best_shortsighted_deviation(game, n, w_star, 0.1, 1);
  ASSERT_TRUE(best.outcome.profitable);
  // After TFT convergence to W_s, social welfare is strictly below W_c*'s.
  EXPECT_LT(game.social_welfare(best.w_s, n),
            game.social_welfare(w_star, n));
}

TEST(PaperResultsTest, SectionVE_MaliciousContagionViaTft) {
  // A malicious node dropping to a tiny window drags all TFT players with
  // it and crushes social welfare.
  const game::StageGame game(kParams, phy::AccessMode::kBasic);
  std::vector<std::unique_ptr<game::Strategy>> pop;
  pop.push_back(std::make_unique<game::MaliciousStrategy>(76, 2, 1));
  for (int i = 0; i < 4; ++i) {
    pop.push_back(std::make_unique<game::TitForTat>(76));
  }
  game::RepeatedGameEngine engine(game, std::move(pop));
  const auto result = engine.play(4);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 2);
  // Welfare at the attacker's window is well below the efficient NE's
  // (≈ 71% here — the m = 6 exponential backoff absorbs part of the blow).
  EXPECT_LT(game.social_welfare(2, 5), 0.8 * game.social_welfare(76, 5));

  // Without backoff headroom (m = 0) the same attack fully paralyzes the
  // network: negative social welfare, the paper's strongest §V.E claim.
  phy::Parameters bare = kParams;
  bare.max_backoff_stage = 0;
  const game::StageGame bare_game(bare, phy::AccessMode::kBasic);
  EXPECT_LT(bare_game.social_welfare(1, 5), 0.0);
}

TEST(PaperResultsTest, SectionVIIB_MultihopQuasiOptimality) {
  // Scaled-down §VII.B: static snapshot, 30 nodes, 600×600 m, range 250 m.
  // At the converged W_m each node must get a large fraction of its own
  // best payoff, and the global payoff must be near its sweep maximum.
  util::Rng rng(2024);
  std::vector<multihop::Vec2> pos;
  for (int i = 0; i < 30; ++i) {
    pos.push_back({rng.uniform_real(0, 600), rng.uniform_real(0, 600)});
  }
  const multihop::Topology topo(pos, 250.0);
  const game::StageGame game(kParams, phy::AccessMode::kRtsCts);
  const auto seeds = multihop::local_efficient_cw(topo, game);
  const auto conv = multihop::tft_min_convergence(topo, seeds);
  const int w_m = conv.converged_w;

  multihop::MultihopConfig config;
  config.seed = 5;
  multihop::MultihopSimulator sim(config, topo,
                                  std::vector<int>(30, w_m));
  const auto at_ne = sim.run_slots(120000);

  // Sweep the common window around W_m for the global curve.
  double best_global = at_ne.global_payoff_rate;
  for (double f : {0.5, 0.75, 1.5, 2.0, 3.0}) {
    const int w = std::max(1, static_cast<int>(w_m * f));
    sim.set_all_cw(w);
    best_global = std::max(best_global, sim.run_slots(120000).global_payoff_rate);
  }
  // Quasi-optimality: paper reports global payoff within ~3% of max; allow
  // extra slack for the scaled-down noisy run.
  EXPECT_GT(at_ne.global_payoff_rate, 0.85 * best_global);
}

TEST(PaperResultsTest, Headline_SelfishnessDoesNotCollapseNetwork) {
  // The paper's titular claim, end to end: long-sighted TFT players from
  // heterogeneous starts converge to a common window whose welfare is
  // within the NE set — no collapse (contrast with the myopic population
  // in repeated_game_test.cpp).
  const game::StageGame game(kParams, phy::AccessMode::kBasic);
  const int n = 5;
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();
  std::vector<std::unique_ptr<game::Strategy>> pop;
  for (int i = 0; i < n; ++i) {
    pop.push_back(std::make_unique<game::TitForTat>(w_star + 10 * i));
  }
  game::RepeatedGameEngine engine(game, std::move(pop));
  const auto result = engine.play(5);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, w_star);  // min of the initial windows
  EXPECT_GT(game.social_welfare(*result.converged_cw, n),
            0.95 * game.social_welfare(w_star, n));
}

}  // namespace
}  // namespace smac
