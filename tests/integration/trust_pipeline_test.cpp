// End-to-end "trust pipeline" integration: the §V.C search establishes the
// agreement, the ref-[3]-style detector guards it, and evidence-gated
// GTFT enforces it — the full operational story the paper sketches across
// §IV, §V.C and its citation of [3].
#include <gtest/gtest.h>

#include "game/equilibrium.hpp"
#include "sim/cw_estimator.hpp"
#include "sim/misbehavior_detector.hpp"
#include "sim/search_protocol.hpp"

namespace smac {
namespace {

TEST(TrustPipelineTest, SearchThenGuardThenEnforce) {
  const int n = 5;
  const phy::Parameters params = phy::Parameters::paper();
  const auto mode = phy::AccessMode::kRtsCts;
  const game::StageGame stage_game(params, mode);
  const int w_star = game::EquilibriumFinder(stage_game, n).efficient_cw();

  // --- Phase 1: the network searches for its efficient NE (§V.C). ---
  sim::SimConfig config;
  config.mode = mode;
  config.seed = 99;
  sim::Simulator simulator(config, std::vector<int>(n, 4));
  sim::SearchConfig search;
  search.w_start = 4;
  search.settle_us = 1e5;
  search.measure_us = 8e6;
  search.patience = 3;
  search.improvement_epsilon = 0.005;
  const auto found = sim::run_search(simulator, 0, search);
  const int w_agreed = found.w_found;
  // The agreement sits on the W_c* payoff plateau.
  const double u_found = stage_game.homogeneous_utility_rate(w_agreed, n);
  const double u_star = stage_game.homogeneous_utility_rate(w_star, n);
  ASSERT_GE(u_found, 0.93 * u_star);

  // --- Phase 2: the detector certifies the network compliant. ---
  const auto clean = simulator.run_slots(150000);
  for (const auto& verdict :
       sim::detect_misbehavior(clean, w_agreed, params.max_backoff_stage)) {
    EXPECT_FALSE(verdict.flagged);
  }

  // --- Phase 3: a cheater joins; detector-gated GTFT players flag and
  //     punish it. ---
  sim::SimConfig enforce_config;
  enforce_config.mode = mode;
  enforce_config.seed = 100;
  const int w_cheat = std::max(1, w_agreed / 4);
  sim::EstimatingRuntime runtime(
      enforce_config, static_cast<std::size_t>(n),
      [&](std::size_t i, auto estimates,
          auto flags) -> std::unique_ptr<game::Strategy> {
        if (i == n - 1) {
          return std::make_unique<game::ConstantStrategy>(w_cheat);
        }
        return std::make_unique<sim::DetectorGtft>(w_agreed, estimates,
                                                   flags);
      },
      6e6);
  const auto enforced = runtime.play(6);

  bool cheater_flagged = false;
  for (const auto& flags : enforced.flags_per_stage) {
    cheater_flagged |= flags.back();
  }
  EXPECT_TRUE(cheater_flagged);
  // Retaliation: honest players end at or near the cheater's window.
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_LE(enforced.history.back().cw[static_cast<std::size_t>(i)],
              w_cheat * 2);
  }
  // And the whole episode demonstrates §V.D economics: the cheater's
  // post-retaliation stage payoff is below what conforming at w_agreed
  // paid before it joined.
  const double u_conform = stage_game.homogeneous_stage_utility(w_agreed, n);
  const double u_after = enforced.history.back().utility.back();
  EXPECT_LT(u_after, u_conform);
}

}  // namespace
}  // namespace smac
