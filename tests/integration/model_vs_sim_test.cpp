// End-to-end cross-validation of the analytical model against the
// slot-level simulator — the same comparison the paper runs between its
// Markov model and NS-2 (Tables II/III), at test-sized scale.
#include <gtest/gtest.h>

#include "game/equilibrium.hpp"
#include "game/stage_game.hpp"
#include "sim/simulator.hpp"
#include "util/optimize.hpp"

namespace smac {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();

struct ModeCase {
  phy::AccessMode mode;
  int n;
};

class ModelVsSimSweep : public ::testing::TestWithParam<ModeCase> {};

TEST_P(ModelVsSimSweep, SimulatedPayoffPeaksNearModelNe) {
  // The simulated per-node payoff, swept over common windows, must peak
  // near the model's W_c* — this is exactly what the paper's Tables II/III
  // report (model W_c* vs simulated argmax).
  const auto [mode, n] = GetParam();
  const game::StageGame game(kParams, mode);
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();

  // Probe a geometric grid of windows around W_c*; the payoff measured at
  // W_c* must be within a few percent of the best payoff on the grid.
  // (The landscape near W_c* is a wide plateau — the paper's "robust and
  // tolerant" observation — so the *payoff* is the right metric, not the
  // exact argmax window, which wanders under measurement noise.)
  auto simulated_payoff = [&](int w) {
    sim::SimConfig config;
    config.mode = mode;
    config.seed = 1234 + static_cast<std::uint64_t>(w);
    sim::Simulator simulator(config, std::vector<int>(n, w));
    return simulator.run_slots(250000).payoff_rate[0];
  };
  double best_payoff = -1e30;
  for (double f : {0.25, 0.5, 0.75, 1.0, 1.5, 2.5, 4.0}) {
    const int w = std::max(1, static_cast<int>(w_star * f));
    best_payoff = std::max(best_payoff, simulated_payoff(w));
  }
  EXPECT_GE(simulated_payoff(w_star), 0.93 * best_payoff);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ModelVsSimSweep,
    ::testing::Values(ModeCase{phy::AccessMode::kBasic, 5},
                      ModeCase{phy::AccessMode::kRtsCts, 5},
                      ModeCase{phy::AccessMode::kRtsCts, 10}));

TEST(ModelVsSimTest, StageUtilityMatchesAcrossEngines) {
  // Measured stage payoff (sim) vs analytical stage utility at the same
  // profile, heterogeneous case.
  const std::vector<int> profile{30, 60, 120, 240};
  const game::StageGame game(kParams, phy::AccessMode::kBasic);
  const auto model_u = game.utility_rates(profile);

  sim::SimConfig config;
  config.seed = 77;
  sim::Simulator simulator(config, profile);
  const auto r = simulator.run_slots(400000);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    EXPECT_NEAR(r.payoff_rate[i], model_u[i],
                0.10 * std::abs(model_u[i]) + 1e-9)
        << "node " << i;
  }
}

TEST(ModelVsSimTest, GlobalPayoffCurveShapesAgree) {
  // Figure 2's qualitative shape, checked in simulation: payoff rises
  // from a tiny window toward W_c*, then falls well beyond it.
  const int n = 5;
  const game::StageGame game(kParams, phy::AccessMode::kBasic);
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();

  auto simulated_global = [&](int w) {
    sim::SimConfig config;
    config.seed = 31337;
    sim::Simulator simulator(config, std::vector<int>(n, w));
    const auto r = simulator.run_slots(150000);
    double total = 0.0;
    for (double u : r.payoff_rate) total += u;
    return total;
  };
  const double at_tiny = simulated_global(std::max(1, w_star / 16));
  const double at_star = simulated_global(w_star);
  const double at_huge = simulated_global(w_star * 12);
  EXPECT_GT(at_star, at_tiny);
  EXPECT_GT(at_star, at_huge);
}

}  // namespace
}  // namespace smac
