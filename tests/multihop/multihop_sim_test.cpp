#include "multihop/multihop_simulator.hpp"

#include <gtest/gtest.h>

#include "analytical/fixed_point_solver.hpp"

namespace smac::multihop {
namespace {

MultihopConfig make_config(std::uint64_t seed = 11) {
  MultihopConfig config;
  config.seed = seed;
  return config;
}

Topology clique(int n) {
  std::vector<Vec2> pos;
  for (int i = 0; i < n; ++i) {
    pos.push_back({static_cast<double>(i), 0.0});  // all within 250 m
  }
  return Topology(pos, 250.0);
}

Topology hidden_chain() {
  // A(0) – B(200) – C(400): A and C mutually hidden, both reach B.
  return Topology({{0, 0}, {200, 0}, {400, 0}}, 250.0);
}

TEST(MultihopSimTest, ValidatesConstruction) {
  EXPECT_THROW(MultihopSimulator(make_config(), clique(3), {16, 16}),
               std::invalid_argument);
}

TEST(MultihopSimTest, RejectsZeroSlots) {
  MultihopSimulator sim(make_config(), clique(3), {16, 16, 16});
  EXPECT_THROW(sim.run_slots(0), std::invalid_argument);
}

TEST(MultihopSimTest, CliqueHasNoHiddenLosses) {
  // In a complete graph every interferer is sender-visible, so the hidden
  // classification never fires and p_hn = 1.
  MultihopSimulator sim(make_config(1), clique(5), std::vector<int>(5, 16));
  const MultihopResult r = sim.run_slots(50000);
  for (const auto& node : r.node) {
    EXPECT_EQ(node.hidden_losses, 0u);
  }
  EXPECT_DOUBLE_EQ(r.aggregate_p_hn, 1.0);
}

TEST(MultihopSimTest, CliqueTauMatchesSingleHopModel) {
  const int n = 5;
  const int w = 22;
  MultihopSimulator sim(make_config(2), clique(n), std::vector<int>(n, w));
  const MultihopResult r = sim.run_slots(300000);
  const auto model = analytical::solve_network_homogeneous(w, n, 6);
  for (const auto& node : r.node) {
    EXPECT_NEAR(node.measured_tau, model.tau[0], 0.06 * model.tau[0]);
    EXPECT_NEAR(node.measured_p, model.p[0], 0.05);
  }
}

TEST(MultihopSimTest, HiddenChainProducesHiddenLosses) {
  MultihopSimulator sim(make_config(3), hidden_chain(),
                        std::vector<int>(3, 8));
  const MultihopResult r = sim.run_slots(200000);
  // Ends A and C cannot sense each other: hidden losses must appear.
  EXPECT_GT(r.node[0].hidden_losses + r.node[2].hidden_losses, 0u);
  EXPECT_LT(r.aggregate_p_hn, 1.0);
}

TEST(MultihopSimTest, IsolatedNodeIsHarmless) {
  const Topology t({{0, 0}, {100, 0}, {5000, 5000}}, 250.0);
  MultihopSimulator sim(make_config(4), t, {16, 16, 16});
  const MultihopResult r = sim.run_slots(20000);
  // The isolated node never counts attempts (nothing to send to)…
  EXPECT_EQ(r.node[2].attempts, 0u);
  // …and the connected pair behaves like a 2-clique.
  EXPECT_GT(r.node[0].successes, 0u);
  EXPECT_GT(r.node[1].successes, 0u);
}

TEST(MultihopSimTest, SpatialReuseBeatsSharedChannel) {
  // Two far-apart pairs can both deliver at full rate; a 4-clique shares
  // one channel. Per-node success counts must reflect the reuse.
  const Topology two_pairs({{0, 0}, {100, 0}, {5000, 0}, {5100, 0}}, 250.0);
  MultihopSimulator reuse(make_config(5), two_pairs, std::vector<int>(4, 16));
  MultihopSimulator shared(make_config(5), clique(4), std::vector<int>(4, 16));
  const MultihopResult rr = reuse.run_slots(50000);
  const MultihopResult rs = shared.run_slots(50000);
  std::uint64_t succ_reuse = 0;
  std::uint64_t succ_shared = 0;
  for (int i = 0; i < 4; ++i) {
    succ_reuse += rr.node[i].successes;
    succ_shared += rs.node[i].successes;
  }
  // Two independent collision domains outperform one shared domain; the
  // advantage is bounded by the idle-slot overhead each pair still pays
  // (measured ratio ≈ 1.48 at W = 16).
  EXPECT_GT(succ_reuse, succ_shared * 4 / 3);
}

TEST(MultihopSimTest, LocalTimeDiffersAcrossSpace) {
  // A node far from all traffic sees mostly idle σ-slots; a hub sees busy
  // periods. Local clocks must diverge.
  const Topology t({{0, 0}, {100, 0}, {5000, 5000}}, 250.0);
  MultihopSimulator sim(make_config(6), t, {8, 8, 1024});
  const MultihopResult r = sim.run_slots(50000);
  EXPECT_LT(r.node[2].local_time_us, r.node[0].local_time_us);
}

TEST(MultihopSimTest, DeterministicForSeed) {
  MultihopSimulator a(make_config(7), hidden_chain(), {16, 16, 16});
  MultihopSimulator b(make_config(7), hidden_chain(), {16, 16, 16});
  const MultihopResult ra = a.run_slots(20000);
  const MultihopResult rb = b.run_slots(20000);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ra.node[i].successes, rb.node[i].successes);
    EXPECT_EQ(ra.node[i].hidden_losses, rb.node[i].hidden_losses);
  }
}

TEST(MultihopSimTest, SetCwReshapesContention) {
  MultihopSimulator sim(make_config(8), clique(4), std::vector<int>(4, 256));
  const MultihopResult before = sim.run_slots(50000);
  sim.set_all_cw(4);
  const MultihopResult after = sim.run_slots(50000);
  EXPECT_GT(after.node[0].measured_tau, 5.0 * before.node[0].measured_tau);
  EXPECT_GT(after.node[0].measured_p, before.node[0].measured_p);
}

TEST(MultihopSimTest, UpdateTopologyPreservesNodeCount) {
  MultihopSimulator sim(make_config(9), clique(3), {16, 16, 16});
  sim.update_topology(hidden_chain());
  EXPECT_EQ(sim.topology().degree(1), 2u);
  EXPECT_THROW(sim.update_topology(clique(4)), std::invalid_argument);
}

TEST(MultihopSimTest, PHnRoughlyInsensitiveToCw) {
  // The paper's key §VI.A approximation: p_hn is nearly independent of CW
  // when windows are not too small. Compare p_hn at W = 16 vs W = 64 on a
  // hidden-node-rich random topology.
  std::vector<Vec2> pos;
  util::Rng rng(123);
  for (int i = 0; i < 40; ++i) {
    pos.push_back({rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)});
  }
  const Topology t(pos, 250.0);
  MultihopSimulator sim(make_config(10), t, std::vector<int>(40, 16));
  const double phn16 = sim.run_slots(150000).aggregate_p_hn;
  sim.set_all_cw(64);
  const double phn64 = sim.run_slots(150000).aggregate_p_hn;
  EXPECT_NEAR(phn16, phn64, 0.12);
}

}  // namespace
}  // namespace smac::multihop
