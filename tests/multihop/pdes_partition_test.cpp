// RegionPartition structure and dependency-coverage properties
// (docs/PDES.md): the partition must be a pure function of positions,
// its dependency graph must cover every cross-region pair within the
// 3·range interference lookahead (checked against the Θ(n²) oracle
// covers_dependencies), and the degenerate partitions must keep the
// same guarantee.
#include "multihop/pdes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "multihop/topology.hpp"
#include "util/rng.hpp"

namespace smac::multihop {
namespace {

Topology random_topology(util::Rng& rng, std::size_t n, double arena,
                         double range = 250.0) {
  std::vector<Vec2> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back({rng.uniform_real(0.0, arena), rng.uniform_real(0.0, arena)});
  }
  return Topology(pos, range);
}

void expect_well_formed(const RegionPartition& part, const Topology& topo) {
  const std::size_t n = topo.node_count();
  ASSERT_EQ(part.node_count(), n);
  EXPECT_DOUBLE_EQ(part.lookahead_m(), 3.0 * topo.range_m());

  // members/region_of/owned_pos are mutually consistent; members ascend.
  std::size_t covered = 0;
  for (std::size_t r = 0; r < part.region_count(); ++r) {
    const std::vector<std::size_t>& m = part.members(r);
    EXPECT_FALSE(m.empty()) << "empty region " << r;
    EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
    for (std::size_t k = 0; k < m.size(); ++k) {
      EXPECT_EQ(part.region_of(m[k]), r);
      EXPECT_EQ(part.owned_pos(m[k]), k);
    }
    covered += m.size();
  }
  EXPECT_EQ(covered, n);

  // deps: sorted, self-free, symmetric; edge count matches.
  std::size_t edges = 0;
  for (std::size_t r = 0; r < part.region_count(); ++r) {
    const std::vector<std::size_t>& d = part.deps(r);
    EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
    EXPECT_TRUE(std::adjacent_find(d.begin(), d.end()) == d.end());
    for (std::size_t q : d) {
      EXPECT_NE(q, r);
      ASSERT_LT(q, part.region_count());
      const std::vector<std::size_t>& back = part.deps(q);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), r))
          << "asymmetric dep " << r << " -> " << q;
    }
    edges += d.size();
  }
  EXPECT_EQ(part.dep_edge_count(), edges);

  EXPECT_TRUE(part.covers_dependencies(topo));
}

TEST(PdesOptions, ValidateRejectsBadInputs) {
  PdesOptions bad;
  bad.region_edge_factor = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.region_edge_factor = -2.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  PdesOptions both;
  both.single_region = true;
  both.region_per_node = true;
  EXPECT_THROW(both.validate(), std::invalid_argument);

  PdesOptions ok;
  EXPECT_NO_THROW(ok.validate());
}

TEST(RegionPartition, SingleRegionOwnsEverything) {
  util::Rng rng(11);
  const Topology topo = random_topology(rng, 40, 1200.0);
  PdesOptions opt;
  opt.single_region = true;
  const RegionPartition part(topo, opt);
  EXPECT_EQ(part.region_count(), 1u);
  EXPECT_TRUE(part.deps(0).empty());
  EXPECT_EQ(part.dep_edge_count(), 0u);
  expect_well_formed(part, topo);
}

TEST(RegionPartition, RegionPerNodeIsMaximal) {
  util::Rng rng(12);
  const Topology topo = random_topology(rng, 30, 900.0);
  PdesOptions opt;
  opt.region_per_node = true;
  const RegionPartition part(topo, opt);
  EXPECT_EQ(part.region_count(), topo.node_count());
  expect_well_formed(part, topo);
}

TEST(RegionPartition, TilePartitionCoversDependencies) {
  // Sweep densities so tiles range from mostly-empty to crowded.
  for (const double arena : {600.0, 1500.0, 3000.0}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      util::Rng rng(seed);
      const Topology topo = random_topology(rng, 70, arena);
      const RegionPartition part(topo, PdesOptions{});
      expect_well_formed(part, topo);
    }
  }
}

TEST(RegionPartition, SmallTilesStillCoverDependencies) {
  // Tiles smaller than the lookahead force dependencies beyond the
  // immediate 8 tile neighbors — the distance-based dependency scan must
  // not assume tile adjacency.
  util::Rng rng(5);
  const Topology topo = random_topology(rng, 60, 2000.0);
  PdesOptions opt;
  opt.region_edge_factor = 1.0;
  const RegionPartition part(topo, opt);
  EXPECT_GT(part.region_count(), 1u);
  expect_well_formed(part, topo);
}

TEST(RegionPartition, PureFunctionOfPositions) {
  util::Rng rng(9);
  const Topology topo = random_topology(rng, 50, 1400.0);
  const RegionPartition a(topo, PdesOptions{});
  const RegionPartition b(topo, PdesOptions{});
  ASSERT_EQ(a.region_count(), b.region_count());
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    EXPECT_EQ(a.region_of(i), b.region_of(i));
  }
  for (std::size_t r = 0; r < a.region_count(); ++r) {
    EXPECT_EQ(a.members(r), b.members(r));
    EXPECT_EQ(a.deps(r), b.deps(r));
  }
}

TEST(RegionPartition, EmptyAndSingleNodeBoundaries) {
  // Topology itself refuses zero nodes, so the partition never sees an
  // empty node set; the smallest real input is a lone node.
  EXPECT_THROW(Topology(std::vector<Vec2>{}, 250.0), std::invalid_argument);

  const Topology topo(std::vector<Vec2>{{10.0, 20.0}}, 250.0);
  const RegionPartition part(topo, PdesOptions{});
  EXPECT_EQ(part.node_count(), 1u);
  EXPECT_EQ(part.region_count(), 1u);
  EXPECT_EQ(part.region_of(0), 0u);
  EXPECT_TRUE(part.deps(0).empty());
  EXPECT_EQ(part.dep_edge_count(), 0u);
  EXPECT_TRUE(part.covers_dependencies(topo));
}

TEST(MultihopKernelNames, RoundTrip) {
  EXPECT_STREQ(to_string(MultihopKernel::kSlotLoop), "slot-loop");
  EXPECT_STREQ(to_string(MultihopKernel::kPdes), "pdes");
}

}  // namespace
}  // namespace smac::multihop
