// Differential tier (`ctest -L pdes`): the conservative PDES kernel must
// be BITWISE equal to the serial slot-loop oracle (run_multihop_slot_loop)
// on every cell of a seeded (n, density, mobility, churn, PER) grid, at
// worker counts 1 / 4 / 8 and under both degenerate partitions — results
// are a pure function of (seed, topology, profile, fault plan), never of
// scheduling. Every PDES window must also report zero lookahead
// violations and a horizon lead of at most one slot (docs/PDES.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "multihop/adaptive.hpp"
#include "multihop/mobility.hpp"
#include "multihop/multihop_simulator.hpp"
#include "multihop/pdes.hpp"
#include "multihop/topology.hpp"
#include "util/rng.hpp"

namespace smac::multihop {
namespace {

Topology random_topology(util::Rng& rng, std::size_t n, double arena,
                         double range = 250.0) {
  std::vector<Vec2> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back({rng.uniform_real(0.0, arena), rng.uniform_real(0.0, arena)});
  }
  return Topology(pos, range);
}

std::vector<int> random_profile(util::Rng& rng, std::size_t n) {
  static const int kWindows[] = {4, 8, 16, 32, 64, 128};
  std::vector<int> profile(n);
  for (std::size_t i = 0; i < n; ++i) {
    profile[i] = kWindows[rng.uniform_below(6)];
  }
  return profile;
}

/// Bitwise comparison of two windows: integer counters with EXPECT_EQ,
/// doubles with EXPECT_EQ as well — operator== on double demands the
/// exact same bits here (both kernels must run the identical
/// floating-point reduction), not closeness.
void expect_identical(const MultihopResult& pdes, const MultihopResult& oracle,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(pdes.node.size(), oracle.node.size());
  EXPECT_EQ(pdes.slots, oracle.slots);
  EXPECT_EQ(pdes.bad_state_slots, oracle.bad_state_slots);
  EXPECT_EQ(pdes.global_payoff_rate, oracle.global_payoff_rate);
  EXPECT_EQ(pdes.aggregate_p_hn, oracle.aggregate_p_hn);
  for (std::size_t i = 0; i < pdes.node.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    EXPECT_EQ(pdes.node[i].attempts, oracle.node[i].attempts);
    EXPECT_EQ(pdes.node[i].successes, oracle.node[i].successes);
    EXPECT_EQ(pdes.node[i].sender_collisions,
              oracle.node[i].sender_collisions);
    EXPECT_EQ(pdes.node[i].hidden_losses, oracle.node[i].hidden_losses);
    EXPECT_EQ(pdes.node[i].channel_losses, oracle.node[i].channel_losses);
    EXPECT_EQ(pdes.node[i].local_time_us, oracle.node[i].local_time_us);
    EXPECT_EQ(pdes.node[i].payoff_rate, oracle.node[i].payoff_rate);
    EXPECT_EQ(pdes.node[i].measured_tau, oracle.node[i].measured_tau);
    EXPECT_EQ(pdes.node[i].measured_p, oracle.node[i].measured_p);
    EXPECT_EQ(pdes.node[i].measured_p_hn, oracle.node[i].measured_p_hn);
  }
}

void expect_conservative(const PdesRunStats& stats) {
  EXPECT_EQ(stats.lookahead_violations, 0u);
  EXPECT_LE(stats.max_horizon_lead, 1u);
  EXPECT_GT(stats.regions, 0u);
}

/// One grid cell: the same (config, topology, profile, slots) through
/// the oracle and through the PDES kernel with `options`.
void run_cell(const MultihopConfig& base, const Topology& topo,
              const std::vector<int>& profile, std::uint64_t slots,
              const PdesOptions& options, const std::string& label) {
  const MultihopResult oracle =
      run_multihop_slot_loop(base, topo, profile, slots);

  MultihopConfig pdes = base;
  pdes.pdes = options;
  PdesRunStats stats;
  const MultihopResult parallel =
      run_multihop_pdes(pdes, topo, profile, slots, &stats);

  expect_identical(parallel, oracle, label);
  expect_conservative(stats);
  EXPECT_EQ(stats.slots, slots);
}

fault::SlotFaultPlan churn_and_bursts(std::size_t n) {
  fault::SlotFaultPlan plan;
  // Crash/join churn hitting several nodes at staggered slots, including
  // a same-slot crash+join pair (declaration order must be preserved).
  plan.events.push_back({120, 0 % n, fault::FaultKind::kCrash});
  plan.events.push_back({260, 1 % n, fault::FaultKind::kCrash});
  plan.events.push_back({300, 0 % n, fault::FaultKind::kJoin});
  plan.events.push_back({300, 2 % n, fault::FaultKind::kCrash});
  plan.events.push_back({450, 1 % n, fault::FaultKind::kJoin});
  plan.events.push_back({450, 2 % n, fault::FaultKind::kJoin});
  // Bursty channel: short Bad episodes with heavy extra loss.
  plan.channel.p_good_to_bad = 0.02;
  plan.channel.p_bad_to_good = 0.2;
  plan.channel.per_bad = 0.6;
  return plan;
}

TEST(PdesDifferential, GridDensityChurnPerAtAllJobs) {
  const std::size_t kJobs[] = {1, 4, 8};
  for (const std::size_t n : {24u, 80u}) {
    for (const double arena : {700.0, 1800.0}) {
      for (const bool faulty : {false, true}) {
        util::Rng rng(1000 + n + static_cast<std::uint64_t>(arena) +
                      (faulty ? 7 : 0));
        const Topology topo = random_topology(rng, n, arena);
        const std::vector<int> profile = random_profile(rng, n);
        MultihopConfig config;
        config.seed = 5000 + n;
        if (faulty) {
          config.faults = churn_and_bursts(n);
          config.params.packet_error_rate = 0.05;
        }
        for (const std::size_t jobs : kJobs) {
          PdesOptions opt;
          opt.jobs = jobs;
          run_cell(config, topo, profile, 600, opt,
                   "n=" + std::to_string(n) + " arena=" +
                       std::to_string(arena) + " faulty=" +
                       std::to_string(faulty) + " jobs=" +
                       std::to_string(jobs));
        }
      }
    }
  }
}

TEST(PdesDifferential, DegeneratePartitions) {
  util::Rng rng(77);
  const Topology topo = random_topology(rng, 40, 1100.0);
  const std::vector<int> profile = random_profile(rng, 40);
  MultihopConfig config;
  config.seed = 321;
  config.faults = churn_and_bursts(40);

  PdesOptions single;
  single.single_region = true;
  single.jobs = 4;
  run_cell(config, topo, profile, 700, single, "single-region");

  PdesOptions per_node;
  per_node.region_per_node = true;
  per_node.jobs = 4;
  run_cell(config, topo, profile, 700, per_node, "region-per-node");

  PdesOptions tiny_tiles;
  tiny_tiles.region_edge_factor = 1.0;
  tiny_tiles.jobs = 8;
  run_cell(config, topo, profile, 700, tiny_tiles, "edge-factor-1");
}

TEST(PdesDifferential, WindowSplitAndStateChaining) {
  // Post-window simulator state must also match: a 3x400-slot PDES run
  // must equal one 1200-slot oracle run window-for-window, with scripted
  // events crossing the window boundaries.
  util::Rng rng(13);
  const Topology topo = random_topology(rng, 30, 900.0);
  const std::vector<int> profile = random_profile(rng, 30);
  MultihopConfig config;
  config.seed = 99;
  config.faults = churn_and_bursts(30);

  MultihopConfig pdes_config = config;
  pdes_config.kernel = MultihopKernel::kPdes;
  pdes_config.pdes.jobs = 4;
  MultihopSimulator oracle(config, topo, profile);
  MultihopSimulator pdes(pdes_config, topo, profile);
  for (int w = 0; w < 3; ++w) {
    const MultihopResult a = oracle.run_slots(400);
    const MultihopResult b = pdes.run_slots(400);
    expect_identical(b, a, "window " + std::to_string(w));
    expect_conservative(pdes.last_pdes_stats());
    EXPECT_EQ(pdes.total_slots(), oracle.total_slots());
  }
}

TEST(PdesDifferential, MobilityRefreshRebuildsPartition) {
  // Random-waypoint motion between windows: update_topology must rebuild
  // the region partition and stay oracle-equal on the moved layout.
  MobilityConfig mob;
  mob.width_m = 1200.0;
  mob.height_m = 1200.0;
  mob.v_max_mps = 40.0;
  mob.seed = 4242;
  RandomWaypointModel mobility(mob, 35);

  util::Rng rng(55);
  const std::vector<int> profile = random_profile(rng, 35);
  MultihopConfig config;
  config.seed = 77;

  MultihopConfig pdes_config = config;
  pdes_config.kernel = MultihopKernel::kPdes;
  pdes_config.pdes.jobs = 4;

  Topology topo(mobility.positions(), 250.0);
  MultihopSimulator oracle(config, topo, profile);
  MultihopSimulator pdes(pdes_config, topo, profile);
  for (int w = 0; w < 3; ++w) {
    const MultihopResult a = oracle.run_slots(350);
    const MultihopResult b = pdes.run_slots(350);
    expect_identical(b, a, "window " + std::to_string(w));
    expect_conservative(pdes.last_pdes_stats());
    mobility.advance(30.0);
    Topology moved(mobility.positions(), 250.0);
    oracle.update_topology(moved);
    pdes.update_topology(moved);
  }
}

TEST(PdesDifferential, ManualCrashEqualsScriptedUnderPdes) {
  // set_node_active between windows == scripted crash at the boundary,
  // under the PDES kernel (the pinned oracle equivalence carries over).
  util::Rng rng(31);
  const Topology topo = random_topology(rng, 20, 700.0);
  const std::vector<int> profile = random_profile(rng, 20);

  MultihopConfig scripted;
  scripted.seed = 17;
  scripted.kernel = MultihopKernel::kPdes;
  scripted.pdes.jobs = 4;
  scripted.faults.events.push_back({250, 3, fault::FaultKind::kCrash});
  MultihopSimulator a(scripted, topo, profile);
  const MultihopResult full = a.run_slots(500);

  MultihopConfig manual = scripted;
  manual.faults.events.clear();
  MultihopSimulator b(manual, topo, profile);
  const MultihopResult first = b.run_slots(250);
  b.set_node_active(3, false);
  const MultihopResult second = b.run_slots(250);

  // Summable counters across the split must match the one-shot run.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(full.node[i].attempts,
              first.node[i].attempts + second.node[i].attempts);
    EXPECT_EQ(full.node[i].successes,
              first.node[i].successes + second.node[i].successes);
    EXPECT_EQ(full.node[i].local_time_us,
              first.node[i].local_time_us + second.node[i].local_time_us);
  }
}

TEST(PdesDifferential, AdaptiveTftTrajectoryKernelInvariant) {
  // The adaptive (graph-TFT) runtime on top of the simulator: the whole
  // stage trajectory — profiles, payoffs, convergence — must be
  // identical under either kernel (the adaptive-refresh path of
  // docs/PDES.md).
  util::Rng rng(61);
  const Topology topo = random_topology(rng, 24, 800.0);
  std::vector<int> profile = random_profile(rng, 24);

  MultihopTftConfig tft;
  tft.slots_per_stage = 300;
  tft.stages = 4;

  MultihopConfig config;
  config.seed = 2024;
  MultihopSimulator oracle(config, topo, profile);
  const MultihopTftResult a = play_multihop_tft(oracle, nullptr, tft);

  MultihopConfig pdes_config = config;
  pdes_config.kernel = MultihopKernel::kPdes;
  pdes_config.pdes.jobs = 4;
  MultihopSimulator pdes(pdes_config, topo, profile);
  const MultihopTftResult b = play_multihop_tft(pdes, nullptr, tft);

  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].cw, b.stages[s].cw);
    EXPECT_EQ(a.stages[s].payoff, b.stages[s].payoff);
    EXPECT_EQ(a.stages[s].global_payoff, b.stages[s].global_payoff);
  }
  EXPECT_EQ(a.converged_cw, b.converged_cw);
  EXPECT_EQ(a.stable_from, b.stable_from);
}

TEST(PdesDifferential, JobsZeroUsesDefaultAndClamps) {
  // jobs = 0 resolves to the host default, clamped to the region count;
  // either way the result stays pinned to the oracle.
  util::Rng rng(83);
  const Topology topo = random_topology(rng, 16, 600.0);
  const std::vector<int> profile = random_profile(rng, 16);
  MultihopConfig config;
  config.seed = 8;
  PdesOptions opt;
  opt.jobs = 0;
  run_cell(config, topo, profile, 300, opt, "jobs=0");
}

}  // namespace
}  // namespace smac::multihop
