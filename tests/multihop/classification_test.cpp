// Outcome-classification edge cases of the multi-hop simulator: who is a
// sender-visible collision, who is a hidden loss, and how local clocks
// account for each.
#include <gtest/gtest.h>

#include "multihop/multihop_simulator.hpp"

namespace smac::multihop {
namespace {

MultihopConfig make_config(std::uint64_t seed = 1) {
  MultihopConfig config;
  config.seed = seed;
  return config;
}

TEST(ClassificationTest, ReceiverBusyCountsAsHiddenLoss) {
  // Two nodes alone: whenever both transmit, each picks the other as
  // receiver; sender ranges overlap so it classifies as sender-visible
  // collision — never as hidden. With W = 1 both transmit *every* slot.
  const Topology pair({{0, 0}, {100, 0}}, 250.0);
  MultihopSimulator sim(make_config(2), pair, {1, 1});
  const auto r = sim.run_slots(200);  // W=1,m=6: they escape via backoff
  EXPECT_EQ(r.node[0].hidden_losses, 0u);
  EXPECT_EQ(r.node[1].hidden_losses, 0u);
}

TEST(ClassificationTest, PureHiddenPairNeverSendersVisible) {
  // A(0)→B(200)←C(400): A and C cannot sense each other. Every loss at
  // the ends must classify as hidden, none as sender-visible.
  const Topology chain({{0, 0}, {200, 0}, {400, 0}}, 250.0);
  // Make the middle node passive (huge window) so only the hidden pair
  // contends.
  MultihopSimulator sim(make_config(3), chain, {4, 4096, 4});
  const auto r = sim.run_slots(100000);
  EXPECT_GT(r.node[0].hidden_losses, 0u);
  EXPECT_GT(r.node[2].hidden_losses, 0u);
  // The ends can never be sender-visible to each other; the only possible
  // sender-visible partner is the (nearly silent) middle node.
  EXPECT_LT(r.node[0].sender_collisions, r.node[0].hidden_losses / 5 + 5);
}

TEST(ClassificationTest, HiddenLossesEscalateBackoff) {
  // A hidden loss must behave like a collision for the sender: the
  // failure probability measured by the ends of the hidden chain exceeds
  // what two isolated pairs would see.
  const Topology chain({{0, 0}, {200, 0}, {400, 0}}, 250.0);
  MultihopSimulator hidden(make_config(4), chain, {8, 4096, 8});
  const auto r_hidden = hidden.run_slots(100000);

  const Topology lone({{0, 0}, {100, 0}}, 250.0);
  MultihopSimulator isolated(make_config(4), lone, {8, 8});
  const auto r_lone = isolated.run_slots(100000);

  const double fail_hidden =
      1.0 - static_cast<double>(r_hidden.node[0].successes) /
                static_cast<double>(r_hidden.node[0].attempts);
  const double fail_lone =
      1.0 - static_cast<double>(r_lone.node[0].successes) /
                static_cast<double>(r_lone.node[0].attempts);
  EXPECT_GT(fail_hidden, fail_lone);
}

TEST(ClassificationTest, LocalClockSeesNeighborSuccessAsBusy) {
  // A bystander within range of a busy pair accrues T_s-sized slots, so
  // its local time outpaces an out-of-range observer's.
  const Topology topo({{0, 0}, {100, 0}, {200, 0}, {5000, 5000}}, 250.0);
  // Nodes 0,1 busy; node 2 passive but in range of 1; node 3 far away.
  MultihopSimulator sim(make_config(5), topo, {8, 8, 4096, 4096});
  const auto r = sim.run_slots(50000);
  EXPECT_GT(r.node[2].local_time_us, 1.5 * r.node[3].local_time_us);
}

TEST(ClassificationTest, PerNodePHnAggregatesConsistently) {
  util::Rng rng(6);
  std::vector<Vec2> pos;
  for (int i = 0; i < 25; ++i) {
    pos.push_back({rng.uniform_real(0, 800), rng.uniform_real(0, 800)});
  }
  MultihopSimulator sim(make_config(7), Topology(pos, 250.0),
                        std::vector<int>(25, 16));
  const auto r = sim.run_slots(100000);
  // Aggregate p_hn = Σ successes / Σ (successes + hidden losses).
  std::uint64_t succ = 0;
  std::uint64_t clear = 0;
  for (const auto& node : r.node) {
    succ += node.successes;
    clear += node.successes + node.hidden_losses;
    EXPECT_GE(node.measured_p_hn, 0.0);
    EXPECT_LE(node.measured_p_hn, 1.0);
  }
  ASSERT_GT(clear, 0u);
  EXPECT_NEAR(r.aggregate_p_hn,
              static_cast<double>(succ) / static_cast<double>(clear), 1e-12);
}

}  // namespace
}  // namespace smac::multihop
