#include <gtest/gtest.h>

#include <limits>

#include "multihop/geometry.hpp"
#include "multihop/topology.hpp"

namespace smac::multihop {
namespace {

TEST(GeometryTest, VectorArithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{4.0, 6.0};
  EXPECT_EQ((a + b), (Vec2{5.0, 8.0}));
  EXPECT_EQ((b - a), (Vec2{3.0, 4.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ((b - a).norm(), 5.0);
}

TEST(GeometryTest, DistanceFunctions) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq(a, b), 25.0);
  EXPECT_TRUE(in_range(a, b, 5.0));   // boundary inclusive
  EXPECT_FALSE(in_range(a, b, 4.99));
}

TEST(TopologyTest, ValidatesConstruction) {
  EXPECT_THROW(Topology({}, 10.0), std::invalid_argument);
  EXPECT_THROW(Topology({{0, 0}}, 0.0), std::invalid_argument);
}

TEST(TopologyTest, ChainNeighborhoods) {
  // Three nodes in a line, 200 m apart, range 250 m: A–B–C with A and C
  // out of range of each other — the canonical hidden-terminal layout.
  const Topology t({{0, 0}, {200, 0}, {400, 0}}, 250.0);
  EXPECT_EQ(t.degree(0), 1u);
  EXPECT_EQ(t.degree(1), 2u);
  EXPECT_EQ(t.degree(2), 1u);
  EXPECT_TRUE(t.are_neighbors(0, 1));
  EXPECT_TRUE(t.are_neighbors(1, 2));
  EXPECT_FALSE(t.are_neighbors(0, 2));
}

TEST(TopologyTest, ConnectivityAndDiameter) {
  const Topology chain({{0, 0}, {200, 0}, {400, 0}, {600, 0}}, 250.0);
  EXPECT_TRUE(chain.connected());
  EXPECT_EQ(chain.diameter(), 3u);
  EXPECT_EQ(chain.hop_distance(0, 3), 3u);
  EXPECT_EQ(chain.hop_distance(0, 0), 0u);

  const Topology split({{0, 0}, {100, 0}, {5000, 0}}, 250.0);
  EXPECT_FALSE(split.connected());
  EXPECT_EQ(split.hop_distance(0, 2), std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(split.diameter(), std::numeric_limits<std::size_t>::max());
}

TEST(TopologyTest, CompleteGraphWhenDense) {
  const Topology t({{0, 0}, {10, 0}, {0, 10}, {10, 10}}, 250.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.degree(i), 3u);
  }
  EXPECT_EQ(t.diameter(), 1u);
}

TEST(TopologyTest, SingleNodeGraph) {
  const Topology t({{5, 5}}, 100.0);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.degree(0), 0u);
  EXPECT_EQ(t.diameter(), 0u);
}

TEST(TopologyTest, HopDistanceValidatesRange) {
  const Topology t({{0, 0}, {1, 0}}, 10.0);
  EXPECT_THROW(t.hop_distance(0, 5), std::invalid_argument);
}

TEST(TopologyTest, RangeBoundaryIsInclusive) {
  const Topology t({{0, 0}, {250, 0}}, 250.0);
  EXPECT_TRUE(t.are_neighbors(0, 1));
}

}  // namespace
}  // namespace smac::multihop
