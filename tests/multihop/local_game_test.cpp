#include "multihop/local_game.hpp"

#include <gtest/gtest.h>

#include "game/equilibrium.hpp"

namespace smac::multihop {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();

Topology chain(int n, double spacing = 200.0) {
  std::vector<Vec2> pos;
  for (int i = 0; i < n; ++i) pos.push_back({i * spacing, 0.0});
  return Topology(pos, 250.0);
}

// Star with hub at the origin. Radius 240 keeps every leaf within the
// 250 m range of the hub; with at most 5 leaves adjacent leaves are
// 2·240·sin(π/5) ≈ 282 m apart — out of range of each other, so leaf
// degree is exactly 1. More leaves would silently connect neighbors.
Topology star(int leaves) {
  std::vector<Vec2> pos{{0.0, 0.0}};
  for (int i = 0; i < leaves; ++i) {
    const double angle = 2.0 * M_PI * i / leaves;
    pos.push_back({240.0 * std::cos(angle), 240.0 * std::sin(angle)});
  }
  return Topology(pos, 250.0);
}

TEST(LocalEfficientCwTest, MatchesPerDegreeSingleHopNe) {
  const game::StageGame game(kParams, phy::AccessMode::kRtsCts);
  const Topology t = chain(4);  // degrees 1,2,2,1
  const auto cw = local_efficient_cw(t, game);
  ASSERT_EQ(cw.size(), 4u);
  const int ne2 = game::EquilibriumFinder(game, 2).efficient_cw();
  const int ne3 = game::EquilibriumFinder(game, 3).efficient_cw();
  EXPECT_EQ(cw[0], ne2);
  EXPECT_EQ(cw[1], ne3);
  EXPECT_EQ(cw[2], ne3);
  EXPECT_EQ(cw[3], ne2);
}

TEST(LocalEfficientCwTest, DenserNeighborhoodsGetLargerWindows) {
  const game::StageGame game(kParams, phy::AccessMode::kRtsCts);
  // A star: hub sees `leaves` neighbors, each leaf sees 1.
  const Topology t = star(8);
  const auto cw = local_efficient_cw(t, game);
  for (std::size_t leaf = 1; leaf < cw.size(); ++leaf) {
    EXPECT_GT(cw[0], cw[leaf]);
  }
}

TEST(LocalEfficientCwTest, MemoizationIsConsistent) {
  const game::StageGame game(kParams, phy::AccessMode::kRtsCts);
  const Topology t = star(6);
  const auto cw = local_efficient_cw(t, game);
  // All leaves share degree 1 → identical windows.
  for (std::size_t leaf = 2; leaf < cw.size(); ++leaf) {
    EXPECT_EQ(cw[1], cw[leaf]);
  }
}

TEST(LocalEfficientCwTest, IsolatedNodesFloorAtTwoPlayerNe) {
  // An isolated node must not seed the degenerate 1-player optimum
  // (W = 1): once mobility connects it, TFT would spread W = 1 with no
  // recovery. The default floor is the 2-player NE.
  const game::StageGame game(kParams, phy::AccessMode::kRtsCts);
  const Topology t({{0, 0}, {100, 0}, {5000, 5000}}, 250.0);
  const auto cw = local_efficient_cw(t, game);
  const int ne2 = game::EquilibriumFinder(game, 2).efficient_cw();
  EXPECT_EQ(cw[2], ne2);  // isolated node
  EXPECT_EQ(cw[0], ne2);  // pair members: degree 1 → 2 players
  // An explicit min_players = 1 restores the raw behavior.
  const auto raw = local_efficient_cw(t, game, 1);
  EXPECT_EQ(raw[2], game::EquilibriumFinder(game, 1).efficient_cw());
  EXPECT_THROW(local_efficient_cw(t, game, 0), std::invalid_argument);
}

TEST(TftConvergenceTest, ValidatesInput) {
  const Topology t = chain(3);
  EXPECT_THROW(tft_min_convergence(t, {16, 16}), std::invalid_argument);
  EXPECT_THROW(tft_min_convergence(t, {16, 0, 16}), std::invalid_argument);
}

TEST(TftConvergenceTest, UniformSeedIsAlreadyStable) {
  const Topology t = chain(5);
  const auto conv = tft_min_convergence(t, std::vector<int>(5, 30));
  EXPECT_EQ(conv.stages, 0);
  EXPECT_EQ(conv.converged_w, 30);
  EXPECT_TRUE(conv.uniform);
}

TEST(TftConvergenceTest, MinimumPropagatesAcrossChain) {
  // Minimum at one end of a 6-chain must flood to the other end in
  // diameter = 5 stages.
  const Topology t = chain(6);
  std::vector<int> seed{10, 50, 50, 50, 50, 50};
  const auto conv = tft_min_convergence(t, seed);
  EXPECT_TRUE(conv.uniform);
  EXPECT_EQ(conv.converged_w, 10);
  EXPECT_EQ(conv.stages, 5);
  // Per-stage wavefront: after stage k, nodes 0..k hold 10.
  for (int k = 1; k <= 5; ++k) {
    const auto& profile = conv.trajectory[static_cast<std::size_t>(k)];
    for (int i = 0; i <= k; ++i) EXPECT_EQ(profile[static_cast<std::size_t>(i)], 10);
    for (int i = k + 1; i < 6; ++i) EXPECT_EQ(profile[static_cast<std::size_t>(i)], 50);
  }
}

TEST(TftConvergenceTest, ConvergenceBoundedByDiameter) {
  const Topology t = star(7);
  std::vector<int> seed(8, 100);
  seed[3] = 20;  // a leaf
  const auto conv = tft_min_convergence(t, seed);
  EXPECT_TRUE(conv.uniform);
  EXPECT_EQ(conv.converged_w, 20);
  EXPECT_LE(conv.stages, static_cast<int>(t.diameter()));
}

TEST(TftConvergenceTest, DisconnectedComponentsKeepOwnMinima) {
  const Topology t({{0, 0}, {100, 0}, {5000, 0}, {5100, 0}}, 250.0);
  const auto conv = tft_min_convergence(t, {40, 60, 25, 90});
  EXPECT_FALSE(conv.uniform);
  const auto& last = conv.trajectory.back();
  EXPECT_EQ(last[0], 40);
  EXPECT_EQ(last[1], 40);
  EXPECT_EQ(last[2], 25);
  EXPECT_EQ(last[3], 25);
  EXPECT_EQ(conv.converged_w, 25);  // global min across components
}

TEST(TftConvergenceTest, Theorem3SeededConvergence) {
  // Full pipeline: seed with local NE windows, converge by TFT; the limit
  // must be min_i W_i (Theorem 3's W_m).
  const game::StageGame game(kParams, phy::AccessMode::kRtsCts);
  const Topology t = star(5);
  const auto seed = local_efficient_cw(t, game);
  const int expected_min = *std::min_element(seed.begin(), seed.end());
  const auto conv = tft_min_convergence(t, seed);
  EXPECT_TRUE(conv.uniform);
  EXPECT_EQ(conv.converged_w, expected_min);
  // The min seed belongs to the sparsest neighborhood (a leaf).
  const int ne2 = game::EquilibriumFinder(game, 2).efficient_cw();
  EXPECT_EQ(conv.converged_w, ne2);
}

}  // namespace
}  // namespace smac::multihop
