// Class-collapse regression (`ctest -L topology`): on seeded n=2000
// random unit-disk topologies, the canonical-class dedup must keep the
// number of distinct local-game solves and the solve-cache hit rate
// pinned — a silent regression in classify_profile or the SolverService
// grouping would show up here as a class-count blowup or a hit-rate
// collapse long before it shows up as wall-clock. Also pins the pricing
// identity: the class-space payoff equals the per-node
// try_stage_utilities payoff bitwise.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "game/stage_game.hpp"
#include "multihop/city_scale.hpp"
#include "multihop/local_game.hpp"
#include "multihop/spatial_index.hpp"
#include "phy/parameters.hpp"
#include "util/rng.hpp"

namespace smac::multihop {
namespace {

std::vector<Vec2> random_layout(std::size_t n, double side_m,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vec2> pos(n);
  for (Vec2& p : pos) {
    p = {rng.uniform_real(0.0, side_m), rng.uniform_real(0.0, side_m)};
  }
  return pos;
}

TEST(ClassCollapseTest, DistinctClassesAndHitRateStayPinned) {
  constexpr std::size_t kNodes = 2000;
  const double arena = city_arena_side_m(kNodes, 250.0, 12.0);

  for (const std::uint64_t seed : {2026ULL, 31337ULL}) {
    const auto pos = random_layout(kNodes, arena, seed);
    const SpatialIndex index(pos, 250.0);
    const game::StageGame game(phy::Parameters::paper(),
                               phy::AccessMode::kRtsCts);

    const Topology topo = index.topology();
    const std::vector<int> seeds = local_efficient_cw(topo, game);
    const auto conv = tft_min_convergence(topo, seeds);
    const std::vector<int>& stable = conv.trajectory.back();

    // Heterogeneous seed profile: neighborhoods differ in size AND window
    // mix, yet symmetry still collapses a visible fraction of the 2000
    // local games onto shared classes.
    const NeighborhoodPricing at_seed =
        price_neighborhoods(index, seeds, game);
    EXPECT_EQ(at_seed.priced_nodes, kNodes);
    EXPECT_LT(at_seed.distinct_classes, at_seed.priced_nodes);
    EXPECT_LE(at_seed.distinct_classes, 1950u) << "seed " << seed;

    // Converged profile: TFT has flattened each component onto its
    // minimum window, so local games differ only in size — the collapse
    // is near-total.
    const NeighborhoodPricing at_stable =
        price_neighborhoods(index, stable, game);
    EXPECT_EQ(at_stable.priced_nodes, kNodes);
    EXPECT_LE(at_stable.distinct_classes, 60u) << "seed " << seed;

    // The service counted every grouped duplicate as a hit: 4000 class
    // requests over both profiles, far fewer distinct solves.
    const analytical::SolveCacheStats stats = game.solve_cache_stats();
    ASSERT_GT(stats.hits + stats.misses, 0u);
    const double hit_rate =
        static_cast<double>(stats.hits) /
        static_cast<double>(stats.hits + stats.misses);
    EXPECT_GE(hit_rate, 0.40) << "seed " << seed << " hits " << stats.hits
                              << " misses " << stats.misses;
  }
}

TEST(ClassCollapseTest, ClassPayoffMatchesPerNodePricingBitwise) {
  constexpr std::size_t kNodes = 400;
  const double arena = city_arena_side_m(kNodes, 250.0, 12.0);
  const auto pos = random_layout(kNodes, arena, 7);
  const SpatialIndex index(pos, 250.0);
  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kRtsCts);

  const Topology topo = index.topology();
  const std::vector<int> seeds = local_efficient_cw(topo, game);
  const NeighborhoodPricing priced = price_neighborhoods(index, seeds, game);

  std::size_t compared = 0;
  for (std::size_t i = 0; i < kNodes; i += 17) {
    // The per-node oracle: the expanded local profile in natural order
    // (own window first), through the scalar path.
    std::vector<int> local{seeds[i]};
    for (const std::size_t j : index.neighbors(i)) local.push_back(seeds[j]);
    if (local.size() == 1) local.push_back(seeds[i]);  // isolated-node floor
    const game::StageGame::StagePayoffs direct =
        game.try_stage_utilities(local);
    if (!analytical::usable(direct.diagnostics.status)) continue;
    // Bitwise: both paths price node i off the same canonical class solve.
    EXPECT_EQ(priced.payoff[i], direct.utilities[0]) << "node " << i;
    ++compared;
  }
  EXPECT_GE(compared, 20u);
}

}  // namespace
}  // namespace smac::multihop
