// Slot-level fault injection in the spatial simulator: scripted
// crash/join events must be exactly the stage-level set_node_active
// mechanism driven from a SlotFaultPlan, and the Gilbert–Elliott chain
// must corrupt deliveries without touching fault-free runs.
#include "multihop/multihop_simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fault/fault_plan.hpp"

namespace smac::multihop {
namespace {

MultihopConfig make_config(std::uint64_t seed = 21) {
  MultihopConfig config;
  config.seed = seed;
  return config;
}

Topology clique(int n) {
  std::vector<Vec2> pos;
  for (int i = 0; i < n; ++i) {
    pos.push_back({static_cast<double>(i), 0.0});
  }
  return Topology(pos, 250.0);
}

Topology hidden_chain() {
  return Topology({{0, 0}, {200, 0}, {400, 0}}, 250.0);
}

/// Window-summable per-node counters (the derived per-window rates are
/// not additive across windows, so they are not compared here).
struct Totals {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t sender_collisions = 0;
  std::uint64_t hidden_losses = 0;
  std::uint64_t channel_losses = 0;
  double local_time_us = 0.0;
};

void accumulate(std::vector<Totals>& totals, const MultihopResult& r) {
  ASSERT_EQ(totals.size(), r.node.size());
  for (std::size_t i = 0; i < r.node.size(); ++i) {
    totals[i].attempts += r.node[i].attempts;
    totals[i].successes += r.node[i].successes;
    totals[i].sender_collisions += r.node[i].sender_collisions;
    totals[i].hidden_losses += r.node[i].hidden_losses;
    totals[i].channel_losses += r.node[i].channel_losses;
    totals[i].local_time_us += r.node[i].local_time_us;
  }
}

void expect_same_totals(const std::vector<Totals>& a,
                        const std::vector<Totals>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "node " << i;
    EXPECT_EQ(a[i].successes, b[i].successes) << "node " << i;
    EXPECT_EQ(a[i].sender_collisions, b[i].sender_collisions) << "node " << i;
    EXPECT_EQ(a[i].hidden_losses, b[i].hidden_losses) << "node " << i;
    EXPECT_EQ(a[i].channel_losses, b[i].channel_losses) << "node " << i;
    // Same slot durations, summed in different window groupings: exact
    // equality of the uint64 counters, tolerance only for the re-associated
    // floating-point sum.
    EXPECT_NEAR(a[i].local_time_us, b[i].local_time_us,
                1e-6 * (1.0 + b[i].local_time_us))
        << "node " << i;
  }
}

TEST(MultihopFaultTest, ScriptedCrashEqualsManualSplit) {
  const std::uint64_t crash_slot = 2000;
  const std::uint64_t total = 8000;
  const int n = 5;
  const std::vector<int> profile(n, 16);

  MultihopConfig scripted_config = make_config();
  scripted_config.faults.events.push_back(
      {crash_slot, 0, fault::FaultKind::kCrash});
  MultihopSimulator scripted(scripted_config, clique(n), profile);
  std::vector<Totals> scripted_totals(n);
  accumulate(scripted_totals, scripted.run_slots(total));
  EXPECT_FALSE(scripted.node_active(0));

  MultihopSimulator manual(make_config(), clique(n), profile);
  std::vector<Totals> manual_totals(n);
  accumulate(manual_totals, manual.run_slots(crash_slot));
  manual.set_node_active(0, false);
  accumulate(manual_totals, manual.run_slots(total - crash_slot));

  expect_same_totals(scripted_totals, manual_totals);
  // The crash must actually bite: node 0 stops attempting after the event.
  MultihopSimulator baseline(make_config(), clique(n), profile);
  std::vector<Totals> baseline_totals(n);
  accumulate(baseline_totals, baseline.run_slots(total));
  EXPECT_LT(scripted_totals[0].attempts, baseline_totals[0].attempts);
}

TEST(MultihopFaultTest, CrashAndRejoinEqualsDoubleSplit) {
  const std::uint64_t crash_slot = 1500;
  const std::uint64_t rejoin_slot = 4500;
  const std::uint64_t total = 9000;
  const int n = 4;
  const std::vector<int> profile(n, 32);

  MultihopConfig scripted_config = make_config(33);
  scripted_config.faults.events.push_back(
      {rejoin_slot, 1, fault::FaultKind::kJoin});
  // Deliberately unsorted: the simulator orders events by slot itself.
  scripted_config.faults.events.push_back(
      {crash_slot, 1, fault::FaultKind::kCrash});
  MultihopSimulator scripted(scripted_config, clique(n), profile);
  std::vector<Totals> scripted_totals(n);
  accumulate(scripted_totals, scripted.run_slots(total));
  EXPECT_TRUE(scripted.node_active(1));

  MultihopSimulator manual(make_config(33), clique(n), profile);
  std::vector<Totals> manual_totals(n);
  accumulate(manual_totals, manual.run_slots(crash_slot));
  manual.set_node_active(1, false);
  accumulate(manual_totals, manual.run_slots(rejoin_slot - crash_slot));
  manual.set_node_active(1, true);
  accumulate(manual_totals, manual.run_slots(total - rejoin_slot));

  expect_same_totals(scripted_totals, manual_totals);
}

TEST(MultihopFaultTest, EventsBeyondHorizonLeaveRunUntouched) {
  MultihopConfig far_config = make_config(44);
  far_config.faults.events.push_back(
      {1000000000ULL, 0, fault::FaultKind::kCrash});
  MultihopSimulator with_plan(far_config, hidden_chain(), {16, 16, 16});
  MultihopSimulator without(make_config(44), hidden_chain(), {16, 16, 16});
  const MultihopResult a = with_plan.run_slots(20000);
  const MultihopResult b = without.run_slots(20000);
  ASSERT_EQ(a.node.size(), b.node.size());
  EXPECT_EQ(a.bad_state_slots, 0u);
  for (std::size_t i = 0; i < a.node.size(); ++i) {
    EXPECT_EQ(a.node[i].attempts, b.node[i].attempts);
    EXPECT_EQ(a.node[i].successes, b.node[i].successes);
    EXPECT_EQ(a.node[i].hidden_losses, b.node[i].hidden_losses);
    EXPECT_EQ(a.node[i].channel_losses, 0u);
    EXPECT_DOUBLE_EQ(a.node[i].payoff_rate, b.node[i].payoff_rate);
    EXPECT_DOUBLE_EQ(a.node[i].local_time_us, b.node[i].local_time_us);
  }
  EXPECT_DOUBLE_EQ(a.global_payoff_rate, b.global_payoff_rate);
}

TEST(MultihopFaultTest, BurstyChannelCorruptsCleanDeliveries) {
  MultihopConfig config = make_config(55);
  config.faults.channel.p_good_to_bad = 0.05;
  config.faults.channel.p_bad_to_good = 0.10;
  config.faults.channel.per_bad = 0.8;
  MultihopSimulator sim(config, clique(5), std::vector<int>(5, 16));
  const MultihopResult r = sim.run_slots(80000);

  EXPECT_GT(r.bad_state_slots, 0u);
  EXPECT_LT(r.bad_state_slots, r.slots);
  std::uint64_t channel_losses = 0;
  for (const auto& node : r.node) {
    channel_losses += node.channel_losses;
    // Cliques have no hidden terminals; every delivery failure past the
    // sender-visible collisions is the bursty channel's doing.
    EXPECT_EQ(node.hidden_losses, 0u);
  }
  EXPECT_GT(channel_losses, 0u);
  // Channel losses land in the p_hn denominator: the paper's degradation
  // factor now reflects bursty loss even without hidden terminals.
  EXPECT_LT(r.aggregate_p_hn, 1.0);

  // Same seed, chain disabled: clean clique delivers everything.
  MultihopSimulator clean(make_config(55), clique(5),
                          std::vector<int>(5, 16));
  const MultihopResult rc = clean.run_slots(80000);
  EXPECT_EQ(rc.bad_state_slots, 0u);
  EXPECT_DOUBLE_EQ(rc.aggregate_p_hn, 1.0);
}

TEST(MultihopFaultTest, FaultPlanIsValidatedAtConstruction) {
  MultihopConfig bad_node = make_config();
  bad_node.faults.events.push_back({10, 7, fault::FaultKind::kCrash});
  EXPECT_THROW(MultihopSimulator(bad_node, clique(3), {16, 16, 16}),
               std::invalid_argument);

  MultihopConfig bad_channel = make_config();
  bad_channel.faults.channel.p_good_to_bad = 1.5;
  bad_channel.faults.channel.per_bad = 0.5;
  EXPECT_THROW(MultihopSimulator(bad_channel, clique(3), {16, 16, 16}),
               std::invalid_argument);
}

TEST(MultihopFaultTest, ScriptedEventsAreDeterministicAcrossWindows) {
  // Event indices count from construction: re-running the same scripted
  // scenario in one window or many yields the same event timing.
  MultihopConfig config = make_config(66);
  config.faults.events.push_back({3000, 2, fault::FaultKind::kCrash});
  MultihopSimulator one(config, clique(4), std::vector<int>(4, 16));
  MultihopSimulator many(config, clique(4), std::vector<int>(4, 16));
  std::vector<Totals> one_totals(4);
  std::vector<Totals> many_totals(4);
  accumulate(one_totals, one.run_slots(6000));
  for (int k = 0; k < 6; ++k) accumulate(many_totals, many.run_slots(1000));
  EXPECT_EQ(many.total_slots(), 6000u);
  EXPECT_FALSE(many.node_active(2));
  expect_same_totals(one_totals, many_totals);
}

}  // namespace
}  // namespace smac::multihop
