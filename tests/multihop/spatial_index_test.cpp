// Property tests pinning SpatialIndex against the Θ(n²) pair-scan oracle
// (`ctest -L topology`): exact neighbor-set equality on random layouts,
// incremental-update == full-rebuild after mobility, churn equivalence
// against the active-mask constructor, bucket-insertion-order invariance,
// and the degenerate layouts the grid must degrade on gracefully.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "multihop/mobility.hpp"
#include "multihop/spatial_index.hpp"
#include "multihop/topology.hpp"
#include "util/rng.hpp"

namespace smac::multihop {
namespace {

// Independent O(n²) oracle (not build_topology_full, so the test does not
// assume the production oracle it also checks): active-masked pair scan.
std::vector<std::vector<std::size_t>> oracle_neighbors(
    const std::vector<Vec2>& pos, double range_m,
    const std::vector<std::uint8_t>& active) {
  std::vector<std::vector<std::size_t>> nb(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (active[i] == 0) continue;
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (active[j] == 0) continue;
      if (in_range(pos[i], pos[j], range_m)) {
        nb[i].push_back(j);
        nb[j].push_back(i);
      }
    }
  }
  return nb;  // ascending by construction
}

std::vector<Vec2> random_layout(std::size_t n, double side_m,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vec2> pos(n);
  for (Vec2& p : pos) {
    p = {rng.uniform_real(0.0, side_m), rng.uniform_real(0.0, side_m)};
  }
  return pos;
}

void expect_matches_oracle(const SpatialIndex& index,
                           const std::vector<std::uint8_t>& active) {
  const auto want =
      oracle_neighbors(index.positions(), index.range_m(), active);
  for (std::size_t i = 0; i < index.node_count(); ++i) {
    EXPECT_EQ(index.neighbors(i), want[i]) << "node " << i;
  }
}

TEST(SpatialIndexTest, MatchesOracleOnRandomLayouts) {
  // Several densities, including a range much smaller than a cell's worth
  // of arena (sparse) and one where most nodes share few cells (dense).
  const struct {
    std::size_t n;
    double side;
    double range;
  } cases[] = {{50, 1000.0, 250.0},
               {200, 2000.0, 250.0},
               {300, 800.0, 150.0},
               {120, 500.0, 400.0}};
  for (const auto& c : cases) {
    const auto pos = random_layout(c.n, c.side, 0xA11CE + c.n);
    const SpatialIndex index(pos, c.range);
    expect_matches_oracle(index, std::vector<std::uint8_t>(c.n, 1));
    // And the production oracle agrees with the grid-routed Topology.
    const Topology grid(pos, c.range);
    const Topology full = build_topology_full(pos, c.range);
    for (std::size_t i = 0; i < c.n; ++i) {
      EXPECT_EQ(grid.neighbors(i), full.neighbors(i)) << "node " << i;
    }
  }
}

TEST(SpatialIndexTest, ExactRangeBoundaryOnCellEdge) {
  // in_range is boundary-inclusive; nodes exactly range apart, straddling
  // a cell boundary, must be neighbors through the stencil too.
  const double r = 100.0;
  const std::vector<Vec2> pos{{99.5, 0.0}, {199.5, 0.0}, {300.0, 0.0}};
  const SpatialIndex index(pos, r);
  EXPECT_EQ(index.neighbors(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(index.neighbors(1), (std::vector<std::size_t>{0}));  // 2 is 100.5 away
  EXPECT_TRUE(index.neighbors(2).empty());
}

TEST(SpatialIndexTest, IncrementalUpdateMatchesFullRebuild) {
  const std::size_t n = 150;
  MobilityConfig config;
  config.width_m = 1500.0;
  config.height_m = 1500.0;
  config.v_min_mps = 0.5;
  config.v_max_mps = 8.0;
  config.seed = 77;
  RandomWaypointModel mobility(config, n);

  SpatialIndex index(mobility.positions(), 250.0);
  for (int step = 0; step < 12; ++step) {
    mobility.advance(30.0);
    index.update_positions(mobility.positions());
    const SpatialIndex rebuilt(mobility.positions(), 250.0);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(index.neighbors(i), rebuilt.neighbors(i))
          << "step " << step << " node " << i;
    }
    // The stats stay coherent: crossers are a subset of movers, and every
    // active mover was rescanned.
    const auto& st = index.last_update();
    EXPECT_LE(st.rebucketed, st.moved);
    EXPECT_LE(st.rescanned, st.moved);
  }
}

TEST(SpatialIndexTest, UpdateIsIncrementalNotARebuild) {
  // Moving one node a short distance must touch exactly one node.
  const auto pos = random_layout(100, 1000.0, 42);
  SpatialIndex index(pos, 250.0);
  auto moved = pos;
  // A guaranteed same-cell move: snap to the cell's interior midpoint.
  moved[7] = {std::floor(pos[7].x / 250.0) * 250.0 + 125.0,
              std::floor(pos[7].y / 250.0) * 250.0 + 125.0};
  index.update_positions(moved);
  EXPECT_EQ(index.last_update().moved, 1u);
  EXPECT_EQ(index.last_update().rebucketed, 0u);
  EXPECT_EQ(index.last_update().rescanned, 1u);
  expect_matches_oracle(index, std::vector<std::uint8_t>(100, 1));
}

TEST(SpatialIndexTest, ChurnMatchesActiveMaskConstruction) {
  const std::size_t n = 180;
  const auto pos = random_layout(n, 1200.0, 0xC0FFEE);
  SpatialIndex index(pos, 250.0);

  std::vector<std::uint8_t> active(n, 1);
  util::Rng rng(9);
  for (int round = 0; round < 6; ++round) {
    // Random crash/join wave, applied through the churn hooks.
    for (std::size_t i = 0; i < n; ++i) {
      const bool flip = rng.uniform01() < 0.15;
      if (!flip) continue;
      if (active[i] != 0) {
        active[i] = 0;
        index.remove_node(i);
      } else {
        active[i] = 1;
        index.insert_node(i);
      }
    }
    // Oracle: a fresh active-mask build of the same state.
    const SpatialIndex fresh(pos, 250.0, active);
    ASSERT_EQ(index.active_count(), fresh.active_count());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(index.active(i), fresh.active(i)) << "node " << i;
      ASSERT_EQ(index.neighbors(i), fresh.neighbors(i)) << "node " << i;
    }
    expect_matches_oracle(index, active);
  }
}

TEST(SpatialIndexTest, RemoveThenReinsertRestoresOriginal) {
  const auto pos = random_layout(60, 600.0, 3);
  SpatialIndex index(pos, 200.0);
  const SpatialIndex original(pos, 200.0);
  index.remove_node(11);
  EXPECT_TRUE(index.neighbors(11).empty());
  EXPECT_FALSE(index.active(11));
  index.remove_node(11);  // no-op
  index.insert_node(11);
  index.insert_node(11);  // no-op
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(index.neighbors(i), original.neighbors(i)) << "node " << i;
  }
}

TEST(SpatialIndexTest, InsertAtNewPositionAndMoveNode) {
  const auto pos = random_layout(40, 500.0, 17);
  SpatialIndex index(pos, 150.0);
  index.remove_node(5);
  index.insert_node(5, {250.0, 250.0});
  index.move_node(20, {260.0, 250.0});
  auto want_pos = pos;
  want_pos[5] = {250.0, 250.0};
  want_pos[20] = {260.0, 250.0};
  EXPECT_EQ(index.position(5), (Vec2{250.0, 250.0}));
  const auto want =
      oracle_neighbors(want_pos, 150.0, std::vector<std::uint8_t>(40, 1));
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(index.neighbors(i), want[i]) << "node " << i;
  }
}

TEST(SpatialIndexTest, BuildOrderDoesNotAffectNeighborSets) {
  const std::size_t n = 120;
  const auto pos = random_layout(n, 900.0, 0xBEEF);
  const SpatialIndex natural(pos, 250.0);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::Rng rng(1234);
  for (int shuffle = 0; shuffle < 4; ++shuffle) {
    // Fisher–Yates with the repo Rng (std::shuffle's draws are
    // implementation-defined).
    for (std::size_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(rng.uniform_below(i + 1));
      std::swap(order[i], order[j]);
    }
    const SpatialIndex shuffled(pos, 250.0, order);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(shuffled.neighbors(i), natural.neighbors(i))
          << "shuffle " << shuffle << " node " << i;
    }
  }
}

TEST(SpatialIndexTest, DegenerateAllNodesInOneCell) {
  // Range larger than the spread: everything lands in one or two cells and
  // the stencil scan degrades to the pair scan — still exact.
  const auto pos = random_layout(80, 50.0, 5);
  const SpatialIndex index(pos, 1000.0);
  for (std::size_t i = 0; i < 80; ++i) {
    EXPECT_EQ(index.degree(i), 79u);  // complete graph
  }
  expect_matches_oracle(index, std::vector<std::uint8_t>(80, 1));
}

TEST(SpatialIndexTest, DegenerateRangeWiderThanArena) {
  const std::vector<Vec2> pos{{0, 0}, {10, 0}, {0, 10}};
  const SpatialIndex index(pos, 1e6);
  EXPECT_EQ(index.edge_count(), 3u);
}

TEST(SpatialIndexTest, EmptyIndexIsValidButTopologyThrows) {
  const SpatialIndex empty({}, 100.0);
  EXPECT_EQ(empty.node_count(), 0u);
  EXPECT_EQ(empty.active_count(), 0u);
  EXPECT_EQ(empty.edge_count(), 0u);
  EXPECT_THROW(empty.topology(), std::invalid_argument);
}

TEST(SpatialIndexTest, ValidatesInputs) {
  EXPECT_THROW(SpatialIndex({{0, 0}}, 0.0), std::invalid_argument);
  EXPECT_THROW(SpatialIndex({{0, 0}}, -1.0), std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(SpatialIndex({{inf, 0}}, 10.0), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(SpatialIndex({{0, nan}}, 10.0), std::invalid_argument);
  // Far-flung but finite coordinates are clamped, not UB; the two distant
  // nodes simply share a clamped boundary cell and stay non-neighbors.
  const SpatialIndex far({{0, 0}, {1e18, 1e18}}, 10.0);
  EXPECT_EQ(far.edge_count(), 0u);
}

TEST(SpatialIndexTest, EdgeCountAndTopologyAgree) {
  const auto pos = random_layout(90, 800.0, 21);
  const SpatialIndex index(pos, 250.0);
  const Topology topo = index.topology();
  std::size_t sum = 0;
  for (std::size_t i = 0; i < 90; ++i) {
    EXPECT_EQ(topo.neighbors(i), index.neighbors(i));
    sum += index.degree(i);
  }
  EXPECT_EQ(index.edge_count() * 2, sum);
}

}  // namespace
}  // namespace smac::multihop
