#include "multihop/adaptive.hpp"

#include <gtest/gtest.h>

#include "game/stage_game.hpp"
#include "multihop/local_game.hpp"

namespace smac::multihop {
namespace {

MultihopConfig make_config(std::uint64_t seed = 1) {
  MultihopConfig config;
  config.seed = seed;
  return config;
}

Topology chain(int n, double spacing = 200.0) {
  std::vector<Vec2> pos;
  for (int i = 0; i < n; ++i) pos.push_back({i * spacing, 0.0});
  return Topology(pos, 250.0);
}

MultihopTftConfig fast(int stages) {
  MultihopTftConfig config;
  config.slots_per_stage = 15000;
  config.stages = stages;
  return config;
}

TEST(MultihopTftTest, ValidatesConfig) {
  MultihopSimulator sim(make_config(), chain(3), {16, 16, 16});
  MultihopTftConfig bad = fast(0);
  EXPECT_THROW(play_multihop_tft(sim, nullptr, bad), std::invalid_argument);
  bad = fast(2);
  bad.slots_per_stage = 0;
  EXPECT_THROW(play_multihop_tft(sim, nullptr, bad), std::invalid_argument);
  bad = fast(2);
  bad.mobility_dt_s = -1.0;
  EXPECT_THROW(play_multihop_tft(sim, nullptr, bad), std::invalid_argument);
}

TEST(MultihopTftTest, RejectsMismatchedMobility) {
  MultihopSimulator sim(make_config(), chain(3), {16, 16, 16});
  MobilityConfig mob;
  RandomWaypointModel mobility(mob, 5);  // wrong node count
  EXPECT_THROW(play_multihop_tft(sim, &mobility, fast(2)),
               std::invalid_argument);
}

TEST(MultihopTftTest, StaticChainMatchesGraphIteration) {
  // The played trajectory must equal tft_min_convergence's pure-graph
  // prediction stage by stage (payoffs don't influence TFT decisions).
  const Topology topo = chain(6);
  const std::vector<int> seed{10, 50, 50, 50, 50, 50};
  MultihopSimulator sim(make_config(2), topo, seed);
  const auto played = play_multihop_tft(sim, nullptr, fast(7));
  const auto predicted = tft_min_convergence(topo, seed);
  for (std::size_t k = 0; k < played.stages.size(); ++k) {
    const std::size_t idx = std::min(k, predicted.trajectory.size() - 1);
    EXPECT_EQ(played.stages[k].cw, predicted.trajectory[idx]) << "stage " << k;
  }
  ASSERT_TRUE(played.converged_cw.has_value());
  EXPECT_EQ(*played.converged_cw, 10);
  EXPECT_EQ(played.stable_from, 5);  // diameter of the 6-chain
}

TEST(MultihopTftTest, UniformStartIsStable) {
  MultihopSimulator sim(make_config(3), chain(4), std::vector<int>(4, 22));
  const auto result = play_multihop_tft(sim, nullptr, fast(3));
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 22);
  EXPECT_EQ(result.stable_from, 0);
}

TEST(MultihopTftTest, PayoffsAreMeasuredEveryStage) {
  MultihopSimulator sim(make_config(4), chain(4), {8, 30, 30, 30});
  const auto result = play_multihop_tft(sim, nullptr, fast(4));
  for (const auto& stage : result.stages) {
    ASSERT_EQ(stage.payoff.size(), 4u);
    EXPECT_TRUE(stage.topology_connected);
    EXPECT_GT(stage.global_payoff, 0.0);
  }
}

TEST(MultihopTftTest, MobilityMergesPartitionedMinima) {
  // Two distant pairs with different windows; mobility eventually brings
  // them into contact and the global minimum wins everywhere — the
  // "2-hop neighbors of s converge" contagion of §VI, across partitions.
  MobilityConfig mob;
  mob.width_m = 400.0;
  mob.height_m = 400.0;
  mob.v_min_mps = 20.0;  // fast, to keep the test short
  mob.v_max_mps = 30.0;
  mob.seed = 5;
  RandomWaypointModel mobility(mob, 4);

  MultihopConfig config = make_config(5);
  config.range_m = 120.0;
  MultihopSimulator sim(config,
                        Topology(mobility.positions(), config.range_m),
                        {40, 40, 12, 12});
  MultihopTftConfig tft;
  tft.slots_per_stage = 4000;
  tft.stages = 60;
  tft.mobility_dt_s = 10.0;
  const auto result = play_multihop_tft(sim, &mobility, tft);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 12);
}

TEST(MultihopTftTest, LocalSeedsConvergeToTheorem3Window) {
  // Full §VI pipeline on the simulator: local-NE seeds, played TFT, and
  // the Theorem 3 limit W_m = min_i W_i.
  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kRtsCts);
  util::Rng rng(77);
  std::vector<Vec2> pos;
  for (int i = 0; i < 20; ++i) {
    pos.push_back({rng.uniform_real(0, 500), rng.uniform_real(0, 500)});
  }
  const Topology topo(pos, 250.0);
  const auto seeds = local_efficient_cw(topo, game);
  const int expected =
      *std::min_element(seeds.begin(), seeds.end());

  MultihopSimulator sim(make_config(6), topo, seeds);
  const auto result = play_multihop_tft(sim, nullptr, fast(12));
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, expected);
}

}  // namespace
}  // namespace smac::multihop
