#include "multihop/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smac::multihop {
namespace {

MobilityConfig paper_mobility(std::uint64_t seed = 7) {
  MobilityConfig config;
  config.seed = seed;
  return config;  // defaults = paper §VII.B values
}

TEST(MobilityTest, ValidatesConstruction) {
  MobilityConfig bad = paper_mobility();
  bad.width_m = 0.0;
  EXPECT_THROW(RandomWaypointModel(bad, 10), std::invalid_argument);
  bad = paper_mobility();
  bad.v_max_mps = -1.0;
  EXPECT_THROW(RandomWaypointModel(bad, 10), std::invalid_argument);
  bad = paper_mobility();
  bad.pause_s = -2.0;
  EXPECT_THROW(RandomWaypointModel(bad, 10), std::invalid_argument);
  EXPECT_THROW(RandomWaypointModel(paper_mobility(), 0),
               std::invalid_argument);
}

TEST(MobilityTest, NodesStayInArea) {
  RandomWaypointModel model(paper_mobility(), 50);
  for (int step = 0; step < 200; ++step) {
    model.advance(10.0);
    for (std::size_t i = 0; i < model.node_count(); ++i) {
      const Vec2 p = model.position(i);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1000.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1000.0);
    }
  }
}

TEST(MobilityTest, DisplacementBoundedBySpeed) {
  RandomWaypointModel model(paper_mobility(3), 30);
  const auto before = model.positions();
  const double dt = 10.0;
  model.advance(dt);
  const auto after = model.positions();
  for (std::size_t i = 0; i < before.size(); ++i) {
    // Waypoint turns only shorten the net displacement.
    EXPECT_LE(distance(before[i], after[i]), 5.0 * dt + 1e-9);
  }
}

TEST(MobilityTest, NodesActuallyMove) {
  MobilityConfig config = paper_mobility(4);
  config.v_min_mps = 1.0;  // avoid near-zero-speed legs for this check
  RandomWaypointModel model(config, 20);
  const auto before = model.positions();
  model.advance(60.0);
  const auto after = model.positions();
  int moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (distance(before[i], after[i]) > 1.0) ++moved;
  }
  EXPECT_GE(moved, 18);
}

TEST(MobilityTest, ZeroDtIsNoop) {
  RandomWaypointModel model(paper_mobility(5), 10);
  const auto before = model.positions();
  model.advance(0.0);
  EXPECT_EQ(model.positions(), before);
  EXPECT_THROW(model.advance(-1.0), std::invalid_argument);
}

TEST(MobilityTest, DeterministicForSeed) {
  RandomWaypointModel a(paper_mobility(42), 15);
  RandomWaypointModel b(paper_mobility(42), 15);
  a.advance(123.0);
  b.advance(123.0);
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(a.position(i).x, b.position(i).x);
    EXPECT_EQ(a.position(i).y, b.position(i).y);
  }
}

TEST(MobilityTest, PauseDelaysDeparture) {
  MobilityConfig config = paper_mobility(6);
  config.pause_s = 1e9;  // effectively frozen after first arrival
  config.v_min_mps = 4.9;
  RandomWaypointModel model(config, 5);
  // Walk long enough that every node reached its first waypoint and is
  // now pausing.
  model.advance(2000.0);
  const auto before = model.positions();
  model.advance(100.0);
  EXPECT_EQ(model.positions(), before);
}

TEST(MobilityTest, LongHorizonCoversArea) {
  // Over a long run a single node's positions should span most of the
  // square (ergodicity sanity check).
  MobilityConfig config = paper_mobility(8);
  config.v_min_mps = 2.0;
  RandomWaypointModel model(config, 1);
  double min_x = 1e9, max_x = -1e9, min_y = 1e9, max_y = -1e9;
  for (int step = 0; step < 3000; ++step) {
    model.advance(10.0);
    const Vec2 p = model.position(0);
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  EXPECT_LT(min_x, 200.0);
  EXPECT_GT(max_x, 800.0);
  EXPECT_LT(min_y, 200.0);
  EXPECT_GT(max_y, 800.0);
}

}  // namespace
}  // namespace smac::multihop
