#include "game/tournament.hpp"

#include <gtest/gtest.h>

#include "game/equilibrium.hpp"

namespace smac::game {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();
constexpr auto kBasic = phy::AccessMode::kBasic;

Contender tft(int w) {
  return {"tft", [w] { return std::make_unique<TitForTat>(w); }};
}
Contender constant(int w) {
  return {"constant", [w] { return std::make_unique<ConstantStrategy>(w); }};
}
Contender short_sighted(int w) {
  return {"short-sighted",
          [w] { return std::make_unique<ShortSightedStrategy>(w); }};
}

TEST(TournamentTest, ValidatesConstruction) {
  const StageGame game(kParams, kBasic);
  EXPECT_THROW(Tournament(game, 1, 10), std::invalid_argument);
  EXPECT_THROW(Tournament(game, 5, 0), std::invalid_argument);
  const Tournament t(game, 5, 10);
  EXPECT_THROW(t.play_mix(tft(76), tft(76), 6), std::invalid_argument);
  EXPECT_THROW(t.play_mix({"null", nullptr}, tft(76), 2),
               std::invalid_argument);
}

TEST(TournamentTest, HomogeneousMixIsSymmetric) {
  const StageGame game(kParams, kBasic);
  const Tournament t(game, 6, 20);
  const MixOutcome mix = t.play_mix(tft(76), tft(76), 3);
  EXPECT_EQ(mix.count_a, 3);
  EXPECT_EQ(mix.count_b, 3);
  EXPECT_NEAR(mix.payoff_a, mix.payoff_b, 1e-9 * std::abs(mix.payoff_a));
}

TEST(TournamentTest, MutantHeadStartPersistsInGame) {
  // The collective-punishment effect the resistance notion must handle:
  // within the invaded game a short-sighted mutant stays ahead of the TFT
  // residents forever (everyone ends on the mutant's window, but only the
  // mutant banked the deviation stage).
  const StageGame game(kParams, kBasic);
  const Tournament t(game, 6, 100);
  const MixOutcome mix = t.play_mix(tft(79), short_sighted(20), 5);
  EXPECT_GT(mix.payoff_b, mix.payoff_a);
}

TEST(TournamentTest, TftResistsShortSightedDeviators) {
  // …but against the pure-TFT counterfactual, deviating does not pay on a
  // long horizon with the paper's discount factor: TFT resists.
  const StageGame game(kParams, kBasic);
  const int w_star = EquilibriumFinder(game, 6).efficient_cw();
  const Tournament t(game, 6, 300);
  EXPECT_TRUE(t.resists_invasion(tft(w_star), short_sighted(w_star / 4)));
}

TEST(TournamentTest, ConstantPopulationIsInvadable) {
  // Constant players never punish: the short-sighted mutant keeps its
  // aggressive window and out-earns the pure-constant counterfactual
  // forever. The punishment, not the convention, protects the NE.
  const StageGame game(kParams, kBasic);
  const int w_star = EquilibriumFinder(game, 6).efficient_cw();
  const Tournament t(game, 6, 300);
  EXPECT_FALSE(
      t.resists_invasion(constant(w_star), short_sighted(w_star / 4)));
}

TEST(TournamentTest, CooperativeMutantsAreNeutral) {
  // A constant(W*) mutant in a TFT(W*) population plays identically to
  // the residents: neutral, hence resisted.
  const StageGame game(kParams, kBasic);
  const int w_star = EquilibriumFinder(game, 6).efficient_cw();
  const Tournament t(game, 6, 50);
  EXPECT_TRUE(t.resists_invasion(tft(w_star), constant(w_star)));
  EXPECT_TRUE(t.resists_invasion(constant(w_star), tft(w_star)));
}

TEST(TournamentTest, ShortHorizonRewardsDeviation) {
  // The §V.D boundary: with few stages the deviation jackpot outweighs
  // the punishment tail, so even a TFT population fails to deter.
  const StageGame game(kParams, kBasic);
  const int w_star = EquilibriumFinder(game, 6).efficient_cw();
  const Tournament t_short(game, 6, 5);
  EXPECT_FALSE(
      t_short.resists_invasion(tft(w_star), short_sighted(w_star / 4)));
}

TEST(TournamentTest, InvasionMatrixShapesUp) {
  const StageGame game(kParams, kBasic);
  const int w_star = EquilibriumFinder(game, 5).efficient_cw();
  const Tournament t(game, 5, 300);
  const auto roster = standard_roster(game, 5, w_star);
  const auto matrix = t.invasion_matrix(roster);
  ASSERT_EQ(matrix.size(), roster.size());
  // Diagonal trivially true.
  for (std::size_t i = 0; i < roster.size(); ++i) {
    EXPECT_TRUE(matrix[i][i]);
  }
  // TFT (index 0) resists everyone in the standard roster.
  for (std::size_t j = 0; j < roster.size(); ++j) {
    EXPECT_TRUE(matrix[0][j]) << "TFT invaded by " << roster[j].name;
  }
  // Constant (index 2) is invadable by the short-sighted deviant (3).
  EXPECT_FALSE(matrix[2][3]);
}

TEST(TournamentTest, RosterNamesCarryFullParameterSets) {
  const StageGame game(kParams, kBasic);
  const auto roster = standard_roster(game, 5, 19);
  ASSERT_EQ(roster.size(), 6u);
  // Every contender's display name is its strategy's own name() — the
  // full parameter set, so bench tables disambiguate configurations.
  for (const auto& contender : roster) {
    EXPECT_EQ(contender.name, contender.make()->name());
  }
  EXPECT_EQ(roster[0].name, "tft");
  EXPECT_EQ(roster[1].name, "gtft(beta=0.9,r0=3)");
  EXPECT_EQ(roster[2].name, "constant(19)");
  EXPECT_EQ(roster[3].name, "short-sighted(4)");
  EXPECT_EQ(roster[4].name, "contrite-tft(w=19,k=3)");
  EXPECT_EQ(roster[5].name, "forgiving-gtft(beta=0.9,r0=3,trig=2,clean=2)");
}

TEST(TournamentTest, RoundRobinScoresFavorPunishers) {
  const StageGame game(kParams, kBasic);
  const int w_star = EquilibriumFinder(game, 5).efficient_cw();
  const Tournament t(game, 5, 120);
  const auto roster = standard_roster(game, 5, w_star);
  const auto scores = t.round_robin_scores(roster);
  ASSERT_EQ(scores.size(), roster.size());
  // TFT and GTFT (punishers) outscore the never-punishing constant across
  // the mixes (which include facing the short-sighted deviant).
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_GT(scores[1], scores[2]);
}

}  // namespace
}  // namespace smac::game
