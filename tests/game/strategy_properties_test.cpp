// Property/invariant harness for the strategy layer (PR 5 satellite).
//
// Strategies are specified as *pure functions* of (history, self); the
// properties below are checked over many deterministically seeded random
// histories instead of hand-picked fixtures:
//
//   * determinism — decide() twice on the same history gives the same
//     window, and a fresh instance agrees (no hidden internal state);
//   * window bounds — 1 <= decide() <= W_max whenever every observed
//     window respects the same bounds;
//   * TFT exactness — decide() == min over last-stage online windows;
//   * GTFT trigger semantics — reacts iff some online opponent's
//     r0-average is below beta x own average;
//   * forgiveness — on a clean history the contrite/forgiving windows
//     drift monotonically (never down) to the cooperative window;
//   * filters — range-bounded, identity on constant series, reject
//     isolated outliers, and incremental == batch application.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "game/observation_filter.hpp"
#include "game/strategies.hpp"
#include "util/rng.hpp"

namespace smac::game {
namespace {

constexpr int kWMax = 64;

History random_history(util::Rng& rng, std::size_t players,
                       std::size_t stages) {
  History h;
  for (std::size_t s = 0; s < stages; ++s) {
    StageRecord r;
    for (std::size_t j = 0; j < players; ++j) {
      r.cw.push_back(static_cast<int>(rng.uniform_int(1, kWMax)));
    }
    r.utility.assign(players, 0.0);
    // Occasionally mark someone offline so the properties cover the
    // fault-aware online mask too.
    if (rng.uniform01() < 0.3) {
      r.online.assign(players, 1);
      r.online[rng.uniform_below(players)] = 0;
    }
    h.push_back(std::move(r));
  }
  return h;
}

std::vector<std::unique_ptr<Strategy>> all_strategies() {
  std::vector<std::unique_ptr<Strategy>> s;
  s.push_back(std::make_unique<TitForTat>(kWMax));
  s.push_back(std::make_unique<GenerousTitForTat>(kWMax, 0.9, 3));
  s.push_back(std::make_unique<ConstantStrategy>(kWMax / 2));
  s.push_back(std::make_unique<ShortSightedStrategy>(4));
  s.push_back(std::make_unique<ContriteTitForTat>(kWMax, 3));
  s.push_back(std::make_unique<ForgivingGtft>(kWMax, 0.9, 3, 2, 2));
  return s;
}

std::unique_ptr<Strategy> fresh_copy(const Strategy& s) {
  // Rebuild from the display name — the roster guarantees distinct names
  // for distinct configurations, so matching on it is unambiguous here.
  const std::string n = s.name();
  if (n == "tft") return std::make_unique<TitForTat>(kWMax);
  if (n.rfind("gtft(", 0) == 0) {
    return std::make_unique<GenerousTitForTat>(kWMax, 0.9, 3);
  }
  if (n.rfind("constant(", 0) == 0) {
    return std::make_unique<ConstantStrategy>(kWMax / 2);
  }
  if (n.rfind("short-sighted(", 0) == 0) {
    return std::make_unique<ShortSightedStrategy>(4);
  }
  if (n.rfind("contrite-tft(", 0) == 0) {
    return std::make_unique<ContriteTitForTat>(kWMax, 3);
  }
  if (n.rfind("forgiving-gtft(", 0) == 0) {
    return std::make_unique<ForgivingGtft>(kWMax, 0.9, 3, 2, 2);
  }
  ADD_FAILURE() << "no fresh_copy rule for " << n;
  return nullptr;
}

TEST(StrategyPropertyTest, DecideIsDeterministicAndStateless) {
  util::Rng rng(0x5eed0001ULL);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t players = 2 + rng.uniform_below(5);
    const History h = random_history(rng, players, 1 + rng.uniform_below(12));
    const std::size_t self = rng.uniform_below(players);
    for (const auto& s : all_strategies()) {
      const int first = s->decide(h, self);
      // Same instance, same inputs: decide() must not depend on call count.
      EXPECT_EQ(s->decide(h, self), first) << s->name();
      // A fresh instance agrees: no hidden internal state accumulates.
      EXPECT_EQ(fresh_copy(*s)->decide(h, self), first) << s->name();
    }
  }
}

TEST(StrategyPropertyTest, WindowsStayInBounds) {
  util::Rng rng(0x5eed0002ULL);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t players = 2 + rng.uniform_below(5);
    const History h = random_history(rng, players, 1 + rng.uniform_below(12));
    const std::size_t self = rng.uniform_below(players);
    for (const auto& s : all_strategies()) {
      EXPECT_GE(s->initial_cw(), 1) << s->name();
      EXPECT_LE(s->initial_cw(), kWMax) << s->name();
      const int w = s->decide(h, self);
      EXPECT_GE(w, 1) << s->name();
      EXPECT_LE(w, kWMax) << s->name();
    }
  }
}

TEST(StrategyPropertyTest, TftMatchesOnlineMinimumExactly) {
  util::Rng rng(0x5eed0003ULL);
  TitForTat tft(kWMax);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t players = 2 + rng.uniform_below(5);
    const History h = random_history(rng, players, 1 + rng.uniform_below(8));
    EXPECT_EQ(tft.decide(h, rng.uniform_below(players)), min_cw(h.back()));
  }
}

TEST(StrategyPropertyTest, GtftReactsIffAveragedTriggerFires) {
  util::Rng rng(0x5eed0004ULL);
  const double beta = 0.9;
  const int r0 = 3;
  GenerousTitForTat gtft(kWMax, beta, r0);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t players = 2 + rng.uniform_below(5);
    const History h = random_history(rng, players, 1 + rng.uniform_below(8));
    const std::size_t self = rng.uniform_below(players);
    // Recompute the spec's trigger independently of the implementation.
    const std::size_t stages = std::min<std::size_t>(r0, h.size());
    std::vector<double> avg(players, 0.0);
    for (std::size_t s = h.size() - stages; s < h.size(); ++s) {
      for (std::size_t j = 0; j < players; ++j) avg[j] += h[s].cw[j];
    }
    for (double& a : avg) a /= static_cast<double>(stages);
    bool fires = false;
    for (std::size_t j = 0; j < players; ++j) {
      if (j != self && player_online(h.back(), j) &&
          avg[j] < beta * avg[self]) {
        fires = true;
      }
    }
    const int w = gtft.decide(h, self);
    if (fires) {
      EXPECT_EQ(w, min_cw(h.back()));
    } else {
      EXPECT_EQ(w, h.back().cw[self]);
    }
  }
}

// A history in which everyone plays `profile[s]` at stage s — the "clean"
// case: no noise, no offline players, fully synchronized.
History homogeneous_history(const std::vector<int>& profile,
                            std::size_t players) {
  History h;
  for (int w : profile) {
    StageRecord r;
    r.cw.assign(players, w);
    r.utility.assign(players, 0.0);
    h.push_back(std::move(r));
  }
  return h;
}

TEST(StrategyPropertyTest, ForgivenessDriftIsMonotoneToCooperative) {
  // Clean history ⇒ both forgiving rules only ever move their window UP,
  // and reach the cooperative window in finitely many stages.
  for (int start : {1, 3, 7, kWMax / 2, kWMax}) {
    std::vector<std::unique_ptr<Strategy>> rules;
    rules.push_back(std::make_unique<ContriteTitForTat>(kWMax, 3));
    rules.push_back(std::make_unique<ForgivingGtft>(kWMax, 0.9, 3, 2, 2));
    for (auto& s : rules) {
      std::vector<int> profile{start};
      for (int stage = 0; stage < 40; ++stage) {
        const History h = homogeneous_history(profile, 4);
        const int next = s->decide(h, 0);
        ASSERT_GE(next, profile.back())
            << s->name() << " moved down on a clean history at stage "
            << stage;
        ASSERT_LE(next, kWMax) << s->name();
        profile.push_back(next);
      }
      EXPECT_EQ(profile.back(), kWMax)
          << s->name() << " failed to reach the cooperative window from "
          << start;
    }
  }
}

TEST(StrategyPropertyTest, ForgiveStepIsMonotoneWithFixedPoint) {
  for (int target : {1, 2, 19, kWMax}) {
    int prev = -1;
    for (int own = 1; own <= target; ++own) {
      const int next = forgive_step(own, target);
      EXPECT_GE(next, own) << "must not move down";
      EXPECT_LE(next, target) << "must not overshoot";
      EXPECT_GE(next, prev) << "monotone in own";
      prev = next;
    }
    EXPECT_EQ(forgive_step(target, target), target) << "fixed point";
    // Recovery is logarithmic: from W = 1, halving reaches any target
    // within 2·log2(target) + 2 steps.
    int w = 1;
    int steps = 0;
    while (w < target && steps < 64) {
      w = forgive_step(w, target);
      ++steps;
    }
    EXPECT_EQ(w, target);
    EXPECT_LE(steps, 16) << "halving-gap recovery must be logarithmic";
  }
}

TEST(StrategyPropertyTest, ForgivingGtftTriggerSemantics) {
  // triggered_at fires exactly when an opponent's average dips below
  // beta x own reference — pinned on a hand-built two-player history.
  ForgivingGtft s(20, 0.9, 2, 2, 2);
  History h = homogeneous_history({20, 20, 20}, 2);
  EXPECT_FALSE(s.triggered_at(h, 0, 2));
  // Opponent drops hard: avg over last 2 = (20 + 4)/2 = 12 < 0.9·20.
  h.back().cw[1] = 4;
  EXPECT_TRUE(s.triggered_at(h, 0, 2));
  // The same dip seen from the other side: player 1 observes opponent 0
  // dipping and triggers, but player 0's *own* dip never fires its own
  // trigger.
  History own_dip = homogeneous_history({20, 20, 20}, 2);
  own_dip.back().cw[0] = 4;
  EXPECT_TRUE(s.triggered_at(own_dip, 1, 2));
  EXPECT_FALSE(s.triggered_at(own_dip, 0, 2))
      << "own dip must not read as opponent aggression";
  // One triggered stage never punishes (trigger_stages = 2): the window
  // holds instead.
  EXPECT_EQ(s.decide(h, 0), h.back().cw[0]);
}

// ---- ObservationFilter properties ----

TEST(ObservationFilterPropertyTest, SmoothStaysWithinObservedRange) {
  util::Rng rng(0x5eed0005ULL);
  for (const FilterKind kind : {FilterKind::kMedian, FilterKind::kTrimmedMean}) {
    ObservationFilterConfig cfg;
    cfg.kind = kind;
    cfg.window = 5;
    const ObservationFilter filter(cfg);
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<int> series;
      const std::size_t len = 1 + rng.uniform_below(12);
      for (std::size_t i = 0; i < len; ++i) {
        series.push_back(static_cast<int>(rng.uniform_int(1, kWMax)));
      }
      const std::size_t tail = std::min<std::size_t>(5, series.size());
      const auto first = series.end() - static_cast<std::ptrdiff_t>(tail);
      const int lo = *std::min_element(first, series.end());
      const int hi = *std::max_element(first, series.end());
      const int out = filter.smooth(series);
      EXPECT_GE(out, lo) << to_string(kind);
      EXPECT_LE(out, hi) << to_string(kind);
    }
  }
}

TEST(ObservationFilterPropertyTest, ConstantSeriesIsIdentity) {
  for (const FilterKind kind : {FilterKind::kMedian, FilterKind::kTrimmedMean}) {
    ObservationFilterConfig cfg;
    cfg.kind = kind;
    cfg.window = 5;
    const ObservationFilter filter(cfg);
    for (int w : {1, 19, kWMax}) {
      EXPECT_EQ(filter.smooth(std::vector<int>(7, w)), w) << to_string(kind);
    }
  }
}

TEST(ObservationFilterPropertyTest, IsolatedOutlierIsRejected) {
  // One false-low read inside a window of honest 19s must not survive
  // either estimator — the exact failure mode that ratchets TFT.
  for (const FilterKind kind : {FilterKind::kMedian, FilterKind::kTrimmedMean}) {
    ObservationFilterConfig cfg;
    cfg.kind = kind;
    cfg.window = 5;
    const ObservationFilter filter(cfg);
    EXPECT_EQ(filter.smooth({19, 19, 1, 19, 19}), 19) << to_string(kind);
  }
}

TEST(ObservationFilterPropertyTest, IncrementalEqualsBatch) {
  // filter_latest applied stage by stage (what the engine does) must equal
  // filtered() over the full raw history.
  util::Rng rng(0x5eed0006ULL);
  ObservationFilterConfig cfg;
  cfg.kind = FilterKind::kMedian;
  cfg.window = 5;
  const ObservationFilter filter(cfg);
  const std::size_t players = 4;
  const History raw = random_history(rng, players, 15);
  for (std::size_t self = 0; self < players; ++self) {
    const History batch = filter.filtered(raw, self);
    History incremental;
    History prefix;
    for (const StageRecord& r : raw) {
      prefix.push_back(r);
      incremental.push_back(filter.filter_latest(prefix, self));
    }
    ASSERT_EQ(batch.size(), incremental.size());
    for (std::size_t s = 0; s < batch.size(); ++s) {
      EXPECT_EQ(batch[s].cw, incremental[s].cw) << "stage " << s;
      // Self's own window is always observed exactly.
      EXPECT_EQ(batch[s].cw[self], raw[s].cw[self]);
    }
  }
}

TEST(ObservationFilterPropertyTest, ConfigValidation) {
  ObservationFilterConfig cfg;
  cfg.kind = FilterKind::kMedian;
  cfg.window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.window = 5;
  EXPECT_NO_THROW(cfg.validate());
  cfg.kind = FilterKind::kTrimmedMean;
  cfg.trim_fraction = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.trim_fraction = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.trim_fraction = 0.25;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.name(), "trim(5,0.25)");
  cfg.kind = FilterKind::kNone;
  EXPECT_EQ(cfg.name(), "none");
  EXPECT_FALSE(cfg.enabled());
}

}  // namespace
}  // namespace smac::game
