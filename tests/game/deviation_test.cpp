#include "game/deviation.hpp"

#include <gtest/gtest.h>

#include "game/equilibrium.hpp"

namespace smac::game {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();
constexpr auto kBasic = phy::AccessMode::kBasic;

TEST(DeviationPayoffsTest, RejectsSinglePlayer) {
  const StageGame game(kParams, kBasic);
  EXPECT_THROW(deviation_stage_payoffs(game, 1, 64, 32),
               std::invalid_argument);
}

TEST(DeviationPayoffsTest, Lemma4UpwardDeviation) {
  // W_i > W_k: deviator earns less than the symmetric payoff, conformers
  // earn more — U_i < U^s < U_j.
  const StageGame game(kParams, kBasic);
  const auto d = deviation_stage_payoffs(game, 5, 76, 200);
  EXPECT_LT(d.deviator, d.symmetric);
  EXPECT_GT(d.conformer, d.symmetric);
}

TEST(DeviationPayoffsTest, Lemma4DownwardDeviation) {
  // W_i < W_k: deviator gains at the conformers' expense —
  // U_j < U^s < U_i.
  const StageGame game(kParams, kBasic);
  const auto d = deviation_stage_payoffs(game, 5, 76, 20);
  EXPECT_GT(d.deviator, d.symmetric);
  EXPECT_LT(d.conformer, d.symmetric);
}

TEST(DeviationPayoffsTest, NoDeviationIsSymmetric) {
  const StageGame game(kParams, kBasic);
  const auto d = deviation_stage_payoffs(game, 5, 76, 76);
  EXPECT_NEAR(d.deviator, d.symmetric, std::abs(d.symmetric) * 1e-6);
  EXPECT_NEAR(d.conformer, d.symmetric, std::abs(d.symmetric) * 1e-6);
}

class Lemma4Sweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Lemma4Sweep, OrderingHoldsAcrossProfiles) {
  const auto [n, w_dev] = GetParam();
  const StageGame game(kParams, kBasic);
  const int w_base = 100;
  const auto d = deviation_stage_payoffs(game, n, w_base, w_dev);
  if (w_dev > w_base) {
    EXPECT_LT(d.deviator, d.conformer);
  } else if (w_dev < w_base) {
    EXPECT_GT(d.deviator, d.conformer);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, Lemma4Sweep,
    ::testing::Combine(::testing::Values(2, 5, 20),
                       ::testing::Values(10, 50, 99, 101, 200, 400)));

TEST(ShortSightedTest, ValidatesArguments) {
  const StageGame game(kParams, kBasic);
  EXPECT_THROW(shortsighted_outcome(game, 5, 76, 20, 1.0, 1),
               std::invalid_argument);
  EXPECT_THROW(shortsighted_outcome(game, 5, 76, 20, -0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(shortsighted_outcome(game, 5, 76, 20, 0.5, 0),
               std::invalid_argument);
}

TEST(ShortSightedTest, ExtremelyShortSightedProfits) {
  // δ_s → 0: only the deviation stage matters; aggressive play pays
  // (paper §V.D first bullet).
  const StageGame game(kParams, kBasic);
  const EquilibriumFinder finder(game, 5);
  const int w_star = finder.efficient_cw();
  const auto o = shortsighted_outcome(game, 5, w_star, w_star / 3, 0.01, 1);
  EXPECT_TRUE(o.profitable);
  EXPECT_GT(o.gain, 0.0);
}

TEST(ShortSightedTest, LongSightedDoesNotProfit) {
  // δ_s → 1: the post-retaliation regime dominates; deviating from W_c*
  // loses (paper §V.D second bullet).
  const StageGame game(kParams, kBasic);
  const EquilibriumFinder finder(game, 5);
  const int w_star = finder.efficient_cw();
  const auto o =
      shortsighted_outcome(game, 5, w_star, w_star / 3, 0.9999, 1);
  EXPECT_FALSE(o.profitable);
  EXPECT_LT(o.gain, 0.0);
}

TEST(ShortSightedTest, ConformingIsNeutral) {
  const StageGame game(kParams, kBasic);
  const auto o = shortsighted_outcome(game, 5, 76, 76, 0.5, 2);
  EXPECT_NEAR(o.gain, 0.0, std::abs(o.u_conform) * 1e-6);
}

TEST(ShortSightedTest, SlowerReactionHelpsDeviator) {
  // More stages before TFT retaliation ⇒ more deviation profit.
  const StageGame game(kParams, kBasic);
  const auto fast = shortsighted_outcome(game, 5, 76, 25, 0.9, 1);
  const auto slow = shortsighted_outcome(game, 5, 76, 25, 0.9, 5);
  EXPECT_GT(slow.gain, fast.gain);
}

TEST(ShortSightedTest, BestDeviationBelowCooperative) {
  const StageGame game(kParams, kBasic);
  const auto best = best_shortsighted_deviation(game, 5, 76, 0.05, 1);
  EXPECT_LT(best.w_s, 76);
  EXPECT_TRUE(best.outcome.profitable);
}

TEST(ShortSightedTest, CriticalDiscountIsInterior) {
  const StageGame game(kParams, kBasic);
  const EquilibriumFinder finder(game, 5);
  const int w_star = finder.efficient_cw();
  const int w_s = w_star / 3;
  const double crit = critical_discount(game, 5, w_star, w_s, 1);
  EXPECT_GT(crit, 0.0);
  EXPECT_LT(crit, 1.0);
  // The threshold separates the profitable and unprofitable regimes.
  EXPECT_TRUE(
      shortsighted_outcome(game, 5, w_star, w_s, crit - 0.05, 1).profitable);
  EXPECT_FALSE(shortsighted_outcome(game, 5, w_star, w_s,
                                    std::min(crit + 0.05, 1.0 - 1e-9), 1)
                   .profitable);
}

TEST(ShortSightedTest, CriticalDiscountRisesWithReactionLag) {
  // Slower punishment ⇒ deviation stays profitable for more patient
  // players ⇒ larger critical δ.
  const StageGame game(kParams, kBasic);
  const double fast = critical_discount(game, 5, 76, 25, 1);
  const double slow = critical_discount(game, 5, 76, 25, 4);
  EXPECT_GT(slow, fast);
}

TEST(ShortSightedTest, CriticalDiscountEdgeRegimes) {
  const StageGame game(kParams, kBasic);
  // Deviating *upwards* never pays (Lemma 4): threshold 0.
  EXPECT_DOUBLE_EQ(critical_discount(game, 5, 76, 200, 1), 0.0);
  // If the cooperative point is far above W_c*, dropping to W_c* pays for
  // every discount factor: threshold 1.
  EXPECT_DOUBLE_EQ(critical_discount(game, 5, 800, 76, 1), 1.0);
}

TEST(ShortSightedTest, MarginalDeviationsTolerateHighDiscounts) {
  // The flat utility peak makes the one-step deviation w_star − 1 cheap to
  // punish, so its critical discount approaches 1 — the numerical reason
  // every window in [W_c0, W_c*] is a NE (Theorem 2).
  const StageGame game(kParams, kBasic);
  const EquilibriumFinder finder(game, 5);
  const int w_star = finder.efficient_cw();
  const double marginal = critical_discount(game, 5, w_star, w_star - 1, 1);
  const double aggressive = critical_discount(game, 5, w_star, w_star / 4, 1);
  EXPECT_GT(marginal, 0.999);
  EXPECT_LT(aggressive, marginal);
}

TEST(MaliciousTest, WelfareRatioDecreasesWithAggression) {
  const StageGame game(kParams, kBasic);
  const double mild = malicious_welfare_ratio(game, 5, 76, 50);
  const double harsh = malicious_welfare_ratio(game, 5, 76, 5);
  EXPECT_LT(mild, 1.0);
  EXPECT_LT(harsh, mild);
}

TEST(MaliciousTest, NoAttackKeepsFullWelfare) {
  const StageGame game(kParams, kBasic);
  EXPECT_NEAR(malicious_welfare_ratio(game, 5, 76, 76), 1.0, 1e-9);
}

TEST(MaliciousTest, ParalysisRequiresNoBackoffHeadroom) {
  // With the paper's m = 6, exponential backoff prevents outright negative
  // utility; with m = 0 a malicious W = 1 paralyzes the network.
  const StageGame rich(kParams, kBasic);
  EXPECT_FALSE(paralysis_threshold(rich, 20).has_value());

  phy::Parameters params = kParams;
  params.max_backoff_stage = 0;
  const StageGame bare(params, kBasic);
  const auto threshold = paralysis_threshold(bare, 20);
  ASSERT_TRUE(threshold.has_value());
  EXPECT_GE(*threshold, 1);
  EXPECT_LT(bare.homogeneous_utility_rate(*threshold, 20), 0.0);
  EXPECT_GT(bare.homogeneous_utility_rate(*threshold + 1, 20), 0.0);
}

}  // namespace
}  // namespace smac::game
