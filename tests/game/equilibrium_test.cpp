#include "game/equilibrium.hpp"

#include <gtest/gtest.h>

#include "game/deviation.hpp"
#include "util/optimize.hpp"

namespace smac::game {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();
constexpr auto kBasic = phy::AccessMode::kBasic;
constexpr auto kRtsCts = phy::AccessMode::kRtsCts;

TEST(EquilibriumFinderTest, RejectsBadN) {
  const StageGame game(kParams, kBasic);
  EXPECT_THROW(EquilibriumFinder(game, 0), std::invalid_argument);
}

TEST(EquilibriumFinderTest, EfficientCwMatchesExhaustiveSearch) {
  const StageGame game(kParams, kBasic);
  for (int n : {2, 5}) {
    const EquilibriumFinder finder(game, n);
    const auto exhaustive = util::exhaustive_int_max(
        [&](std::int64_t w) {
          return game.homogeneous_utility_rate(static_cast<int>(w), n);
        },
        1, 512);
    EXPECT_EQ(finder.efficient_cw(), exhaustive.x) << "n=" << n;
  }
}

TEST(EquilibriumFinderTest, PaperTableIIValues) {
  const StageGame game(kParams, kBasic);
  // Exact discrete argmax lands within ~5% of the paper's 76/336/879.
  EXPECT_NEAR(EquilibriumFinder(game, 5).efficient_cw(), 76, 5);
  EXPECT_NEAR(EquilibriumFinder(game, 20).efficient_cw(), 336, 18);
  EXPECT_NEAR(EquilibriumFinder(game, 50).efficient_cw(), 879, 45);
}

TEST(EquilibriumFinderTest, PaperTableIIIShape) {
  // RTS/CTS NE windows are dramatically smaller than basic at equal n and
  // grow with n (paper Table III: 22/48/116).
  const StageGame basic(kParams, kBasic);
  const StageGame rts(kParams, kRtsCts);
  for (int n : {5, 20, 50}) {
    const int wb = EquilibriumFinder(basic, n).efficient_cw();
    const int wr = EquilibriumFinder(rts, n).efficient_cw();
    EXPECT_LT(wr, wb / 3) << "n=" << n;
  }
  EXPECT_LT(EquilibriumFinder(rts, 5).efficient_cw(),
            EquilibriumFinder(rts, 20).efficient_cw());
  EXPECT_LT(EquilibriumFinder(rts, 20).efficient_cw(),
            EquilibriumFinder(rts, 50).efficient_cw());
}

TEST(EquilibriumFinderTest, WarmBracketMatchesFullSearch) {
  // efficient_cw_from(lo) exploits W*(n) monotonicity: seeded with any
  // valid lower bound (a smaller n's optimum, or the exact answer) it
  // must return the same window as the full-range search.
  const StageGame game(kParams, kBasic);
  int prev_w = 0;
  for (int n : {2, 5, 10, 20}) {
    const EquilibriumFinder full(game, n);
    const int w_full = full.efficient_cw();
    EquilibriumFinder warm(game, n);
    EXPECT_EQ(warm.efficient_cw_from(prev_w), w_full) << "n=" << n;
    prev_w = w_full;
  }
  // A violated premise (lo past the peak, so u(lo-1) > u(lo)) must fall
  // back to the full-range search rather than return a bogus maximum.
  EquilibriumFinder finder(game, 5);
  const int w_star = finder.efficient_cw();
  EquilibriumFinder fallback(game, 5);
  EXPECT_EQ(fallback.efficient_cw_from(4 * w_star), w_star);
  // Degenerate lower bounds route to the plain search too.
  EquilibriumFinder degenerate(game, 5);
  EXPECT_EQ(degenerate.efficient_cw_from(0), w_star);
}

TEST(EquilibriumFinderTest, EfficientCwGrowsWithN) {
  const StageGame game(kParams, kBasic);
  int prev = 0;
  for (int n : {2, 5, 10, 20, 40}) {
    const int w = EquilibriumFinder(game, n).efficient_cw();
    EXPECT_GT(w, prev) << "n=" << n;
    prev = w;
  }
}

TEST(EquilibriumFinderTest, MinimumViableCwWithPaperBackoff) {
  // With m = 6 the exponential backoff keeps utility positive even at
  // W = 1 for moderate n, so the whole range [1, W_c*] is NE.
  const StageGame game(kParams, kBasic);
  const EquilibriumFinder finder(game, 10);
  const auto w0 = finder.minimum_viable_cw();
  ASSERT_TRUE(w0.has_value());
  EXPECT_EQ(*w0, 1);
}

TEST(EquilibriumFinderTest, MinimumViableCwWithoutBackoff) {
  // m = 0 recreates the paper's W_c0 > 1 regime: tiny windows collide so
  // hard that utility turns negative.
  phy::Parameters params = kParams;
  params.max_backoff_stage = 0;
  const StageGame game(params, kBasic);
  const EquilibriumFinder finder(game, 20);
  const auto w0 = finder.minimum_viable_cw();
  ASSERT_TRUE(w0.has_value());
  EXPECT_GT(*w0, 1);
  // Sign structure: u(W_c0) > 0 > u(W_c0 − 1), the paper's definition.
  EXPECT_GT(game.homogeneous_utility_rate(*w0, 20), 0.0);
  EXPECT_LT(game.homogeneous_utility_rate(*w0 - 1, 20), 0.0);
}

TEST(EquilibriumFinderTest, NashSetStructure) {
  phy::Parameters params = kParams;
  params.max_backoff_stage = 0;
  const StageGame game(params, kBasic);
  const EquilibriumFinder finder(game, 20);
  const NashSet set = finder.nash_set();
  EXPECT_GT(set.count(), 1);
  EXPECT_LE(set.w_min_viable, set.w_efficient);
  EXPECT_TRUE(set.contains(set.w_min_viable));
  EXPECT_TRUE(set.contains(set.w_efficient));
  EXPECT_FALSE(set.contains(set.w_min_viable - 1));
  EXPECT_FALSE(set.contains(set.w_efficient + 1));
  EXPECT_TRUE(finder.is_nash(set.w_efficient));
  EXPECT_FALSE(finder.is_nash(set.w_efficient + 1));
}

TEST(EquilibriumFinderTest, ContinuousAndDiscreteAgreeBasic) {
  const StageGame game(kParams, kBasic);
  for (int n : {5, 20, 50}) {
    const EquilibriumFinder finder(game, n);
    const auto w_cont = finder.w_star_continuous();
    ASSERT_TRUE(w_cont.has_value());
    EXPECT_NEAR(*w_cont, finder.efficient_cw(), 0.05 * finder.efficient_cw());
  }
}

TEST(EquilibriumFinderTest, TauStarInUnitInterval) {
  const StageGame game(kParams, kRtsCts);
  const EquilibriumFinder finder(game, 20);
  const auto tau = finder.tau_star_continuous();
  ASSERT_TRUE(tau.has_value());
  EXPECT_GT(*tau, 0.0);
  EXPECT_LT(*tau, 1.0);
}

TEST(EquilibriumFinderTest, RefinementSelectsEfficientNe) {
  const StageGame game(kParams, kBasic);
  const EquilibriumFinder finder(game, 5);
  const RefinementReport report = finder.refine();
  EXPECT_TRUE(report.all_fair);
  EXPECT_EQ(report.social_welfare_maximizer, report.nash_set.w_efficient);
  EXPECT_EQ(report.pareto_optimal, report.nash_set.w_efficient);
  EXPECT_GT(report.worst_ne_efficiency, 0.0);
  EXPECT_LE(report.worst_ne_efficiency, 1.0);
}

TEST(EquilibriumFinderTest, EveryNeIsWeaklyWorseThanEfficient) {
  // Pareto refinement argument: u(W_c) < u(W_c*) for all W_c ≠ W_c*.
  const StageGame game(kParams, kBasic);
  const EquilibriumFinder finder(game, 5);
  const NashSet set = finder.nash_set();
  const double u_star = game.homogeneous_utility_rate(set.w_efficient, 5);
  for (int w = set.w_min_viable; w < set.w_efficient; w += 7) {
    EXPECT_LT(game.homogeneous_utility_rate(w, 5), u_star);
  }
}

TEST(EquilibriumFinderTest, Theorem2NoProfitableDeviationInsideBand) {
  // Direct numeric Theorem 2: for common windows inside [W_c0, W_c*], the
  // best short-term deviation of a long-sighted player (delta = 0.9999,
  // TFT reaction lag 1) gains nothing; just above the band it does.
  const StageGame game(kParams, kBasic);
  const EquilibriumFinder finder(game, 5);
  const NashSet band = finder.nash_set();
  const double delta = kParams.discount;
  for (int w_c : {band.w_min_viable, band.w_efficient / 2,
                  band.w_efficient}) {
    const auto best = best_shortsighted_deviation(game, 5, w_c, delta, 1);
    EXPECT_LE(best.outcome.gain,
              1e-4 * std::abs(best.outcome.u_conform))
        << "W_c=" << w_c;
  }
  // Above the band the deviation toward W_c* pays even for delta -> 1.
  const int above = band.w_efficient * 2;
  const auto best_above =
      best_shortsighted_deviation(game, 5, above, delta, 1);
  EXPECT_GT(best_above.outcome.gain, 0.0);
}

TEST(EquilibriumFinderTest, CachedEfficientIsStable) {
  const StageGame game(kParams, kBasic);
  const EquilibriumFinder finder(game, 5);
  EXPECT_EQ(finder.efficient_cw(), finder.efficient_cw());
}

}  // namespace
}  // namespace smac::game
