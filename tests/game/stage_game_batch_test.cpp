// Batched stage-payoff evaluation through the solver service.
//
// StageGame::try_stage_utilities_batch promises payoffs bitwise equal to
// per-profile try_stage_utilities calls, and prefetch_profiles promises
// that later sequential evaluations of the warmed profiles are cache
// hits (src/game/stage_game.hpp).
#include "game/stage_game.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

namespace smac::game {
namespace {

phy::Parameters test_params() {
  phy::Parameters params;  // defaults are the paper's 802.11 DCF setup
  return params;
}

void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "index " << i;
  }
}

TEST(StageGameBatchTest, BatchMatchesSequentialBitwise) {
  const StageGame game(test_params(), phy::AccessMode::kBasic);
  const std::vector<std::vector<int>> profiles{
      {32, 32, 32, 32},          // homogeneous
      {8, 32, 32, 32},           // one deviant
      {32, 32, 32, 8},           // its permutation
      {1, 1024, 64, 64, 64},     // wide spread
      {},                        // invalid: empty
      {16, 16},
  };
  const std::vector<StageGame::StagePayoffs> batched =
      game.try_stage_utilities_batch(profiles);
  ASSERT_EQ(batched.size(), profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const StageGame::StagePayoffs one = game.try_stage_utilities(profiles[i]);
    EXPECT_EQ(batched[i].diagnostics.status, one.diagnostics.status)
        << "profile " << i;
    EXPECT_STREQ(batched[i].diagnostics.method, one.diagnostics.method)
        << "profile " << i;
    expect_bits_equal(batched[i].utilities, one.utilities);
  }
  EXPECT_EQ(batched[4].diagnostics.status, analytical::SolveStatus::kFailed);
  EXPECT_TRUE(batched[4].utilities.empty());
}

TEST(StageGameBatchTest, BatchHonorsPerOverride) {
  const StageGame game(test_params(), phy::AccessMode::kBasic);
  const std::vector<std::vector<int>> profiles{{16, 64, 64}};
  const auto batched = game.try_stage_utilities_batch(profiles, 0.3);
  const auto one = game.try_stage_utilities(profiles[0], 0.3);
  expect_bits_equal(batched[0].utilities, one.utilities);
  // And it is genuinely a different point than the base PER.
  const auto base = game.try_stage_utilities(profiles[0]);
  EXPECT_NE(base.utilities[0], batched[0].utilities[0]);
}

TEST(StageGameBatchTest, PrefetchTurnsSequentialSolvesIntoHits) {
  const StageGame game(test_params(), phy::AccessMode::kBasic);
  const std::vector<std::vector<int>> profiles{
      {8, 32, 32}, {32, 32, 8}, {16, 16, 16}};
  game.prefetch_profiles(profiles);
  const analytical::SolveCacheStats warmed = game.solve_cache_stats();
  EXPECT_EQ(warmed.size, 2u);    // two canonical keys (one permutation pair)
  EXPECT_EQ(warmed.misses, 2u);
  EXPECT_EQ(warmed.hits, 1u);    // the permutation

  // Sequential evaluations of warmed profiles are pure hits.
  for (const auto& w : profiles) game.utility_rates(w);
  const analytical::SolveCacheStats after = game.solve_cache_stats();
  EXPECT_EQ(after.misses, warmed.misses);
  EXPECT_EQ(after.hits, warmed.hits + profiles.size());
}

}  // namespace
}  // namespace smac::game
