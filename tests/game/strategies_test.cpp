#include "game/strategies.hpp"

#include <gtest/gtest.h>

namespace smac::game {
namespace {

History make_history(std::vector<std::vector<int>> stages) {
  History h;
  for (auto& cw : stages) {
    StageRecord r;
    r.cw = std::move(cw);
    r.utility.assign(r.cw.size(), 0.0);
    h.push_back(std::move(r));
  }
  return h;
}

TEST(MinCwTest, FindsMinimum) {
  StageRecord r;
  r.cw = {64, 16, 128};
  EXPECT_EQ(min_cw(r), 16);
  r.cw.clear();
  EXPECT_THROW(min_cw(r), std::invalid_argument);
}

TEST(ConstantStrategyTest, AlwaysSameWindow) {
  ConstantStrategy s(42);
  EXPECT_EQ(s.initial_cw(), 42);
  const History h = make_history({{10, 20}, {5, 42}});
  EXPECT_EQ(s.decide(h, 1), 42);
  EXPECT_EQ(s.name(), "constant(42)");
  EXPECT_THROW(ConstantStrategy(0), std::invalid_argument);
}

TEST(TitForTatTest, CooperatesFirst) {
  TitForTat s(100);
  EXPECT_EQ(s.initial_cw(), 100);
  EXPECT_EQ(s.decide({}, 0), 100);
}

TEST(TitForTatTest, MatchesMostAggressiveOpponent) {
  TitForTat s(100);
  const History h = make_history({{100, 100, 100}, {100, 37, 80}});
  EXPECT_EQ(s.decide(h, 0), 37);
}

TEST(TitForTatTest, StaysWhenEveryoneCooperates) {
  TitForTat s(100);
  const History h = make_history({{100, 100}});
  EXPECT_EQ(s.decide(h, 0), 100);
}

TEST(TitForTatTest, FollowsOwnPastDeviation) {
  // If this player itself played the smallest window, TFT keeps it (the
  // min is over all players including self).
  TitForTat s(100);
  const History h = make_history({{20, 100}});
  EXPECT_EQ(s.decide(h, 0), 20);
}

TEST(GenerousTftTest, ValidatesConstruction) {
  EXPECT_THROW(GenerousTitForTat(0, 0.9, 3), std::invalid_argument);
  EXPECT_THROW(GenerousTitForTat(10, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(GenerousTitForTat(10, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(GenerousTitForTat(10, 0.9, 0), std::invalid_argument);
}

TEST(GenerousTftTest, ToleratesSmallDeviations) {
  // Opponent at 95 vs own 100 with β = 0.9: 95 >= 0.9·100, tolerated.
  GenerousTitForTat s(100, 0.9, 1);
  const History h = make_history({{100, 95}});
  EXPECT_EQ(s.decide(h, 0), 100);
}

TEST(GenerousTftTest, PunishesLargeDeviations) {
  // Opponent at 50 < 0.9·100: react by matching the last-stage minimum.
  GenerousTitForTat s(100, 0.9, 1);
  const History h = make_history({{100, 50}});
  EXPECT_EQ(s.decide(h, 0), 50);
}

TEST(GenerousTftTest, AveragesOverWindow) {
  // One noisy stage at 50 out of r0 = 3 averages to (100+100+50)/3 = 83.3,
  // above 0.9·100 = 90? No — 83.3 < 90, so it reacts. Use a milder dip:
  // (100+100+80)/3 = 93.3 >= 90 → tolerated.
  GenerousTitForTat s(100, 0.9, 3);
  const History noisy =
      make_history({{100, 100}, {100, 100}, {100, 80}});
  EXPECT_EQ(s.decide(noisy, 0), 100);
  // A persistent deviation fails the averaged test and triggers reaction.
  GenerousTitForTat s2(100, 0.9, 3);
  const History persistent =
      make_history({{100, 80}, {100, 80}, {100, 80}});
  EXPECT_EQ(s2.decide(persistent, 0), 80);
}

TEST(GenerousTftTest, HandlesHistoryShorterThanWindow) {
  GenerousTitForTat s(100, 0.9, 5);
  const History h = make_history({{100, 40}});
  EXPECT_EQ(s.decide(h, 0), 40);
}

TEST(GenerousTftTest, NameEncodesParameters) {
  GenerousTitForTat s(100, 0.9, 3);
  EXPECT_EQ(s.name(), "gtft(beta=0.9,r0=3)");
}

TEST(ContriteTftTest, ValidatesConstructionAndName) {
  EXPECT_THROW(ContriteTitForTat(0, 3), std::invalid_argument);
  EXPECT_THROW(ContriteTitForTat(19, 0), std::invalid_argument);
  ContriteTitForTat s(19, 3);
  EXPECT_EQ(s.name(), "contrite-tft(w=19,k=3)");
  EXPECT_EQ(s.cooperative_cw(), 19);
  EXPECT_EQ(s.clean_stages(), 3);
  EXPECT_EQ(s.initial_cw(), 19);
}

TEST(ContriteTftTest, PunishesBelowStandingAndDriftsBack) {
  ContriteTitForTat s(19, 3);
  // A genuine deviation below everything self played recently: punish.
  const History deviation = make_history({{19, 19}, {19, 5}});
  EXPECT_EQ(s.decide(deviation, 0), 5);
  // A laggard at self's own recent level is NOT a deviation (standing):
  // self forgave 5 → 12 but the opponent still sits at 5; with only two
  // clean stages (< k = 3) the window holds rather than punishing.
  const History laggard = make_history({{5, 5}, {12, 5}});
  EXPECT_EQ(s.decide(laggard, 0), 12);
  // Three clean stages at a depressed window: drift half the gap upward.
  const History clean = make_history({{7, 7}, {7, 7}, {7, 7}});
  EXPECT_EQ(s.decide(clean, 0), forgive_step(7, 19));
}

TEST(ForgivingGtftTest, ValidatesConstructionAndName) {
  EXPECT_THROW(ForgivingGtft(0, 0.9, 3, 2, 2), std::invalid_argument);
  EXPECT_THROW(ForgivingGtft(19, 1.0, 3, 2, 2), std::invalid_argument);
  EXPECT_THROW(ForgivingGtft(19, 0.9, 0, 2, 2), std::invalid_argument);
  EXPECT_THROW(ForgivingGtft(19, 0.9, 3, 0, 2), std::invalid_argument);
  EXPECT_THROW(ForgivingGtft(19, 0.9, 3, 2, 0), std::invalid_argument);
  ForgivingGtft s(19, 0.9, 3, 2, 2);
  EXPECT_EQ(s.name(), "forgiving-gtft(beta=0.9,r0=3,trig=2,clean=2)");
  EXPECT_EQ(s.beta(), 0.9);
  EXPECT_EQ(s.window_stages(), 3);
  EXPECT_EQ(s.trigger_stages(), 2);
  EXPECT_EQ(s.clean_stages(), 2);
}

TEST(ForgivingGtftTest, OneNoisyStageNeverPunishes) {
  // trigger_stages = 2: a single false-low read holds the window instead
  // of matching it — the property that breaks the TFT ratchet.
  ForgivingGtft s(20, 0.9, 1, 2, 2);
  const History one_dip = make_history({{20, 20}, {20, 3}});
  EXPECT_EQ(s.decide(one_dip, 0), 20);
  // The same dip sustained for two stages is a real deviation: punish.
  const History sustained = make_history({{20, 3}, {20, 3}});
  EXPECT_EQ(s.decide(sustained, 0), 3);
}

TEST(ShortSightedTest, NeverAdapts) {
  ShortSightedStrategy s(12);
  EXPECT_EQ(s.initial_cw(), 12);
  const History h = make_history({{12, 200}, {12, 12}});
  EXPECT_EQ(s.decide(h, 0), 12);
}

TEST(MaliciousTest, SwitchesAtAttackStage) {
  MaliciousStrategy s(336, 2, 3);
  EXPECT_EQ(s.initial_cw(), 336);
  History h = make_history({{336, 336}});
  EXPECT_EQ(s.decide(h, 0), 336);  // next stage = 1 < 3
  h = make_history({{336, 336}, {336, 336}, {336, 336}});
  EXPECT_EQ(s.decide(h, 0), 2);  // next stage = 3 >= 3
}

TEST(MaliciousTest, ImmediateAttack) {
  MaliciousStrategy s(336, 2, 0);
  EXPECT_EQ(s.initial_cw(), 2);
}

TEST(MyopicBestResponseTest, MaximizesOracle) {
  // Oracle rewards playing exactly 2× the opponent's last window.
  auto oracle = [](const std::vector<int>& profile, std::size_t self) {
    const int target = 2 * profile[1 - self];
    return -std::abs(profile[self] - target) * 1.0;
  };
  MyopicBestResponse s(64, 1024, oracle);
  EXPECT_EQ(s.initial_cw(), 64);
  const History h = make_history({{64, 100}});
  EXPECT_EQ(s.decide(h, 0), 200);
}

TEST(MyopicBestResponseTest, ValidatesConstruction) {
  auto oracle = [](const std::vector<int>&, std::size_t) { return 0.0; };
  EXPECT_THROW(MyopicBestResponse(0, 10, oracle), std::invalid_argument);
  EXPECT_THROW(MyopicBestResponse(20, 10, oracle), std::invalid_argument);
  EXPECT_THROW(MyopicBestResponse(5, 10, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace smac::game
