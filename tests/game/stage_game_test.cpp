#include "game/stage_game.hpp"

#include <gtest/gtest.h>

#include "analytical/utility.hpp"

namespace smac::game {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();
constexpr auto kBasic = phy::AccessMode::kBasic;

TEST(StageGameTest, RejectsInvalidParameters) {
  phy::Parameters bad = kParams;
  bad.discount = 1.5;
  EXPECT_THROW(StageGame(bad, kBasic), std::invalid_argument);
}

TEST(StageGameTest, RejectsEmptyProfile) {
  const StageGame game(kParams, kBasic);
  EXPECT_THROW(game.utility_rates({}), std::invalid_argument);
}

TEST(StageGameTest, StageUtilityIsRateTimesDuration) {
  const StageGame game(kParams, kBasic);
  const std::vector<int> profile{32, 64, 128};
  const auto rates = game.utility_rates(profile);
  const auto stage = game.stage_utilities(profile);
  ASSERT_EQ(rates.size(), stage.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_NEAR(stage[i], rates[i] * 10.0 * 1e6, std::abs(rates[i]));
  }
}

TEST(StageGameTest, HomogeneousMatchesAnalyticalModule) {
  const StageGame game(kParams, kBasic);
  for (int w : {16, 76, 336}) {
    for (int n : {2, 5, 20}) {
      EXPECT_NEAR(game.homogeneous_utility_rate(w, n),
                  analytical::homogeneous_utility_rate(w, n, kParams, kBasic),
                  1e-18);
    }
  }
}

TEST(StageGameTest, CacheReturnsIdenticalValues) {
  const StageGame game(kParams, kBasic);
  const double first = game.homogeneous_utility_rate(76, 5);
  const double second = game.homogeneous_utility_rate(76, 5);
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(StageGameTest, HomogeneousProfileAgreesWithVectorPath) {
  const StageGame game(kParams, kBasic);
  const auto rates = game.utility_rates(std::vector<int>(5, 76));
  const double fast = game.homogeneous_utility_rate(76, 5);
  for (double r : rates) EXPECT_NEAR(r, fast, 1e-10);
}

TEST(StageGameTest, SocialWelfareIsNTimesIndividual) {
  const StageGame game(kParams, kBasic);
  EXPECT_NEAR(game.social_welfare(100, 8),
              8.0 * game.homogeneous_stage_utility(100, 8), 1e-9);
}

TEST(StageGameTest, Lemma1StageOrdering) {
  // Within any profile, a strictly larger window earns strictly less.
  const StageGame game(kParams, kBasic);
  const std::vector<int> profile{20, 40, 80, 160, 320};
  const auto u = game.stage_utilities(profile);
  for (std::size_t i = 1; i < u.size(); ++i) {
    EXPECT_GT(u[i - 1], u[i]);
  }
}

TEST(StageGameTest, RejectsBadHomogeneousArguments) {
  const StageGame game(kParams, kBasic);
  EXPECT_THROW(game.homogeneous_utility_rate(0, 5), std::invalid_argument);
  EXPECT_THROW(game.homogeneous_utility_rate(8, 0), std::invalid_argument);
}

TEST(StageGameTest, NormalizedGlobalPayoffPositiveAtEfficientPoint) {
  const StageGame game(kParams, kBasic);
  EXPECT_GT(game.normalized_global_payoff(76, 5), 0.0);
}

}  // namespace
}  // namespace smac::game
