#include "game/rate_game.hpp"

#include <gtest/gtest.h>

#include "game/equilibrium.hpp"
#include "game/stage_game.hpp"

namespace smac::game {
namespace {

RateGameConfig base_config(double ber = 0.0) {
  RateGameConfig config;
  config.n = 10;
  config.bit_error_rate = ber;
  return config;
}

TEST(RateGameTest, ValidatesConfiguration) {
  RateGameConfig bad = base_config();
  bad.n = 1;
  EXPECT_THROW(RateGame{bad}, std::invalid_argument);
  bad = base_config();
  bad.bit_error_rate = 1.0;
  EXPECT_THROW(RateGame{bad}, std::invalid_argument);
  bad = base_config();
  bad.min_payload_bits = 0.0;
  EXPECT_THROW(RateGame{bad}, std::invalid_argument);
  bad = base_config();
  bad.max_payload_bits = 10.0;
  bad.min_payload_bits = 100.0;
  EXPECT_THROW(RateGame{bad}, std::invalid_argument);
}

TEST(RateGameTest, DefaultsToMacGameEfficientWindow) {
  const RateGame game(base_config());
  const StageGame mac(phy::Parameters::paper(), phy::AccessMode::kBasic);
  EXPECT_EQ(game.common_window(), EquilibriumFinder(mac, 10).efficient_cw());
  EXPECT_GT(game.tau(), 0.0);
  EXPECT_LT(game.tau(), 1.0);
}

TEST(RateGameTest, RejectsBadProfiles) {
  const RateGame game(base_config());
  EXPECT_THROW(game.utility_rates({1024.0}), std::invalid_argument);
  std::vector<double> out_of_range(10, 1024.0);
  out_of_range[3] = 1e9;
  EXPECT_THROW(game.utility_rates(out_of_range), std::invalid_argument);
}

TEST(RateGameTest, LongerFramesWinSharedClockAtZeroBer) {
  // Without bit errors, utility rises with payload (amortized overhead):
  // the race-to-max regime.
  const RateGame game(base_config());
  EXPECT_GT(game.homogeneous_utility_rate(8184.0),
            game.homogeneous_utility_rate(2048.0));
  EXPECT_GT(game.homogeneous_utility_rate(32768.0),
            game.homogeneous_utility_rate(8184.0));
  EXPECT_NEAR(game.efficient_payload(), game.config().max_payload_bits,
              game.config().max_payload_bits * 0.01);
}

TEST(RateGameTest, BitErrorsCreateInteriorOptimum) {
  const RateGame game(base_config(1e-5));
  const double l_star = game.efficient_payload();
  EXPECT_GT(l_star, game.config().min_payload_bits * 1.5);
  EXPECT_LT(l_star, game.config().max_payload_bits * 0.9);
  // Unimodality around the optimum.
  EXPECT_GT(game.homogeneous_utility_rate(l_star),
            game.homogeneous_utility_rate(l_star * 0.5));
  EXPECT_GT(game.homogeneous_utility_rate(l_star),
            game.homogeneous_utility_rate(l_star * 2.0));
}

TEST(RateGameTest, HigherBerShrinksOptimalFrames) {
  const double l_low = RateGame(base_config(1e-6)).efficient_payload();
  const double l_high = RateGame(base_config(1e-4)).efficient_payload();
  EXPECT_GT(l_low, l_high);
}

TEST(RateGameTest, LongFramesImposeExternalities) {
  // One jumbo sender slows everyone: the others' utility drops relative
  // to the all-moderate profile (the collision/clock externality).
  const RateGame game(base_config(1e-5));
  std::vector<double> moderate(10, 8184.0);
  std::vector<double> with_jumbo = moderate;
  with_jumbo[0] = 60000.0;
  const auto u_moderate = game.utility_rates(moderate);
  const auto u_jumbo = game.utility_rates(with_jumbo);
  EXPECT_LT(u_jumbo[1], u_moderate[1]);
}

TEST(RateGameTest, SelfishEquilibriumAtOrAboveSocialOptimum) {
  // The Tan-Guttag gap: the symmetric best-response fixed point uses
  // frames at least as long as the social optimum because part of a long
  // frame's collision cost lands on the others.
  const RateGame game(base_config(2e-5));
  const double l_social = game.efficient_payload();
  const double l_selfish = game.equilibrium_payload();
  EXPECT_GE(l_selfish, l_social * 0.999);
  // And the equilibrium is a best response to itself.
  std::vector<double> profile(10, l_selfish);
  EXPECT_NEAR(game.best_response(profile, 0), l_selfish,
              std::max(2.0, l_selfish * 1e-3));
}

TEST(RateGameTest, SelfishEquilibriumCostsSocialWelfare) {
  const RateGame game(base_config(2e-5));
  const double l_social = game.efficient_payload();
  const double l_selfish = game.equilibrium_payload();
  if (l_selfish > l_social * 1.01) {  // gap exists at this BER
    EXPECT_LT(game.homogeneous_utility_rate(l_selfish),
              game.homogeneous_utility_rate(l_social));
  }
}

TEST(RateGameTest, RtsCtsRemovesLengthExternality) {
  // Under RTS/CTS, collisions never carry data frames, so one node's
  // frame length no longer inflates the others' collision costs. The
  // jumbo externality should be far weaker than in basic mode.
  RateGameConfig basic_cfg = base_config(1e-5);
  RateGameConfig rts_cfg = base_config(1e-5);
  rts_cfg.mode = phy::AccessMode::kRtsCts;

  auto externality = [](const RateGame& game) {
    std::vector<double> moderate(10, 8184.0);
    std::vector<double> with_jumbo = moderate;
    with_jumbo[0] = 60000.0;
    const double before = game.utility_rates(moderate)[1];
    const double after = game.utility_rates(with_jumbo)[1];
    return (before - after) / before;  // relative harm to a bystander
  };
  const double harm_basic = externality(RateGame(basic_cfg));
  const double harm_rts = externality(RateGame(rts_cfg));
  EXPECT_GT(harm_basic, 0.0);
  // The bystander still loses clock share to the longer success slots,
  // but the collision externality is gone: harm must drop.
  EXPECT_LT(harm_rts, harm_basic);
}

TEST(RateGameTest, BestResponseValidatesSelf) {
  const RateGame game(base_config());
  std::vector<double> profile(10, 1024.0);
  EXPECT_THROW(game.best_response(profile, 10), std::invalid_argument);
}

}  // namespace
}  // namespace smac::game
