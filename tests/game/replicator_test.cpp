#include "game/replicator.hpp"

#include <gtest/gtest.h>

#include "game/equilibrium.hpp"

namespace smac::game {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();
constexpr auto kBasic = phy::AccessMode::kBasic;

Contender tft(int w) {
  return {"tft", [w] { return std::make_unique<TitForTat>(w); }};
}
Contender constant(int w) {
  return {"constant", [w] { return std::make_unique<ConstantStrategy>(w); }};
}
Contender short_sighted(int w) {
  return {"short-sighted",
          [w] { return std::make_unique<ShortSightedStrategy>(w); }};
}

TEST(ReplicatorTest, ValidatesInput) {
  const StageGame game(kParams, kBasic);
  const Tournament t(game, 5, 50);
  const ReplicatorDynamics dynamics(t);
  EXPECT_THROW(dynamics.expected_fitness(tft(79), constant(79), 1.5),
               std::invalid_argument);
  EXPECT_THROW(dynamics.run(tft(79), constant(79), -0.1),
               std::invalid_argument);
  EXPECT_THROW(dynamics.run(tft(79), constant(79), 0.5, 0),
               std::invalid_argument);
}

TEST(ReplicatorTest, FitnessInterpolatesMixes) {
  const StageGame game(kParams, kBasic);
  const Tournament t(game, 5, 30);
  const ReplicatorDynamics dynamics(t);
  const Contender a = tft(79);
  const Contender b = short_sighted(20);
  // At share 1 an A individual almost surely plays an all-A game.
  const auto [fa_hi, fb_hi] = dynamics.expected_fitness(a, b, 1.0);
  const MixOutcome pure_a = t.play_mix(a, b, 5);
  EXPECT_NEAR(fa_hi, pure_a.payoff_a, 1e-6 * std::abs(pure_a.payoff_a));
  // At share 0 a B individual almost surely plays an all-B game.
  const auto [fa_lo, fb_lo] = dynamics.expected_fitness(a, b, 0.0);
  const MixOutcome pure_b = t.play_mix(a, b, 0);
  EXPECT_NEAR(fb_lo, pure_b.payoff_b, 1e-6 * std::abs(pure_b.payoff_b));
  (void)fb_hi;
  (void)fa_lo;
}

TEST(ReplicatorTest, NeutralPairStaysPut) {
  // Constant(W*) plays identically to TFT(W*) in every mix: fitnesses are
  // equal and the share does not move.
  const StageGame game(kParams, kBasic);
  const int w_star = EquilibriumFinder(game, 5).efficient_cw();
  const Tournament t(game, 5, 30);
  const ReplicatorDynamics dynamics(t);
  const auto result = dynamics.run(tft(w_star), constant(w_star), 0.6, 30);
  EXPECT_NEAR(result.final_share_a, 0.6, 1e-6);
  EXPECT_TRUE(result.converged);
}

TEST(ReplicatorTest, TftVsDeviantIsBistable) {
  // The structural result: under random matching, TFT individuals at high
  // share mostly play clean all-TFT games while every deviant poisons its
  // own game — TFT's fitness exceeds the deviant's and TFT fixates. At
  // low TFT share the lone cooperator is exploited everywhere and the
  // deviant fixates. Evolution thus *can* sustain the paper's efficient
  // NE, but only above a critical mass: TFT is an ESS with a basin, not a
  // global attractor.
  const StageGame game(kParams, kBasic);
  const int w_star = EquilibriumFinder(game, 5).efficient_cw();
  const Tournament t(game, 5, 150);
  const ReplicatorDynamics dynamics(t);
  const Contender a = tft(w_star);
  const Contender b = short_sighted(w_star / 4);

  const auto from_high = dynamics.run(a, b, 0.9, 120);
  EXPECT_GT(from_high.final_share_a, 0.95);

  // The downward drift is slow (the fitness gap is ~0.5% of fitness), so
  // give the dynamics room.
  const auto from_low = dynamics.run(a, b, 0.2, 800);
  EXPECT_LT(from_low.final_share_a, 0.05);

  // The all-deviant world is poorer than the all-TFT world it failed to
  // reach: the tragedy sits below the threshold.
  const auto [fa_pure, fb_unused] = dynamics.expected_fitness(a, b, 1.0);
  const auto [fa_unused, fb_pure] = dynamics.expected_fitness(a, b, 0.0);
  (void)fb_unused;
  (void)fa_unused;
  EXPECT_GT(fa_pure, fb_pure);
}

TEST(ReplicatorTest, FitnessAdvantageCrossesOnceWithShare) {
  // The bistability mechanism: f_A − f_B is negative at low TFT share
  // (the lone cooperator is exploited), positive at high share (deviants
  // poison only their own games), and crosses zero exactly once — the
  // basin boundary. (The gap is not globally monotone: it dips slightly
  // before rising.)
  const StageGame game(kParams, kBasic);
  const int w_star = EquilibriumFinder(game, 5).efficient_cw();
  const Tournament t(game, 5, 150);
  const ReplicatorDynamics dynamics(t);
  const Contender a = tft(w_star);
  const Contender b = short_sighted(w_star / 4);
  int sign_changes = 0;
  bool have_prev = false;
  bool prev_negative = false;
  for (double share = 0.05; share <= 0.96; share += 0.05) {
    const auto [fa, fb] = dynamics.expected_fitness(a, b, share);
    const bool negative = (fa - fb) < 0.0;
    if (have_prev && negative != prev_negative) ++sign_changes;
    prev_negative = negative;
    have_prev = true;
  }
  EXPECT_EQ(sign_changes, 1);
  // Edge signs anchor the two basins.
  const auto [fa_lo, fb_lo] = dynamics.expected_fitness(a, b, 0.05);
  const auto [fa_hi, fb_hi] = dynamics.expected_fitness(a, b, 0.95);
  EXPECT_LT(fa_lo, fb_lo);
  EXPECT_GT(fa_hi, fb_hi);
}

TEST(ReplicatorTest, TrajectoriesAreMonotoneWithinEachBasin) {
  const StageGame game(kParams, kBasic);
  const int w_star = EquilibriumFinder(game, 5).efficient_cw();
  const Tournament t(game, 5, 150);
  const ReplicatorDynamics dynamics(t);
  const Contender a = tft(w_star);
  const Contender b = short_sighted(w_star / 4);
  const auto up = dynamics.run(a, b, 0.85, 60);
  for (std::size_t g = 1; g < up.trajectory.size(); ++g) {
    EXPECT_GE(up.trajectory[g].share_a,
              up.trajectory[g - 1].share_a - 1e-12);
  }
  const auto down = dynamics.run(a, b, 0.2, 60);
  for (std::size_t g = 1; g < down.trajectory.size(); ++g) {
    EXPECT_LE(down.trajectory[g].share_a,
              down.trajectory[g - 1].share_a + 1e-12);
  }
}

}  // namespace
}  // namespace smac::game
