#include "game/asymmetric.hpp"

#include <gtest/gtest.h>

#include "game/equilibrium.hpp"
#include "game/stage_game.hpp"

namespace smac::game {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();
constexpr auto kBasic = phy::AccessMode::kBasic;

AsymmetricGame two_classes(double cost_cheap = 0.01, double cost_dear = 0.2,
                           int count = 3) {
  return AsymmetricGame(kParams, kBasic,
                        {{1.0, cost_cheap, count}, {1.0, cost_dear, count}});
}

TEST(AsymmetricGameTest, ValidatesConstruction) {
  EXPECT_THROW(AsymmetricGame(kParams, kBasic, {}), std::invalid_argument);
  EXPECT_THROW(AsymmetricGame(kParams, kBasic, {{0.0, 0.01, 2}}),
               std::invalid_argument);
  EXPECT_THROW(AsymmetricGame(kParams, kBasic, {{1.0, -0.1, 2}}),
               std::invalid_argument);
  EXPECT_THROW(AsymmetricGame(kParams, kBasic, {{1.0, 0.01, 0}}),
               std::invalid_argument);
  EXPECT_THROW(AsymmetricGame(kParams, kBasic, {{1.0, 0.01, 1}}),
               std::invalid_argument);  // single player overall
}

TEST(AsymmetricGameTest, ClassBookkeeping) {
  const AsymmetricGame game = two_classes();
  EXPECT_EQ(game.player_count(), 6u);
  EXPECT_EQ(game.class_count(), 2u);
  EXPECT_EQ(game.class_index(0), 0u);
  EXPECT_EQ(game.class_index(3), 1u);
  EXPECT_DOUBLE_EQ(game.player_class(4).cost, 0.2);
  EXPECT_THROW(game.class_index(6), std::out_of_range);
}

TEST(AsymmetricGameTest, UniformClassesReproduceSymmetricGame) {
  // One class with the paper's (g, e) must match StageGame exactly.
  const AsymmetricGame game(kParams, kBasic, {{1.0, 0.01, 5}});
  const StageGame reference(kParams, kBasic);
  const std::vector<int> profile{40, 80, 120, 160, 200};
  const auto u_asym = game.utility_rates(profile);
  const auto u_ref = reference.utility_rates(profile);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    EXPECT_NEAR(u_asym[i], u_ref[i], 1e-15);
  }
  EXPECT_EQ(game.preferred_common_window(0),
            EquilibriumFinder(reference, 5).efficient_cw());
}

TEST(AsymmetricGameTest, CostlierClassEarnsLessAtSameWindow) {
  const AsymmetricGame game = two_classes();
  const auto u = game.utility_rates(std::vector<int>(6, 100));
  EXPECT_GT(u[0], u[3]);  // cheap-cost player vs dear-cost player
  EXPECT_NEAR(u[0], u[1], 1e-12);
  EXPECT_NEAR(u[3], u[4], 1e-12);
}

TEST(AsymmetricGameTest, DearClassPrefersLargerWindows) {
  // Expensive transmissions favor fewer, safer attempts: the dear class's
  // preferred common window exceeds the cheap class's.
  const AsymmetricGame game = two_classes(0.01, 0.35);
  const int w_cheap = game.preferred_common_window(0);
  const int w_dear = game.preferred_common_window(1);
  EXPECT_GT(w_dear, w_cheap);
}

TEST(AsymmetricGameTest, TftOutcomeIsMinimumPreference) {
  const AsymmetricGame game = two_classes(0.01, 0.35);
  EXPECT_EQ(game.tft_outcome_window(),
            std::min(game.preferred_common_window(0),
                     game.preferred_common_window(1)));
}

TEST(AsymmetricGameTest, WelfareOptimumBetweenClassPreferences) {
  const AsymmetricGame game = two_classes(0.01, 0.35);
  const int w_cheap = game.preferred_common_window(0);
  const int w_dear = game.preferred_common_window(1);
  const int w_welfare = game.welfare_maximizing_common_window();
  EXPECT_GE(w_welfare, std::min(w_cheap, w_dear));
  EXPECT_LE(w_welfare, std::max(w_cheap, w_dear));
}

TEST(AsymmetricGameTest, TftOutcomeShortchangesTheDearClass) {
  // At W_m = min preference, the dear class earns less than at its own
  // preferred window — the single-hop analogue of Theorem 3's
  // "not globally optimal" conclusion.
  const AsymmetricGame game = two_classes(0.01, 0.35);
  const int w_m = game.tft_outcome_window();
  const int w_dear = game.preferred_common_window(1);
  EXPECT_LT(game.common_window_utility(1, w_m),
            game.common_window_utility(1, w_dear));
}

TEST(AsymmetricGameTest, BestResponseUndercutsCooperators) {
  const AsymmetricGame game = two_classes();
  const std::vector<int> cooperative(6, 150);
  const int response = game.best_response(cooperative, 0);
  EXPECT_LT(response, 150);  // myopic aggression, as in the symmetric game
}

TEST(AsymmetricGameTest, IteratedBestResponseCollapses) {
  const AsymmetricGame game = two_classes();
  const auto result =
      game.iterated_best_response(std::vector<int>(6, 150), 30);
  EXPECT_TRUE(result.converged);
  // The stage-game NE is aggressive: windows far below the cooperative
  // benchmark for at least the cheap class.
  EXPECT_LT(result.profile[0], 40);
}

TEST(AsymmetricGameTest, IteratedBestResponseValidatesInput) {
  const AsymmetricGame game = two_classes();
  EXPECT_THROW(game.iterated_best_response({100, 100}, 10),
               std::invalid_argument);
  EXPECT_THROW(game.best_response(std::vector<int>(6, 100), 6),
               std::invalid_argument);
}

TEST(AsymmetricGameTest, HighGainClassToleratesCollisionsBetter) {
  // Larger g (same e) shifts the preferred window down: each success is
  // worth more relative to the energy price.
  const AsymmetricGame game(kParams, kBasic,
                            {{4.0, 0.05, 3}, {1.0, 0.05, 3}});
  EXPECT_LE(game.preferred_common_window(0),
            game.preferred_common_window(1));
}

}  // namespace
}  // namespace smac::game
