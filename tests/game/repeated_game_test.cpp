#include "game/repeated_game.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smac::game {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();
constexpr auto kBasic = phy::AccessMode::kBasic;

TEST(RepeatedGameTest, ValidatesConstruction) {
  const StageGame game(kParams, kBasic);
  EXPECT_THROW(RepeatedGameEngine(game, {}), std::invalid_argument);
  std::vector<std::unique_ptr<Strategy>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(RepeatedGameEngine(game, std::move(with_null)),
               std::invalid_argument);
}

TEST(RepeatedGameTest, RejectsZeroStages) {
  const StageGame game(kParams, kBasic);
  RepeatedGameEngine engine(game, make_tft_population(2, 64));
  EXPECT_THROW(engine.play(0), std::invalid_argument);
}

TEST(RepeatedGameTest, AllTftStaysPut) {
  const StageGame game(kParams, kBasic);
  RepeatedGameEngine engine(game, make_tft_population(4, 76));
  const auto result = engine.play(5);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 76);
  EXPECT_EQ(result.stable_from, 0);
  for (const auto& record : result.history) {
    for (int w : record.cw) EXPECT_EQ(w, 76);
  }
}

TEST(RepeatedGameTest, TftConvergesToMinimumInitialWindow) {
  // Heterogeneous starts: TFT drags everyone to the smallest initial CW
  // within one stage (single hop = full observation).
  const StageGame game(kParams, kBasic);
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.push_back(std::make_unique<TitForTat>(100));
  pop.push_back(std::make_unique<TitForTat>(60));
  pop.push_back(std::make_unique<TitForTat>(150));
  RepeatedGameEngine engine(game, std::move(pop));
  const auto result = engine.play(4);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 60);
  EXPECT_EQ(result.history[0].cw, (std::vector<int>{100, 60, 150}));
  EXPECT_EQ(result.history[1].cw, (std::vector<int>{60, 60, 60}));
}

TEST(RepeatedGameTest, TftFollowsConstantDefector) {
  const StageGame game(kParams, kBasic);
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.push_back(std::make_unique<ConstantStrategy>(30));
  pop.push_back(std::make_unique<TitForTat>(76));
  pop.push_back(std::make_unique<TitForTat>(76));
  RepeatedGameEngine engine(game, std::move(pop));
  const auto result = engine.play(3);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 30);
}

TEST(RepeatedGameTest, DiscountedUtilityMatchesManualSum) {
  const StageGame game(kParams, kBasic);
  RepeatedGameEngine engine(game, make_tft_population(2, 64));
  const int stages = 6;
  const auto result = engine.play(stages);
  const double u_stage = game.homogeneous_stage_utility(64, 2);
  double expected = 0.0;
  double d = 1.0;
  for (int k = 0; k < stages; ++k) {
    expected += d * u_stage;
    d *= kParams.discount;
  }
  EXPECT_NEAR(result.discounted_utility[0], expected,
              std::abs(expected) * 1e-9);
  EXPECT_NEAR(result.total_utility[0], stages * u_stage,
              std::abs(u_stage) * 1e-6);
}

TEST(RepeatedGameTest, StableFromDetectsTransition) {
  const StageGame game(kParams, kBasic);
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.push_back(std::make_unique<MaliciousStrategy>(100, 10, 3));
  pop.push_back(std::make_unique<TitForTat>(100));
  RepeatedGameEngine engine(game, std::move(pop));
  const auto result = engine.play(8);
  // Stage 0..2: (100,100); stage 3: (10,100); stage 4+: (10,10).
  EXPECT_EQ(result.history[2].cw, (std::vector<int>{100, 100}));
  EXPECT_EQ(result.history[3].cw, (std::vector<int>{10, 100}));
  EXPECT_EQ(result.history[4].cw, (std::vector<int>{10, 10}));
  EXPECT_EQ(result.stable_from, 4);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 10);
}

TEST(RepeatedGameTest, NoConvergenceReportedWhenHeterogeneous) {
  const StageGame game(kParams, kBasic);
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.push_back(std::make_unique<ConstantStrategy>(30));
  pop.push_back(std::make_unique<ConstantStrategy>(60));
  RepeatedGameEngine engine(game, std::move(pop));
  const auto result = engine.play(3);
  EXPECT_FALSE(result.converged_cw.has_value());
}

TEST(RepeatedGameTest, MyopicPopulationRatchetsDown) {
  // Everyone short-sighted: myopic best responses drive windows far below
  // the efficient NE — the Cagalj-style degradation the paper discusses.
  const StageGame game(kParams, kBasic);
  auto oracle = [&game](const std::vector<int>& profile, std::size_t self) {
    return game.utility_rates(profile)[self];
  };
  std::vector<std::unique_ptr<Strategy>> pop;
  for (int i = 0; i < 3; ++i) {
    pop.push_back(std::make_unique<MyopicBestResponse>(76, 512, oracle));
  }
  RepeatedGameEngine engine(game, std::move(pop));
  const auto result = engine.play(6);
  const int final_w = result.history.back().cw.front();
  EXPECT_LT(final_w, 20);  // collapsed well below W_c* = 76
  // And the realized utility is far below the efficient NE's.
  const double u_final = game.homogeneous_utility_rate(
      std::max(final_w, 1), 3);
  const double u_star = game.homogeneous_utility_rate(76, 3);
  EXPECT_LT(u_final, 0.75 * u_star);
}

TEST(RepeatedGameTest, GtftPopulationStable) {
  const StageGame game(kParams, kBasic);
  RepeatedGameEngine engine(game, make_gtft_population(3, 76, 0.9, 2));
  const auto result = engine.play(5);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 76);
}

}  // namespace
}  // namespace smac::game
