// City-scale determinism pins (`ctest -L parallel`): every deterministic
// field of CityScaleResult is a pure function of CityScaleConfig —
// independent of the SolverService pool width (--jobs) and of spatial-
// index bucket insertion order. This is the test behind the bench's
// byte-identical-JSON claim (bench/city_scale.cpp): the JSON writer only
// prints the fields compared here.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "multihop/city_scale.hpp"
#include "multihop/local_game.hpp"
#include "multihop/spatial_index.hpp"
#include "phy/parameters.hpp"
#include "util/rng.hpp"

namespace smac::multihop {
namespace {

void expect_identical(const CityScaleResult& a, const CityScaleResult& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.arena_m, b.arena_m);  // bitwise
  ASSERT_EQ(a.stage.size(), b.stage.size());
  for (std::size_t k = 0; k < a.stage.size(); ++k) {
    const CityScaleStage& x = a.stage[k];
    const CityScaleStage& y = b.stage[k];
    EXPECT_EQ(x.stage, y.stage);
    EXPECT_EQ(x.online, y.online);
    EXPECT_EQ(x.edges, y.edges);
    EXPECT_EQ(x.crashes, y.crashes);
    EXPECT_EQ(x.joins, y.joins);
    EXPECT_EQ(x.update.moved, y.update.moved);
    EXPECT_EQ(x.update.rebucketed, y.update.rebucketed);
    EXPECT_EQ(x.update.rescanned, y.update.rescanned);
    EXPECT_EQ(x.converged_w, y.converged_w);
    EXPECT_EQ(x.tft_stages, y.tft_stages);
    EXPECT_EQ(x.priced_nodes, y.priced_nodes);
    EXPECT_EQ(x.seed_classes, y.seed_classes);
    EXPECT_EQ(x.converged_classes, y.converged_classes);
    // Bitwise — these are the %.17g doubles in BENCH_city_scale.json.
    EXPECT_EQ(x.quasi_optimal_fraction, y.quasi_optimal_fraction);
    EXPECT_EQ(x.mean_payoff_fraction, y.mean_payoff_fraction);
    EXPECT_EQ(x.min_payoff_fraction, y.min_payoff_fraction);
  }
  EXPECT_EQ(a.cache.size, b.cache.size);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
}

TEST(CityScaleInvarianceTest, JobsOneVersusFourBitwiseEqual) {
  CityScaleConfig config;
  config.nodes = 1000;
  config.stages = 2;
  config.seed = 2026;

  config.solver_jobs = 1;
  const CityScaleResult sequential = run_city_scale(config);
  config.solver_jobs = 4;
  const CityScaleResult pooled = run_city_scale(config);

  expect_identical(sequential, pooled);

  // And the run did something: mobility moved nodes, churn fired, pricing
  // covered the active set.
  EXPECT_GT(sequential.stage.at(1).update.moved, 0u);
  EXPECT_GT(sequential.stage.at(0).priced_nodes, 900u);
  EXPECT_GT(sequential.cache.hits, 0u);
}

TEST(CityScaleInvarianceTest, RepeatedRunsAreBitwiseStable) {
  CityScaleConfig config;
  config.nodes = 400;
  config.stages = 2;
  config.seed = 99;
  expect_identical(run_city_scale(config), run_city_scale(config));
}

TEST(CityScaleInvarianceTest, BucketInsertionOrderCannotLeakIntoResults) {
  // Build the same 1000-node layout with shuffled bucket insertion and
  // run the downstream pipeline (local agreements + graph-TFT) on both:
  // identical outputs, node by node.
  constexpr std::size_t kNodes = 1000;
  const double arena = city_arena_side_m(kNodes, 250.0, 12.0);
  util::Rng rng(5150);
  std::vector<Vec2> pos(kNodes);
  for (Vec2& p : pos) {
    p = {rng.uniform_real(0.0, arena), rng.uniform_real(0.0, arena)};
  }
  const SpatialIndex natural(pos, 250.0);

  std::vector<std::size_t> order(kNodes);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = kNodes - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_below(i + 1));
    std::swap(order[i], order[j]);
  }
  const SpatialIndex shuffled(pos, 250.0, order);

  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kRtsCts);
  const Topology topo_a = natural.topology();
  const Topology topo_b = shuffled.topology();
  const std::vector<int> seeds_a = local_efficient_cw(topo_a, game);
  const std::vector<int> seeds_b = local_efficient_cw(topo_b, game);
  EXPECT_EQ(seeds_a, seeds_b);

  const auto conv_a = tft_min_convergence(topo_a, seeds_a);
  const auto conv_b = tft_min_convergence(topo_b, seeds_b);
  EXPECT_EQ(conv_a.trajectory, conv_b.trajectory);
  EXPECT_EQ(conv_a.converged_w, conv_b.converged_w);
}

}  // namespace
}  // namespace smac::multihop
