// Jobs-invariance of the forgiveness grid: the exact table rows
// bench_fault_resilience prints (game::forgiveness_row strings) must be
// byte-identical whether the cells are computed serially or fanned out
// across a thread pool — cells are pure functions of (game, spec), and
// reduction happens in slot order.
#include <cstdint>
#include <string>
#include <vector>

#include "game/forgiveness_grid.hpp"
#include "game/stage_game.hpp"
#include "gtest/gtest.h"
#include "parallel/replication.hpp"
#include "parallel/thread_pool.hpp"
#include "phy/parameters.hpp"

namespace {

using namespace smac;

TEST(ForgivenessGridInvariance, RowsAreByteIdenticalAcrossJobs) {
  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kRtsCts);
  // A miniature of the bench grid: both noise levels, no filter vs
  // median, all four reaction rules — 16 cells, seeded exactly like the
  // bench (one injector stream per noise level).
  std::vector<game::ForgivenessCellSpec> specs;
  const std::vector<double> noise_levels{0.05, 0.15};
  for (std::size_t a = 0; a < noise_levels.size(); ++a) {
    for (const game::FilterKind kind :
         {game::FilterKind::kNone, game::FilterKind::kMedian}) {
      for (const game::ReactionRule rule :
           {game::ReactionRule::kTft, game::ReactionRule::kGtft,
            game::ReactionRule::kContriteTft,
            game::ReactionRule::kForgivingGtft}) {
        game::ForgivenessCellSpec spec;
        spec.rule = rule;
        spec.filter.kind = kind;
        spec.filter.window = 5;
        spec.noise_probability = noise_levels[a];
        spec.stages = 40;  // enough to diverge, cheap enough for a test
        spec.w_coop = 19;
        spec.seed = parallel::stream_seed(0xfa57 ^ 0xf0, a);
        specs.push_back(spec);
      }
    }
  }

  auto rows_at = [&](std::size_t jobs) {
    std::vector<std::vector<std::string>> rows(specs.size());
    if (jobs == 1) {
      for (std::size_t k = 0; k < specs.size(); ++k) {
        rows[k] = game::forgiveness_row(
            specs[k], game::run_forgiveness_cell(game, specs[k]));
      }
    } else {
      parallel::ThreadPool pool(jobs);
      pool.for_each_index(specs.size(), [&](std::size_t k) {
        rows[k] = game::forgiveness_row(
            specs[k], game::run_forgiveness_cell(game, specs[k]));
      });
    }
    return rows;
  };

  const auto serial = rows_at(1);
  const auto fanned = rows_at(4);
  ASSERT_EQ(serial.size(), fanned.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k], fanned[k]) << "cell " << k;
  }
  // Sanity on the content itself: every row carries the full grid shape.
  for (const auto& row : serial) {
    ASSERT_EQ(row.size(), 8u);
  }
}

}  // namespace
