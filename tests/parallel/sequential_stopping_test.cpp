// Sequential-stopping and streaming-reduction contract tests.
//
// The claims under test (src/parallel/replication.hpp):
//   * run_sequential's stop point is a pure function of the index-ordered
//     aggregate — identical at any jobs count;
//   * a stopped run's first k replications are bit-identical to a fixed-N
//     run of the same base seed (prefix property);
//   * streaming reduction buffers at most one batch of rows while
//     producing aggregates bit-identical to buffering every row and
//     calling util::summarize_replications;
//   * stop reasons, min_reps, batch boundaries, failure collection, and
//     rule validation behave as documented.
#include "parallel/replication.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace smac::parallel {
namespace {

// One noisy column (a uniform draw from the replication's own stream, so
// the value is a pure function of the seed) and one constant column.
std::vector<double> noisy_row(std::uint64_t seed, std::size_t /*index*/) {
  util::Rng rng(seed);
  return {rng.uniform01(), 7.25};
}

const std::vector<std::string> kNames{"noisy", "constant"};

void expect_bit_identical(const std::vector<util::MetricSummary>& a,
                          const std::vector<util::MetricSummary>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    EXPECT_EQ(a[m].name, b[m].name);
    EXPECT_EQ(a[m].count, b[m].count);
    // memcmp, not ==: the claim is bit-identity, not approximation.
    EXPECT_EQ(std::memcmp(&a[m].mean, &b[m].mean, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[m].stddev, &b[m].stddev, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[m].ci95, &b[m].ci95, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[m].min, &b[m].min, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[m].max, &b[m].max, sizeof(double)), 0);
  }
}

TEST(SequentialStoppingTest, StreamingTenThousandMatchesBufferedBitwise) {
  // The ISSUE acceptance criterion: a 10^4-replication run_summarized
  // stays O(batch_size) in memory while matching the buffered reduction.
  const std::size_t n = 10000;
  const ReplicationRunner runner({n, 42, 1});
  const ReplicationSummary streamed =
      runner.run_summarized(kNames, noisy_row);

  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back(noisy_row(stream_seed(42, i), i));
  }
  const auto buffered = util::summarize_replications(kNames, rows);

  expect_bit_identical(streamed.metrics, buffered);
  EXPECT_EQ(streamed.stopping.replications, n);
  EXPECT_EQ(streamed.stopping.samples, n);
  EXPECT_EQ(streamed.stopping.reason, StopReason::kMaxReps);
  EXPECT_FALSE(streamed.stopping.target_met());
  // O(batch) memory, self-reported: never more than one batch buffered.
  EXPECT_LE(streamed.peak_buffered_rows, kDefaultStoppingBatch);
  EXPECT_GT(streamed.peak_buffered_rows, 0u);
}

TEST(SequentialStoppingTest, StopPointIsJobsInvariant) {
  StoppingRule rule;
  rule.metric = "noisy";
  rule.ci_half_width_target = 0.05;
  rule.batch_size = 16;
  rule.max_reps = 2000;

  const ReplicationSummary s1 =
      ReplicationRunner({1, 7, 1}).run_sequential(kNames, rule, noisy_row);
  const ReplicationSummary s4 =
      ReplicationRunner({1, 7, 4}).run_sequential(kNames, rule, noisy_row);

  EXPECT_EQ(s1.stopping.replications, s4.stopping.replications);
  EXPECT_EQ(s1.stopping.samples, s4.stopping.samples);
  EXPECT_EQ(s1.stopping.reason, s4.stopping.reason);
  EXPECT_EQ(std::memcmp(&s1.stopping.achieved_half_width,
                        &s4.stopping.achieved_half_width, sizeof(double)),
            0);
  expect_bit_identical(s1.metrics, s4.metrics);
}

TEST(SequentialStoppingTest, StoppedRunPrefixMatchesFixedN) {
  StoppingRule rule;
  rule.metric = "noisy";
  rule.ci_half_width_target = 0.05;
  rule.batch_size = 16;
  rule.max_reps = 2000;

  const ReplicationRunner runner({1, 7, 1});
  const ReplicationSummary stopped =
      runner.run_sequential(kNames, rule, noisy_row);
  ASSERT_EQ(stopped.stopping.reason, StopReason::kCiTarget);
  EXPECT_TRUE(stopped.stopping.target_met());
  const std::size_t k = stopped.stopping.replications;
  ASSERT_GT(k, 0u);
  ASSERT_LT(k, rule.max_reps);
  // Batches are fixed runs of consecutive indices, so the stop point
  // lands on a batch boundary.
  EXPECT_EQ(k % rule.batch_size, 0u);

  // A fixed-N run over exactly k replications sees the same seeds in the
  // same order — its aggregates must be bit-identical to the stopped run.
  const ReplicationSummary fixed =
      ReplicationRunner({k, 7, 1}).run_summarized(kNames, noisy_row);
  expect_bit_identical(stopped.metrics, fixed.metrics);
  EXPECT_LE(stopped.stopping.achieved_half_width,
            rule.ci_half_width_target);
}

TEST(SequentialStoppingTest, ZeroVarianceMetricStopsAtFirstBoundary) {
  StoppingRule rule;
  rule.metric = "constant";  // stddev 0 ⇒ half-width 0 after two samples
  rule.ci_half_width_target = 1e-12;
  rule.batch_size = 8;
  rule.max_reps = 100;

  const ReplicationSummary s =
      ReplicationRunner({1, 3, 1}).run_sequential(kNames, rule, noisy_row);
  EXPECT_EQ(s.stopping.replications, 8u);
  EXPECT_EQ(s.stopping.reason, StopReason::kCiTarget);
  EXPECT_EQ(s.stopping.achieved_half_width, 0.0);
  EXPECT_EQ(s.metrics[1].mean, 7.25);
}

TEST(SequentialStoppingTest, MinRepsDelaysStopToCoveringBoundary) {
  StoppingRule rule;
  rule.metric = "constant";
  rule.ci_half_width_target = 1e-12;
  rule.batch_size = 8;
  rule.min_reps = 20;  // first boundary ≥ 20 is 24
  rule.max_reps = 100;

  const ReplicationSummary s =
      ReplicationRunner({1, 3, 1}).run_sequential(kNames, rule, noisy_row);
  EXPECT_EQ(s.stopping.replications, 24u);
  EXPECT_EQ(s.stopping.reason, StopReason::kCiTarget);
}

TEST(SequentialStoppingTest, UnreachableTargetRunsToMaxReps) {
  StoppingRule rule;
  rule.metric = "noisy";
  rule.ci_half_width_target = 1e-9;
  rule.batch_size = 16;
  rule.max_reps = 64;

  const ReplicationSummary s =
      ReplicationRunner({1, 11, 1}).run_sequential(kNames, rule, noisy_row);
  EXPECT_EQ(s.stopping.replications, 64u);
  EXPECT_EQ(s.stopping.reason, StopReason::kMaxReps);
  EXPECT_FALSE(s.stopping.target_met());
  EXPECT_GT(s.stopping.achieved_half_width, rule.ci_half_width_target);
}

TEST(SequentialStoppingTest, WiderConfidenceNeedsMoreReplications) {
  StoppingRule rule;
  rule.metric = "noisy";
  rule.ci_half_width_target = 0.06;
  rule.batch_size = 8;
  rule.max_reps = 4000;

  rule.confidence = 0.90;
  const std::size_t reps90 = ReplicationRunner({1, 5, 1})
                                 .run_sequential(kNames, rule, noisy_row)
                                 .stopping.replications;
  rule.confidence = 0.99;
  const std::size_t reps99 = ReplicationRunner({1, 5, 1})
                                 .run_sequential(kNames, rule, noisy_row)
                                 .stopping.replications;
  // A 99% interval is wider than a 90% one at the same sample count, so
  // reaching the same half-width target must take at least as many reps.
  EXPECT_GE(reps99, reps90);
  EXPECT_GT(reps99, 0u);
}

TEST(SequentialStoppingTest, RelativeTargetStopsEarly) {
  // 20% of |mean| on the noisy uniform column (mean ~0.5) is an easy
  // target — far fewer replications than the 2000-rep budget.
  StoppingRule rule;
  rule.metric = "noisy";
  rule.ci_rel_target = 0.20;
  rule.batch_size = 16;
  rule.max_reps = 2000;

  const ReplicationSummary s =
      ReplicationRunner({1, 7, 1}).run_sequential(kNames, rule, noisy_row);
  EXPECT_EQ(s.stopping.reason, StopReason::kCiTarget);
  EXPECT_TRUE(s.stopping.target_met());
  EXPECT_LT(s.stopping.replications, rule.max_reps);
  EXPECT_EQ(s.stopping.target_rel_half_width, 0.20);
  EXPECT_NE(s.stopping.watched_mean, 0.0);
  EXPECT_LE(s.stopping.achieved_half_width,
            rule.ci_rel_target * std::abs(s.stopping.watched_mean));
  EXPECT_LE(s.stopping.achieved_rel_half_width(), rule.ci_rel_target);
  // Scale invariance is the point of the relative mode: the summary line
  // names the percentage, not an absolute width.
  EXPECT_NE(s.stopping.summary().find("% of |mean|"), std::string::npos);
}

TEST(SequentialStoppingTest, RelativeStopPointIsJobsInvariant) {
  StoppingRule rule;
  rule.metric = "noisy";
  rule.ci_rel_target = 0.15;
  rule.batch_size = 16;
  rule.max_reps = 2000;

  const ReplicationSummary s1 =
      ReplicationRunner({1, 7, 1}).run_sequential(kNames, rule, noisy_row);
  const ReplicationSummary s4 =
      ReplicationRunner({1, 7, 4}).run_sequential(kNames, rule, noisy_row);
  EXPECT_EQ(s1.stopping.replications, s4.stopping.replications);
  EXPECT_EQ(s1.stopping.reason, s4.stopping.reason);
  expect_bit_identical(s1.metrics, s4.metrics);
}

TEST(SequentialStoppingTest, AbsoluteAndRelativeTargetsCombineAsOr) {
  // An unreachable absolute target alone runs to max_reps; adding an easy
  // relative target stops the run early — whichever is met first wins.
  StoppingRule rule;
  rule.metric = "noisy";
  rule.ci_half_width_target = 1e-9;  // unreachable within the budget
  rule.batch_size = 16;
  rule.max_reps = 256;

  const ReplicationSummary abs_only =
      ReplicationRunner({1, 11, 1}).run_sequential(kNames, rule, noisy_row);
  EXPECT_EQ(abs_only.stopping.reason, StopReason::kMaxReps);

  rule.ci_rel_target = 0.5;  // trivially met almost immediately
  const ReplicationSummary both =
      ReplicationRunner({1, 11, 1}).run_sequential(kNames, rule, noisy_row);
  EXPECT_EQ(both.stopping.reason, StopReason::kCiTarget);
  EXPECT_TRUE(both.stopping.target_met());
  EXPECT_LT(both.stopping.replications, abs_only.stopping.replications);
  // Both targets appear in the summary line.
  EXPECT_NE(both.stopping.summary().find("or"), std::string::npos);
}

TEST(SequentialStoppingTest, RelativeTargetUnreachableOnZeroMeanMetric) {
  // A mean straddling zero makes any relative target meaningless:
  // achieved_rel_half_width() diverges and the run exhausts its budget.
  StoppingRule rule;
  rule.metric = "centered";
  rule.ci_rel_target = 0.5;
  rule.batch_size = 8;
  rule.max_reps = 64;

  const ReplicationSummary s = ReplicationRunner({1, 13, 1}).run_sequential(
      {"centered"}, rule, [](std::uint64_t seed, std::size_t index) {
        // Deterministic alternating pair: mean exactly 0 at boundaries.
        (void)seed;
        return std::vector<double>{index % 2 == 0 ? 1.0 : -1.0};
      });
  EXPECT_EQ(s.stopping.reason, StopReason::kMaxReps);
  EXPECT_FALSE(s.stopping.target_met());
  // Streaming accumulation leaves the mean at rounding noise, not an
  // exact zero — the relative criterion still can't be satisfied.
  EXPECT_NEAR(s.stopping.watched_mean, 0.0, 1e-15);
}

TEST(SequentialStoppingTest, ValidatesRelativeTargetInputs) {
  const ReplicationRunner runner({4, 1, 1});
  StoppingRule rule;
  rule.ci_rel_target = -0.1;
  EXPECT_THROW(runner.run_sequential(kNames, rule, noisy_row),
               std::invalid_argument);
  rule = {};
  rule.ci_rel_target = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(runner.run_sequential(kNames, rule, noisy_row),
               std::invalid_argument);
  rule = {};
  rule.ci_rel_target = std::numeric_limits<double>::infinity();
  EXPECT_THROW(runner.run_sequential(kNames, rule, noisy_row),
               std::invalid_argument);
}

TEST(SequentialStoppingTest, CollectedFailuresAreExcludedFromAggregates) {
  ReplicationPlan plan{12, 9, 1};
  plan.failure_policy = FailurePolicy::kCollect;
  StoppingRule rule;
  rule.max_reps = 12;
  rule.batch_size = 4;

  const ReplicationSummary s =
      ReplicationRunner(plan).run_sequential(
          {"value"}, rule, [](std::uint64_t, std::size_t index) {
            if (index % 3 == 2) throw std::runtime_error("boom");
            return std::vector<double>{static_cast<double>(index)};
          });
  EXPECT_EQ(s.stopping.replications, 12u);
  EXPECT_EQ(s.stopping.samples, 8u);
  ASSERT_EQ(s.errors.size(), 4u);
  EXPECT_EQ(s.errors[0].index, 2u);
  EXPECT_EQ(s.errors[0].message, "boom");
  EXPECT_EQ(s.metrics[0].count, 8u);
}

TEST(SequentialStoppingTest, FailFastRethrowsFromBatch) {
  StoppingRule rule;
  rule.max_reps = 8;
  EXPECT_THROW(
      ReplicationRunner({8, 9, 1}).run_sequential(
          {"value"}, rule,
          [](std::uint64_t, std::size_t index) {
            if (index == 3) throw std::runtime_error("dead");
            return std::vector<double>{1.0};
          }),
      std::runtime_error);
}

TEST(SequentialStoppingTest, ValidatesRuleInputs) {
  const ReplicationRunner runner({4, 1, 1});
  StoppingRule rule;
  rule.metric = "no-such-metric";
  EXPECT_THROW(runner.run_sequential(kNames, rule, noisy_row),
               std::invalid_argument);
  rule = {};
  rule.confidence = 1.5;
  rule.ci_half_width_target = 0.1;
  EXPECT_THROW(runner.run_sequential(kNames, rule, noisy_row),
               std::invalid_argument);
  rule = {};
  rule.ci_half_width_target =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(runner.run_sequential(kNames, rule, noisy_row),
               std::invalid_argument);
  // Empty metric list: nothing to watch.
  rule = {};
  EXPECT_THROW(runner.run_sequential({}, rule, noisy_row),
               std::invalid_argument);
  // A zero-replication plan is rejected before any rule applies.
  EXPECT_THROW(ReplicationRunner({0, 1, 1}).run_sequential(kNames, {},
                                                           noisy_row),
               std::invalid_argument);
}

TEST(SequentialStoppingTest, RowWidthMismatchThrows) {
  StoppingRule rule;
  rule.max_reps = 4;
  EXPECT_THROW(
      ReplicationRunner({4, 1, 1}).run_sequential(
          kNames, rule,
          [](std::uint64_t, std::size_t) {
            return std::vector<double>{1.0};  // two metrics expected
          }),
      std::invalid_argument);
}

TEST(SequentialStoppingTest, SummaryLineNamesTheStop) {
  StoppingRule rule;
  rule.metric = "constant";
  rule.ci_half_width_target = 1e-12;
  rule.batch_size = 4;
  rule.max_reps = 32;
  const ReplicationSummary stopped =
      ReplicationRunner({1, 3, 1}).run_sequential(kNames, rule, noisy_row);
  const std::string seq = stopped.stopping.summary();
  EXPECT_NE(seq.find("sequential stopping"), std::string::npos);
  EXPECT_NE(seq.find("ci-target"), std::string::npos);
  EXPECT_NE(seq.find("constant"), std::string::npos);

  const ReplicationSummary fixed =
      ReplicationRunner({6, 3, 1}).run_summarized(kNames, noisy_row);
  const std::string fix = fixed.stopping.summary();
  EXPECT_NE(fix.find("fixed-N"), std::string::npos);
}

}  // namespace
}  // namespace smac::parallel
