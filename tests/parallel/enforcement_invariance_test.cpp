// Jobs-invariance of enforcement runs: a Tournament with the enforcement
// closed loop installed (detector → calibrated punishment →
// rehabilitation) must produce bit-identical payoffs and enforcement
// accounting whether its mixes run serially or fanned across a thread
// pool — the policy is a pure function of the observation sequence, and
// every mix seeds its own injector stream.
#include <cstdint>
#include <vector>

#include "game/equilibrium.hpp"
#include "game/reaction.hpp"
#include "game/tournament.hpp"
#include "gtest/gtest.h"
#include "phy/parameters.hpp"

namespace {

using namespace smac;

TEST(EnforcementInvariance, InvasionMatrixIsIdenticalAcrossJobs) {
  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kRtsCts);
  const int n = 6;
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();
  game::ReactionConfig rc;
  rc.w_agreed = w_star;
  fault::FaultPlan plan;
  plan.observation.noise_probability = 0.05;
  plan.observation.noise_magnitude = 4;

  // Contrite residents vs the two §V.D deviants: 3 × 3 enforced invasion
  // matrix under observation noise, the bench_enforcement setting in
  // miniature.
  std::vector<game::Contender> roster{
      game::enforcement_roster(game, n, w_star).at(2),
      game::deviant_roster(w_star).at(0),
      game::deviant_roster(w_star).at(1),
  };

  auto run_at = [&](std::size_t jobs) {
    game::Tournament t(game, n, 40, jobs);
    t.set_fault_plan(plan, 0xfa57);
    t.set_enforcement(rc);
    struct Cell {
      double a = 0.0, b = 0.0;
      int episodes = 0, punished = 0;
    };
    std::vector<Cell> cells;
    const auto matrix = t.invasion_matrix(roster);
    for (std::size_t i = 0; i < roster.size(); ++i) {
      for (std::size_t j = 0; j < roster.size(); ++j) {
        const auto mix = t.play_mix(roster[i], roster[j], n - 1);
        cells.push_back({mix.payoff_a, mix.payoff_b,
                         mix.enforcement.episodes,
                         mix.enforcement.punished_stages});
      }
    }
    return std::make_pair(matrix, cells);
  };

  const auto serial = run_at(1);
  const auto fanned = run_at(4);
  EXPECT_EQ(serial.first, fanned.first);
  ASSERT_EQ(serial.second.size(), fanned.second.size());
  for (std::size_t k = 0; k < serial.second.size(); ++k) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(serial.second[k].a, fanned.second[k].a) << "cell " << k;
    EXPECT_EQ(serial.second[k].b, fanned.second[k].b) << "cell " << k;
    EXPECT_EQ(serial.second[k].episodes, fanned.second[k].episodes);
    EXPECT_EQ(serial.second[k].punished, fanned.second[k].punished);
  }
}

}  // namespace
