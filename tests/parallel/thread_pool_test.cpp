#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace smac::parallel {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ForEachIndexCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  pool.for_each_index(visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ForEachIndexZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.for_each_index(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ForEachIndexResultsIndependentOfPoolSize) {
  // Task ordering / thread placement must not affect per-index output.
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(100, 0);
    pool.for_each_index(out.size(), [&](std::size_t i) {
      out[i] = i * i + 7;
    });
    return out;
  };
  const auto serial = compute(1);
  const auto wide = compute(4);
  EXPECT_EQ(serial, wide);
}

TEST(ThreadPoolTest, ForEachIndexPropagatesFirstException) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.for_each_index(50,
                          [&](std::size_t i) {
                            if (i == 10) throw std::runtime_error("boom");
                            ++ran;
                          }),
      std::runtime_error);
  EXPECT_LE(ran.load(), 49);
}

TEST(ThreadPoolTest, ZeroRequestsDefaultJobs) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_LE(pool.size(), ThreadPool::kMaxThreads);
}

TEST(ThreadPoolTest, DefaultJobsHonorsEnvOverride) {
  const char* saved = std::getenv("SMAC_JOBS");
  const std::string restore = saved ? saved : "";
  ::setenv("SMAC_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::default_jobs(), 3u);
  ::setenv("SMAC_JOBS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_jobs(), 1u);  // falls back to hardware
  if (saved) {
    ::setenv("SMAC_JOBS", restore.c_str(), 1);
  } else {
    ::unsetenv("SMAC_JOBS");
  }
}

}  // namespace
}  // namespace smac::parallel
