// Determinism regression tests for the parallel replication engine: the
// same base seed must give bit-identical results at jobs = 1 and jobs = 4
// for every replicated hot path (sim batch, multihop batch, tournament).
#include "parallel/replication.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <stdexcept>
#include <vector>

#include "game/equilibrium.hpp"
#include "game/stage_game.hpp"
#include "game/tournament.hpp"
#include "multihop/multihop_simulator.hpp"
#include "multihop/topology.hpp"
#include "sim/simulator.hpp"

namespace smac {
namespace {

TEST(StreamSeedTest, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(parallel::stream_seed(42, 7), parallel::stream_seed(42, 7));
  // Accessing streams in any order yields the same seeds.
  const auto late = parallel::stream_seed(42, 999);
  for (int i = 0; i < 10; ++i) (void)parallel::stream_seed(42, i);
  EXPECT_EQ(parallel::stream_seed(42, 999), late);
}

TEST(StreamSeedTest, DistinctAcrossIndicesAndBases) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL, ~0ULL}) {
    for (std::uint64_t i = 0; i < 500; ++i) {
      seeds.insert(parallel::stream_seed(base, i));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 500u);
}

TEST(StreamSeedTest, StreamRngMatchesSeededRng) {
  util::Rng direct(parallel::stream_seed(5, 3));
  util::Rng stream = parallel::stream_rng(5, 3);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(stream(), direct());
}

TEST(StreamSeedTest, AdjacentStreamsAreIndependent) {
  util::Rng a = parallel::stream_rng(1, 0);
  util::Rng b = parallel::stream_rng(1, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(ReplicationRunnerTest, ResultsInIndexOrder) {
  const parallel::ReplicationRunner runner({16, 9, 4});
  const auto out = runner.run(
      [](std::uint64_t /*seed*/, std::size_t index) { return 3 * index; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i);
}

TEST(ReplicationRunnerTest, SeedsMatchStreamDerivation) {
  const parallel::ReplicationRunner runner({8, 1234, 2});
  const auto seeds = runner.run(
      [](std::uint64_t seed, std::size_t /*index*/) { return seed; });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], parallel::stream_seed(1234, i));
  }
}

TEST(ReplicationRunnerTest, ZeroReplicationsThrows) {
  EXPECT_THROW(parallel::ReplicationRunner({0, 1, 1}),
               std::invalid_argument);
}

// Rng-driven payload: jobs must not change a single bit of any result.
TEST(ReplicationRunnerTest, JobsInvarianceBitIdentical) {
  auto experiment = [](std::uint64_t seed, std::size_t /*index*/) {
    util::Rng rng(seed);
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) acc += rng.uniform01();
    return acc;
  };
  const auto serial = parallel::ReplicationRunner({32, 77, 1}).run(experiment);
  const auto wide = parallel::ReplicationRunner({32, 77, 4}).run(experiment);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(std::memcmp(&serial[i], &wide[i], sizeof(double)), 0);
  }
}

TEST(ReplicationRunnerTest, SummarizedAggregatesMatchHandComputation) {
  const parallel::ReplicationRunner runner({4, 1, 2});
  const auto summary = runner.run_summarized(
      {"value"}, [](std::uint64_t /*seed*/, std::size_t index) {
        return std::vector<double>{static_cast<double>(index + 1)};
      });
  ASSERT_EQ(summary.metrics.size(), 1u);
  const auto& m = summary.metrics[0];
  EXPECT_EQ(m.name, "value");
  EXPECT_EQ(m.count, 4u);
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  // Sample stddev of {1,2,3,4} is sqrt(5/3).
  EXPECT_NEAR(m.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(m.ci95, 1.96 * std::sqrt(5.0 / 3.0) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.max, 4.0);
}

void expect_metrics_bit_identical(
    const std::vector<util::MetricSummary>& a,
    const std::vector<util::MetricSummary>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    EXPECT_EQ(a[m].name, b[m].name);
    EXPECT_EQ(a[m].count, b[m].count);
    EXPECT_EQ(std::memcmp(&a[m].mean, &b[m].mean, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[m].stddev, &b[m].stddev, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[m].ci95, &b[m].ci95, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[m].min, &b[m].min, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[m].max, &b[m].max, sizeof(double)), 0);
  }
}

TEST(ReplicatedSimTest, SimBatchJobsInvariance) {
  sim::SimConfig config;
  config.seed = 2024;
  const std::vector<int> profile{32, 64, 64, 64};
  const auto serial = sim::run_replicated(config, profile, 4000, 6, 1);
  const auto wide = sim::run_replicated(config, profile, 4000, 6, 4);
  EXPECT_EQ(serial.stopping.replications, 6u);
  EXPECT_EQ(wide.stopping.replications, 6u);
  EXPECT_EQ(serial.stopping.samples, wide.stopping.samples);
  expect_metrics_bit_identical(serial.metrics, wide.metrics);
}

// The streaming batch keeps only aggregates; the documented way back to
// one replication is re-running it from its stream seed. A 1-replication
// batch's mean must therefore equal the directly reconstructed run.
TEST(ReplicatedSimTest, SingleReplicationReconstructsFromStreamSeed) {
  sim::SimConfig config;
  config.seed = 2024;
  const std::vector<int> profile{32, 64, 64, 64};
  const auto batch = sim::run_replicated(config, profile, 4000, 1, 1);

  sim::SimConfig replica = config;
  replica.seed = parallel::stream_seed(config.seed, 0);
  sim::Simulator simulator(replica, profile);
  const sim::SimResult direct = simulator.run_slots(4000);
  ASSERT_FALSE(batch.metrics.empty());
  EXPECT_EQ(batch.metrics[0].name, "throughput");
  EXPECT_EQ(std::memcmp(&batch.metrics[0].mean, &direct.throughput,
                        sizeof(double)),
            0);
}

TEST(ReplicatedSimTest, DifferentBaseSeedsDiffer) {
  sim::SimConfig a;
  a.seed = 1;
  sim::SimConfig b;
  b.seed = 2;
  const std::vector<int> profile(4, 64);
  const auto batch_a = sim::run_replicated(a, profile, 4000, 3, 1);
  const auto batch_b = sim::run_replicated(b, profile, 4000, 3, 1);
  EXPECT_NE(batch_a.metrics[0].mean, batch_b.metrics[0].mean);
}

TEST(ReplicatedMultihopTest, MultihopBatchJobsInvariance) {
  std::vector<multihop::Vec2> pos;
  for (int i = 0; i < 6; ++i) pos.push_back({i * 200.0, 0.0});
  const multihop::Topology topo(pos, 250.0);
  multihop::MultihopConfig config;
  config.seed = 99;
  const std::vector<int> profile(6, 32);
  const auto serial = multihop::run_replicated(config, topo, profile, 1500,
                                               5, 1);
  const auto wide = multihop::run_replicated(config, topo, profile, 1500,
                                             5, 4);
  EXPECT_EQ(serial.stopping.replications, 5u);
  EXPECT_EQ(wide.stopping.replications, 5u);
  expect_metrics_bit_identical(serial.metrics, wide.metrics);
}

TEST(ParallelTournamentTest, ScoresAndMatrixJobsInvariant) {
  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kBasic);
  const int n = 3;
  const int w = game::EquilibriumFinder(game, n).efficient_cw();
  const auto roster = game::standard_roster(game, n, w);
  const game::Tournament serial(game, n, 12, 1);
  const game::Tournament wide(game, n, 12, 3);

  const auto scores_serial = serial.round_robin_scores(roster);
  const auto scores_wide = wide.round_robin_scores(roster);
  ASSERT_EQ(scores_serial.size(), scores_wide.size());
  for (std::size_t i = 0; i < scores_serial.size(); ++i) {
    EXPECT_EQ(std::memcmp(&scores_serial[i], &scores_wide[i],
                          sizeof(double)),
              0);
  }
  EXPECT_EQ(serial.invasion_matrix(roster), wide.invasion_matrix(roster));
}

}  // namespace
}  // namespace smac
