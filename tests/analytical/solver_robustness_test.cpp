// Robustness of the non-throwing solver entry points: edge profiles that
// historically aborted sweeps must now come back as a SolveStatus with
// finite state, and the clamped window_for_tau must return its cap rather
// than throwing mid-sweep. Also covers the thread-safe NetworkSolveCache.
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analytical/fixed_point_solver.hpp"
#include "analytical/solver_cache.hpp"
#include "gtest/gtest.h"

namespace {

using namespace smac::analytical;

void expect_finite_state(const TrySolveResult& r, std::size_t n) {
  ASSERT_EQ(r.state.tau.size(), n);
  ASSERT_EQ(r.state.p.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(std::isfinite(r.state.tau[i])) << "tau[" << i << "]";
    EXPECT_TRUE(std::isfinite(r.state.p[i])) << "p[" << i << "]";
    EXPECT_GE(r.state.tau[i], 0.0);
    EXPECT_LE(r.state.tau[i], 1.0);
    EXPECT_GE(r.state.p[i], 0.0);
    EXPECT_LE(r.state.p[i], 1.0);
  }
  EXPECT_TRUE(std::isfinite(r.diagnostics.residual));
}

TEST(SolverRobustness, AllGreedyWindowOneNeverThrows) {
  // W = 1 everywhere: every node transmits every slot, p -> 1. The most
  // collision-saturated profile the game can produce.
  for (int n : {2, 6, 20}) {
    const std::vector<int> w(static_cast<std::size_t>(n), 1);
    TrySolveResult r;
    ASSERT_NO_THROW(r = try_solve_network(w, 5));
    expect_finite_state(r, w.size());
    EXPECT_TRUE(usable(r.diagnostics.status));
  }
}

TEST(SolverRobustness, LargePopulationConverges) {
  const std::vector<int> w(50, 64);
  TrySolveResult r;
  ASSERT_NO_THROW(r = try_solve_network(w, 5));
  expect_finite_state(r, w.size());
  EXPECT_EQ(r.diagnostics.status, SolveStatus::kConverged);
}

TEST(SolverRobustness, NearUnityPacketErrorRate) {
  const std::vector<int> w{16, 32, 64, 128};
  for (double per : {0.9, 0.99}) {
    TrySolveResult r;
    ASSERT_NO_THROW(r = try_solve_network(w, 5, {}, per));
    expect_finite_state(r, w.size());
    EXPECT_TRUE(usable(r.diagnostics.status)) << "PER = " << per;
  }
}

TEST(SolverRobustness, ExtremeMixedProfileNeverThrows) {
  // One always-transmit node against very patient ones: tau spread of
  // three orders of magnitude stresses the damped iteration.
  const std::vector<int> w{1, 1024, 1, 1024, 1024, 1024};
  TrySolveResult r;
  ASSERT_NO_THROW(r = try_solve_network(w, 5));
  expect_finite_state(r, w.size());
  EXPECT_TRUE(usable(r.diagnostics.status));
  EXPECT_GT(r.state.tau[0], r.state.tau[1]);
}

TEST(SolverRobustness, InvalidInputsFailInsteadOfThrowing) {
  EXPECT_EQ(try_solve_network({}, 5).diagnostics.status, SolveStatus::kFailed);
  EXPECT_EQ(try_solve_network({0, 16}, 5).diagnostics.status,
            SolveStatus::kFailed);
  EXPECT_EQ(try_solve_network({16, 16}, -1).diagnostics.status,
            SolveStatus::kFailed);
  EXPECT_EQ(try_solve_network({16, 16}, 5, {}, 1.5).diagnostics.status,
            SolveStatus::kFailed);
  EXPECT_STREQ(try_solve_network({}, 5).diagnostics.method, "invalid");
  // The throwing entry point still throws — public API contract.
  EXPECT_THROW(solve_network({}, 5), std::invalid_argument);
  EXPECT_THROW(solve_network({0}, 5), std::invalid_argument);
}

TEST(SolverRobustness, TryHomogeneousTauEdgeCases) {
  for (double w : {1.0, 2.0, 1e6}) {
    for (int n : {1, 2, 50}) {
      TryTauResult r;
      ASSERT_NO_THROW(r = try_homogeneous_tau(w, n, 5));
      EXPECT_TRUE(std::isfinite(r.tau)) << "w=" << w << " n=" << n;
      EXPECT_GE(r.tau, 0.0);
      EXPECT_LE(r.tau, 1.0);
      EXPECT_TRUE(usable(r.diagnostics.status));
    }
  }
  EXPECT_EQ(try_homogeneous_tau(0.5, 5, 5).diagnostics.status,
            SolveStatus::kFailed);
  EXPECT_EQ(try_homogeneous_tau(16.0, 0, 5).diagnostics.status,
            SolveStatus::kFailed);
}

TEST(SolverRobustness, ThrowingAndTryAgreeOnCleanProfiles) {
  const std::vector<int> w{16, 32, 64};
  const NetworkState via_throw = solve_network(w, 5);
  const TrySolveResult via_try = try_solve_network(w, 5);
  ASSERT_TRUE(via_throw.converged);
  ASSERT_EQ(via_try.diagnostics.status, SolveStatus::kConverged);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(via_throw.tau[i], via_try.state.tau[i], 1e-12);
    EXPECT_NEAR(via_throw.p[i], via_try.state.p[i], 1e-12);
  }
}

// Regression: a tau_target below what any finite window reaches used to
// abort the whole sweep with std::runtime_error; it must now clamp to the
// documented cap.
TEST(WindowForTau, UnreachableTargetReturnsCapInsteadOfThrowing) {
  double w = 0.0;
  ASSERT_NO_THROW(w = window_for_tau(1e-15, 5, 5));
  EXPECT_EQ(w, kWindowForTauCap);
}

TEST(WindowForTau, RoundTripsReachableTargets) {
  const double tau = try_homogeneous_tau(64.0, 5, 5).tau;
  const double w = window_for_tau(tau, 5, 5);
  EXPECT_NEAR(w, 64.0, 0.5);
  // tau larger than the w = 1 fixed point clamps to the lower bound.
  EXPECT_GE(window_for_tau(0.9999, 5, 5), 1.0);
}

TEST(NetworkSolveCache, HitsAndMissesAreCounted) {
  NetworkSolveCache cache;
  const std::vector<int> w{16, 32};
  const TrySolveResult first = cache.solve(w, 5, 0.0);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const TrySolveResult second = cache.solve(w, 5, 0.0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(first.state.tau[i], second.state.tau[i]);
  }
  // Distinct PER / max_stage are distinct keys.
  (void)cache.solve(w, 5, 0.1);
  (void)cache.solve(w, 6, 0.0);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 3u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(NetworkSolveCache, MatchesDirectSolve) {
  NetworkSolveCache cache;
  const std::vector<int> w{8, 64, 256};
  const TrySolveResult cached = cache.solve(w, 5, 0.2);
  const TrySolveResult direct = try_solve_network(w, 5, {}, 0.2);
  ASSERT_EQ(cached.state.tau.size(), direct.state.tau.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(cached.state.tau[i], direct.state.tau[i]);
    EXPECT_EQ(cached.state.p[i], direct.state.p[i]);
  }
}

TEST(NetworkSolveCache, ConcurrentMixedProfileLookupsAreSafe) {
  NetworkSolveCache cache;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<double> tau0(kThreads, -1.0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &tau0, t] {
      for (int rep = 0; rep < 20; ++rep) {
        const std::vector<int> w{16 + rep % 3, 32, 64};
        tau0[static_cast<std::size_t>(t)] = cache.solve(w, 5, 0.0).state.tau[0];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(tau0[static_cast<std::size_t>(t)], tau0[0]);
  }
  EXPECT_GE(cache.hits() + cache.misses(), 80u);
  EXPECT_EQ(cache.size(), 3u);
}

}  // namespace
