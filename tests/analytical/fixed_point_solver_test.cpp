#include "analytical/fixed_point_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analytical/backoff_chain.hpp"

namespace smac::analytical {
namespace {

constexpr int kM = 6;

TEST(SolveNetworkTest, RejectsBadProfiles) {
  EXPECT_THROW(solve_network({}, kM), std::invalid_argument);
  EXPECT_THROW(solve_network({32, 0}, kM), std::invalid_argument);
}

TEST(SolveNetworkTest, SingleNodeHasNoCollisions) {
  const NetworkState s = solve_network({32}, kM);
  EXPECT_TRUE(s.converged);
  EXPECT_NEAR(s.p[0], 0.0, 1e-12);
  EXPECT_NEAR(s.tau[0], 2.0 / 33.0, 1e-10);
}

TEST(SolveNetworkTest, SolutionSatisfiesBothEquationFamilies) {
  const std::vector<int> w{16, 32, 64, 128, 256};
  const NetworkState s = solve_network(w, kM);
  ASSERT_TRUE(s.converged);
  for (std::size_t i = 0; i < w.size(); ++i) {
    // τ_i = τ(W_i, p_i)
    EXPECT_NEAR(s.tau[i], transmission_probability(w[i], s.p[i], kM), 1e-9);
    // p_i = 1 − Π_{j≠i}(1−τ_j)
    double prod = 1.0;
    for (std::size_t j = 0; j < w.size(); ++j) {
      if (j != i) prod *= 1.0 - s.tau[j];
    }
    EXPECT_NEAR(s.p[i], 1.0 - prod, 1e-9);
  }
}

TEST(SolveNetworkTest, HomogeneousProfileYieldsEqualSolution) {
  const NetworkState s = solve_network(std::vector<int>(10, 64), kM);
  ASSERT_TRUE(s.converged);
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_NEAR(s.tau[i], s.tau[0], 1e-10);
    EXPECT_NEAR(s.p[i], s.p[0], 1e-10);
  }
}

TEST(SolveNetworkTest, AgreesWithScalarHomogeneousPath) {
  for (int n : {2, 5, 20}) {
    for (int w : {8, 64, 512}) {
      const NetworkState het = solve_network(std::vector<int>(n, w), kM);
      const NetworkState hom = solve_network_homogeneous(w, n, kM);
      EXPECT_NEAR(het.tau[0], hom.tau[0], 1e-8) << "n=" << n << " w=" << w;
      EXPECT_NEAR(het.p[0], hom.p[0], 1e-8);
    }
  }
}

TEST(SolveNetworkTest, Lemma1MonotonicityInProfiles) {
  // Paper Lemma 1: W_i > W_j ⇒ p_i > p_j and τ_i < τ_j.
  const std::vector<int> w{16, 32, 64, 128};
  const NetworkState s = solve_network(w, kM);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_LT(s.tau[i], s.tau[i - 1]) << "larger window must transmit less";
    EXPECT_GT(s.p[i], s.p[i - 1]) << "larger window must see more collisions";
  }
}

TEST(SolveNetworkTest, EqualWindowsEqualOutcomes) {
  const std::vector<int> w{64, 16, 64, 16};
  const NetworkState s = solve_network(w, kM);
  EXPECT_NEAR(s.tau[0], s.tau[2], 1e-10);
  EXPECT_NEAR(s.tau[1], s.tau[3], 1e-10);
  EXPECT_NEAR(s.p[0], s.p[2], 1e-10);
}

TEST(SolveNetworkTest, ExtremeHeterogeneityConverges) {
  const NetworkState s = solve_network({1, 4096}, kM);
  EXPECT_TRUE(s.converged);
  EXPECT_GT(s.tau[0], s.tau[1]);
  // The W=1 node almost always transmits; the other sees p near τ_0.
  EXPECT_GT(s.p[1], 0.5);
}

TEST(SolveNetworkTest, ManyAggressiveNodesConverge) {
  const NetworkState s = solve_network(std::vector<int>(30, 2), kM);
  EXPECT_TRUE(s.converged);
  EXPECT_GT(s.p[0], 0.7);  // heavy contention (m = 6 backoff still softens it)
  // Without exponential backoff the same profile is far more contended.
  const NetworkState s0 = solve_network(std::vector<int>(30, 2), 0);
  EXPECT_TRUE(s0.converged);
  EXPECT_GT(s0.p[0], 0.99);
}

TEST(HomogeneousTauTest, MatchesBianchiSymmetricSolution) {
  // In the symmetric case the fixed point must satisfy both equations to
  // machine precision.
  for (int n : {2, 10, 50}) {
    for (double w : {8.0, 32.0, 321.5}) {
      const double tau = homogeneous_tau(w, n, kM);
      const double p = 1.0 - std::pow(1.0 - tau, n - 1);
      EXPECT_NEAR(tau, transmission_probability_cont(w, p, kM), 1e-12);
    }
  }
}

TEST(HomogeneousTauTest, DecreasesWithWAndN) {
  EXPECT_GT(homogeneous_tau(16, 5, kM), homogeneous_tau(64, 5, kM));
  EXPECT_GT(homogeneous_tau(64, 2, kM), homogeneous_tau(64, 20, kM));
}

TEST(HomogeneousTauTest, SingleNodeShortCircuit) {
  EXPECT_DOUBLE_EQ(homogeneous_tau(31, 1, kM), 2.0 / 32.0);
}

TEST(HomogeneousTauTest, RejectsBadInput) {
  EXPECT_THROW(homogeneous_tau(0.5, 5, kM), std::invalid_argument);
  EXPECT_THROW(homogeneous_tau(8.0, 0, kM), std::invalid_argument);
}

TEST(WindowForTauTest, InvertsHomogeneousTau) {
  for (int n : {2, 5, 20}) {
    for (double w : {4.0, 77.0, 880.0}) {
      const double tau = homogeneous_tau(w, n, kM);
      const double w_back = window_for_tau(tau, n, kM);
      EXPECT_NEAR(w_back, w, w * 1e-5) << "n=" << n << " w=" << w;
    }
  }
}

TEST(WindowForTauTest, ClampsAtMinimumWindow) {
  // τ higher than achievable even at w = 1 → returns 1.
  EXPECT_DOUBLE_EQ(window_for_tau(1.0, 5, kM), 1.0);
}

TEST(WindowForTauTest, RejectsBadTau) {
  EXPECT_THROW(window_for_tau(0.0, 5, kM), std::invalid_argument);
  EXPECT_THROW(window_for_tau(-0.2, 5, kM), std::invalid_argument);
  EXPECT_THROW(window_for_tau(1.5, 5, kM), std::invalid_argument);
}

// Property sweep: residuals of the heterogeneous solver stay tiny across
// profile shapes.
class ProfileSweep
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(ProfileSweep, ConvergesWithTinyResidual) {
  const NetworkState s = solve_network(GetParam(), kM);
  EXPECT_TRUE(s.converged);
  EXPECT_LT(s.residual, 1e-12);
  for (double tau : s.tau) {
    EXPECT_GT(tau, 0.0);
    EXPECT_LE(tau, 1.0);
  }
  for (double p : s.p) {
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ProfileSweep,
    ::testing::Values(std::vector<int>{2, 2}, std::vector<int>{1000, 1000},
                      std::vector<int>{1, 1, 1}, std::vector<int>{5, 500},
                      std::vector<int>{16, 32, 64, 128, 256, 512},
                      std::vector<int>(50, 879),
                      std::vector<int>{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}));

}  // namespace
}  // namespace smac::analytical
