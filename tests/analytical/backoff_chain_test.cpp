#include "analytical/backoff_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smac::analytical {
namespace {

TEST(TransmissionProbabilityTest, NoCollisionsClosedForm) {
  // p = 0: τ = 2/(W+1).
  EXPECT_DOUBLE_EQ(transmission_probability(31, 0.0, 6), 2.0 / 32.0);
  EXPECT_DOUBLE_EQ(transmission_probability(1, 0.0, 6), 1.0);
  EXPECT_DOUBLE_EQ(transmission_probability(127, 0.0, 0), 2.0 / 128.0);
}

TEST(TransmissionProbabilityTest, MatchesBianchiClosedForm) {
  // τ = 2(1−2p)(1−p... equivalently eq. (2); compare against the explicit
  // closed form away from p = 1/2.
  for (int w : {8, 32, 128, 1024}) {
    for (double p : {0.05, 0.2, 0.35, 0.45, 0.6, 0.8}) {
      for (int m : {0, 3, 6}) {
        double sum = 0.0;
        for (int r = 0; r < m; ++r) sum += std::pow(2.0 * p, r);
        const double expected = 2.0 / (1.0 + w + p * w * sum);
        EXPECT_NEAR(transmission_probability(w, p, m), expected, 1e-14)
            << "w=" << w << " p=" << p << " m=" << m;
      }
    }
  }
}

TEST(TransmissionProbabilityTest, ContinuousAtPHalf) {
  // The (1−2p) closed form has a removable singularity at p = 1/2; the
  // implementation must be continuous through it.
  const double just_below = transmission_probability(32, 0.5 - 1e-9, 6);
  const double at = transmission_probability(32, 0.5, 6);
  const double just_above = transmission_probability(32, 0.5 + 1e-9, 6);
  EXPECT_NEAR(just_below, at, 1e-7);
  EXPECT_NEAR(just_above, at, 1e-7);
}

TEST(TransmissionProbabilityTest, HandlesPEqualOne) {
  // Limit p → 1: τ = 2/(1 + W·2^m) — every attempt collides, the node
  // lives at stage m.
  const double tau = transmission_probability(16, 1.0, 4);
  EXPECT_NEAR(tau, 2.0 / (1.0 + 16.0 * 16.0), 1e-12);
}

TEST(TransmissionProbabilityTest, MonotoneDecreasingInW) {
  for (double p : {0.0, 0.1, 0.3, 0.5, 0.9}) {
    double prev = transmission_probability(1, p, 6);
    for (int w = 2; w <= 2048; w *= 2) {
      const double cur = transmission_probability(w, p, 6);
      EXPECT_LT(cur, prev) << "w=" << w << " p=" << p;
      prev = cur;
    }
  }
}

TEST(TransmissionProbabilityTest, MonotoneDecreasingInP) {
  for (int w : {2, 16, 256}) {
    double prev = transmission_probability(w, 0.0, 6);
    for (double p = 0.1; p <= 1.0; p += 0.1) {
      const double cur = transmission_probability(w, p, 6);
      EXPECT_LT(cur, prev) << "w=" << w << " p=" << p;
      prev = cur;
    }
  }
}

TEST(TransmissionProbabilityTest, MoreStagesLowerTau) {
  // Extra doubling room keeps nodes backed off longer when p > 0.
  for (double p : {0.2, 0.5}) {
    EXPECT_GT(transmission_probability(32, p, 0),
              transmission_probability(32, p, 3));
    EXPECT_GT(transmission_probability(32, p, 3),
              transmission_probability(32, p, 8));
  }
}

TEST(TransmissionProbabilityTest, DerivativeMatchesFiniteDifference) {
  for (int w : {8, 64, 512}) {
    for (double p : {0.0, 0.25, 0.5}) {
      const double h = 1e-4;
      const double fd = (transmission_probability_cont(w + h, p, 6) -
                         transmission_probability_cont(w - h, p, 6)) /
                        (2.0 * h);
      EXPECT_NEAR(transmission_probability_derivative_w(w, p, 6), fd,
                  std::abs(fd) * 1e-4 + 1e-12);
    }
  }
}

TEST(TransmissionProbabilityTest, ContVariantAgreesOnIntegers) {
  for (int w : {1, 7, 100, 4096}) {
    EXPECT_DOUBLE_EQ(transmission_probability(w, 0.3, 6),
                     transmission_probability_cont(w, 0.3, 6));
  }
}

TEST(TransmissionProbabilityTest, RejectsBadArguments) {
  EXPECT_THROW(transmission_probability(0, 0.1, 6), std::invalid_argument);
  EXPECT_THROW(transmission_probability(8, -0.1, 6), std::invalid_argument);
  EXPECT_THROW(transmission_probability(8, 1.1, 6), std::invalid_argument);
  EXPECT_THROW(transmission_probability(8, 0.1, -1), std::invalid_argument);
  EXPECT_THROW(transmission_probability_cont(0.5, 0.1, 6),
               std::invalid_argument);
}

TEST(BackoffChainTest, RejectsBadArguments) {
  EXPECT_THROW(BackoffChain(0, 0.1, 6), std::invalid_argument);
  EXPECT_THROW(BackoffChain(8, 1.0, 6), std::invalid_argument);
  EXPECT_THROW(BackoffChain(8, -0.1, 6), std::invalid_argument);
  EXPECT_THROW(BackoffChain(8, 0.1, -2), std::invalid_argument);
}

TEST(BackoffChainTest, WindowDoublingCapsAtM) {
  const BackoffChain chain(16, 0.3, 3);
  EXPECT_EQ(chain.window_of_stage(0), 16);
  EXPECT_EQ(chain.window_of_stage(1), 32);
  EXPECT_EQ(chain.window_of_stage(3), 128);
  EXPECT_EQ(chain.window_of_stage(7), 128);  // clamped beyond m
}

TEST(BackoffChainTest, StationaryDistributionNormalizes) {
  for (int w : {2, 16, 64}) {
    for (double p : {0.0, 0.2, 0.5, 0.8}) {
      const BackoffChain chain(w, p, 4);
      EXPECT_NEAR(chain.total_mass(), 1.0, 1e-10)
          << "w=" << w << " p=" << p;
    }
  }
}

TEST(BackoffChainTest, TauEqualsSumOfStageHeads) {
  const BackoffChain chain(32, 0.25, 5);
  double heads = 0.0;
  for (int j = 0; j <= 5; ++j) heads += chain.stage_head(j);
  EXPECT_NEAR(chain.tau(), heads, 1e-12);
}

TEST(BackoffChainTest, TauMatchesClosedForm) {
  for (int w : {4, 32, 256}) {
    for (double p : {0.0, 0.15, 0.5, 0.9}) {
      const BackoffChain chain(w, p, 6);
      EXPECT_NEAR(chain.tau(), transmission_probability(w, p, 6), 1e-12);
    }
  }
}

TEST(BackoffChainTest, StageHeadsDecayGeometrically) {
  const double p = 0.3;
  const BackoffChain chain(16, p, 6);
  for (int j = 1; j < 6; ++j) {
    EXPECT_NEAR(chain.stage_head(j) / chain.stage_head(j - 1), p, 1e-12);
  }
  // The absorbing last stage accumulates the tail: q(m)/q(m−1) = p/(1−p).
  EXPECT_NEAR(chain.stage_head(6) / chain.stage_head(5), p / (1.0 - p),
              1e-12);
}

TEST(BackoffChainTest, CounterDistributionIsTriangular) {
  const BackoffChain chain(8, 0.2, 2);
  // Within a stage, q(j,k) decreases linearly in k.
  for (int j = 0; j <= 2; ++j) {
    const auto wj = chain.window_of_stage(j);
    for (int k = 1; k < wj; ++k) {
      EXPECT_LT(chain.stationary(j, k), chain.stationary(j, k - 1));
    }
    EXPECT_NEAR(chain.stationary(j, 0), chain.stage_head(j), 1e-15);
  }
}

TEST(BackoffChainTest, MeanCounterGrowsWithP) {
  const BackoffChain calm(32, 0.05, 6);
  const BackoffChain busy(32, 0.6, 6);
  EXPECT_GT(busy.mean_counter(), calm.mean_counter());
}

TEST(BackoffChainTest, StationaryRejectsOutOfRange) {
  const BackoffChain chain(8, 0.2, 2);
  EXPECT_THROW(chain.stationary(0, 8), std::invalid_argument);
  EXPECT_THROW(chain.stationary(0, -1), std::invalid_argument);
  EXPECT_THROW(chain.stage_head(3), std::invalid_argument);
  EXPECT_THROW(chain.window_of_stage(-1), std::invalid_argument);
}

}  // namespace
}  // namespace smac::analytical
