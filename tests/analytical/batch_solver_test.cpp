// Bitwise-identity contract of the lockstep batch solver.
//
// try_solve_classes_batch promises results bitwise identical to calling
// try_solve_classes per instance (src/analytical/batch_solver.hpp) — both
// run the same per-instance ladder machine, and no arithmetic crosses
// instances. This suite pins the contract over a seeded (n, k, PER,
// batch-size) grid, over batches mixing converged/degraded/failed
// outcomes under a starved iteration budget, over warm-started
// instances, and over the empty batch.
#include "analytical/batch_solver.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace smac::analytical {
namespace {

/// Exact bit equality — EXPECT_DOUBLE_EQ-style tolerance would hide the
/// drift this suite exists to forbid.
void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << " [" << i << "]: " << a[i] << " vs " << b[i];
  }
}

void expect_identical(const TrySolveResult& batch, const TrySolveResult& one,
                      const std::string& what) {
  expect_bits_equal(batch.state.tau, one.state.tau, what + " tau");
  expect_bits_equal(batch.state.p, one.state.p, what + " p");
  EXPECT_EQ(batch.state.converged, one.state.converged) << what;
  EXPECT_EQ(batch.state.iterations, one.state.iterations) << what;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(batch.state.residual),
            std::bit_cast<std::uint64_t>(one.state.residual))
      << what;
  EXPECT_EQ(batch.diagnostics.status, one.diagnostics.status) << what;
  EXPECT_EQ(batch.diagnostics.iterations, one.diagnostics.iterations) << what;
  EXPECT_EQ(batch.diagnostics.retries, one.diagnostics.retries) << what;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(batch.diagnostics.residual),
            std::bit_cast<std::uint64_t>(one.diagnostics.residual))
      << what;
  EXPECT_STREQ(batch.diagnostics.method, one.diagnostics.method) << what;
}

void check_batch_matches_sequential(
    const std::vector<ClassProfileInstance>& instances,
    const std::string& what) {
  const std::vector<TrySolveResult> batched =
      try_solve_classes_batch(instances);
  ASSERT_EQ(batched.size(), instances.size()) << what;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const TrySolveResult one = try_solve_classes(
        instances[i].classes, instances[i].max_stage, instances[i].opts,
        instances[i].packet_error_rate);
    expect_identical(batched[i], one,
                     what + " instance " + std::to_string(i));
  }
}

ClassProfileInstance make_instance(const std::vector<int>& w, int max_stage,
                                   double per, SolverOptions opts = {}) {
  ClassProfileInstance instance;
  instance.classes = classify_profile(w);
  instance.max_stage = max_stage;
  instance.packet_error_rate = per;
  instance.opts = std::move(opts);
  return instance;
}

TEST(BatchSolverTest, EmptyBatchYieldsEmptyVector) {
  EXPECT_TRUE(try_solve_classes_batch({}).empty());
}

TEST(BatchSolverTest, SeededGridMatchesSequentialBitwise) {
  util::Rng rng(0xb47c50a1ULL);  // fixed seed: the grid is replayable
  const std::vector<double> pers{0.0, 0.25, 0.9};
  const std::vector<int> ns{1, 2, 5, 40, 120};
  const std::vector<std::size_t> batch_sizes{1, 3, 16, 64};

  for (const std::size_t batch_size : batch_sizes) {
    std::vector<ClassProfileInstance> instances;
    instances.reserve(batch_size);
    for (std::size_t b = 0; b < batch_size; ++b) {
      const int n = ns[rng.uniform_below(ns.size())];
      std::vector<int> w(static_cast<std::size_t>(n));
      for (int& wi : w) {
        wi = rng.bernoulli(0.5)
                 ? 1 << rng.uniform_below(13)
                 : static_cast<int>(rng.uniform_int(1, 4096));
      }
      const int m = rng.bernoulli(0.5) ? 0 : 6;
      const double per = pers[rng.uniform_below(pers.size())];
      instances.push_back(make_instance(w, m, per));
    }
    check_batch_matches_sequential(
        instances, "batch_size=" + std::to_string(batch_size));
  }
}

TEST(BatchSolverTest, MixedStatusBatchMatchesSequentialBitwise) {
  // A starved iteration budget leaves hard heterogeneous profiles
  // degraded or failed, while homogeneous instances (k = 1, scalar root)
  // converge regardless — so one batch carries every status and finished
  // instances drop out of the lockstep sweep at different times.
  SolverOptions starved;
  starved.max_iterations = 2;

  std::vector<ClassProfileInstance> instances;
  instances.push_back(make_instance(std::vector<int>(16, 32), 6, 0.0,
                                    starved));  // k = 1: converges
  {
    std::vector<int> bimodal(100, 1);
    bimodal.resize(200, 4096);
    instances.push_back(make_instance(bimodal, 6, 0.9, starved));
  }
  {
    std::vector<int> staircase;
    for (int v = 1; v <= 4096; v *= 2) staircase.insert(staircase.end(), 8, v);
    instances.push_back(make_instance(staircase, 6, 0.5, starved));
  }
  {
    std::vector<int> aggressor(64, 4096);
    aggressor[0] = 1;
    instances.push_back(make_instance(aggressor, 0, 0.999, starved));
  }
  instances.push_back(make_instance({2, 2, 2}, 0, 0.0, starved));  // k = 1

  const std::vector<TrySolveResult> batched =
      try_solve_classes_batch(instances);
  std::set<SolveStatus> statuses;
  for (const TrySolveResult& r : batched) {
    statuses.insert(r.diagnostics.status);
  }
  EXPECT_GE(statuses.size(), 2u)
      << "grid no longer mixes statuses; rebuild the provocation set";
  EXPECT_TRUE(statuses.count(SolveStatus::kConverged));

  check_batch_matches_sequential(instances, "mixed-status");
}

TEST(BatchSolverTest, WarmStartedInstancesMatchSequentialBitwise) {
  // Warm starts route through the warm rung (collapse_initial_tau), whose
  // lazy evaluation order in the machine must not change any bit. Use
  // each profile's own converged solution as the hint — the dominant
  // re-solve pattern — plus a deliberately bad hint.
  const std::vector<std::vector<int>> profiles{
      {16, 16, 64, 256},
      {1, 32, 32, 1024, 1024, 1024},
      {8, 8, 128, 128},
  };
  std::vector<ClassProfileInstance> instances;
  for (const std::vector<int>& w : profiles) {
    ClassProfileInstance cold = make_instance(w, 6, 0.1);
    const TrySolveResult solved = try_solve_classes(
        cold.classes, cold.max_stage, cold.opts, cold.packet_error_rate);
    ClassProfileInstance warm = cold;
    warm.opts.initial_tau = solved.state.tau;  // class-sized hint
    instances.push_back(std::move(warm));
  }
  ClassProfileInstance bad_hint = make_instance({4, 4096, 17}, 6, 0.0);
  bad_hint.opts.initial_tau = {0.99, 0.99, 0.99};
  instances.push_back(std::move(bad_hint));

  check_batch_matches_sequential(instances, "warm-started");
  // Warm re-solves converge on the warm rung (this is the throughput
  // path: no seeded Brent, a couple of lockstep sweeps).
  const std::vector<TrySolveResult> batched =
      try_solve_classes_batch(instances);
  for (std::size_t i = 0; i + 1 < batched.size(); ++i) {
    EXPECT_EQ(batched[i].diagnostics.status, SolveStatus::kConverged);
    EXPECT_STREQ(batched[i].diagnostics.method, "warm");
  }
}

TEST(BatchSolverTest, DuplicateInstancesAgreeWithinBatch) {
  // The same instance at different batch positions must produce the same
  // bits — the lockstep sweep may interleave them with different
  // neighbors, which must not matter.
  const ClassProfileInstance proto =
      make_instance({1, 8, 8, 64, 512, 512}, 6, 0.25);
  std::vector<ClassProfileInstance> instances(7, proto);
  instances.insert(instances.begin() + 3,
                   make_instance(std::vector<int>(50, 1), 6, 0.9));
  const std::vector<TrySolveResult> batched =
      try_solve_classes_batch(instances);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    if (i == 3) continue;
    expect_identical(batched[i], batched[0],
                     "duplicate at " + std::to_string(i));
  }
}

}  // namespace
}  // namespace smac::analytical
