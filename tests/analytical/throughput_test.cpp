#include "analytical/throughput.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace smac::analytical {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();

TEST(ChannelMetricsTest, RejectsEmptyInput) {
  EXPECT_THROW(channel_metrics({}, kParams, phy::AccessMode::kBasic),
               std::invalid_argument);
}

TEST(ChannelMetricsTest, SingleNodeNeverCollides) {
  const ChannelMetrics m =
      channel_metrics({0.1}, kParams, phy::AccessMode::kBasic);
  EXPECT_NEAR(m.p_tr, 0.1, 1e-12);
  EXPECT_NEAR(m.p_s, 1.0, 1e-12);
  EXPECT_NEAR(m.per_node_success[0], 0.1, 1e-12);
}

TEST(ChannelMetricsTest, SymmetricTwoNodeCloseForm) {
  const double tau = 0.2;
  const ChannelMetrics m =
      channel_metrics({tau, tau}, kParams, phy::AccessMode::kBasic);
  EXPECT_NEAR(m.p_tr, 1.0 - 0.8 * 0.8, 1e-12);
  EXPECT_NEAR(m.per_node_success[0], 0.2 * 0.8, 1e-12);
  EXPECT_NEAR(m.p_s, 2 * 0.2 * 0.8 / m.p_tr, 1e-12);
}

TEST(ChannelMetricsTest, SlotLengthIsConvexCombination) {
  const ChannelMetrics m =
      channel_metrics({0.05, 0.1, 0.02}, kParams, phy::AccessMode::kBasic);
  const phy::SlotTimes t = kParams.slot_times(phy::AccessMode::kBasic);
  EXPECT_GT(m.t_slot_us, t.sigma_us);
  EXPECT_LT(m.t_slot_us, t.ts_us);
  // Explicit reconstruction.
  const double succ = std::accumulate(m.per_node_success.begin(),
                                      m.per_node_success.end(), 0.0);
  const double expect = (1 - m.p_tr) * t.sigma_us + succ * t.ts_us +
                        (m.p_tr - succ) * t.tc_us;
  EXPECT_NEAR(m.t_slot_us, expect, 1e-9);
}

TEST(ChannelMetricsTest, PerNodeThroughputSumsToTotal) {
  const ChannelMetrics m = channel_metrics({0.02, 0.05, 0.01, 0.03}, kParams,
                                           phy::AccessMode::kBasic);
  const double sum = std::accumulate(m.per_node_throughput.begin(),
                                     m.per_node_throughput.end(), 0.0);
  EXPECT_NEAR(sum, m.throughput, 1e-12);
}

TEST(ChannelMetricsTest, ThroughputBounded) {
  for (double tau : {0.001, 0.01, 0.1, 0.5}) {
    const ChannelMetrics m = channel_metrics(std::vector<double>(10, tau),
                                             kParams, phy::AccessMode::kBasic);
    EXPECT_GE(m.throughput, 0.0);
    EXPECT_LE(m.throughput, 1.0);
  }
}

TEST(ChannelMetricsTest, BianchiSaturationThroughputBallpark) {
  // Bianchi (2000) reports basic-access saturation throughput around
  // 0.8–0.85 for W = 32, m = 5-ish networks at these parameters. Verify
  // the model lands in that neighborhood.
  const ChannelMetrics m =
      homogeneous_channel_metrics(32, 10, kParams, phy::AccessMode::kBasic);
  EXPECT_GT(m.throughput, 0.55);
  EXPECT_LT(m.throughput, 0.90);
}

TEST(ChannelMetricsTest, RtsCtsMoreRobustUnderContention) {
  // With many aggressive nodes, RTS/CTS throughput should beat basic
  // (cheap collisions) — the paper's §V.F motivation.
  const ChannelMetrics basic = homogeneous_channel_metrics(
      16, 50, kParams, phy::AccessMode::kBasic);
  const ChannelMetrics rts = homogeneous_channel_metrics(
      16, 50, kParams, phy::AccessMode::kRtsCts);
  EXPECT_GT(rts.throughput, basic.throughput);
}

TEST(ChannelMetricsTest, AsymmetricTauFavorsAggressor) {
  const ChannelMetrics m =
      channel_metrics({0.2, 0.05}, kParams, phy::AccessMode::kBasic);
  EXPECT_GT(m.per_node_success[0], m.per_node_success[1]);
  EXPECT_GT(m.per_node_throughput[0], m.per_node_throughput[1]);
}

TEST(ChannelMetricsTest, AllSilentChannelIsIdle) {
  const ChannelMetrics m =
      channel_metrics({0.0, 0.0}, kParams, phy::AccessMode::kBasic);
  EXPECT_DOUBLE_EQ(m.p_tr, 0.0);
  EXPECT_DOUBLE_EQ(m.throughput, 0.0);
  EXPECT_DOUBLE_EQ(m.t_slot_us, kParams.sigma_us);
}

}  // namespace
}  // namespace smac::analytical
