#include "analytical/delay.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analytical/throughput.hpp"
#include "analytical/utility.hpp"
#include "game/equilibrium.hpp"
#include "game/stage_game.hpp"
#include "sim/simulator.hpp"

namespace smac::analytical {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();
constexpr auto kBasic = phy::AccessMode::kBasic;

TEST(AccessDelayTest, MatchesManualGeometricFormula) {
  const NetworkState s = solve_network_homogeneous(64, 5, 6);
  const auto d = access_delays(s, kParams, kBasic);
  const ChannelMetrics m = channel_metrics(s.tau, kParams, kBasic);
  const double q = s.tau[0] * (1.0 - s.p[0]);
  EXPECT_NEAR(d[0].mean_us, m.t_slot_us / q, 1e-9);
  EXPECT_NEAR(d[0].stddev_us, m.t_slot_us * std::sqrt(1.0 - q) / q, 1e-9);
}

TEST(AccessDelayTest, RejectsMalformedState) {
  NetworkState s;
  EXPECT_THROW(access_delays(s, kParams, kBasic), std::invalid_argument);
}

TEST(AccessDelayTest, GrowsWithWindowBeyondOptimum) {
  // Far beyond the contention regime, a longer backoff directly delays
  // transmissions.
  const double d200 = homogeneous_access_delay(200, 5, kParams, kBasic).mean_us;
  const double d800 = homogeneous_access_delay(800, 5, kParams, kBasic).mean_us;
  const double d3200 =
      homogeneous_access_delay(3200, 5, kParams, kBasic).mean_us;
  EXPECT_LT(d200, d800);
  EXPECT_LT(d800, d3200);
}

TEST(AccessDelayTest, GrowsWithPopulation) {
  const double d5 = homogeneous_access_delay(128, 5, kParams, kBasic).mean_us;
  const double d20 = homogeneous_access_delay(128, 20, kParams, kBasic).mean_us;
  EXPECT_LT(d5, d20);
}

TEST(AccessDelayTest, FairShareLowerBound) {
  // n nodes sharing the channel cannot each deliver faster than n packets
  // per T_s on average.
  const int n = 10;
  const double d = homogeneous_access_delay(128, n, kParams, kBasic).mean_us;
  const phy::SlotTimes t = kParams.slot_times(kBasic);
  EXPECT_GT(d, n * t.ts_us * 0.9);
}

TEST(AccessDelayTest, MatchesSimulatedInterSuccessTime) {
  // Empirical mean time between a node's successes ≈ model E[D].
  const int n = 5;
  const int w = 79;
  sim::SimConfig config;
  config.seed = 21;
  sim::Simulator simulator(config, std::vector<int>(n, w));
  const auto r = simulator.run_slots(400000);
  const double measured =
      r.elapsed_us / static_cast<double>(r.node[0].successes);
  const double model = homogeneous_access_delay(w, n, kParams, kBasic).mean_us;
  EXPECT_NEAR(measured, model, 0.08 * model);
}

TEST(DelayAwareUtilityTest, LambdaZeroRecoversPaperUtility) {
  EXPECT_DOUBLE_EQ(delay_aware_utility_rate(100, 5, kParams, kBasic, 0.0),
                   homogeneous_utility_rate(100, 5, kParams, kBasic));
  EXPECT_THROW(delay_aware_utility_rate(100, 5, kParams, kBasic, -1.0),
               std::invalid_argument);
}

TEST(DelayAwareUtilityTest, PenaltyShrinksTheEfficientWindow) {
  // The §VIII remark: pricing delay pulls the NE toward smaller windows.
  const int w0 = delay_aware_efficient_cw(20, kParams, kBasic, 0.0);
  const int w1 = delay_aware_efficient_cw(20, kParams, kBasic, 1e-12);
  const int w2 = delay_aware_efficient_cw(20, kParams, kBasic, 1e-10);
  EXPECT_LE(w1, w0);
  EXPECT_LE(w2, w1);
  EXPECT_LT(w2, w0);  // a strong enough penalty must strictly bite
}

TEST(DelayConstrainedTest, EfficientNeIsNearDelayOptimal) {
  // Structural insight the module exposes: with g >> e, maximizing
  // u ≈ q·g/T_slot and minimizing E[D] = T_slot/q are the same program,
  // so the efficient NE window nearly minimizes the access delay too —
  // selfish long-sighted play is *also* latency-friendly.
  const game::StageGame game(kParams, kBasic);
  for (int n : {5, 20}) {
    const int w_star = game::EquilibriumFinder(game, n).efficient_cw();
    const double d_star =
        homogeneous_access_delay(w_star, n, kParams, kBasic).mean_us;
    // Probe a wide range: nothing beats w* by more than a whisker.
    for (int w : {1, w_star / 4, w_star / 2, w_star * 2, w_star * 8}) {
      const double d =
          homogeneous_access_delay(std::max(1, w), n, kParams, kBasic)
              .mean_us;
      EXPECT_GT(d, 0.995 * d_star) << "n=" << n << " w=" << w;
    }
  }
}

TEST(DelayConstrainedTest, BindsAtFeasibilityEdge) {
  const game::StageGame game(kParams, kBasic);
  const int w_star = game::EquilibriumFinder(game, 5).efficient_cw();
  const double d_star =
      homogeneous_access_delay(w_star, 5, kParams, kBasic).mean_us;

  // Loose bound: returns the unconstrained optimum.
  const auto loose =
      delay_constrained_efficient_cw(5, kParams, kBasic, 10.0 * d_star);
  ASSERT_TRUE(loose.has_value());
  EXPECT_EQ(*loose, w_star);

  // A bound just above d(w*) is feasible and still returns w* (w* sits at
  // the delay minimum, see EfficientNeIsNearDelayOptimal).
  const auto snug =
      delay_constrained_efficient_cw(5, kParams, kBasic, 1.02 * d_star);
  ASSERT_TRUE(snug.has_value());
  const double d_snug =
      homogeneous_access_delay(*snug, 5, kParams, kBasic).mean_us;
  EXPECT_LE(d_snug, 1.02 * d_star);

  // A bound below the global delay minimum is infeasible.
  EXPECT_FALSE(delay_constrained_efficient_cw(5, kParams, kBasic,
                                              0.8 * d_star)
                   .has_value());
}

TEST(DelayConstrainedTest, ImpossibleBoundReturnsNullopt) {
  EXPECT_FALSE(
      delay_constrained_efficient_cw(20, kParams, kBasic, 1.0).has_value());
  EXPECT_THROW(delay_constrained_efficient_cw(20, kParams, kBasic, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace smac::analytical
