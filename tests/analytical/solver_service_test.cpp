// SolverService: async submit/drain semantics over the canonical cache.
//
// The service's contract (src/analytical/solver_service.hpp): every
// ticket resolves to bits equal to a direct NetworkSolveCache::solve /
// try_solve_network call, the cache traffic counters advance exactly as
// the same requests would have sequentially, pool-chunked drains change
// nothing, and tickets can be redeemed lazily (result() drains on
// demand).
#include "analytical/solver_service.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace smac::analytical {
namespace {

void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "index " << i;
  }
}

void expect_matches_direct(const TrySolveResult& got,
                           const std::vector<int>& w, int max_stage,
                           double per, const SolverOptions& opts) {
  const TrySolveResult direct = try_solve_network(w, max_stage, opts, per);
  expect_bits_equal(got.state.tau, direct.state.tau);
  expect_bits_equal(got.state.p, direct.state.p);
  EXPECT_EQ(got.diagnostics.status, direct.diagnostics.status);
  EXPECT_EQ(got.diagnostics.iterations, direct.diagnostics.iterations);
  EXPECT_STREQ(got.diagnostics.method, direct.diagnostics.method);
}

TEST(SolverServiceTest, TicketsMatchDirectSolves) {
  SolverService service;
  const std::vector<std::vector<int>> profiles{
      {16, 16, 32}, {32, 16, 16}, {1, 1024}, {8, 8, 8, 8}};
  std::vector<SolverService::Ticket> tickets;
  for (const auto& w : profiles) tickets.push_back(service.submit(w, 6, 0.1));
  EXPECT_EQ(service.pending(), profiles.size());
  service.drain();
  EXPECT_EQ(service.pending(), 0u);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    ASSERT_TRUE(tickets[i].ready());
    expect_matches_direct(tickets[i].result(), profiles[i], 6, 0.1,
                          service.cache().options());
  }
}

TEST(SolverServiceTest, StatsMirrorSequentialRequests) {
  // {16,16,32} and {32,16,16} collapse to one canonical key; sequential
  // solve() calls would count 2 misses (two distinct keys) + 2 hits (the
  // permutation and the repeat). A single drain must tally identically.
  SolverService service;
  service.submit({16, 16, 32}, 6, 0.1);
  service.submit({32, 16, 16}, 6, 0.1);
  service.submit({1, 1024}, 6, 0.1);
  service.submit({16, 16, 32}, 6, 0.1);
  service.drain();
  const SolveCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 2u);

  // A second drain of an already-cached profile is pure hits.
  service.submit({16, 32, 16}, 6, 0.1);
  service.drain();
  EXPECT_EQ(service.cache_stats().hits, 3u);
  EXPECT_EQ(service.cache_stats().misses, 2u);
}

TEST(SolverServiceTest, ResultDrainsOnDemand) {
  SolverService service;
  SolverService::Ticket ticket = service.submit({64, 64, 8}, 6, 0.0);
  EXPECT_FALSE(ticket.ready());
  expect_matches_direct(ticket.result(), {64, 64, 8}, 6, 0.0,
                        service.cache().options());  // implicit drain
  EXPECT_TRUE(ticket.ready());
  EXPECT_EQ(service.pending(), 0u);
}

TEST(SolverServiceTest, InvalidRequestsFailLikeDirectCalls) {
  SolverService service;
  SolverService::Ticket empty = service.submit({}, 6, 0.0);
  SolverService::Ticket bad_window = service.submit({0, 16}, 6, 0.0);
  SolverService::Ticket bad_per = service.submit({16}, 6, 1.0);
  service.drain();
  for (const auto* ticket : {&empty, &bad_window, &bad_per}) {
    EXPECT_EQ(ticket->result().diagnostics.status, SolveStatus::kFailed);
    EXPECT_STREQ(ticket->result().diagnostics.method, "invalid");
  }
  // Invalid requests tally as misses without inserting (same as
  // NetworkSolveCache::solve).
  EXPECT_EQ(service.cache_stats().misses, 3u);
  EXPECT_EQ(service.cache_stats().size, 0u);
}

TEST(SolverServiceTest, PoolChunkedDrainIsBitIdentical) {
  parallel::ThreadPool pool(2);
  SolverService::Options pooled;
  pooled.pool = &pool;
  pooled.chunk_size = 2;
  SolverService with_pool{pooled};
  SolverService without_pool;

  std::vector<std::vector<int>> profiles;
  for (int w = 1; w <= 9; ++w) {
    profiles.push_back({w, 2 * w, 2 * w, 64});
  }
  std::vector<SolverService::Ticket> pooled_tickets;
  std::vector<SolverService::Ticket> serial_tickets;
  for (const auto& w : profiles) {
    pooled_tickets.push_back(with_pool.submit(w, 6, 0.2));
    serial_tickets.push_back(without_pool.submit(w, 6, 0.2));
  }
  with_pool.drain();
  without_pool.drain();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    expect_bits_equal(pooled_tickets[i].result().state.tau,
                      serial_tickets[i].result().state.tau);
    expect_bits_equal(pooled_tickets[i].result().state.p,
                      serial_tickets[i].result().state.p);
  }
  EXPECT_EQ(with_pool.cache_stats().misses,
            without_pool.cache_stats().misses);
  EXPECT_EQ(with_pool.cache_stats().hits, without_pool.cache_stats().hits);
}

TEST(SolverServiceTest, BlockingSolveSharesTheCache) {
  SolverService service;
  const TrySolveResult first = service.solve({16, 16, 128}, 6, 0.1);
  EXPECT_EQ(service.cache_stats().misses, 1u);
  SolverService::Ticket ticket = service.submit({128, 16, 16}, 6, 0.1);
  service.drain();  // permutation of the cached key: a hit
  EXPECT_EQ(service.cache_stats().hits, 1u);
  expect_bits_equal(ticket.result().state.tau,
                    {first.state.tau[2], first.state.tau[0],
                     first.state.tau[1]});
}

TEST(SolverServiceTest, WarmStartNeighborsAnswersWithoutPoisoningCache) {
  SolverService::Options options;
  options.warm_start_neighbors = true;
  SolverService service{options};

  // Prime a neighbor key, then request a nearby profile.
  service.solve({16, 16, 64}, 6, 0.1);
  ASSERT_EQ(service.cache_stats().size, 1u);
  SolverService::Ticket ticket = service.submit({16, 16, 72}, 6, 0.1);
  service.drain();
  EXPECT_TRUE(usable(ticket.result().diagnostics.status));
  // Hinted solves are answered but never inserted: cached values stay
  // pure functions of the key.
  EXPECT_EQ(service.cache_stats().size, 1u);
  EXPECT_EQ(service.cache_stats().misses, 2u);

  // The hinted result must still be the same fixed point the cold solve
  // finds, to solver tolerance; bit equality is explicitly NOT promised
  // in this mode.
  const TrySolveResult cold =
      try_solve_network({16, 16, 72}, 6, service.cache().options(), 0.1);
  ASSERT_EQ(ticket.result().state.tau.size(), cold.state.tau.size());
  for (std::size_t i = 0; i < cold.state.tau.size(); ++i) {
    EXPECT_NEAR(ticket.result().state.tau[i], cold.state.tau[i], 1e-9);
  }
}

}  // namespace
}  // namespace smac::analytical
