#include "analytical/utility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analytical/throughput.hpp"
#include "util/optimize.hpp"

namespace smac::analytical {
namespace {

const phy::Parameters kParams = phy::Parameters::paper();
constexpr auto kBasic = phy::AccessMode::kBasic;
constexpr auto kRtsCts = phy::AccessMode::kRtsCts;

TEST(UtilityRatesTest, MatchesManualFormula) {
  const NetworkState s = solve_network({32, 64}, kParams.max_backoff_stage);
  const auto u = utility_rates(s, kParams, kBasic);
  ASSERT_EQ(u.size(), 2u);
  // Recompute u_0 by hand: τ((1−p)g − e)/T_slot.
  const ChannelMetrics m = channel_metrics(s.tau, kParams, kBasic);
  const double expect =
      s.tau[0] * ((1.0 - s.p[0]) * kParams.gain - kParams.cost) / m.t_slot_us;
  EXPECT_NEAR(u[0], expect, 1e-15);
}

TEST(UtilityRatesTest, RejectsMalformedState) {
  NetworkState s;
  EXPECT_THROW(utility_rates(s, kParams, kBasic), std::invalid_argument);
  s.tau = {0.1};
  s.p = {0.1, 0.2};
  EXPECT_THROW(utility_rates(s, kParams, kBasic), std::invalid_argument);
}

TEST(UtilityTest, Lemma1PayoffOrdering) {
  // W_i > W_j ⇒ U_i < U_j (larger window is disfavored).
  const NetworkState s =
      solve_network({16, 64, 256}, kParams.max_backoff_stage);
  const auto u = utility_rates(s, kParams, kBasic);
  EXPECT_GT(u[0], u[1]);
  EXPECT_GT(u[1], u[2]);
}

TEST(UtilityTest, TinyWindowsGoNegative) {
  // Heavy contention: (1−p)g < e, utility below zero (paper's W < W_c0).
  // Needs p > 1 − e/g = 0.99, which the m = 6 exponential backoff prevents;
  // with no doubling room (m = 0) W = 1 forces τ = 1, p = 1 and u = −e/T_c.
  phy::Parameters params = kParams;
  params.max_backoff_stage = 0;
  const double u = homogeneous_utility_rate(1, 20, params, kBasic);
  EXPECT_LT(u, 0.0);
  // With the paper's m = 6 the same profile survives with positive payoff —
  // exponential backoff is itself a robustness mechanism.
  EXPECT_GT(homogeneous_utility_rate(1, 20, kParams, kBasic), 0.0);
}

TEST(UtilityTest, ModerateWindowsPositive) {
  EXPECT_GT(homogeneous_utility_rate(300, 20, kParams, kBasic), 0.0);
}

TEST(UtilityTest, UnimodalInWindow) {
  // Scan a coarse grid; the sign of successive differences may flip at
  // most once (rise then fall) — Lemma 2/3.
  for (int n : {5, 20}) {
    double prev = homogeneous_utility_rate(1, n, kParams, kBasic);
    int flips = 0;
    bool rising = true;
    for (int w = 2; w <= 4096; w = w * 5 / 4 + 1) {
      const double cur = homogeneous_utility_rate(w, n, kParams, kBasic);
      const bool now_rising = cur > prev;
      if (rising && !now_rising) ++flips;
      if (!rising && now_rising) flips += 10;  // would mean a second mode
      rising = now_rising;
      prev = cur;
    }
    EXPECT_LE(flips, 1) << "utility must be unimodal, n=" << n;
  }
}

TEST(UtilityTest, StageAndDiscountedScaling) {
  const double rate = homogeneous_utility_rate(100, 5, kParams, kBasic);
  EXPECT_NEAR(homogeneous_stage_utility(100, 5, kParams, kBasic),
              rate * 10.0 * 1e6, std::abs(rate) * 10);
  EXPECT_NEAR(homogeneous_discounted_utility(100, 5, kParams, kBasic),
              rate * 10.0 * 1e6 / (1.0 - 0.9999),
              std::abs(rate) * 1e6);
}

TEST(UtilityTest, NormalizedGlobalPayoffIdentity) {
  // U/C must equal n·u·σ/g.
  const double u = homogeneous_utility_rate(76, 5, kParams, kBasic);
  EXPECT_NEAR(normalized_global_payoff(76, 5, kParams, kBasic),
              5.0 * u * kParams.sigma_us / kParams.gain, 1e-15);
}

TEST(Lemma2Test, UtilityConcaveInOwnTau) {
  // Lemma 2: U_i(τ_i) is concave in the own transmission probability when
  // g >> e (others held fixed). Check second differences numerically: fix
  // four opponents at τ = 0.02 and sweep the own τ.
  const std::vector<double> others(4, 0.02);
  auto u_of = [&](double tau_i) {
    std::vector<double> tau{tau_i};
    tau.insert(tau.end(), others.begin(), others.end());
    const ChannelMetrics m = channel_metrics(tau, kParams, kBasic);
    const double p_i = 1.0 - std::pow(1.0 - 0.02, 4);
    return tau_i * ((1.0 - p_i) * kParams.gain - kParams.cost) / m.t_slot_us;
  };
  const double h = 1e-3;
  for (double tau = 0.01; tau <= 0.6; tau += 0.02) {
    const double second_diff =
        u_of(tau + h) - 2.0 * u_of(tau) + u_of(tau - h);
    EXPECT_LE(second_diff, 1e-15) << "tau=" << tau;
  }
}

TEST(Lemma3Test, QBoundaryValues) {
  // Q(0) = σ > 0 and Q(1) = −(n−1)·T_c < 0 (paper's proof of Lemma 3).
  const phy::SlotTimes t = kParams.slot_times(kBasic);
  for (int n : {2, 5, 50}) {
    EXPECT_NEAR(lemma3_q(0.0, n, kParams, kBasic), t.sigma_us, 1e-9);
    EXPECT_NEAR(lemma3_q(1.0, n, kParams, kBasic), -(n - 1) * t.tc_us, 1e-9);
  }
}

TEST(Lemma3Test, QIsMonotoneDecreasing) {
  double prev = lemma3_q(0.0, 10, kParams, kBasic);
  for (double tau = 0.05; tau <= 1.0; tau += 0.05) {
    const double cur = lemma3_q(tau, 10, kParams, kBasic);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Lemma3Test, RootExistsAndIsInterior) {
  for (int n : {2, 5, 20, 50}) {
    const auto tau = optimal_tau_continuous(n, kParams, kBasic);
    ASSERT_TRUE(tau.has_value()) << "n=" << n;
    EXPECT_GT(*tau, 0.0);
    EXPECT_LT(*tau, 1.0);
    EXPECT_NEAR(lemma3_q(*tau, n, kParams, kBasic), 0.0, 1e-6);
  }
}

TEST(Lemma3Test, NoInteriorOptimumForSingleNode) {
  EXPECT_FALSE(optimal_tau_continuous(1, kParams, kBasic).has_value());
}

TEST(Lemma3Test, OptimalTauShrinksWithN) {
  const auto t5 = optimal_tau_continuous(5, kParams, kBasic);
  const auto t50 = optimal_tau_continuous(50, kParams, kBasic);
  ASSERT_TRUE(t5 && t50);
  EXPECT_GT(*t5, *t50);
}

TEST(Lemma3Test, RtsCtsAllowsMoreAggression) {
  // Cheap collisions ⇒ larger optimal τ ⇒ smaller optimal window.
  const auto basic = optimal_tau_continuous(20, kParams, kBasic);
  const auto rts = optimal_tau_continuous(20, kParams, kRtsCts);
  ASSERT_TRUE(basic && rts);
  EXPECT_GT(*rts, *basic);
}

TEST(Lemma3Test, ContinuousWindowNearDiscreteArgmax) {
  // The Q-root window and the exact discrete argmax of u should agree to
  // within a few percent in the basic case (where T_s ≈ T_c holds).
  for (int n : {5, 20, 50}) {
    const auto w_cont = optimal_window_continuous(n, kParams, kBasic);
    ASSERT_TRUE(w_cont.has_value());
    const auto argmax = util::ternary_int_max(
        [&](std::int64_t w) {
          return homogeneous_utility_rate(static_cast<double>(w), n, kParams,
                                          kBasic);
        },
        1, kParams.w_max);
    EXPECT_NEAR(*w_cont, static_cast<double>(argmax.x),
                0.05 * static_cast<double>(argmax.x))
        << "n=" << n;
  }
}

TEST(UtilityTest, PaperTableIIBallpark) {
  // Paper Table II: W_c* = 76 / 336 / 879 for n = 5 / 20 / 50 (basic).
  // Our exact discrete argmax should land within ~5% of those values.
  const std::pair<int, int> expectations[] = {{5, 76}, {20, 336}, {50, 879}};
  for (const auto& [n, w_paper] : expectations) {
    const auto argmax = util::ternary_int_max(
        [&](std::int64_t w) {
          return homogeneous_utility_rate(static_cast<double>(w), n, kParams,
                                          kBasic);
        },
        1, kParams.w_max);
    EXPECT_NEAR(static_cast<double>(argmax.x), w_paper, 0.05 * w_paper)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace smac::analytical
