// Symmetry-class reduction invariants (PR 4 tentpole).
//
// The collapsed kernel solves the k-class system and expands per node, so
// three properties must hold exactly or to tight tolerance:
//   1. permutation equivariance, *bitwise*: solve_network(perm(w)) equals
//      the permuted solve_network(w) (canonical class ordering makes the
//      arithmetic identical regardless of node order);
//   2. the canonical cache hits on permutations of solved profiles and
//      returns bitwise-identical expansions;
//   3. the collapsed kernel agrees with the retained full-dimension
//      reference (try_solve_network_full) to <= 1e-12 across a grid of
//      (n, class-mix, PER) profiles — the acceptance bound of ISSUE 4.
#include <algorithm>
#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "analytical/fixed_point_solver.hpp"
#include "analytical/solver_cache.hpp"
#include "gtest/gtest.h"
#include "util/rng.hpp"

namespace smac::analytical {
namespace {

std::vector<int> shuffled(std::vector<int> w, std::uint64_t seed) {
  util::Rng rng(seed);
  for (std::size_t i = w.size(); i > 1; --i) {
    std::swap(w[i - 1], w[rng.uniform_below(i)]);
  }
  return w;
}

/// Builds an n-node profile with the requested class windows, spreading
/// multiplicities as evenly as possible and interleaving class members so
/// the node order is *not* sorted.
std::vector<int> mixed_profile(int n, const std::vector<int>& windows) {
  std::vector<int> w(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i)] =
        windows[static_cast<std::size_t>(i) % windows.size()];
  }
  return w;
}

TEST(ClassifyProfile, CanonicalSortedClasses) {
  const ClassProfile classes = classify_profile({64, 16, 64, 256, 16, 64});
  ASSERT_EQ(classes.class_count(), 3u);
  EXPECT_EQ(classes.window, (std::vector<int>{16, 64, 256}));
  EXPECT_EQ(classes.multiplicity, (std::vector<int>{2, 3, 1}));
  ASSERT_EQ(classes.node_count(), 6u);
  EXPECT_EQ(classes.class_of,
            (std::vector<std::int32_t>{1, 0, 1, 2, 0, 1}));
}

TEST(ClassifyProfile, HomogeneousIsOneClass) {
  const ClassProfile classes = classify_profile(std::vector<int>(50, 128));
  ASSERT_EQ(classes.class_count(), 1u);
  EXPECT_EQ(classes.multiplicity[0], 50);
}

TEST(SymmetryCollapse, PermutationEquivariantBitwise) {
  const std::vector<int> w = mixed_profile(23, {16, 128, 1024});
  const NetworkState base = solve_network(w, 5, {}, 0.1);
  for (const std::uint64_t seed : {11u, 29u, 77u}) {
    // Permute the profile and carry the permutation alongside.
    std::vector<std::size_t> order(w.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    util::Rng rng(seed);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_below(i)]);
    }
    std::vector<int> pw(w.size());
    for (std::size_t i = 0; i < w.size(); ++i) pw[i] = w[order[i]];

    const NetworkState permuted = solve_network(pw, 5, {}, 0.1);
    ASSERT_TRUE(permuted.converged);
    for (std::size_t i = 0; i < w.size(); ++i) {
      // Bitwise: the collapsed kernel computes the identical canonical
      // class solution either way; only the expansion map differs.
      EXPECT_EQ(permuted.tau[i], base.tau[order[i]]) << "seed " << seed;
      EXPECT_EQ(permuted.p[i], base.p[order[i]]) << "seed " << seed;
    }
  }
}

TEST(SymmetryCollapse, EqualWindowsShareBitwiseOutcomes) {
  const std::vector<int> w{512, 16, 512, 16, 512, 90, 16};
  const NetworkState state = solve_network(w, 6);
  for (std::size_t i = 0; i < w.size(); ++i) {
    for (std::size_t j = i + 1; j < w.size(); ++j) {
      if (w[i] != w[j]) continue;
      EXPECT_EQ(state.tau[i], state.tau[j]);
      EXPECT_EQ(state.p[i], state.p[j]);
    }
  }
}

TEST(SymmetryCollapse, CacheHitsOnPermutedProfiles) {
  NetworkSolveCache cache;
  const std::vector<int> w = mixed_profile(12, {32, 256});
  const TrySolveResult first = cache.solve(w, 5, 0.0);
  ASSERT_EQ(cache.misses(), 1u);
  for (const std::uint64_t seed : {3u, 5u, 9u}) {
    const std::vector<int> pw = shuffled(w, seed);
    const TrySolveResult again = cache.solve(pw, 5, 0.0);
    for (std::size_t i = 0; i < pw.size(); ++i) {
      const TrySolveResult direct = cache.solve(pw, 5, 0.0);
      EXPECT_EQ(again.state.tau[i], direct.state.tau[i]);
    }
  }
  // Every permutation collapses to the same canonical key: no new misses.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GE(cache.hits(), 3u);
  // And the permuted hit is bitwise the permuted original solution.
  const std::vector<int> pw = shuffled(w, 3u);
  const TrySolveResult hit = cache.solve(pw, 5, 0.0);
  for (std::size_t i = 0; i < pw.size(); ++i) {
    const TrySolveResult direct = try_solve_network(pw, 5, {}, 0.0);
    EXPECT_EQ(hit.state.tau[i], direct.state.tau[i]);
    EXPECT_EQ(hit.state.p[i], direct.state.p[i]);
  }
}

TEST(SymmetryCollapse, CollapsedAgreesWithFullAcrossGrid) {
  const std::vector<std::vector<int>> mixes{
      {64},                // k = 1 (scalar delegation)
      {16, 512},           // deviant-vs-crowd shape
      {16, 128, 1024},     // three-way split
      {8, 64, 256, 2048},  // k = 4
  };
  for (const int n : {4, 9, 20, 50, 100}) {
    for (const auto& mix : mixes) {
      if (static_cast<std::size_t>(n) < mix.size()) continue;
      for (const double per : {0.0, 0.3}) {
        const std::vector<int> w = mixed_profile(n, mix);
        const std::string label = "n=" + std::to_string(n) +
                                  " k=" + std::to_string(mix.size()) +
                                  " per=" + std::to_string(per);
        const TrySolveResult collapsed = try_solve_network(w, 5, {}, per);
        const TrySolveResult full = try_solve_network_full(w, 5, {}, per);
        ASSERT_EQ(collapsed.diagnostics.status, SolveStatus::kConverged)
            << label;
        ASSERT_EQ(full.diagnostics.status, SolveStatus::kConverged) << label;
        for (std::size_t i = 0; i < w.size(); ++i) {
          EXPECT_NEAR(collapsed.state.tau[i], full.state.tau[i], 1e-12)
              << label << " node " << i;
          EXPECT_NEAR(collapsed.state.p[i], full.state.p[i], 1e-12)
              << label << " node " << i;
        }
      }
    }
  }
}

TEST(SymmetryCollapse, HomogeneousDelegatesToScalarPath) {
  const TrySolveResult r = try_solve_network(std::vector<int>(20, 64), 5);
  EXPECT_EQ(r.diagnostics.status, SolveStatus::kConverged);
  // k = 1 routes through try_homogeneous_tau, not the damped ladder.
  EXPECT_STREQ(r.diagnostics.method, "brent");
  const NetworkState scalar = solve_network_homogeneous(64.0, 20, 5);
  EXPECT_EQ(r.state.tau[0], scalar.tau[0]);
}

TEST(SymmetryCollapse, WarmStartConvergesFasterAndAgrees) {
  const std::vector<int> w = mixed_profile(40, {16, 256, 1024});
  const TrySolveResult cold = try_solve_network(w, 5, {}, 0.05);
  ASSERT_EQ(cold.diagnostics.status, SolveStatus::kConverged);

  SolverOptions warm_opts;
  warm_opts.initial_tau = cold.state.tau;  // per-node warm start
  const TrySolveResult warm = try_solve_network(w, 5, warm_opts, 0.05);
  EXPECT_EQ(warm.diagnostics.status, SolveStatus::kConverged);
  EXPECT_STREQ(warm.diagnostics.method, "warm");
  EXPECT_LT(warm.diagnostics.iterations, cold.diagnostics.iterations);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(warm.state.tau[i], cold.state.tau[i], 1e-12);
  }

  // A class-space (size k) hint is accepted too.
  const ClassProfile classes = classify_profile(w);
  SolverOptions class_opts;
  class_opts.initial_tau.assign(classes.class_count(), 0.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    class_opts.initial_tau[static_cast<std::size_t>(classes.class_of[i])] =
        cold.state.tau[i];
  }
  const TrySolveResult via_class = try_solve_network(w, 5, class_opts, 0.05);
  EXPECT_EQ(via_class.diagnostics.status, SolveStatus::kConverged);
  EXPECT_STREQ(via_class.diagnostics.method, "warm");

  // Mis-sized hints are ignored, not an error.
  SolverOptions bad_opts;
  bad_opts.initial_tau.assign(w.size() + 3, 0.5);
  const TrySolveResult ignored = try_solve_network(w, 5, bad_opts, 0.05);
  EXPECT_EQ(ignored.diagnostics.status, SolveStatus::kConverged);
  EXPECT_STRNE(ignored.diagnostics.method, "warm");
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(ignored.state.tau[i], cold.state.tau[i]);
  }
}

TEST(SymmetryCollapse, ExpandClassesPreservesNodeOrder) {
  const std::vector<int> w{128, 8, 128, 8, 2048};
  const ClassProfile classes = classify_profile(w);
  const TrySolveResult collapsed = try_solve_classes(classes, 5);
  ASSERT_EQ(collapsed.state.tau.size(), classes.class_count());
  const NetworkState expanded = expand_classes(collapsed.state, classes);
  ASSERT_EQ(expanded.tau.size(), w.size());
  const NetworkState direct = solve_network(w, 5);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(expanded.tau[i], direct.tau[i]);
    EXPECT_EQ(expanded.p[i], direct.p[i]);
  }
}

}  // namespace
}  // namespace smac::analytical
