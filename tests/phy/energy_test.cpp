#include "phy/energy.hpp"

#include <gtest/gtest.h>

#include "analytical/fixed_point_solver.hpp"

namespace smac::phy {
namespace {

const Parameters kParams = Parameters::paper();

TEST(PowerProfileTest, ValidatesDraws) {
  PowerProfile p;
  EXPECT_NO_THROW(p.validate());
  p.tx_mw = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = PowerProfile{};
  p.idle_mw = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ExchangeEnergyTest, BasicSuccessMatchesHandComputation) {
  const PowerProfile power;
  const EnergyBreakdown e =
      successful_exchange_energy(kParams, AccessMode::kBasic, power);
  // tx: (400 + 8184) µs at 1900 mW → mJ.
  EXPECT_NEAR(e.tx_mj, 1900.0 * 8584.0 * 1e-9 * 1e3, 1e-6);
  // rx: 240 µs ACK at 1340 mW.
  EXPECT_NEAR(e.rx_mj, 1340.0 * 240.0 * 1e-9 * 1e3, 1e-6);
  EXPECT_GT(e.total_mj(), e.tx_mj);
}

TEST(ExchangeEnergyTest, RtsCtsCollisionIsCheapEnergyToo) {
  const PowerProfile power;
  const double basic =
      collided_attempt_energy(kParams, AccessMode::kBasic, power).total_mj();
  const double rts =
      collided_attempt_energy(kParams, AccessMode::kRtsCts, power).total_mj();
  // Basic collisions burn the whole frame; RTS collisions only the RTS.
  EXPECT_GT(basic, 15.0 * rts);
}

TEST(ExchangeEnergyTest, RtsCtsSuccessCostsMoreThanBasic) {
  const PowerProfile power;
  const double basic =
      successful_exchange_energy(kParams, AccessMode::kBasic, power).total_mj();
  const double rts = successful_exchange_energy(kParams, AccessMode::kRtsCts,
                                                power).total_mj();
  EXPECT_GT(rts, basic);  // handshake overhead
  EXPECT_LT(rts, 1.2 * basic);
}

TEST(NodePowerDrawTest, ValidatesState) {
  const PowerProfile power;
  EXPECT_THROW(node_power_draw_mw({}, {}, kParams, AccessMode::kBasic, power),
               std::invalid_argument);
  EXPECT_THROW(node_power_draw_mw({0.1}, {0.1, 0.2}, kParams,
                                  AccessMode::kBasic, power),
               std::invalid_argument);
}

TEST(NodePowerDrawTest, BoundedByRadioStates) {
  const PowerProfile power;
  const auto state = analytical::solve_network_homogeneous(64, 5, 6);
  const auto draw =
      node_power_draw_mw(state.tau, state.p, kParams, AccessMode::kBasic,
                         power);
  for (double mw : draw) {
    EXPECT_GT(mw, 0.5 * power.idle_mw);  // mostly-busy channel ≥ rx-ish draw
    EXPECT_LT(mw, power.tx_mw);          // nobody transmits all the time
  }
}

TEST(NodePowerDrawTest, AggressorBurnsMore) {
  const PowerProfile power;
  const auto state = analytical::solve_network({8, 256}, 6);
  const auto draw =
      node_power_draw_mw(state.tau, state.p, kParams, AccessMode::kBasic,
                         power);
  EXPECT_GT(draw[0], draw[1]);
}

TEST(NodePowerDrawTest, QuietChannelApproachesIdleDraw) {
  const PowerProfile power;
  // Two nodes with enormous windows: the channel is mostly σ-slots.
  const auto state = analytical::solve_network({4096, 4096}, 6);
  const auto draw =
      node_power_draw_mw(state.tau, state.p, kParams, AccessMode::kBasic,
                         power);
  EXPECT_NEAR(draw[0], power.idle_mw, 0.25 * power.idle_mw);
}

TEST(EquivalentCostTest, ValidatesArguments) {
  const PowerProfile power;
  EXPECT_THROW(equivalent_transmission_cost(kParams, AccessMode::kBasic, power,
                                            -0.1, 1.0),
               std::invalid_argument);
  EXPECT_THROW(equivalent_transmission_cost(kParams, AccessMode::kBasic, power,
                                            0.1, -1.0),
               std::invalid_argument);
}

TEST(EquivalentCostTest, InterpolatesBetweenEventEnergies) {
  const PowerProfile power;
  const double e0 = equivalent_transmission_cost(kParams, AccessMode::kBasic,
                                                 power, 0.0, 1.0);
  const double e1 = equivalent_transmission_cost(kParams, AccessMode::kBasic,
                                                 power, 1.0, 1.0);
  const double mid = equivalent_transmission_cost(kParams, AccessMode::kBasic,
                                                  power, 0.5, 1.0);
  EXPECT_NEAR(mid, 0.5 * (e0 + e1), 1e-12);
  EXPECT_DOUBLE_EQ(
      equivalent_transmission_cost(kParams, AccessMode::kBasic, power, 0.5,
                                   0.0),
      0.0);
}

TEST(EquivalentCostTest, PaperCostCorrespondsToPlausibleEnergyPrice) {
  // The paper's e = 0.01 with g = 1: at WaveLAN power draws one basic-mode
  // attempt costs ~16.5 mJ — e = 0.01 corresponds to pricing energy at
  // ~0.0006 gain/mJ. This test pins the bridge formula rather than the
  // physics: cost scales linearly in the price.
  const PowerProfile power;
  const double price = 6e-4;
  const double e = equivalent_transmission_cost(kParams, AccessMode::kBasic,
                                                power, 0.1, price);
  EXPECT_GT(e, 0.001);
  EXPECT_LT(e, 0.1);
  EXPECT_NEAR(equivalent_transmission_cost(kParams, AccessMode::kBasic, power,
                                           0.1, 2.0 * price),
              2.0 * e, 1e-12);
}

}  // namespace
}  // namespace smac::phy
