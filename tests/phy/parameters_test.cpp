#include "phy/parameters.hpp"

#include <gtest/gtest.h>

#include <functional>

namespace smac::phy {
namespace {

TEST(ParametersTest, TableIDefaults) {
  const Parameters p = Parameters::paper();
  EXPECT_DOUBLE_EQ(p.payload_bits, 8184.0);
  EXPECT_DOUBLE_EQ(p.mac_header_bits, 272.0);
  EXPECT_DOUBLE_EQ(p.phy_header_bits, 128.0);
  EXPECT_DOUBLE_EQ(p.ack_bits, 112.0);
  EXPECT_DOUBLE_EQ(p.rts_bits, 160.0);
  EXPECT_DOUBLE_EQ(p.cts_bits, 112.0);
  EXPECT_DOUBLE_EQ(p.bitrate_bps, 1.0e6);
  EXPECT_DOUBLE_EQ(p.sigma_us, 50.0);
  EXPECT_DOUBLE_EQ(p.sifs_us, 28.0);
  EXPECT_DOUBLE_EQ(p.difs_us, 128.0);
  EXPECT_DOUBLE_EQ(p.gain, 1.0);
  EXPECT_DOUBLE_EQ(p.cost, 0.01);
  EXPECT_DOUBLE_EQ(p.stage_duration_s, 10.0);
  EXPECT_DOUBLE_EQ(p.discount, 0.9999);
  EXPECT_NO_THROW(p.validate());
}

TEST(ParametersTest, AirtimesAt1Mbps) {
  const Parameters p = Parameters::paper();
  // At 1 Mbit/s, 1 bit = 1 µs.
  EXPECT_DOUBLE_EQ(p.header_us(), 400.0);   // 272 + 128
  EXPECT_DOUBLE_EQ(p.payload_us(), 8184.0);
  EXPECT_DOUBLE_EQ(p.ack_us(), 240.0);      // 112 + 128
  EXPECT_DOUBLE_EQ(p.rts_us(), 288.0);      // 160 + 128
  EXPECT_DOUBLE_EQ(p.cts_us(), 240.0);      // 112 + 128
}

TEST(ParametersTest, BasicSlotTimes) {
  const Parameters p = Parameters::paper();
  const SlotTimes t = p.slot_times(AccessMode::kBasic);
  // Ts = H + P + SIFS + ACK + DIFS = 400+8184+28+240+128.
  EXPECT_DOUBLE_EQ(t.ts_us, 8980.0);
  // Tc = H + P + SIFS (paper §III).
  EXPECT_DOUBLE_EQ(t.tc_us, 8612.0);
  EXPECT_DOUBLE_EQ(t.sigma_us, 50.0);
  // Basic access: collisions nearly as expensive as successes.
  EXPECT_GT(t.tc_us / t.ts_us, 0.9);
}

TEST(ParametersTest, RtsCtsSlotTimes) {
  const Parameters p = Parameters::paper();
  const SlotTimes t = p.slot_times(AccessMode::kRtsCts);
  // Ts' = RTS+SIFS+CTS+SIFS+H+P+SIFS+ACK+DIFS.
  EXPECT_DOUBLE_EQ(t.ts_us, 288 + 28 + 240 + 28 + 400 + 8184 + 28 + 240 + 128);
  // Tc' = RTS + DIFS.
  EXPECT_DOUBLE_EQ(t.tc_us, 416.0);
  // The whole point of RTS/CTS: collisions are cheap (Tc' << Ts').
  EXPECT_LT(t.tc_us / t.ts_us, 0.05);
}

TEST(ParametersTest, HigherBitrateShrinksAirtime) {
  Parameters p = Parameters::paper();
  p.bitrate_bps = 2.0e6;
  EXPECT_DOUBLE_EQ(p.payload_us(), 4092.0);
  const SlotTimes t = p.slot_times(AccessMode::kBasic);
  EXPECT_LT(t.ts_us, 8980.0);
}

TEST(ParametersTest, ToStringNames) {
  EXPECT_EQ(to_string(AccessMode::kBasic), "basic");
  EXPECT_EQ(to_string(AccessMode::kRtsCts), "rts-cts");
}

class ParameterValidationTest
    : public ::testing::TestWithParam<std::function<void(Parameters&)>> {};

TEST_P(ParameterValidationTest, RejectsInvalidField) {
  Parameters p = Parameters::paper();
  GetParam()(p);
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    InvalidFields, ParameterValidationTest,
    ::testing::Values(
        [](Parameters& p) { p.payload_bits = 0.0; },
        [](Parameters& p) { p.bitrate_bps = -1.0; },
        [](Parameters& p) { p.sigma_us = 0.0; },
        [](Parameters& p) { p.sifs_us = -5.0; },
        [](Parameters& p) { p.difs_us = 0.0; },
        [](Parameters& p) { p.stage_duration_s = 0.0; },
        [](Parameters& p) { p.gain = 0.0; },
        [](Parameters& p) { p.cost = -0.01; },
        [](Parameters& p) { p.max_backoff_stage = -1; },
        [](Parameters& p) { p.w_max = 0; },
        [](Parameters& p) { p.discount = 1.0; },
        [](Parameters& p) { p.discount = 0.0; }));

}  // namespace
}  // namespace smac::phy
