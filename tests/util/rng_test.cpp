#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace smac::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(r());
  EXPECT_GT(values.size(), 95u);  // not stuck
}

TEST(RngTest, UniformBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform_below(17), 17u);
  }
}

TEST(RngTest, UniformBelowOneIsAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.uniform_below(1), 0u);
  }
}

TEST(RngTest, UniformBelowCoversAllValues) {
  Rng r(99);
  std::array<int, 8> counts{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[r.uniform_below(8)];
  }
  // Each bucket expects 10000; allow 5% deviation (>6 sigma).
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 / 20);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01HalfOpenAndCentered) {
  Rng r(5);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, UniformRealRespectsBounds) {
  Rng r(6);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(2.5, 7.5);
    ASSERT_GE(v, 2.5);
    ASSERT_LT(v, 7.5);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng r(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(9);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng r(10);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = r.exponential(2.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(12);
  Rng b(12);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(ca(), cb());
  }
}

TEST(RngTest, RepeatedSplitsDisjoint) {
  Rng parent(13);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (c1() == c2()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng r(14);
  std::vector<int> v{1, 2, 3, 4, 5};
  // Compiles and runs with <random>-style usage.
  const auto idx = r() % v.size();
  EXPECT_LT(idx, v.size());
}

}  // namespace
}  // namespace smac::util
