#include "util/root_finding.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smac::util {
namespace {

TEST(BisectTest, FindsLinearRoot) {
  const auto r = bisect([](double x) { return 2.0 * x - 1.0; }, -10.0, 10.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x, 0.5, 1e-9);
}

TEST(BisectTest, RejectsNonBracketingInterval) {
  EXPECT_FALSE(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0));
}

TEST(BisectTest, RejectsInvertedInterval) {
  EXPECT_FALSE(bisect([](double x) { return x; }, 1.0, -1.0));
}

TEST(BisectTest, ExactEndpointRoot) {
  const auto r = bisect([](double x) { return x - 2.0; }, 2.0, 5.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->x, 2.0);
}

TEST(BrentTest, FindsTranscendentalRoot) {
  // cos(x) = x near 0.739085.
  const auto r = brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x, 0.7390851332151607, 1e-10);
}

TEST(BrentTest, FindsPolynomialRootFasterThanBisect) {
  auto f = [](double x) { return x * x * x - 2.0 * x - 5.0; };
  const auto rb = brent(f, 2.0, 3.0);
  const auto ri = bisect(f, 2.0, 3.0);
  ASSERT_TRUE(rb.has_value());
  ASSERT_TRUE(ri.has_value());
  EXPECT_NEAR(rb->x, 2.0945514815423265, 1e-10);
  EXPECT_LT(rb->iterations, ri->iterations);
}

TEST(BrentTest, RejectsNonBracketingInterval) {
  EXPECT_FALSE(brent([](double x) { return x * x + 0.5; }, -2.0, 2.0));
}

TEST(BrentTest, HandlesSteepFunction) {
  const auto r = brent([](double x) { return std::exp(20.0 * x) - 1.0; },
                       -1.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, 0.0, 1e-8);
}

TEST(BrentTest, NearFlatFunction) {
  const auto r =
      brent([](double x) { return 1e-14 * (x - 3.0); }, 0.0, 10.0,
            {1e-12, 1e-20, 500});
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, 3.0, 1e-6);
}

TEST(FindBracketTest, LocatesSignChange) {
  const auto b = find_bracket(
      [](double x) { return (x - 3.3) * (x - 8.7); }, 0.0, 5.0, 50);
  ASSERT_TRUE(b.has_value());
  EXPECT_LE(b->first, 3.3);
  EXPECT_GE(b->second, 3.3);
}

TEST(FindBracketTest, NoSignChangeReturnsNullopt) {
  EXPECT_FALSE(find_bracket([](double x) { return x * x + 1.0; }, -5.0, 5.0));
}

TEST(FindBracketTest, FeedsBrent) {
  auto f = [](double x) { return std::sin(x); };
  const auto b = find_bracket(f, 2.0, 4.0, 16);
  ASSERT_TRUE(b.has_value());
  const auto r = brent(f, b->first, b->second);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, M_PI, 1e-10);
}

}  // namespace
}  // namespace smac::util
