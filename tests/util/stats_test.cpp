#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace smac::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci_halfwidth(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: Σ(x-5)² = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStatsTest, CiShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // underflow -> bin 0
  h.add(42.0);   // overflow -> bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
}

TEST(HistogramTest, QuantileInterpolation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, QuantileOfEmptyIsLo) {
  Histogram h(5.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(JainFairnessTest, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({3.0, 3.0, 3.0, 3.0}), 1.0);
}

TEST(JainFairnessTest, MaximallyUnfair) {
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairnessTest, EmptyAndZeroAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(VectorStatsTest, MeanAndVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(variance_of(xs), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(variance_of({7.0}), 0.0);
}

}  // namespace
}  // namespace smac::util
