#include "util/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smac::util {
namespace {

TEST(GoldenSectionTest, FindsParabolaMax) {
  const auto r = golden_section_max(
      [](double x) { return -(x - 2.5) * (x - 2.5); }, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.5, 1e-7);
  EXPECT_NEAR(r.fx, 0.0, 1e-12);
}

TEST(GoldenSectionTest, MaxAtBoundary) {
  const auto r = golden_section_max([](double x) { return x; }, 0.0, 1.0);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
}

TEST(GoldenSectionTest, RejectsInvertedRange) {
  EXPECT_THROW(golden_section_max([](double x) { return x; }, 1.0, 0.0),
               std::invalid_argument);
}

TEST(TernaryIntMaxTest, MatchesExhaustiveOnUnimodal) {
  auto f = [](std::int64_t w) {
    const double x = static_cast<double>(w);
    return -(x - 337.0) * (x - 337.0);
  };
  const auto t = ternary_int_max(f, 1, 4096);
  const auto e = exhaustive_int_max(f, 1, 4096);
  EXPECT_EQ(t.x, e.x);
  EXPECT_EQ(t.x, 337);
  EXPECT_LT(t.evaluations, e.evaluations / 10);
}

TEST(TernaryIntMaxTest, TinyRanges) {
  auto f = [](std::int64_t w) { return static_cast<double>(-w * w + 4 * w); };
  EXPECT_EQ(ternary_int_max(f, 2, 2).x, 2);
  EXPECT_EQ(ternary_int_max(f, 1, 3).x, 2);
  EXPECT_EQ(ternary_int_max(f, 1, 2).x, 2);
}

TEST(TernaryIntMaxTest, MaxAtEdges) {
  auto inc = [](std::int64_t w) { return static_cast<double>(w); };
  auto dec = [](std::int64_t w) { return static_cast<double>(-w); };
  EXPECT_EQ(ternary_int_max(inc, 1, 1000).x, 1000);
  EXPECT_EQ(ternary_int_max(dec, 1, 1000).x, 1);
}

TEST(ExhaustiveIntMaxTest, FindsGlobalOnMultimodal) {
  // Two peaks; exhaustive must find the taller at x = 90.
  auto f = [](std::int64_t w) {
    const double x = static_cast<double>(w);
    return std::exp(-(x - 20) * (x - 20) / 50.0) +
           1.5 * std::exp(-(x - 90) * (x - 90) / 50.0);
  };
  EXPECT_EQ(exhaustive_int_max(f, 1, 128).x, 90);
}

TEST(HillClimbTest, ClimbsRightToPeak) {
  auto f = [](std::int64_t w) {
    const double x = static_cast<double>(w);
    return -(x - 70.0) * (x - 70.0);
  };
  const auto r = hill_climb_int_max(f, 10, 1, 1000);
  EXPECT_EQ(r.x, 70);
}

TEST(HillClimbTest, ClimbsLeftWhenStartAbovePeak) {
  auto f = [](std::int64_t w) {
    const double x = static_cast<double>(w);
    return -(x - 70.0) * (x - 70.0);
  };
  const auto r = hill_climb_int_max(f, 500, 1, 1000);
  EXPECT_EQ(r.x, 70);
}

TEST(HillClimbTest, StartAtPeakStaysPut) {
  auto f = [](std::int64_t w) {
    const double x = static_cast<double>(w);
    return -(x - 70.0) * (x - 70.0);
  };
  EXPECT_EQ(hill_climb_int_max(f, 70, 1, 1000).x, 70);
}

TEST(HillClimbTest, RespectsBounds) {
  auto f = [](std::int64_t w) { return static_cast<double>(w); };
  EXPECT_EQ(hill_climb_int_max(f, 5, 1, 10).x, 10);
  EXPECT_THROW(hill_climb_int_max(f, 0, 1, 10), std::invalid_argument);
}

// Property sweep: ternary == exhaustive for a family of unimodal shapes.
class UnimodalSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnimodalSweep, TernaryMatchesExhaustive) {
  const int peak = GetParam();
  auto f = [&](std::int64_t w) {
    const double x = static_cast<double>(w);
    return -std::abs(x - peak) * (1.0 + 0.001 * std::abs(x - peak));
  };
  EXPECT_EQ(ternary_int_max(f, 1, 512).x, exhaustive_int_max(f, 1, 512).x);
}

INSTANTIATE_TEST_SUITE_P(PeakPositions, UnimodalSweep,
                         ::testing::Values(1, 2, 17, 100, 255, 256, 500, 511,
                                           512));

}  // namespace
}  // namespace smac::util
