#include "util/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smac::util {
namespace {

TEST(FixedPointTest, ScalarContraction) {
  // x = cos(x): unique fixed point ~0.739085.
  auto F = [](const std::vector<double>& x) {
    return std::vector<double>{std::cos(x[0])};
  };
  const auto r = solve_fixed_point(F, {0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.7390851332151607, 1e-10);
}

TEST(FixedPointTest, VectorSystem) {
  // x = 0.5·cos(y), y = 0.5·sin(x): contraction on R².
  auto F = [](const std::vector<double>& v) {
    return std::vector<double>{0.5 * std::cos(v[1]), 0.5 * std::sin(v[0])};
  };
  const auto r = solve_fixed_point(F, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.5 * std::cos(r.x[1]), 1e-10);
  EXPECT_NEAR(r.x[1], 0.5 * std::sin(r.x[0]), 1e-10);
}

TEST(FixedPointTest, DampingStabilizesOscillation) {
  // x = 1 − x oscillates without damping; with damping it converges to 0.5.
  auto F = [](const std::vector<double>& x) {
    return std::vector<double>{1.0 - x[0]};
  };
  FixedPointOptions opts;
  opts.damping = 0.5;
  const auto r = solve_fixed_point(F, {0.0}, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.5, 1e-9);
}

TEST(FixedPointTest, UndampedOscillationDoesNotConverge) {
  auto F = [](const std::vector<double>& x) {
    return std::vector<double>{1.0 - x[0]};
  };
  FixedPointOptions opts;
  opts.damping = 0.0;
  opts.max_iterations = 100;
  const auto r = solve_fixed_point(F, {0.0}, opts);
  EXPECT_FALSE(r.converged);
}

TEST(FixedPointTest, RejectsBadDamping) {
  auto F = [](const std::vector<double>& x) { return x; };
  EXPECT_THROW(solve_fixed_point(F, {0.0}, {1.0, 1e-9, 10}),
               std::invalid_argument);
  EXPECT_THROW(solve_fixed_point(F, {0.0}, {-0.1, 1e-9, 10}),
               std::invalid_argument);
}

TEST(FixedPointTest, RejectsDimensionChange) {
  auto F = [](const std::vector<double>&) {
    return std::vector<double>{1.0, 2.0};
  };
  EXPECT_THROW(solve_fixed_point(F, {0.0}), std::invalid_argument);
}

TEST(FixedPointTest, IdentityConvergesImmediately) {
  auto F = [](const std::vector<double>& x) { return x; };
  const auto r = solve_fixed_point(F, {3.0, -1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1);
}

}  // namespace
}  // namespace smac::util
