#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace smac::util {
namespace {

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"n", "Wc*"});
  t.add_row({"5", "76"});
  t.add_row({"50", "879"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("n   Wc*"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("50  879"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableTest, StreamsToOstream) {
  TextTable t({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  os << t;
  EXPECT_FALSE(os.str().empty());
}

TEST(FormatTest, FixedPrecision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_percent(0.9634, 1), "96.3%");
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/smac_csv_test.csv";
  {
    CsvWriter w(path, {"w", "payoff"});
    w.add_row({76.0, 2.014e-05});
    w.add_row({80.0, 2.01e-05});
    EXPECT_EQ(w.rows_written(), 2u);
    EXPECT_THROW(w.add_row({1.0}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "w,payoff");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.substr(0, 3), "76,");
  std::remove(path.c_str());
}

TEST(CsvTest, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(LoggingTest, ThresholdFilters) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // These must not crash and must be filtered (no observable assertion on
  // stderr content here; we assert the level round-trips).
  SMAC_LOG(kDebug) << "invisible";
  SMAC_LOG(kError) << "visible";
  set_log_level(prior);
}

TEST(LoggingTest, TagsAreStable) {
  EXPECT_STREQ(log_level_tag(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_tag(LogLevel::kInfo), "INFO ");
  EXPECT_STREQ(log_level_tag(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace smac::util
