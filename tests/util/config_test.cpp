#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace smac::util {
namespace {

TEST(ConfigTest, FromArgsParsesTokens) {
  const char* argv[] = {"prog", "n=20", "mode=rts-cts", "per=0.05"};
  const Config config = Config::from_args(4, argv);
  EXPECT_EQ(config.size(), 3u);
  EXPECT_EQ(config.get_int("n", 0), 20);
  EXPECT_EQ(config.get_string("mode", ""), "rts-cts");
  EXPECT_DOUBLE_EQ(config.get_double("per", 0.0), 0.05);
}

TEST(ConfigTest, FromArgsRejectsMalformedTokens) {
  const char* bad_eq[] = {"prog", "noequals"};
  EXPECT_THROW(Config::from_args(2, bad_eq), std::invalid_argument);
  const char* bad_key[] = {"prog", "=value"};
  EXPECT_THROW(Config::from_args(2, bad_key), std::invalid_argument);
}

TEST(ConfigTest, FromStringSkipsCommentsAndBlanks) {
  const Config config = Config::from_string(
      "# experiment\n"
      "\n"
      "  n = 50 \n"
      "seed=7\n");
  EXPECT_EQ(config.size(), 2u);
  EXPECT_EQ(config.get_int("n", 0), 50);
  EXPECT_EQ(config.get_int("seed", 0), 7);
}

TEST(ConfigTest, LaterEntriesOverrideEarlier) {
  const Config config = Config::from_string("n=5\nn=10\n");
  EXPECT_EQ(config.get_int("n", 0), 10);
}

TEST(ConfigTest, FallbacksForAbsentKeys) {
  const Config config;
  EXPECT_EQ(config.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(config.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(config.get_string("missing", "x"), "x");
  EXPECT_TRUE(config.get_bool("missing", true));
  EXPECT_FALSE(config.has("missing"));
  EXPECT_FALSE(config.raw("missing").has_value());
}

TEST(ConfigTest, TypedGettersRejectGarbage) {
  const Config config = Config::from_string(
      "num=12abc\nflt=1.5x\nflag=maybe\n");
  EXPECT_THROW(config.get_int("num", 0), std::invalid_argument);
  EXPECT_THROW(config.get_double("flt", 0.0), std::invalid_argument);
  EXPECT_THROW(config.get_bool("flag", false), std::invalid_argument);
  // But raw/string access still works.
  EXPECT_EQ(config.get_string("num", ""), "12abc");
}

TEST(ConfigTest, BooleanSpellings) {
  const Config config = Config::from_string(
      "a=true\nb=FALSE\nc=1\nd=0\ne=Yes\nf=no\n");
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_FALSE(config.get_bool("b", true));
  EXPECT_TRUE(config.get_bool("c", false));
  EXPECT_FALSE(config.get_bool("d", true));
  EXPECT_TRUE(config.get_bool("e", false));
  EXPECT_FALSE(config.get_bool("f", true));
}

TEST(ConfigTest, SetAndKeys) {
  Config config;
  config.set("zeta", "1");
  config.set("alpha", "2");
  EXPECT_THROW(config.set("", "3"), std::invalid_argument);
  const auto keys = config.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");  // sorted
  EXPECT_EQ(keys[1], "zeta");
}

TEST(ConfigTest, FromFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/smac_config_test.cfg";
  {
    std::ofstream out(path);
    out << "# scenario\nn=100\nrange_m=250.0\nmobile=yes\n";
  }
  const Config config = Config::from_file(path);
  EXPECT_EQ(config.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(config.get_double("range_m", 0.0), 250.0);
  EXPECT_TRUE(config.get_bool("mobile", false));
  std::remove(path.c_str());
  EXPECT_THROW(Config::from_file("/nonexistent/nope.cfg"),
               std::runtime_error);
}

TEST(ConfigTest, IntRangeGuard) {
  const Config config = Config::from_string("big=99999999999\n");
  EXPECT_THROW(config.get_int("big", 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(config.get_double("big", 0.0), 99999999999.0);
}

}  // namespace
}  // namespace smac::util
