// PDES oracle-equivalence fuzz (`ctest -L fuzz`): randomized
// fault::SlotFaultPlans and random-waypoint window schedules through
// both multihop kernels. Every window must yield identical per-node
// p_hn/payoff trajectories (bitwise — the determinism contract of
// docs/PDES.md) and uphold the lookahead invariant: zero violations, a
// horizon lead of at most one slot, i.e. no region ever observes a
// carrier-sense neighbor's unpublished past.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "multihop/mobility.hpp"
#include "multihop/multihop_simulator.hpp"
#include "multihop/pdes.hpp"
#include "multihop/topology.hpp"
#include "util/rng.hpp"

namespace smac::multihop {
namespace {

fault::SlotFaultPlan random_plan(util::Rng& rng, std::size_t n,
                                 std::uint64_t horizon) {
  fault::SlotFaultPlan plan;
  const std::uint64_t events = rng.uniform_below(9);  // 0..8, often none
  for (std::uint64_t e = 0; e < events; ++e) {
    fault::SlotEvent ev;
    ev.slot = rng.uniform_below(horizon);
    ev.node = rng.uniform_below(n);
    ev.kind = rng.bernoulli(0.5) ? fault::FaultKind::kCrash
                                 : fault::FaultKind::kJoin;
    plan.events.push_back(ev);
  }
  if (rng.bernoulli(0.5)) {
    plan.channel.p_good_to_bad = rng.uniform_real(0.005, 0.1);
    plan.channel.p_bad_to_good = rng.uniform_real(0.05, 0.5);
    plan.channel.per_bad = rng.uniform_real(0.1, 0.9);
  }
  return plan;
}

PdesOptions random_options(util::Rng& rng) {
  PdesOptions opt;
  const std::size_t jobs_pick[] = {1, 2, 4, 8};
  opt.jobs = jobs_pick[rng.uniform_below(4)];
  switch (rng.uniform_below(4)) {
    case 0:
      opt.single_region = true;
      break;
    case 1:
      opt.region_per_node = true;
      break;
    default:
      opt.region_edge_factor = rng.uniform_real(1.0, 5.0);
      break;
  }
  return opt;
}

void expect_identical(const MultihopResult& a, const MultihopResult& b) {
  ASSERT_EQ(a.node.size(), b.node.size());
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.bad_state_slots, b.bad_state_slots);
  EXPECT_EQ(a.global_payoff_rate, b.global_payoff_rate);
  EXPECT_EQ(a.aggregate_p_hn, b.aggregate_p_hn);
  for (std::size_t i = 0; i < a.node.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    EXPECT_EQ(a.node[i].attempts, b.node[i].attempts);
    EXPECT_EQ(a.node[i].successes, b.node[i].successes);
    EXPECT_EQ(a.node[i].sender_collisions, b.node[i].sender_collisions);
    EXPECT_EQ(a.node[i].hidden_losses, b.node[i].hidden_losses);
    EXPECT_EQ(a.node[i].channel_losses, b.node[i].channel_losses);
    EXPECT_EQ(a.node[i].local_time_us, b.node[i].local_time_us);
    EXPECT_EQ(a.node[i].payoff_rate, b.node[i].payoff_rate);
    EXPECT_EQ(a.node[i].measured_p_hn, b.node[i].measured_p_hn);
  }
}

TEST(PdesFuzz, RandomPlansAndWaypointSchedules) {
  util::Rng master(0x9d5efuLL);
  const int kIterations = 24;
  for (int it = 0; it < kIterations; ++it) {
    SCOPED_TRACE("iteration " + std::to_string(it));
    const std::size_t n = 8 + master.uniform_below(45);
    const double arena = master.uniform_real(400.0, 2400.0);
    const int windows = 1 + static_cast<int>(master.uniform_below(3));
    const std::uint64_t slots_per_window = 150 + master.uniform_below(450);

    MobilityConfig mob;
    mob.width_m = arena;
    mob.height_m = arena;
    mob.v_max_mps = master.uniform_real(0.0, 50.0);
    mob.seed = master();
    RandomWaypointModel mobility(mob, n);

    std::vector<int> profile(n);
    for (std::size_t i = 0; i < n; ++i) {
      profile[i] = 2 + static_cast<int>(master.uniform_below(96));
    }

    MultihopConfig config;
    config.seed = master();
    config.faults = random_plan(
        master, n,
        static_cast<std::uint64_t>(windows) * slots_per_window + 50);
    if (master.bernoulli(0.4)) {
      config.params.packet_error_rate = master.uniform_real(0.0, 0.15);
    }

    MultihopConfig pdes_config = config;
    pdes_config.kernel = MultihopKernel::kPdes;
    pdes_config.pdes = random_options(master);

    Topology topo(mobility.positions(), 250.0);
    MultihopSimulator oracle(config, topo, profile);
    MultihopSimulator pdes(pdes_config, topo, profile);

    for (int w = 0; w < windows; ++w) {
      SCOPED_TRACE("window " + std::to_string(w));
      const MultihopResult a = oracle.run_slots(slots_per_window);
      const MultihopResult b = pdes.run_slots(slots_per_window);
      expect_identical(b, a);

      // Lookahead invariant: conservative execution never lets a region
      // read past a dependency's published horizon, and published
      // horizons never drift more than the one-slot lookahead apart.
      const PdesRunStats& stats = pdes.last_pdes_stats();
      EXPECT_EQ(stats.lookahead_violations, 0u);
      EXPECT_LE(stats.max_horizon_lead, 1u);
      EXPECT_EQ(stats.slots, slots_per_window);

      if (w + 1 < windows) {
        mobility.advance(master.uniform_real(1.0, 60.0));
        Topology moved(mobility.positions(), 250.0);
        oracle.update_topology(moved);
        pdes.update_topology(moved);
      }
    }
  }
}

}  // namespace
}  // namespace smac::multihop
