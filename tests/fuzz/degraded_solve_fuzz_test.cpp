// Degraded-solve provocation fuzz (ctest -L fuzz).
//
// Sweeps valid-but-extreme inputs through the non-throwing solver entry
// points: profiles up to n = 200, window mixes across 1..4096, PER up to
// 0.999, max_stage 0 and 6, with a deliberately starved iteration budget
// so the retry ladder actually exercises its degraded rungs. The contract
// under test (src/analytical/fixed_point_solver.hpp): try_solve_network
// and try_homogeneous_tau never throw on valid inputs, never return
// non-finite values, keep τ and p inside [0, 1], and classify every
// outcome honestly (usable statuses carry a residual no worse than
// kDegradedResidual). Profiles that come back kDegraded or kFailed are
// printed as one-line regression fixtures so a future solver change can
// replay them.
#include "analytical/fixed_point_solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace smac::analytical {
namespace {

std::string profile_label(const std::vector<int>& w, int max_stage,
                          double per) {
  const auto [lo, hi] = std::minmax_element(w.begin(), w.end());
  char buf[128];
  std::snprintf(buf, sizeof(buf), "n=%zu W=[%d..%d] m=%d PER=%.3f",
                w.size(), *lo, *hi, max_stage, per);
  return buf;
}

struct FuzzTally {
  int cases = 0;
  int converged = 0;
  int degraded = 0;
  int failed = 0;
};

/// Runs one profile through the starved solver and checks the
/// never-throw / always-finite / honest-classification contract.
void check_profile(const std::vector<int>& w, int max_stage, double per,
                   FuzzTally& tally) {
  SolverOptions opts;
  opts.max_iterations = 60;  // starved on purpose: provoke the ladder
  const std::string label = profile_label(w, max_stage, per);

  TrySolveResult r;
  ASSERT_NO_THROW(r = try_solve_network(w, max_stage, opts, per)) << label;

  ++tally.cases;
  switch (r.diagnostics.status) {
    case SolveStatus::kConverged:
      ++tally.converged;
      break;
    case SolveStatus::kDegraded:
      ++tally.degraded;
      break;
    case SolveStatus::kFailed:
      ++tally.failed;
      break;
  }
  if (r.diagnostics.status != SolveStatus::kConverged) {
    // Regression fixture: replay with
    //   try_solve_network(profile, m, {.max_iterations = 60}, PER).
    std::printf("[fuzz fixture] %s -> %s residual=%.3e method=%s "
                "iterations=%d retries=%d\n",
                label.c_str(), to_string(r.diagnostics.status),
                r.diagnostics.residual, r.diagnostics.method,
                r.diagnostics.iterations, r.diagnostics.retries);
  }

  ASSERT_EQ(r.state.tau.size(), w.size()) << label;
  ASSERT_EQ(r.state.p.size(), w.size()) << label;
  for (std::size_t i = 0; i < w.size(); ++i) {
    ASSERT_TRUE(std::isfinite(r.state.tau[i])) << label;
    ASSERT_TRUE(std::isfinite(r.state.p[i])) << label;
    EXPECT_GE(r.state.tau[i], 0.0) << label;
    EXPECT_LE(r.state.tau[i], 1.0) << label;
    EXPECT_GE(r.state.p[i], 0.0) << label;
    EXPECT_LE(r.state.p[i], 1.0) << label;
  }
  ASSERT_TRUE(std::isfinite(r.diagnostics.residual)) << label;
  if (usable(r.diagnostics.status)) {
    EXPECT_LE(r.diagnostics.residual, kDegradedResidual) << label;
    EXPECT_TRUE(r.state.converged ||
                r.diagnostics.status == SolveStatus::kDegraded)
        << label;
  }
}

TEST(DegradedSolveFuzzTest, StructuredExtremeProfilesNeverThrow) {
  FuzzTally tally;
  const std::vector<double> pers{0.0, 0.5, 0.9, 0.99, 0.999};
  const std::vector<int> stages{0, 6};

  for (const int m : stages) {
    for (const double per : pers) {
      // Saturated floor: everyone at the minimum window.
      for (const int n : {2, 50, 200}) {
        check_profile(std::vector<int>(n, 1), m, per, tally);
      }
      // Maximal windows: τ near zero everywhere.
      for (const int n : {2, 200}) {
        check_profile(std::vector<int>(n, 4096), m, per, tally);
      }
      // Bimodal split: half floor, half ceiling.
      {
        std::vector<int> w(100, 1);
        w.resize(200, 4096);
        check_profile(w, m, per, tally);
      }
      // One aggressor at W = 1 inside a polite crowd.
      {
        std::vector<int> w(64, 4096);
        w[0] = 1;
        check_profile(w, m, per, tally);
      }
      // Geometric staircase across the full range.
      {
        std::vector<int> w;
        for (int v = 1; v <= 4096; v *= 2) {
          w.insert(w.end(), 8, v);
        }
        check_profile(w, m, per, tally);
      }
    }
  }

  EXPECT_EQ(tally.cases, static_cast<int>(stages.size() * pers.size() * 8));
  EXPECT_EQ(tally.converged + tally.degraded + tally.failed, tally.cases);
  std::printf("[fuzz] structured: %d cases — %d converged, %d degraded, "
              "%d failed\n",
              tally.cases, tally.converged, tally.degraded, tally.failed);
}

TEST(DegradedSolveFuzzTest, RandomValidProfilesNeverThrow) {
  FuzzTally tally;
  util::Rng rng(0xf0221e57ULL);  // fixed seed: the sweep is replayable
  const std::vector<double> pers{0.0, 0.25, 0.9, 0.999};

  for (int c = 0; c < 120; ++c) {
    const int n = 1 + static_cast<int>(rng.uniform_below(200));
    std::vector<int> w(static_cast<std::size_t>(n));
    for (int& wi : w) {
      // Mix power-of-two windows (the protocol's natural values) with
      // arbitrary ones across the full 1..4096 range.
      wi = rng.bernoulli(0.5)
               ? 1 << rng.uniform_below(13)
               : static_cast<int>(rng.uniform_int(1, 4096));
    }
    const int m = rng.bernoulli(0.5) ? 0 : 6;
    const double per = pers[rng.uniform_below(pers.size())];
    check_profile(w, m, per, tally);
  }

  EXPECT_EQ(tally.cases, 120);
  std::printf("[fuzz] random: %d cases — %d converged, %d degraded, "
              "%d failed\n",
              tally.cases, tally.converged, tally.degraded, tally.failed);
}

// Promoted fixtures: the pre-collapse solver left these valid random
// profiles (printed by RandomValidProfilesNeverThrow before PR 4) at
// kDegraded — or, for the n = 56 one, kFailed with residual 5.4e-5 —
// under the starved max_iterations = 60 budget. The collapsed kernel's
// seeded start plus the continue-from-best polish rung converges all of
// them; pin that so a ladder regression cannot silently reintroduce
// degraded solves on the game's own profile shapes.
TEST(DegradedSolveFuzzTest, PreviouslyDegradedFixturesNowConverge) {
  struct Fixture {
    std::vector<int> w;
    int max_stage;
    double per;
  };
  const std::vector<Fixture> fixtures{
      {{512,  256,  4008, 896,  1024, 1024, 4,    64,   4096, 1142, 4096,
        2808, 4094, 16,   32,   2329, 64,   3968, 1024, 3052, 16,   4096,
        512,  8,    44,   2048, 1,    3035, 1522, 2840, 32,   128,  2782,
        32,   2603, 1024, 2992, 4,    8,    4,    3736, 1,    976},
       6,
       0.0},
      {{512,  3376, 64,  1543, 4,    256,  4096, 64,   8,    1024, 32,   8,
        4096, 1128, 2224, 1,   16,   16,   4096, 2905, 32,   2048, 2361,
        3442, 4096, 4,   4096, 1144, 16,   3700, 74,   1201, 4,    128,
        643,  1330, 32,  2,    1024, 16,   3993, 1782, 2,    2745, 2427,
        512,  64,   2803, 1025, 583, 512,  2,    2807, 64,   32,   2550},
       6,
       0.0},
      {{793,  2716, 2048, 32,   128,  421,  16,   1293, 227,  4,    422,
        1,    132,  32,   512,  128,  194,  4096, 4096, 3352, 1771, 256,
        2282, 128,  64,   400,  1863, 64,   2415, 2420, 3960, 1864, 1095,
        8,    1574, 16,   4096, 3780, 1576, 3090, 128,  2588, 2733, 1,
        32,   4,    64,   1645, 1,    64,   16,   3903, 2229, 2048, 2267,
        902,  32,   32,   8,    64,   2048, 4050, 128,  8,    809,  3353,
        1076, 4,    256,  64,   64,   2,    1024, 8,    2048, 512,  737,
        64,   1189},
       6,
       0.0},
      {{3951, 512,  2,    32,   64,   1260, 8,   395,  2,    3233, 582,
        2236, 1,    1612, 256,  8,    2853, 8,   8,    1024, 1024, 411,
        8,    3400, 512,  1661, 3576, 2,    1559, 1024, 1,   16,   128,
        305,  4},
       6,
       0.0},
      {{1713, 256,  1232, 4007, 4,    32,   1639, 256,  1045, 128,  8,
        572,  16,   8,    1565, 1024, 1024, 2,    2826, 2451, 2048, 2514,
        3577, 32,   1024, 2048, 32,   1024, 8,    4,    32,   3282, 2,
        88,   32},
       6,
       0.25},
      {{3279, 1845, 1569, 2,    2904, 683,  3913, 2279, 1435, 64,  512,
        64,   4,    512,  937,  310,  265,  1024, 4,    2455, 1068, 4,
        522,  3833, 3061, 2},
       6,
       0.0},
  };
  SolverOptions opts;
  opts.max_iterations = 60;  // the same starved budget that provoked them
  for (const Fixture& fixture : fixtures) {
    const TrySolveResult r =
        try_solve_network(fixture.w, fixture.max_stage, opts, fixture.per);
    EXPECT_EQ(r.diagnostics.status, SolveStatus::kConverged)
        << profile_label(fixture.w, fixture.max_stage, fixture.per)
        << " -> " << to_string(r.diagnostics.status)
        << " residual=" << r.diagnostics.residual
        << " method=" << r.diagnostics.method;
  }
}

TEST(DegradedSolveFuzzTest, HomogeneousTauLadderNeverThrows) {
  const std::vector<double> windows{1.0, 1.0001, 2.0, 63.7, 4096.0, 1e6};
  const std::vector<int> ns{1, 2, 50, 200};
  const std::vector<double> pers{0.0, 0.9, 0.999};
  int failed = 0;
  for (const double w : windows) {
    for (const int n : ns) {
      for (const double per : pers) {
        for (const int m : {0, 6}) {
          TryTauResult r;
          ASSERT_NO_THROW(r = try_homogeneous_tau(w, n, m, per))
              << "w=" << w << " n=" << n << " m=" << m << " PER=" << per;
          ASSERT_TRUE(std::isfinite(r.tau));
          EXPECT_GE(r.tau, 0.0);
          EXPECT_LE(r.tau, 1.0);
          if (!usable(r.diagnostics.status)) {
            ++failed;
            std::printf("[fuzz fixture] homogeneous w=%.4g n=%d m=%d "
                        "PER=%.3f -> %s residual=%.3e\n",
                        w, n, m, per, to_string(r.diagnostics.status),
                        r.diagnostics.residual);
          }
        }
      }
    }
  }
  // The homogeneous ladder ends in bisection over a guaranteed bracket:
  // valid inputs must never come back unusable.
  EXPECT_EQ(failed, 0);
}

}  // namespace
}  // namespace smac::analytical
