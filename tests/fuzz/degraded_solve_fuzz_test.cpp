// Degraded-solve provocation fuzz (ctest -L fuzz).
//
// Sweeps valid-but-extreme inputs through the non-throwing solver entry
// points: profiles up to n = 200, window mixes across 1..4096, PER up to
// 0.999, max_stage 0 and 6, with a deliberately starved iteration budget
// so the retry ladder actually exercises its degraded rungs. The contract
// under test (src/analytical/fixed_point_solver.hpp): try_solve_network
// and try_homogeneous_tau never throw on valid inputs, never return
// non-finite values, keep τ and p inside [0, 1], and classify every
// outcome honestly (usable statuses carry a residual no worse than
// kDegradedResidual). Profiles that come back kDegraded or kFailed are
// printed as one-line regression fixtures so a future solver change can
// replay them.
#include "analytical/fixed_point_solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace smac::analytical {
namespace {

std::string profile_label(const std::vector<int>& w, int max_stage,
                          double per) {
  const auto [lo, hi] = std::minmax_element(w.begin(), w.end());
  char buf[128];
  std::snprintf(buf, sizeof(buf), "n=%zu W=[%d..%d] m=%d PER=%.3f",
                w.size(), *lo, *hi, max_stage, per);
  return buf;
}

struct FuzzTally {
  int cases = 0;
  int converged = 0;
  int degraded = 0;
  int failed = 0;
};

/// Runs one profile through the starved solver and checks the
/// never-throw / always-finite / honest-classification contract.
void check_profile(const std::vector<int>& w, int max_stage, double per,
                   FuzzTally& tally) {
  SolverOptions opts;
  opts.max_iterations = 60;  // starved on purpose: provoke the ladder
  const std::string label = profile_label(w, max_stage, per);

  TrySolveResult r;
  ASSERT_NO_THROW(r = try_solve_network(w, max_stage, opts, per)) << label;

  ++tally.cases;
  switch (r.diagnostics.status) {
    case SolveStatus::kConverged:
      ++tally.converged;
      break;
    case SolveStatus::kDegraded:
      ++tally.degraded;
      break;
    case SolveStatus::kFailed:
      ++tally.failed;
      break;
  }
  if (r.diagnostics.status != SolveStatus::kConverged) {
    // Regression fixture: replay with
    //   try_solve_network(profile, m, {.max_iterations = 60}, PER).
    std::printf("[fuzz fixture] %s -> %s residual=%.3e method=%s "
                "iterations=%d retries=%d\n",
                label.c_str(), to_string(r.diagnostics.status),
                r.diagnostics.residual, r.diagnostics.method,
                r.diagnostics.iterations, r.diagnostics.retries);
  }

  ASSERT_EQ(r.state.tau.size(), w.size()) << label;
  ASSERT_EQ(r.state.p.size(), w.size()) << label;
  for (std::size_t i = 0; i < w.size(); ++i) {
    ASSERT_TRUE(std::isfinite(r.state.tau[i])) << label;
    ASSERT_TRUE(std::isfinite(r.state.p[i])) << label;
    EXPECT_GE(r.state.tau[i], 0.0) << label;
    EXPECT_LE(r.state.tau[i], 1.0) << label;
    EXPECT_GE(r.state.p[i], 0.0) << label;
    EXPECT_LE(r.state.p[i], 1.0) << label;
  }
  ASSERT_TRUE(std::isfinite(r.diagnostics.residual)) << label;
  if (usable(r.diagnostics.status)) {
    EXPECT_LE(r.diagnostics.residual, kDegradedResidual) << label;
    EXPECT_TRUE(r.state.converged ||
                r.diagnostics.status == SolveStatus::kDegraded)
        << label;
  }
}

TEST(DegradedSolveFuzzTest, StructuredExtremeProfilesNeverThrow) {
  FuzzTally tally;
  const std::vector<double> pers{0.0, 0.5, 0.9, 0.99, 0.999};
  const std::vector<int> stages{0, 6};

  for (const int m : stages) {
    for (const double per : pers) {
      // Saturated floor: everyone at the minimum window.
      for (const int n : {2, 50, 200}) {
        check_profile(std::vector<int>(n, 1), m, per, tally);
      }
      // Maximal windows: τ near zero everywhere.
      for (const int n : {2, 200}) {
        check_profile(std::vector<int>(n, 4096), m, per, tally);
      }
      // Bimodal split: half floor, half ceiling.
      {
        std::vector<int> w(100, 1);
        w.resize(200, 4096);
        check_profile(w, m, per, tally);
      }
      // One aggressor at W = 1 inside a polite crowd.
      {
        std::vector<int> w(64, 4096);
        w[0] = 1;
        check_profile(w, m, per, tally);
      }
      // Geometric staircase across the full range.
      {
        std::vector<int> w;
        for (int v = 1; v <= 4096; v *= 2) {
          w.insert(w.end(), 8, v);
        }
        check_profile(w, m, per, tally);
      }
    }
  }

  EXPECT_EQ(tally.cases, static_cast<int>(stages.size() * pers.size() * 8));
  EXPECT_EQ(tally.converged + tally.degraded + tally.failed, tally.cases);
  std::printf("[fuzz] structured: %d cases — %d converged, %d degraded, "
              "%d failed\n",
              tally.cases, tally.converged, tally.degraded, tally.failed);
}

TEST(DegradedSolveFuzzTest, RandomValidProfilesNeverThrow) {
  FuzzTally tally;
  util::Rng rng(0xf0221e57ULL);  // fixed seed: the sweep is replayable
  const std::vector<double> pers{0.0, 0.25, 0.9, 0.999};

  for (int c = 0; c < 120; ++c) {
    const int n = 1 + static_cast<int>(rng.uniform_below(200));
    std::vector<int> w(static_cast<std::size_t>(n));
    for (int& wi : w) {
      // Mix power-of-two windows (the protocol's natural values) with
      // arbitrary ones across the full 1..4096 range.
      wi = rng.bernoulli(0.5)
               ? 1 << rng.uniform_below(13)
               : static_cast<int>(rng.uniform_int(1, 4096));
    }
    const int m = rng.bernoulli(0.5) ? 0 : 6;
    const double per = pers[rng.uniform_below(pers.size())];
    check_profile(w, m, per, tally);
  }

  EXPECT_EQ(tally.cases, 120);
  std::printf("[fuzz] random: %d cases — %d converged, %d degraded, "
              "%d failed\n",
              tally.cases, tally.converged, tally.degraded, tally.failed);
}

TEST(DegradedSolveFuzzTest, HomogeneousTauLadderNeverThrows) {
  const std::vector<double> windows{1.0, 1.0001, 2.0, 63.7, 4096.0, 1e6};
  const std::vector<int> ns{1, 2, 50, 200};
  const std::vector<double> pers{0.0, 0.9, 0.999};
  int failed = 0;
  for (const double w : windows) {
    for (const int n : ns) {
      for (const double per : pers) {
        for (const int m : {0, 6}) {
          TryTauResult r;
          ASSERT_NO_THROW(r = try_homogeneous_tau(w, n, m, per))
              << "w=" << w << " n=" << n << " m=" << m << " PER=" << per;
          ASSERT_TRUE(std::isfinite(r.tau));
          EXPECT_GE(r.tau, 0.0);
          EXPECT_LE(r.tau, 1.0);
          if (!usable(r.diagnostics.status)) {
            ++failed;
            std::printf("[fuzz fixture] homogeneous w=%.4g n=%d m=%d "
                        "PER=%.3f -> %s residual=%.3e\n",
                        w, n, m, per, to_string(r.diagnostics.status),
                        r.diagnostics.residual);
          }
        }
      }
    }
  }
  // The homogeneous ladder ends in bisection over a guaranteed bracket:
  // valid inputs must never come back unusable.
  EXPECT_EQ(failed, 0);
}

}  // namespace
}  // namespace smac::analytical
