#include "sim/misbehavior_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analytical/fixed_point_solver.hpp"
#include "util/stats.hpp"

namespace smac::sim {
namespace {

SimConfig make_config(std::uint64_t seed) {
  SimConfig config;
  config.seed = seed;
  return config;
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(util::normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(util::normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(util::normal_quantile(0.99), 2.326347874, 1e-6);
  EXPECT_NEAR(util::normal_quantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(util::normal_quantile(1e-6), -4.753424, 1e-4);
  EXPECT_THROW(util::normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(util::normal_quantile(1.0), std::invalid_argument);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (double p : {0.001, 0.1, 0.3, 0.7, 0.95, 0.9999}) {
    EXPECT_NEAR(util::normal_cdf(util::normal_quantile(p)), p, 1e-8);
  }
}

TEST(DetectorTest, ValidatesInput) {
  SimResult empty;
  EXPECT_THROW(detect_misbehavior(empty, 64, 6), std::invalid_argument);
  Simulator sim(make_config(1), {64, 64});
  const auto r = sim.run_slots(1000);
  EXPECT_THROW(detect_misbehavior(r, 0, 6), std::invalid_argument);
  DetectorConfig bad;
  bad.significance = 0.0;
  EXPECT_THROW(detect_misbehavior(r, 64, 6, bad), std::invalid_argument);
  bad = DetectorConfig{};
  bad.tolerance = -0.1;
  EXPECT_THROW(detect_misbehavior(r, 64, 6, bad), std::invalid_argument);
  EXPECT_THROW(expected_detection_slots(64, 16, 1, 6), std::invalid_argument);
}

TEST(DetectorTest, CompliantNetworkIsNotFlagged) {
  // 20 independent runs × 5 nodes at the agreed window: with 1%
  // significance and 5% tolerance the false-positive count stays tiny.
  int flags = 0;
  int tests = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Simulator sim(make_config(100 + seed), std::vector<int>(5, 64));
    const auto verdicts = detect_misbehavior(sim.run_slots(80000), 64, 6);
    for (const auto& v : verdicts) {
      ++tests;
      if (v.flagged) ++flags;
    }
  }
  EXPECT_LE(flags, 2) << "false positives out of " << tests;
}

TEST(DetectorTest, AggressiveCheaterIsFlagged) {
  std::vector<int> profile(5, 64);
  profile[2] = 16;  // cheats 4x
  Simulator sim(make_config(7), profile);
  const auto verdicts = detect_misbehavior(sim.run_slots(100000), 64, 6);
  EXPECT_TRUE(verdicts[2].flagged);
  EXPECT_GT(verdicts[2].z_score, verdicts[0].z_score);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (i != 2) {
      EXPECT_FALSE(verdicts[i].flagged) << "node " << i;
    }
  }
}

TEST(DetectorTest, MarginalCheaterEscapesTolerance) {
  // W − 2 out of 64 raises τ by ~3%, inside the 5% tolerance band: the
  // detector must stay quiet (this is exactly the slack GTFT's β models).
  std::vector<int> profile(5, 64);
  profile[0] = 62;
  Simulator sim(make_config(8), profile);
  const auto verdicts = detect_misbehavior(sim.run_slots(200000), 64, 6);
  EXPECT_FALSE(verdicts[0].flagged);
}

TEST(DetectorTest, VerdictFieldsAreCoherent) {
  Simulator sim(make_config(9), std::vector<int>(4, 32));
  const auto verdicts = detect_misbehavior(sim.run_slots(50000), 32, 6);
  for (const auto& v : verdicts) {
    EXPECT_GT(v.tau_expected, 0.0);
    EXPECT_NEAR(v.tau_observed, v.tau_expected, 0.25 * v.tau_expected);
  }
}

TEST(TryDetectTest, MatchesThrowingPathOnValidInput) {
  std::vector<int> profile(5, 64);
  profile[2] = 16;
  Simulator sim(make_config(7), profile);
  const auto observed = sim.run_slots(100000);
  const auto thrown = detect_misbehavior(observed, 64, 6);
  const auto tried = try_detect_misbehavior(observed, 64, 6);
  ASSERT_TRUE(tried.ok());
  ASSERT_EQ(tried.verdicts.size(), thrown.size());
  for (std::size_t i = 0; i < thrown.size(); ++i) {
    EXPECT_DOUBLE_EQ(tried.verdicts[i].z_score, thrown[i].z_score);
    EXPECT_EQ(tried.verdicts[i].flagged, thrown[i].flagged);
  }
}

TEST(TryDetectTest, ReportsInvalidInputInsteadOfThrowing) {
  SimResult empty;
  EXPECT_EQ(try_detect_misbehavior(empty, 64, 6).status,
            DetectStatus::kInvalidInput);
  Simulator sim(make_config(11), {64, 64});
  const auto observed = sim.run_slots(1000);
  EXPECT_EQ(try_detect_misbehavior(observed, 0, 6).status,
            DetectStatus::kInvalidInput);
  EXPECT_EQ(try_detect_misbehavior(observed, 64, -1).status,
            DetectStatus::kInvalidInput);
  DetectorConfig bad;
  bad.significance = 0.0;
  EXPECT_EQ(try_detect_misbehavior(observed, 64, 6, bad).status,
            DetectStatus::kInvalidInput);
  bad = DetectorConfig{};
  bad.tolerance = -0.1;
  EXPECT_EQ(try_detect_misbehavior(observed, 64, 6, bad).status,
            DetectStatus::kInvalidInput);
  // A significance too small to represent 1 − α in double would make the
  // quantile (and every downstream threshold) meaningless — invalid, and
  // the throwing path agrees.
  bad = DetectorConfig{};
  bad.significance = 1e-300;
  EXPECT_EQ(try_detect_misbehavior(observed, 64, 6, bad).status,
            DetectStatus::kInvalidInput);
  EXPECT_THROW(detect_misbehavior(observed, 64, 6, bad),
               std::invalid_argument);
  EXPECT_STREQ(to_string(DetectStatus::kOk), "ok");
  EXPECT_STREQ(to_string(DetectStatus::kInvalidInput), "invalid-input");
}

TEST(TryDetectTest, HugeToleranceIsValidAndFlagsNobody) {
  // tolerance pushing the tolerated τ past 1 used to send the variance
  // through sqrt(negative) → NaN z-scores. It must clamp instead: valid
  // input, finite z, nobody flagged (no observable rate beats certainty).
  std::vector<int> profile(4, 64);
  profile[0] = 8;  // even a blatant cheater stays under a tolerated τ of 1
  Simulator sim(make_config(12), profile);
  DetectorConfig config;
  config.tolerance = 1e3;
  const auto result = try_detect_misbehavior(sim.run_slots(50000), 64, 6,
                                             config);
  ASSERT_TRUE(result.ok());
  for (const auto& v : result.verdicts) {
    EXPECT_TRUE(std::isfinite(v.z_score));
    EXPECT_FALSE(v.flagged);
  }
}

TEST(DetectionSlotsTest, SeverityShortensDetection) {
  const auto s_severe = expected_detection_slots(64, 8, 5, 6);
  const auto s_mild = expected_detection_slots(64, 48, 5, 6);
  ASSERT_GT(s_severe, 0u);
  ASSERT_GT(s_mild, 0u);
  EXPECT_LT(s_severe, s_mild);
}

TEST(DetectionSlotsTest, WithinToleranceIsUndetectable) {
  // Every w_cheat >= w_agreed is a zero-signal case, as is a cheat whose
  // τ excess stays inside the tolerance band.
  EXPECT_EQ(expected_detection_slots(64, 64, 5, 6), 0u);
  EXPECT_EQ(expected_detection_slots(64, 65, 5, 6), 0u);
  EXPECT_EQ(expected_detection_slots(64, 63, 5, 6), 0u);  // ~1.5% excess
  // Cheating *upward* is never flagged either (one-sided test).
  EXPECT_EQ(expected_detection_slots(64, 256, 5, 6), 0u);
}

TEST(DetectionSlotsTest, VanishingExcessHitsTheCapNotUndefinedBehavior) {
  // Tune the tolerance so the cheat's τ exceeds the tolerated rate by a
  // sliver (~1e-10 relative): the sample-size formula blows past uint64
  // and must return the sentinel instead of casting a non-representable
  // double (undefined behavior).
  const double tau_compliant = analytical::homogeneous_tau(64, 5, 6);
  std::vector<int> profile(5, 64);
  profile[0] = 16;
  const double tau_cheat = analytical::solve_network(profile, 6).tau[0];
  ASSERT_GT(tau_cheat, tau_compliant);
  DetectorConfig config;
  config.tolerance = tau_cheat * (1.0 - 1e-10) / tau_compliant - 1.0;
  EXPECT_EQ(expected_detection_slots(64, 16, 5, 6, config),
            kDetectionSlotsCap);
}

TEST(DetectionSlotsTest, BoundaryPowerStaysFiniteAndOrdered) {
  // One ulp from certainty is still a valid power: the quantile is large
  // but finite, and the budget only grows with the demanded power.
  const auto p90 = expected_detection_slots(64, 16, 5, 6, {}, 0.9);
  const auto extreme = expected_detection_slots(
      64, 16, 5, 6, {}, std::nextafter(1.0, 0.0));
  EXPECT_GT(extreme, p90);
  EXPECT_LT(extreme, kDetectionSlotsCap);
}

TEST(DetectionSlotsTest, PowerRaisesTheBudget) {
  const auto p50 = expected_detection_slots(64, 16, 5, 6, {}, 0.5);
  const auto p90 = expected_detection_slots(64, 16, 5, 6, {}, 0.9);
  const auto p99 = expected_detection_slots(64, 16, 5, 6, {}, 0.99);
  EXPECT_LT(p50, p90);
  EXPECT_LT(p90, p99);
  EXPECT_THROW(expected_detection_slots(64, 16, 5, 6, {}, 0.0),
               std::invalid_argument);
}

TEST(DetectionSlotsTest, PredictionMatchesSimulatedDetection) {
  // At ~3x the 95%-power budget a 4x cheater should be flagged nearly
  // always (the chain's attempt process is slightly overdispersed vs the
  // Bernoulli approximation, hence the margin); far below the budget,
  // rarely.
  const auto predicted = expected_detection_slots(64, 16, 5, 6, {}, 0.95);
  ASSERT_GT(predicted, 0u);
  std::vector<int> profile(5, 64);
  profile[0] = 16;

  int flagged_long = 0;
  int flagged_short = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Simulator sim_long(make_config(300 + seed), profile);
    if (detect_misbehavior(sim_long.run_slots(3 * predicted), 64, 6)[0]
            .flagged) {
      ++flagged_long;
    }
    Simulator sim_short(make_config(400 + seed), profile);
    if (detect_misbehavior(sim_short.run_slots(std::max<std::uint64_t>(
                               predicted / 16, 20)),
                           64, 6)[0]
            .flagged) {
      ++flagged_short;
    }
  }
  EXPECT_GE(flagged_long, 7);
  EXPECT_LE(flagged_short, 4);
}

}  // namespace
}  // namespace smac::sim
