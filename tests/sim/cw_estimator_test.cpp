#include "sim/cw_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analytical/backoff_chain.hpp"

namespace smac::sim {
namespace {

SimConfig make_config(std::uint64_t seed = 1) {
  SimConfig config;
  config.seed = seed;
  return config;
}

TEST(InvertWindowTest, RoundTripsTheBackoffRelation) {
  // τ(W, p) → invert → W, across windows and collision regimes.
  for (int w : {4, 16, 64, 256, 1024}) {
    for (double p : {0.0, 0.1, 0.3, 0.6}) {
      const double tau = analytical::transmission_probability(w, p, 6);
      const double w_hat = invert_window(tau, p, 6, 1e9);
      EXPECT_NEAR(w_hat, w, 1e-6) << "w=" << w << " p=" << p;
    }
  }
}

TEST(InvertWindowTest, HandlesDegenerateInputs) {
  EXPECT_DOUBLE_EQ(invert_window(0.0, 0.2, 6, 4096.0), 4096.0);  // no info
  EXPECT_DOUBLE_EQ(invert_window(1.0, 0.0, 6, 4096.0), 1.0);     // max rate
  EXPECT_GE(invert_window(0.9999, 0.9, 6, 4096.0), 1.0);
}

TEST(EstimateWindowsTest, RejectsEmptyObservation) {
  SimResult empty;
  EXPECT_THROW(estimate_windows(empty, 6), std::invalid_argument);
}

TEST(EstimateWindowsTest, RecoversHomogeneousWindows) {
  const int n = 5;
  const int w = 64;
  Simulator sim(make_config(3), std::vector<int>(n, w));
  const SimResult r = sim.run_slots(400000);
  const auto est = estimate_windows(r, 6);
  for (const auto& e : est) {
    EXPECT_NEAR(e.w_hat, w, 0.10 * w);
    EXPECT_GT(e.attempts, 100u);
  }
}

TEST(EstimateWindowsTest, RecoversHeterogeneousWindows) {
  const std::vector<int> profile{16, 64, 256};
  Simulator sim(make_config(4), profile);
  const SimResult r = sim.run_slots(600000);
  const auto est = estimate_windows(r, 6);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    EXPECT_NEAR(est[i].w_hat, profile[i], 0.15 * profile[i]) << "node " << i;
  }
  // Ordering is preserved even before the estimates tighten.
  EXPECT_LT(est[0].w_hat, est[1].w_hat);
  EXPECT_LT(est[1].w_hat, est[2].w_hat);
}

TEST(EstimateWindowsTest, ErrorShrinksWithObservationLength) {
  const int w = 128;
  auto estimate_error = [&](std::uint64_t slots, std::uint64_t seed) {
    Simulator sim(make_config(seed), std::vector<int>(4, w));
    const auto est = estimate_windows(sim.run_slots(slots), 6);
    double err = 0.0;
    for (const auto& e : est) err += std::abs(e.w_hat - w) / w;
    return err / 4.0;
  };
  // Average over a few seeds to damp luck.
  double short_err = 0.0;
  double long_err = 0.0;
  for (std::uint64_t s = 0; s < 4; ++s) {
    short_err += estimate_error(8000, 10 + s);
    long_err += estimate_error(512000, 20 + s);
  }
  EXPECT_LT(long_err, short_err);
}

TEST(EstimatingStrategiesTest, ValidateConstruction) {
  auto feed = std::make_shared<std::vector<double>>();
  EXPECT_THROW(EstimatingTitForTat(0, feed), std::invalid_argument);
  EXPECT_THROW(EstimatingTitForTat(16, nullptr), std::invalid_argument);
  EXPECT_THROW(EstimatingGtft(16, 0.0, 2, feed), std::invalid_argument);
  EXPECT_THROW(EstimatingGtft(16, 0.9, 0, feed), std::invalid_argument);
  EXPECT_THROW(EstimatingGtft(16, 0.9, 2, nullptr), std::invalid_argument);
}

TEST(EstimatingRuntimeTest, ValidatesConstruction) {
  EXPECT_THROW(EstimatingRuntime(make_config(), 0,
                                 [](std::size_t, auto feed, auto) {
                                   return std::make_unique<
                                       EstimatingTitForTat>(16, feed);
                                 },
                                 1e5),
               std::invalid_argument);
  EXPECT_THROW(EstimatingRuntime(
                   make_config(), 3,
                   [](std::size_t, auto, auto) {
                     return std::unique_ptr<game::Strategy>{};
                   },
                   1e5),
               std::invalid_argument);
}

TEST(EstimatingRuntimeTest, CooperativePopulationStaysNearConfiguredWindow) {
  // With long stages the estimates are tight, so estimating-TFT holds the
  // line near the common window instead of spiraling down.
  const int w = 64;
  EstimatingRuntime runtime(
      make_config(5), 5,
      [&](std::size_t, auto feed, auto) {
        return std::make_unique<EstimatingTitForTat>(w, feed);
      },
      8e6);
  const auto result = runtime.play(6);
  const auto& final_cw = result.history.back().cw;
  for (int cw : final_cw) {
    EXPECT_NEAR(cw, w, 0.25 * w);
  }
}

TEST(EstimatingRuntimeTest, PlainTftDriftsMoreThanGtftUnderNoise) {
  // Short stages = noisy estimates. Estimating-TFT chases every downward
  // fluctuation (its window ratchets down: min over noisy estimates);
  // estimating-GTFT's tolerance band absorbs the noise. Compare the final
  // window deficits.
  const int w = 64;
  auto final_min_cw = [&](bool gtft) {
    EstimatingRuntime runtime(
        make_config(6), 5,
        [&](std::size_t, auto feed, auto) -> std::unique_ptr<game::Strategy> {
          if (gtft) {
            return std::make_unique<EstimatingGtft>(w, 0.75, 3, feed);
          }
          return std::make_unique<EstimatingTitForTat>(w, feed);
        },
        4e5);  // short stage → noisy estimates
    const auto result = runtime.play(12);
    int min_cw = w;
    for (int cw : result.history.back().cw) min_cw = std::min(min_cw, cw);
    return min_cw;
  };
  const int tft_floor = final_min_cw(false);
  const int gtft_floor = final_min_cw(true);
  EXPECT_LE(tft_floor, gtft_floor);
  EXPECT_GE(gtft_floor, static_cast<int>(0.6 * w));
}

TEST(EstimatingRuntimeTest, EstimatesAreRecordedPerStage) {
  EstimatingRuntime runtime(
      make_config(7), 3,
      [&](std::size_t, auto feed, auto) {
        return std::make_unique<EstimatingTitForTat>(32, feed);
      },
      1e6);
  const auto result = runtime.play(3);
  ASSERT_EQ(result.estimates_per_stage.size(), 3u);
  for (const auto& snapshot : result.estimates_per_stage) {
    ASSERT_EQ(snapshot.size(), 3u);
    for (double w_hat : snapshot) EXPECT_GE(w_hat, 1.0);
  }
}

}  // namespace
}  // namespace smac::sim
