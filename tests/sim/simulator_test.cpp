#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "analytical/fixed_point_solver.hpp"
#include "analytical/throughput.hpp"
#include "analytical/utility.hpp"

namespace smac::sim {
namespace {

SimConfig make_config(phy::AccessMode mode = phy::AccessMode::kBasic,
                      std::uint64_t seed = 1) {
  SimConfig config;
  config.mode = mode;
  config.seed = seed;
  return config;
}

TEST(SimulatorTest, ValidatesConstruction) {
  EXPECT_THROW(Simulator(make_config(), {}), std::invalid_argument);
}

TEST(SimulatorTest, RejectsBadRuns) {
  Simulator sim(make_config(), {32, 32});
  EXPECT_THROW(sim.run_for(0.0), std::invalid_argument);
  EXPECT_THROW(sim.run_slots(0), std::invalid_argument);
}

TEST(SimulatorTest, SlotAccountingIsConsistent) {
  Simulator sim(make_config(), {32, 32, 32});
  const SimResult r = sim.run_slots(20000);
  EXPECT_EQ(r.slots, r.idle_slots + r.success_slots + r.collision_slots);
  const phy::SlotTimes t =
      phy::Parameters::paper().slot_times(phy::AccessMode::kBasic);
  const double reconstructed = r.idle_slots * t.sigma_us +
                               r.success_slots * t.ts_us +
                               r.collision_slots * t.tc_us;
  EXPECT_NEAR(r.elapsed_us, reconstructed, 1e-6);
}

TEST(SimulatorTest, PerNodeCountersSumToChannelEvents) {
  Simulator sim(make_config(), {16, 16, 16, 16});
  const SimResult r = sim.run_slots(20000);
  std::uint64_t successes = 0;
  for (const auto& node : r.node) successes += node.successes;
  EXPECT_EQ(successes, r.success_slots);
}

TEST(SimulatorTest, SingleNodeNeverCollides) {
  Simulator sim(make_config(), {16});
  const SimResult r = sim.run_slots(5000);
  EXPECT_EQ(r.collision_slots, 0u);
  EXPECT_EQ(r.node[0].collisions, 0u);
  EXPECT_NEAR(r.measured_p[0], 0.0, 1e-12);
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  Simulator a(make_config(phy::AccessMode::kBasic, 99), {32, 64});
  Simulator b(make_config(phy::AccessMode::kBasic, 99), {32, 64});
  const SimResult ra = a.run_slots(5000);
  const SimResult rb = b.run_slots(5000);
  EXPECT_EQ(ra.success_slots, rb.success_slots);
  EXPECT_EQ(ra.node[0].attempts, rb.node[0].attempts);
  EXPECT_DOUBLE_EQ(ra.elapsed_us, rb.elapsed_us);
}

TEST(SimulatorTest, MeasuredTauMatchesModelHomogeneous) {
  // Cross-validation: empirical τ and p within a few percent of the
  // extended Bianchi fixed point.
  const int n = 10;
  const int w = 64;
  Simulator sim(make_config(phy::AccessMode::kBasic, 5),
                std::vector<int>(n, w));
  const SimResult r = sim.run_slots(400000);
  const auto model = analytical::solve_network_homogeneous(w, n, 6);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(r.measured_tau[i], model.tau[0], 0.05 * model.tau[0]);
    EXPECT_NEAR(r.measured_p[i], model.p[0], 0.05);
  }
}

TEST(SimulatorTest, MeasuredTauMatchesModelHeterogeneous) {
  const std::vector<int> profile{16, 64, 256};
  Simulator sim(make_config(phy::AccessMode::kBasic, 6), profile);
  const SimResult r = sim.run_slots(400000);
  const auto model = analytical::solve_network(profile, 6);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    EXPECT_NEAR(r.measured_tau[i], model.tau[i], 0.06 * model.tau[i] + 1e-4);
  }
  // Lemma 1 empirically: smaller window transmits more, earns more.
  EXPECT_GT(r.measured_tau[0], r.measured_tau[1]);
  EXPECT_GT(r.measured_tau[1], r.measured_tau[2]);
  EXPECT_GT(r.payoff_rate[0], r.payoff_rate[2]);
}

TEST(SimulatorTest, ThroughputMatchesModel) {
  const int n = 10;
  const int w = 128;
  Simulator sim(make_config(phy::AccessMode::kBasic, 7),
                std::vector<int>(n, w));
  const SimResult r = sim.run_slots(300000);
  const auto metrics = analytical::homogeneous_channel_metrics(
      w, n, phy::Parameters::paper(), phy::AccessMode::kBasic);
  EXPECT_NEAR(r.throughput, metrics.throughput, 0.03);
}

TEST(SimulatorTest, PayoffRateMatchesModelUtility) {
  const int n = 5;
  const int w = 76;
  Simulator sim(make_config(phy::AccessMode::kBasic, 8),
                std::vector<int>(n, w));
  const SimResult r = sim.run_slots(400000);
  const double model_u = analytical::homogeneous_utility_rate(
      w, n, phy::Parameters::paper(), phy::AccessMode::kBasic);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(r.payoff_rate[i], model_u, 0.08 * model_u);
  }
}

TEST(SimulatorTest, RtsCtsCollisionsAreCheap) {
  const auto profile = std::vector<int>(20, 16);
  Simulator basic(make_config(phy::AccessMode::kBasic, 9), profile);
  Simulator rts(make_config(phy::AccessMode::kRtsCts, 9), profile);
  const SimResult rb = basic.run_slots(50000);
  const SimResult rr = rts.run_slots(50000);
  // Same seed → same slot outcomes, but elapsed channel time differs
  // because collisions cost T_c' << T_c.
  EXPECT_GT(rb.collision_slots, 0u);
  EXPECT_LT(rr.elapsed_us, rb.elapsed_us);
  EXPECT_GT(rr.throughput, rb.throughput);
}

TEST(SimulatorTest, RunForReachesRequestedDuration) {
  Simulator sim(make_config(), {32, 32});
  const double want_us = 1e6;
  const SimResult r = sim.run_for(want_us);
  EXPECT_GE(r.elapsed_us, want_us);
  // Overshoot bounded by one busy slot.
  EXPECT_LT(r.elapsed_us, want_us + 10000.0);
}

TEST(SimulatorTest, SetCwTakesEffect) {
  Simulator sim(make_config(phy::AccessMode::kBasic, 10), {1024, 1024});
  const SimResult before = sim.run_slots(50000);
  sim.set_all_cw(8);
  const SimResult after = sim.run_slots(50000);
  EXPECT_GT(after.measured_tau[0], 5.0 * before.measured_tau[0]);
  EXPECT_EQ(sim.cw(0), 8);
}

TEST(SimulatorTest, SetProfileValidatesSize) {
  Simulator sim(make_config(), {32, 32});
  EXPECT_THROW(sim.set_profile({16}), std::invalid_argument);
  sim.set_profile({16, 64});
  EXPECT_EQ(sim.cw(0), 16);
  EXPECT_EQ(sim.cw(1), 64);
}

TEST(SimulatorTest, AggressiveNodeDominatesThroughput) {
  Simulator sim(make_config(phy::AccessMode::kBasic, 11), {8, 256});
  const SimResult r = sim.run_slots(100000);
  EXPECT_GT(r.node[0].successes, 3 * r.node[1].successes);
}

}  // namespace
}  // namespace smac::sim
