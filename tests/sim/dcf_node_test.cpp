#include "sim/dcf_node.hpp"

#include <gtest/gtest.h>

namespace smac::sim {
namespace {

util::Rng rng(std::uint64_t seed = 1) { return util::Rng(seed); }

TEST(DcfNodeTest, ValidatesConstruction) {
  EXPECT_THROW(DcfNode(0, 6, rng()), std::invalid_argument);
  EXPECT_THROW(DcfNode(8, -1, rng()), std::invalid_argument);
}

TEST(DcfNodeTest, InitialStateIsStageZero) {
  const DcfNode node(16, 6, rng());
  EXPECT_EQ(node.stage(), 0);
  EXPECT_GE(node.counter(), 0);
  EXPECT_LT(node.counter(), 16);
}

TEST(DcfNodeTest, ObserveSlotDecrementsToZeroAndStops) {
  DcfNode node(8, 6, rng(3));
  const auto start = node.counter();
  for (std::int64_t i = 0; i < start; ++i) {
    EXPECT_FALSE(node.ready());
    node.observe_slot();
  }
  EXPECT_TRUE(node.ready());
  node.observe_slot();  // must not underflow
  EXPECT_TRUE(node.ready());
  EXPECT_EQ(node.counter(), 0);
}

TEST(DcfNodeTest, CollisionDoublesWindowUpToCap) {
  DcfNode node(8, 2, rng(5));
  // Stage advances 0→1→2 then saturates at 2.
  node.on_collision();
  EXPECT_EQ(node.stage(), 1);
  EXPECT_LT(node.counter(), 16);
  node.on_collision();
  EXPECT_EQ(node.stage(), 2);
  EXPECT_LT(node.counter(), 32);
  node.on_collision();
  EXPECT_EQ(node.stage(), 2);  // capped at m
}

TEST(DcfNodeTest, SuccessResetsToStageZero) {
  DcfNode node(8, 4, rng(6));
  node.on_collision();
  node.on_collision();
  ASSERT_EQ(node.stage(), 2);
  node.on_success();
  EXPECT_EQ(node.stage(), 0);
  EXPECT_LT(node.counter(), 8);
}

TEST(DcfNodeTest, CountersTrackOutcomes) {
  DcfNode node(8, 4, rng(7));
  node.on_success();
  node.on_collision();
  node.on_collision();
  node.on_success();
  const NodeCounters& c = node.counters();
  EXPECT_EQ(c.attempts, 4u);
  EXPECT_EQ(c.successes, 2u);
  EXPECT_EQ(c.collisions, 2u);
}

TEST(DcfNodeTest, ResetCountersPreservesBackoffState) {
  DcfNode node(8, 4, rng(8));
  node.on_collision();
  const int stage = node.stage();
  const auto counter = node.counter();
  node.reset_counters();
  EXPECT_EQ(node.counters().attempts, 0u);
  EXPECT_EQ(node.stage(), stage);
  EXPECT_EQ(node.counter(), counter);
}

TEST(DcfNodeTest, SetCwRestartsBackoff) {
  DcfNode node(8, 4, rng(9));
  node.on_collision();
  node.on_collision();
  node.set_cw(64);
  EXPECT_EQ(node.cw(), 64);
  EXPECT_EQ(node.stage(), 0);
  EXPECT_LT(node.counter(), 64);
  EXPECT_THROW(node.set_cw(0), std::invalid_argument);
}

TEST(DcfNodeTest, WindowOneAlwaysReady) {
  // W = 1 at stage 0: the only possible draw is 0.
  DcfNode node(1, 0, rng(10));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(node.ready());
    node.on_success();
  }
}

TEST(DcfNodeTest, BackoffDrawsAreUniform) {
  // Empirical check of the uniform draw over [0, W).
  DcfNode node(10, 0, rng(11));
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    node.on_success();  // redraw at stage 0
    ++counts.at(static_cast<std::size_t>(node.counter()));
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 / 10);
  }
}

TEST(DcfNodeTest, DeterministicGivenSeed) {
  DcfNode a(32, 6, rng(42));
  DcfNode b(32, 6, rng(42));
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.counter(), b.counter());
    a.on_collision();
    b.on_collision();
  }
}

}  // namespace
}  // namespace smac::sim
