#include "sim/search_protocol.hpp"

#include <gtest/gtest.h>

#include "analytical/utility.hpp"
#include "game/equilibrium.hpp"
#include "game/stage_game.hpp"

namespace smac::sim {
namespace {

SimConfig rts_config(std::uint64_t seed) {
  SimConfig config;
  config.mode = phy::AccessMode::kRtsCts;
  config.seed = seed;
  return config;
}

// RTS/CTS keeps W_c* small (≈ a dozen for n = 5) so searches with step 1
// finish quickly in tests.
int efficient_cw_rts(int n) {
  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kRtsCts);
  return game::EquilibriumFinder(game, n).efficient_cw();
}

// Model utility rate at a common window — the yardstick for search
// quality. The payoff landscape around W_c* is a wide plateau (the paper's
// own "robust and tolerant" observation), so asserting near-optimal
// *payoff* is the meaningful check; pinning the exact window is not.
double model_payoff(int w, int n) {
  return analytical::homogeneous_utility_rate(
      w, n, phy::Parameters::paper(), phy::AccessMode::kRtsCts);
}

SearchConfig fast_search(int w_start) {
  SearchConfig config;
  config.w_start = w_start;
  config.settle_us = 5e4;
  config.measure_us = 4e6;
  config.patience = 3;
  return config;
}

TEST(SearchProtocolTest, ValidatesArguments) {
  Simulator sim(rts_config(1), std::vector<int>(5, 16));
  SearchConfig config;
  config.w_start = 0;
  EXPECT_THROW(run_search(sim, 0, config), std::invalid_argument);
  config = SearchConfig{};
  config.step = 0;
  EXPECT_THROW(run_search(sim, 0, config), std::invalid_argument);
  config = SearchConfig{};
  config.patience = 0;
  EXPECT_THROW(run_search(sim, 0, config), std::invalid_argument);
  config = SearchConfig{};
  config.measure_us = 0.0;
  EXPECT_THROW(run_search(sim, 0, config), std::invalid_argument);
  config = SearchConfig{};
  EXPECT_THROW(run_search(sim, 99, config), std::invalid_argument);
}

TEST(SearchProtocolTest, RightSearchFindsNearOptimalPayoff) {
  const int n = 5;
  const int w_star = efficient_cw_rts(n);
  Simulator sim(rts_config(2), std::vector<int>(n, 4));
  const SearchResult r = run_search(sim, 0, fast_search(4));
  EXPECT_FALSE(r.used_left_search);
  EXPECT_FALSE(r.hit_step_limit);
  EXPECT_GT(r.w_found, 4);  // it moved off the congested start
  EXPECT_GE(model_payoff(r.w_found, n), 0.93 * model_payoff(w_star, n));
  // All nodes end on the broadcast window.
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    EXPECT_EQ(sim.cw(i), r.w_found);
  }
}

TEST(SearchProtocolTest, LeftSearchFindsNearOptimalFromAbove) {
  // The 802.11 payoff curve is so flat (even W = 500 keeps ~85% of the
  // n = 5 basic-mode peak) that detecting the downhill direction needs a
  // low-noise regime: long measurement windows, a coarse step so the true
  // per-move gain (~2.5%) exceeds the improvement threshold, and an
  // epsilon that filters residual noise. The first right-probe then fails
  // and the protocol walks left onto the plateau.
  const int n = 5;
  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kBasic);
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();
  auto basic_payoff = [&](int w) {
    return analytical::homogeneous_utility_rate(
        w, n, phy::Parameters::paper(), phy::AccessMode::kBasic);
  };
  SimConfig config;
  config.mode = phy::AccessMode::kBasic;
  config.seed = 3;
  Simulator sim(config, std::vector<int>(n, 500));
  SearchConfig search;
  search.w_start = 500;
  search.step = 64;
  search.patience = 2;
  search.settle_us = 1e6;
  search.measure_us = 4e8;
  search.improvement_epsilon = 0.015;
  const SearchResult r = run_search(sim, 0, search);
  EXPECT_TRUE(r.used_left_search);
  EXPECT_LT(r.w_found, 400);
  EXPECT_GE(basic_payoff(r.w_found), 0.93 * basic_payoff(w_star));
}

TEST(SearchProtocolTest, StartAtOptimumStaysNear) {
  const int n = 5;
  const int w_star = efficient_cw_rts(n);
  Simulator sim(rts_config(4), std::vector<int>(n, w_star));
  const SearchResult r = run_search(sim, 0, fast_search(w_star));
  EXPECT_GE(model_payoff(r.w_found, n), 0.95 * model_payoff(w_star, n));
}

TEST(SearchProtocolTest, TraceIsRecorded) {
  Simulator sim(rts_config(5), std::vector<int>(5, 8));
  const SearchResult r = run_search(sim, 0, fast_search(8));
  EXPECT_EQ(static_cast<int>(r.trace.size()), r.steps);
  EXPECT_GE(r.steps, 2);
  EXPECT_GT(r.elapsed_us, 0.0);
  EXPECT_EQ(r.trace.front().w, 8);
}

TEST(SearchProtocolTest, StepLimitIsHonored) {
  Simulator sim(rts_config(6), std::vector<int>(5, 4));
  SearchConfig config = fast_search(4);
  config.max_steps = 3;
  const SearchResult r = run_search(sim, 0, config);
  EXPECT_TRUE(r.hit_step_limit);
  EXPECT_LE(r.steps, 3);
}

TEST(SearchProtocolTest, LargerStepStillLandsOnPlateau) {
  const int n = 5;
  const int w_star = efficient_cw_rts(n);
  Simulator sim(rts_config(7), std::vector<int>(n, 4));
  SearchConfig config = fast_search(4);
  config.step = 4;
  const SearchResult r = run_search(sim, 0, config);
  EXPECT_GE(model_payoff(r.w_found, n), 0.90 * model_payoff(w_star, n));
}

TEST(SearchProtocolTest, AnyLeaderFindsThePlateau) {
  const int n = 5;
  const int w_star = efficient_cw_rts(n);
  for (std::size_t leader : {0u, 2u, 4u}) {
    Simulator sim(rts_config(8 + leader), std::vector<int>(n, 6));
    const SearchResult r = run_search(sim, leader, fast_search(6));
    EXPECT_GE(model_payoff(r.w_found, n), 0.92 * model_payoff(w_star, n))
        << "leader=" << leader;
  }
}

TEST(SearchProtocolTest, LongerMeasurementTightensTheResult) {
  // With a long measurement window the search should land very close to
  // the plateau top.
  const int n = 5;
  const int w_star = efficient_cw_rts(n);
  Simulator sim(rts_config(12), std::vector<int>(n, 6));
  SearchConfig config = fast_search(6);
  config.measure_us = 1.5e7;
  const SearchResult r = run_search(sim, 0, config);
  EXPECT_GE(model_payoff(r.w_found, n), 0.96 * model_payoff(w_star, n));
}

}  // namespace
}  // namespace smac::sim
