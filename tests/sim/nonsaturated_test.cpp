// Non-saturated traffic: Poisson arrivals with per-node queues (an
// extension beyond the paper's saturation assumption; the saturated
// default must remain bit-identical).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace smac::sim {
namespace {

SimConfig poisson_config(double rate_pps, std::uint64_t seed = 1) {
  SimConfig config;
  config.arrival_rate_pps = rate_pps;
  config.seed = seed;
  return config;
}

TEST(PoissonRngTest, MeanAndVarianceMatch) {
  util::Rng rng(5);
  for (double mean : {0.3, 3.0, 12.0, 80.0}) {
    double sum = 0.0;
    double sum_sq = 0.0;
    constexpr int kDraws = 60000;
    for (int i = 0; i < kDraws; ++i) {
      const auto v = static_cast<double>(rng.poisson(mean));
      sum += v;
      sum_sq += v * v;
    }
    const double m = sum / kDraws;
    const double var = sum_sq / kDraws - m * m;
    EXPECT_NEAR(m, mean, 0.05 * mean + 0.02) << "mean=" << mean;
    EXPECT_NEAR(var, mean, 0.10 * mean + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(NonSaturatedTest, RejectsNegativeRate) {
  EXPECT_THROW(Simulator(poisson_config(-1.0), {32}), std::invalid_argument);
}

TEST(NonSaturatedTest, SaturatedDefaultUnchanged) {
  // arrival_rate_pps = 0 must reproduce the original saturated behaviour
  // exactly (same seeds, same counters).
  SimConfig saturated;
  saturated.seed = 9;
  Simulator a(saturated, {32, 64});
  Simulator b(saturated, {32, 64});
  const auto ra = a.run_slots(20000);
  const auto rb = b.run_slots(20000);
  EXPECT_EQ(ra.node[0].attempts, rb.node[0].attempts);
  EXPECT_TRUE(a.saturated());
  for (double backlog : ra.mean_backlog) EXPECT_DOUBLE_EQ(backlog, 0.0);
}

TEST(NonSaturatedTest, LightLoadDeliversOfferedLoad) {
  // 2 nodes at 3 packets/s each; per packet 8184 µs of payload → offered
  // normalized load ≈ 2·3·8184e-6 ≈ 0.049. Throughput must match it, and
  // collisions must be rare.
  Simulator sim(poisson_config(3.0, 2), {32, 32});
  const auto r = sim.run_for(100.0 * 1e6);  // 100 s
  EXPECT_NEAR(r.throughput, 2 * 3.0 * 8184e-6, 0.006);
  EXPECT_LT(static_cast<double>(r.collision_slots) /
                static_cast<double>(r.success_slots + 1),
            0.02);
  // Queues stay short.
  for (double backlog : r.mean_backlog) EXPECT_LT(backlog, 0.5);
}

TEST(NonSaturatedTest, DeliveredMatchesArrivalsAtLightLoad) {
  Simulator sim(poisson_config(5.0, 3), {32, 32, 32});
  const auto r = sim.run_for(60.0 * 1e6);
  // Each node delivers ≈ rate × time.
  for (const auto& node : r.node) {
    EXPECT_NEAR(static_cast<double>(node.successes), 5.0 * 60.0,
                3.0 * std::sqrt(5.0 * 60.0) + 5.0);
  }
}

TEST(NonSaturatedTest, OverloadSaturatesAndQueuesGrow) {
  // 10 nodes each offering ~12 pkt/s ≈ offered load 0.98 of the channel:
  // above the DCF saturation throughput → backlogs build up and the
  // throughput approaches the saturated value.
  SimConfig saturated;
  saturated.seed = 4;
  Simulator sat(saturated, std::vector<int>(10, 32));
  const double s_sat = sat.run_slots(200000).throughput;

  Simulator over(poisson_config(12.0, 4), std::vector<int>(10, 32));
  const auto r = over.run_for(120.0 * 1e6);
  EXPECT_NEAR(r.throughput, s_sat, 0.05);
  double total_backlog = 0.0;
  for (double backlog : r.mean_backlog) total_backlog += backlog;
  EXPECT_GT(total_backlog, 10.0);  // queues clearly diverging
}

TEST(NonSaturatedTest, IdleNodesDoNotContend) {
  // One saturated-ish sender vs one nearly idle: the idle node's attempts
  // are bounded by its arrivals.
  SimConfig config = poisson_config(0.5, 5);
  Simulator sim(config, {32, 32});
  const auto r = sim.run_for(50.0 * 1e6);
  EXPECT_LT(r.node[0].attempts, 80u);  // ~25 arrivals in 50 s, few retries
  EXPECT_LT(r.measured_tau[0], 0.01);
}

TEST(NonSaturatedTest, ThroughputScalesWithRateBelowSaturation) {
  double prev = 0.0;
  for (double rate : {2.0, 4.0, 8.0}) {
    Simulator sim(poisson_config(rate, 6), {64, 64});
    const double s = sim.run_for(40.0 * 1e6).throughput;
    EXPECT_GT(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace smac::sim
