#include "sim/adaptive_runtime.hpp"

#include <gtest/gtest.h>

#include "game/repeated_game.hpp"

namespace smac::sim {
namespace {

SimConfig make_config(std::uint64_t seed = 1) {
  SimConfig config;
  config.seed = seed;
  return config;
}

// Short stages keep the tests fast; payoff noise grows but window dynamics
// are exact (CW observation is noiseless, as in the paper).
constexpr double kStageUs = 3e5;

TEST(AdaptiveRuntimeTest, ValidatesConstruction) {
  EXPECT_THROW(AdaptiveRuntime(make_config(), {}, kStageUs),
               std::invalid_argument);
  std::vector<std::unique_ptr<game::Strategy>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(AdaptiveRuntime(make_config(), std::move(with_null), kStageUs),
               std::invalid_argument);
  EXPECT_THROW(
      AdaptiveRuntime(make_config(), game::make_tft_population(2, 64), -1.0),
      std::invalid_argument);
}

TEST(AdaptiveRuntimeTest, RejectsZeroStages) {
  AdaptiveRuntime rt(make_config(), game::make_tft_population(2, 64),
                     kStageUs);
  EXPECT_THROW(rt.play(0), std::invalid_argument);
}

TEST(AdaptiveRuntimeTest, TftConvergesToMinimumWindow) {
  std::vector<std::unique_ptr<game::Strategy>> pop;
  pop.push_back(std::make_unique<game::TitForTat>(100));
  pop.push_back(std::make_unique<game::TitForTat>(40));
  pop.push_back(std::make_unique<game::TitForTat>(250));
  AdaptiveRuntime rt(make_config(2), std::move(pop), kStageUs);
  const AdaptiveResult result = rt.play(4);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 40);
  EXPECT_LE(result.stable_from, 1);
}

TEST(AdaptiveRuntimeTest, MeasuredPayoffsArePositiveAtEquilibrium) {
  AdaptiveRuntime rt(make_config(3), game::make_tft_population(5, 76),
                     kStageUs);
  const AdaptiveResult result = rt.play(3);
  for (double u : result.total_utility) EXPECT_GT(u, 0.0);
}

TEST(AdaptiveRuntimeTest, ConstantDefectorDragsTftDown) {
  std::vector<std::unique_ptr<game::Strategy>> pop;
  pop.push_back(std::make_unique<game::ConstantStrategy>(20));
  pop.push_back(std::make_unique<game::TitForTat>(76));
  AdaptiveRuntime rt(make_config(4), std::move(pop), kStageUs);
  const AdaptiveResult result = rt.play(3);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 20);
}

TEST(AdaptiveRuntimeTest, DeviatorEarnsMoreDuringLagStage) {
  // Stage 0: deviator at 20 vs TFT at 76 — Lemma 4 measured on the sim.
  std::vector<std::unique_ptr<game::Strategy>> pop;
  pop.push_back(std::make_unique<game::ShortSightedStrategy>(20));
  for (int i = 0; i < 4; ++i) {
    pop.push_back(std::make_unique<game::TitForTat>(76));
  }
  AdaptiveRuntime rt(make_config(5), std::move(pop), 2e6);
  const AdaptiveResult result = rt.play(1);
  const auto& u = result.history[0].utility;
  for (std::size_t j = 1; j < u.size(); ++j) {
    EXPECT_GT(u[0], u[j]);
  }
}

TEST(AdaptiveRuntimeTest, GtftForgivesMeasurementNoiseButNotDefection) {
  std::vector<std::unique_ptr<game::Strategy>> pop;
  pop.push_back(std::make_unique<game::GenerousTitForTat>(100, 0.8, 2));
  pop.push_back(std::make_unique<game::GenerousTitForTat>(100, 0.8, 2));
  pop.push_back(std::make_unique<game::ConstantStrategy>(30));
  AdaptiveRuntime rt(make_config(6), std::move(pop), kStageUs);
  const AdaptiveResult result = rt.play(5);
  ASSERT_TRUE(result.converged_cw.has_value());
  EXPECT_EQ(*result.converged_cw, 30);
}

TEST(AdaptiveRuntimeTest, MatchesModelDrivenEngineTrajectories) {
  // The window trajectory (not payoffs) of the sim-driven runtime must be
  // identical to the analytical engine's: decisions depend only on
  // observed windows.
  auto make_pop = [] {
    std::vector<std::unique_ptr<game::Strategy>> pop;
    pop.push_back(std::make_unique<game::MaliciousStrategy>(90, 15, 2));
    pop.push_back(std::make_unique<game::TitForTat>(90));
    pop.push_back(std::make_unique<game::TitForTat>(90));
    return pop;
  };
  AdaptiveRuntime rt(make_config(7), make_pop(), kStageUs);
  const AdaptiveResult sim_result = rt.play(6);

  const game::StageGame stage_game(phy::Parameters::paper(),
                                   phy::AccessMode::kBasic);
  game::RepeatedGameEngine engine(stage_game, make_pop());
  const game::RepeatedGameResult model_result = engine.play(6);

  ASSERT_EQ(sim_result.history.size(), model_result.history.size());
  for (std::size_t k = 0; k < sim_result.history.size(); ++k) {
    EXPECT_EQ(sim_result.history[k].cw, model_result.history[k].cw)
        << "stage " << k;
  }
}

}  // namespace
}  // namespace smac::sim
