// The enforcement pipeline: detector-gated retaliation vs raw estimate-
// driven TFT. Evidence gating must (a) hold a compliant population at its
// window under estimation noise and (b) still punish a real cheater.
#include <gtest/gtest.h>

#include "sim/cw_estimator.hpp"

namespace smac::sim {
namespace {

SimConfig make_config(std::uint64_t seed) {
  SimConfig config;
  config.seed = seed;
  return config;
}

TEST(DetectorGtftTest, ValidatesConstruction) {
  auto est = std::make_shared<std::vector<double>>();
  auto flags = std::make_shared<std::vector<bool>>();
  EXPECT_THROW(DetectorGtft(0, est, flags), std::invalid_argument);
  EXPECT_THROW(DetectorGtft(16, nullptr, flags), std::invalid_argument);
  EXPECT_THROW(DetectorGtft(16, est, nullptr), std::invalid_argument);
}

TEST(DetectorGtftTest, PunishesOnlyFlaggedNodes) {
  auto est = std::make_shared<std::vector<double>>(
      std::vector<double>{30.0, 64.0, 64.0});
  auto flags = std::make_shared<std::vector<bool>>(
      std::vector<bool>{false, false, false});
  DetectorGtft strategy(64, est, flags);
  game::History history;
  game::StageRecord record;
  record.cw = {64, 64, 64};
  record.utility = {0, 0, 0};
  history.push_back(record);
  // Node 0 *looks* aggressive (estimate 30) but is not flagged: no
  // punishment.
  EXPECT_EQ(strategy.decide(history, 1), 64);
  // Once flagged, the strategy matches the flagged node's estimate.
  (*flags)[0] = true;
  EXPECT_EQ(strategy.decide(history, 1), 30);
  // Own flag is ignored (a node does not punish itself).
  (*flags)[0] = false;
  (*flags)[1] = true;
  EXPECT_EQ(strategy.decide(history, 1), 64);
}

TEST(DetectorGtftTest, CompliantPopulationHoldsUnderNoise) {
  // Short, noisy stages — the regime where estimating-TFT collapses
  // (cw_estimator_test) — must leave a detector-gated population intact.
  const int w = 64;
  EstimatingRuntime runtime(
      make_config(23), 5,
      [&](std::size_t, auto estimates, auto flags) {
        return std::make_unique<DetectorGtft>(w, estimates, flags);
      },
      4e5);
  const auto result = runtime.play(12);
  for (int cw : result.history.back().cw) {
    EXPECT_EQ(cw, w);
  }
  // And no flags were ever raised.
  for (const auto& stage_flags : result.flags_per_stage) {
    for (bool flagged : stage_flags) EXPECT_FALSE(flagged);
  }
}

TEST(DetectorGtftTest, RealCheaterIsPunished) {
  // One constant undercutter among detector-GTFT players: once its excess
  // attempt rate is statistically significant, the population retaliates
  // TFT-style.
  const int w = 64;
  const int w_cheat = 16;
  EstimatingRuntime runtime(
      make_config(24), 5,
      [&](std::size_t i, auto estimates,
          auto flags) -> std::unique_ptr<game::Strategy> {
        if (i == 0) return std::make_unique<game::ConstantStrategy>(w_cheat);
        return std::make_unique<DetectorGtft>(w, estimates, flags);
      },
      4e6);  // long enough stages for significance
  const auto result = runtime.play(6);
  // The cheater gets flagged early…
  bool ever_flagged = false;
  for (const auto& stage_flags : result.flags_per_stage) {
    ever_flagged |= stage_flags[0];
  }
  EXPECT_TRUE(ever_flagged);
  // …and the honest players converge near its window.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_LE(result.history.back().cw[i], w_cheat + w_cheat / 2)
        << "node " << i;
  }
}

TEST(DetectorGtftTest, FlagsAreRecordedPerStage) {
  EstimatingRuntime runtime(
      make_config(25), 3,
      [&](std::size_t, auto estimates, auto flags) {
        return std::make_unique<DetectorGtft>(32, estimates, flags);
      },
      1e6);
  const auto result = runtime.play(4);
  ASSERT_EQ(result.flags_per_stage.size(), 4u);
  for (const auto& flags : result.flags_per_stage) {
    EXPECT_EQ(flags.size(), 3u);
  }
}

}  // namespace
}  // namespace smac::sim
