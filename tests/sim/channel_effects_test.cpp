// Channel-noise (PER), capture effect, and backoff-policy ablations.
#include <gtest/gtest.h>

#include "analytical/backoff_chain.hpp"
#include "analytical/fixed_point_solver.hpp"
#include "analytical/utility.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace smac::sim {
namespace {

SimConfig make_config(std::uint64_t seed = 1) {
  SimConfig config;
  config.seed = seed;
  return config;
}

// ---- Packet error rate ----

TEST(PerTest, ParametersValidatePer) {
  phy::Parameters p = phy::Parameters::paper();
  p.packet_error_rate = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.packet_error_rate = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.packet_error_rate = 0.3;
  EXPECT_NO_THROW(p.validate());
}

TEST(PerTest, SolverEscalatesOnCombinedFailure) {
  // With PER > 0 nodes retry more, so τ drops even without extra nodes.
  const double tau_clean = analytical::homogeneous_tau(64, 5, 6, 0.0);
  const double tau_noisy = analytical::homogeneous_tau(64, 5, 6, 0.3);
  EXPECT_LT(tau_noisy, tau_clean);
  // Single node: failure probability equals PER exactly.
  const double tau_single = analytical::homogeneous_tau(64, 1, 6, 0.3);
  EXPECT_NEAR(tau_single, analytical::transmission_probability_cont(64, 0.3, 6),
              1e-12);
}

TEST(PerTest, SolverRejectsBadPer) {
  EXPECT_THROW(analytical::homogeneous_tau(64, 5, 6, 1.0),
               std::invalid_argument);
  EXPECT_THROW(analytical::solve_network({32, 32}, 6, {}, -0.1),
               std::invalid_argument);
}

TEST(PerTest, SimulatorMatchesModelUnderNoise) {
  const double per = 0.2;
  SimConfig config = make_config(11);
  config.params.packet_error_rate = per;
  Simulator sim(config, std::vector<int>(5, 64));
  const auto r = sim.run_slots(400000);

  const auto model = analytical::solve_network_homogeneous(64, 5, 6, per);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(r.measured_tau[i], model.tau[0], 0.06 * model.tau[0]);
    // measured_p counts collisions AND corrupted frames: compare with the
    // combined failure probability.
    const double fail = 1.0 - (1.0 - model.p[0]) * (1.0 - per);
    EXPECT_NEAR(r.measured_p[i], fail, 0.05);
  }
  // Error slots appear in roughly PER proportion of clean transmissions.
  const double error_fraction =
      static_cast<double>(r.error_slots) /
      static_cast<double>(r.error_slots + r.success_slots);
  EXPECT_NEAR(error_fraction, per, 0.03);
}

TEST(PerTest, NoisyChannelLowersUtilityAndThroughput) {
  SimConfig clean = make_config(12);
  SimConfig noisy = make_config(12);
  noisy.params.packet_error_rate = 0.3;
  Simulator sim_clean(clean, std::vector<int>(5, 79));
  Simulator sim_noisy(noisy, std::vector<int>(5, 79));
  const auto rc = sim_clean.run_slots(200000);
  const auto rn = sim_noisy.run_slots(200000);
  EXPECT_LT(rn.throughput, rc.throughput);
  EXPECT_LT(rn.payoff_rate[0], rc.payoff_rate[0]);
}

TEST(PerTest, NoiseShiftsEfficientNeDownward) {
  // The optimal per-slot transmission probability τ* balances idle time
  // against collision time — a channel property PER barely touches. But
  // PER makes the backoff chain escalate (corrupted frames look like
  // collisions to the sender), depressing τ at every configured window;
  // recovering τ* therefore needs a *smaller* window, so the efficient NE
  // shifts down as the channel gets noisier — while the achievable
  // utility of course drops.
  phy::Parameters clean = phy::Parameters::paper();
  phy::Parameters noisy = clean;
  noisy.packet_error_rate = 0.4;
  double best_clean = -1e30, best_noisy = -1e30;
  int w_star_clean = 0, w_star_noisy = 0;
  for (int w = 20; w <= 800; w += 4) {
    const double uc = analytical::homogeneous_utility_rate(
        w, 10, clean, phy::AccessMode::kBasic);
    const double un = analytical::homogeneous_utility_rate(
        w, 10, noisy, phy::AccessMode::kBasic);
    if (uc > best_clean) { best_clean = uc; w_star_clean = w; }
    if (un > best_noisy) { best_noisy = un; w_star_noisy = w; }
  }
  EXPECT_LT(best_noisy, best_clean);
  EXPECT_LT(w_star_noisy, w_star_clean);
  // The windows should roughly compensate the escalation: τ at the noisy
  // optimum stays near τ at the clean optimum.
  const double tau_clean = analytical::homogeneous_tau(w_star_clean, 10, 6, 0.0);
  const double tau_noisy =
      analytical::homogeneous_tau(w_star_noisy, 10, 6, 0.4);
  EXPECT_NEAR(tau_noisy, tau_clean, 0.35 * tau_clean);
}

// ---- Capture effect ----

TEST(CaptureTest, ValidatesProbability) {
  SimConfig config = make_config();
  config.capture_probability = 1.5;
  EXPECT_THROW(Simulator(config, {32, 32}), std::invalid_argument);
  config.capture_probability = -0.1;
  EXPECT_THROW(Simulator(config, {32, 32}), std::invalid_argument);
}

TEST(CaptureTest, RescuesCollisionsAndRaisesThroughput) {
  SimConfig plain = make_config(13);
  SimConfig capture = make_config(13);
  capture.capture_probability = 0.5;
  Simulator sim_plain(plain, std::vector<int>(10, 16));
  Simulator sim_capture(capture, std::vector<int>(10, 16));
  const auto rp = sim_plain.run_slots(200000);
  const auto rc = sim_capture.run_slots(200000);
  EXPECT_EQ(rp.capture_slots, 0u);
  EXPECT_GT(rc.capture_slots, 0u);
  EXPECT_GT(rc.throughput, rp.throughput);
  // Captured slots are a subset of successes.
  EXPECT_LE(rc.capture_slots, rc.success_slots);
}

TEST(CaptureTest, FullCaptureEliminatesPureCollisions) {
  SimConfig config = make_config(14);
  config.capture_probability = 1.0;
  Simulator sim(config, std::vector<int>(5, 8));
  const auto r = sim.run_slots(100000);
  EXPECT_EQ(r.collision_slots, 0u);
  EXPECT_GT(r.capture_slots, 0u);
}

TEST(CaptureTest, UniformCaptureSoftensTheAggressorsPremium) {
  // Uniform-winner capture hands contested slots to a random contender.
  // The aggressor is party to almost every collision, but so is whichever
  // conformer it collided with — and conformers previously earned nothing
  // from those slots. Relative to its baseline, the conformer gains more,
  // so the aggressor's payoff premium *shrinks* as capture strengthens.
  auto premium = [&](double capture_p) {
    SimConfig config = make_config(15);
    config.capture_probability = capture_p;
    Simulator sim(config, {16, 128, 128, 128});
    const auto r = sim.run_slots(300000);
    return r.payoff_rate[0] / r.payoff_rate[1];
  };
  const double plain = premium(0.0);
  const double strong = premium(0.8);
  EXPECT_GT(plain, 1.0);   // aggression still pays in both regimes
  EXPECT_GT(strong, 1.0);
  EXPECT_LT(strong, plain);
}

// ---- Backoff policies ----

TEST(BackoffPolicyTest, ConstantPolicyNeverAdapts) {
  DcfNode node(16, 6, util::Rng(1), BackoffPolicy::kConstant);
  node.on_collision();
  node.on_collision();
  EXPECT_EQ(node.current_window(), 16);
  EXPECT_EQ(node.stage(), 0);
}

TEST(BackoffPolicyTest, MildIncreasesAndDecays) {
  DcfNode node(16, 6, util::Rng(2), BackoffPolicy::kMild);
  EXPECT_EQ(node.current_window(), 16);
  node.on_collision();
  const auto after_collision = node.current_window();
  EXPECT_GT(after_collision, 16);    // ×1.5-ish
  EXPECT_LE(after_collision, 16 * 64);
  node.on_success();
  EXPECT_EQ(node.current_window(), after_collision - 1);  // linear decrease
  // Decay floors at the configured window.
  for (int i = 0; i < 100; ++i) node.on_success();
  EXPECT_EQ(node.current_window(), 16);
}

TEST(BackoffPolicyTest, MildCapsAtMaxStageWindow) {
  DcfNode node(16, 2, util::Rng(3), BackoffPolicy::kMild);
  for (int i = 0; i < 50; ++i) node.on_collision();
  EXPECT_LE(node.current_window(), 16 << 2);
}

TEST(BackoffPolicyTest, SetCwResetsMildWindow) {
  DcfNode node(16, 6, util::Rng(4), BackoffPolicy::kMild);
  node.on_collision();
  node.set_cw(32);
  EXPECT_EQ(node.current_window(), 32);
}

double mean_jain(BackoffPolicy policy, int w, std::uint64_t slots,
                 int seeds) {
  util::RunningStats jain;
  for (int seed = 0; seed < seeds; ++seed) {
    SimConfig config = make_config(30 + static_cast<std::uint64_t>(seed));
    config.backoff_policy = policy;
    Simulator sim(config, std::vector<int>(10, w));
    const auto r = sim.run_slots(slots);
    std::vector<double> successes;
    for (const auto& node : r.node) {
      successes.push_back(static_cast<double>(node.successes));
    }
    jain.add(util::jain_fairness(successes));
  }
  return jain.mean();
}

TEST(BackoffPolicyTest, MildImprovesVeryShortTermFairness) {
  // MACAW's regime: over a few hundred slots BEB lets the recent winner
  // keep a small window while losers sit in deep backoff; MILD's gentle
  // ×1.5/−1 adjustments keep windows comparable. (Over long horizons the
  // ranking flips — MILD's slow decay leaves windows dispersed — see
  // MildSlowDecayHurtsLongRunFairness.)
  EXPECT_GT(mean_jain(BackoffPolicy::kMild, 4, 500, 12),
            mean_jain(BackoffPolicy::kBinaryExponential, 4, 500, 12));
  EXPECT_GT(mean_jain(BackoffPolicy::kMild, 16, 500, 12),
            mean_jain(BackoffPolicy::kBinaryExponential, 16, 500, 12));
}

TEST(BackoffPolicyTest, MildSlowDecayHurtsLongRunFairness) {
  EXPECT_LT(mean_jain(BackoffPolicy::kMild, 16, 20000, 8),
            mean_jain(BackoffPolicy::kBinaryExponential, 16, 20000, 8));
}

TEST(BackoffPolicyTest, TinyConstantWindowCausesLockout) {
  // W = 2 with no adaptation: whoever wins keeps drawing from {0, 1}
  // against losers doing the same — long-run channel capture by a lucky
  // node (Jain index collapses), the failure BEB exists to prevent.
  EXPECT_LT(mean_jain(BackoffPolicy::kConstant, 2, 20000, 8), 0.6);
  EXPECT_GT(mean_jain(BackoffPolicy::kBinaryExponential, 2, 20000, 8), 0.9);
}

TEST(BackoffPolicyTest, PoliciesDeliverComparableThroughput) {
  // Sanity: the ablation alternatives remain functional MAC protocols.
  for (auto policy : {BackoffPolicy::kBinaryExponential, BackoffPolicy::kMild,
                      BackoffPolicy::kConstant}) {
    SimConfig config = make_config(40);
    config.backoff_policy = policy;
    Simulator sim(config, std::vector<int>(10, 64));
    const auto r = sim.run_slots(100000);
    EXPECT_GT(r.throughput, 0.5) << static_cast<int>(policy);
  }
}

}  // namespace
}  // namespace smac::sim
