// Regression pin for the observation-noise ratchet (ROADMAP item closed
// by PR 5): under persistent false-low window reads, plain TFT and GTFT
// collapse to W = 1 and NEVER climb back out (min-matching makes the
// false read absorbing), while contrite-tft and forgiving-gtft recover
// within a handful of stages. The scenarios mirror the no-filter cells
// of bench_fault_resilience's forgiveness grid (same seeds, same plan),
// so these numbers are exactly the grid's rows.
#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "game/forgiveness_grid.hpp"
#include "game/repeated_game.hpp"
#include "game/stage_game.hpp"
#include "gtest/gtest.h"
#include "parallel/replication.hpp"
#include "phy/parameters.hpp"

namespace {

using namespace smac;

constexpr int kPlayers = 6;
constexpr int kStages = 120;
constexpr int kWCoop = 19;  // W* for n = 6 RTS/CTS (EquilibriumFinder)
constexpr std::uint64_t kGridSeed = 0xfa57 ^ 0xf0;  // bench grid base seed

const game::StageGame& test_game() {
  static const game::StageGame game(phy::Parameters::paper(),
                                    phy::AccessMode::kRtsCts);
  return game;
}

game::ForgivenessCellSpec no_filter_spec(game::ReactionRule rule,
                                         double noise,
                                         std::uint64_t noise_index) {
  game::ForgivenessCellSpec spec;
  spec.rule = rule;
  spec.noise_probability = noise;
  spec.players = kPlayers;
  spec.stages = kStages;
  spec.w_coop = kWCoop;
  spec.seed = parallel::stream_seed(kGridSeed, noise_index);
  return spec;
}

// The raw trajectory behind one no-filter cell.
game::RepeatedGameResult play_cell(const game::ForgivenessCellSpec& spec) {
  fault::FaultPlan plan;
  plan.observation.loss_probability = spec.loss_probability;
  plan.observation.noise_probability = spec.noise_probability;
  plan.observation.noise_magnitude = spec.noise_magnitude;
  fault::FaultInjector injector(plan, kPlayers, spec.seed);
  game::RepeatedGameEngine engine(
      test_game(),
      game::make_reaction_population(spec.rule, kPlayers, spec.w_coop));
  engine.set_observation_filter(spec.filter);
  return engine.play(spec.stages, &injector);
}

TEST(ForgivenessRegression, TftAndGtftRatchetAndNeverRecover) {
  for (const auto rule :
       {game::ReactionRule::kTft, game::ReactionRule::kGtft}) {
    const auto result = play_cell(no_filter_spec(rule, 0.05, 0));
    // The ratchet: once the population hits W = 1 it stays there for the
    // whole remaining horizon — no stage ever moves back up.
    int first_floor = -1;
    for (std::size_t s = 0; s < result.history.size(); ++s) {
      if (game::min_cw(result.history[s]) == 1) {
        first_floor = static_cast<int>(s);
        break;
      }
    }
    ASSERT_GE(first_floor, 0) << game::to_string(rule)
                              << ": noise never drove the cast to W = 1";
    for (std::size_t s = static_cast<std::size_t>(first_floor);
         s < result.history.size(); ++s) {
      ASSERT_EQ(game::min_cw(result.history[s]), 1)
          << game::to_string(rule) << " recovered at stage " << s
          << " — the ratchet pin is broken";
    }
  }
}

TEST(ForgivenessRegression, ForgivingRulesRecoverFromEveryCollapse) {
  // Every W = 1 episode of the forgiving rules ends: within
  // clean_stages + O(log W*) stages the per-stage minimum is back near
  // W*. 12 stages is double the worst drift observed; episodes that
  // start too close to the horizon to observe a recovery are skipped.
  constexpr int kRecoveryWindow = 12;
  constexpr int kRecoveredLevel = 15;  // within a noise notch of W* = 19
  for (const auto rule : {game::ReactionRule::kContriteTft,
                          game::ReactionRule::kForgivingGtft}) {
    const auto result = play_cell(no_filter_spec(rule, 0.05, 0));
    for (std::size_t s = 0; s < result.history.size(); ++s) {
      if (game::min_cw(result.history[s]) != 1) continue;
      if (s + kRecoveryWindow >= result.history.size()) break;
      bool recovered = false;
      for (std::size_t t = s + 1; t <= s + kRecoveryWindow; ++t) {
        if (game::min_cw(result.history[t]) >= kRecoveredLevel) {
          recovered = true;
          break;
        }
      }
      EXPECT_TRUE(recovered)
          << game::to_string(rule) << ": collapse at stage " << s
          << " not recovered within " << kRecoveryWindow << " stages";
    }
  }
}

TEST(ForgivenessRegression, GridCellContrastAtBothNoiseLevels) {
  // The bench grid's headline numbers, pinned: ratcheted rules live at
  // exactly 1.0 tail mean; the forgiving rules live most of an order of
  // magnitude higher under identical fault draws.
  const std::vector<std::pair<double, std::uint64_t>> noise{{0.05, 0},
                                                            {0.15, 1}};
  for (const auto& [level, index] : noise) {
    const auto tft = game::run_forgiveness_cell(
        test_game(), no_filter_spec(game::ReactionRule::kTft, level, index));
    const auto gtft = game::run_forgiveness_cell(
        test_game(), no_filter_spec(game::ReactionRule::kGtft, level, index));
    const auto contrite = game::run_forgiveness_cell(
        test_game(),
        no_filter_spec(game::ReactionRule::kContriteTft, level, index));
    const auto forgiving = game::run_forgiveness_cell(
        test_game(),
        no_filter_spec(game::ReactionRule::kForgivingGtft, level, index));
    EXPECT_DOUBLE_EQ(tft.tail_mean_min_cw, 1.0) << level;
    EXPECT_EQ(tft.final_min_cw, 1) << level;
    EXPECT_DOUBLE_EQ(gtft.tail_mean_min_cw, 1.0) << level;
    EXPECT_EQ(gtft.final_min_cw, 1) << level;
    EXPECT_GE(contrite.tail_mean_min_cw, 8.0) << level;
    EXPECT_GE(forgiving.tail_mean_min_cw, 15.0) << level;
  }
}

TEST(ForgivenessRegression, MedianFilterRescuesPlainTft) {
  // An observation filter alone already breaks the ratchet for plain TFT
  // at moderate noise: isolated false reads never reach the trigger.
  auto spec = no_filter_spec(game::ReactionRule::kTft, 0.05, 0);
  spec.filter.kind = game::FilterKind::kMedian;
  spec.filter.window = 5;
  const auto filtered = game::run_forgiveness_cell(test_game(), spec);
  EXPECT_GE(filtered.tail_mean_min_cw, 10.0);
  EXPECT_GE(filtered.final_min_cw, 10);
}

}  // namespace
