// Graceful degradation end to end: fault-aware repeated games and
// multihop TFT never throw, account every non-clean stage in their
// DegradationReport, and replicated fault experiments are bit-identical
// at any job count (the determinism contract of src/parallel).
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "fault/degradation.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "game/repeated_game.hpp"
#include "game/stage_game.hpp"
#include "gtest/gtest.h"
#include "multihop/adaptive.hpp"
#include "multihop/multihop_simulator.hpp"
#include "parallel/replication.hpp"
#include "phy/parameters.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace smac;

const game::StageGame& test_game() {
  static const game::StageGame game(phy::Parameters::paper(),
                                    phy::AccessMode::kRtsCts);
  return game;
}

fault::FaultPlan stress_plan() {
  fault::FaultPlan plan;
  plan.scripted.push_back({3, 0, fault::FaultKind::kCrash});
  plan.scripted.push_back({8, 0, fault::FaultKind::kJoin});
  plan.churn.crash_rate = 0.05;
  plan.churn.recover_rate = 0.3;
  plan.channel.p_good_to_bad = 0.2;
  plan.channel.p_bad_to_good = 0.4;
  plan.channel.per_bad = 0.4;
  plan.observation.loss_probability = 0.1;
  plan.observation.noise_probability = 0.1;
  plan.observation.noise_magnitude = 3;
  return plan;
}

TEST(FaultRepeatedGame, NullInjectorMatchesFaultFreePlay) {
  game::RepeatedGameEngine a(test_game(), game::make_tft_population(4, 32));
  game::RepeatedGameEngine b(test_game(), game::make_tft_population(4, 32));
  const auto plain = a.play(6);
  const auto with_null = b.play(6, nullptr);
  ASSERT_EQ(plain.history.size(), with_null.history.size());
  for (std::size_t k = 0; k < plain.history.size(); ++k) {
    EXPECT_EQ(plain.history[k].cw, with_null.history[k].cw);
    EXPECT_EQ(plain.history[k].utility, with_null.history[k].utility);
  }
  EXPECT_TRUE(with_null.degradation.clean());
}

TEST(FaultRepeatedGame, RejectsMismatchedInjector) {
  game::RepeatedGameEngine engine(test_game(),
                                  game::make_tft_population(4, 32));
  fault::FaultInjector wrong_size(fault::FaultPlan{}, 3, 1);
  EXPECT_THROW(engine.play(4, &wrong_size), std::invalid_argument);
}

TEST(FaultRepeatedGame, CrashedPlayerEarnsZeroAndKeepsWindow) {
  fault::FaultPlan plan;
  plan.scripted.push_back({1, 2, fault::FaultKind::kCrash});
  plan.scripted.push_back({4, 2, fault::FaultKind::kJoin});
  fault::FaultInjector injector(plan, 4, 11);
  game::RepeatedGameEngine engine(test_game(),
                                  game::make_tft_population(4, 32));
  const auto result = engine.play(6, &injector);
  ASSERT_EQ(result.history.size(), 6u);
  for (int k = 1; k < 4; ++k) {
    const auto& record = result.history[static_cast<std::size_t>(k)];
    ASSERT_EQ(record.online.size(), 4u);
    EXPECT_EQ(record.online[2], 0) << "stage " << k;
    EXPECT_EQ(record.cw[2], 32) << "stage " << k;  // window frozen
    EXPECT_EQ(record.utility[2], 0.0) << "stage " << k;
    for (std::size_t i = 0; i < 4; ++i) {
      if (i != 2) EXPECT_GT(record.utility[i], 0.0);
    }
  }
  EXPECT_EQ(result.degradation.crash_events, 1);
  EXPECT_EQ(result.degradation.join_events, 1);
  EXPECT_EQ(result.degradation.last_fault_stage, 4);
  EXPECT_EQ(result.degradation.stages, 6);
}

TEST(FaultRepeatedGame, StressScenarioNeverThrowsAndAccountsStages) {
  fault::FaultInjector injector(stress_plan(), 6, 2024);
  game::RepeatedGameEngine engine(
      test_game(), game::make_gtft_population(6, 19, 0.9, 3));
  game::RepeatedGameResult result;
  ASSERT_NO_THROW(result = engine.play(40, &injector));
  const auto& d = result.degradation;
  EXPECT_EQ(d.stages, 40);
  EXPECT_EQ(static_cast<int>(d.incidents.size()),
            d.degraded_stages + d.failed_stages);
  EXPECT_GT(d.lost_observations + d.noisy_observations, 0u);
  for (const auto& record : result.history) {
    for (double u : record.utility) EXPECT_TRUE(std::isfinite(u));
  }
}

TEST(FaultRepeatedGame, TrajectoryIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    fault::FaultInjector injector(stress_plan(), 5, seed);
    game::RepeatedGameEngine engine(test_game(),
                                    game::make_tft_population(5, 24));
    return engine.play(25, &injector);
  };
  const auto a = run(77);
  const auto b = run(77);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t k = 0; k < a.history.size(); ++k) {
    EXPECT_EQ(a.history[k].cw, b.history[k].cw) << "stage " << k;
    EXPECT_EQ(a.history[k].online, b.history[k].online);
    EXPECT_EQ(a.history[k].utility, b.history[k].utility);
  }
  EXPECT_EQ(a.degradation.summary(), b.degradation.summary());
}

// The acceptance check of the fault subsystem: an entire replicated fault
// experiment — injector faults included — must be bit-identical when the
// batch runs on 1 worker and on 4.
TEST(FaultRepeatedGame, ReplicatedFaultRunsAreJobCountInvariant) {
  auto experiment = [](std::uint64_t seed, std::size_t) {
    fault::FaultInjector injector(stress_plan(), 5, seed);
    game::RepeatedGameEngine engine(test_game(),
                                    game::make_tft_population(5, 24));
    const auto result = engine.play(15, &injector);
    std::vector<double> row = result.total_utility;
    row.push_back(static_cast<double>(result.stable_from));
    row.push_back(static_cast<double>(result.degradation.crash_events));
    row.push_back(static_cast<double>(result.degradation.lost_observations));
    return row;
  };
  parallel::ReplicationPlan plan;
  plan.replications = 8;
  plan.base_seed = 0xfa57;
  plan.jobs = 1;
  const auto serial = parallel::ReplicationRunner(plan).run(experiment);
  plan.jobs = 4;
  const auto parallel_run = parallel::ReplicationRunner(plan).run(experiment);
  ASSERT_EQ(serial.size(), parallel_run.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    ASSERT_EQ(serial[r].size(), parallel_run[r].size());
    for (std::size_t m = 0; m < serial[r].size(); ++m) {
      EXPECT_EQ(serial[r][m], parallel_run[r][m])
          << "replication " << r << " metric " << m;
    }
  }
}

TEST(FailurePolicy, CollectRecordsErrorsInIndexOrder) {
  parallel::ReplicationPlan plan;
  plan.replications = 6;
  plan.base_seed = 3;
  plan.jobs = 2;
  plan.failure_policy = parallel::FailurePolicy::kCollect;
  const auto batch =
      parallel::ReplicationRunner(plan).run_collect(
          [](std::uint64_t, std::size_t i) -> int {
            if (i == 1 || i == 4) throw std::runtime_error("boom");
            return static_cast<int>(i) * 10;
          });
  EXPECT_FALSE(batch.ok());
  ASSERT_EQ(batch.errors.size(), 2u);
  EXPECT_EQ(batch.errors[0].index, 1u);
  EXPECT_EQ(batch.errors[0].message, "boom");
  EXPECT_EQ(batch.errors[1].index, 4u);
  EXPECT_FALSE(batch.succeeded(1));
  EXPECT_TRUE(batch.succeeded(2));
  ASSERT_EQ(batch.results.size(), 6u);
  EXPECT_EQ(batch.results[1], 0);  // default-constructed slot
  EXPECT_EQ(batch.results[5], 50);
}

TEST(FailurePolicy, FailFastPropagatesFirstError) {
  parallel::ReplicationPlan plan;
  plan.replications = 4;
  plan.jobs = 1;
  EXPECT_THROW(parallel::ReplicationRunner(plan).run(
                   [](std::uint64_t, std::size_t i) -> int {
                     if (i == 2) throw std::runtime_error("boom");
                     return 0;
                   }),
               std::runtime_error);
}

TEST(FailurePolicy, SummarizedAggregatesSkipFailedRows) {
  parallel::ReplicationPlan plan;
  plan.replications = 5;
  plan.jobs = 1;
  plan.failure_policy = parallel::FailurePolicy::kCollect;
  const auto summary = parallel::ReplicationRunner(plan).run_summarized(
      {"value"}, [](std::uint64_t, std::size_t i) -> std::vector<double> {
        if (i == 2) throw std::runtime_error("boom");
        return {static_cast<double>(i)};
      });
  ASSERT_EQ(summary.errors.size(), 1u);
  EXPECT_EQ(summary.errors[0].index, 2u);
  EXPECT_EQ(summary.errors[0].message, "boom");
  // The streaming reduction drops failed replications entirely: the mean
  // covers the successful rows {0, 1, 3, 4} only and the sample count
  // reflects that.
  ASSERT_EQ(summary.metrics.size(), 1u);
  EXPECT_EQ(summary.metrics[0].count, 4u);
  EXPECT_DOUBLE_EQ(summary.metrics[0].mean, 2.0);
  EXPECT_EQ(summary.stopping.replications, 5u);
  EXPECT_EQ(summary.stopping.samples, 4u);
}

TEST(DegradationReport, MergeAndSummary) {
  fault::DegradationReport a;
  a.stages = 10;
  a.degraded_stages = 1;
  a.crash_events = 2;
  a.last_fault_stage = 4;
  a.incidents.push_back({4, analytical::SolveStatus::kDegraded, 1e-8, 1,
                         false});
  fault::DegradationReport b;
  b.stages = 5;
  b.failed_stages = 1;
  b.reused_stages = 1;
  b.lost_observations = 7;
  b.last_fault_stage = 2;

  EXPECT_FALSE(a.clean());
  a.merge(b);
  EXPECT_EQ(a.stages, 15);
  EXPECT_EQ(a.degraded_stages, 1);
  EXPECT_EQ(a.failed_stages, 1);
  EXPECT_EQ(a.reused_stages, 1);
  EXPECT_EQ(a.crash_events, 2);
  EXPECT_EQ(a.lost_observations, 7u);
  EXPECT_EQ(a.last_fault_stage, 4);  // max wins
  const std::string line = a.summary();
  EXPECT_NE(line.find("15 stages"), std::string::npos);
  EXPECT_NE(line.find("13 converged"), std::string::npos);

  fault::DegradationReport clean;
  clean.stages = 3;
  EXPECT_TRUE(clean.clean());
}

TEST(TryStageUtilities, ExtremeProfilesStayFinite) {
  const auto& game = test_game();
  const auto greedy =
      game.try_stage_utilities(std::vector<int>(6, 1));
  EXPECT_TRUE(analytical::usable(greedy.diagnostics.status));
  for (double u : greedy.utilities) EXPECT_TRUE(std::isfinite(u));
  const auto empty = game.try_stage_utilities({});
  EXPECT_EQ(empty.diagnostics.status, analytical::SolveStatus::kFailed);
  EXPECT_TRUE(empty.utilities.empty());
  const auto high_per =
      game.try_stage_utilities({16, 32, 64}, 0.99);
  EXPECT_TRUE(analytical::usable(high_per.diagnostics.status));
  for (double u : high_per.utilities) EXPECT_TRUE(std::isfinite(u));
}

TEST(FaultMultihop, CrashedNodeIsSkippedByNeighbors) {
  // 4-chain seeded {8, 40, 40, 40}: fault-free TFT ripples 8 down the
  // chain. Crash node 0 before stage 0 and its low window must never
  // propagate; the rest settle on 40.
  std::vector<multihop::Vec2> pos;
  for (int i = 0; i < 4; ++i) pos.push_back({i * 200.0, 0.0});
  multihop::MultihopConfig config;
  config.seed = 5;
  multihop::MultihopSimulator sim(config, multihop::Topology(pos, 250.0),
                                  {8, 40, 40, 40});
  fault::FaultPlan plan;
  plan.scripted.push_back({0, 0, fault::FaultKind::kCrash});
  fault::FaultInjector injector(plan, 4, 21);
  multihop::MultihopTftConfig tft;
  tft.slots_per_stage = 15000;
  tft.stages = 4;
  const auto result = multihop::play_multihop_tft(sim, nullptr, tft,
                                                  &injector);
  for (const auto& stage : result.stages) {
    ASSERT_EQ(stage.online.size(), 4u);
    EXPECT_EQ(stage.online[0], 0);
    EXPECT_EQ(stage.cw[0], 8);  // frozen, not matched by anyone
    for (std::size_t i = 1; i < 4; ++i) EXPECT_EQ(stage.cw[i], 40);
  }
  EXPECT_EQ(result.degradation.crash_events, 1);
}

TEST(FaultSimulator, GilbertElliottRaisesLossesDeterministically) {
  auto run = [](double per_bad, std::uint64_t seed) {
    sim::SimConfig config;
    config.mode = phy::AccessMode::kRtsCts;
    config.seed = seed;
    config.faults.channel.p_good_to_bad = per_bad > 0.0 ? 0.05 : 0.0;
    config.faults.channel.p_bad_to_good = 0.2;
    config.faults.channel.per_bad = per_bad;
    sim::Simulator simulator(config, std::vector<int>(5, 32));
    return simulator.run_slots(40000);
  };
  const auto clean = run(0.0, 9);
  const auto bursty = run(0.6, 9);
  EXPECT_EQ(clean.bad_state_slots, 0u);
  EXPECT_GT(bursty.bad_state_slots, 0u);
  EXPECT_GT(bursty.error_slots, clean.error_slots);
  EXPECT_LT(bursty.throughput, clean.throughput);
  const auto again = run(0.6, 9);
  EXPECT_EQ(bursty.bad_state_slots, again.bad_state_slots);
  EXPECT_EQ(bursty.error_slots, again.error_slots);
  EXPECT_DOUBLE_EQ(bursty.throughput, again.throughput);
}

TEST(FaultSimulator, ScriptedCrashSilencesNode) {
  sim::SimConfig config;
  config.seed = 4;
  config.faults.events.push_back({0, 2, fault::FaultKind::kCrash});
  sim::Simulator simulator(config, std::vector<int>(4, 32));
  const auto result = simulator.run_slots(30000);
  EXPECT_FALSE(simulator.node_online(2));
  EXPECT_EQ(result.node[2].successes, 0u);
  EXPECT_GT(result.node[0].successes, 0u);
}

}  // namespace
