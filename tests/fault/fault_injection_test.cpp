// FaultPlan validation and FaultInjector determinism: the fault
// trajectory must be a pure function of (plan, node_count, seed) and the
// injector must enforce its stage-ordering contract.
#include <stdexcept>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "gtest/gtest.h"
#include "util/rng.hpp"

namespace {

using namespace smac;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;

TEST(FaultPlan, ValidatesRates) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_NO_THROW(plan.validate());

  plan.churn.crash_rate = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.churn.crash_rate = 0.1;
  EXPECT_FALSE(plan.empty());
  EXPECT_NO_THROW(plan.validate());

  plan.channel.p_good_to_bad = 0.2;
  plan.channel.per_bad = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.channel.per_bad = 0.5;
  EXPECT_NO_THROW(plan.validate());

  plan.observation.loss_probability = 2.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.observation.loss_probability = 0.1;
  plan.observation.noise_probability = 0.1;
  plan.observation.noise_magnitude = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.observation.noise_magnitude = 2;
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, EnabledPredicates) {
  fault::GilbertElliottConfig ge;
  EXPECT_FALSE(ge.enabled());
  ge.p_good_to_bad = 0.1;
  EXPECT_FALSE(ge.enabled());  // per_bad still 0: Bad state is harmless
  ge.per_bad = 0.3;
  EXPECT_TRUE(ge.enabled());
}

TEST(FaultInjector, RejectsOutOfRangeScriptedNode) {
  FaultPlan plan;
  plan.scripted.push_back({0, 5, FaultKind::kCrash});
  EXPECT_THROW(FaultInjector(plan, 4, 1), std::invalid_argument);
  EXPECT_NO_THROW(FaultInjector(plan, 6, 1));
}

TEST(FaultInjector, ScriptedCrashAndJoinToggleOnlineMask) {
  FaultPlan plan;
  plan.scripted.push_back({2, 1, FaultKind::kCrash});
  plan.scripted.push_back({5, 1, FaultKind::kJoin});
  FaultInjector injector(plan, 3, 7);
  for (int k = 0; k < 8; ++k) {
    injector.begin_stage(k);
    const bool expect_up = k < 2 || k >= 5;
    EXPECT_EQ(injector.online(1), expect_up) << "stage " << k;
    EXPECT_TRUE(injector.online(0));
    EXPECT_TRUE(injector.online(2));
    EXPECT_EQ(injector.online_count(), expect_up ? 3u : 2u);
  }
  EXPECT_EQ(injector.crash_events(), 1);
  EXPECT_EQ(injector.join_events(), 1);
  EXPECT_EQ(injector.last_fault_stage(), 5);
}

TEST(FaultInjector, RewindingStagesThrows) {
  FaultInjector injector(FaultPlan{}, 2, 1);
  injector.begin_stage(0);
  injector.begin_stage(1);
  EXPECT_THROW(injector.begin_stage(1), std::invalid_argument);
  EXPECT_THROW(injector.begin_stage(0), std::invalid_argument);
  EXPECT_NO_THROW(injector.begin_stage(3));  // skipping forward is allowed
}

TEST(FaultInjector, TrajectoryIsPureFunctionOfSeed) {
  FaultPlan plan;
  plan.churn.crash_rate = 0.1;
  plan.churn.recover_rate = 0.3;
  plan.channel.p_good_to_bad = 0.2;
  plan.channel.p_bad_to_good = 0.3;
  plan.channel.per_bad = 0.5;
  plan.observation.loss_probability = 0.2;
  plan.observation.noise_probability = 0.2;
  plan.observation.noise_magnitude = 3;

  FaultInjector a(plan, 5, 42);
  FaultInjector b(plan, 5, 42);
  FaultInjector c(plan, 5, 43);
  bool any_difference_from_c = false;
  for (int k = 0; k < 200; ++k) {
    a.begin_stage(k);
    b.begin_stage(k);
    c.begin_stage(k);
    ASSERT_EQ(a.online_mask(), b.online_mask()) << "stage " << k;
    ASSERT_EQ(a.channel_bad(), b.channel_bad()) << "stage " << k;
    const fault::Observation oa = a.observe_cw(32, 16);
    const fault::Observation ob = b.observe_cw(32, 16);
    ASSERT_EQ(oa.cw, ob.cw);
    ASSERT_EQ(oa.lost, ob.lost);
    ASSERT_EQ(oa.noisy, ob.noisy);
    if (a.online_mask() != c.online_mask() ||
        a.channel_bad() != c.channel_bad()) {
      any_difference_from_c = true;
    }
    (void)c.observe_cw(32, 16);
  }
  EXPECT_EQ(a.crash_events(), b.crash_events());
  EXPECT_EQ(a.lost_observations(), b.lost_observations());
  EXPECT_EQ(a.noisy_observations(), b.noisy_observations());
  EXPECT_TRUE(any_difference_from_c);  // different seed, different faults
}

TEST(FaultInjector, ObservationLossReturnsFallback) {
  FaultPlan plan;
  plan.observation.loss_probability = 1.0;
  FaultInjector injector(plan, 2, 9);
  injector.begin_stage(0);
  const fault::Observation obs = injector.observe_cw(64, 17);
  EXPECT_TRUE(obs.lost);
  EXPECT_EQ(obs.cw, 17);
  EXPECT_EQ(injector.lost_observations(), 1u);
  EXPECT_EQ(injector.noisy_observations(), 0u);
}

TEST(FaultInjector, ObservationNoiseStaysBoundedAndPositive) {
  FaultPlan plan;
  plan.observation.noise_probability = 1.0;
  plan.observation.noise_magnitude = 4;
  FaultInjector injector(plan, 2, 9);
  injector.begin_stage(0);
  std::uint64_t changed = 0;
  for (int i = 0; i < 200; ++i) {
    const fault::Observation obs = injector.observe_cw(3, 3);
    EXPECT_GE(obs.cw, 1);  // clamped: windows below 1 do not exist
    EXPECT_LE(obs.cw, 7);
    EXPECT_EQ(obs.noisy, obs.cw != 3);  // flag iff the value changed
    if (obs.noisy) ++changed;
  }
  EXPECT_GT(changed, 0u);
  EXPECT_EQ(injector.noisy_observations(), changed);
}

TEST(FaultInjector, DisabledObservationIsPassThrough) {
  FaultInjector injector(FaultPlan{}, 2, 9);
  injector.begin_stage(0);
  const fault::Observation obs = injector.observe_cw(64, 17);
  EXPECT_FALSE(obs.lost);
  EXPECT_FALSE(obs.noisy);
  EXPECT_EQ(obs.cw, 64);
  EXPECT_EQ(injector.lost_observations(), 0u);
}

TEST(GilbertElliottChannel, EffectivePerLayersOnBase) {
  fault::GilbertElliottConfig config;
  config.p_good_to_bad = 1.0;  // deterministic: Good -> Bad on first step
  config.p_bad_to_good = 0.0;
  config.per_bad = 0.5;
  fault::GilbertElliottChannel channel(config, util::Rng(1));
  EXPECT_FALSE(channel.bad());
  EXPECT_DOUBLE_EQ(channel.effective_per(0.2), 0.2);
  channel.step();
  EXPECT_TRUE(channel.bad());
  // PER_eff = 1 - (1 - 0.2)(1 - 0.5) = 0.6
  EXPECT_NEAR(channel.effective_per(0.2), 0.6, 1e-12);
}

TEST(GilbertElliottChannel, DisabledChainNeverLeavesGood) {
  fault::GilbertElliottChannel channel({}, util::Rng(1));
  for (int i = 0; i < 100; ++i) channel.step();
  EXPECT_FALSE(channel.bad());
  EXPECT_DOUBLE_EQ(channel.effective_per(0.3), 0.3);
}

}  // namespace
