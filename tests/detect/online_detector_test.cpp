// Unit tests of the sequential SPRT/CUSUM detector: Wald geometry,
// non-throwing edges, the structural noise margin, flag latency, and the
// rehabilitation contract. The numeric pins use the default agreement of
// the enforcement bench (W* = 19, n = 6, RTS/CTS geometry): tau0 ≈ 0.070,
// tau1 ≈ 0.123, break-even ≈ 0.094 — see docs/ENFORCEMENT.md.
#include "sim/online_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace smac::sim {
namespace {

constexpr int kW = 19;      // the RTS/CTS n = 6 efficient agreement
constexpr int kN = 6;
constexpr int kM = 6;

OnlineDetector make(OnlineDetectorConfig config = {}) {
  return OnlineDetector(config, kW, kN, kM, kN);
}

TEST(OnlineDetectorConfigTest, ValidityChecksEveryField) {
  EXPECT_TRUE(OnlineDetectorConfig{}.valid());
  OnlineDetectorConfig c;
  c.significance = 0.0;
  EXPECT_FALSE(c.valid());
  c = {};
  c.significance = 1.0;
  EXPECT_FALSE(c.valid());
  c = {};
  c.significance = 1e-300;  // 1 − α collapses to 1.0 in double
  EXPECT_FALSE(c.valid());
  c = {};
  c.miss_rate = 0.0;
  EXPECT_FALSE(c.valid());
  c = {};
  c.tolerance = -0.01;
  EXPECT_FALSE(c.valid());
  c = {};
  c.cheat_factor = 1.0;  // "cheat" identical to the agreement
  EXPECT_FALSE(c.valid());
  c = {};
  c.evidence_decay = 1.0;
  EXPECT_FALSE(c.valid());
  c = {};
  c.slots_per_stage = 0;
  EXPECT_FALSE(c.valid());
}

TEST(OnlineDetectorTest, CtorRejectsBadArguments) {
  const OnlineDetectorConfig ok;
  EXPECT_THROW(OnlineDetector(ok, 0, kN, kM, kN), std::invalid_argument);
  EXPECT_THROW(OnlineDetector(ok, kW, 1, kM, kN), std::invalid_argument);
  EXPECT_THROW(OnlineDetector(ok, kW, kN, -1, kN), std::invalid_argument);
  EXPECT_THROW(OnlineDetector(ok, kW, kN, kM, 0), std::invalid_argument);
  OnlineDetectorConfig bad;
  bad.significance = 0.0;
  EXPECT_THROW(make(bad), std::invalid_argument);
  // A tolerance wide enough to swallow the design cheat leaves the SPRT
  // with nothing to test for.
  bad = {};
  bad.tolerance = 10.0;
  EXPECT_THROW(make(bad), std::invalid_argument);
}

TEST(OnlineDetectorTest, WaldGeometryMatchesTheDesignRates) {
  const auto d = make();
  // A = log((1−β)/α), B = log(β/(1−α)) for α = 0.01, β = 0.10.
  EXPECT_NEAR(d.flag_threshold(), std::log(0.90 / 0.01), 1e-12);
  EXPECT_NEAR(d.evidence_floor(), std::log(0.10 / 0.99), 1e-12);
  EXPECT_GT(d.tau_alt(), d.tau_null());
  // The break-even rate sits strictly between the hypotheses: compliant
  // observations push evidence down, cheat-rate observations push it up.
  EXPECT_GT(d.break_even_tau(), d.tau_null());
  EXPECT_LT(d.break_even_tau(), d.tau_alt());
}

TEST(OnlineDetectorTest, TryObserveRejectsInvalidInputUntouched) {
  auto d = make();
  EXPECT_EQ(d.try_observe(kN, 1.0, 100), DetectStatus::kInvalidInput);
  EXPECT_EQ(d.try_observe(0, 1.0, 0), DetectStatus::kInvalidInput);
  EXPECT_EQ(d.try_observe(0, -1.0, 100), DetectStatus::kInvalidInput);
  EXPECT_EQ(d.try_observe(0, 101.0, 100), DetectStatus::kInvalidInput);
  EXPECT_EQ(d.try_observe(0, std::nan(""), 100), DetectStatus::kInvalidInput);
  EXPECT_EQ(d.try_observe_window(0, 0), DetectStatus::kInvalidInput);
  EXPECT_EQ(d.try_observe_window(kN, 16), DetectStatus::kInvalidInput);
  EXPECT_EQ(d.verdict(0).observations, 0);  // state untouched
  EXPECT_THROW(d.observe(0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(d.observe_window(0, 0), std::invalid_argument);
  EXPECT_THROW(d.verdict(kN), std::out_of_range);
  EXPECT_THROW(d.rehabilitate(kN), std::out_of_range);
}

TEST(OnlineDetectorTest, CompliantReadingsNeverFlagEvenUnderNoise) {
  // Noisy window reads of magnitude ±4 around the agreement (15..23) all
  // imply a τ below the break-even rate: every increment is negative, the
  // evidence pins at the floor, and no amount of noise can flag. This is
  // the structural margin behind the false-positive calibration.
  auto d = make();
  for (int k = 0; k < 200; ++k) {
    const int w = 15 + (k % 9);  // cycles the whole noise band
    ASSERT_EQ(d.try_observe_window(0, w), DetectStatus::kOk);
    ASSERT_FALSE(d.flagged(0)) << "stage " << k << " w=" << w;
    EXPECT_LE(d.verdict(0).evidence, 0.0);
    EXPECT_GE(d.verdict(0).evidence, d.evidence_floor() - 1e-12);
  }
  EXPECT_EQ(d.flags_raised(), 0);
}

TEST(OnlineDetectorTest, DesignCheatRateFlagsWithinTwoStages) {
  // Attempt counts at the design cheat rate τ1 cross the Wald threshold
  // almost immediately.
  auto d = make();
  const std::uint64_t slots = 200;
  int stages = 0;
  while (!d.flagged(0) && stages < 10) {
    d.observe(0, d.tau_alt() * static_cast<double>(slots), slots);
    ++stages;
  }
  EXPECT_TRUE(d.flagged(0));
  EXPECT_LE(stages, 2);
  EXPECT_EQ(d.verdict(0).flagged_at, stages - 1);
}

TEST(OnlineDetectorTest, QuarterWindowCheatFlagsWithinThreeStages) {
  // The roster's short-sighted deviant plays W*/4: its window readings
  // imply a τ well past break-even.
  auto d = make();
  int stages = 0;
  while (!d.flagged(1) && stages < 10) {
    d.observe_window(1, kW / 4);
    ++stages;
  }
  EXPECT_TRUE(d.flagged(1));
  EXPECT_LE(stages, 3);
}

TEST(OnlineDetectorTest, FlagLatchesAndFreezesEvidence) {
  auto d = make();
  while (!d.flagged(0)) d.observe_window(0, 2);
  const double at_flag = d.verdict(0).evidence;
  const int obs_at_flag = d.verdict(0).observations;
  // Subsequent compliant reads are frozen no-ops until rehabilitation.
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(d.try_observe_window(0, kW), DetectStatus::kOk);
  }
  EXPECT_TRUE(d.flagged(0));
  EXPECT_DOUBLE_EQ(d.verdict(0).evidence, at_flag);
  EXPECT_EQ(d.verdict(0).observations, obs_at_flag);
  EXPECT_EQ(d.flags_raised(), 1);
}

TEST(OnlineDetectorTest, RehabilitationClearsStateButNotTheCounter) {
  auto d = make();
  while (!d.flagged(0)) d.observe_window(0, 2);
  d.rehabilitate(0);
  EXPECT_FALSE(d.flagged(0));
  EXPECT_EQ(d.verdict(0).observations, 0);
  EXPECT_DOUBLE_EQ(d.verdict(0).evidence, 0.0);
  EXPECT_EQ(d.verdict(0).flagged_at, -1);
  // A repeat offender is re-flagged by fresh evidence...
  while (!d.flagged(0)) d.observe_window(0, 2);
  EXPECT_EQ(d.flags_raised(), 2);  // ...and the cumulative count remembers.
  // Other opponents were never touched.
  EXPECT_EQ(d.verdict(1).observations, 0);
}

TEST(OnlineDetectorTest, EvidenceFloorBoundsComplianceCredit) {
  // A long compliant streak must not bank unbounded credit: after 50
  // clean stages the evidence sits at the floor, and a subsequent cheat
  // is flagged almost as fast as from a cold start.
  auto fresh = make();
  int cold = 0;
  while (!fresh.flagged(0)) {
    fresh.observe_window(0, kW / 4);
    ++cold;
  }
  auto credited = make();
  for (int k = 0; k < 50; ++k) credited.observe_window(0, kW);
  EXPECT_NEAR(credited.verdict(0).evidence, credited.evidence_floor(), 1e-9);
  int warm = 0;
  while (!credited.flagged(0)) {
    credited.observe_window(0, kW / 4);
    ++warm;
  }
  EXPECT_LE(warm, cold + 1);
}

TEST(OnlineDetectorTest, SuspectStreakTracksPositiveIncrements) {
  auto d = make();
  d.observe_window(0, kW / 4);
  EXPECT_EQ(d.verdict(0).suspect_streak, 1);
  d.observe_window(0, kW);  // compliant read resets the streak
  EXPECT_EQ(d.verdict(0).suspect_streak, 0);
}

}  // namespace
}  // namespace smac::sim
