// False-flag calibration property of the enforcement loop (ctest -L
// detect): across seeded replications, compliant play accumulates flag
// episodes at no more than 1.5× the detector's design significance — at
// observation noise 0%, 5%, and 15% — and the deviant flag latency stays
// a few stages. The margin is structural (noisy reads of magnitude ±4
// around the agreement imply τ below the detector's break-even rate), so
// the measured count is in fact zero; the 1.5α bound is what the property
// promises, not what it measures.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "fault/fault_injector.hpp"
#include "game/equilibrium.hpp"
#include "game/reaction.hpp"
#include "game/repeated_game.hpp"
#include "parallel/replication.hpp"
#include "phy/parameters.hpp"

namespace {

using namespace smac;

constexpr int kPlayers = 6;
constexpr int kStages = 120;
constexpr int kReps = 20;
constexpr std::uint64_t kSeed = 0xca1b;

const game::StageGame& shared_game() {
  static const game::StageGame game(phy::Parameters::paper(),
                                    phy::AccessMode::kRtsCts);
  return game;
}

int agreed_window() {
  static const int w =
      game::EquilibriumFinder(shared_game(), kPlayers).efficient_cw();
  return w;
}

game::RepeatedGameResult play_enforced(
    std::vector<std::unique_ptr<game::Strategy>> pop, double noise,
    std::uint64_t seed, bool player_filter) {
  game::ReactionConfig rc;
  rc.w_agreed = agreed_window();
  game::RepeatedGameEngine engine(shared_game(), std::move(pop));
  engine.set_enforcement(rc);
  if (player_filter) {
    game::ObservationFilterConfig fc;
    fc.kind = game::FilterKind::kMedian;
    fc.window = 3;
    engine.set_observation_filter(fc);
  }
  if (noise <= 0.0) return engine.play(kStages);
  fault::FaultPlan plan;
  plan.observation.noise_probability = noise;
  plan.observation.noise_magnitude = 4;
  fault::FaultInjector injector(plan, kPlayers, seed);
  return engine.play(kStages, &injector);
}

TEST(FpCalibrationTest, CompliantFlagRateStaysUnderTheDesignBound) {
  // A population that actually holds the agreement (the SPRT's H0): the
  // per-(opponent, run) false-flag probability is designed ≤ α = 0.01, so
  // total flag episodes across reps × players must stay ≤ 1.5 × α ×
  // (reps × players) — at every noise level.
  const double alpha = game::ReactionConfig{}.detector.significance;
  const double bound = 1.5 * alpha * kReps * kPlayers;
  for (const double noise : {0.0, 0.05, 0.15}) {
    int episodes = 0;
    for (int r = 0; r < kReps; ++r) {
      auto pop = std::vector<std::unique_ptr<game::Strategy>>();
      for (int i = 0; i < kPlayers; ++i) {
        pop.push_back(
            std::make_unique<game::ConstantStrategy>(agreed_window()));
      }
      const auto result = play_enforced(
          std::move(pop), noise,
          parallel::stream_seed(kSeed, static_cast<std::uint64_t>(r)),
          /*player_filter=*/false);
      episodes += result.enforcement.episodes;
    }
    EXPECT_LE(static_cast<double>(episodes), bound)
        << "noise " << noise << ": " << episodes << " false-flag episodes";
  }
}

TEST(FpCalibrationTest, ReactiveStackStaysCleanAtModerateNoise) {
  // The recommended enforcement stack — contrite residents behind a
  // median(3) observation filter — must not trip the monitor at ≤ 5%
  // noise either: the filter absorbs isolated false-low reads before the
  // reaction rule can turn them into genuine (flaggable) window drops.
  for (const double noise : {0.0, 0.05}) {
    for (int r = 0; r < kReps; ++r) {
      const auto result = play_enforced(
          game::make_contrite_population(kPlayers, agreed_window(), 3),
          noise, parallel::stream_seed(kSeed ^ 0xf1, (std::uint64_t)r),
          /*player_filter=*/true);
      EXPECT_EQ(result.enforcement.episodes, 0)
          << "noise " << noise << " rep " << r << ": "
          << result.enforcement.summary();
    }
  }
}

TEST(FpCalibrationTest, DeviantFlagLatencyIsAFewStages) {
  // A short-sighted deviant at W*/4 among contrite residents is flagged
  // within a handful of stages in every replication, clean or noisy.
  for (const double noise : {0.0, 0.05}) {
    for (int r = 0; r < 8; ++r) {
      auto pop = game::make_contrite_population(kPlayers - 1,
                                                agreed_window(), 3);
      pop.push_back(std::make_unique<game::ShortSightedStrategy>(
          std::max(1, agreed_window() / 4)));
      const auto result = play_enforced(
          std::move(pop), noise,
          parallel::stream_seed(kSeed ^ 0xde, (std::uint64_t)r),
          /*player_filter=*/true);
      ASSERT_GT(result.enforcement.flags_raised, 0)
          << "noise " << noise << " rep " << r;
      EXPECT_GE(result.enforcement.first_flag_stage, 0);
      EXPECT_LE(result.enforcement.first_flag_stage, 5)
          << "noise " << noise << " rep " << r << ": "
          << result.enforcement.summary();
    }
  }
}

}  // namespace
