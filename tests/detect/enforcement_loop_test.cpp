// The closed enforcement loop end to end (ctest -L detect): ReactionPolicy
// semantics driven standalone, deviant unprofitability through the
// repeated-game engine, the PR 5 invasion flip under Tournament
// enforcement, and the multihop flooding variant's containment.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "fault/fault_injector.hpp"
#include "game/equilibrium.hpp"
#include "game/reaction.hpp"
#include "game/repeated_game.hpp"
#include "game/tournament.hpp"
#include "multihop/adaptive.hpp"
#include "multihop/multihop_simulator.hpp"
#include "parallel/replication.hpp"
#include "phy/parameters.hpp"

namespace {

using namespace smac;

constexpr int kPlayers = 6;

const game::StageGame& rts_game() {
  static const game::StageGame game(phy::Parameters::paper(),
                                    phy::AccessMode::kRtsCts);
  return game;
}

int agreed_window() {
  static const int w =
      game::EquilibriumFinder(rts_game(), kPlayers).efficient_cw();
  return w;
}

game::ReactionConfig make_reaction() {
  game::ReactionConfig rc;
  rc.w_agreed = agreed_window();
  return rc;
}

game::StageRecord record_with(std::vector<int> cw) {
  game::StageRecord rec;
  rec.cw = std::move(cw);
  return rec;
}

TEST(ReactionConfigTest, ValidatesEveryField) {
  EXPECT_NO_THROW(make_reaction().validate());
  auto rc = make_reaction();
  rc.w_agreed = 0;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  rc = make_reaction();
  rc.max_stage = -1;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  rc = make_reaction();
  rc.detector.significance = 0.0;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  rc = make_reaction();
  rc.min_punishment_stages = 0;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  rc = make_reaction();
  rc.max_punishment_stages = rc.min_punishment_stages - 1;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  rc = make_reaction();
  rc.penalty_margin = 0.0;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  rc = make_reaction();
  rc.punishment_w = 0;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  rc = make_reaction();
  rc.punishment_w = rc.w_agreed + 1;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  // The policy ctor re-validates and also rejects tiny populations.
  EXPECT_THROW(game::ReactionPolicy(rts_game(), make_reaction(), 1),
               std::invalid_argument);
  // The engine fails fast on installation, not at the first play().
  auto pop = game::make_tft_population(kPlayers, agreed_window());
  game::RepeatedGameEngine engine(rts_game(), std::move(pop));
  rc = make_reaction();
  rc.detector.tolerance = 10.0;  // swallows the design cheat
  EXPECT_THROW(engine.set_enforcement(rc), std::invalid_argument);
}

TEST(ReactionPolicyTest, ClosesTheLoopOnSyntheticObservations) {
  const auto rc = make_reaction();
  game::ReactionPolicy policy(rts_game(), rc, kPlayers);
  EXPECT_FALSE(policy.punishing());
  EXPECT_THROW(policy.offender(), std::logic_error);
  EXPECT_THROW(policy.punishment_window(), std::logic_error);
  EXPECT_EQ(policy.command(0, 7), 7);  // idle: decisions pass through

  // Player 3 operates W*/4; everyone else holds the agreement.
  std::vector<int> cw(kPlayers, rc.w_agreed);
  cw[3] = std::max(1, rc.w_agreed / 4);
  int stage = 0;
  while (!policy.punishing() && stage < 10) {
    policy.end_stage(record_with(cw), stage);
    ++stage;
  }
  ASSERT_TRUE(policy.punishing());
  EXPECT_LE(stage, 3);  // flag latency of the quarter-window cheat
  EXPECT_EQ(policy.offender(), 3u);
  EXPECT_EQ(policy.punishment_window(), rc.punishment_w);
  // Punishers are commanded to jam; the sanctioned offender is commanded
  // back to the agreement (meaningful for falsely-flagged compliants).
  EXPECT_EQ(policy.command(0, rc.w_agreed), rc.punishment_w);
  EXPECT_EQ(policy.command(3, cw[3]), rc.w_agreed);

  const auto& episode = policy.report().history.at(0);
  EXPECT_EQ(episode.offender, 3u);
  EXPECT_GT(episode.gain_per_stage, 0.0);
  EXPECT_GT(episode.loss_per_stage, 0.0);
  EXPECT_GE(episode.length, rc.min_punishment_stages);
  EXPECT_LE(episode.length, rc.max_punishment_stages);
  // A real deviation calibrates above the false-flag minimum.
  EXPECT_GT(episode.length, rc.min_punishment_stages);

  // Serve the sentence: the episode counts down and ends in
  // rehabilitation.
  for (int k = 0; k < episode.length; ++k) {
    ASSERT_TRUE(policy.punishing()) << "punished stage " << k;
    policy.end_stage(record_with(cw), stage + k);
  }
  EXPECT_FALSE(policy.punishing());
  const auto& report = policy.report();
  EXPECT_EQ(report.rehabilitations, 1);
  EXPECT_EQ(report.punished_stages, episode.length);
  EXPECT_EQ(report.first_flag_stage, stage - 1);
  EXPECT_TRUE(report.any());
  EXPECT_NE(report.summary(), "clean");
  EXPECT_FALSE(policy.detector().flagged(3));  // evidence cleared
}

TEST(ReactionPolicyTest, CalibrationRepaysTheEstimatedTheft) {
  // The what-if calibration prices the *total* estimated theft: per-stage
  // gain times the undetected streak, repaid with the penalty margin. A
  // blatant w = 2 cheat steals more per stage and is flagged sooner; a
  // marginal w = 8 cheat steals less per stage but for longer. Both must
  // repay: length × per-stage loss ≥ margin × per-stage gain (streak ≥ 1),
  // unless the episode cap truncates the sentence.
  const auto rc = make_reaction();
  struct Outcome {
    int first_flag = 0;
    game::PunishmentEpisode episode;
  };
  auto run = [&](int w_dev) {
    game::ReactionPolicy policy(rts_game(), rc, kPlayers);
    std::vector<int> cw(kPlayers, rc.w_agreed);
    cw[2] = w_dev;
    for (int stage = 0; stage < 40 && !policy.punishing(); ++stage) {
      policy.end_stage(record_with(cw), stage);
    }
    const auto& report = policy.report();
    EXPECT_FALSE(report.history.empty()) << "w_dev " << w_dev;
    return Outcome{report.first_flag_stage, report.history.at(0)};
  };
  const Outcome severe = run(2);
  const Outcome marginal = run(8);
  // Blatant cheats flag sooner and steal more per stage.
  EXPECT_LE(severe.first_flag, marginal.first_flag);
  EXPECT_GT(severe.episode.gain_per_stage, marginal.episode.gain_per_stage);
  for (const Outcome* o : {&severe, &marginal}) {
    EXPECT_GE(o->episode.length, rc.min_punishment_stages);
    EXPECT_LE(o->episode.length, rc.max_punishment_stages);
    const double repaid = o->episode.length * o->episode.loss_per_stage;
    const double owed = rc.penalty_margin * o->episode.gain_per_stage;
    EXPECT_TRUE(repaid >= owed ||
                o->episode.length == rc.max_punishment_stages)
        << "repaid " << repaid << " < owed " << owed;
  }
}

// Plays contrite residents (plus an optional deviant as the last player)
// with enforcement and the recommended median(3) player filter; returns
// mean per-stage utilities.
struct EnforcedRun {
  std::vector<double> per_stage;
  game::EnforcementReport enforcement;
};

EnforcedRun play_enforced(bool with_deviant, double noise,
                          std::uint64_t seed, int stages) {
  const int w = agreed_window();
  auto pop = game::make_contrite_population(
      with_deviant ? kPlayers - 1 : kPlayers, w, 3);
  if (with_deviant) {
    pop.push_back(
        std::make_unique<game::ShortSightedStrategy>(std::max(1, w / 4)));
  }
  game::RepeatedGameEngine engine(rts_game(), std::move(pop));
  engine.set_enforcement(make_reaction());
  game::ObservationFilterConfig fc;
  fc.kind = game::FilterKind::kMedian;
  fc.window = 3;
  engine.set_observation_filter(fc);
  game::RepeatedGameResult result;
  if (noise > 0.0) {
    fault::FaultPlan plan;
    plan.observation.noise_probability = noise;
    plan.observation.noise_magnitude = 4;
    fault::FaultInjector injector(plan, kPlayers, seed);
    result = engine.play(stages, &injector);
  } else {
    result = engine.play(stages);
  }
  EnforcedRun run;
  run.enforcement = result.enforcement;
  for (const double u : result.total_utility) {
    run.per_stage.push_back(u / stages);
  }
  return run;
}

TEST(EnforcementLoopTest, DeviantIsStrictlyUnprofitableUnderEnforcement) {
  // The acceptance headline: under enforcement the short-sighted deviant
  // earns strictly less per stage than a member of the enforced
  // all-compliant population (the never-deviate counterfactual) — at 0%
  // and at 5% observation noise.
  const int stages = 200;
  for (const double noise : {0.0, 0.05}) {
    const auto invaded = play_enforced(true, noise, 0xd0d0, stages);
    const auto pure = play_enforced(false, noise, 0xd0d0, stages);
    const double deviant = invaded.per_stage.back();
    const double counterfactual = pure.per_stage.front();
    EXPECT_LT(deviant, counterfactual)
        << "noise " << noise << ": " << invaded.enforcement.summary();
    // The loop actually closed: flags fired and sentences were served.
    EXPECT_GT(invaded.enforcement.episodes, 0);
    EXPECT_GT(invaded.enforcement.rehabilitations, 0);
    // Residents do better enforcing than being exploited would leave
    // them (the punishment is not self-destructive).
    EXPECT_GT(invaded.per_stage.front(), 0.0);
  }
}

TEST(EnforcementLoopTest, TournamentFlipsThePr5InvasionFinding) {
  // PR 5's headline negative result (bench_tournament, Basic access,
  // n = 5): the forgiving residents — contrite-tft — are INVADED by the
  // relentless short-sighted deviant. Installing enforcement must flip
  // that verdict without touching the strategies.
  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kBasic);
  const int n = 5;
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();
  const auto residents = game::enforcement_roster(game, n, w_star);
  const auto deviants = game::deviant_roster(w_star);
  const auto& contrite = residents.at(2);
  const auto& shortsighted = deviants.at(0);

  game::Tournament tournament(game, n, 120, 1);
  EXPECT_FALSE(tournament.resists_invasion(contrite, shortsighted));

  game::ReactionConfig rc;
  rc.w_agreed = w_star;
  tournament.set_enforcement(rc);
  ASSERT_TRUE(tournament.enforcement().has_value());
  EXPECT_TRUE(tournament.resists_invasion(contrite, shortsighted));
  // The mix outcome carries the enforcement accounting.
  const auto mix = tournament.play_mix(contrite, shortsighted, n - 1);
  EXPECT_GT(mix.enforcement.episodes, 0);

  tournament.set_enforcement(std::nullopt);
  EXPECT_FALSE(tournament.resists_invasion(contrite, shortsighted));
}

TEST(MultihopEnforcementTest, ValidatesConfig) {
  std::vector<multihop::Vec2> pos;
  for (int i = 0; i < 3; ++i) pos.push_back({i * 200.0, 0.0});
  multihop::MultihopConfig mc;
  multihop::MultihopSimulator sim(mc, multihop::Topology(pos, 250.0),
                                  {16, 16, 16});
  multihop::MultihopTftConfig tc;
  tc.slots_per_stage = 1000;
  tc.stages = 2;
  multihop::MultihopEnforcementConfig ec;
  ec.punishment_stages = 0;
  EXPECT_THROW(play_multihop_enforced(sim, nullptr, tc, ec),
               std::invalid_argument);
  ec = {};
  ec.punishment_w = 0;
  EXPECT_THROW(play_multihop_enforced(sim, nullptr, tc, ec),
               std::invalid_argument);
  ec = {};
  ec.detector.significance = 0.0;
  EXPECT_THROW(play_multihop_enforced(sim, nullptr, tc, ec),
               std::invalid_argument);
  ec = {};
  ec.compliant = {1, 1};  // wrong size
  EXPECT_THROW(play_multihop_enforced(sim, nullptr, tc, ec),
               std::invalid_argument);
}

TEST(MultihopEnforcementTest, ContainsADeviantWithoutContagion) {
  // 6-node chain, node 2 pinned at w = 2 and outside the protocol. Under
  // graph-local TFT the deviation is contagious (the whole chain matches
  // down to 2); under enforcement only the offender's neighbors ever
  // leave the agreement, and only while serving episodes.
  std::vector<multihop::Vec2> pos;
  for (int i = 0; i < 6; ++i) pos.push_back({i * 200.0, 0.0});
  const multihop::Topology topo(pos, 250.0);
  multihop::MultihopConfig mc;
  mc.seed = 9;
  const std::vector<int> seed{32, 32, 2, 32, 32, 32};
  multihop::MultihopTftConfig tc;
  tc.slots_per_stage = 15000;
  tc.stages = 24;

  multihop::MultihopSimulator tft_sim(mc, topo, seed);
  const auto tft = play_multihop_tft(tft_sim, nullptr, tc);
  ASSERT_EQ(tft.converged_cw.value_or(-1), 2);  // contagion baseline

  multihop::MultihopSimulator enf_sim(mc, topo, seed);
  multihop::MultihopEnforcementConfig ec;
  ec.compliant = {1, 1, 0, 1, 1, 1};
  const auto enforced = play_multihop_enforced(enf_sim, nullptr, tc, ec);
  EXPECT_GT(enforced.flags_raised, 0);
  EXPECT_GT(enforced.punishment_episodes, 0);
  EXPECT_GE(enforced.rehabilitations, 1);
  EXPECT_GE(enforced.punished_stages, ec.punishment_stages);

  double dev_enforced = 0.0, dev_tft = 0.0;
  for (int k = 0; k < tc.stages; ++k) {
    dev_enforced += enforced.stages[(std::size_t)k].payoff[2];
    dev_tft += tft.stages[(std::size_t)k].payoff[2];
    // Containment: non-neighbors of the offender never leave the
    // agreement; neighbors only drop to the jamming window while serving.
    for (const int i : {0, 4, 5}) {
      EXPECT_EQ(enforced.stages[(std::size_t)k].cw[(std::size_t)i], 32)
          << "stage " << k << " node " << i;
    }
    for (const int i : {1, 3}) {
      const int w = enforced.stages[(std::size_t)k].cw[(std::size_t)i];
      EXPECT_TRUE(w == 32 || w == ec.punishment_w)
          << "stage " << k << " node " << i << " w=" << w;
    }
  }
  // Deviating pays strictly worse under enforcement than under the TFT
  // contagion it exploits.
  EXPECT_LT(dev_enforced, dev_tft);

  // An honest network under the same protocol never flags.
  multihop::MultihopSimulator honest_sim(mc, topo, std::vector<int>(6, 32));
  multihop::MultihopEnforcementConfig honest_ec;
  const auto honest =
      play_multihop_enforced(honest_sim, nullptr, tc, honest_ec);
  EXPECT_EQ(honest.flags_raised, 0);
  EXPECT_EQ(honest.punishment_episodes, 0);
}

}  // namespace
