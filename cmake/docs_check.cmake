# docs_check.cmake — fail on dangling file references in the docs.
#
# Scans README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md for
# tokens that look like repo paths (src/..., bench/..., tests/..., docs/...,
# examples/...) or bench binary names (bench_foo -> bench/foo.cpp) and
# verifies each resolves to a real file, directory, or glob. Run directly:
#
#   cmake -DREPO_ROOT=/path/to/repo -P cmake/docs_check.cmake
#
# or via the `docs_check` CTest / the `docs-check` build target.
#
# Resolution rules, in order, for a path-like token:
#   * tokens starting with "build" are build-tree artifacts — skipped;
#   * a token containing "*" is a glob (docs write `src/game/deviation.*`
#     to mean the .hpp/.cpp pair) — at least one match must exist;
#   * an existing file or directory passes as-is;
#   * an extensionless token tries <token>.cpp, <token>.hpp, then <token>.*
#     (covers module mentions like `src/game/rate_game`);
#   * `bench/bench_foo` and bare `bench_foo` resolve to bench/foo.cpp
#     (the bench CMake prefixes every binary with `bench_`), falling back
#     to bench/bench_foo* for sources that carry the prefix themselves
#     (bench_common.hpp).

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "docs_check: pass -DREPO_ROOT=<repo root>")
endif()

# ROADMAP.md is deliberately out of scope: its open items name benches
# that do not exist yet.
set(_doc_files
  "${REPO_ROOT}/README.md"
  "${REPO_ROOT}/DESIGN.md"
  "${REPO_ROOT}/EXPERIMENTS.md")
file(GLOB _extra_docs "${REPO_ROOT}/docs/*.md")
list(APPEND _doc_files ${_extra_docs})

# Returns TRUE in ${out} when the path-like token resolves inside REPO_ROOT.
function(_docs_check_resolve token out)
  set(${out} FALSE PARENT_SCOPE)
  if(token MATCHES "\\*")
    file(GLOB _hits "${REPO_ROOT}/${token}")
    if(_hits)
      set(${out} TRUE PARENT_SCOPE)
    endif()
    return()
  endif()
  if(EXISTS "${REPO_ROOT}/${token}")
    set(${out} TRUE PARENT_SCOPE)
    return()
  endif()
  get_filename_component(_leaf "${token}" NAME)
  if(NOT _leaf MATCHES "\\.")  # extensionless: a module or binary mention
    foreach(_ext ".cpp" ".hpp")
      if(EXISTS "${REPO_ROOT}/${token}${_ext}")
        set(${out} TRUE PARENT_SCOPE)
        return()
      endif()
    endforeach()
    file(GLOB _hits "${REPO_ROOT}/${token}.*")
    if(_hits)
      set(${out} TRUE PARENT_SCOPE)
      return()
    endif()
    if(token MATCHES "^bench/bench_(.+)$")
      if(EXISTS "${REPO_ROOT}/bench/${CMAKE_MATCH_1}.cpp")
        set(${out} TRUE PARENT_SCOPE)
        return()
      endif()
    endif()
  endif()
endfunction()

set(_dangling "")
set(_checked 0)
foreach(_doc IN LISTS _doc_files)
  file(STRINGS "${_doc}" _lines)
  get_filename_component(_doc_name "${_doc}" NAME)
  set(_lineno 0)
  foreach(_line IN LISTS _lines)
    math(EXPR _lineno "${_lineno} + 1")
    # Anything not in the path charset (spaces, backticks, parens, commas)
    # delimits tokens, so markdown punctuation is stripped for free.
    string(REGEX MATCHALL "[A-Za-z0-9_.*/-]+" _tokens "${_line}")
    foreach(_tok IN LISTS _tokens)
      string(REGEX REPLACE "\\.+$" "" _tok "${_tok}")  # sentence-final dots
      if(_tok MATCHES "^build")
        continue()
      endif()
      set(_is_ref FALSE)
      if(_tok MATCHES "^(src|bench|tests|docs|examples)/[A-Za-z0-9_.*/-]+$")
        set(_is_ref TRUE)
      elseif(_tok MATCHES "^bench_[a-z0-9_]+$")
        # A bench binary name outside a path context.
        string(REGEX REPLACE "^bench_" "" _stem "${_tok}")
        if(EXISTS "${REPO_ROOT}/bench/${_stem}.cpp")
          math(EXPR _checked "${_checked} + 1")
          continue()
        endif()
        file(GLOB _hits "${REPO_ROOT}/bench/${_tok}*")
        if(_hits)
          math(EXPR _checked "${_checked} + 1")
          continue()
        endif()
        list(APPEND _dangling "${_doc_name}:${_lineno}: ${_tok}")
        continue()
      endif()
      if(NOT _is_ref)
        continue()
      endif()
      math(EXPR _checked "${_checked} + 1")
      _docs_check_resolve("${_tok}" _ok)
      if(NOT _ok)
        list(APPEND _dangling "${_doc_name}:${_lineno}: ${_tok}")
      endif()
    endforeach()
  endforeach()
endforeach()

if(_dangling)
  list(REMOVE_DUPLICATES _dangling)
  list(JOIN _dangling "\n  " _report)
  message(FATAL_ERROR "docs_check: dangling file references:\n  ${_report}")
endif()
message(STATUS "docs_check: ${_checked} path references resolve")
