// Fixed-size thread pool for embarrassingly parallel experiment fan-out.
//
// The pool exists to run *independent* work items — Monte-Carlo
// replications, tournament mixes, parameter-sweep points — never to
// parallelize inside a simulator. Determinism contract: the pool makes no
// ordering or placement guarantees, so any caller that wants reproducible
// results must (a) make every submitted task self-contained (own Rng, own
// simulator instance — no component may share a util::Rng across threads)
// and (b) write each task's output into a slot indexed by the task, then
// reduce in index order. parallel::ReplicationRunner packages exactly that
// pattern.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace smac::parallel {

/// Fixed set of worker threads consuming a FIFO task queue.
///
/// Tasks must not submit further work to the same pool and block on it
/// (nested for_each_index deadlocks a fully busy pool); fan-out happens at
/// one level, the experiment driver.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means default_jobs(). The count is
  /// clamped to [1, kMaxThreads].
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Job count used when callers pass 0: the SMAC_JOBS environment
  /// variable when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  static std::size_t default_jobs();

  /// Enqueues a nullary callable; the future carries its result or
  /// exception.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for every i in [0, count), distributing indices across the
  /// workers, and blocks until all complete. Indices are claimed from a
  /// shared counter, so assignment to threads is nondeterministic — fn must
  /// be safe to call concurrently for distinct indices and should write
  /// results into per-index slots. If any invocation throws, the first
  /// exception (in worker-completion order) is rethrown after all workers
  /// stop claiming new indices; some indices may then never run.
  template <class Fn>
  void for_each_index(std::size_t count, Fn&& fn) {
    if (count == 0) return;
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto failed = std::make_shared<std::atomic<bool>>(false);
    const std::size_t lanes = std::min(size(), count);
    std::vector<std::future<void>> lanes_done;
    lanes_done.reserve(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      lanes_done.push_back(submit([next, failed, count, &fn] {
        for (std::size_t i = next->fetch_add(1); i < count;
             i = next->fetch_add(1)) {
          if (failed->load(std::memory_order_relaxed)) return;
          try {
            fn(i);
          } catch (...) {
            failed->store(true, std::memory_order_relaxed);
            throw;
          }
        }
      }));
    }
    std::exception_ptr first_error;
    for (auto& done : lanes_done) {
      try {
        done.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  static constexpr std::size_t kMaxThreads = 256;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace smac::parallel
