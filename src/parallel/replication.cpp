#include "parallel/replication.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace smac::parallel {

std::uint64_t stream_seed(std::uint64_t base_seed,
                          std::uint64_t index) noexcept {
  // One SplitMix64 step over a golden-ratio-spread combination of base
  // and index. The constant on `index` keeps adjacent replications far
  // apart in the pre-mix domain; the finalizer's avalanche does the rest.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

util::Rng stream_rng(std::uint64_t base_seed, std::uint64_t index) noexcept {
  return util::Rng(stream_seed(base_seed, index));
}

std::string error_message(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kCiTarget:
      return "ci-target";
    case StopReason::kMaxReps:
      return "max-reps";
  }
  return "unknown";
}

std::string StoppingReport::summary() const {
  char buffer[320];
  const bool has_abs = target_half_width > 0.0;
  const bool has_rel = target_rel_half_width > 0.0;
  if (has_abs || has_rel) {
    char target[128];
    if (has_abs && has_rel) {
      std::snprintf(target, sizeof(target), "target %.6g or %.3g%% of |mean|",
                    target_half_width, target_rel_half_width * 100.0);
    } else if (has_abs) {
      std::snprintf(target, sizeof(target), "target %.6g", target_half_width);
    } else {
      std::snprintf(target, sizeof(target),
                    "target %.3g%% of |mean| = %.6g",
                    target_rel_half_width * 100.0,
                    target_rel_half_width * std::abs(watched_mean));
    }
    std::snprintf(buffer, sizeof(buffer),
                  "sequential stopping: %zu replications (%zu samples), "
                  "metric \"%s\" %.0f%% CI +/- %.6g (%s, stop: %s)",
                  replications, samples, metric.c_str(), confidence * 100.0,
                  achieved_half_width, target, to_string(reason));
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "fixed-N streaming: %zu replications (%zu samples), "
                  "metric \"%s\" %.0f%% CI +/- %.6g",
                  replications, samples, metric.c_str(), confidence * 100.0,
                  achieved_half_width);
  }
  return buffer;
}

namespace detail {

ResolvedStoppingRule resolve_stopping_rule(
    const StoppingRule& rule, const std::vector<std::string>& metric_names,
    std::size_t plan_replications) {
  if (metric_names.empty()) {
    throw std::invalid_argument("StoppingRule: no metrics to watch");
  }
  ResolvedStoppingRule r;
  if (rule.metric.empty()) {
    r.watched = 0;
  } else {
    std::size_t found = metric_names.size();
    for (std::size_t m = 0; m < metric_names.size(); ++m) {
      if (metric_names[m] == rule.metric) {
        found = m;
        break;
      }
    }
    if (found == metric_names.size()) {
      throw std::invalid_argument("StoppingRule: unknown metric \"" +
                                  rule.metric + "\"");
    }
    r.watched = found;
  }
  if (!(rule.confidence > 0.0) || !(rule.confidence < 1.0)) {
    throw std::invalid_argument("StoppingRule: confidence outside (0,1)");
  }
  if (!std::isfinite(rule.ci_half_width_target)) {
    throw std::invalid_argument("StoppingRule: non-finite CI target");
  }
  if (!std::isfinite(rule.ci_rel_target) || rule.ci_rel_target < 0.0) {
    throw std::invalid_argument("StoppingRule: bad relative CI target");
  }
  r.max_reps = rule.max_reps != 0 ? rule.max_reps : plan_replications;
  if (r.max_reps == 0) {
    throw std::invalid_argument("StoppingRule: zero max_reps");
  }
  r.min_reps = rule.min_reps < 2 ? 2 : rule.min_reps;
  if (r.min_reps > r.max_reps) r.min_reps = r.max_reps;
  r.batch = rule.batch_size != 0 ? rule.batch_size : kDefaultStoppingBatch;
  if (r.batch > r.max_reps) r.batch = r.max_reps;
  r.target = rule.ci_half_width_target;
  r.rel = rule.ci_rel_target;
  r.confidence = rule.confidence;
  r.z = util::normal_quantile(0.5 + 0.5 * rule.confidence);
  return r;
}

}  // namespace detail

ReplicationRunner::ReplicationRunner(ReplicationPlan plan)
    : plan_(plan),
      jobs_(plan.jobs == 0 ? ThreadPool::default_jobs() : plan.jobs) {
  if (plan_.replications == 0) {
    throw std::invalid_argument("ReplicationRunner: zero replications");
  }
  if (jobs_ > ThreadPool::kMaxThreads) jobs_ = ThreadPool::kMaxThreads;
}

}  // namespace smac::parallel
