#include "parallel/replication.hpp"

#include <stdexcept>

namespace smac::parallel {

std::uint64_t stream_seed(std::uint64_t base_seed,
                          std::uint64_t index) noexcept {
  // One SplitMix64 step over a golden-ratio-spread combination of base
  // and index. The constant on `index` keeps adjacent replications far
  // apart in the pre-mix domain; the finalizer's avalanche does the rest.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

util::Rng stream_rng(std::uint64_t base_seed, std::uint64_t index) noexcept {
  return util::Rng(stream_seed(base_seed, index));
}

ReplicationRunner::ReplicationRunner(ReplicationPlan plan)
    : plan_(plan),
      jobs_(plan.jobs == 0 ? ThreadPool::default_jobs() : plan.jobs) {
  if (plan_.replications == 0) {
    throw std::invalid_argument("ReplicationRunner: zero replications");
  }
  if (jobs_ > ThreadPool::kMaxThreads) jobs_ = ThreadPool::kMaxThreads;
}

}  // namespace smac::parallel
