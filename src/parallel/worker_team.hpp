// Scoped fork-join team of cooperating workers.
//
// ThreadPool exists for *independent* task fan-out and explicitly forbids
// use inside a simulator (its header's contract). A conservative PDES
// kernel is the opposite shape: a fixed set of long-lived workers that
// cooperate through shared synchronization (horizon barriers) for the
// duration of one engine call. run_worker_team is that primitive: fork
// `workers` threads running the same body, join them all, done.
//
// Determinism contract: the team provides *no* ordering guarantees —
// reproducible callers must make every result a pure function of their
// own seeded state (the stream_seed discipline of replication.hpp), never
// of which worker ran what when. The multihop PDES kernel
// (src/multihop/pdes.cpp) is the canonical caller.
#pragma once

#include <cstddef>
#include <functional>

namespace smac::parallel {

/// Runs body(worker) for worker = 0..workers-1 on `workers` cooperating
/// threads and blocks until every body returns. Worker 0 runs on the
/// calling thread, so workers <= 1 spawns no thread at all (the serial
/// path stays thread-free). `workers` is clamped to
/// [1, ThreadPool::kMaxThreads].
///
/// A body that throws terminates only its own worker — the team still
/// joins everyone, then rethrows the pending exception of the lowest
/// worker index (deterministic choice). Bodies that wait on each other
/// must therefore share a cancellation flag and set it before throwing,
/// or the join never completes.
void run_worker_team(std::size_t workers,
                     const std::function<void(std::size_t)>& body);

}  // namespace smac::parallel
