#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace smac::parallel {

std::size_t ThreadPool::default_jobs() {
  if (const char* env = std::getenv("SMAC_JOBS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return std::min(static_cast<std::size_t>(parsed), kMaxThreads);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min(static_cast<std::size_t>(hw), kMaxThreads);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_jobs();
  threads = std::clamp<std::size_t>(threads, 1, kMaxThreads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace smac::parallel
