// Parallel Monte-Carlo replication with deterministic per-stream seeding.
//
// Determinism contract (load-bearing; tests/parallel enforce it):
//
//   1. Replication r of an experiment with base seed B is seeded with
//      stream_seed(B, r) — a SplitMix64 mix of (B, r). The seed depends
//      only on (B, r), never on thread count, scheduling, or the order in
//      which replications happen to start.
//   2. Every replication owns all of its mutable state: its own
//      simulator(s), its own util::Rng(s) constructed from its stream
//      seed. No util::Rng — and no object holding one — may be shared
//      across threads; Rng is deliberately unsynchronized, and a shared
//      stream would make draw interleaving (hence results) depend on the
//      scheduler.
//   3. Results are stored in a slot indexed by the replication and
//      reduced in index order 0..N−1. Aggregation (util::RunningStats and
//      plain loops alike) is therefore a fixed sequence of floating-point
//      operations.
//
// (1)+(2) make each replication's output a pure function of (B, r);
// (3) makes the aggregate a pure function of the per-replication outputs.
// Together: bit-identical results for jobs=1 and jobs=N, any N.
//
// Sequential stopping (run_sequential) extends the contract: batches are
// fixed runs of consecutive indices, the stop criterion is evaluated on
// the index-ordered aggregate at batch boundaries only, and seeds stay
// stream_seed(B, r) — so the stop point is jobs-invariant and a stopped
// run's first k replications are bit-identical to a fixed-N run's.
// Reduction is streaming: rows fold into util::RunningStats as each batch
// completes (O(batch) memory), with the same flop sequence as buffering
// all rows and calling util::summarize_replications.
//
// SplitMix64 (rather than Rng::jump()) derives the streams because it is
// O(1) random access — replication 999 does not require stepping through
// the first 998 streams — and because feeding its output to Rng's own
// SplitMix64 seed expansion yields well-separated xoshiro256** states
// even for adjacent indices.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace smac::parallel {

/// Seed of replication `index` in the family rooted at `base_seed`.
/// Pure function of its arguments; distinct indices give statistically
/// independent Rng streams (SplitMix64 is a bijective mix with good
/// avalanche, and Rng re-expands the result through SplitMix64 again).
std::uint64_t stream_seed(std::uint64_t base_seed,
                          std::uint64_t index) noexcept;

/// Convenience: an Rng already seeded for replication `index`.
util::Rng stream_rng(std::uint64_t base_seed, std::uint64_t index) noexcept;

/// What a batch does when one replication throws.
enum class FailurePolicy {
  /// Rethrow the first (lowest-index) failure after the batch drains.
  kFailFast,
  /// Record the failure, keep the default-constructed result slot, and
  /// keep going; errors come back alongside the results.
  kCollect,
};

/// How to fan a batch of replications across cores.
struct ReplicationPlan {
  std::size_t replications = 1;
  std::uint64_t base_seed = 1;
  /// Worker threads; 1 runs inline on the caller, 0 means
  /// ThreadPool::default_jobs() (SMAC_JOBS env or hardware concurrency).
  std::size_t jobs = 1;
  FailurePolicy failure_policy = FailurePolicy::kFailFast;
};

/// One replication that threw instead of returning.
struct ReplicationError {
  std::size_t index = 0;
  std::string message;
};

/// what() of a captured exception, or "non-standard exception".
std::string error_message(const std::exception_ptr& error);

/// Results of a batch run under FailurePolicy::kCollect: result slots in
/// index order (failed slots default-constructed) plus the error records.
template <class R>
struct ReplicationBatch {
  std::vector<R> results;
  std::vector<ReplicationError> errors;  ///< sorted by index

  /// True when every replication returned normally.
  bool ok() const noexcept { return errors.empty(); }
  /// Whether replication `i` produced a valid result.
  bool succeeded(std::size_t i) const noexcept {
    for (const ReplicationError& e : errors) {
      if (e.index == i) return false;
    }
    return true;
  }
};

/// Sequential-stopping policy: replicate in deterministic batches until
/// the watched metric's confidence-interval half-width falls below target
/// or max_reps is exhausted. Stream seeds are unchanged — the first k
/// replications of a stopped run are bit-identical to a fixed-N run of the
/// same base seed — and the stop decision is a pure function of the
/// index-ordered aggregate, so the stop point is identical at any jobs
/// count.
struct StoppingRule {
  /// Watched metric name; empty selects the first metric.
  std::string metric;
  /// Absolute CI half-width to reach. <= 0 disables the absolute
  /// criterion; with no relative target either, the run becomes a fixed-N
  /// streaming reduction over max_reps.
  double ci_half_width_target = 0.0;
  /// Relative CI target: stop once half-width <= ci_rel_target · |running
  /// mean| of the watched metric. Composes across metrics whose scales
  /// differ by orders of magnitude (payoff rates ~1e-6 vs fractions ~1),
  /// where one absolute width cannot. <= 0 disables it; when both targets
  /// are armed, meeting *either* stops the run. A running mean of exactly
  /// zero can only satisfy the relative criterion with a zero half-width.
  double ci_rel_target = 0.0;
  /// Two-sided confidence level of the watched interval, in (0, 1).
  double confidence = 0.95;
  /// Never stop before this many replications have been executed.
  std::size_t min_reps = 2;
  /// Hard replication ceiling; 0 falls back to plan.replications.
  std::size_t max_reps = 0;
  /// Replications per batch (the stop criterion is evaluated at batch
  /// boundaries, and at most this many rows are buffered at once);
  /// 0 = kDefaultStoppingBatch.
  std::size_t batch_size = 0;
};

/// Batch size used when StoppingRule::batch_size is 0.
inline constexpr std::size_t kDefaultStoppingBatch = 32;

/// Why a sequential run stopped.
enum class StopReason {
  kCiTarget,  ///< watched half-width reached the target
  kMaxReps,   ///< replication ceiling hit (or early stopping disabled)
};

const char* to_string(StopReason reason) noexcept;

/// What a sequential (or streamed fixed-N) run actually did.
struct StoppingReport {
  std::size_t replications = 0;  ///< replication indices executed
  std::size_t samples = 0;       ///< successful rows aggregated
  std::size_t metric_index = 0;  ///< index of the watched metric
  std::string metric;            ///< name of the watched metric
  double achieved_half_width = 0.0;  ///< watched CI half-width at stop
  double target_half_width = 0.0;    ///< absolute target (0 = unarmed)
  double target_rel_half_width = 0.0;  ///< relative target (0 = unarmed)
  double watched_mean = 0.0;  ///< running mean of the watched metric
  double confidence = 0.95;
  StopReason reason = StopReason::kMaxReps;

  /// Achieved half-width relative to |mean| (infinity at mean 0).
  double achieved_rel_half_width() const noexcept {
    return watched_mean != 0.0
               ? achieved_half_width / std::abs(watched_mean)
               : std::numeric_limits<double>::infinity();
  }

  /// True when early stopping was armed and either target was reached.
  bool target_met() const noexcept {
    const bool abs_met = target_half_width > 0.0 &&
                         achieved_half_width <= target_half_width;
    const bool rel_met =
        target_rel_half_width > 0.0 &&
        achieved_half_width <= target_rel_half_width * std::abs(watched_mean);
    return abs_met || rel_met;
  }
  /// One-line human-readable account (benches print this verbatim, so it
  /// contains nothing scheduling-dependent).
  std::string summary() const;
};

/// Summary of one replicated experiment whose replications each produce a
/// row of named metrics. Rows are *not* retained: they are reduced into
/// per-metric running statistics as batches complete, so a 10^4-
/// replication study holds at most one batch of rows in memory.
struct ReplicationSummary {
  std::vector<std::string> metric_names;
  /// Across-replication mean / stddev / 95% CI / extrema per metric,
  /// aggregated in index order over the *successful* rows only.
  std::vector<util::MetricSummary> metrics;
  /// Failed replications (empty unless the plan collects failures).
  std::vector<ReplicationError> errors;
  /// Replications executed, achieved precision, and the stop reason.
  StoppingReport stopping;
  /// Largest number of result rows held in memory at any instant —
  /// bounded by the batch size, never by the replication count.
  std::size_t peak_buffered_rows = 0;
};

namespace detail {

/// StoppingRule with defaults resolved and inputs validated (throws
/// std::invalid_argument on unknown metric, bad confidence, or bad
/// targets).
struct ResolvedStoppingRule {
  std::size_t watched = 0;
  std::size_t min_reps = 2;
  std::size_t max_reps = 1;
  std::size_t batch = kDefaultStoppingBatch;
  double target = 0.0;
  double rel = 0.0;
  double confidence = 0.95;
  double z = 0.0;  ///< normal quantile of (1 + confidence) / 2
};

ResolvedStoppingRule resolve_stopping_rule(
    const StoppingRule& rule, const std::vector<std::string>& metric_names,
    std::size_t plan_replications);

}  // namespace detail

/// Fans N independent replications of a callable experiment across a
/// thread pool, honoring the determinism contract above.
class ReplicationRunner {
 public:
  explicit ReplicationRunner(ReplicationPlan plan);

  const ReplicationPlan& plan() const noexcept { return plan_; }
  /// Resolved worker count (plan.jobs with 0 already expanded).
  std::size_t jobs() const noexcept { return jobs_; }

  /// Runs fn(seed, index) for index in [0, replications) and returns the
  /// results in index order regardless of scheduling. The result type
  /// must be default-constructible. fn is invoked concurrently for
  /// distinct indices when jobs() > 1; with jobs() == 1 everything runs
  /// inline on the calling thread (no pool is created).
  ///
  /// Failure behavior follows plan().failure_policy: kFailFast propagates
  /// the first exception (remaining indices may never run); kCollect
  /// swallows per-replication failures, leaving those slots
  /// default-constructed (use run_collect to also get the error records).
  template <class Fn>
  auto run(Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::uint64_t, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::uint64_t, std::size_t>;
    if (plan_.failure_policy == FailurePolicy::kCollect) {
      return run_collect(std::forward<Fn>(fn)).results;
    }
    std::vector<R> results(plan_.replications);
    auto one = [&](std::size_t i) {
      results[i] = fn(stream_seed(plan_.base_seed, i), i);
    };
    if (jobs_ == 1 || plan_.replications <= 1) {
      for (std::size_t i = 0; i < plan_.replications; ++i) one(i);
    } else {
      ThreadPool pool(jobs_);
      pool.for_each_index(plan_.replications, one);
    }
    return results;
  }

  /// Collect-and-continue batch: every index runs to completion no matter
  /// how many throw; failures come back as ReplicationError records
  /// (sorted by index) with their result slots default-constructed.
  /// Error capture is per-index, so the batch — errors included — is as
  /// deterministic as the experiment itself.
  template <class Fn>
  auto run_collect(Fn&& fn) const -> ReplicationBatch<
      std::invoke_result_t<Fn&, std::uint64_t, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::uint64_t, std::size_t>;
    ReplicationBatch<R> batch;
    batch.results.resize(plan_.replications);
    std::vector<std::string> messages(plan_.replications);
    std::vector<std::uint8_t> failed(plan_.replications, 0);
    auto one = [&](std::size_t i) {
      try {
        batch.results[i] = fn(stream_seed(plan_.base_seed, i), i);
      } catch (const std::exception& e) {
        failed[i] = 1;
        messages[i] = e.what();
      } catch (...) {
        failed[i] = 1;
        messages[i] = "non-standard exception";
      }
    };
    if (jobs_ == 1 || plan_.replications <= 1) {
      for (std::size_t i = 0; i < plan_.replications; ++i) one(i);
    } else {
      ThreadPool pool(jobs_);
      pool.for_each_index(plan_.replications, one);
    }
    for (std::size_t i = 0; i < plan_.replications; ++i) {
      if (failed[i] != 0) batch.errors.push_back({i, std::move(messages[i])});
    }
    return batch;
  }

  /// Runs a metric-row experiment — fn(seed, index) returns one double
  /// per entry of `metric_names` — as a *streaming* reduction: rows are
  /// folded into per-metric running statistics in index order as each
  /// batch completes and then discarded, so memory stays O(batch size)
  /// regardless of the replication count. The aggregates are bit-identical
  /// to buffering every row and calling util::summarize_replications
  /// (identical flop sequence), and bit-identical at any jobs value.
  /// Under FailurePolicy::kCollect, failed replications surface in
  /// `errors` and the aggregates cover the successful rows only.
  template <class Fn>
  ReplicationSummary run_summarized(std::vector<std::string> metric_names,
                                    Fn&& fn) const {
    StoppingRule fixed;  // target 0: never stops early, streams all N
    fixed.max_reps = plan_.replications;
    return run_sequential(std::move(metric_names), fixed,
                          std::forward<Fn>(fn));
  }

  /// Sequential-stopping replication: executes deterministic batches of
  /// fn(seed, index) — seeds are stream_seed(base, index), identical to a
  /// fixed-N run — and after each batch evaluates the watched metric's
  /// CI half-width over the index-ordered aggregate, stopping as soon as
  /// the rule's target is met (never before min_reps) or max_reps is
  /// exhausted. Because batch boundaries and the aggregate are pure
  /// functions of the replication indices, the stop point, the report,
  /// and every summary are bit-identical at any jobs value; a stopped
  /// run's k replications are exactly the first k of the fixed-N run.
  /// Rows are reduced on the fly: memory is O(batch size).
  template <class Fn>
  ReplicationSummary run_sequential(std::vector<std::string> metric_names,
                                    const StoppingRule& rule,
                                    Fn&& fn) const {
    const detail::ResolvedStoppingRule r = detail::resolve_stopping_rule(
        rule, metric_names, plan_.replications);
    ReplicationSummary out;
    std::vector<util::RunningStats> acc(metric_names.size());
    std::vector<std::vector<double>> batch_rows(r.batch);
    std::vector<std::exception_ptr> batch_errors(r.batch);
    std::unique_ptr<ThreadPool> pool;
    if (jobs_ > 1 && r.max_reps > 1) pool = std::make_unique<ThreadPool>(jobs_);

    std::size_t executed = 0;
    StopReason reason = StopReason::kMaxReps;
    while (executed < r.max_reps) {
      const std::size_t count = std::min(r.batch, r.max_reps - executed);
      auto one = [&](std::size_t k) {
        batch_errors[k] = nullptr;
        try {
          const std::size_t index = executed + k;
          batch_rows[k] = fn(stream_seed(plan_.base_seed, index), index);
        } catch (...) {
          batch_errors[k] = std::current_exception();
        }
      };
      if (!pool || count <= 1) {
        for (std::size_t k = 0; k < count; ++k) one(k);
      } else {
        pool->for_each_index(count, one);
      }
      out.peak_buffered_rows = std::max(out.peak_buffered_rows, count);
      // Reduce this batch in index order, then release the rows.
      for (std::size_t k = 0; k < count; ++k) {
        if (batch_errors[k]) {
          if (plan_.failure_policy == FailurePolicy::kFailFast) {
            std::rethrow_exception(batch_errors[k]);
          }
          out.errors.push_back(
              {executed + k, error_message(batch_errors[k])});
          continue;
        }
        const std::vector<double>& row = batch_rows[k];
        if (row.size() != metric_names.size()) {
          throw std::invalid_argument(
              "run_sequential: row width != metric count");
        }
        for (std::size_t m = 0; m < row.size(); ++m) acc[m].add(row[m]);
        batch_rows[k] = {};
      }
      executed += count;
      if ((r.target > 0.0 || r.rel > 0.0) && executed >= r.min_reps &&
          acc[r.watched].count() >= 2) {
        const double half_width = acc[r.watched].ci_halfwidth(r.z);
        const bool abs_met = r.target > 0.0 && half_width <= r.target;
        const bool rel_met =
            r.rel > 0.0 &&
            half_width <= r.rel * std::abs(acc[r.watched].mean());
        if (abs_met || rel_met) {
          reason = StopReason::kCiTarget;
          break;
        }
      }
    }

    out.metrics = util::summaries_from_stats(metric_names, acc);
    out.stopping.replications = executed;
    out.stopping.samples = acc[r.watched].count();
    out.stopping.metric_index = r.watched;
    out.stopping.metric = metric_names[r.watched];
    out.stopping.achieved_half_width = acc[r.watched].ci_halfwidth(r.z);
    out.stopping.target_half_width = r.target;
    out.stopping.target_rel_half_width = r.rel;
    out.stopping.watched_mean = acc[r.watched].mean();
    out.stopping.confidence = r.confidence;
    out.stopping.reason = reason;
    out.metric_names = std::move(metric_names);
    return out;
  }

 private:
  ReplicationPlan plan_;
  std::size_t jobs_;
};

}  // namespace smac::parallel
