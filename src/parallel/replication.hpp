// Parallel Monte-Carlo replication with deterministic per-stream seeding.
//
// Determinism contract (load-bearing; tests/parallel enforce it):
//
//   1. Replication r of an experiment with base seed B is seeded with
//      stream_seed(B, r) — a SplitMix64 mix of (B, r). The seed depends
//      only on (B, r), never on thread count, scheduling, or the order in
//      which replications happen to start.
//   2. Every replication owns all of its mutable state: its own
//      simulator(s), its own util::Rng(s) constructed from its stream
//      seed. No util::Rng — and no object holding one — may be shared
//      across threads; Rng is deliberately unsynchronized, and a shared
//      stream would make draw interleaving (hence results) depend on the
//      scheduler.
//   3. Results are stored in a slot indexed by the replication and
//      reduced in index order 0..N−1. Aggregation (util::RunningStats and
//      plain loops alike) is therefore a fixed sequence of floating-point
//      operations.
//
// (1)+(2) make each replication's output a pure function of (B, r);
// (3) makes the aggregate a pure function of the per-replication outputs.
// Together: bit-identical results for jobs=1 and jobs=N, any N.
//
// SplitMix64 (rather than Rng::jump()) derives the streams because it is
// O(1) random access — replication 999 does not require stepping through
// the first 998 streams — and because feeding its output to Rng's own
// SplitMix64 seed expansion yields well-separated xoshiro256** states
// even for adjacent indices.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace smac::parallel {

/// Seed of replication `index` in the family rooted at `base_seed`.
/// Pure function of its arguments; distinct indices give statistically
/// independent Rng streams (SplitMix64 is a bijective mix with good
/// avalanche, and Rng re-expands the result through SplitMix64 again).
std::uint64_t stream_seed(std::uint64_t base_seed,
                          std::uint64_t index) noexcept;

/// Convenience: an Rng already seeded for replication `index`.
util::Rng stream_rng(std::uint64_t base_seed, std::uint64_t index) noexcept;

/// What a batch does when one replication throws.
enum class FailurePolicy {
  /// Rethrow the first (lowest-index) failure after the batch drains.
  kFailFast,
  /// Record the failure, keep the default-constructed result slot, and
  /// keep going; errors come back alongside the results.
  kCollect,
};

/// How to fan a batch of replications across cores.
struct ReplicationPlan {
  std::size_t replications = 1;
  std::uint64_t base_seed = 1;
  /// Worker threads; 1 runs inline on the caller, 0 means
  /// ThreadPool::default_jobs() (SMAC_JOBS env or hardware concurrency).
  std::size_t jobs = 1;
  FailurePolicy failure_policy = FailurePolicy::kFailFast;
};

/// One replication that threw instead of returning.
struct ReplicationError {
  std::size_t index = 0;
  std::string message;
};

/// Results of a batch run under FailurePolicy::kCollect: result slots in
/// index order (failed slots default-constructed) plus the error records.
template <class R>
struct ReplicationBatch {
  std::vector<R> results;
  std::vector<ReplicationError> errors;  ///< sorted by index

  /// True when every replication returned normally.
  bool ok() const noexcept { return errors.empty(); }
  /// Whether replication `i` produced a valid result.
  bool succeeded(std::size_t i) const noexcept {
    for (const ReplicationError& e : errors) {
      if (e.index == i) return false;
    }
    return true;
  }
};

/// Summary of one replicated experiment whose replications each produce a
/// row of named metrics.
struct ReplicationSummary {
  std::vector<std::string> metric_names;
  /// rows[r][m]: metric m of replication r (index order). Under
  /// FailurePolicy::kCollect a failed replication's row is all-NaN.
  std::vector<std::vector<double>> rows;
  /// Across-replication mean / stddev / 95% CI / extrema per metric,
  /// aggregated over the *successful* rows only.
  std::vector<util::MetricSummary> metrics;
  /// Failed replications (empty unless the plan collects failures).
  std::vector<ReplicationError> errors;
};

/// Fans N independent replications of a callable experiment across a
/// thread pool, honoring the determinism contract above.
class ReplicationRunner {
 public:
  explicit ReplicationRunner(ReplicationPlan plan);

  const ReplicationPlan& plan() const noexcept { return plan_; }
  /// Resolved worker count (plan.jobs with 0 already expanded).
  std::size_t jobs() const noexcept { return jobs_; }

  /// Runs fn(seed, index) for index in [0, replications) and returns the
  /// results in index order regardless of scheduling. The result type
  /// must be default-constructible. fn is invoked concurrently for
  /// distinct indices when jobs() > 1; with jobs() == 1 everything runs
  /// inline on the calling thread (no pool is created).
  ///
  /// Failure behavior follows plan().failure_policy: kFailFast propagates
  /// the first exception (remaining indices may never run); kCollect
  /// swallows per-replication failures, leaving those slots
  /// default-constructed (use run_collect to also get the error records).
  template <class Fn>
  auto run(Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::uint64_t, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::uint64_t, std::size_t>;
    if (plan_.failure_policy == FailurePolicy::kCollect) {
      return run_collect(std::forward<Fn>(fn)).results;
    }
    std::vector<R> results(plan_.replications);
    auto one = [&](std::size_t i) {
      results[i] = fn(stream_seed(plan_.base_seed, i), i);
    };
    if (jobs_ == 1 || plan_.replications <= 1) {
      for (std::size_t i = 0; i < plan_.replications; ++i) one(i);
    } else {
      ThreadPool pool(jobs_);
      pool.for_each_index(plan_.replications, one);
    }
    return results;
  }

  /// Collect-and-continue batch: every index runs to completion no matter
  /// how many throw; failures come back as ReplicationError records
  /// (sorted by index) with their result slots default-constructed.
  /// Error capture is per-index, so the batch — errors included — is as
  /// deterministic as the experiment itself.
  template <class Fn>
  auto run_collect(Fn&& fn) const -> ReplicationBatch<
      std::invoke_result_t<Fn&, std::uint64_t, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::uint64_t, std::size_t>;
    ReplicationBatch<R> batch;
    batch.results.resize(plan_.replications);
    std::vector<std::string> messages(plan_.replications);
    std::vector<std::uint8_t> failed(plan_.replications, 0);
    auto one = [&](std::size_t i) {
      try {
        batch.results[i] = fn(stream_seed(plan_.base_seed, i), i);
      } catch (const std::exception& e) {
        failed[i] = 1;
        messages[i] = e.what();
      } catch (...) {
        failed[i] = 1;
        messages[i] = "non-standard exception";
      }
    };
    if (jobs_ == 1 || plan_.replications <= 1) {
      for (std::size_t i = 0; i < plan_.replications; ++i) one(i);
    } else {
      ThreadPool pool(jobs_);
      pool.for_each_index(plan_.replications, one);
    }
    for (std::size_t i = 0; i < plan_.replications; ++i) {
      if (failed[i] != 0) batch.errors.push_back({i, std::move(messages[i])});
    }
    return batch;
  }

  /// Runs a metric-row experiment — fn(seed, index) returns one double
  /// per entry of `metric_names` — and aggregates mean / stddev / 95% CI
  /// per metric across replications (in index order, so the aggregate is
  /// itself deterministic). Under FailurePolicy::kCollect, failed
  /// replications surface in `errors`, their rows become all-NaN, and the
  /// aggregates cover the successful rows only.
  template <class Fn>
  ReplicationSummary run_summarized(std::vector<std::string> metric_names,
                                    Fn&& fn) const {
    ReplicationSummary summary;
    if (plan_.failure_policy == FailurePolicy::kCollect) {
      auto batch = run_collect(std::forward<Fn>(fn));
      summary.rows = std::move(batch.results);
      summary.errors = std::move(batch.errors);
      std::vector<std::vector<double>> good;
      good.reserve(summary.rows.size());
      std::size_t next_error = 0;
      for (std::size_t i = 0; i < summary.rows.size(); ++i) {
        if (next_error < summary.errors.size() &&
            summary.errors[next_error].index == i) {
          ++next_error;
          summary.rows[i].assign(metric_names.size(),
                                 std::numeric_limits<double>::quiet_NaN());
        } else {
          good.push_back(summary.rows[i]);
        }
      }
      summary.metrics = util::summarize_replications(metric_names, good);
    } else {
      summary.rows = run(std::forward<Fn>(fn));
      summary.metrics =
          util::summarize_replications(metric_names, summary.rows);
    }
    summary.metric_names = std::move(metric_names);
    return summary;
  }

 private:
  ReplicationPlan plan_;
  std::size_t jobs_;
};

}  // namespace smac::parallel
