#include "parallel/worker_team.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace smac::parallel {

void run_worker_team(std::size_t workers,
                     const std::function<void(std::size_t)>& body) {
  workers = std::clamp<std::size_t>(workers, 1, ThreadPool::kMaxThreads);
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    threads.emplace_back([&body, &errors, w] {
      try {
        body(w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  try {
    body(0);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace smac::parallel
