// Fault scenario description: what goes wrong, when, and how often.
//
// MANETs do not run clean: nodes crash and rejoin (churn), the channel
// loses packets in bursts rather than i.i.d. (Gilbert–Elliott episodes),
// and the promiscuous observations that TFT/GTFT and the misbehavior
// detector rely on go missing or arrive garbled. A FaultPlan is the
// declarative description of one such stress scenario — scripted events
// plus stochastic rates — consumed by fault::FaultInjector (stage-driven
// engines) and the slot-driven simulators sim::Simulator and
// multihop::MultihopSimulator (via SlotFaultPlan). Plans are
// plain data: copying one into every replication is how fault scenarios
// stay deterministic under parallel fan-out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smac::fault {

/// What a scripted event does to its target node.
enum class FaultKind {
  kCrash,  ///< node leaves: stops transmitting, invisible to observers
  kJoin,   ///< node (re)joins with its previous configuration
};

const char* to_string(FaultKind kind) noexcept;

/// One scripted stage-indexed event (repeated-game / multihop engines).
struct StageEvent {
  int stage = 0;
  std::size_t node = 0;
  FaultKind kind = FaultKind::kCrash;
};

/// One scripted slot-indexed event (slot-level simulators; `slot` counts
/// from simulator construction, across measurement windows).
struct SlotEvent {
  std::uint64_t slot = 0;
  std::size_t node = 0;
  FaultKind kind = FaultKind::kCrash;
};

/// Random node churn: per-stage Bernoulli rates.
struct ChurnConfig {
  double crash_rate = 0.0;    ///< P(online node crashes this stage)
  double recover_rate = 0.0;  ///< P(crashed node rejoins this stage)

  bool enabled() const noexcept { return crash_rate > 0.0; }
};

/// Two-state Gilbert–Elliott bursty-loss channel. In the Good state the
/// base packet_error_rate applies unchanged; in the Bad state an extra
/// loss probability `per_bad` is layered on top:
///   PER_eff = 1 − (1 − base)(1 − per_bad).
/// Mean episode lengths are 1/p_good_to_bad and 1/p_bad_to_good steps
/// (stages for the analytical engines, channel slots for the simulator).
struct GilbertElliottConfig {
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double per_bad = 0.0;

  bool enabled() const noexcept {
    return p_good_to_bad > 0.0 && per_bad > 0.0;
  }
};

/// Imperfect observation of other nodes' contention windows (the
/// promiscuous-mode assumption of paper §IV, relaxed). Loss keeps the
/// observer's previous belief (stale data); noise perturbs the observed
/// window by up to ±noise_magnitude (clamped to >= 1).
struct ObservationFaultConfig {
  double loss_probability = 0.0;
  double noise_probability = 0.0;
  int noise_magnitude = 1;

  bool enabled() const noexcept {
    return loss_probability > 0.0 || noise_probability > 0.0;
  }
};

/// Complete stage-driven fault scenario.
struct FaultPlan {
  std::vector<StageEvent> scripted;
  ChurnConfig churn;
  GilbertElliottConfig channel;
  ObservationFaultConfig observation;

  bool empty() const noexcept {
    return scripted.empty() && !churn.enabled() && !channel.enabled() &&
           !observation.enabled();
  }

  /// Throws std::invalid_argument on out-of-range rates/probabilities.
  void validate() const;
};

/// Slot-driven fault scenario for the slot-level simulators (single-hop
/// sim::Simulator and spatial multihop::MultihopSimulator).
struct SlotFaultPlan {
  std::vector<SlotEvent> events;
  GilbertElliottConfig channel;

  bool empty() const noexcept {
    return events.empty() && !channel.enabled();
  }

  void validate() const;
};

}  // namespace smac::fault
