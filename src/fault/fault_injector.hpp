// Deterministic execution of a FaultPlan against a stage-driven engine.
//
// A FaultInjector owns the mutable fault state of ONE run: which nodes
// are online, which channel state the Gilbert–Elliott chain is in, and
// the RNG streams that drive stochastic events. Engines call
// begin_stage(k) once per stage (in order) and then query the injector;
// strategies' views of opponents pass through observe_cw().
//
// Determinism contract (the same one as src/parallel/replication.hpp):
// every stochastic concern draws from its own util::Rng derived via
// parallel::stream_seed(seed, concern-index), so the full fault
// trajectory is a pure function of (plan, node_count, seed) — never of
// thread count or scheduling. Replicated fault experiments construct one
// injector per replication from that replication's stream seed and stay
// bit-identical at any --jobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/rng.hpp"

namespace smac::fault {

/// The two-state bursty-loss chain, advanced one step at a time.
class GilbertElliottChannel {
 public:
  GilbertElliottChannel(GilbertElliottConfig config, util::Rng rng) noexcept
      : config_(config), rng_(rng) {}

  /// Advances one step (stage or slot). No-op when the config is disabled.
  void step() noexcept {
    if (!config_.enabled()) return;
    if (bad_) {
      if (rng_.bernoulli(config_.p_bad_to_good)) bad_ = false;
    } else {
      if (rng_.bernoulli(config_.p_good_to_bad)) bad_ = true;
    }
  }

  bool bad() const noexcept { return bad_; }

  /// PER_eff for the current state layered on `base_per`.
  double effective_per(double base_per) const noexcept {
    if (!bad_) return base_per;
    return 1.0 - (1.0 - base_per) * (1.0 - config_.per_bad);
  }

 private:
  GilbertElliottConfig config_;
  util::Rng rng_;
  bool bad_ = false;
};

/// One observation as seen through the fault model.
struct Observation {
  int cw = 1;
  bool lost = false;
  bool noisy = false;
};

class FaultInjector {
 public:
  /// Validates the plan (throws std::invalid_argument on bad rates or a
  /// scripted event naming a node >= node_count).
  FaultInjector(FaultPlan plan, std::size_t node_count, std::uint64_t seed);

  const FaultPlan& plan() const noexcept { return plan_; }
  std::size_t node_count() const noexcept { return online_.size(); }

  /// Advances fault state into stage `stage`: applies scripted events,
  /// draws churn crashes/recoveries (node-index order, so the draw
  /// sequence is fixed), and steps the channel chain. Stages must be
  /// visited in increasing order starting at 0; rewinding throws.
  void begin_stage(int stage);

  int stage() const noexcept { return stage_; }
  bool online(std::size_t node) const { return online_.at(node) != 0; }
  const std::vector<std::uint8_t>& online_mask() const noexcept {
    return online_;
  }
  std::size_t online_count() const noexcept;

  bool channel_bad() const noexcept { return channel_.bad(); }
  /// This stage's effective PER layered on the engine's base PER.
  double effective_per(double base_per) const noexcept {
    return channel_.effective_per(base_per);
  }

  /// Passes one contention-window observation through the loss/noise
  /// model. `fallback_cw` is the observer's previous belief, used when
  /// the observation is lost. Draw order is the caller's loop order;
  /// single-threaded engines therefore stay deterministic.
  Observation observe_cw(int true_cw, int fallback_cw);

  // Cumulative event counters (since construction).
  int crash_events() const noexcept { return crash_events_; }
  int join_events() const noexcept { return join_events_; }
  std::uint64_t lost_observations() const noexcept {
    return lost_observations_;
  }
  std::uint64_t noisy_observations() const noexcept {
    return noisy_observations_;
  }
  /// Stage of the most recent topology fault (crash/join), −1 if none.
  int last_fault_stage() const noexcept { return last_fault_stage_; }

 private:
  void set_online(std::size_t node, bool up);

  FaultPlan plan_;
  std::vector<std::uint8_t> online_;
  util::Rng churn_rng_;
  util::Rng obs_rng_;
  GilbertElliottChannel channel_;
  int stage_ = -1;
  int crash_events_ = 0;
  int join_events_ = 0;
  std::uint64_t lost_observations_ = 0;
  std::uint64_t noisy_observations_ = 0;
  int last_fault_stage_ = -1;
};

}  // namespace smac::fault
