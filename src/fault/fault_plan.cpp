#include "fault/fault_plan.hpp"

#include <stdexcept>
#include <string>

namespace smac::fault {

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument(std::string(what) + " outside [0,1]");
  }
}

void check_channel(const GilbertElliottConfig& channel) {
  check_probability(channel.p_good_to_bad, "GilbertElliott p_good_to_bad");
  check_probability(channel.p_bad_to_good, "GilbertElliott p_bad_to_good");
  if (!(channel.per_bad >= 0.0) || !(channel.per_bad < 1.0)) {
    throw std::invalid_argument("GilbertElliott per_bad outside [0,1)");
  }
  if (channel.enabled() && channel.p_bad_to_good <= 0.0) {
    throw std::invalid_argument(
        "GilbertElliott: bad state must be escapable (p_bad_to_good > 0)");
  }
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kJoin: return "join";
  }
  return "unknown";
}

void FaultPlan::validate() const {
  check_probability(churn.crash_rate, "ChurnConfig crash_rate");
  check_probability(churn.recover_rate, "ChurnConfig recover_rate");
  check_channel(channel);
  check_probability(observation.loss_probability,
                    "ObservationFaultConfig loss_probability");
  check_probability(observation.noise_probability,
                    "ObservationFaultConfig noise_probability");
  if (observation.noise_magnitude < 0 ||
      (observation.noise_probability > 0.0 &&
       observation.noise_magnitude < 1)) {
    throw std::invalid_argument(
        "ObservationFaultConfig noise_magnitude must be >= 1 when noise "
        "is enabled");
  }
  for (const StageEvent& e : scripted) {
    if (e.stage < 0) throw std::invalid_argument("StageEvent stage < 0");
  }
}

void SlotFaultPlan::validate() const { check_channel(channel); }

}  // namespace smac::fault
