#include "fault/degradation.hpp"

#include <algorithm>
#include <sstream>

namespace smac::fault {

bool DegradationReport::clean() const noexcept {
  return degraded_stages == 0 && failed_stages == 0 && reused_stages == 0 &&
         crash_events == 0 && join_events == 0 && lost_observations == 0 &&
         noisy_observations == 0;
}

void DegradationReport::merge(const DegradationReport& other) {
  stages += other.stages;
  degraded_stages += other.degraded_stages;
  failed_stages += other.failed_stages;
  reused_stages += other.reused_stages;
  crash_events += other.crash_events;
  join_events += other.join_events;
  lost_observations += other.lost_observations;
  noisy_observations += other.noisy_observations;
  last_fault_stage = std::max(last_fault_stage, other.last_fault_stage);
  incidents.insert(incidents.end(), other.incidents.begin(),
                   other.incidents.end());
}

std::string DegradationReport::summary() const {
  std::ostringstream os;
  os << stages << " stages: "
     << (stages - degraded_stages - failed_stages) << " converged, "
     << degraded_stages << " degraded, " << failed_stages << " failed ("
     << reused_stages << " reused)";
  if (crash_events || join_events) {
    os << "; " << crash_events << " crashes, " << join_events << " joins";
  }
  if (lost_observations || noisy_observations) {
    os << "; " << lost_observations << " lost / " << noisy_observations
       << " noisy observations";
  }
  if (last_fault_stage >= 0) {
    os << "; last fault at stage " << last_fault_stage;
  }
  return os.str();
}

}  // namespace smac::fault
