#include "fault/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/replication.hpp"

namespace smac::fault {

namespace {

// Sub-stream indices of the injector's seed family. Distinct constants
// keep churn, channel, and observation draws on independent streams, so
// enabling one concern never perturbs another's trajectory.
constexpr std::uint64_t kChurnStream = 0xc1;
constexpr std::uint64_t kChannelStream = 0xc2;
constexpr std::uint64_t kObservationStream = 0xc3;

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::size_t node_count,
                             std::uint64_t seed)
    : plan_(std::move(plan)),
      online_(node_count, 1),
      churn_rng_(parallel::stream_rng(seed, kChurnStream)),
      obs_rng_(parallel::stream_rng(seed, kObservationStream)),
      channel_(plan_.channel, parallel::stream_rng(seed, kChannelStream)) {
  if (node_count == 0) {
    throw std::invalid_argument("FaultInjector: node_count == 0");
  }
  plan_.validate();
  for (const StageEvent& e : plan_.scripted) {
    if (e.node >= node_count) {
      throw std::invalid_argument("FaultInjector: scripted event node index");
    }
  }
  // Scripted events apply in (stage, declaration) order; stable sort keeps
  // same-stage events in the order the plan listed them.
  std::stable_sort(plan_.scripted.begin(), plan_.scripted.end(),
                   [](const StageEvent& a, const StageEvent& b) {
                     return a.stage < b.stage;
                   });
}

std::size_t FaultInjector::online_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(online_.begin(), online_.end(), std::uint8_t{1}));
}

void FaultInjector::set_online(std::size_t node, bool up) {
  if ((online_[node] != 0) == up) return;
  online_[node] = up ? 1 : 0;
  if (up) {
    ++join_events_;
  } else {
    ++crash_events_;
  }
  last_fault_stage_ = stage_;
}

void FaultInjector::begin_stage(int stage) {
  if (stage <= stage_) {
    throw std::invalid_argument("FaultInjector: stages must advance");
  }
  // Advance every skipped stage too, so an engine that samples stages
  // sparsely still sees the same trajectory as one visiting each stage.
  while (stage_ < stage) {
    ++stage_;
    for (const StageEvent& e : plan_.scripted) {
      if (e.stage != stage_) continue;
      set_online(e.node, e.kind == FaultKind::kJoin);
    }
    if (plan_.churn.enabled() || plan_.churn.recover_rate > 0.0) {
      for (std::size_t i = 0; i < online_.size(); ++i) {
        if (online_[i] != 0) {
          if (churn_rng_.bernoulli(plan_.churn.crash_rate)) {
            set_online(i, false);
          }
        } else if (churn_rng_.bernoulli(plan_.churn.recover_rate)) {
          set_online(i, true);
        }
      }
    }
    channel_.step();
  }
}

Observation FaultInjector::observe_cw(int true_cw, int fallback_cw) {
  Observation obs;
  obs.cw = true_cw;
  if (!plan_.observation.enabled()) return obs;
  if (plan_.observation.loss_probability > 0.0 &&
      obs_rng_.bernoulli(plan_.observation.loss_probability)) {
    ++lost_observations_;
    obs.cw = std::max(1, fallback_cw);
    obs.lost = true;
    return obs;
  }
  if (plan_.observation.noise_probability > 0.0 &&
      obs_rng_.bernoulli(plan_.observation.noise_probability)) {
    const int magnitude = plan_.observation.noise_magnitude;
    const int delta = static_cast<int>(
        obs_rng_.uniform_int(-magnitude, magnitude));
    obs.cw = std::max(1, true_cw + delta);
    obs.noisy = obs.cw != true_cw;
    if (obs.noisy) ++noisy_observations_;
  }
  return obs;
}

}  // namespace smac::fault
