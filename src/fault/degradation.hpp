// Accounting of everything that did NOT go cleanly in a run.
//
// Graceful degradation is only useful if it is visible: a sweep that
// silently papered over failed solves would report equilibria that were
// never actually computed. Every fault-aware engine therefore carries a
// DegradationReport in its result — how many stages solved degraded or
// failed, how many reused the last converged payoffs, what topology and
// observation faults fired — and batch drivers merge the per-run reports
// into one summary line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytical/fixed_point_solver.hpp"

namespace smac::fault {

/// One non-clean stage: what the solver reported and what the engine did.
struct StageIncident {
  int stage = 0;
  analytical::SolveStatus status = analytical::SolveStatus::kDegraded;
  double residual = 0.0;
  int retries = 0;
  /// Payoffs were substituted from the last converged stage.
  bool reused_last_converged = false;
};

struct DegradationReport {
  int stages = 0;           ///< stages played in total
  int degraded_stages = 0;  ///< solver returned kDegraded
  int failed_stages = 0;    ///< solver returned kFailed
  int reused_stages = 0;    ///< payoffs reused from the last good stage
  int crash_events = 0;
  int join_events = 0;
  std::uint64_t lost_observations = 0;
  std::uint64_t noisy_observations = 0;
  /// Stage of the most recent crash/join, −1 if none fired.
  int last_fault_stage = -1;
  /// Non-clean stages only (bounded by degraded + failed counts).
  std::vector<StageIncident> incidents;

  /// True when every stage solved converged and no fault fired.
  bool clean() const noexcept;

  /// Folds `other` into this report (counters add; last_fault_stage takes
  /// the max; incidents concatenate in call order).
  void merge(const DegradationReport& other);

  /// One human-readable line, e.g.
  /// "120 stages: 118 converged, 2 degraded, 0 failed (0 reused); ...".
  std::string summary() const;
};

}  // namespace smac::fault
