// Statistical detection of contention-window misbehavior.
//
// The paper leans on Kyasanur & Vaidya [3] for "detection and handling of
// MAC layer misbehavior"; this module implements the statistical core of
// such a detector. Under a network-wide agreement to operate at window
// W_agreed (e.g., the efficient NE broadcast by the §V.C search), every
// compliant node's attempt count over S observed channel slots is
// Binomial(S, τ̂) with τ̂ the homogeneous-model transmission probability.
// A node transmitting significantly more often than that — one-sided
// binomial test, normal approximation — is flagged as cheating.
//
// The detector runs on exactly what a promiscuous listener can count
// (per-node attempts and total slots), so it composes with the GTFT
// runtime: flag first, punish second, instead of TFT's hair-trigger
// matching.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/online_detector.hpp"
#include "sim/simulator.hpp"

namespace smac::sim {

struct DetectorConfig {
  /// One-sided false-positive probability per node and test.
  double significance = 0.01;
  /// Extra tolerance on the expected τ (fraction); absorbs the mean-field
  /// model error so borderline-compliant nodes are not flagged. 0.05 ≈
  /// "5% over the nominal rate is still fine".
  double tolerance = 0.05;
};

struct MisbehaviorVerdict {
  double tau_expected = 0.0;  ///< compliant per-slot attempt probability
  double tau_observed = 0.0;
  double z_score = 0.0;       ///< standardized excess attempt rate
  bool flagged = false;       ///< z > z_{1−significance}
};

/// Result of the non-throwing detection entry point. `verdicts` is empty
/// unless status == DetectStatus::kOk.
struct TryDetectResult {
  std::vector<MisbehaviorVerdict> verdicts;
  DetectStatus status = DetectStatus::kOk;

  bool ok() const noexcept { return status == DetectStatus::kOk; }
};

/// Tests every node in `observed` against the compliance hypothesis
/// "configured window = w_agreed" (homogeneous model with
/// observed.node.size() players, backoff stage m). Throws on empty
/// observations or invalid configuration.
std::vector<MisbehaviorVerdict> detect_misbehavior(
    const SimResult& observed, int w_agreed, int max_stage,
    const DetectorConfig& config = {});

/// Non-throwing form of detect_misbehavior, following the
/// analytical::SolveStatus convention: empty observations, w_agreed < 1,
/// max_stage < 0, or an out-of-range configuration (significance outside
/// (0,1) or too extreme to represent 1 − α in double, negative or
/// non-finite tolerance) yield DetectStatus::kInvalidInput with no
/// verdicts instead of a throw. A tolerance that pushes the tolerated τ
/// to ≥ 1 is valid input: no observable rate exceeds it, so every verdict
/// is unflagged (z clamped at 0) rather than NaN.
TryDetectResult try_detect_misbehavior(const SimResult& observed,
                                       int w_agreed, int max_stage,
                                       const DetectorConfig& config = {});

/// Sentinel returned by expected_detection_slots when the required sample
/// size is not representable (detection practically impossible at the
/// requested power/significance — e.g. a vanishing excess rate or an α
/// too small for double precision).
inline constexpr std::uint64_t kDetectionSlotsCap =
    std::numeric_limits<std::uint64_t>::max();

/// Number of observed slots needed to flag a cheater at w_cheat (vs
/// agreement w_agreed) with probability `power`, using the standard
/// two-sigma sample-size formula
///   S = ((z_{1−α}·σ_0 + z_{power}·σ_1) / (τ_cheat − τ_tolerated))²
/// with σ² the Bernoulli variances under the null and the cheat. Returns
/// 0 when the "cheat" does not raise τ past the tolerance (no detectable
/// signal — e.g. within-tolerance, marginal, or upward deviations,
/// including every w_cheat >= w_agreed). Boundary-hugging `power` or
/// `significance` values whose quantiles blow the formula past what a
/// uint64 can hold return kDetectionSlotsCap instead of a NaN/overflow
/// cast (which is undefined behavior).
std::uint64_t expected_detection_slots(int w_agreed, int w_cheat, int n,
                                       int max_stage,
                                       const DetectorConfig& config = {},
                                       double power = 0.9);

}  // namespace smac::sim
