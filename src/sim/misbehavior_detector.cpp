#include "sim/misbehavior_detector.hpp"

#include <cmath>
#include <stdexcept>

#include "analytical/backoff_chain.hpp"
#include "analytical/fixed_point_solver.hpp"
#include "util/stats.hpp"

namespace smac::sim {

namespace {

// Significance values below this collapse 1 − α to 1.0 in double, making
// the normal quantile (and Wald thresholds) unrepresentable.
constexpr double kMinRepresentableRate = 1e-12;

bool config_valid(const DetectorConfig& config) noexcept {
  return config.significance > kMinRepresentableRate &&
         config.significance < 1.0 - kMinRepresentableRate &&
         config.tolerance >= 0.0 && std::isfinite(config.tolerance);
}

void validate(const DetectorConfig& config) {
  if (!(config.significance > 0.0) || !(config.significance < 1.0)) {
    throw std::invalid_argument("detector: significance outside (0,1)");
  }
  if (config.tolerance < 0.0) {
    throw std::invalid_argument("detector: negative tolerance");
  }
  if (!config_valid(config)) {
    throw std::invalid_argument("detector: configuration not representable");
  }
}

}  // namespace

TryDetectResult try_detect_misbehavior(const SimResult& observed,
                                       int w_agreed, int max_stage,
                                       const DetectorConfig& config) {
  TryDetectResult result;
  if (!config_valid(config) || observed.slots == 0 ||
      observed.node.empty() || w_agreed < 1 || max_stage < 0) {
    result.status = DetectStatus::kInvalidInput;
    return result;
  }
  const int n = static_cast<int>(observed.node.size());
  const auto compliant =
      analytical::try_homogeneous_tau(w_agreed, n, max_stage);
  if (!analytical::usable(compliant.diagnostics.status)) {
    result.status = DetectStatus::kInvalidInput;
    return result;
  }
  const double tau_compliant = compliant.tau;
  // A tolerance that tolerates more than certainty flags nobody; clamping
  // keeps the variance non-negative instead of sending z through a NaN.
  const double tau_tolerated =
      std::min(tau_compliant * (1.0 + config.tolerance), 1.0);
  const double z_alpha = util::normal_quantile(1.0 - config.significance);
  const auto slots = static_cast<double>(observed.slots);
  const double stddev =
      std::sqrt(tau_tolerated * (1.0 - tau_tolerated) / slots);

  result.verdicts.resize(observed.node.size());
  for (std::size_t i = 0; i < result.verdicts.size(); ++i) {
    MisbehaviorVerdict& v = result.verdicts[i];
    v.tau_expected = tau_compliant;
    v.tau_observed =
        static_cast<double>(observed.node[i].attempts) / slots;
    v.z_score = stddev > 0.0
                    ? (v.tau_observed - tau_tolerated) / stddev
                    : 0.0;
    v.flagged = v.z_score > z_alpha;
  }
  return result;
}

std::vector<MisbehaviorVerdict> detect_misbehavior(
    const SimResult& observed, int w_agreed, int max_stage,
    const DetectorConfig& config) {
  validate(config);
  if (observed.slots == 0 || observed.node.empty()) {
    throw std::invalid_argument("detect_misbehavior: empty observation");
  }
  if (w_agreed < 1) {
    throw std::invalid_argument("detect_misbehavior: w_agreed < 1");
  }
  auto result = try_detect_misbehavior(observed, w_agreed, max_stage, config);
  if (!result.ok()) {
    throw std::invalid_argument("detect_misbehavior: invalid input");
  }
  return std::move(result.verdicts);
}

std::uint64_t expected_detection_slots(int w_agreed, int w_cheat, int n,
                                       int max_stage,
                                       const DetectorConfig& config,
                                       double power) {
  validate(config);
  if (w_agreed < 1 || w_cheat < 1 || n < 2) {
    throw std::invalid_argument("expected_detection_slots: bad arguments");
  }
  if (!(power > 0.0) || !(power < 1.0)) {
    throw std::invalid_argument("expected_detection_slots: power outside (0,1)");
  }
  const double tau_compliant =
      analytical::homogeneous_tau(w_agreed, n, max_stage);
  const double tau_tolerated =
      std::min(tau_compliant * (1.0 + config.tolerance), 1.0);

  // The cheater's τ against n−1 compliant opponents: solve its chain with
  // the collision feedback of the compliant crowd.
  std::vector<int> profile(static_cast<std::size_t>(n), w_agreed);
  profile[0] = w_cheat;
  const auto state = analytical::solve_network(profile, max_stage);
  const double tau_cheat = state.tau[0];
  if (tau_cheat <= tau_tolerated) return 0;  // no detectable excess

  // `power` survived the (0,1) check, but values one ulp from 1 still
  // produce quantiles (and a near-zero excess still produces ratios) whose
  // square cannot round-trip through uint64 — cap instead of a UB cast.
  const double z_alpha = util::normal_quantile(1.0 - config.significance);
  const double z_power = util::normal_quantile(power);
  const double sigma0 = std::sqrt(tau_tolerated * (1.0 - tau_tolerated));
  const double sigma1 = std::sqrt(tau_cheat * (1.0 - tau_cheat));
  const double excess = tau_cheat - tau_tolerated;
  const double root = (z_alpha * sigma0 + z_power * sigma1) / excess;
  const double slots = std::ceil(root * root);
  if (!std::isfinite(slots) ||
      slots >= static_cast<double>(kDetectionSlotsCap)) {
    return kDetectionSlotsCap;
  }
  return static_cast<std::uint64_t>(slots);
}

}  // namespace smac::sim
