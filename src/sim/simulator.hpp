// Slot-level single-hop IEEE 802.11 DCF simulator (saturated traffic).
//
// Replaces the paper's NS-2 experiments: all nodes are in range of each
// other; every channel slot resolves to idle (σ), success (T_s) or
// collision (T_c) depending on how many backoff counters hit zero, which
// is exactly the embedded process behind Bianchi's model. Heterogeneous
// per-node contention windows — the selfish setting — are first-class.
//
// The simulator keeps backoff state across measurement windows so the
// adaptive runtime (repeated game) and the §V.C search protocol can chain
// stages without re-warming.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "parallel/replication.hpp"
#include "phy/parameters.hpp"
#include "sim/dcf_node.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace smac::sim {

struct SimConfig {
  phy::Parameters params = phy::Parameters::paper();
  phy::AccessMode mode = phy::AccessMode::kBasic;
  std::uint64_t seed = 1;
  /// Per-node packet arrival rate (packets/second). 0 = saturated (the
  /// paper's assumption): a fresh packet is always waiting. Positive
  /// values switch the sources to Poisson arrivals with per-node queues —
  /// nodes with an empty queue do not contend.
  double arrival_rate_pps = 0.0;
  /// Capture effect: probability that a collision slot still delivers the
  /// frame of one (uniformly chosen) contender — near/far power imbalance
  /// at the receiver. 0 (default) = every collision destroys all frames.
  /// Channel-noise corruption of clean frames comes from
  /// params.packet_error_rate; both default off, leaving the paper's
  /// idealized channel.
  double capture_probability = 0.0;
  /// Backoff adjustment law of every node (ablation; the paper's model
  /// covers only kBinaryExponential).
  BackoffPolicy backoff_policy = BackoffPolicy::kBinaryExponential;
  /// Slot-level fault scenario: scripted crash/join events (slot indices
  /// count from simulator construction, across windows) plus an optional
  /// Gilbert–Elliott bursty-loss chain layered on packet_error_rate. An
  /// empty plan (the default) draws nothing and changes nothing.
  fault::SlotFaultPlan faults;
};

/// Measurements of one simulation window.
struct SimResult {
  double elapsed_us = 0.0;
  std::uint64_t slots = 0;
  std::uint64_t idle_slots = 0;
  std::uint64_t success_slots = 0;
  std::uint64_t collision_slots = 0;
  /// Collision-free slots whose frame was corrupted by channel noise
  /// (packet_error_rate); they spend T_s but deliver nothing.
  std::uint64_t error_slots = 0;
  /// Collision slots rescued by the capture effect (one frame delivered).
  std::uint64_t capture_slots = 0;
  /// Slots spent in the Gilbert–Elliott Bad state (0 without a fault plan).
  std::uint64_t bad_state_slots = 0;
  std::vector<NodeCounters> node;
  /// Time-averaged queue length per node (always 0 in saturated mode,
  /// where the queue concept does not apply).
  std::vector<double> mean_backlog;

  /// Normalized throughput S: payload airtime fraction.
  double throughput = 0.0;
  /// Per-node payoff rate (n_s·g − n_e·e)/elapsed — the paper's measured
  /// utility, in gain per µs (comparable with analytical::utility_rates).
  std::vector<double> payoff_rate;
  /// Empirical τ_i = attempts_i / slots.
  std::vector<double> measured_tau;
  /// Empirical p_i = collisions_i / attempts_i (0 when no attempts).
  std::vector<double> measured_p;
};

class Simulator {
 public:
  Simulator(SimConfig config, const std::vector<int>& cw_profile);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  const SimConfig& config() const noexcept { return config_; }
  int cw(std::size_t i) const { return nodes_.at(i).cw(); }

  /// Reconfigures one node (its backoff restarts, §IV stage semantics).
  void set_cw(std::size_t i, int w);
  /// Reconfigures every node to the same window.
  void set_all_cw(int w);
  /// Reconfigures from a full profile.
  void set_profile(const std::vector<int>& cw_profile);

  /// Runs until at least `duration_us` of channel time has elapsed
  /// (finishing the slot in progress) and returns this window's stats.
  SimResult run_for(double duration_us);

  /// Runs exactly `n` channel slots.
  SimResult run_slots(std::uint64_t n);

  /// True when sources are saturated (arrival_rate_pps == 0).
  bool saturated() const noexcept { return config_.arrival_rate_pps == 0.0; }
  /// Current queue length of node i (0 in saturated mode).
  std::uint64_t backlog(std::size_t i) const { return backlog_.at(i); }

  /// Crashes (up = false) or rejoins node i, on top of any scripted plan.
  /// A crashed node does not contend, advance backoff, or drain its queue.
  void set_node_online(std::size_t i, bool up);
  bool node_online(std::size_t i) const { return node_up_.at(i) != 0; }
  /// Channel slots simulated since construction (scripted SlotEvent
  /// indices refer to this counter).
  std::uint64_t total_slots() const noexcept { return total_slots_; }

 private:
  struct WindowAccumulator;
  void step(WindowAccumulator& acc);
  bool node_active(std::size_t i) const noexcept {
    return node_up_[i] != 0 && (saturated() || backlog_[i] > 0);
  }

  SimConfig config_;
  phy::SlotTimes times_;
  std::vector<DcfNode> nodes_;
  std::vector<std::uint64_t> backlog_;
  std::vector<double> backlog_time_integral_;  ///< Σ backlog·slot-length
  util::Rng arrival_rng_;
  util::Rng channel_rng_;  ///< PER / capture draws (untouched when both off)
  std::vector<std::size_t> ready_scratch_;
  std::vector<std::uint8_t> node_up_;
  fault::GilbertElliottChannel fault_channel_;
  std::size_t next_fault_event_ = 0;
  std::uint64_t total_slots_ = 0;
};

/// Streaming aggregate of a replicated Monte-Carlo batch of one simulator
/// configuration. Individual SimResult windows are reduced on the fly
/// (replication r ran with seed parallel::stream_seed(config.seed, r));
/// only the across-replication aggregates and the stopping report are
/// retained, so memory is O(batch size) regardless of replication count.
/// To inspect a single replication, rebuild it: Simulator with
/// config.seed = parallel::stream_seed(config.seed, r).
struct SimBatch {
  /// Across-replication aggregates: throughput, collision/idle fractions,
  /// mean payoff rate, Jain fairness of payoff, mean tau, mean p.
  std::vector<util::MetricSummary> metrics;
  /// Replications executed, achieved CI half-width, and stop reason.
  parallel::StoppingReport stopping;
};

/// Metric names of SimBatch::metrics, in column order.
const std::vector<std::string>& replicated_metric_names();

/// Runs `replications` independent copies of (config, cw_profile) for
/// `slots` slots each, fanned over `jobs` threads (1 = serial inline,
/// 0 = ThreadPool::default_jobs()). config.seed acts as the base seed of
/// the replication family; results are bit-identical for any `jobs`
/// (see src/parallel/replication.hpp for the determinism contract).
SimBatch run_replicated(const SimConfig& config,
                        const std::vector<int>& cw_profile,
                        std::uint64_t slots, std::size_t replications,
                        std::size_t jobs = 1);

/// Sequential-stopping variant: replicates in deterministic batches until
/// `rule`'s CI half-width target is met or rule.max_reps (must be > 0) is
/// exhausted. The first k replications are bit-identical to the fixed-N
/// overload's; the stop point is jobs-invariant.
SimBatch run_replicated(const SimConfig& config,
                        const std::vector<int>& cw_profile,
                        std::uint64_t slots,
                        const parallel::StoppingRule& rule,
                        std::size_t jobs = 1);

}  // namespace smac::sim
