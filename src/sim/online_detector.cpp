#include "sim/online_detector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analytical/fixed_point_solver.hpp"

namespace smac::sim {

const char* to_string(DetectStatus status) noexcept {
  switch (status) {
    case DetectStatus::kOk:
      return "ok";
    case DetectStatus::kInvalidInput:
      return "invalid-input";
  }
  return "unknown";
}

namespace {

// Rates this close to 0 or 1 make 1 − rate collapse in double precision
// (infinite Wald thresholds) — rejected by valid() instead of propagated.
constexpr double kRateEps = 1e-12;

bool open_unit(double x) noexcept {
  return x > kRateEps && x < 1.0 - kRateEps;
}

}  // namespace

bool OnlineDetectorConfig::valid() const noexcept {
  return open_unit(significance) && open_unit(miss_rate) &&
         tolerance >= 0.0 && std::isfinite(tolerance) && cheat_factor > 1.0 &&
         std::isfinite(cheat_factor) && evidence_decay >= 0.0 &&
         evidence_decay < 1.0 && slots_per_stage > 0;
}

OnlineDetector::OnlineDetector(OnlineDetectorConfig config, int w_agreed,
                               int n, int max_stage, std::size_t opponents)
    : config_(config), w_agreed_(w_agreed), n_(n), max_stage_(max_stage) {
  if (!config.valid()) {
    throw std::invalid_argument("OnlineDetector: invalid config");
  }
  if (w_agreed < 1 || n < 2 || max_stage < 0 || opponents == 0) {
    throw std::invalid_argument("OnlineDetector: bad arguments");
  }
  const auto compliant =
      analytical::try_homogeneous_tau(w_agreed, n, max_stage);
  if (!analytical::usable(compliant.diagnostics.status)) {
    throw std::invalid_argument("OnlineDetector: compliant tau unsolvable");
  }
  tau0_ = compliant.tau * (1.0 + config.tolerance);
  if (!(tau0_ > 0.0) || !(tau0_ < 1.0 - kRateEps)) {
    throw std::invalid_argument(
        "OnlineDetector: tolerated tau leaves (0,1) — tolerance too large");
  }

  // The design cheat's τ against an otherwise-compliant crowd: one node at
  // W_agreed / cheat_factor, n − 1 at W_agreed (same construction as
  // expected_detection_slots).
  const int w_cheat = std::max(
      1, static_cast<int>(std::lround(w_agreed / config.cheat_factor)));
  std::vector<int> profile(static_cast<std::size_t>(n), w_agreed);
  profile[0] = w_cheat;
  const auto cheat = analytical::try_solve_network(profile, max_stage);
  if (!analytical::usable(cheat.diagnostics.status)) {
    throw std::invalid_argument("OnlineDetector: cheat tau unsolvable");
  }
  tau1_ = cheat.state.tau[0];
  if (!(tau1_ > tau0_)) {
    throw std::invalid_argument(
        "OnlineDetector: tolerance swallows the design cheat (tau1 <= tau0)");
  }

  log_tau_ratio_ = std::log(tau1_ / tau0_);
  log_miss_ratio_ = std::log((1.0 - tau1_) / (1.0 - tau0_));
  threshold_ =
      std::log((1.0 - config.miss_rate) / config.significance);
  floor_ = std::log(config.miss_rate / (1.0 - config.significance));
  state_.resize(opponents);
}

double OnlineDetector::break_even_tau() const noexcept {
  // Solve inc(tau) = tau·log(tau1/tau0) + (1−tau)·log((1−tau1)/(1−tau0))
  // = 0 for the observed rate where one stage's evidence flips sign.
  return -log_miss_ratio_ / (log_tau_ratio_ - log_miss_ratio_);
}

DetectStatus OnlineDetector::try_observe(std::size_t opponent,
                                         double attempts,
                                         std::uint64_t slots) noexcept {
  if (opponent >= state_.size() || slots == 0 || !std::isfinite(attempts) ||
      attempts < 0.0 || attempts > static_cast<double>(slots)) {
    return DetectStatus::kInvalidInput;
  }
  OnlineVerdict& v = state_[opponent];
  if (v.flagged) return DetectStatus::kOk;  // evidence frozen until rehab

  ++v.observations;
  const double s = static_cast<double>(slots);
  const double inc =
      attempts * log_tau_ratio_ + (s - attempts) * log_miss_ratio_;
  v.suspect_streak = inc > 0.0 ? v.suspect_streak + 1 : 0;
  v.evidence *= 1.0 - config_.evidence_decay;
  v.evidence = std::max(floor_, v.evidence + inc);
  if (v.evidence >= threshold_) {
    v.flagged = true;
    v.flagged_at = v.observations - 1;
    ++flags_raised_;
  }
  return DetectStatus::kOk;
}

DetectStatus OnlineDetector::try_observe_window(std::size_t opponent,
                                                int observed_w) {
  if (opponent >= state_.size() || observed_w < 1) {
    return DetectStatus::kInvalidInput;
  }
  const double tau = implied_tau(observed_w);
  const double slots = static_cast<double>(config_.slots_per_stage);
  return try_observe(opponent, tau * slots, config_.slots_per_stage);
}

void OnlineDetector::observe(std::size_t opponent, double attempts,
                             std::uint64_t slots) {
  if (try_observe(opponent, attempts, slots) != DetectStatus::kOk) {
    throw std::invalid_argument("OnlineDetector::observe: invalid input");
  }
}

void OnlineDetector::observe_window(std::size_t opponent, int observed_w) {
  if (try_observe_window(opponent, observed_w) != DetectStatus::kOk) {
    throw std::invalid_argument(
        "OnlineDetector::observe_window: invalid input");
  }
}

const OnlineVerdict& OnlineDetector::verdict(std::size_t opponent) const {
  if (opponent >= state_.size()) {
    throw std::out_of_range("OnlineDetector::verdict: opponent out of range");
  }
  return state_[opponent];
}

void OnlineDetector::rehabilitate(std::size_t opponent) {
  if (opponent >= state_.size()) {
    throw std::out_of_range(
        "OnlineDetector::rehabilitate: opponent out of range");
  }
  state_[opponent] = OnlineVerdict{};
}

double OnlineDetector::implied_tau(int window) {
  const auto memo = tau_memo_.find(window);
  if (memo != tau_memo_.end()) return memo->second;
  const auto solved =
      analytical::try_homogeneous_tau(window, n_, max_stage_);
  // The scalar ladder's bisection rung cannot fail on a valid window; the
  // clamp keeps the conversion total even if it ever degrades.
  const double tau = analytical::usable(solved.diagnostics.status)
                         ? std::clamp(solved.tau, 0.0, 1.0)
                         : std::clamp(2.0 / (window + 1.0), 0.0, 1.0);
  tau_memo_.emplace(window, tau);
  return tau;
}

}  // namespace smac::sim
