// The paper's distributed algorithm for approaching the efficient NE
// (§V.C) run over the slot-level simulator.
//
// One leader node l broadcasts Start-Search with a starting window W0;
// all nodes then move in lockstep: the leader raises (Right-Search) or
// lowers (Left-Search) the common window one step at a time, announcing
// each move with a Ready message, waiting a settle period t, and measuring
// its own payoff U_l = (n_s·g − n_e·e)/t_m over the next t_m. The search
// stops when the measured payoff drops, and the last window before the
// drop is broadcast as the efficient NE estimate W_m.
//
// Message delivery is modeled as reliable and immediate (single collision
// domain, control messages piggybacked outside the saturated data traffic)
// — the paper makes the same abstraction. Measurement noise, however, is
// real: payoffs come from the simulator, so the protocol's robustness
// knobs (patience, step size, measurement duration) matter and are
// benchmarked.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace smac::sim {

struct SearchConfig {
  int w_start = 16;          ///< W0 in the Start-Search message
  double settle_us = 2e5;    ///< t: wait after each Ready before measuring
  double measure_us = 5e6;   ///< t_m: payoff measurement window
  int step = 1;              ///< window increment per move (paper: 1)
  /// Consecutive non-improving measurements tolerated before declaring the
  /// peak passed; >1 hardens the hill climb against measurement noise.
  int patience = 2;
  /// Relative gain a measurement must show over the best-so-far to count
  /// as an improvement. 0 reproduces the paper's protocol verbatim; a few
  /// percent prevents measurement noise from reading as progress on the
  /// plateau around W_c* (where the true curve moves by < 0.1% per step).
  double improvement_epsilon = 0.0;
  int max_steps = 20000;     ///< safety bound on protocol moves
};

struct SearchTracePoint {
  int w = 0;
  double measured_payoff_rate = 0.0;  ///< gain per µs at this window
};

struct SearchResult {
  int w_found = 0;        ///< broadcast W_m
  int steps = 0;          ///< Ready messages sent
  bool used_left_search = false;
  bool hit_step_limit = false;
  double elapsed_us = 0.0;  ///< total channel time the search consumed
  std::vector<SearchTracePoint> trace;
};

/// Runs the search on `sim` with node `leader` initiating. All nodes end
/// on the returned window. Throws std::invalid_argument on a bad config.
SearchResult run_search(Simulator& sim, std::size_t leader,
                        const SearchConfig& config);

}  // namespace smac::sim
