#include "sim/dcf_node.hpp"

#include <algorithm>
#include <stdexcept>

namespace smac::sim {

DcfNode::DcfNode(int cw, int max_stage, util::Rng rng, BackoffPolicy policy)
    : cw_(cw), max_stage_(max_stage), policy_(policy), mild_window_(cw),
      rng_(rng) {
  if (cw < 1) throw std::invalid_argument("DcfNode: cw < 1");
  if (max_stage < 0) throw std::invalid_argument("DcfNode: max_stage < 0");
  draw_backoff();
}

std::int64_t DcfNode::current_window() const noexcept {
  switch (policy_) {
    case BackoffPolicy::kBinaryExponential:
      return window_of_stage(stage_);
    case BackoffPolicy::kMild:
      return mild_window_;
    case BackoffPolicy::kConstant:
      return cw_;
  }
  return cw_;
}

void DcfNode::set_cw(int cw) {
  if (cw < 1) throw std::invalid_argument("DcfNode::set_cw: cw < 1");
  cw_ = cw;
  stage_ = 0;
  mild_window_ = cw;
  draw_backoff();
}

void DcfNode::observe_slot() noexcept {
  if (counter_ > 0) --counter_;
}

void DcfNode::on_success() {
  ++counters_.attempts;
  ++counters_.successes;
  switch (policy_) {
    case BackoffPolicy::kBinaryExponential:
      stage_ = 0;
      break;
    case BackoffPolicy::kMild:
      mild_window_ = std::max<std::int64_t>(mild_window_ - 1, cw_);
      break;
    case BackoffPolicy::kConstant:
      break;
  }
  draw_backoff();
}

void DcfNode::on_collision() {
  ++counters_.attempts;
  ++counters_.collisions;
  switch (policy_) {
    case BackoffPolicy::kBinaryExponential:
      if (stage_ < max_stage_) ++stage_;
      break;
    case BackoffPolicy::kMild:
      mild_window_ = std::min<std::int64_t>(
          mild_window_ * 3 / 2 + 1, window_of_stage(max_stage_));
      break;
    case BackoffPolicy::kConstant:
      break;
  }
  draw_backoff();
}

void DcfNode::begin_packet() {
  stage_ = 0;  // MILD keeps its learned window across packets (MACAW copies
               // backoff state between exchanges; decay happens on success)
  draw_backoff();
}

std::int64_t DcfNode::window_of_stage(int stage) const noexcept {
  return static_cast<std::int64_t>(cw_) << stage;
}

void DcfNode::draw_backoff() {
  const auto window = static_cast<std::uint64_t>(current_window());
  counter_ = static_cast<std::int64_t>(rng_.uniform_below(window));
}

}  // namespace smac::sim
