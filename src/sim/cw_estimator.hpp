// Promiscuous-mode contention-window estimation (paper §IV, ref. [3]).
//
// The paper's TFT strategy requires each node to observe the CW values of
// the others and cites Kyasanur & Vaidya's detection work for feasibility.
// This module implements the mechanism: a node in promiscuous mode counts
// every station's transmission attempts over a measurement window, turns
// attempt counts into per-slot transmission probabilities τ̂_j, derives
// collision probabilities p̂_j = 1 − Π_{k≠j}(1 − τ̂_k) from them, and
// inverts the backoff-chain relation
//
//   τ = 2 / (1 + W·(1 + p·Σ_{r<m}(2p)^r))
//   ⇒  Ŵ = (2/τ̂ − 1) / (1 + p̂·Σ_{r<m}(2p̂)^r)
//
// to estimate each station's configured window. Estimation error scales as
// the inverse square root of the observed attempt count, which is what the
// GTFT tolerance parameters (β, r0) exist to absorb; the estimating
// strategies below make that trade-off measurable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "game/strategies.hpp"
#include "sim/simulator.hpp"

namespace smac::sim {

/// One station's estimate after a measurement window.
struct CwEstimate {
  double tau_hat = 0.0;   ///< observed attempts / slots
  double p_hat = 0.0;     ///< collision probability implied by the others
  double w_hat = 0.0;     ///< inverted window estimate (>= 1)
  std::uint64_t attempts = 0;  ///< sample size behind the estimate
};

/// Estimates every node's contention window from a simulation window's
/// observable counters (attempt counts and slot count — exactly what a
/// promiscuous listener sees; success/collision labels are not needed).
/// `max_stage` is the known protocol constant m.
std::vector<CwEstimate> estimate_windows(const SimResult& observed,
                                         int max_stage);

/// Inverts τ̂ (with collision feedback p̂) to a window estimate.
/// Returns a value clamped to >= 1. τ̂ must lie in (0, 1]; τ̂ = 0 (no
/// observed attempts) has no information and maps to +infinity — callers
/// see that as the sentinel returned here, w_max_hint.
double invert_window(double tau_hat, double p_hat, int max_stage,
                     double w_max_hint);

/// TFT driven by *estimated* windows: instead of reading opponents'
/// configured CW from the history (the idealized observation the paper
/// assumes), it acts on Ŵ_j computed from the attempt counts of the last
/// stage. With short stages the estimates are noisy and plain TFT
/// over-punishes; the estimating GTFT below shows the cure.
class EstimatingTitForTat final : public game::Strategy {
 public:
  /// `estimates_feed` supplies the latest per-node window estimates; the
  /// adaptive runtime owns the feed and refreshes it every stage.
  using Feed = std::shared_ptr<const std::vector<double>>;
  EstimatingTitForTat(int initial_w, Feed estimates_feed);

  int initial_cw() const override { return initial_w_; }
  int decide(const game::History& history, std::size_t self) override;
  std::string name() const override { return "tft-estimating"; }

 private:
  int initial_w_;
  Feed feed_;
};

/// GTFT driven by estimated windows: reacts only when some station's
/// estimate falls below β times its own configured window, averaged over
/// the last r0 stages of estimates.
class EstimatingGtft final : public game::Strategy {
 public:
  using Feed = std::shared_ptr<const std::vector<double>>;
  EstimatingGtft(int initial_w, double beta, int window_stages, Feed feed);

  int initial_cw() const override { return initial_w_; }
  int decide(const game::History& history, std::size_t self) override;
  std::string name() const override;

 private:
  int initial_w_;
  double beta_;
  int r0_;
  Feed feed_;
  std::vector<std::vector<double>> recent_;  ///< ring of estimate snapshots
};

/// Evidence-gated GTFT: punishes only nodes the misbehavior detector has
/// flagged (statistically significant excess attempt rate against the
/// node's own current window as the agreement), rather than reacting to
/// raw window estimates. This closes the loop between the paper's TFT
/// convention and ref [3]'s detection machinery: noise cannot trigger
/// retaliation, only evidence can.
class DetectorGtft final : public game::Strategy {
 public:
  using EstimateFeed = std::shared_ptr<const std::vector<double>>;
  using FlagFeed = std::shared_ptr<const std::vector<bool>>;
  DetectorGtft(int initial_w, EstimateFeed estimates, FlagFeed flags);

  int initial_cw() const override { return initial_w_; }
  int decide(const game::History& history, std::size_t self) override;
  std::string name() const override { return "detector-gtft"; }

 private:
  int initial_w_;
  EstimateFeed estimates_;
  FlagFeed flags_;
};

/// Runs a stage-driven repeated game where strategies see only *estimated*
/// windows (the feed is refreshed from each stage's observable counters).
/// Mirrors AdaptiveRuntime but wires the estimation loop.
struct EstimationRuntimeResult {
  game::History history;
  std::vector<std::vector<double>> estimates_per_stage;  ///< [stage][node]
  std::vector<std::vector<bool>> flags_per_stage;        ///< [stage][node]
  std::optional<int> converged_cw;
};

class EstimatingRuntime {
 public:
  /// `make_strategy(i, estimates, flags)` builds node i's strategy around
  /// the runtime's shared estimate and misbehavior-flag feeds (both are
  /// refreshed every stage before strategies decide).
  using StrategyFactory = std::function<std::unique_ptr<game::Strategy>(
      std::size_t, std::shared_ptr<const std::vector<double>>,
      std::shared_ptr<const std::vector<bool>>)>;

  EstimatingRuntime(SimConfig config, std::size_t n,
                    const StrategyFactory& make_strategy,
                    double stage_duration_us);

  /// Per-node misbehavior flags, refreshed every stage: node j is flagged
  /// when its measured attempt rate significantly exceeds compliance with
  /// the *modal* window of the last played profile (the de-facto
  /// agreement). Strategies may capture this feed (DetectorGtft does).
  std::shared_ptr<const std::vector<bool>> flag_feed() const {
    return flags_;
  }
  std::shared_ptr<const std::vector<double>> estimate_feed() const {
    return feed_;
  }

  EstimationRuntimeResult play(int stages);

 private:
  std::shared_ptr<std::vector<double>> feed_;
  std::shared_ptr<std::vector<bool>> flags_;
  std::vector<std::unique_ptr<game::Strategy>> strategies_;
  Simulator simulator_;
  double stage_duration_us_;
  int max_stage_;
};

}  // namespace smac::sim
