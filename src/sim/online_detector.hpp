// Online sequential misbehavior detection (the streaming counterpart of
// sim/misbehavior_detector.hpp's one-shot binomial test).
//
// The repeated-game runtime observes one contention-window reading per
// opponent per stage, possibly lossy and noisy (fault::FaultInjector).
// A reaction layer that waits for a full offline sample is useless there:
// it needs a verdict that sharpens stage by stage and recovers from
// transient noise. This module implements a per-opponent sequential
// probability ratio test (Wald's SPRT) with a CUSUM-style evidence floor:
//
//   H0: the opponent attempts at most at the *tolerated* compliant rate
//       tau0 = tau(W_agreed)·(1 + tolerance)
//   H1: the opponent operates the design cheat window
//       W_cheat = W_agreed / cheat_factor with rate tau1 (> tau0)
//
// Each stage contributes the binomial log-likelihood ratio of the
// observed attempt count; the accumulated evidence E_j is clamped below
// at Wald's acceptance boundary log(beta/(1−alpha)) (so long compliant
// streaks cannot build an unbounded credit that masks a later cheat) and
// flags when it crosses log((1−beta)/alpha). A geometric evidence decay
// completes the CUSUM flavor: stale borderline evidence fades, so a burst
// of noisy reads costs a bounded suspicion episode instead of ratcheting.
//
// False-positive calibration: by Wald's bound the probability that a
// compliant opponent's evidence ever crosses the flag threshold is at
// most ~alpha per (opponent, run). The margin is structural, not only
// statistical: a single false-low window read of magnitude m raises the
// implied tau toward, but (for the default geometry) not past, the
// break-even rate tau* where the per-stage increment changes sign —
// docs/ENFORCEMENT.md derives tau* and works the default numbers.
//
// Determinism: the detector is a pure function of the observation
// sequence fed to it — no RNG, no clocks — so enforcement runs inherit
// the library's bit-identical-at-any---jobs contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace smac::sim {

/// Outcome classification of the non-throwing detection entry points,
/// following the analytical::SolveStatus convention (no exceptions on the
/// hot path; invalid inputs are reported, not thrown).
enum class DetectStatus {
  kOk,            ///< the observation was absorbed / the verdicts are valid
  kInvalidInput,  ///< empty observations or out-of-range configuration
};

const char* to_string(DetectStatus status) noexcept;

struct OnlineDetectorConfig {
  /// Design false-flag probability per opponent and run (Wald's alpha).
  double significance = 0.01;
  /// Design miss probability of the SPRT (Wald's beta).
  double miss_rate = 0.10;
  /// Slack on the compliant tau absorbed into H0; covers mean-field model
  /// error plus the upward bias of symmetric window-observation noise.
  double tolerance = 0.10;
  /// Design alternative: the cheat window W_agreed / cheat_factor the test
  /// is powered against. Milder cheats are still caught, just later.
  double cheat_factor = 2.0;
  /// Geometric per-observation decay of accumulated evidence (0 = pure
  /// SPRT). Small values make isolated suspicion fade in O(1/decay)
  /// stages.
  double evidence_decay = 0.02;
  /// Channel slots one stage observation stands for when stepping from a
  /// window reading (try_observe_window). Scales evidence per stage: the
  /// default flags a half-window cheat in 1–2 stages while keeping every
  /// compliant-range reading's increment negative.
  std::uint64_t slots_per_stage = 200;

  /// All rates inside their open intervals and representable (a
  /// significance below ~1e-12 would collapse 1 − alpha to 1.0 in double
  /// and is rejected rather than silently producing infinite thresholds).
  bool valid() const noexcept;
};

/// Per-opponent state of the sequential test.
struct OnlineVerdict {
  double evidence = 0.0;  ///< accumulated (decayed, floored) LLR
  bool flagged = false;   ///< evidence crossed the flag threshold
  int observations = 0;   ///< stages absorbed since the last rehabilitation
  int flagged_at = -1;    ///< observation index of the flag (−1 = never)
  /// Consecutive observations with positive evidence increments — the
  /// reaction layer's estimate of how long the cheat went undetected.
  int suspect_streak = 0;
};

/// Streaming per-opponent SPRT/CUSUM over observed attempt activity.
///
/// One instance monitors `opponents` nodes against one agreement
/// (W_agreed, n players, backoff stage m). Feed it either raw attempt
/// counts (try_observe) or contention-window readings
/// (try_observe_window, which converts through the homogeneous
/// mean-field tau). Flags latch: once an opponent crosses the threshold
/// it stays flagged — evidence frozen — until rehabilitate() clears it.
class OnlineDetector {
 public:
  /// Throws std::invalid_argument on an invalid config, w_agreed < 1,
  /// n < 2, max_stage < 0, opponents == 0, or when the tolerance swallows
  /// the design cheat (tau1 <= tau0, nothing to test for).
  OnlineDetector(OnlineDetectorConfig config, int w_agreed, int n,
                 int max_stage, std::size_t opponents);

  std::size_t opponents() const noexcept { return state_.size(); }
  int w_agreed() const noexcept { return w_agreed_; }

  /// H0 rate: tolerated compliant per-slot attempt probability.
  double tau_null() const noexcept { return tau0_; }
  /// H1 rate: the design cheat's per-slot attempt probability.
  double tau_alt() const noexcept { return tau1_; }
  /// Wald thresholds: flag at log((1−beta)/alpha), floor (evidence clamp)
  /// at log(beta/(1−alpha)).
  double flag_threshold() const noexcept { return threshold_; }
  double evidence_floor() const noexcept { return floor_; }
  /// Observed per-slot attempt rate above which one stage's evidence
  /// increment turns positive (the structural noise margin; see header).
  double break_even_tau() const noexcept;

  /// Absorbs one stage: `attempts` transmission attempts observed over
  /// `slots` channel slots. Non-throwing; kInvalidInput (state untouched)
  /// on opponent out of range, slots == 0, or attempts outside
  /// [0, slots]. A flagged opponent's evidence is frozen (kOk, no-op).
  DetectStatus try_observe(std::size_t opponent, double attempts,
                           std::uint64_t slots) noexcept;

  /// Window-reading form: the observed window is converted to the implied
  /// attempt count tau(w)·slots_per_stage through the homogeneous
  /// mean-field model (memoized per distinct window). kInvalidInput on
  /// opponent out of range or observed_w < 1.
  DetectStatus try_observe_window(std::size_t opponent, int observed_w);

  /// Throwing wrappers for callers that prefer exceptions at the edges.
  void observe(std::size_t opponent, double attempts, std::uint64_t slots);
  void observe_window(std::size_t opponent, int observed_w);

  const OnlineVerdict& verdict(std::size_t opponent) const;
  bool flagged(std::size_t opponent) const {
    return verdict(opponent).flagged;
  }

  /// Rehabilitation: clears the flag and resets the opponent's evidence
  /// and streak to zero — the timed-punishment layer's "served the
  /// sentence" hook. Detection restarts from a clean slate, so a repeat
  /// offender is re-flagged by fresh evidence, not by grudge.
  void rehabilitate(std::size_t opponent);

  /// Cumulative flags raised across all opponents (rehabilitation does
  /// not reset this counter).
  int flags_raised() const noexcept { return flags_raised_; }

 private:
  double implied_tau(int window);

  OnlineDetectorConfig config_;
  int w_agreed_ = 1;
  int n_ = 2;
  int max_stage_ = 0;
  double tau0_ = 0.0;        ///< tolerated compliant rate (H0)
  double tau1_ = 0.0;        ///< design cheat rate (H1)
  double log_tau_ratio_ = 0.0;    ///< log(tau1/tau0)
  double log_miss_ratio_ = 0.0;   ///< log((1−tau1)/(1−tau0))
  double threshold_ = 0.0;
  double floor_ = 0.0;
  int flags_raised_ = 0;
  std::vector<OnlineVerdict> state_;
  std::map<int, double> tau_memo_;  ///< window → implied tau
};

}  // namespace smac::sim
