// Backoff state machine of one saturated IEEE 802.11 DCF node.
//
// Realizes the process abstracted by the paper's Markov chain (§III,
// Fig. 1): the node holds a (stage, counter) pair; it transmits in every
// channel slot where counter = 0, doubles its window (up to stage m) after
// a collision, and resets to stage 0 after a success. Saturation means a
// fresh packet is always waiting, so the post-success state immediately
// begins a new backoff. Time is counted in *channel slots* (idle σ,
// success T_s, collision T_c), exactly the embedding Bianchi's model uses.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace smac::sim {

/// Backoff adjustment law. The paper (and Bianchi's model) assume binary
/// exponential backoff; the alternatives are ablation baselines:
/// kMild is MACAW's multiplicative-increase (×1.5) / linear-decrease (−1)
/// rule, known for better short-term fairness; kConstant never adapts
/// (equivalent to max_stage = 0 but explicit).
enum class BackoffPolicy {
  kBinaryExponential,
  kMild,
  kConstant,
};

/// Per-node transmission counters accumulated by the simulator.
struct NodeCounters {
  std::uint64_t attempts = 0;    ///< packets emitted (n_e)
  std::uint64_t successes = 0;   ///< packets delivered (n_s)
  std::uint64_t collisions = 0;  ///< attempts that collided
};

class DcfNode {
 public:
  /// `cw` is the node's (selfishly chosen) initial window W_i >= 1;
  /// `max_stage` is m >= 0 (for kMild it bounds the window at 2^m·W_i).
  /// The node owns its RNG stream.
  DcfNode(int cw, int max_stage, util::Rng rng,
          BackoffPolicy policy = BackoffPolicy::kBinaryExponential);

  int cw() const noexcept { return cw_; }
  BackoffPolicy policy() const noexcept { return policy_; }
  /// BEB stage (always 0 for kMild/kConstant, which do not use stages).
  int stage() const noexcept { return stage_; }
  /// Current effective contention window the next draw uses.
  std::int64_t current_window() const noexcept;
  std::int64_t counter() const noexcept { return counter_; }
  const NodeCounters& counters() const noexcept { return counters_; }

  /// Reconfigures the contention window (a new stage begins). The backoff
  /// restarts at stage 0 with a fresh draw, as after a delivered packet.
  void set_cw(int cw);

  /// True when the node will transmit in the current channel slot.
  bool ready() const noexcept { return counter_ == 0; }

  /// Advances one channel slot in which this node did NOT transmit
  /// (idle, or busy by others). Decrements the backoff counter.
  void observe_slot() noexcept;

  /// Outcome callbacks for a slot in which this node transmitted.
  void on_success();
  void on_collision();

  /// Starts contention for a fresh packet after an idle period (queue was
  /// empty): stage resets to 0 with a new backoff draw, without counting
  /// an attempt. Saturated operation never needs this — on_success already
  /// begins the next packet's backoff.
  void begin_packet();

  /// Zeroes the counters (start of a measurement window); backoff state
  /// is preserved so consecutive windows chain seamlessly.
  void reset_counters() noexcept { counters_ = NodeCounters{}; }

 private:
  std::int64_t window_of_stage(int stage) const noexcept;
  void draw_backoff();

  int cw_;
  int max_stage_;
  BackoffPolicy policy_;
  int stage_ = 0;
  std::int64_t mild_window_ = 0;  ///< current window under kMild
  std::int64_t counter_ = 0;
  NodeCounters counters_;
  util::Rng rng_;
};

}  // namespace smac::sim
