#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/replication.hpp"

namespace smac::sim {

struct Simulator::WindowAccumulator {
  double elapsed_us = 0.0;
  std::uint64_t slots = 0;
  std::uint64_t idle_slots = 0;
  std::uint64_t success_slots = 0;
  std::uint64_t collision_slots = 0;
  std::uint64_t error_slots = 0;
  std::uint64_t capture_slots = 0;
  std::uint64_t bad_state_slots = 0;
};

Simulator::Simulator(SimConfig config, const std::vector<int>& cw_profile)
    : config_(std::move(config)),
      times_(config_.params.slot_times(config_.mode)),
      backlog_(cw_profile.size(), 0),
      backlog_time_integral_(cw_profile.size(), 0.0),
      arrival_rng_(config_.seed ^ 0xa221ba1ULL),
      channel_rng_(config_.seed ^ 0xc4a22e1ULL),
      node_up_(cw_profile.size(), 1),
      fault_channel_(config_.faults.channel,
                     util::Rng(config_.seed ^ 0xb4d57a7eULL)) {
  config_.params.validate();
  config_.faults.validate();
  for (const fault::SlotEvent& e : config_.faults.events) {
    if (e.node >= cw_profile.size()) {
      throw std::invalid_argument("Simulator: fault event node index");
    }
  }
  // Events apply in (slot, declaration) order.
  std::stable_sort(config_.faults.events.begin(), config_.faults.events.end(),
                   [](const fault::SlotEvent& a, const fault::SlotEvent& b) {
                     return a.slot < b.slot;
                   });
  if (config_.arrival_rate_pps < 0.0) {
    throw std::invalid_argument("Simulator: negative arrival rate");
  }
  if (config_.capture_probability < 0.0 || config_.capture_probability > 1.0) {
    throw std::invalid_argument("Simulator: capture probability outside [0,1]");
  }
  if (cw_profile.empty()) {
    throw std::invalid_argument("Simulator: empty CW profile");
  }
  util::Rng master(config_.seed);
  nodes_.reserve(cw_profile.size());
  for (int w : cw_profile) {
    nodes_.emplace_back(w, config_.params.max_backoff_stage, master.split(),
                        config_.backoff_policy);
  }
  ready_scratch_.reserve(nodes_.size());
}

void Simulator::set_cw(std::size_t i, int w) { nodes_.at(i).set_cw(w); }

void Simulator::set_all_cw(int w) {
  for (auto& node : nodes_) node.set_cw(w);
}

void Simulator::set_node_online(std::size_t i, bool up) {
  node_up_.at(i) = up ? 1 : 0;
}

void Simulator::set_profile(const std::vector<int>& cw_profile) {
  if (cw_profile.size() != nodes_.size()) {
    throw std::invalid_argument("Simulator::set_profile: size mismatch");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].set_cw(cw_profile[i]);
  }
}

void Simulator::step(WindowAccumulator& acc) {
  // Faults resolve at the slot boundary: scripted events first, then one
  // step of the bursty-loss chain (no draws when the plan is empty).
  while (next_fault_event_ < config_.faults.events.size() &&
         config_.faults.events[next_fault_event_].slot <= total_slots_) {
    const fault::SlotEvent& e = config_.faults.events[next_fault_event_++];
    node_up_[e.node] = e.kind == fault::FaultKind::kJoin ? 1 : 0;
  }
  fault_channel_.step();
  if (fault_channel_.bad()) ++acc.bad_state_slots;
  const double effective_per =
      fault_channel_.effective_per(config_.params.packet_error_rate);

  ready_scratch_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (node_active(i) && nodes_[i].ready()) ready_scratch_.push_back(i);
  }

  double slot_us = 0.0;
  if (ready_scratch_.empty()) {
    slot_us = times_.sigma_us;
    ++acc.idle_slots;
  } else if (ready_scratch_.size() == 1) {
    const std::size_t sender = ready_scratch_.front();
    const double per = effective_per;
    if (per > 0.0 && channel_rng_.bernoulli(per)) {
      // Corrupted by noise: the frame occupies its full airtime but no
      // ACK arrives — the sender backs off exactly as after a collision.
      slot_us = times_.ts_us;
      ++acc.error_slots;
      nodes_[sender].on_collision();
    } else {
      slot_us = times_.ts_us;
      ++acc.success_slots;
      nodes_[sender].on_success();
      if (!saturated() && backlog_[sender] > 0) --backlog_[sender];
    }
  } else if (config_.capture_probability > 0.0 &&
             channel_rng_.bernoulli(config_.capture_probability)) {
    // Capture: one contender's frame survives the collision (it is also
    // exposed to channel noise like any other reception).
    slot_us = times_.ts_us;  // the captured frame completes its exchange
    const std::size_t winner = ready_scratch_[static_cast<std::size_t>(
        channel_rng_.uniform_below(ready_scratch_.size()))];
    const double per = effective_per;
    const bool corrupted = per > 0.0 && channel_rng_.bernoulli(per);
    for (std::size_t i : ready_scratch_) {
      if (i == winner && !corrupted) {
        nodes_[i].on_success();
        if (!saturated() && backlog_[i] > 0) --backlog_[i];
      } else {
        nodes_[i].on_collision();
      }
    }
    if (corrupted) {
      ++acc.error_slots;
    } else {
      ++acc.capture_slots;
      ++acc.success_slots;
    }
  } else {
    slot_us = times_.tc_us;
    ++acc.collision_slots;
    for (std::size_t i : ready_scratch_) nodes_[i].on_collision();
  }
  acc.elapsed_us += slot_us;
  // Non-transmitting *active* nodes advance their backoff by one channel
  // slot; idle-queue nodes have no backoff running.
  for (std::size_t i = 0, r = 0; i < nodes_.size(); ++i) {
    if (r < ready_scratch_.size() && ready_scratch_[r] == i) {
      ++r;  // transmitted: already redrew its backoff
    } else if (node_active(i)) {
      nodes_[i].observe_slot();
    }
  }
  // Poisson arrivals over the elapsed slot; a packet reaching an empty
  // queue starts a fresh stage-0 backoff.
  if (!saturated()) {
    const double mean = config_.arrival_rate_pps * slot_us * 1e-6;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::uint64_t arrivals = arrival_rng_.poisson(mean);
      if (arrivals > 0 && backlog_[i] == 0) nodes_[i].begin_packet();
      backlog_[i] += arrivals;
      backlog_time_integral_[i] += static_cast<double>(backlog_[i]) * slot_us;
    }
  }
  ++acc.slots;
  ++total_slots_;
}

namespace {

SimResult finalize(const std::vector<DcfNode>& nodes,
                   const phy::Parameters& params, double elapsed_us,
                   std::uint64_t slots, std::uint64_t idle,
                   std::uint64_t success, std::uint64_t collision,
                   std::uint64_t error, std::uint64_t capture,
                   std::uint64_t bad_state) {
  SimResult result;
  result.elapsed_us = elapsed_us;
  result.slots = slots;
  result.idle_slots = idle;
  result.success_slots = success;
  result.collision_slots = collision;
  result.error_slots = error;
  result.capture_slots = capture;
  result.bad_state_slots = bad_state;
  result.node.reserve(nodes.size());
  for (const auto& node : nodes) result.node.push_back(node.counters());

  result.throughput =
      static_cast<double>(success) * params.payload_us() / elapsed_us;
  result.payoff_rate.resize(nodes.size());
  result.measured_tau.resize(nodes.size());
  result.measured_p.resize(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeCounters& c = result.node[i];
    result.payoff_rate[i] =
        (static_cast<double>(c.successes) * params.gain -
         static_cast<double>(c.attempts) * params.cost) /
        elapsed_us;
    result.measured_tau[i] =
        slots ? static_cast<double>(c.attempts) / static_cast<double>(slots)
              : 0.0;
    result.measured_p[i] = c.attempts
                               ? static_cast<double>(c.collisions) /
                                     static_cast<double>(c.attempts)
                               : 0.0;
  }
  return result;
}

}  // namespace

SimResult Simulator::run_for(double duration_us) {
  if (!(duration_us > 0.0)) {
    throw std::invalid_argument("Simulator::run_for: duration must be > 0");
  }
  for (auto& node : nodes_) node.reset_counters();
  std::fill(backlog_time_integral_.begin(), backlog_time_integral_.end(), 0.0);
  WindowAccumulator acc;
  while (acc.elapsed_us < duration_us) step(acc);
  SimResult result = finalize(nodes_, config_.params, acc.elapsed_us,
                              acc.slots, acc.idle_slots, acc.success_slots,
                              acc.collision_slots, acc.error_slots,
                              acc.capture_slots, acc.bad_state_slots);
  result.mean_backlog.resize(nodes_.size(), 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    result.mean_backlog[i] = backlog_time_integral_[i] / acc.elapsed_us;
  }
  return result;
}

SimResult Simulator::run_slots(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Simulator::run_slots: n == 0");
  for (auto& node : nodes_) node.reset_counters();
  std::fill(backlog_time_integral_.begin(), backlog_time_integral_.end(), 0.0);
  WindowAccumulator acc;
  while (acc.slots < n) step(acc);
  SimResult result = finalize(nodes_, config_.params, acc.elapsed_us,
                              acc.slots, acc.idle_slots, acc.success_slots,
                              acc.collision_slots, acc.error_slots,
                              acc.capture_slots, acc.bad_state_slots);
  result.mean_backlog.resize(nodes_.size(), 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    result.mean_backlog[i] = backlog_time_integral_[i] / acc.elapsed_us;
  }
  return result;
}

const std::vector<std::string>& replicated_metric_names() {
  static const std::vector<std::string> names{
      "throughput", "collision fraction", "idle fraction",
      "mean payoff rate", "payoff fairness",  "mean tau",
      "mean p"};
  return names;
}

namespace {

std::vector<double> replicated_metric_row(const SimResult& r) {
  const auto total = static_cast<double>(r.slots);
  return {r.throughput,
          static_cast<double>(r.collision_slots) / total,
          static_cast<double>(r.idle_slots) / total,
          util::mean_of(r.payoff_rate),
          util::jain_fairness(r.payoff_rate),
          util::mean_of(r.measured_tau),
          util::mean_of(r.measured_p)};
}

}  // namespace

SimBatch run_replicated(const SimConfig& config,
                        const std::vector<int>& cw_profile,
                        std::uint64_t slots, std::size_t replications,
                        std::size_t jobs) {
  parallel::StoppingRule fixed;  // target 0: stream all N, never stop early
  fixed.max_reps = replications;
  return run_replicated(config, cw_profile, slots, fixed, jobs);
}

SimBatch run_replicated(const SimConfig& config,
                        const std::vector<int>& cw_profile,
                        std::uint64_t slots,
                        const parallel::StoppingRule& rule,
                        std::size_t jobs) {
  if (rule.max_reps == 0) {
    throw std::invalid_argument("run_replicated: rule.max_reps == 0");
  }
  const parallel::ReplicationRunner runner(
      {rule.max_reps, config.seed, jobs});
  auto summary = runner.run_sequential(
      replicated_metric_names(), rule,
      [&](std::uint64_t seed, std::size_t /*index*/) {
        SimConfig replica = config;
        replica.seed = seed;
        Simulator simulator(replica, cw_profile);
        return replicated_metric_row(simulator.run_slots(slots));
      });
  SimBatch batch;
  batch.metrics = std::move(summary.metrics);
  batch.stopping = std::move(summary.stopping);
  return batch;
}

}  // namespace smac::sim
