#include "sim/cw_estimator.hpp"

#include "sim/misbehavior_detector.hpp"

#include <algorithm>
#include <map>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace smac::sim {

namespace {

double geometric_sum_2p(double p, int m) noexcept {
  double sum = 0.0;
  double term = 1.0;
  for (int r = 0; r < m; ++r) {
    sum += term;
    term *= 2.0 * p;
  }
  return sum;
}

}  // namespace

double invert_window(double tau_hat, double p_hat, int max_stage,
                     double w_max_hint) {
  if (tau_hat <= 0.0) return w_max_hint;  // no attempts observed
  tau_hat = std::min(tau_hat, 1.0);
  p_hat = std::clamp(p_hat, 0.0, 1.0);
  const double denom = 1.0 + p_hat * geometric_sum_2p(p_hat, max_stage);
  const double w = (2.0 / tau_hat - 1.0) / denom;
  return std::max(1.0, std::min(w, w_max_hint));
}

std::vector<CwEstimate> estimate_windows(const SimResult& observed,
                                         int max_stage) {
  if (observed.slots == 0 || observed.node.empty()) {
    throw std::invalid_argument("estimate_windows: empty observation");
  }
  const std::size_t n = observed.node.size();
  std::vector<CwEstimate> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].attempts = observed.node[i].attempts;
    out[i].tau_hat = static_cast<double>(observed.node[i].attempts) /
                     static_cast<double>(observed.slots);
  }
  // p̂_i from the *other* stations' estimated τ via prefix/suffix products.
  std::vector<double> prefix(n + 1, 1.0);
  std::vector<double> suffix(n + 1, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] * (1.0 - std::min(out[i].tau_hat, 1.0));
  }
  for (std::size_t i = n; i-- > 0;) {
    suffix[i] = suffix[i + 1] * (1.0 - std::min(out[i].tau_hat, 1.0));
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i].p_hat = std::clamp(1.0 - prefix[i] * suffix[i + 1], 0.0, 1.0);
    out[i].w_hat = invert_window(out[i].tau_hat, out[i].p_hat, max_stage,
                                 /*w_max_hint=*/1e9);
  }
  return out;
}

// ---- EstimatingTitForTat ----

EstimatingTitForTat::EstimatingTitForTat(int initial_w, Feed estimates_feed)
    : initial_w_(initial_w), feed_(std::move(estimates_feed)) {
  if (initial_w < 1) {
    throw std::invalid_argument("EstimatingTitForTat: initial_w < 1");
  }
  if (!feed_) throw std::invalid_argument("EstimatingTitForTat: null feed");
}

int EstimatingTitForTat::decide(const game::History& history,
                                std::size_t self) {
  if (history.empty() || feed_->empty()) return initial_w_;
  // Match the most aggressive *estimated* window, own true window included
  // (a node knows its own configuration exactly).
  double min_est = static_cast<double>(history.back().cw.at(self));
  for (std::size_t j = 0; j < feed_->size(); ++j) {
    if (j == self) continue;
    min_est = std::min(min_est, (*feed_)[j]);
  }
  return std::max(1, static_cast<int>(min_est + 0.5));
}

// ---- EstimatingGtft ----

EstimatingGtft::EstimatingGtft(int initial_w, double beta, int window_stages,
                               Feed feed)
    : initial_w_(initial_w), beta_(beta), r0_(window_stages),
      feed_(std::move(feed)) {
  if (initial_w < 1) throw std::invalid_argument("EstimatingGtft: initial_w < 1");
  if (!(beta > 0.0) || !(beta < 1.0)) {
    throw std::invalid_argument("EstimatingGtft: beta outside (0,1)");
  }
  if (window_stages < 1) {
    throw std::invalid_argument("EstimatingGtft: window_stages < 1");
  }
  if (!feed_) throw std::invalid_argument("EstimatingGtft: null feed");
}

int EstimatingGtft::decide(const game::History& history, std::size_t self) {
  if (history.empty() || feed_->empty()) return initial_w_;
  recent_.push_back(*feed_);
  if (static_cast<int>(recent_.size()) > r0_) {
    recent_.erase(recent_.begin());
  }

  const int current = history.back().cw.at(self);
  const std::size_t n = feed_->size();
  bool someone_aggressive = false;
  double min_avg = static_cast<double>(current);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == self) continue;
    double avg = 0.0;
    for (const auto& snapshot : recent_) avg += snapshot[j];
    avg /= static_cast<double>(recent_.size());
    min_avg = std::min(min_avg, avg);
    if (avg < beta_ * current) someone_aggressive = true;
  }
  if (!someone_aggressive) return current;
  return std::max(1, static_cast<int>(min_avg + 0.5));
}

std::string EstimatingGtft::name() const {
  std::ostringstream os;
  os << "gtft-estimating(beta=" << beta_ << ",r0=" << r0_ << ")";
  return os.str();
}

// ---- DetectorGtft ----

DetectorGtft::DetectorGtft(int initial_w, EstimateFeed estimates,
                           FlagFeed flags)
    : initial_w_(initial_w), estimates_(std::move(estimates)),
      flags_(std::move(flags)) {
  if (initial_w < 1) throw std::invalid_argument("DetectorGtft: initial_w < 1");
  if (!estimates_ || !flags_) {
    throw std::invalid_argument("DetectorGtft: null feed");
  }
}

int DetectorGtft::decide(const game::History& history, std::size_t self) {
  if (history.empty() || flags_->empty()) return initial_w_;
  const int current = history.back().cw.at(self);
  bool any_flagged = false;
  double min_flagged_estimate = static_cast<double>(current);
  for (std::size_t j = 0; j < flags_->size(); ++j) {
    if (j == self || !(*flags_)[j]) continue;
    any_flagged = true;
    min_flagged_estimate =
        std::min(min_flagged_estimate, (*estimates_)[j]);
  }
  if (!any_flagged) return current;
  // TFT-style retaliation, but only against proven aggression: match the
  // most aggressive *flagged* node's estimated window.
  return std::max(1, static_cast<int>(min_flagged_estimate + 0.5));
}

// ---- EstimatingRuntime ----

namespace {

std::vector<std::unique_ptr<game::Strategy>> build_strategies(
    std::size_t n, const EstimatingRuntime::StrategyFactory& make_strategy,
    const std::shared_ptr<std::vector<double>>& feed,
    const std::shared_ptr<std::vector<bool>>& flags) {
  if (n == 0) throw std::invalid_argument("EstimatingRuntime: n == 0");
  if (!make_strategy) {
    throw std::invalid_argument("EstimatingRuntime: null factory");
  }
  std::vector<std::unique_ptr<game::Strategy>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = make_strategy(i, feed, flags);
    if (!s) throw std::invalid_argument("EstimatingRuntime: factory returned null");
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<int> initial_profile(
    const std::vector<std::unique_ptr<game::Strategy>>& strategies) {
  std::vector<int> cw;
  cw.reserve(strategies.size());
  for (const auto& s : strategies) cw.push_back(s->initial_cw());
  return cw;
}

}  // namespace

EstimatingRuntime::EstimatingRuntime(SimConfig config, std::size_t n,
                                     const StrategyFactory& make_strategy,
                                     double stage_duration_us)
    : feed_(std::make_shared<std::vector<double>>()),
      flags_(std::make_shared<std::vector<bool>>()),
      strategies_(build_strategies(n, make_strategy, feed_, flags_)),
      simulator_(config, initial_profile(strategies_)),
      stage_duration_us_(stage_duration_us),
      max_stage_(config.params.max_backoff_stage) {
  if (!(stage_duration_us_ > 0.0)) {
    throw std::invalid_argument("EstimatingRuntime: stage duration <= 0");
  }
}

EstimationRuntimeResult EstimatingRuntime::play(int stages) {
  if (stages < 1) throw std::invalid_argument("EstimatingRuntime: stages < 1");
  const std::size_t n = strategies_.size();

  EstimationRuntimeResult result;
  for (int k = 0; k < stages; ++k) {
    game::StageRecord record;
    record.cw.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      record.cw[i] = k == 0 ? strategies_[i]->initial_cw()
                            : strategies_[i]->decide(result.history, i);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (simulator_.cw(i) != record.cw[i]) simulator_.set_cw(i, record.cw[i]);
    }
    const SimResult stage = simulator_.run_for(stage_duration_us_);
    record.utility.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      record.utility[i] = stage.payoff_rate[i] * stage.elapsed_us;
    }
    // Refresh the shared estimate feed from this stage's observables.
    const auto estimates = estimate_windows(stage, max_stage_);
    feed_->resize(n);
    for (std::size_t i = 0; i < n; ++i) (*feed_)[i] = estimates[i].w_hat;
    result.estimates_per_stage.push_back(*feed_);

    // Refresh misbehavior flags against the modal window of the profile
    // just played (the de-facto agreement).
    std::map<int, int> histogram;
    for (int w : record.cw) ++histogram[w];
    int modal_w = record.cw.front();
    int modal_count = 0;
    for (const auto& [w, count] : histogram) {
      if (count > modal_count) {
        modal_count = count;
        modal_w = w;
      }
    }
    const auto verdicts = detect_misbehavior(stage, modal_w, max_stage_);
    flags_->resize(n);
    for (std::size_t i = 0; i < n; ++i) (*flags_)[i] = verdicts[i].flagged;
    result.flags_per_stage.push_back(*flags_);
    result.history.push_back(std::move(record));
  }

  const auto& last = result.history.back().cw;
  if (std::all_of(last.begin(), last.end(),
                  [&](int w) { return w == last.front(); })) {
    result.converged_cw = last.front();
  }
  return result;
}

}  // namespace smac::sim
