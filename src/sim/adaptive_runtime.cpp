#include "sim/adaptive_runtime.hpp"

#include <algorithm>
#include <stdexcept>

namespace smac::sim {

namespace {

std::vector<int> initial_profile(
    const std::vector<std::unique_ptr<game::Strategy>>& strategies) {
  if (strategies.empty()) {
    throw std::invalid_argument("AdaptiveRuntime: no strategies");
  }
  std::vector<int> cw;
  cw.reserve(strategies.size());
  for (const auto& s : strategies) {
    if (!s) throw std::invalid_argument("AdaptiveRuntime: null strategy");
    cw.push_back(s->initial_cw());
  }
  return cw;
}

}  // namespace

AdaptiveRuntime::AdaptiveRuntime(
    SimConfig config, std::vector<std::unique_ptr<game::Strategy>> strategies,
    std::optional<double> stage_duration_us)
    : strategies_(std::move(strategies)),
      simulator_(config, initial_profile(strategies_)),
      stage_duration_us_(
          stage_duration_us.value_or(config.params.stage_duration_s * 1e6)),
      discount_(config.params.discount) {
  if (!(stage_duration_us_ > 0.0)) {
    throw std::invalid_argument("AdaptiveRuntime: stage duration must be > 0");
  }
}

AdaptiveResult AdaptiveRuntime::play(int stages) {
  if (stages < 1) throw std::invalid_argument("AdaptiveRuntime: stages < 1");
  const std::size_t n = strategies_.size();

  AdaptiveResult result;
  result.history.reserve(static_cast<std::size_t>(stages));
  result.discounted_utility.assign(n, 0.0);
  result.total_utility.assign(n, 0.0);

  double discount_k = 1.0;
  for (int k = 0; k < stages; ++k) {
    game::StageRecord record;
    record.cw.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      record.cw[i] = k == 0 ? strategies_[i]->initial_cw()
                            : strategies_[i]->decide(result.history, i);
    }
    // Only touch nodes whose window actually changes: set_cw restarts the
    // backoff, and a stable profile should keep its chain state.
    for (std::size_t i = 0; i < n; ++i) {
      if (simulator_.cw(i) != record.cw[i]) simulator_.set_cw(i, record.cw[i]);
    }

    const SimResult stage = simulator_.run_for(stage_duration_us_);
    record.utility.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Measured stage payoff: rate × realized stage length.
      record.utility[i] = stage.payoff_rate[i] * stage.elapsed_us;
      result.discounted_utility[i] += discount_k * record.utility[i];
      result.total_utility[i] += record.utility[i];
    }
    discount_k *= discount_;
    result.history.push_back(std::move(record));
  }

  const game::StageRecord& last = result.history.back();
  if (std::all_of(last.cw.begin(), last.cw.end(),
                  [&](int w) { return w == last.cw.front(); })) {
    result.converged_cw = last.cw.front();
  }
  result.stable_from = stages;
  for (int k = stages; k-- > 0;) {
    if (result.history[static_cast<std::size_t>(k)].cw == last.cw) {
      result.stable_from = k;
    } else {
      break;
    }
  }
  return result;
}

}  // namespace smac::sim
