// Sim-driven repeated game: strategies adapt their contention window stage
// by stage while payoffs are *measured* on the slot-level simulator
// instead of computed from the analytical model.
//
// This is the paper's actual operating regime: each stage lasts T seconds,
// nodes observe opponents' windows (promiscuous-mode measurement, assumed
// perfect as in the paper) and realized payoffs are (n_s·g − n_e·e) over
// the stage. Comparing trajectories of this runtime against
// game::RepeatedGameEngine validates the analytical model end to end.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "game/strategies.hpp"
#include "sim/simulator.hpp"

namespace smac::sim {

struct AdaptiveResult {
  game::History history;                   ///< per stage: profile + measured payoffs
  std::vector<double> discounted_utility;  ///< Σ_k δ^k·U_i^s
  std::vector<double> total_utility;
  std::optional<int> converged_cw;  ///< common window of the final stage
  int stable_from = 0;              ///< first stage of the final stable profile
};

class AdaptiveRuntime {
 public:
  /// One strategy per node. Stage duration defaults to the parameter set's
  /// T; shorten it in tests to trade accuracy for speed.
  AdaptiveRuntime(SimConfig config,
                  std::vector<std::unique_ptr<game::Strategy>> strategies,
                  std::optional<double> stage_duration_us = std::nullopt);

  std::size_t player_count() const noexcept { return strategies_.size(); }

  /// Plays `stages` stages; the simulator's backoff state carries across
  /// stages (only measurement counters reset).
  AdaptiveResult play(int stages);

 private:
  std::vector<std::unique_ptr<game::Strategy>> strategies_;
  Simulator simulator_;
  double stage_duration_us_;
  double discount_;
};

}  // namespace smac::sim
