#include "sim/search_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smac::sim {

namespace {

/// One Ready round: every node adopts `w`, the channel settles, and the
/// leader measures its payoff over the measurement window.
double measure_at(Simulator& sim, std::size_t leader, int w,
                  const SearchConfig& config, SearchResult& result) {
  sim.set_all_cw(w);
  if (config.settle_us > 0.0) {
    const SimResult settle = sim.run_for(config.settle_us);
    result.elapsed_us += settle.elapsed_us;
  }
  const SimResult window = sim.run_for(config.measure_us);
  result.elapsed_us += window.elapsed_us;
  const double payoff = window.payoff_rate.at(leader);
  result.trace.push_back({w, payoff});
  ++result.steps;
  return payoff;
}

}  // namespace

SearchResult run_search(Simulator& sim, std::size_t leader,
                        const SearchConfig& config) {
  if (config.w_start < 1) {
    throw std::invalid_argument("run_search: w_start < 1");
  }
  if (config.step < 1) throw std::invalid_argument("run_search: step < 1");
  if (config.patience < 1) {
    throw std::invalid_argument("run_search: patience < 1");
  }
  if (!(config.measure_us > 0.0)) {
    throw std::invalid_argument("run_search: measure_us must be > 0");
  }
  if (leader >= sim.node_count()) {
    throw std::invalid_argument("run_search: leader out of range");
  }
  if (config.improvement_epsilon < 0.0) {
    throw std::invalid_argument("run_search: improvement_epsilon < 0");
  }
  const int w_max = sim.config().params.w_max;

  SearchResult result;
  const auto improves = [&](double payoff, double best) {
    return payoff > best + config.improvement_epsilon * std::abs(best);
  };
  // Start-Search: everyone begins at W0; the leader takes a baseline.
  double best_payoff = measure_at(sim, leader, config.w_start, config, result);
  int best_w = config.w_start;

  // Right-Search: raise the window while the measured payoff improves.
  int w = config.w_start;
  int misses = 0;
  while (misses < config.patience && w < w_max &&
         result.steps < config.max_steps) {
    w = std::min(w + config.step, w_max);
    const double payoff = measure_at(sim, leader, w, config, result);
    if (improves(payoff, best_payoff)) {
      best_payoff = payoff;
      best_w = w;
      misses = 0;
    } else {
      ++misses;
    }
  }

  // Left-Search only when the right sweep never improved on W0 (the peak
  // may lie below the starting point).
  if (best_w == config.w_start) {
    result.used_left_search = true;
    w = config.w_start;
    misses = 0;
    while (misses < config.patience && w > 1 &&
           result.steps < config.max_steps) {
      w = std::max(w - config.step, 1);
      const double payoff = measure_at(sim, leader, w, config, result);
      if (improves(payoff, best_payoff)) {
        best_payoff = payoff;
        best_w = w;
        misses = 0;
      } else {
        ++misses;
      }
    }
  }

  result.hit_step_limit = result.steps >= config.max_steps;
  result.w_found = best_w;
  // Broadcast of W_m: every node settles on the found window.
  sim.set_all_cw(best_w);
  return result;
}

}  // namespace smac::sim
