// Uniform-grid spatial hash over the multi-hop plane: the metropolitan-
// scale replacement for the O(n²) pair scan (docs/CITY_SCALE.md).
//
// Nodes are bucketed by cell = (⌊x/r⌋, ⌊y/r⌋) with the cell edge equal to
// the communication range r, so every unit-disk neighbor of a node lives
// in the 3×3 cell stencil around it. Complexity contract:
//
//   * full build           O(n + Σ_i |stencil_i|) expected — for the
//     bounded-density layouts mobility produces, O(n + m) with m the
//     edge count, against the pair scan's Θ(n²);
//   * incremental update   only nodes whose position changed are
//     re-scanned (9-cell stencil each) and only nodes that crossed a
//     cell boundary are re-bucketed; unmoved neighbors are patched in
//     place. A mobility step that moves q nodes costs
//     O(q·(stencil + deg)) — independent of n for local motion;
//   * churn                remove_node / insert_node are O(stencil + deg)
//     — the fault::FaultPlan crash/join hooks at index level.
//
// Degenerate layouts stay correct (and degrade gracefully): all nodes in
// one cell or a range wider than the arena collapse the stencil scan to
// the pair scan's cost; an empty index is valid (node_count() == 0).
//
// Determinism: neighbor lists are kept sorted ascending — the same order
// the O(n²) oracle (build_topology_full) produces — so results are a pure
// function of (positions, range, active set) and never of bucket
// insertion order or hash iteration order. The `build_order` constructor
// exists so tests can prove that (tests/multihop/spatial_index_test.cpp,
// `ctest -L topology`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "multihop/geometry.hpp"
#include "multihop/topology.hpp"

namespace smac::multihop {

class SpatialIndex {
 public:
  /// What the last update_positions / move_node call actually did.
  struct UpdateStats {
    std::size_t moved = 0;       ///< nodes whose position changed
    std::size_t rebucketed = 0;  ///< moved nodes that crossed a cell edge
    std::size_t rescanned = 0;   ///< active moved nodes (stencil re-scans)
  };

  /// Full build over `positions` (all nodes active). Throws
  /// std::invalid_argument on range <= 0 or a non-finite coordinate;
  /// an empty position set is allowed.
  SpatialIndex(std::vector<Vec2> positions, double range_m);

  /// Full build with an explicit active mask (mask.size() == n; inactive
  /// nodes hold a position but join no neighbor set) — the churn oracle.
  SpatialIndex(std::vector<Vec2> positions, double range_m,
               const std::vector<std::uint8_t>& active);

  /// Full build bucketing nodes in `build_order` (a permutation of
  /// 0..n−1). Neighbor sets are order-invariant by construction; this
  /// constructor lets tests assert it.
  SpatialIndex(std::vector<Vec2> positions, double range_m,
               std::span<const std::size_t> build_order);

  std::size_t node_count() const noexcept { return positions_.size(); }
  double range_m() const noexcept { return range_m_; }
  const std::vector<Vec2>& positions() const noexcept { return positions_; }
  Vec2 position(std::size_t i) const { return positions_.at(i); }

  bool active(std::size_t i) const { return active_.at(i) != 0; }
  std::size_t active_count() const noexcept { return active_count_; }

  /// Unit-disk neighbors of i among *active* nodes, ascending. Empty for
  /// an inactive node.
  const std::vector<std::size_t>& neighbors(std::size_t i) const {
    return neighbors_.at(i);
  }
  std::size_t degree(std::size_t i) const { return neighbors_.at(i).size(); }
  /// Undirected edge count over the active subgraph.
  std::size_t edge_count() const noexcept;

  /// Incremental mobility step: adopts `positions` (same node count),
  /// re-bucketing only cell-boundary crossers and re-scanning only nodes
  /// that moved (their unmoved neighbors are patched in place). The
  /// result is identical to a full rebuild from the new positions —
  /// pinned by the `ctest -L topology` property tests.
  void update_positions(const std::vector<Vec2>& positions);

  /// Single-node variant of update_positions.
  void move_node(std::size_t i, Vec2 position);

  /// Churn-out (FaultKind::kCrash): node i leaves every neighbor set and
  /// its own empties. Keeps its position; no-op when already inactive.
  void remove_node(std::size_t i);

  /// Churn-in (FaultKind::kJoin) at the node's current position; no-op
  /// when already active.
  void insert_node(std::size_t i);

  /// Churn-in at a new position.
  void insert_node(std::size_t i, Vec2 position);

  /// Materializes the current neighbor structure as a Topology (copies
  /// the adjacency; O(n + m)). Throws like Topology on node_count() == 0.
  Topology topology() const;

  /// Moves the adjacency out, leaving the index unusable — the grid-routed
  /// Topology constructor's zero-copy exit.
  std::vector<std::vector<std::size_t>> take_neighbors() &&;

  const UpdateStats& last_update() const noexcept { return last_update_; }

 private:
  std::uint64_t cell_key(Vec2 p) const noexcept;
  void bucket_add(std::uint64_t key, std::size_t i);
  void bucket_remove(std::uint64_t key, std::size_t i);
  /// Stencil scan: sorted active in-range nodes around i (excluding i).
  std::vector<std::size_t> scan(std::size_t i) const;
  void full_build(std::span<const std::size_t> build_order);
  static void validate_positions(const std::vector<Vec2>& positions);

  double range_m_ = 0.0;
  std::vector<Vec2> positions_;
  std::vector<std::uint8_t> active_;
  std::size_t active_count_ = 0;
  std::vector<std::uint64_t> cell_of_;  ///< cell key per node (active only)
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
  std::vector<std::vector<std::size_t>> neighbors_;
  std::vector<std::uint8_t> moved_scratch_;
  UpdateStats last_update_;
};

}  // namespace smac::multihop
