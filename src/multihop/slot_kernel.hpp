// Shared per-slot machinery of the two multihop kernels (detail header).
//
// The serial slot loop (`run_multihop_slot_loop`, the oracle) and the
// conservative PDES kernel (src/multihop/pdes.*) must produce bitwise
// identical results, so every decision that involves randomness or
// floating-point accumulation lives here and is written against one
// draw discipline:
//
//   draw stream of node i at global slot s
//       = util::Rng(parallel::stream_seed(node_draw_base(seed, i), s))
//
// i.e. a counter-derived stream per (node, slot) in the
// parallel::stream_seed discipline. Draw #1 is the receiver pick, draw
// #2 the bursty-channel corruption trial. Because a stream is keyed by
// (node, global slot) and never advanced across slots, any logical
// process can replay any node's draws for any slot without coordination
// — which is what makes the PDES kernel's output a pure function of
// (seed, topology, fault plan) instead of thread scheduling, and what
// lets a region re-derive a fringe neighbor's receiver pick without
// owning its stream. (The per-node DcfNode backoff streams are
// sequential, but they are only ever advanced by the owning kernel/LP
// in slot order, so they need no counter derivation.)
#pragma once

#include <cstdint>
#include <vector>

#include "multihop/topology.hpp"
#include "parallel/replication.hpp"
#include "phy/parameters.hpp"
#include "util/rng.hpp"

namespace smac::multihop {
struct MultihopConfig;
struct MultihopResult;
}  // namespace smac::multihop

namespace smac::multihop::detail {

/// Salt separating the receiver/corruption draw family from the DcfNode
/// backoff master (seed ^ 0xabcdef1234567890) and the Gilbert–Elliott
/// chain (seed ^ 0xb4d57a7e).
inline constexpr std::uint64_t kDrawSalt = 0x8f0c2b7d91e64a35ULL;

/// Per-node base of the (node, slot) draw streams.
inline std::uint64_t node_draw_base(std::uint64_t sim_seed,
                                    std::size_t node) noexcept {
  return parallel::stream_seed(sim_seed ^ kDrawSalt, node);
}

/// The (node, slot) stream itself. `global_slot` counts from simulator
/// construction (MultihopSimulator::total_slots), so window splits do
/// not change the draws — the window-split equivalences pinned by
/// tests/multihop/multihop_fault_test.cpp survive by construction.
inline util::Rng slot_rng(std::uint64_t node_base,
                          std::uint64_t global_slot) noexcept {
  return util::Rng(parallel::stream_seed(node_base, global_slot));
}

/// Per-transmitter slot outcome codes (shared by both kernels).
enum SlotOutcome : int {
  kOutcomeSuccess = 0,          ///< clear sender, undisturbed receiver
  kOutcomeSenderCollision = 1,  ///< contended within own range
  kOutcomeHiddenLoss = 2,       ///< clear locally, jammed at receiver
  kOutcomeIsolated = 3,         ///< no active neighbor to send to
  kOutcomeChannelLoss = 4,      ///< clear + unjammed, corrupted by channel
  kOutcomeNone = -1,            ///< node did not transmit this slot
};

/// True when an outcome occupies successful airtime in its neighborhood:
/// a channel-corrupted frame (kOutcomeChannelLoss) still looks like a
/// delivered frame on the air — the loss is at the receiver. This is the
/// reason a region can classify a fringe neighbor's slot without its
/// corruption draw: corruption never changes the on-air class.
inline bool on_air_success(int outcome) noexcept {
  return outcome == kOutcomeSuccess || outcome == kOutcomeChannelLoss;
}

/// Classifies the on-air outcome of transmitter i (no corruption trial —
/// the caller layers kOutcomeChannelLoss with draw #2 where it owns the
/// node). `rng` must be the (i, slot) stream positioned at draw #1.
/// is_tx(j)/is_active(j) report node j's transmit/active state for this
/// slot; `scratch` is caller-owned receiver scratch.
template <class IsTx, class IsActive>
inline int classify_transmitter(const Topology& topology, std::size_t i,
                                util::Rng& rng, IsTx&& is_tx,
                                IsActive&& is_active,
                                std::vector<std::size_t>& scratch) {
  const std::vector<std::size_t>& nb = topology.neighbors(i);
  // Crashed neighbors cannot receive.
  scratch.clear();
  for (std::size_t j : nb) {
    if (is_active(j)) scratch.push_back(j);
  }
  if (scratch.empty()) return kOutcomeIsolated;
  const std::size_t r = scratch[rng.uniform_below(scratch.size())];

  // In a unit-disk graph `j transmits in range of i` is exactly
  // `j ∈ neighbors(i) ∧ is_tx(j)`, so interference tests walk neighbor
  // lists — O(deg) per test.
  bool sender_contended = false;
  bool receiver_jammed = is_tx(r);  // receiver busy transmitting
  for (std::size_t j : nb) {
    if (is_tx(j)) {
      sender_contended = true;
      break;  // sender-side contention dominates the classification
    }
  }
  if (!sender_contended && !receiver_jammed) {
    for (std::size_t j : topology.neighbors(r)) {
      if (j == i) continue;
      if (is_tx(j)) {
        receiver_jammed = true;
        break;
      }
    }
  }
  return sender_contended
             ? kOutcomeSenderCollision
             : (receiver_jammed ? kOutcomeHiddenLoss : kOutcomeSuccess);
}

/// Local channel time node i accrues this slot: σ if no transmitter in
/// range (incl. self), T_s if some in-range transmission succeeded on
/// air, else T_c. success_of(j) must hold on_air_success of *transmitting*
/// neighbor j's outcome.
template <class IsTx, class SuccessOf>
inline double local_slot_time_us(const Topology& topology, std::size_t i,
                                 const phy::SlotTimes& times, bool self_tx,
                                 bool self_success, IsTx&& is_tx,
                                 SuccessOf&& success_of) {
  bool any_tx = self_tx;
  bool any_success = self_tx && self_success;
  if (!any_success) {
    for (std::size_t j : topology.neighbors(i)) {
      if (is_tx(j)) {
        any_tx = true;
        if (success_of(j)) {
          any_success = true;
          break;
        }
      }
    }
  }
  return !any_tx ? times.sigma_us : any_success ? times.ts_us : times.tc_us;
}

/// Per-node accumulators of one measurement window (shared so the two
/// kernels reduce identically).
struct SlotTally {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t sender_collisions = 0;
  std::uint64_t hidden_losses = 0;
  std::uint64_t channel_losses = 0;
  std::uint64_t own_attempt_slots = 0;
  double local_time_us = 0.0;
};

/// Applies transmitter i's final outcome to its tally and backoff state
/// — the single mutation point both kernels share. Crashed nodes and
/// non-transmitters are the caller's business (observe_slot / skip).
template <class Node>
inline void apply_outcome(int outcome, SlotTally& tally, Node& node) {
  ++tally.own_attempt_slots;
  switch (outcome) {
    case kOutcomeSuccess:
      ++tally.attempts;
      ++tally.successes;
      node.on_success();
      break;
    case kOutcomeSenderCollision:
      ++tally.attempts;
      ++tally.sender_collisions;
      node.on_collision();
      break;
    case kOutcomeHiddenLoss:
      ++tally.attempts;
      ++tally.hidden_losses;
      // The sender's own domain was clear: in 802.11 terms it gets no
      // CTS/ACK and backs off, exactly like a collision.
      node.on_collision();
      break;
    case kOutcomeIsolated:
      // Isolated: skip the slot without spending energy.
      node.on_success();
      break;
    case kOutcomeChannelLoss:
      ++tally.attempts;
      ++tally.channel_losses;
      // No ACK arrives: the sender backs off exactly as after a
      // collision, just as in the single-hop error path.
      node.on_collision();
      break;
  }
}

/// Window finalization shared by both kernels (multihop_simulator.cpp):
/// reduces per-node tallies into a MultihopResult in node order, so the
/// derived doubles are bitwise identical however the window was run.
MultihopResult assemble_result(const MultihopConfig& config,
                               std::uint64_t slots,
                               std::uint64_t bad_state_slots,
                               const std::vector<SlotTally>& tally);

}  // namespace smac::multihop::detail
