// Stage-driven TFT dynamics on the multi-hop simulator (paper §VI).
//
// tft_min_convergence() analyzes the window dynamics as a pure graph
// iteration; this runtime actually *plays* them: each stage the spatial
// simulator runs for a fixed number of slots with the current profile,
// every node observes only its neighbors' configured windows (the paper's
// local-observation model) and applies TFT — match the smallest window in
// the closed neighborhood — and mobility can move nodes between stages,
// changing who observes whom. Payoffs are the simulator's measured local
// payoff rates, so the trajectory carries both the convergence facts of
// Theorem 3 and their price.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/degradation.hpp"
#include "fault/fault_injector.hpp"
#include "multihop/mobility.hpp"
#include "multihop/multihop_simulator.hpp"

namespace smac::multihop {

struct MultihopStage {
  std::vector<int> cw;            ///< profile played this stage
  std::vector<double> payoff;     ///< measured per-node payoff rates
  double global_payoff = 0.0;
  bool topology_connected = false;
  /// Fault-aware runs mark crashed nodes (empty = all online).
  std::vector<std::uint8_t> online;
};

struct MultihopTftResult {
  std::vector<MultihopStage> stages;
  /// Common window if the final profile is uniform.
  std::optional<int> converged_cw;
  /// First stage whose profile equals the final one.
  int stable_from = 0;
  /// Fault accounting (clean for fault-free runs).
  fault::DegradationReport degradation;
};

struct MultihopTftConfig {
  std::uint64_t slots_per_stage = 40000;
  /// Seconds of mobility between stages (0 = static topology).
  double mobility_dt_s = 0.0;
  int stages = 10;
};

/// Plays graph-local TFT on `sim`, starting from its current profile.
/// When `mobility` is non-null it advances between stages and the
/// simulator's topology is rebuilt from the new positions.
MultihopTftResult play_multihop_tft(MultihopSimulator& sim,
                                    RandomWaypointModel* mobility,
                                    const MultihopTftConfig& config);

/// Fault-aware variant. `injector` (node_count matching, stage 0 not yet
/// begun) drives crashes/joins and observation faults; nullptr reproduces
/// the fault-free overload exactly. A crashed node is deactivated in the
/// simulator, keeps its window, and is skipped by its neighbors' TFT
/// matching; each node's view of a neighbor's window passes through
/// FaultInjector::observe_cw with its previous belief as loss fallback.
MultihopTftResult play_multihop_tft(MultihopSimulator& sim,
                                    RandomWaypointModel* mobility,
                                    const MultihopTftConfig& config,
                                    fault::FaultInjector* injector);

}  // namespace smac::multihop
