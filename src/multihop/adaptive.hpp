// Stage-driven TFT dynamics on the multi-hop simulator (paper §VI).
//
// tft_min_convergence() analyzes the window dynamics as a pure graph
// iteration; this runtime actually *plays* them: each stage the spatial
// simulator runs for a fixed number of slots with the current profile,
// every node observes only its neighbors' configured windows (the paper's
// local-observation model) and applies TFT — match the smallest window in
// the closed neighborhood — and mobility can move nodes between stages,
// changing who observes whom. Payoffs are the simulator's measured local
// payoff rates, so the trajectory carries both the convergence facts of
// Theorem 3 and their price.
//
// Kernel choice flows through MultihopConfig::kernel untouched: a
// simulator configured for the PDES kernel plays every stage window
// region-parallel, and each mobility refresh (update_topology) rebuilds
// its region partition from the new positions — trajectories stay
// bitwise identical to slot-loop runs (the pdes test tier pins the
// refresh path too).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/degradation.hpp"
#include "fault/fault_injector.hpp"
#include "multihop/mobility.hpp"
#include "multihop/multihop_simulator.hpp"
#include "sim/online_detector.hpp"

namespace smac::multihop {

struct MultihopStage {
  std::vector<int> cw;            ///< profile played this stage
  std::vector<double> payoff;     ///< measured per-node payoff rates
  double global_payoff = 0.0;
  bool topology_connected = false;
  /// Fault-aware runs mark crashed nodes (empty = all online).
  std::vector<std::uint8_t> online;
};

struct MultihopTftResult {
  std::vector<MultihopStage> stages;
  /// Common window if the final profile is uniform.
  std::optional<int> converged_cw;
  /// First stage whose profile equals the final one.
  int stable_from = 0;
  /// Fault accounting (clean for fault-free runs).
  fault::DegradationReport degradation;
  /// Enforcement accounting (play_multihop_enforced only; 0 otherwise).
  int flags_raised = 0;
  int punishment_episodes = 0;
  int punished_stages = 0;
  int rehabilitations = 0;
};

struct MultihopTftConfig {
  std::uint64_t slots_per_stage = 40000;
  /// Seconds of mobility between stages (0 = static topology).
  double mobility_dt_s = 0.0;
  int stages = 10;
};

/// Plays graph-local TFT on `sim`, starting from its current profile.
/// When `mobility` is non-null it advances between stages and the
/// simulator's topology is rebuilt from the new positions.
MultihopTftResult play_multihop_tft(MultihopSimulator& sim,
                                    RandomWaypointModel* mobility,
                                    const MultihopTftConfig& config);

/// Fault-aware variant. `injector` (node_count matching, stage 0 not yet
/// begun) drives crashes/joins and observation faults; nullptr reproduces
/// the fault-free overload exactly. A crashed node is deactivated in the
/// simulator, keeps its window, and is skipped by its neighbors' TFT
/// matching; each node's view of a neighbor's window passes through
/// FaultInjector::observe_cw with its previous belief as loss fallback.
MultihopTftResult play_multihop_tft(MultihopSimulator& sim,
                                    RandomWaypointModel* mobility,
                                    const MultihopTftConfig& config,
                                    fault::FaultInjector* injector);

/// The distributed enforcement protocol for local games (the flooding
/// counterpart of game::ReactionPolicy's coordinator model).
struct MultihopEnforcementConfig {
  /// Per-node sequential detector geometry. Each compliant node monitors
  /// its neighbors against its own entry window (the local agreement from
  /// e.g. local_efficient_cw), with the closed-neighborhood size as n.
  sim::OnlineDetectorConfig detector;
  /// Backoff-stage bound of the detector's model.
  int max_stage = 6;
  /// Fixed episode length. Multihop punishment is not gain-calibrated —
  /// there is no shared stage game to price the what-if profiles; the
  /// single-hop ReactionPolicy implements the calibrated version.
  int punishment_stages = 4;
  /// Jamming window the offender's compliant neighbors drop to during an
  /// episode (punishers play min(own entry window, punishment_w)).
  /// Matching the offender's window would not starve it — deviation
  /// profits come from asymmetry — so punishers undercut it instead.
  int punishment_w = 1;
  /// compliant[i] == 0 marks a node outside the protocol: it never
  /// detects or punishes and keeps playing its entry window forever (the
  /// constant-deviant model). Empty = every node is compliant.
  std::vector<std::uint8_t> compliant;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

/// Plays the enforcement protocol instead of TFT matching: compliant
/// nodes *hold* their entry windows (deviations are the protocol's job,
/// not min-matching's — so no TFT contagion), each runs an OnlineDetector
/// over its neighbors' observed windows, and a flag is flooded: one
/// episode at a time network-wide, during which the offender's compliant
/// neighbors drop to min(own window, punishment_w) — undercutting it — for
/// `punishment_stages` stages while every detector suspends (punishers
/// must not read each other's punishment as deviation). The episode ends
/// with rehabilitation — the offender's evidence is cleared everywhere —
/// and, for a relentless deviant, fresh evidence re-flags it within a few
/// stages: its neighborhood spends most stages denying it the gain while
/// distant regions never leave their agreement. Observation faults apply
/// per (observer, neighbor) exactly as in play_multihop_tft.
MultihopTftResult play_multihop_enforced(
    MultihopSimulator& sim, RandomWaypointModel* mobility,
    const MultihopTftConfig& config,
    const MultihopEnforcementConfig& enforcement,
    fault::FaultInjector* injector = nullptr);

}  // namespace smac::multihop
