// Slot-level multi-hop DCF simulator with carrier sensing and hidden
// terminals (paper §VI/§VII.B substitute for NS-2).
//
// Space is a unit-disk graph: a transmission from i is heard within
// range_m of i. In every global slot, all nodes whose backoff counter is
// zero transmit to a uniformly chosen neighbor. Outcome classification at
// transmitter i with receiver r:
//
//   * sender-visible collision — another transmitter within i's range
//     (i's own carrier-sense domain was contended; this is the p_i the
//     local Bianchi model sees);
//   * hidden-node loss — i's own domain was clear, but another transmitter
//     (outside i's range) or r's own transmission interferes at r (this is
//     the 1 − p_hn degradation of §VI.A);
//   * success — neither.
//
// Each node accrues *local* channel time per slot: σ if no transmitter in
// its range, T_s if a successful transmission is in range, else T_c, which
// matches the paper's assumption that a node and its neighbors sense the
// same channel state. Payoffs are (n_s·g − n_e·e)/local time.
//
// Two interchangeable kernels realize the model (MultihopConfig::kernel):
// the serial global slot loop (the oracle) and a conservative
// region-parallel PDES kernel (src/multihop/pdes.*, docs/PDES.md). All
// randomness is keyed per (node, global slot) in the
// parallel::stream_seed discipline (src/multihop/slot_kernel.hpp), so
// both kernels — at any worker count and any region partition — are
// bitwise identical, pinned by the `ctest -L pdes` differential tier.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "multihop/pdes.hpp"
#include "multihop/topology.hpp"
#include "parallel/replication.hpp"
#include "phy/parameters.hpp"
#include "sim/dcf_node.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace smac::multihop {

struct MultihopConfig {
  phy::Parameters params = phy::Parameters::paper();
  /// Paper's multi-hop analysis assumes RTS/CTS access (§VI).
  phy::AccessMode mode = phy::AccessMode::kRtsCts;
  double range_m = 250.0;
  std::uint64_t seed = 11;
  /// Slot-level fault scenario: scripted crash/join events (slot indices
  /// count from simulator construction, across windows — the same
  /// convention as the single-hop simulator) plus an optional
  /// Gilbert–Elliott bursty-loss chain. The chain corrupts otherwise
  /// successful deliveries with PER_eff layered on
  /// params.packet_error_rate; with the chain disabled (the default) no
  /// extra RNG draws happen and behavior is unchanged — the spatial
  /// simulator models no i.i.d. channel noise on its own.
  fault::SlotFaultPlan faults;
  /// Engine choice. kSlotLoop is the serial reference loop (the oracle);
  /// kPdes is the conservative region-parallel kernel (docs/PDES.md).
  /// Both are bitwise identical at any pdes setting — the `ctest -L
  /// pdes` differential tier pins it — so the choice is purely about
  /// wall clock.
  MultihopKernel kernel = MultihopKernel::kSlotLoop;
  PdesOptions pdes;
};

/// Per-node measurement of one window.
struct MultihopNodeStats {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t sender_collisions = 0;  ///< contended within own range
  std::uint64_t hidden_losses = 0;      ///< clear locally, jammed at receiver
  std::uint64_t channel_losses = 0;     ///< clear + unjammed, corrupted by
                                        ///< the bursty channel
  double local_time_us = 0.0;           ///< Σ local slot durations
  double payoff_rate = 0.0;             ///< (n_s·g − n_e·e)/local time
  double measured_tau = 0.0;
  double measured_p = 0.0;     ///< sender-visible collision fraction
  double measured_p_hn = 0.0;  ///< delivery fraction given a clear sender
};

struct MultihopResult {
  std::uint64_t slots = 0;
  /// Slots spent in the Gilbert–Elliott Bad state (0 without a fault plan).
  std::uint64_t bad_state_slots = 0;
  std::vector<MultihopNodeStats> node;
  double global_payoff_rate = 0.0;  ///< Σ_i payoff_rate_i
  /// Aggregate p_hn over all nodes (paper's degradation factor).
  double aggregate_p_hn = 0.0;
};

class MultihopSimulator {
 public:
  /// Topology is captured by value; update_topology() re-binds positions
  /// after mobility moves nodes (backoff state is preserved).
  MultihopSimulator(MultihopConfig config, Topology topology,
                    const std::vector<int>& cw_profile);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  const Topology& topology() const noexcept { return topology_; }
  const MultihopConfig& config() const noexcept { return config_; }
  int cw(std::size_t i) const { return nodes_.at(i).cw(); }

  void set_cw(std::size_t i, int w);
  void set_all_cw(int w);
  void set_profile(const std::vector<int>& cw_profile);

  /// Crashes (active = false) or rejoins node i. An inactive node never
  /// transmits, freezes its backoff, accrues no local channel time (its
  /// payoff rate is 0), and is skipped when neighbors pick receivers.
  /// Scripted fault-plan events use the same mechanism, so a scripted
  /// crash at slot k equals a manual set_node_active(false) between a
  /// k-slot window and its remainder.
  void set_node_active(std::size_t i, bool active);
  bool node_active(std::size_t i) const { return active_.at(i) != 0; }

  /// Replaces the topology (same node count) — the mobility hook.
  void update_topology(Topology topology);

  /// Runs `slots` global slots and returns this window's measurements,
  /// through the kernel config_.kernel selects. The result — and the
  /// post-window backoff/active/channel state, so later windows chain
  /// identically — is a pure function of (seed, topology, profile, fault
  /// plan, slots): kernel choice, pdes options, and worker scheduling
  /// never enter (the `ctest -L pdes` contract).
  MultihopResult run_slots(std::uint64_t slots);

  /// Global slots simulated since construction (scripted SlotEvent
  /// indices refer to this counter).
  std::uint64_t total_slots() const noexcept { return total_slots_; }

  /// Diagnostics of the most recent kPdes window (zeros before the
  /// first one, or under kSlotLoop).
  const PdesRunStats& last_pdes_stats() const noexcept {
    return last_pdes_;
  }

 private:
  friend struct PdesEngine;  // pdes.cpp: the region-parallel run path

  MultihopResult run_slots_slot_loop(std::uint64_t slots);
  MultihopResult run_slots_pdes(std::uint64_t slots);

  MultihopConfig config_;
  phy::SlotTimes times_;
  Topology topology_;
  std::vector<sim::DcfNode> nodes_;
  std::vector<std::uint64_t> draw_base_;  ///< per-node (node,slot) bases
  std::vector<std::uint8_t> active_;
  std::vector<std::size_t> receiver_scratch_;
  fault::GilbertElliottChannel fault_channel_;
  std::size_t next_fault_event_ = 0;
  std::uint64_t total_slots_ = 0;
  /// Region partition cache for kPdes; rebuilt when the topology moves.
  std::optional<RegionPartition> partition_;
  PdesRunStats last_pdes_;
};

/// One-shot serial slot-loop run — THE oracle the PDES differential and
/// fuzz tiers compare against (the same pattern build_topology_full
/// serves for the spatial index). Ignores config.kernel.
MultihopResult run_multihop_slot_loop(const MultihopConfig& config,
                                      const Topology& topology,
                                      const std::vector<int>& cw_profile,
                                      std::uint64_t slots);

/// One-shot conservative-PDES run with config.pdes. Bitwise equal to
/// run_multihop_slot_loop on the same inputs, at any jobs/partition.
MultihopResult run_multihop_pdes(const MultihopConfig& config,
                                 const Topology& topology,
                                 const std::vector<int>& cw_profile,
                                 std::uint64_t slots,
                                 PdesRunStats* stats = nullptr);

/// Streaming aggregate of a replicated Monte-Carlo batch of one multihop
/// configuration. Individual MultihopResult windows are reduced on the
/// fly (replication r ran with seed parallel::stream_seed(config.seed,
/// r)); only the across-replication aggregates and the stopping report
/// are retained, so memory is O(batch size) regardless of replication
/// count. To inspect a single replication, rebuild it with
/// config.seed = parallel::stream_seed(config.seed, r).
struct MultihopBatch {
  /// Across-replication aggregates: global payoff rate, aggregate p_hn,
  /// success/hidden-loss fractions, mean tau.
  std::vector<util::MetricSummary> metrics;
  /// Replications executed, achieved CI half-width, and stop reason.
  parallel::StoppingReport stopping;
};

/// Metric names of MultihopBatch::metrics, in column order.
const std::vector<std::string>& replicated_metric_names();

/// Runs `replications` independent copies of (config, topology,
/// cw_profile) for `slots` slots each, fanned over `jobs` threads (1 =
/// serial inline, 0 = ThreadPool::default_jobs()). config.seed is the
/// base seed of the replication family; results are bit-identical for
/// any `jobs` (see src/parallel/replication.hpp).
MultihopBatch run_replicated(const MultihopConfig& config,
                             const Topology& topology,
                             const std::vector<int>& cw_profile,
                             std::uint64_t slots, std::size_t replications,
                             std::size_t jobs = 1);

/// Sequential-stopping variant: replicates in deterministic batches until
/// `rule`'s CI half-width target is met or rule.max_reps (must be > 0) is
/// exhausted. The first k replications are bit-identical to the fixed-N
/// overload's; the stop point is jobs-invariant.
MultihopBatch run_replicated(const MultihopConfig& config,
                             const Topology& topology,
                             const std::vector<int>& cw_profile,
                             std::uint64_t slots,
                             const parallel::StoppingRule& rule,
                             std::size_t jobs = 1);

}  // namespace smac::multihop
