// Conservative parallel discrete-event kernel for the multihop simulator
// (docs/PDES.md).
//
// The slot loop in multihop_simulator.cpp advances every node through one
// global slot sequence, so a long run uses one core no matter how many
// nodes. But carrier-sense interactions are local: a node's slot outcome
// depends on transmit state at most 2 hops away, and its local-time
// accrual on outcomes at most 3 hops away — nothing beyond 3·range_m
// (one Euclidean hop ≤ range_m). The PDES kernel exploits that by
// partitioning nodes into spatial regions, giving each region a logical
// process (LP) with its own slot horizon, and letting a region advance
// whenever every region owning nodes within the interference lookahead
// (3·range_m) has published the transmit flags it needs — the
// min-neighbor-horizon barrier of conservative PDES, with the slotted
// structure providing exactly one slot of lookahead. No rollback is ever
// needed; distant regions drift apart freely (pipelining across space).
//
// Determinism contract: results are bitwise identical to the serial slot
// loop (`run_multihop_slot_loop`, the oracle) at any worker count and any
// partition, because every stochastic decision is keyed per (node, global
// slot) in the parallel::stream_seed discipline (slot_kernel.hpp), every
// published flag is a pure function of (seed, topology, fault plan), and
// per-node tallies are reduced in node order. `ctest -L pdes` pins the
// equivalence over a (topology, fault, mobility, jobs, partition) grid;
// tests/fuzz/pdes_fuzz_test.cpp fuzzes it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "multihop/topology.hpp"

namespace smac::multihop {

/// Which engine MultihopSimulator::run_slots uses. Both produce bitwise
/// identical results; kSlotLoop is the serial reference (the oracle).
enum class MultihopKernel {
  kSlotLoop,
  kPdes,
};

const char* to_string(MultihopKernel kernel) noexcept;

/// Tuning of the PDES kernel. Every field is scheduling-only: results
/// never depend on it (pinned by the pdes test tier).
struct PdesOptions {
  /// Worker threads driving the logical processes (1 = serial in the
  /// calling thread, 0 = parallel::ThreadPool::default_jobs()); clamped
  /// to the region count.
  std::size_t jobs = 1;
  /// Region tile edge in units of range_m. 3.0 matches the interference
  /// lookahead — smaller tiles give more parallelism but denser region
  /// dependency graphs (correctness is independent of the value: the
  /// dependency sets are always derived from the 3·range_m ball).
  double region_edge_factor = 3.0;
  /// Degenerate partitions, for differential tests: everything in one LP
  /// (the kernel collapses to a slot loop with barrier bookkeeping), or
  /// one LP per node (maximal drift, maximal dependency churn).
  bool single_region = false;
  bool region_per_node = false;

  /// Throws std::invalid_argument on a non-finite/non-positive edge
  /// factor or both degenerate flags at once.
  void validate() const;
};

/// What the last PDES window actually did (MultihopSimulator::
/// last_pdes_stats). regions/dep_edges are pure functions of (positions,
/// range, options); lookahead_violations must always read 0 (a non-zero
/// value would mean a region observed a dependency's unpublished future —
/// the conservative barrier failed); max_horizon_lead is the largest
/// horizon lead a region ever took over one of its dependencies and can
/// never exceed 1 (the slotted lookahead), though its exact value is
/// scheduling-dependent.
struct PdesRunStats {
  std::size_t regions = 0;
  std::size_t dep_edges = 0;  ///< directed dependency pairs (excl. self)
  std::size_t jobs = 0;       ///< workers actually used
  std::uint64_t slots = 0;
  std::uint64_t lookahead_violations = 0;
  std::uint64_t max_horizon_lead = 0;
};

/// Spatial partition of a topology's nodes into PDES regions plus the
/// region dependency graph: regions a and b are dependent iff they own
/// nodes within lookahead_m() = 3·range_m of each other — the carrier-
/// sense interference horizon (1 hop of sender contention + 1 hop of
/// receiver jamming + 1 hop of neighbor-outcome local-time coupling,
/// each hop ≤ range_m). Pure function of (positions, range, options):
/// node order, hash order, and thread count never enter.
class RegionPartition {
 public:
  RegionPartition(const Topology& topology, const PdesOptions& options);

  std::size_t node_count() const noexcept { return region_of_.size(); }
  std::size_t region_count() const noexcept { return members_.size(); }
  double lookahead_m() const noexcept { return lookahead_m_; }

  std::size_t region_of(std::size_t node) const {
    return region_of_.at(node);
  }
  /// Position of `node` inside members(region_of(node)) — the dense
  /// owner-local index LPs use for per-owned-node scratch.
  std::uint32_t owned_pos(std::size_t node) const {
    return owned_pos_.at(node);
  }
  /// Owned node ids, ascending.
  const std::vector<std::size_t>& members(std::size_t region) const {
    return members_.at(region);
  }
  /// Dependency region ids, ascending, self excluded. A region may
  /// process slot s only when every dependency has published its
  /// transmit flags for slot s.
  const std::vector<std::size_t>& deps(std::size_t region) const {
    return deps_.at(region);
  }
  std::size_t dep_edge_count() const noexcept { return dep_edges_; }

  /// Θ(n²) oracle for the test tier: true iff every cross-region node
  /// pair within lookahead_m() induces a dependency edge both ways.
  bool covers_dependencies(const Topology& topology) const;

 private:
  double lookahead_m_ = 0.0;
  std::vector<std::size_t> region_of_;
  std::vector<std::uint32_t> owned_pos_;
  std::vector<std::vector<std::size_t>> members_;
  std::vector<std::vector<std::size_t>> deps_;
  std::size_t dep_edges_ = 0;
};

}  // namespace smac::multihop
