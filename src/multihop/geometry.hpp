// 2-D geometry primitives for the multi-hop plane.
#pragma once

#include <cmath>

namespace smac::multihop {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr bool operator==(const Vec2&) const noexcept = default;

  double norm() const noexcept { return std::hypot(x, y); }
};

inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }

/// Squared distance; avoids the sqrt in range tests.
constexpr double distance_sq(Vec2 a, Vec2 b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// True when a and b are within communication range r of each other.
constexpr bool in_range(Vec2 a, Vec2 b, double r) noexcept {
  return distance_sq(a, b) <= r * r;
}

}  // namespace smac::multihop
