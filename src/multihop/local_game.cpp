#include "multihop/local_game.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "game/equilibrium.hpp"

namespace smac::multihop {

std::vector<int> local_efficient_cw(const Topology& topology,
                                    const game::StageGame& game,
                                    int min_players) {
  if (min_players < 1) {
    throw std::invalid_argument("local_efficient_cw: min_players < 1");
  }
  // Collect the distinct local player counts first, then solve them in
  // ascending order: W_c*(n) is nondecreasing in n, so each result warm-
  // brackets the next search (EquilibriumFinder::efficient_cw_from).
  std::map<int, int> by_players;
  std::vector<int> players_of(topology.node_count());
  for (std::size_t i = 0; i < topology.node_count(); ++i) {
    const int players =
        std::max(min_players, static_cast<int>(topology.degree(i)) + 1);
    players_of[i] = players;
    by_players.emplace(players, 0);
  }
  int warm_lo = 1;
  for (auto& [players, w_star] : by_players) {
    const game::EquilibriumFinder finder(game, players);
    w_star = finder.efficient_cw_from(warm_lo);
    warm_lo = w_star;
  }
  std::vector<int> cw(topology.node_count());
  for (std::size_t i = 0; i < topology.node_count(); ++i) {
    cw[i] = by_players.at(players_of[i]);
  }
  return cw;
}

TftConvergence tft_min_convergence(const Topology& topology,
                                   std::vector<int> seed_profile,
                                   int max_stages) {
  if (seed_profile.size() != topology.node_count()) {
    throw std::invalid_argument("tft_min_convergence: profile size mismatch");
  }
  for (int w : seed_profile) {
    if (w < 1) throw std::invalid_argument("tft_min_convergence: w < 1");
  }

  TftConvergence out;
  out.trajectory.push_back(seed_profile);
  std::vector<int> current = std::move(seed_profile);
  std::vector<int> next(current.size());

  for (int stage = 0; stage < max_stages; ++stage) {
    bool changed = false;
    for (std::size_t i = 0; i < current.size(); ++i) {
      int w = current[i];
      for (std::size_t j : topology.neighbors(i)) {
        w = std::min(w, current[j]);
      }
      next[i] = w;
      changed |= (w != current[i]);
    }
    if (!changed) break;
    current = next;
    out.trajectory.push_back(current);
    ++out.stages;
  }

  out.converged_w = *std::min_element(current.begin(), current.end());
  out.uniform = std::all_of(current.begin(), current.end(),
                            [&](int w) { return w == current.front(); });
  return out;
}

}  // namespace smac::multihop
