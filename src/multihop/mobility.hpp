// Random-waypoint mobility over a rectangular area (paper §VII.B: 100
// nodes, 1000 m × 1000 m, speeds uniform in [0, 5] m/s).
//
// Each node repeatedly picks a uniform waypoint and a uniform speed, moves
// there in a straight line, then picks the next (optional pause time
// supported, default 0 as in the paper).
#pragma once

#include <vector>

#include "multihop/geometry.hpp"
#include "util/rng.hpp"

namespace smac::multihop {

struct MobilityConfig {
  double width_m = 1000.0;
  double height_m = 1000.0;
  double v_min_mps = 0.0;
  double v_max_mps = 5.0;
  double pause_s = 0.0;
  std::uint64_t seed = 7;
};

class RandomWaypointModel {
 public:
  RandomWaypointModel(MobilityConfig config, std::size_t node_count);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  const MobilityConfig& config() const noexcept { return config_; }

  /// Current position of node i.
  Vec2 position(std::size_t i) const { return nodes_.at(i).pos; }
  std::vector<Vec2> positions() const;

  /// Advances every node by dt seconds (handles waypoint arrivals and
  /// pauses mid-step; dt may span several legs).
  void advance(double dt_s);

 private:
  struct NodeState {
    Vec2 pos;
    Vec2 waypoint;
    double speed_mps = 0.0;
    double pause_left_s = 0.0;
  };

  void pick_new_leg(NodeState& node);

  MobilityConfig config_;
  util::Rng rng_;
  std::vector<NodeState> nodes_;
};

}  // namespace smac::multihop
