// Conservative region-parallel PDES kernel (see pdes.hpp and
// docs/PDES.md for the model; slot_kernel.hpp for the draw discipline).
//
// Each region is a logical process advancing through the window's slots
// in a two-phase cycle:
//
//   publish(s): apply scripted fault events for global slot base+s to the
//     region's active-mask replica, step its Gilbert–Elliott replica,
//     derive the owned transmit set from purely local backoff state,
//     write the owned transmit flags into the slot-parity ring, and
//     release-publish horizon s+1. Runs unconditionally — publication
//     never waits, which is what creates the one-slot lookahead.
//   commit(s): runs only once every dependency has published horizon
//     >= s+1. Classifies owned transmitters (receiver pick + corruption
//     trial from the (node, slot) draw streams), accrues owned local
//     channel time — re-deriving fringe neighbors' on-air outcomes from
//     their published flags and replayable draws — and applies outcomes
//     to owned backoff state and tallies.
//
// The depth-2 parity ring is race-free because dependent regions can
// never drift by more than one published slot: region r publishes s+1
// only after committing slot s-1, which required every dependency to
// have published s — so a writer of parity (s+1)&1 can only overwrite
// flags a dependency has provably finished reading (the release/acquire
// chain through the pub counters carries the happens-before TSan needs).
//
// Every region applies the full scripted event list to its own replica
// (events are a pure function of the slot index), so active masks agree
// across regions without communication; the Gilbert–Elliott replicas
// likewise step once per slot from the same captured state. Workers own
// regions statically (region id mod worker count) and spin over them,
// yielding when no owned region can progress; the region with the
// globally minimal horizon is always runnable, so the schedule is
// deadlock-free at any worker count.
#include "multihop/pdes.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "multihop/multihop_simulator.hpp"
#include "multihop/slot_kernel.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/worker_team.hpp"

namespace smac::multihop {

void PdesOptions::validate() const {
  if (!std::isfinite(region_edge_factor) || region_edge_factor <= 0.0) {
    throw std::invalid_argument("PdesOptions: region_edge_factor must be > 0");
  }
  if (single_region && region_per_node) {
    throw std::invalid_argument(
        "PdesOptions: single_region and region_per_node are exclusive");
  }
}

namespace {

/// Packs integer grid coordinates into an unordered_map key.
std::uint64_t cell_key(std::int64_t gx, std::int64_t gy) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(gx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(gy));
}

}  // namespace

RegionPartition::RegionPartition(const Topology& topology,
                                 const PdesOptions& options) {
  options.validate();
  const std::size_t n = topology.node_count();
  const std::vector<Vec2>& pos = topology.positions();
  lookahead_m_ = 3.0 * topology.range_m();
  region_of_.resize(n);
  owned_pos_.resize(n);
  if (n == 0) return;

  const double edge = options.region_edge_factor * topology.range_m();
  if (options.region_per_node) {
    for (std::size_t i = 0; i < n; ++i) region_of_[i] = i;
  } else if (options.single_region || !(edge > 0.0) ||
             !std::isfinite(edge)) {
    // Tiles degenerate to one region when the range (hence the edge)
    // is zero: nodes then have no interference coupling anyway.
    std::fill(region_of_.begin(), region_of_.end(), 0);
  } else {
    // Tile partition. Region ids are assigned to occupied tiles in
    // (row, column) order, so the labeling is a pure function of the
    // position multiset — node order never enters.
    double min_x = pos[0].x;
    double min_y = pos[0].y;
    for (const Vec2& p : pos) {
      min_x = std::min(min_x, p.x);
      min_y = std::min(min_y, p.y);
    }
    std::vector<std::pair<std::int64_t, std::int64_t>> cell(n);
    for (std::size_t i = 0; i < n; ++i) {
      cell[i] = {static_cast<std::int64_t>(std::floor((pos[i].y - min_y) / edge)),
                 static_cast<std::int64_t>(std::floor((pos[i].x - min_x) / edge))};
    }
    std::vector<std::pair<std::int64_t, std::int64_t>> occupied = cell;
    std::sort(occupied.begin(), occupied.end());
    occupied.erase(std::unique(occupied.begin(), occupied.end()),
                   occupied.end());
    for (std::size_t i = 0; i < n; ++i) {
      region_of_[i] = static_cast<std::size_t>(
          std::lower_bound(occupied.begin(), occupied.end(), cell[i]) -
          occupied.begin());
    }
  }

  std::size_t regions = 0;
  for (std::size_t r : region_of_) regions = std::max(regions, r + 1);
  members_.resize(regions);
  for (std::size_t i = 0; i < n; ++i) {
    owned_pos_[i] = static_cast<std::uint32_t>(members_[region_of_[i]].size());
    members_[region_of_[i]].push_back(i);
  }

  // Dependencies: regions owning nodes within lookahead_m_ of each other,
  // found through a coarse grid of cell edge lookahead_m_ (3x3 stencil +
  // exact distance check). Correct for ANY partition shape — tile
  // adjacency is never assumed, so the degenerate partitions get the
  // same guarantee.
  deps_.resize(regions);
  if (lookahead_m_ > 0.0 && regions > 1) {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> grid;
    grid.reserve(n);
    std::vector<std::pair<std::int64_t, std::int64_t>> coarse(n);
    for (std::size_t i = 0; i < n; ++i) {
      coarse[i] = {static_cast<std::int64_t>(std::floor(pos[i].x / lookahead_m_)),
                   static_cast<std::int64_t>(std::floor(pos[i].y / lookahead_m_))};
      grid[cell_key(coarse[i].first, coarse[i].second)].push_back(i);
    }
    const double reach_sq = lookahead_m_ * lookahead_m_;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (std::int64_t dy = -1; dy <= 1; ++dy) {
          auto it = grid.find(
              cell_key(coarse[i].first + dx, coarse[i].second + dy));
          if (it == grid.end()) continue;
          for (std::size_t j : it->second) {
            if (region_of_[j] == region_of_[i]) continue;
            if (distance_sq(pos[i], pos[j]) <= reach_sq) {
              deps_[region_of_[i]].push_back(region_of_[j]);
            }
          }
        }
      }
    }
    for (std::vector<std::size_t>& d : deps_) {
      std::sort(d.begin(), d.end());
      d.erase(std::unique(d.begin(), d.end()), d.end());
      dep_edges_ += d.size();
    }
  }
}

bool RegionPartition::covers_dependencies(const Topology& topology) const {
  const std::vector<Vec2>& pos = topology.positions();
  const std::size_t n = topology.node_count();
  const double reach_sq = lookahead_m_ * lookahead_m_;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t ri = region_of_[i];
      const std::size_t rj = region_of_[j];
      if (ri == rj) continue;
      if (distance_sq(pos[i], pos[j]) > reach_sq) continue;
      if (!std::binary_search(deps_[ri].begin(), deps_[ri].end(), rj) ||
          !std::binary_search(deps_[rj].begin(), deps_[rj].end(), ri)) {
        return false;
      }
    }
  }
  return true;
}

/// The per-window engine (friend of MultihopSimulator). Constructed,
/// run, and discarded inside run_slots_pdes.
struct PdesEngine {
  /// One logical process. `pub` is the only cross-thread field: it
  /// counts published slots (pub == s+1 means the slot-s transmit flags
  /// of every owned node are readable). All other state is owner-only.
  struct Region {
    std::size_t id = 0;
    std::vector<std::uint8_t> active;  ///< full replica, events applied
    fault::GilbertElliottChannel chain;
    double per_eff = 0.0;  ///< this slot's PER, publish -> commit
    std::size_t event_cursor = 0;
    std::uint64_t done = 0;  ///< committed slots
    std::atomic<std::uint64_t> pub{0};
    std::vector<std::size_t> transmitters;  ///< owned, ascending
    std::vector<int> tx_outcome;            ///< aligned with transmitters
    std::vector<std::size_t> scratch;
    /// Epoch-stamped on-air cache: air_val[j] is valid iff
    /// air_stamp[j] == done+1. Reset-free across slots.
    std::vector<std::uint64_t> air_stamp;
    std::vector<std::uint8_t> air_val;

    Region(std::size_t region_id, const MultihopSimulator& sim)
        : id(region_id),
          active(sim.active_),
          chain(sim.fault_channel_),
          event_cursor(sim.next_fault_event_),
          air_stamp(sim.active_.size(), 0),
          air_val(sim.active_.size(), 0) {}
  };

  MultihopSimulator& sim;
  const RegionPartition& part;
  const std::uint64_t base;   ///< sim.total_slots_ at window start
  const std::uint64_t slots;  ///< window length
  const bool channel_on;

  std::deque<Region> regions;
  /// Transmit-flag parity ring: flags[s & 1][node] for slot s. Plain
  /// bytes — the pub release/acquire chain orders every access.
  std::vector<std::uint8_t> flags[2];
  std::vector<detail::SlotTally> tally;
  std::atomic<bool> abort{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> max_lead{0};

  PdesEngine(MultihopSimulator& simulator, const RegionPartition& partition,
             std::uint64_t window_slots)
      : sim(simulator),
        part(partition),
        base(simulator.total_slots_),
        slots(window_slots),
        channel_on(simulator.config_.faults.channel.enabled()),
        tally(simulator.nodes_.size()) {
    flags[0].assign(sim.nodes_.size(), 0);
    flags[1].assign(sim.nodes_.size(), 0);
    for (std::size_t r = 0; r < part.region_count(); ++r) {
      regions.emplace_back(r, sim);
    }
  }

  /// Phase 1 of slot `r.done`: faults, chain, transmit set, publication.
  void publish(Region& r) {
    const std::uint64_t s = r.done;
    const std::uint64_t global_slot = base + s;
    const auto& events = sim.config_.faults.events;
    while (r.event_cursor < events.size() &&
           events[r.event_cursor].slot <= global_slot) {
      const fault::SlotEvent& e = events[r.event_cursor++];
      r.active[e.node] = e.kind == fault::FaultKind::kJoin ? 1 : 0;
    }
    r.chain.step();
    r.per_eff = channel_on ? r.chain.effective_per(
                                 sim.config_.params.packet_error_rate)
                           : 0.0;

    std::uint8_t* slot_flags = flags[s & 1].data();
    r.transmitters.clear();
    for (std::size_t i : part.members(r.id)) {
      const bool tx = r.active[i] != 0 && sim.nodes_[i].ready();
      slot_flags[i] = tx ? 1 : 0;
      if (tx) r.transmitters.push_back(i);
    }
    r.pub.store(s + 1, std::memory_order_release);

    std::uint64_t lead = 0;
    for (std::size_t d : part.deps(r.id)) {
      const std::uint64_t dp =
          regions[d].pub.load(std::memory_order_relaxed);
      if (s + 1 > dp) lead = std::max(lead, s + 1 - dp);
    }
    std::uint64_t seen = max_lead.load(std::memory_order_relaxed);
    while (lead > seen && !max_lead.compare_exchange_weak(
                              seen, lead, std::memory_order_relaxed)) {
    }
  }

  bool deps_ready(const Region& r) const {
    for (std::size_t d : part.deps(r.id)) {
      if (regions[d].pub.load(std::memory_order_acquire) < r.done + 1) {
        return false;
      }
    }
    return true;
  }

  /// Phase 2 of slot `r.done`: classification, local time, outcomes.
  /// Caller guarantees deps_ready(r); the recheck is the lookahead
  /// invariant the fuzz tier asserts never fires.
  void commit(Region& r) {
    const std::uint64_t s = r.done;
    const std::uint64_t global_slot = base + s;
    for (std::size_t d : part.deps(r.id)) {
      if (regions[d].pub.load(std::memory_order_acquire) < s + 1) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
    const std::uint8_t* slot_flags = flags[s & 1].data();
    auto is_tx = [slot_flags](std::size_t j) { return slot_flags[j] != 0; };
    auto is_active = [&r](std::size_t j) { return r.active[j] != 0; };

    // Owned transmitters: full outcome, corruption trial included.
    r.tx_outcome.clear();
    for (std::size_t i : r.transmitters) {
      util::Rng rng = detail::slot_rng(sim.draw_base_[i], global_slot);
      int out = detail::classify_transmitter(sim.topology_, i, rng, is_tx,
                                             is_active, r.scratch);
      if (out == detail::kOutcomeSuccess && channel_on && r.per_eff > 0.0 &&
          rng.bernoulli(r.per_eff)) {
        out = detail::kOutcomeChannelLoss;
      }
      r.tx_outcome.push_back(out);
      r.air_stamp[i] = s + 1;
      r.air_val[i] = detail::on_air_success(out) ? 1 : 0;
    }

    // On-air outcome of transmitter j, re-derived on demand for fringe
    // neighbors: the corruption draw is irrelevant on the air
    // (slot_kernel.hpp::on_air_success), so published flags + replayable
    // draws fully determine it.
    auto air = [&](std::size_t j) -> bool {
      if (r.air_stamp[j] == s + 1) return r.air_val[j] != 0;
      util::Rng rng = detail::slot_rng(sim.draw_base_[j], global_slot);
      const int out = detail::classify_transmitter(
          sim.topology_, j, rng, is_tx, is_active, r.scratch);
      r.air_stamp[j] = s + 1;
      r.air_val[j] = out == detail::kOutcomeSuccess ? 1 : 0;
      return r.air_val[j] != 0;
    };

    for (std::size_t i : part.members(r.id)) {
      if (r.active[i] == 0) continue;
      const bool self_tx = slot_flags[i] != 0;
      tally[i].local_time_us += detail::local_slot_time_us(
          sim.topology_, i, sim.times_, self_tx,
          self_tx && r.air_val[i] != 0, is_tx, air);
    }

    std::size_t next_tx = 0;
    for (std::size_t i : part.members(r.id)) {
      if (r.active[i] == 0) continue;
      if (slot_flags[i] == 0) {
        sim.nodes_[i].observe_slot();
        continue;
      }
      detail::apply_outcome(r.tx_outcome[next_tx++], tally[i],
                            sim.nodes_[i]);
    }
    ++r.done;
  }

  /// Worker body: spin over statically owned regions (id mod workers),
  /// publishing and committing whatever is runnable; yield when a full
  /// pass makes no progress (every owned region blocked on a foreign
  /// horizon).
  void worker(std::size_t w, std::size_t workers) {
    while (!abort.load(std::memory_order_relaxed)) {
      bool progress = false;
      bool all_done = true;
      for (std::size_t id = w; id < regions.size(); id += workers) {
        Region& r = regions[id];
        while (r.done < slots) {
          if (r.pub.load(std::memory_order_relaxed) == r.done) {
            publish(r);
            progress = true;
          }
          if (!deps_ready(r)) break;
          commit(r);
          progress = true;
          if (abort.load(std::memory_order_relaxed)) return;
        }
        if (r.done < slots) all_done = false;
      }
      if (all_done) return;
      if (!progress) std::this_thread::yield();
    }
  }
};

MultihopResult MultihopSimulator::run_slots_pdes(std::uint64_t slots) {
  if (!partition_) partition_.emplace(topology_, config_.pdes);
  const RegionPartition& part = *partition_;

  std::size_t jobs = config_.pdes.jobs == 0
                         ? parallel::ThreadPool::default_jobs()
                         : config_.pdes.jobs;
  jobs = std::min(jobs, std::max<std::size_t>(part.region_count(), 1));

  PdesEngine engine(*this, part, slots);
  if (part.region_count() > 0) {
    parallel::run_worker_team(jobs, [&engine, jobs](std::size_t w) {
      try {
        engine.worker(w, jobs);
      } catch (...) {
        engine.abort.store(true, std::memory_order_relaxed);
        throw;
      }
    });
  }

  // The facade's canonical fault state catches up to the window end:
  // scripted events through the same mask set_node_active uses, and the
  // Gilbert-Elliott chain stepped once per slot (identical draw sequence
  // to every region replica, so later windows chain identically).
  std::uint64_t bad_state_slots = 0;
  const std::uint64_t last_slot = total_slots_ + slots - 1;
  while (next_fault_event_ < config_.faults.events.size() &&
         config_.faults.events[next_fault_event_].slot <= last_slot) {
    const fault::SlotEvent& e = config_.faults.events[next_fault_event_++];
    active_[e.node] = e.kind == fault::FaultKind::kJoin ? 1 : 0;
  }
  for (std::uint64_t s = 0; s < slots; ++s) {
    fault_channel_.step();
    if (fault_channel_.bad()) ++bad_state_slots;
  }
  total_slots_ += slots;

  last_pdes_.regions = part.region_count();
  last_pdes_.dep_edges = part.dep_edge_count();
  last_pdes_.jobs = jobs;
  last_pdes_.slots = slots;
  last_pdes_.lookahead_violations =
      engine.violations.load(std::memory_order_relaxed);
  last_pdes_.max_horizon_lead =
      engine.max_lead.load(std::memory_order_relaxed);

  return detail::assemble_result(config_, slots, bad_state_slots,
                                 engine.tally);
}

}  // namespace smac::multihop
