#include "multihop/city_scale.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "fault/fault_injector.hpp"
#include "multihop/local_game.hpp"
#include "multihop/mobility.hpp"
#include "multihop/multihop_simulator.hpp"
#include "parallel/replication.hpp"
#include "parallel/thread_pool.hpp"
#include "phy/parameters.hpp"

namespace smac::multihop {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Exact (bitwise) equality of two multihop windows — the check
/// sim_compare_kernels applies per stage. Doubles compare with ==
/// deliberately: the PDES contract promises identical bits, not just
/// identical statistics.
bool results_identical(const MultihopResult& a, const MultihopResult& b) {
  if (a.slots != b.slots || a.bad_state_slots != b.bad_state_slots ||
      a.global_payoff_rate != b.global_payoff_rate ||
      a.aggregate_p_hn != b.aggregate_p_hn ||
      a.node.size() != b.node.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.node.size(); ++i) {
    const MultihopNodeStats& x = a.node[i];
    const MultihopNodeStats& y = b.node[i];
    if (x.attempts != y.attempts || x.successes != y.successes ||
        x.sender_collisions != y.sender_collisions ||
        x.hidden_losses != y.hidden_losses ||
        x.channel_losses != y.channel_losses ||
        x.local_time_us != y.local_time_us ||
        x.payoff_rate != y.payoff_rate ||
        x.measured_tau != y.measured_tau || x.measured_p != y.measured_p ||
        x.measured_p_hn != y.measured_p_hn) {
      return false;
    }
  }
  return true;
}

/// One stage's slot-sim window: the converged profile on the stage's
/// active topology, crashed nodes inactive. The stage seed is a
/// stream_seed derivation so stages are independent replications.
MultihopResult run_stage_sim(const CityScaleConfig& config,
                             const SpatialIndex& index, const Topology& topo,
                             const std::vector<int>& profile, int stage,
                             MultihopKernel kernel, PdesRunStats* stats) {
  MultihopConfig mh;
  mh.range_m = config.range_m;
  mh.seed = parallel::stream_seed(config.seed ^ 0xc17ab5c4ULL,
                                  static_cast<std::size_t>(stage));
  mh.kernel = kernel;
  mh.pdes.jobs = config.sim_jobs;
  MultihopSimulator simulator(mh, topo, profile);
  for (std::size_t i = 0; i < index.node_count(); ++i) {
    if (!index.active(i)) simulator.set_node_active(i, false);
  }
  MultihopResult r = simulator.run_slots(config.sim_slots);
  if (stats != nullptr) *stats = simulator.last_pdes_stats();
  return r;
}

}  // namespace

double city_arena_side_m(std::size_t nodes, double range_m,
                         double target_mean_degree) {
  if (nodes == 0 || !(range_m > 0.0) || !(target_mean_degree > 0.0)) {
    throw std::invalid_argument("city_arena_side_m: invalid inputs");
  }
  constexpr double kPi = 3.14159265358979323846;
  return std::sqrt(static_cast<double>(nodes) * kPi * range_m * range_m /
                   target_mean_degree);
}

NeighborhoodPricing price_neighborhoods(const SpatialIndex& index,
                                        const std::vector<int>& profile,
                                        const game::StageGame& game) {
  if (profile.size() != index.node_count()) {
    throw std::invalid_argument(
        "price_neighborhoods: profile size mismatch");
  }
  NeighborhoodPricing out;
  out.payoff.assign(index.node_count(), 0.0);

  // One class request per active node. The canonical dedup lives in the
  // SolverService/NetworkSolveCache layer: the drain groups identical
  // (window, multiplicity) multisets onto one solve and tallies the
  // duplicates as cache hits — so SolveCacheStats records exactly how
  // much of the stage the symmetry collapse absorbed (the class-collapse
  // regression test pins that).
  std::map<std::pair<std::vector<int>, std::vector<int>>, std::size_t>
      distinct;
  struct NodeRef {
    std::size_t node;
    std::size_t self_class;  ///< node's own class within its local profile
  };
  std::vector<NodeRef> refs;
  std::vector<analytical::ClassProfile> requests;
  std::vector<int> local;
  for (std::size_t i = 0; i < index.node_count(); ++i) {
    if (!index.active(i)) continue;
    local.clear();
    local.push_back(profile[i]);
    for (const std::size_t j : index.neighbors(i)) {
      local.push_back(profile[j]);
    }
    // Isolated node: the same 2-player floor as local_efficient_cw (a
    // 1-player "game" is degenerate; see local_game.hpp).
    if (local.size() == 1) local.push_back(profile[i]);
    analytical::ClassProfile classes = analytical::classify_profile(local);
    distinct.emplace(std::make_pair(classes.window, classes.multiplicity),
                     refs.size());
    refs.push_back({i, static_cast<std::size_t>(classes.class_of[0])});
    requests.push_back(std::move(classes));
  }
  out.priced_nodes = refs.size();
  out.distinct_classes = distinct.size();

  const auto priced = game.try_class_utilities_batch(requests);
  for (std::size_t r = 0; r < refs.size(); ++r) {
    if (analytical::usable(priced[r].diagnostics.status)) {
      out.payoff[refs[r].node] = priced[r].utilities[refs[r].self_class];
    }
  }
  return out;
}

CityScaleResult run_city_scale(const CityScaleConfig& config) {
  if (config.nodes == 0) {
    throw std::invalid_argument("run_city_scale: no nodes");
  }
  if (config.stages < 1) {
    throw std::invalid_argument("run_city_scale: stages < 1");
  }
  const double arena = city_arena_side_m(config.nodes, config.range_m,
                                         config.target_mean_degree);

  // The pool (when any) must outlive the game that chunks over it.
  std::optional<parallel::ThreadPool> pool;
  analytical::SolverService::Options solver_options;
  if (config.solver_jobs > 1) {
    pool.emplace(config.solver_jobs);
    solver_options.pool = &*pool;
  }
  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kRtsCts, solver_options);

  MobilityConfig mobility_config;
  mobility_config.width_m = arena;
  mobility_config.height_m = arena;
  mobility_config.v_min_mps = config.v_min_mps;
  mobility_config.v_max_mps = config.v_max_mps;
  mobility_config.seed = config.seed;
  RandomWaypointModel mobility(mobility_config, config.nodes);

  fault::FaultPlan plan;
  plan.churn.crash_rate = config.churn_crash_rate;
  plan.churn.recover_rate = config.churn_recover_rate;
  fault::FaultInjector injector(plan, config.nodes,
                                config.seed ^ 0x9e3779b97f4a7c15ULL);

  CityScaleResult result;
  result.nodes = config.nodes;
  result.arena_m = arena;

  const auto t_build = Clock::now();
  SpatialIndex index(mobility.positions(), config.range_m);
  result.build_ms = ms_since(t_build);

  if (config.time_oracle) {
    const auto t_oracle = Clock::now();
    const Topology oracle =
        build_topology_full(mobility.positions(), config.range_m);
    result.oracle_build_ms = ms_since(t_oracle);
    (void)oracle;
  }

  int seen_crashes = 0;
  int seen_joins = 0;
  for (int k = 0; k < config.stages; ++k) {
    CityScaleStage st;
    st.stage = k;

    if (k > 0) {
      mobility.advance(config.mobility_dt_s);
      const auto t_update = Clock::now();
      index.update_positions(mobility.positions());
      result.update_ms += ms_since(t_update);
      st.update = index.last_update();
    }

    // Churn entering the stage: the injector draws in node-index order
    // (its determinism contract); the index applies the delta.
    injector.begin_stage(k);
    {
      const auto t_churn = Clock::now();
      for (std::size_t i = 0; i < config.nodes; ++i) {
        const bool up = injector.online(i);
        if (up && !index.active(i)) {
          index.insert_node(i);
        } else if (!up && index.active(i)) {
          index.remove_node(i);
        }
      }
      result.update_ms += ms_since(t_churn);
    }
    st.crashes =
        static_cast<std::size_t>(injector.crash_events() - seen_crashes);
    st.joins = static_cast<std::size_t>(injector.join_events() - seen_joins);
    seen_crashes = injector.crash_events();
    seen_joins = injector.join_events();
    st.online = index.active_count();
    st.edges = index.edge_count();

    // Local agreements and graph-TFT on the active subgraph (crashed
    // nodes are isolated in the materialized topology: they keep their
    // seed and price nothing).
    const Topology topo = index.topology();
    const std::vector<int> seeds = local_efficient_cw(topo, game);
    const auto conv = tft_min_convergence(topo, seeds);
    const std::vector<int>& stable = conv.trajectory.back();
    st.converged_w = conv.converged_w;
    st.tft_stages = conv.stages;

    const auto t_solve = Clock::now();
    if (config.price_seed_profile) {
      st.seed_classes =
          price_neighborhoods(index, seeds, game).distinct_classes;
    }
    const NeighborhoodPricing priced =
        price_neighborhoods(index, stable, game);
    result.solve_ms += ms_since(t_solve);
    st.priced_nodes = priced.priced_nodes;
    st.converged_classes = priced.distinct_classes;

    // Theorem 3 at scale: each node's payoff at the TFT-stable profile
    // against the payoff of its own local agreement (the homogeneous
    // (seed_i, deg_i + 1)-player point — what it would earn had TFT not
    // dragged the window down).
    std::size_t counted = 0;
    std::size_t quasi = 0;
    double sum = 0.0;
    double min_frac = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < config.nodes; ++i) {
      if (!index.active(i)) continue;
      const int n_local =
          std::max(2, static_cast<int>(index.degree(i)) + 1);
      const double u_best = game.homogeneous_stage_utility(seeds[i], n_local);
      if (!(u_best > 0.0)) continue;
      const double frac = priced.payoff[i] / u_best;
      ++counted;
      sum += frac;
      min_frac = std::min(min_frac, frac);
      if (frac >= 0.96) ++quasi;
    }
    if (counted > 0) {
      st.quasi_optimal_fraction =
          static_cast<double>(quasi) / static_cast<double>(counted);
      st.mean_payoff_fraction = sum / static_cast<double>(counted);
      st.min_payoff_fraction = min_frac;
    }

    // Slot-sim leg: what the converged profile actually earns on the air
    // (the pricing above is analytical). Kernel and jobs are scheduling
    // choices only — the PDES determinism contract keeps sim_p_hn and
    // sim_payoff bitwise identical, which sim_compare_kernels verifies.
    if (config.sim_slots > 0) {
      PdesRunStats sim_stats;
      const bool wants_pdes = config.sim_kernel == MultihopKernel::kPdes ||
                              config.sim_compare_kernels;
      const auto t_sim = Clock::now();
      const MultihopResult sim = run_stage_sim(
          config, index, topo, stable, k,
          wants_pdes ? MultihopKernel::kPdes : MultihopKernel::kSlotLoop,
          wants_pdes ? &sim_stats : nullptr);
      result.sim_ms += ms_since(t_sim);
      if (config.sim_compare_kernels) {
        const auto t_oracle = Clock::now();
        const MultihopResult oracle =
            run_stage_sim(config, index, topo, stable, k,
                          MultihopKernel::kSlotLoop, nullptr);
        if (result.sim_oracle_ms < 0.0) result.sim_oracle_ms = 0.0;
        result.sim_oracle_ms += ms_since(t_oracle);
        st.sim_kernels_match = results_identical(sim, oracle);
      }
      st.sim_p_hn = sim.aggregate_p_hn;
      st.sim_payoff = sim.global_payoff_rate;
      st.sim_regions = sim_stats.regions;
    }
    result.stage.push_back(st);
  }
  result.cache = game.solve_cache_stats();
  return result;
}

}  // namespace smac::multihop
