#include "multihop/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace smac::multihop {
namespace {

// Cell coordinate of a scalar position. Clamped to int32 so the cast from
// double is never UB; positions further than 2^31 cells from the origin
// collapse onto the boundary cell, which only over-approximates the
// stencil (scan() re-checks real distances, so neighbor sets stay exact).
std::int64_t cell_coord(double v, double range_m) noexcept {
  constexpr double kLo = -2147483648.0;
  constexpr double kHi = 2147483647.0;
  return static_cast<std::int64_t>(
      std::clamp(std::floor(v / range_m), kLo, kHi));
}

// Packs (cx, cy) into one 64-bit key. Truncation to 32 bits is modular;
// ±1 stencil offsets can never alias each other under it.
std::uint64_t pack_cell(std::int64_t cx, std::int64_t cy) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

void insert_sorted(std::vector<std::size_t>& v, std::size_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

void erase_sorted(std::vector<std::size_t>& v, std::size_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) v.erase(it);
}

// Walks two ascending-sorted id lists, reporting ids only in `before` as
// removed and ids only in `after` as added.
template <class FRemoved, class FAdded>
void diff_sorted(const std::vector<std::size_t>& before,
                 const std::vector<std::size_t>& after, FRemoved on_removed,
                 FAdded on_added) {
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < before.size() && b < after.size()) {
    if (before[a] < after[b]) {
      on_removed(before[a++]);
    } else if (after[b] < before[a]) {
      on_added(after[b++]);
    } else {
      ++a;
      ++b;
    }
  }
  while (a < before.size()) on_removed(before[a++]);
  while (b < after.size()) on_added(after[b++]);
}

}  // namespace

SpatialIndex::SpatialIndex(std::vector<Vec2> positions, double range_m)
    : range_m_(range_m), positions_(std::move(positions)),
      active_(positions_.size(), 1), active_count_(positions_.size()),
      moved_scratch_(positions_.size(), 0) {
  if (!(range_m > 0.0)) {
    throw std::invalid_argument("SpatialIndex: range <= 0");
  }
  validate_positions(positions_);
  std::vector<std::size_t> order(positions_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  full_build(order);
}

SpatialIndex::SpatialIndex(std::vector<Vec2> positions, double range_m,
                           const std::vector<std::uint8_t>& active)
    : range_m_(range_m), positions_(std::move(positions)),
      moved_scratch_(positions_.size(), 0) {
  if (!(range_m > 0.0)) {
    throw std::invalid_argument("SpatialIndex: range <= 0");
  }
  validate_positions(positions_);
  if (active.size() != positions_.size()) {
    throw std::invalid_argument("SpatialIndex: active mask size mismatch");
  }
  active_.resize(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    active_[i] = active[i] ? 1 : 0;
    active_count_ += active_[i];
  }
  std::vector<std::size_t> order(positions_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  full_build(order);
}

SpatialIndex::SpatialIndex(std::vector<Vec2> positions, double range_m,
                           std::span<const std::size_t> build_order)
    : range_m_(range_m), positions_(std::move(positions)),
      active_(positions_.size(), 1), active_count_(positions_.size()),
      moved_scratch_(positions_.size(), 0) {
  if (!(range_m > 0.0)) {
    throw std::invalid_argument("SpatialIndex: range <= 0");
  }
  validate_positions(positions_);
  if (build_order.size() != positions_.size()) {
    throw std::invalid_argument("SpatialIndex: build order size mismatch");
  }
  std::vector<std::uint8_t> seen(positions_.size(), 0);
  for (const std::size_t i : build_order) {
    if (i >= positions_.size() || seen[i]) {
      throw std::invalid_argument("SpatialIndex: build order not a permutation");
    }
    seen[i] = 1;
  }
  full_build(build_order);
}

std::size_t SpatialIndex::edge_count() const noexcept {
  std::size_t twice = 0;
  for (const auto& nb : neighbors_) twice += nb.size();
  return twice / 2;
}

void SpatialIndex::update_positions(const std::vector<Vec2>& positions) {
  if (positions.size() != positions_.size()) {
    throw std::invalid_argument("SpatialIndex: node count changed");
  }
  validate_positions(positions);
  UpdateStats stats;
  std::vector<std::size_t> moved;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (!(positions[i] == positions_[i])) moved.push_back(i);
  }
  stats.moved = moved.size();
  // Phase 1: adopt positions and re-bucket boundary crossers so phase 2's
  // stencil scans see fully current buckets.
  for (const std::size_t m : moved) {
    positions_[m] = positions[m];
    moved_scratch_[m] = 1;
    if (!active_[m]) continue;
    const std::uint64_t key = cell_key(positions_[m]);
    if (key != cell_of_[m]) {
      bucket_remove(cell_of_[m], m);
      bucket_add(key, m);
      cell_of_[m] = key;
      ++stats.rebucketed;
    }
  }
  // Phase 2: every active moved node gets a fresh stencil scan; unmoved
  // neighbors are patched in place, moved ones rebuild themselves.
  for (const std::size_t m : moved) {
    if (!active_[m]) continue;
    std::vector<std::size_t> fresh = scan(m);
    diff_sorted(
        neighbors_[m], fresh,
        [&](std::size_t j) {
          if (!moved_scratch_[j]) erase_sorted(neighbors_[j], m);
        },
        [&](std::size_t j) {
          if (!moved_scratch_[j]) insert_sorted(neighbors_[j], m);
        });
    neighbors_[m] = std::move(fresh);
    ++stats.rescanned;
  }
  for (const std::size_t m : moved) moved_scratch_[m] = 0;
  last_update_ = stats;
}

void SpatialIndex::move_node(std::size_t i, Vec2 position) {
  if (i >= positions_.size()) {
    throw std::out_of_range("SpatialIndex::move_node: node out of range");
  }
  if (!(std::isfinite(position.x) && std::isfinite(position.y))) {
    throw std::invalid_argument("SpatialIndex: non-finite position");
  }
  UpdateStats stats;
  if (positions_[i] == position) {
    last_update_ = stats;
    return;
  }
  stats.moved = 1;
  positions_[i] = position;
  if (active_[i]) {
    const std::uint64_t key = cell_key(position);
    if (key != cell_of_[i]) {
      bucket_remove(cell_of_[i], i);
      bucket_add(key, i);
      cell_of_[i] = key;
      ++stats.rebucketed;
    }
    std::vector<std::size_t> fresh = scan(i);
    diff_sorted(
        neighbors_[i], fresh,
        [&](std::size_t j) { erase_sorted(neighbors_[j], i); },
        [&](std::size_t j) { insert_sorted(neighbors_[j], i); });
    neighbors_[i] = std::move(fresh);
    stats.rescanned = 1;
  }
  last_update_ = stats;
}

void SpatialIndex::remove_node(std::size_t i) {
  if (i >= positions_.size()) {
    throw std::out_of_range("SpatialIndex::remove_node: node out of range");
  }
  if (!active_[i]) return;
  for (const std::size_t j : neighbors_[i]) erase_sorted(neighbors_[j], i);
  neighbors_[i].clear();
  bucket_remove(cell_of_[i], i);
  active_[i] = 0;
  --active_count_;
}

void SpatialIndex::insert_node(std::size_t i) {
  if (i >= positions_.size()) {
    throw std::out_of_range("SpatialIndex::insert_node: node out of range");
  }
  if (active_[i]) return;
  const std::uint64_t key = cell_key(positions_[i]);
  bucket_add(key, i);
  cell_of_[i] = key;
  active_[i] = 1;
  ++active_count_;
  std::vector<std::size_t> fresh = scan(i);
  for (const std::size_t j : fresh) insert_sorted(neighbors_[j], i);
  neighbors_[i] = std::move(fresh);
}

void SpatialIndex::insert_node(std::size_t i, Vec2 position) {
  if (i >= positions_.size()) {
    throw std::out_of_range("SpatialIndex::insert_node: node out of range");
  }
  if (!(std::isfinite(position.x) && std::isfinite(position.y))) {
    throw std::invalid_argument("SpatialIndex: non-finite position");
  }
  if (active_[i]) {
    move_node(i, position);
    return;
  }
  positions_[i] = position;
  insert_node(i);
}

Topology SpatialIndex::topology() const {
  return Topology(positions_, range_m_, neighbors_);
}

std::vector<std::vector<std::size_t>> SpatialIndex::take_neighbors() && {
  return std::move(neighbors_);
}

std::uint64_t SpatialIndex::cell_key(Vec2 p) const noexcept {
  return pack_cell(cell_coord(p.x, range_m_), cell_coord(p.y, range_m_));
}

void SpatialIndex::bucket_add(std::uint64_t key, std::size_t i) {
  buckets_[key].push_back(static_cast<std::uint32_t>(i));
}

void SpatialIndex::bucket_remove(std::uint64_t key, std::size_t i) {
  const auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  auto& bucket = it->second;
  const auto pos =
      std::find(bucket.begin(), bucket.end(), static_cast<std::uint32_t>(i));
  if (pos != bucket.end()) bucket.erase(pos);
  if (bucket.empty()) buckets_.erase(it);
}

std::vector<std::size_t> SpatialIndex::scan(std::size_t i) const {
  const Vec2 p = positions_[i];
  const std::int64_t cx = cell_coord(p.x, range_m_);
  const std::int64_t cy = cell_coord(p.y, range_m_);
  std::vector<std::size_t> out;
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const auto it = buckets_.find(pack_cell(cx + dx, cy + dy));
      if (it == buckets_.end()) continue;
      for (const std::uint32_t j : it->second) {
        if (j == i) continue;
        if (in_range(p, positions_[j], range_m_)) out.push_back(j);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SpatialIndex::full_build(std::span<const std::size_t> build_order) {
  const std::size_t n = positions_.size();
  buckets_.clear();
  cell_of_.assign(n, 0);
  neighbors_.assign(n, {});
  for (const std::size_t i : build_order) {
    if (!active_[i]) continue;
    const std::uint64_t key = cell_key(positions_[i]);
    cell_of_[i] = key;
    bucket_add(key, i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (active_[i]) neighbors_[i] = scan(i);
  }
}

void SpatialIndex::validate_positions(const std::vector<Vec2>& positions) {
  if (positions.size() >=
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::invalid_argument("SpatialIndex: too many nodes");
  }
  for (const Vec2& p : positions) {
    if (!(std::isfinite(p.x) && std::isfinite(p.y))) {
      throw std::invalid_argument("SpatialIndex: non-finite position");
    }
  }
}

}  // namespace smac::multihop
