// Metropolitan-scale multihop pipeline (docs/CITY_SCALE.md).
//
// Composes the pieces this tier is built from: a SpatialIndex kept
// incrementally current under random-waypoint mobility and FaultPlan
// churn, local-game seeding + graph-TFT convergence per stage, and
// class-deduplicated pricing of every node's closed-neighborhood local
// game through StageGame::try_class_utilities_batch — so a 10^4-node
// stage solves only its distinct (neighborhood-size, window-mix, PER)
// classes instead of one fixed point per node. The per-stage output is
// the Theorem-3 quasi-optimality fraction at scale: how many nodes still
// earn >= 96% of their own local agreement's payoff after TFT drags the
// component down to its minimum window.
//
// Determinism: every field of CityScaleResult except the *_ms wall-clock
// timings is a pure function of CityScaleConfig — independent of
// solver_jobs (the SolverService pool-chunking contract) and of spatial-
// index bucket insertion order. bench/city_scale.cpp keeps the JSON it
// emits byte-identical at any --jobs by writing timings to a separate
// artifact; tests/parallel/city_scale_invariance_test.cpp pins the
// invariance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analytical/solver_cache.hpp"
#include "game/stage_game.hpp"
#include "multihop/pdes.hpp"
#include "multihop/spatial_index.hpp"

namespace smac::multihop {

struct CityScaleConfig {
  std::size_t nodes = 1000;
  double range_m = 250.0;
  /// Arena side is derived to hold the mean unit-disk degree near this
  /// value at any n (constant density — the metropolitan regime), via
  /// city_arena_side_m. A fixed paper arena at n = 10^5 would otherwise
  /// be one giant clique-like blob with ~2·10^9 edges.
  double target_mean_degree = 12.0;
  int stages = 4;             ///< mobility/churn epochs
  double mobility_dt_s = 60.0;
  double v_min_mps = 0.0;
  double v_max_mps = 5.0;
  /// Per-stage Bernoulli churn (fault::ChurnConfig semantics), applied to
  /// the index through remove_node/insert_node.
  double churn_crash_rate = 0.02;
  double churn_recover_rate = 0.5;
  /// Also price every node's local game at the heterogeneous *seed*
  /// profile (the interesting dedup case); the converged profile is
  /// always priced. Costs roughly one solve per distinct seed
  /// neighborhood — disable for n >= ~10^5 sweeps.
  bool price_seed_profile = true;
  /// Time build_topology_full on the initial layout for the oracle-vs-
  /// grid ratio (Θ(n²) — gate off beyond ~2·10^4 nodes).
  bool time_oracle = false;
  /// SolverService pool width for miss batches. Scheduling only: results
  /// are bitwise identical at any value.
  std::size_t solver_jobs = 1;
  /// Slot-level simulation leg: when sim_slots > 0 each stage also runs
  /// the TFT-converged profile through MultihopSimulator on the stage's
  /// active topology (crashed nodes set inactive), measuring the
  /// realized p_hn and payoff the analytical pricing abstracts away.
  std::uint64_t sim_slots = 0;
  /// Kernel of the slot-sim leg. Scheduling only (the PDES determinism
  /// contract): sim_* outputs are bitwise identical under either value
  /// and any sim_jobs.
  MultihopKernel sim_kernel = MultihopKernel::kSlotLoop;
  std::size_t sim_jobs = 1;  ///< PDES workers (kernel = kPdes only)
  /// Run BOTH kernels per stage, assert bitwise-equal results, and time
  /// each — the source of bench_city_scale's speedup column.
  bool sim_compare_kernels = false;
  std::uint64_t seed = 2026;
};

struct CityScaleStage {
  int stage = 0;
  std::size_t online = 0;
  std::size_t edges = 0;      ///< active-subgraph undirected edges
  std::size_t crashes = 0;    ///< churn events applied entering this stage
  std::size_t joins = 0;
  SpatialIndex::UpdateStats update;  ///< zeros at stage 0 (full build)
  int converged_w = 0;        ///< min window of the TFT-stable profile
  int tft_stages = 0;
  std::size_t priced_nodes = 0;
  std::size_t seed_classes = 0;       ///< 0 when seed pricing is off
  std::size_t converged_classes = 0;  ///< distinct classes actually solved
  double quasi_optimal_fraction = 0.0;  ///< payoff >= 96% of own agreement
  double mean_payoff_fraction = 0.0;
  double min_payoff_fraction = 0.0;
  // Slot-sim leg (sim_slots > 0 only; kernel- and jobs-invariant).
  double sim_p_hn = 0.0;        ///< aggregate hidden-node delivery factor
  double sim_payoff = 0.0;      ///< global payoff rate (Σ_i per-node)
  std::size_t sim_regions = 0;  ///< PDES regions (0 under pure slot-loop)
  /// False iff sim_compare_kernels found a kernel divergence (a PDES
  /// determinism-contract violation; run_city_scale never masks one).
  bool sim_kernels_match = true;
};

struct CityScaleResult {
  std::size_t nodes = 0;
  double arena_m = 0.0;
  std::vector<CityScaleStage> stage;
  /// Cumulative solve-cache traffic over the whole run (deterministic).
  analytical::SolveCacheStats cache;
  // Wall-clock timings — machine-dependent, excluded from the
  // byte-identical contract.
  double build_ms = 0.0;        ///< initial SpatialIndex full build
  double update_ms = 0.0;       ///< total incremental updates + churn
  double solve_ms = 0.0;        ///< total class-dedup pricing
  double oracle_build_ms = -1.0;  ///< Θ(n²) build, -1 when not timed
  double sim_ms = 0.0;            ///< slot-sim leg, configured kernel
  /// Slot-loop oracle wall clock when sim_compare_kernels is on, -1
  /// otherwise; sim_oracle_ms / sim_ms is the PDES speedup column.
  double sim_oracle_ms = -1.0;
};

/// Arena side (meters) holding E[deg] = target under uniform placement:
/// side = sqrt(n · π · r² / target).
double city_arena_side_m(std::size_t nodes, double range_m,
                         double target_mean_degree);

/// Class-deduplicated pricing of every *active* node's closed-neighborhood
/// local game at `profile` (size = node_count; isolated nodes play the
/// same 2-player convention as local_efficient_cw). payoff[i] is the
/// stage payoff node i earns in its local game — bitwise what
/// try_stage_utilities on the expanded local profile would give it — and
/// 0 for offline nodes and unusable solves. One request is submitted per
/// node; the SolverService groups identical canonical classes onto one
/// solve and counts the duplicates as cache hits, so SolveCacheStats
/// measures the symmetry collapse directly.
struct NeighborhoodPricing {
  std::vector<double> payoff;
  std::size_t priced_nodes = 0;
  std::size_t distinct_classes = 0;  ///< canonical classes actually solved
};
NeighborhoodPricing price_neighborhoods(const SpatialIndex& index,
                                        const std::vector<int>& profile,
                                        const game::StageGame& game);

/// Runs the full pipeline on the paper's PHY (RTS/CTS). Deterministic up
/// to the timing fields; see the header comment.
CityScaleResult run_city_scale(const CityScaleConfig& config);

}  // namespace smac::multihop
