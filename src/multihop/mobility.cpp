#include "multihop/mobility.hpp"

#include <stdexcept>

namespace smac::multihop {

RandomWaypointModel::RandomWaypointModel(MobilityConfig config,
                                         std::size_t node_count)
    : config_(config), rng_(config.seed) {
  if (!(config.width_m > 0.0) || !(config.height_m > 0.0)) {
    throw std::invalid_argument("RandomWaypointModel: non-positive area");
  }
  if (config.v_min_mps < 0.0 || config.v_max_mps < config.v_min_mps) {
    throw std::invalid_argument("RandomWaypointModel: bad speed range");
  }
  if (config.pause_s < 0.0) {
    throw std::invalid_argument("RandomWaypointModel: negative pause");
  }
  if (node_count == 0) {
    throw std::invalid_argument("RandomWaypointModel: zero nodes");
  }
  nodes_.resize(node_count);
  for (auto& node : nodes_) {
    node.pos = {rng_.uniform_real(0.0, config_.width_m),
                rng_.uniform_real(0.0, config_.height_m)};
    pick_new_leg(node);
  }
}

std::vector<Vec2> RandomWaypointModel::positions() const {
  std::vector<Vec2> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node.pos);
  return out;
}

void RandomWaypointModel::pick_new_leg(NodeState& node) {
  node.waypoint = {rng_.uniform_real(0.0, config_.width_m),
                   rng_.uniform_real(0.0, config_.height_m)};
  node.speed_mps = rng_.uniform_real(config_.v_min_mps, config_.v_max_mps);
  node.pause_left_s = config_.pause_s;
}

void RandomWaypointModel::advance(double dt_s) {
  if (dt_s < 0.0) throw std::invalid_argument("advance: negative dt");
  for (auto& node : nodes_) {
    double remaining = dt_s;
    while (remaining > 0.0) {
      if (node.pause_left_s > 0.0) {
        const double pause = std::min(node.pause_left_s, remaining);
        node.pause_left_s -= pause;
        remaining -= pause;
        continue;
      }
      if (node.speed_mps <= 0.0) {
        // A zero-speed leg would never complete; draw a fresh leg and let
        // the pause (if any) consume time. With v_min = 0 the paper's
        // speed range can legitimately produce one: treat it as "arrived".
        pick_new_leg(node);
        if (node.pause_left_s <= 0.0 && node.speed_mps <= 0.0) {
          // Still immobile and pause-free: nothing can consume time.
          break;
        }
        continue;
      }
      const Vec2 to_wp = node.waypoint - node.pos;
      const double dist = to_wp.norm();
      const double step = node.speed_mps * remaining;
      if (step >= dist) {
        node.pos = node.waypoint;
        remaining -= node.speed_mps > 0.0 ? dist / node.speed_mps : remaining;
        pick_new_leg(node);
      } else {
        node.pos = node.pos + to_wp * (step / dist);
        remaining = 0.0;
      }
    }
  }
}

}  // namespace smac::multihop
