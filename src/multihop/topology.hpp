// Connectivity graph induced by node positions and a common transmission
// range (unit-disk model, as in the paper's NS-2 setup with 250 m range).
#pragma once

#include <cstddef>
#include <vector>

#include "multihop/geometry.hpp"

namespace smac::multihop {

class Topology {
 public:
  /// Builds the neighbor lists of the unit-disk graph through the
  /// uniform-grid SpatialIndex — O(n + m) expected for bounded-density
  /// layouts (m = edge count), against the old Θ(n²) pair scan, which
  /// survives as build_topology_full (the test oracle). Requires finite
  /// coordinates; throws std::invalid_argument otherwise. The complexity
  /// contract lives in spatial_index.hpp and docs/CITY_SCALE.md.
  Topology(const std::vector<Vec2>& positions, double range_m);

  /// Adopts a prebuilt adjacency (each list ascending-sorted, symmetric;
  /// trusted, not re-verified). Used by SpatialIndex::topology() and
  /// build_topology_full.
  Topology(std::vector<Vec2> positions, double range_m,
           std::vector<std::vector<std::size_t>> neighbors);

  std::size_t node_count() const noexcept { return neighbors_.size(); }
  double range_m() const noexcept { return range_m_; }
  const std::vector<Vec2>& positions() const noexcept { return positions_; }

  /// Neighbor ids of i, ascending-sorted (a class invariant both build
  /// paths uphold; are_neighbors binary-searches it).
  const std::vector<std::size_t>& neighbors(std::size_t i) const {
    return neighbors_.at(i);
  }
  std::size_t degree(std::size_t i) const { return neighbors_.at(i).size(); }

  bool are_neighbors(std::size_t a, std::size_t b) const;

  /// True when the graph is a single connected component (BFS).
  bool connected() const;

  /// Hop distance between a and b; SIZE_MAX when disconnected.
  std::size_t hop_distance(std::size_t a, std::size_t b) const;

  /// Longest finite hop distance over all pairs (0 for n = 1); SIZE_MAX
  /// when the graph is disconnected.
  std::size_t diameter() const;

 private:
  double range_m_;
  std::vector<Vec2> positions_;
  std::vector<std::vector<std::size_t>> neighbors_;
};

/// The original Θ(n²) all-pairs scan, kept as the ground-truth oracle the
/// `ctest -L topology` property tests compare the grid path against.
Topology build_topology_full(const std::vector<Vec2>& positions,
                             double range_m);

}  // namespace smac::multihop
