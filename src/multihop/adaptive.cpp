#include "multihop/adaptive.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

#include "multihop/spatial_index.hpp"

namespace smac::multihop {

namespace {

// One mobility epoch: advance the waypoint model and refresh the
// simulator's topology through a persistent SpatialIndex — full grid
// build on the first epoch, incremental (re-bucket crossers, re-scan
// movers) afterwards. Produces the same Topology as rebuilding from
// scratch each stage; the `ctest -L topology` property tests pin that.
void advance_and_refresh(MultihopSimulator& sim,
                         RandomWaypointModel& mobility, double dt_s,
                         std::optional<SpatialIndex>& index) {
  mobility.advance(dt_s);
  if (!index) {
    index.emplace(mobility.positions(), sim.config().range_m);
  } else {
    index->update_positions(mobility.positions());
  }
  sim.update_topology(index->topology());
}

void validate_common(const MultihopSimulator& sim,
                     const RandomWaypointModel* mobility,
                     const MultihopTftConfig& config,
                     const fault::FaultInjector* injector,
                     const char* who) {
  if (config.stages < 1) {
    throw std::invalid_argument(std::string(who) + ": stages < 1");
  }
  if (config.slots_per_stage == 0) {
    throw std::invalid_argument(std::string(who) +
                                ": zero slots per stage");
  }
  if (config.mobility_dt_s < 0.0) {
    throw std::invalid_argument(std::string(who) +
                                ": negative mobility dt");
  }
  if (mobility && mobility->node_count() != sim.node_count()) {
    throw std::invalid_argument(std::string(who) +
                                ": mobility size mismatch");
  }
  if (injector && injector->node_count() != sim.node_count()) {
    throw std::invalid_argument(std::string(who) +
                                ": injector size mismatch");
  }
}

void record_fault_counters(MultihopTftResult& result,
                           const fault::FaultInjector* injector,
                           int stages) {
  if (!injector) return;
  result.degradation.stages = stages;
  result.degradation.crash_events = injector->crash_events();
  result.degradation.join_events = injector->join_events();
  result.degradation.lost_observations = injector->lost_observations();
  result.degradation.noisy_observations = injector->noisy_observations();
  result.degradation.last_fault_stage = injector->last_fault_stage();
}

void record_convergence_facts(MultihopTftResult& result) {
  const std::vector<int>& last = result.stages.back().cw;
  if (std::all_of(last.begin(), last.end(),
                  [&](int w) { return w == last.front(); })) {
    result.converged_cw = last.front();
  }
  result.stable_from = static_cast<int>(result.stages.size());
  for (int k = static_cast<int>(result.stages.size()); k-- > 0;) {
    if (result.stages[static_cast<std::size_t>(k)].cw == last) {
      result.stable_from = k;
    } else {
      break;
    }
  }
}

}  // namespace

MultihopTftResult play_multihop_tft(MultihopSimulator& sim,
                                    RandomWaypointModel* mobility,
                                    const MultihopTftConfig& config) {
  return play_multihop_tft(sim, mobility, config, nullptr);
}

MultihopTftResult play_multihop_tft(MultihopSimulator& sim,
                                    RandomWaypointModel* mobility,
                                    const MultihopTftConfig& config,
                                    fault::FaultInjector* injector) {
  validate_common(sim, mobility, config, injector, "play_multihop_tft");
  const std::size_t n = sim.node_count();

  MultihopTftResult result;
  std::optional<SpatialIndex> topology_index;
  std::vector<int> profile(n);
  for (std::size_t i = 0; i < n; ++i) profile[i] = sim.cw(i);
  // observed[i][j]: node i's current belief of node j's window (loss
  // fallback for the observation fault model).
  std::vector<std::vector<int>> observed(
      injector ? n : 0, std::vector<int>(injector ? n : 0, 0));
  if (injector) {
    for (std::size_t i = 0; i < n; ++i) observed[i] = profile;
  }

  for (int k = 0; k < config.stages; ++k) {
    if (injector) {
      injector->begin_stage(k);
      for (std::size_t i = 0; i < n; ++i) {
        sim.set_node_active(i, injector->online(i));
      }
    }
    // Run the stage with the current profile.
    const MultihopResult run = sim.run_slots(config.slots_per_stage);
    MultihopStage stage;
    stage.cw = profile;
    stage.payoff.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      stage.payoff[i] = run.node[i].payoff_rate;
    }
    stage.global_payoff = run.global_payoff_rate;
    stage.topology_connected = sim.topology().connected();
    if (injector) stage.online = injector->online_mask();
    result.stages.push_back(std::move(stage));

    // Mobility epoch: nodes move, the observation graph changes.
    if (mobility && config.mobility_dt_s > 0.0) {
      advance_and_refresh(sim, *mobility, config.mobility_dt_s,
                          topology_index);
    }

    // Graph-local TFT on the (possibly new) topology: match the smallest
    // window in the closed neighborhood. Under faults, only online
    // neighbors are matched and their windows are read through the
    // observation model (fixed i-then-j draw order); crashed nodes keep
    // their configured window untouched.
    std::vector<int> next(n);
    const Topology& topo = sim.topology();
    for (std::size_t i = 0; i < n; ++i) {
      if (injector && !injector->online(i)) {
        next[i] = profile[i];
        continue;
      }
      int w = profile[i];
      for (std::size_t j : topo.neighbors(i)) {
        if (!injector) {
          w = std::min(w, profile[j]);
        } else if (injector->online(j)) {
          const int seen =
              injector->observe_cw(profile[j], observed[i][j]).cw;
          observed[i][j] = seen;
          w = std::min(w, seen);
        }
      }
      next[i] = w;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (next[i] != profile[i]) sim.set_cw(i, next[i]);
    }
    profile = std::move(next);
  }

  record_fault_counters(result, injector, config.stages);
  record_convergence_facts(result);
  return result;
}

void MultihopEnforcementConfig::validate() const {
  if (!detector.valid()) {
    throw std::invalid_argument(
        "MultihopEnforcementConfig: invalid detector config");
  }
  if (max_stage < 0) {
    throw std::invalid_argument("MultihopEnforcementConfig: max_stage < 0");
  }
  if (punishment_stages < 1) {
    throw std::invalid_argument(
        "MultihopEnforcementConfig: punishment_stages < 1");
  }
  if (punishment_w < 1) {
    throw std::invalid_argument(
        "MultihopEnforcementConfig: punishment_w < 1");
  }
}

MultihopTftResult play_multihop_enforced(
    MultihopSimulator& sim, RandomWaypointModel* mobility,
    const MultihopTftConfig& config,
    const MultihopEnforcementConfig& enforcement,
    fault::FaultInjector* injector) {
  validate_common(sim, mobility, config, injector,
                  "play_multihop_enforced");
  enforcement.validate();
  const std::size_t n = sim.node_count();
  if (!enforcement.compliant.empty() && enforcement.compliant.size() != n) {
    throw std::invalid_argument(
        "play_multihop_enforced: compliant mask size mismatch");
  }
  const auto is_compliant = [&](std::size_t i) {
    return enforcement.compliant.empty() || enforcement.compliant[i] != 0;
  };

  MultihopTftResult result;
  std::optional<SpatialIndex> topology_index;
  std::vector<int> profile(n);
  std::vector<int> seed(n);  ///< entry windows — the local agreements
  for (std::size_t i = 0; i < n; ++i) profile[i] = seed[i] = sim.cw(i);
  std::vector<std::vector<int>> observed(n);
  for (std::size_t i = 0; i < n; ++i) observed[i] = profile;

  // One detector per compliant node, calibrated against its own entry
  // window with its closed neighborhood as the model size. Nodes whose
  // agreement window is too small for the detector geometry (the design
  // cheat collapses onto the tolerance band) run blind: they comply and
  // punish on flooded flags but cannot raise one themselves.
  std::vector<std::optional<sim::OnlineDetector>> detectors(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_compliant(i)) continue;
    const int n_local =
        std::max<int>(2, static_cast<int>(sim.topology().degree(i)) + 1);
    try {
      detectors[i].emplace(enforcement.detector, seed[i], n_local,
                           enforcement.max_stage, n);
    } catch (const std::invalid_argument&) {
      // blind node; see above
    }
  }

  struct Episode {
    std::size_t offender = 0;
    int remaining = 0;
    int w_punish = 1;
    std::vector<std::uint8_t> punisher;  ///< size n
  };
  std::optional<Episode> episode;

  for (int k = 0; k < config.stages; ++k) {
    if (injector) {
      injector->begin_stage(k);
      for (std::size_t i = 0; i < n; ++i) {
        sim.set_node_active(i, injector->online(i));
      }
    }
    const bool punished_stage = episode.has_value();

    // Enforcement owns the compliant windows: entry window, or the
    // punishment window while serving in the active episode. Deviants
    // (non-compliant nodes) are never touched.
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_compliant(i)) continue;
      int w = seed[i];
      if (episode && episode->punisher[i]) {
        w = std::min(seed[i], episode->w_punish);
      }
      if (w != profile[i]) {
        sim.set_cw(i, w);
        profile[i] = w;
      }
    }

    const MultihopResult run = sim.run_slots(config.slots_per_stage);
    MultihopStage stage;
    stage.cw = profile;
    stage.payoff.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      stage.payoff[i] = run.node[i].payoff_rate;
    }
    stage.global_payoff = run.global_payoff_rate;
    stage.topology_connected = sim.topology().connected();
    if (injector) stage.online = injector->online_mask();
    result.stages.push_back(std::move(stage));

    if (mobility && config.mobility_dt_s > 0.0) {
      advance_and_refresh(sim, *mobility, config.mobility_dt_s,
                          topology_index);
    }

    if (punished_stage) {
      ++result.punished_stages;
      // Flood-synchronized suspension: nobody detects while an episode
      // runs (punishers must not read each other's punishment windows as
      // deviations — the flag broadcast told everyone who is serving).
      if (--episode->remaining == 0) {
        for (std::size_t i = 0; i < n; ++i) {
          if (detectors[i]) detectors[i]->rehabilitate(episode->offender);
        }
        ++result.rehabilitations;
        episode.reset();
      }
      continue;
    }

    // Detection phase: every compliant online node reads each online
    // neighbor's window (through the observation model, fixed i-then-j
    // order) and feeds its detector.
    const Topology& topo = sim.topology();
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_compliant(i)) continue;
      if (injector && !injector->online(i)) continue;
      for (std::size_t j : topo.neighbors(i)) {
        if (injector && !injector->online(j)) continue;
        int seen = profile[j];
        if (injector) {
          seen = injector->observe_cw(profile[j], observed[i][j]).cw;
          observed[i][j] = seen;
        }
        if (detectors[i]) detectors[i]->try_observe_window(j, seen);
      }
    }

    // Flag scan: the strongest latched (observer, offender) evidence
    // opens the episode; other latched flags queue behind rehabilitation.
    std::optional<std::size_t> offender;
    double best = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!detectors[i]) continue;
        const auto& v = detectors[i]->verdict(j);
        if (!v.flagged) continue;
        if (!offender || v.evidence > best) {
          offender = j;
          best = v.evidence;
        }
      }
    }
    if (offender) {
      Episode next;
      next.offender = *offender;
      next.remaining = enforcement.punishment_stages;
      next.w_punish = enforcement.punishment_w;
      next.punisher.assign(n, 0);
      for (std::size_t i : topo.neighbors(*offender)) {
        if (is_compliant(i)) next.punisher[i] = 1;
      }
      episode = std::move(next);
      ++result.punishment_episodes;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (detectors[i]) result.flags_raised += detectors[i]->flags_raised();
  }
  record_fault_counters(result, injector, config.stages);
  record_convergence_facts(result);
  return result;
}

}  // namespace smac::multihop
