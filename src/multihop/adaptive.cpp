#include "multihop/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

namespace smac::multihop {

MultihopTftResult play_multihop_tft(MultihopSimulator& sim,
                                    RandomWaypointModel* mobility,
                                    const MultihopTftConfig& config) {
  return play_multihop_tft(sim, mobility, config, nullptr);
}

MultihopTftResult play_multihop_tft(MultihopSimulator& sim,
                                    RandomWaypointModel* mobility,
                                    const MultihopTftConfig& config,
                                    fault::FaultInjector* injector) {
  if (config.stages < 1) {
    throw std::invalid_argument("play_multihop_tft: stages < 1");
  }
  if (config.slots_per_stage == 0) {
    throw std::invalid_argument("play_multihop_tft: zero slots per stage");
  }
  if (config.mobility_dt_s < 0.0) {
    throw std::invalid_argument("play_multihop_tft: negative mobility dt");
  }
  if (mobility && mobility->node_count() != sim.node_count()) {
    throw std::invalid_argument("play_multihop_tft: mobility size mismatch");
  }
  if (injector && injector->node_count() != sim.node_count()) {
    throw std::invalid_argument("play_multihop_tft: injector size mismatch");
  }
  const std::size_t n = sim.node_count();

  MultihopTftResult result;
  std::vector<int> profile(n);
  for (std::size_t i = 0; i < n; ++i) profile[i] = sim.cw(i);
  // observed[i][j]: node i's current belief of node j's window (loss
  // fallback for the observation fault model).
  std::vector<std::vector<int>> observed(
      injector ? n : 0, std::vector<int>(injector ? n : 0, 0));
  if (injector) {
    for (std::size_t i = 0; i < n; ++i) observed[i] = profile;
  }

  for (int k = 0; k < config.stages; ++k) {
    if (injector) {
      injector->begin_stage(k);
      for (std::size_t i = 0; i < n; ++i) {
        sim.set_node_active(i, injector->online(i));
      }
    }
    // Run the stage with the current profile.
    const MultihopResult run = sim.run_slots(config.slots_per_stage);
    MultihopStage stage;
    stage.cw = profile;
    stage.payoff.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      stage.payoff[i] = run.node[i].payoff_rate;
    }
    stage.global_payoff = run.global_payoff_rate;
    stage.topology_connected = sim.topology().connected();
    if (injector) stage.online = injector->online_mask();
    result.stages.push_back(std::move(stage));

    // Mobility epoch: nodes move, the observation graph changes.
    if (mobility && config.mobility_dt_s > 0.0) {
      mobility->advance(config.mobility_dt_s);
      sim.update_topology(
          Topology(mobility->positions(), sim.config().range_m));
    }

    // Graph-local TFT on the (possibly new) topology: match the smallest
    // window in the closed neighborhood. Under faults, only online
    // neighbors are matched and their windows are read through the
    // observation model (fixed i-then-j draw order); crashed nodes keep
    // their configured window untouched.
    std::vector<int> next(n);
    const Topology& topo = sim.topology();
    for (std::size_t i = 0; i < n; ++i) {
      if (injector && !injector->online(i)) {
        next[i] = profile[i];
        continue;
      }
      int w = profile[i];
      for (std::size_t j : topo.neighbors(i)) {
        if (!injector) {
          w = std::min(w, profile[j]);
        } else if (injector->online(j)) {
          const int seen =
              injector->observe_cw(profile[j], observed[i][j]).cw;
          observed[i][j] = seen;
          w = std::min(w, seen);
        }
      }
      next[i] = w;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (next[i] != profile[i]) sim.set_cw(i, next[i]);
    }
    profile = std::move(next);
  }

  if (injector) {
    result.degradation.stages = config.stages;
    result.degradation.crash_events = injector->crash_events();
    result.degradation.join_events = injector->join_events();
    result.degradation.lost_observations = injector->lost_observations();
    result.degradation.noisy_observations = injector->noisy_observations();
    result.degradation.last_fault_stage = injector->last_fault_stage();
  }

  const std::vector<int>& last = result.stages.back().cw;
  if (std::all_of(last.begin(), last.end(),
                  [&](int w) { return w == last.front(); })) {
    result.converged_cw = last.front();
  }
  result.stable_from = static_cast<int>(result.stages.size());
  for (int k = static_cast<int>(result.stages.size()); k-- > 0;) {
    if (result.stages[static_cast<std::size_t>(k)].cw == last) {
      result.stable_from = k;
    } else {
      break;
    }
  }
  return result;
}

}  // namespace smac::multihop
