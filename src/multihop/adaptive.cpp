#include "multihop/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

namespace smac::multihop {

MultihopTftResult play_multihop_tft(MultihopSimulator& sim,
                                    RandomWaypointModel* mobility,
                                    const MultihopTftConfig& config) {
  if (config.stages < 1) {
    throw std::invalid_argument("play_multihop_tft: stages < 1");
  }
  if (config.slots_per_stage == 0) {
    throw std::invalid_argument("play_multihop_tft: zero slots per stage");
  }
  if (config.mobility_dt_s < 0.0) {
    throw std::invalid_argument("play_multihop_tft: negative mobility dt");
  }
  if (mobility && mobility->node_count() != sim.node_count()) {
    throw std::invalid_argument("play_multihop_tft: mobility size mismatch");
  }
  const std::size_t n = sim.node_count();

  MultihopTftResult result;
  std::vector<int> profile(n);
  for (std::size_t i = 0; i < n; ++i) profile[i] = sim.cw(i);

  for (int k = 0; k < config.stages; ++k) {
    // Run the stage with the current profile.
    const MultihopResult run = sim.run_slots(config.slots_per_stage);
    MultihopStage stage;
    stage.cw = profile;
    stage.payoff.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      stage.payoff[i] = run.node[i].payoff_rate;
    }
    stage.global_payoff = run.global_payoff_rate;
    stage.topology_connected = sim.topology().connected();
    result.stages.push_back(std::move(stage));

    // Mobility epoch: nodes move, the observation graph changes.
    if (mobility && config.mobility_dt_s > 0.0) {
      mobility->advance(config.mobility_dt_s);
      sim.update_topology(
          Topology(mobility->positions(), sim.config().range_m));
    }

    // Graph-local TFT on the (possibly new) topology: match the smallest
    // window in the closed neighborhood.
    std::vector<int> next(n);
    const Topology& topo = sim.topology();
    for (std::size_t i = 0; i < n; ++i) {
      int w = profile[i];
      for (std::size_t j : topo.neighbors(i)) w = std::min(w, profile[j]);
      next[i] = w;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (next[i] != profile[i]) sim.set_cw(i, next[i]);
    }
    profile = std::move(next);
  }

  const std::vector<int>& last = result.stages.back().cw;
  if (std::all_of(last.begin(), last.end(),
                  [&](int w) { return w == last.front(); })) {
    result.converged_cw = last.front();
  }
  result.stable_from = static_cast<int>(result.stages.size());
  for (int k = static_cast<int>(result.stages.size()); k-- > 0;) {
    if (result.stages[static_cast<std::size_t>(k)].cw == last) {
      result.stable_from = k;
    } else {
      break;
    }
  }
  return result;
}

}  // namespace smac::multihop
