#include "multihop/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "multihop/spatial_index.hpp"

namespace smac::multihop {

Topology::Topology(const std::vector<Vec2>& positions, double range_m)
    : range_m_(range_m), positions_(positions) {
  if (!(range_m > 0.0)) throw std::invalid_argument("Topology: range <= 0");
  if (positions.empty()) throw std::invalid_argument("Topology: no nodes");
  neighbors_ = SpatialIndex(positions, range_m).take_neighbors();
}

Topology::Topology(std::vector<Vec2> positions, double range_m,
                   std::vector<std::vector<std::size_t>> neighbors)
    : range_m_(range_m), positions_(std::move(positions)),
      neighbors_(std::move(neighbors)) {
  if (!(range_m > 0.0)) throw std::invalid_argument("Topology: range <= 0");
  if (positions_.empty()) throw std::invalid_argument("Topology: no nodes");
  if (neighbors_.size() != positions_.size()) {
    throw std::invalid_argument("Topology: adjacency size mismatch");
  }
}

Topology build_topology_full(const std::vector<Vec2>& positions,
                             double range_m) {
  if (!(range_m > 0.0)) throw std::invalid_argument("Topology: range <= 0");
  if (positions.empty()) throw std::invalid_argument("Topology: no nodes");
  std::vector<std::vector<std::size_t>> neighbors(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      if (in_range(positions[i], positions[j], range_m)) {
        neighbors[i].push_back(j);
        neighbors[j].push_back(i);
      }
    }
  }
  return Topology(positions, range_m, std::move(neighbors));
}

bool Topology::are_neighbors(std::size_t a, std::size_t b) const {
  const auto& na = neighbors_.at(a);
  return std::binary_search(na.begin(), na.end(), b);
}

bool Topology::connected() const {
  std::vector<char> seen(node_count(), 0);
  std::queue<std::size_t> queue;
  seen[0] = 1;
  queue.push(0);
  std::size_t reached = 1;
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop();
    for (std::size_t v : neighbors_[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++reached;
        queue.push(v);
      }
    }
  }
  return reached == node_count();
}

std::size_t Topology::hop_distance(std::size_t a, std::size_t b) const {
  if (a >= node_count() || b >= node_count()) {
    throw std::invalid_argument("hop_distance: node out of range");
  }
  if (a == b) return 0;
  constexpr auto kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(node_count(), kInf);
  std::queue<std::size_t> queue;
  dist[a] = 0;
  queue.push(a);
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop();
    for (std::size_t v : neighbors_[u]) {
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        if (v == b) return dist[v];
        queue.push(v);
      }
    }
  }
  return kInf;
}

std::size_t Topology::diameter() const {
  constexpr auto kInf = std::numeric_limits<std::size_t>::max();
  std::size_t diameter = 0;
  // BFS from every node — O(n·(n+m)). Fine for the paper-scale scenarios
  // that ask for a diameter; city-scale runs (n ≥ 10^4, docs/CITY_SCALE.md)
  // work off SpatialIndex neighbor sets and never call this.
  for (std::size_t s = 0; s < node_count(); ++s) {
    std::vector<std::size_t> dist(node_count(), kInf);
    std::queue<std::size_t> queue;
    dist[s] = 0;
    queue.push(s);
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop();
      for (std::size_t v : neighbors_[u]) {
        if (dist[v] == kInf) {
          dist[v] = dist[u] + 1;
          queue.push(v);
        }
      }
    }
    for (std::size_t d : dist) {
      if (d == kInf) return kInf;  // disconnected
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

}  // namespace smac::multihop
