// Local-game seeding and TFT convergence in multi-hop networks (paper §VI).
//
// Without global coordination each node i plays the efficient NE of the
// *local* single-hop game among itself and its neighbors (n_i = deg(i)+1
// players); TFT then drags every window down to W_m = min_i W_i, which
// Theorem 3 shows is a NE of the multi-hop game G′.
#pragma once

#include <vector>

#include "game/stage_game.hpp"
#include "multihop/topology.hpp"

namespace smac::multihop {

/// W_i for every node: the efficient NE window of its local (deg+1)-player
/// single-hop game. Results are memoized per degree (many nodes share one).
///
/// `min_players` floors the local game size (default 2): an isolated node
/// has no receiver, so its 1-player "game" is degenerate (W = 1 maximizes
/// a solo utility) — and once mobility connects it, TFT would spread that
/// W = 1 network-wide with no recovery (§V.E contagion, triggered by an
/// artifact). Seeding at the 2-player NE is the conservative convention.
std::vector<int> local_efficient_cw(const Topology& topology,
                                    const game::StageGame& game,
                                    int min_players = 2);

/// Trajectory of the graph-TFT dynamics W_i^{k+1} = min_{j ∈ N(i) ∪ {i}}
/// W_j^k from the seed profile until no window changes.
struct TftConvergence {
  std::vector<std::vector<int>> trajectory;  ///< [stage][node]
  int stages = 0;          ///< stages until stable (0 = already stable)
  int converged_w = 0;     ///< min over the final profile
  bool uniform = false;    ///< all nodes equal at the end (connected graph)
};

TftConvergence tft_min_convergence(const Topology& topology,
                                   std::vector<int> seed_profile,
                                   int max_stages = 10000);

}  // namespace smac::multihop
