#include "multihop/multihop_simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace smac::multihop {

MultihopSimulator::MultihopSimulator(MultihopConfig config, Topology topology,
                                     const std::vector<int>& cw_profile)
    : config_(std::move(config)),
      times_(config_.params.slot_times(config_.mode)),
      topology_(std::move(topology)),
      rng_(config_.seed),
      active_(cw_profile.size(), 1),
      fault_channel_(config_.faults.channel,
                     util::Rng(config_.seed ^ 0xb4d57a7eULL)),
      fault_rng_(config_.seed ^ 0x6e0a2fc3ULL) {
  config_.params.validate();
  config_.faults.validate();
  if (cw_profile.size() != topology_.node_count()) {
    throw std::invalid_argument("MultihopSimulator: profile/topology mismatch");
  }
  for (const fault::SlotEvent& e : config_.faults.events) {
    if (e.node >= cw_profile.size()) {
      throw std::invalid_argument("MultihopSimulator: fault event node index");
    }
  }
  // Events apply in (slot, declaration) order.
  std::stable_sort(config_.faults.events.begin(), config_.faults.events.end(),
                   [](const fault::SlotEvent& a, const fault::SlotEvent& b) {
                     return a.slot < b.slot;
                   });
  util::Rng master(config_.seed ^ 0xabcdef1234567890ULL);
  nodes_.reserve(cw_profile.size());
  for (int w : cw_profile) {
    nodes_.emplace_back(w, config_.params.max_backoff_stage, master.split());
  }
}

void MultihopSimulator::set_cw(std::size_t i, int w) { nodes_.at(i).set_cw(w); }

void MultihopSimulator::set_all_cw(int w) {
  for (auto& node : nodes_) node.set_cw(w);
}

void MultihopSimulator::set_profile(const std::vector<int>& cw_profile) {
  if (cw_profile.size() != nodes_.size()) {
    throw std::invalid_argument("MultihopSimulator: profile size mismatch");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].set_cw(cw_profile[i]);
  }
}

void MultihopSimulator::set_node_active(std::size_t i, bool active) {
  active_.at(i) = active ? 1 : 0;
}

void MultihopSimulator::update_topology(Topology topology) {
  if (topology.node_count() != nodes_.size()) {
    throw std::invalid_argument("update_topology: node count changed");
  }
  topology_ = std::move(topology);
}

MultihopResult MultihopSimulator::run_slots(std::uint64_t slots) {
  if (slots == 0) throw std::invalid_argument("run_slots: slots == 0");
  const std::size_t n = nodes_.size();

  struct Tally {
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
    std::uint64_t sender_collisions = 0;
    std::uint64_t hidden_losses = 0;
    std::uint64_t channel_losses = 0;
    std::uint64_t own_attempt_slots = 0;
    double local_time_us = 0.0;
  };
  std::vector<Tally> tally(n);
  std::uint64_t bad_state_slots = 0;
  const bool channel_on = config_.faults.channel.enabled();

  std::vector<std::size_t> transmitters;
  std::vector<std::size_t> receiver_of(n);
  std::vector<char> is_tx(n);
  // Per-slot outcome of each transmitter: 0 success, 1 sender collision,
  // 2 hidden loss, 3 no receiver available, 4 clear but corrupted by the
  // bursty channel.
  std::vector<int> outcome(n);

  for (std::uint64_t s = 0; s < slots; ++s) {
    // Faults resolve at the slot boundary: scripted events first (through
    // the same active_ mask as set_node_active), then one step of the
    // bursty-loss chain (no draws when the plan is empty).
    while (next_fault_event_ < config_.faults.events.size() &&
           config_.faults.events[next_fault_event_].slot <= total_slots_) {
      const fault::SlotEvent& e = config_.faults.events[next_fault_event_++];
      active_[e.node] = e.kind == fault::FaultKind::kJoin ? 1 : 0;
    }
    fault_channel_.step();
    if (fault_channel_.bad()) ++bad_state_slots;

    transmitters.clear();
    std::fill(is_tx.begin(), is_tx.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (active_[i] != 0 && nodes_[i].ready()) {
        transmitters.push_back(i);
        is_tx[i] = 1;
      }
    }

    // Pick receivers and classify outcomes.
    for (std::size_t i : transmitters) {
      const auto& nb = topology_.neighbors(i);
      // Crashed neighbors cannot receive; with the fault layer off every
      // node is active and this is the plain neighbor list (no extra
      // draws, same RNG trajectory as before).
      receiver_scratch_.clear();
      for (std::size_t j : nb) {
        if (active_[j] != 0) receiver_scratch_.push_back(j);
      }
      if (receiver_scratch_.empty()) {
        outcome[i] = 3;  // isolated node: nothing to send to
        continue;
      }
      const std::size_t r =
          receiver_scratch_[rng_.uniform_below(receiver_scratch_.size())];
      receiver_of[i] = r;

      // Interference tests walk neighbor lists instead of the transmitter
      // set: in a unit-disk graph `j transmits in range of i` is exactly
      // `j ∈ neighbors(i) ∧ is_tx[j]`, so the classification (and the RNG
      // trajectory) is bit-identical to the old geometric scan while the
      // cost drops from O(|tx|) to O(deg) per test.
      bool sender_contended = false;
      bool receiver_jammed = is_tx[r] != 0;  // receiver busy transmitting
      for (std::size_t j : nb) {
        if (is_tx[j] != 0) {
          sender_contended = true;
          break;  // sender-side contention dominates the classification
        }
      }
      if (!sender_contended && !receiver_jammed) {
        for (std::size_t j : topology_.neighbors(r)) {
          if (j == i) continue;
          if (is_tx[j] != 0) {
            receiver_jammed = true;
            break;
          }
        }
      }
      outcome[i] = sender_contended ? 1 : (receiver_jammed ? 2 : 0);
    }

    // Bursty-channel corruption of otherwise successful deliveries, in
    // node-index order so the draw sequence is deterministic. Only runs
    // with an enabled chain: the spatial simulator models no i.i.d.
    // channel noise on its own.
    if (channel_on) {
      const double per_eff =
          fault_channel_.effective_per(config_.params.packet_error_rate);
      if (per_eff > 0.0) {
        for (std::size_t i : transmitters) {
          if (outcome[i] == 0 && fault_rng_.bernoulli(per_eff)) outcome[i] = 4;
        }
      }
    }

    // Local channel time: σ if no transmitter in range (incl. self),
    // T_s if some in-range transmission succeeded, else T_c. A crashed
    // node senses nothing and accrues no local time. A channel-corrupted
    // frame (outcome 4) still occupies its full T_s airtime — as in the
    // single-hop simulator, the loss is at the receiver, not on the air.
    for (std::size_t i = 0; i < n; ++i) {
      if (active_[i] == 0) continue;
      bool any_tx = is_tx[i] != 0;
      bool any_success = any_tx && (outcome[i] == 0 || outcome[i] == 4);
      if (!any_success) {
        for (std::size_t j : topology_.neighbors(i)) {
          if (is_tx[j] != 0) {
            any_tx = true;
            if (outcome[j] == 0 || outcome[j] == 4) {
              any_success = true;
              break;
            }
          }
        }
      }
      tally[i].local_time_us += !any_tx       ? times_.sigma_us
                                : any_success ? times_.ts_us
                                              : times_.tc_us;
    }

    // Apply outcomes to backoff state and counters. Crashed nodes freeze
    // their backoff until they rejoin.
    for (std::size_t i = 0; i < n; ++i) {
      if (active_[i] == 0) continue;
      if (!is_tx[i]) {
        nodes_[i].observe_slot();
        continue;
      }
      Tally& t = tally[i];
      ++t.own_attempt_slots;
      switch (outcome[i]) {
        case 0:
          ++t.attempts;
          ++t.successes;
          nodes_[i].on_success();
          break;
        case 1:
          ++t.attempts;
          ++t.sender_collisions;
          nodes_[i].on_collision();
          break;
        case 2:
          ++t.attempts;
          ++t.hidden_losses;
          // The sender's own domain was clear: in 802.11 terms it gets no
          // CTS/ACK and backs off, exactly like a collision.
          nodes_[i].on_collision();
          break;
        case 3:
          // Isolated: skip the slot without spending energy.
          nodes_[i].on_success();
          break;
        case 4:
          ++t.attempts;
          ++t.channel_losses;
          // No ACK arrives: the sender backs off exactly as after a
          // collision, just as in the single-hop error path.
          nodes_[i].on_collision();
          break;
      }
    }
    ++total_slots_;
  }

  MultihopResult result;
  result.slots = slots;
  result.bad_state_slots = bad_state_slots;
  result.node.resize(n);
  std::uint64_t clear_attempts = 0;
  std::uint64_t clear_delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Tally& t = tally[i];
    MultihopNodeStats& out = result.node[i];
    out.attempts = t.attempts;
    out.successes = t.successes;
    out.sender_collisions = t.sender_collisions;
    out.hidden_losses = t.hidden_losses;
    out.channel_losses = t.channel_losses;
    out.local_time_us = t.local_time_us;
    out.payoff_rate =
        t.local_time_us > 0.0
            ? (static_cast<double>(t.successes) * config_.params.gain -
               static_cast<double>(t.attempts) * config_.params.cost) /
                  t.local_time_us
            : 0.0;
    out.measured_tau =
        static_cast<double>(t.own_attempt_slots) / static_cast<double>(slots);
    out.measured_p =
        t.attempts ? static_cast<double>(t.sender_collisions) /
                         static_cast<double>(t.attempts)
                   : 0.0;
    // A channel-corrupted frame was clear locally and unjammed at the
    // receiver, so it belongs in the clear-sender denominator: p_hn then
    // folds bursty-channel degradation together with hidden-node loss.
    const std::uint64_t clear =
        t.successes + t.hidden_losses + t.channel_losses;
    out.measured_p_hn =
        clear ? static_cast<double>(t.successes) / static_cast<double>(clear)
              : 1.0;
    clear_attempts += clear;
    clear_delivered += t.successes;
    result.global_payoff_rate += out.payoff_rate;
  }
  result.aggregate_p_hn =
      clear_attempts ? static_cast<double>(clear_delivered) /
                           static_cast<double>(clear_attempts)
                     : 1.0;
  return result;
}

const std::vector<std::string>& replicated_metric_names() {
  static const std::vector<std::string> names{
      "global payoff rate", "aggregate p_hn", "success fraction",
      "hidden-loss fraction", "mean tau"};
  return names;
}

namespace {

std::vector<double> replicated_metric_row(const MultihopResult& r) {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t hidden = 0;
  double tau_sum = 0.0;
  for (const MultihopNodeStats& s : r.node) {
    attempts += s.attempts;
    successes += s.successes;
    hidden += s.hidden_losses;
    tau_sum += s.measured_tau;
  }
  const double att = attempts ? static_cast<double>(attempts) : 1.0;
  return {r.global_payoff_rate, r.aggregate_p_hn,
          static_cast<double>(successes) / att,
          static_cast<double>(hidden) / att,
          r.node.empty() ? 0.0
                         : tau_sum / static_cast<double>(r.node.size())};
}

}  // namespace

MultihopBatch run_replicated(const MultihopConfig& config,
                             const Topology& topology,
                             const std::vector<int>& cw_profile,
                             std::uint64_t slots, std::size_t replications,
                             std::size_t jobs) {
  parallel::StoppingRule fixed;  // target 0: stream all N, never stop early
  fixed.max_reps = replications;
  return run_replicated(config, topology, cw_profile, slots, fixed, jobs);
}

MultihopBatch run_replicated(const MultihopConfig& config,
                             const Topology& topology,
                             const std::vector<int>& cw_profile,
                             std::uint64_t slots,
                             const parallel::StoppingRule& rule,
                             std::size_t jobs) {
  if (rule.max_reps == 0) {
    throw std::invalid_argument("run_replicated: rule.max_reps == 0");
  }
  const parallel::ReplicationRunner runner({rule.max_reps, config.seed, jobs});
  auto summary = runner.run_sequential(
      replicated_metric_names(), rule,
      [&](std::uint64_t seed, std::size_t /*index*/) {
        MultihopConfig replica = config;
        replica.seed = seed;
        MultihopSimulator simulator(replica, topology, cw_profile);
        return replicated_metric_row(simulator.run_slots(slots));
      });
  MultihopBatch batch;
  batch.metrics = std::move(summary.metrics);
  batch.stopping = std::move(summary.stopping);
  return batch;
}

}  // namespace smac::multihop
