#include "multihop/multihop_simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "multihop/slot_kernel.hpp"

namespace smac::multihop {

const char* to_string(MultihopKernel kernel) noexcept {
  switch (kernel) {
    case MultihopKernel::kSlotLoop:
      return "slot-loop";
    case MultihopKernel::kPdes:
      return "pdes";
  }
  return "?";
}

MultihopSimulator::MultihopSimulator(MultihopConfig config, Topology topology,
                                     const std::vector<int>& cw_profile)
    : config_(std::move(config)),
      times_(config_.params.slot_times(config_.mode)),
      topology_(std::move(topology)),
      active_(cw_profile.size(), 1),
      fault_channel_(config_.faults.channel,
                     util::Rng(config_.seed ^ 0xb4d57a7eULL)) {
  config_.params.validate();
  config_.faults.validate();
  config_.pdes.validate();
  if (cw_profile.size() != topology_.node_count()) {
    throw std::invalid_argument("MultihopSimulator: profile/topology mismatch");
  }
  for (const fault::SlotEvent& e : config_.faults.events) {
    if (e.node >= cw_profile.size()) {
      throw std::invalid_argument("MultihopSimulator: fault event node index");
    }
  }
  // Events apply in (slot, declaration) order.
  std::stable_sort(config_.faults.events.begin(), config_.faults.events.end(),
                   [](const fault::SlotEvent& a, const fault::SlotEvent& b) {
                     return a.slot < b.slot;
                   });
  util::Rng master(config_.seed ^ 0xabcdef1234567890ULL);
  nodes_.reserve(cw_profile.size());
  draw_base_.reserve(cw_profile.size());
  for (int w : cw_profile) {
    nodes_.emplace_back(w, config_.params.max_backoff_stage, master.split());
    draw_base_.push_back(
        detail::node_draw_base(config_.seed, draw_base_.size()));
  }
}

void MultihopSimulator::set_cw(std::size_t i, int w) { nodes_.at(i).set_cw(w); }

void MultihopSimulator::set_all_cw(int w) {
  for (auto& node : nodes_) node.set_cw(w);
}

void MultihopSimulator::set_profile(const std::vector<int>& cw_profile) {
  if (cw_profile.size() != nodes_.size()) {
    throw std::invalid_argument("MultihopSimulator: profile size mismatch");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].set_cw(cw_profile[i]);
  }
}

void MultihopSimulator::set_node_active(std::size_t i, bool active) {
  active_.at(i) = active ? 1 : 0;
}

void MultihopSimulator::update_topology(Topology topology) {
  if (topology.node_count() != nodes_.size()) {
    throw std::invalid_argument("update_topology: node count changed");
  }
  topology_ = std::move(topology);
  partition_.reset();  // region geometry moved with the nodes
}

MultihopResult MultihopSimulator::run_slots(std::uint64_t slots) {
  if (slots == 0) throw std::invalid_argument("run_slots: slots == 0");
  return config_.kernel == MultihopKernel::kPdes ? run_slots_pdes(slots)
                                                 : run_slots_slot_loop(slots);
}

namespace detail {

// Shared window finalization: both kernels produce per-node SlotTally
// arrays and reduce them here, in node order, so the derived doubles are
// bitwise identical.
MultihopResult assemble_result(const MultihopConfig& config,
                               std::uint64_t slots,
                               std::uint64_t bad_state_slots,
                               const std::vector<SlotTally>& tally) {
  MultihopResult result;
  result.slots = slots;
  result.bad_state_slots = bad_state_slots;
  result.node.resize(tally.size());
  std::uint64_t clear_attempts = 0;
  std::uint64_t clear_delivered = 0;
  for (std::size_t i = 0; i < tally.size(); ++i) {
    const SlotTally& t = tally[i];
    MultihopNodeStats& out = result.node[i];
    out.attempts = t.attempts;
    out.successes = t.successes;
    out.sender_collisions = t.sender_collisions;
    out.hidden_losses = t.hidden_losses;
    out.channel_losses = t.channel_losses;
    out.local_time_us = t.local_time_us;
    out.payoff_rate =
        t.local_time_us > 0.0
            ? (static_cast<double>(t.successes) * config.params.gain -
               static_cast<double>(t.attempts) * config.params.cost) /
                  t.local_time_us
            : 0.0;
    out.measured_tau =
        static_cast<double>(t.own_attempt_slots) / static_cast<double>(slots);
    out.measured_p =
        t.attempts ? static_cast<double>(t.sender_collisions) /
                         static_cast<double>(t.attempts)
                   : 0.0;
    // A channel-corrupted frame was clear locally and unjammed at the
    // receiver, so it belongs in the clear-sender denominator: p_hn then
    // folds bursty-channel degradation together with hidden-node loss.
    const std::uint64_t clear =
        t.successes + t.hidden_losses + t.channel_losses;
    out.measured_p_hn =
        clear ? static_cast<double>(t.successes) / static_cast<double>(clear)
              : 1.0;
    clear_attempts += clear;
    clear_delivered += t.successes;
    result.global_payoff_rate += out.payoff_rate;
  }
  result.aggregate_p_hn =
      clear_attempts ? static_cast<double>(clear_delivered) /
                           static_cast<double>(clear_attempts)
                     : 1.0;
  return result;
}

}  // namespace detail

MultihopResult MultihopSimulator::run_slots_slot_loop(std::uint64_t slots) {
  const std::size_t n = nodes_.size();

  std::vector<detail::SlotTally> tally(n);
  std::uint64_t bad_state_slots = 0;
  const bool channel_on = config_.faults.channel.enabled();

  std::vector<std::size_t> transmitters;
  std::vector<char> is_tx(n);
  std::vector<int> outcome(n);

  auto tx_of = [&](std::size_t j) { return is_tx[j] != 0; };
  auto active_of = [&](std::size_t j) { return active_[j] != 0; };

  for (std::uint64_t s = 0; s < slots; ++s) {
    // Faults resolve at the slot boundary: scripted events first (through
    // the same active_ mask as set_node_active), then one step of the
    // bursty-loss chain (no draws when the plan is empty).
    while (next_fault_event_ < config_.faults.events.size() &&
           config_.faults.events[next_fault_event_].slot <= total_slots_) {
      const fault::SlotEvent& e = config_.faults.events[next_fault_event_++];
      active_[e.node] = e.kind == fault::FaultKind::kJoin ? 1 : 0;
    }
    fault_channel_.step();
    if (fault_channel_.bad()) ++bad_state_slots;
    const double per_eff =
        channel_on ? fault_channel_.effective_per(config_.params.packet_error_rate)
                   : 0.0;

    transmitters.clear();
    std::fill(is_tx.begin(), is_tx.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (active_[i] != 0 && nodes_[i].ready()) {
        transmitters.push_back(i);
        is_tx[i] = 1;
      }
    }

    // Classify each transmitter from its own (node, slot) draw stream:
    // draw #1 picks the receiver, draw #2 (taken only for an on-air
    // success under an enabled chain) is the bursty-corruption trial.
    for (std::size_t i : transmitters) {
      util::Rng rng = detail::slot_rng(draw_base_[i], total_slots_);
      int out = detail::classify_transmitter(topology_, i, rng, tx_of,
                                             active_of, receiver_scratch_);
      if (out == detail::kOutcomeSuccess && channel_on && per_eff > 0.0 &&
          rng.bernoulli(per_eff)) {
        out = detail::kOutcomeChannelLoss;
      }
      outcome[i] = out;
    }

    // Local channel time. A crashed node senses nothing and accrues no
    // local time.
    for (std::size_t i = 0; i < n; ++i) {
      if (active_[i] == 0) continue;
      const bool self_tx = is_tx[i] != 0;
      tally[i].local_time_us += detail::local_slot_time_us(
          topology_, i, times_, self_tx,
          self_tx && detail::on_air_success(outcome[i]), tx_of,
          [&](std::size_t j) { return detail::on_air_success(outcome[j]); });
    }

    // Apply outcomes to backoff state and counters. Crashed nodes freeze
    // their backoff until they rejoin.
    for (std::size_t i = 0; i < n; ++i) {
      if (active_[i] == 0) continue;
      if (!is_tx[i]) {
        nodes_[i].observe_slot();
        continue;
      }
      detail::apply_outcome(outcome[i], tally[i], nodes_[i]);
    }
    ++total_slots_;
  }

  return detail::assemble_result(config_, slots, bad_state_slots, tally);
}

const std::vector<std::string>& replicated_metric_names() {
  static const std::vector<std::string> names{
      "global payoff rate", "aggregate p_hn", "success fraction",
      "hidden-loss fraction", "mean tau"};
  return names;
}

namespace {

std::vector<double> replicated_metric_row(const MultihopResult& r) {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t hidden = 0;
  double tau_sum = 0.0;
  for (const MultihopNodeStats& s : r.node) {
    attempts += s.attempts;
    successes += s.successes;
    hidden += s.hidden_losses;
    tau_sum += s.measured_tau;
  }
  const double att = attempts ? static_cast<double>(attempts) : 1.0;
  return {r.global_payoff_rate, r.aggregate_p_hn,
          static_cast<double>(successes) / att,
          static_cast<double>(hidden) / att,
          r.node.empty() ? 0.0
                         : tau_sum / static_cast<double>(r.node.size())};
}

}  // namespace

MultihopResult run_multihop_slot_loop(const MultihopConfig& config,
                                      const Topology& topology,
                                      const std::vector<int>& cw_profile,
                                      std::uint64_t slots) {
  MultihopConfig oracle = config;
  oracle.kernel = MultihopKernel::kSlotLoop;
  MultihopSimulator simulator(oracle, topology, cw_profile);
  return simulator.run_slots(slots);
}

MultihopResult run_multihop_pdes(const MultihopConfig& config,
                                 const Topology& topology,
                                 const std::vector<int>& cw_profile,
                                 std::uint64_t slots, PdesRunStats* stats) {
  MultihopConfig pdes = config;
  pdes.kernel = MultihopKernel::kPdes;
  MultihopSimulator simulator(pdes, topology, cw_profile);
  MultihopResult result = simulator.run_slots(slots);
  if (stats != nullptr) *stats = simulator.last_pdes_stats();
  return result;
}

MultihopBatch run_replicated(const MultihopConfig& config,
                             const Topology& topology,
                             const std::vector<int>& cw_profile,
                             std::uint64_t slots, std::size_t replications,
                             std::size_t jobs) {
  parallel::StoppingRule fixed;  // target 0: stream all N, never stop early
  fixed.max_reps = replications;
  return run_replicated(config, topology, cw_profile, slots, fixed, jobs);
}

MultihopBatch run_replicated(const MultihopConfig& config,
                             const Topology& topology,
                             const std::vector<int>& cw_profile,
                             std::uint64_t slots,
                             const parallel::StoppingRule& rule,
                             std::size_t jobs) {
  if (rule.max_reps == 0) {
    throw std::invalid_argument("run_replicated: rule.max_reps == 0");
  }
  const parallel::ReplicationRunner runner({rule.max_reps, config.seed, jobs});
  auto summary = runner.run_sequential(
      replicated_metric_names(), rule,
      [&](std::uint64_t seed, std::size_t /*index*/) {
        MultihopConfig replica = config;
        replica.seed = seed;
        MultihopSimulator simulator(replica, topology, cw_profile);
        return replicated_metric_row(simulator.run_slots(slots));
      });
  MultihopBatch batch;
  batch.metrics = std::move(summary.metrics);
  batch.stopping = std::move(summary.stopping);
  return batch;
}

}  // namespace smac::multihop
