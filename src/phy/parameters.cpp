#include "phy/parameters.hpp"

#include <stdexcept>

namespace smac::phy {

std::string to_string(AccessMode mode) {
  switch (mode) {
    case AccessMode::kBasic: return "basic";
    case AccessMode::kRtsCts: return "rts-cts";
  }
  return "unknown";
}

Parameters Parameters::paper() { return Parameters{}; }

double Parameters::airtime_us(double bits) const {
  return bits / bitrate_bps * 1e6;
}

double Parameters::header_us() const {
  return airtime_us(phy_header_bits + mac_header_bits);
}

double Parameters::payload_us() const { return airtime_us(payload_bits); }

double Parameters::ack_us() const {
  return airtime_us(ack_bits + phy_header_bits);
}

double Parameters::rts_us() const {
  return airtime_us(rts_bits + phy_header_bits);
}

double Parameters::cts_us() const {
  return airtime_us(cts_bits + phy_header_bits);
}

SlotTimes Parameters::slot_times(AccessMode mode) const {
  SlotTimes t;
  t.sigma_us = sigma_us;
  const double h = header_us();
  const double p = payload_us();
  switch (mode) {
    case AccessMode::kBasic:
      t.ts_us = h + p + sifs_us + ack_us() + difs_us;
      t.tc_us = h + p + sifs_us;
      break;
    case AccessMode::kRtsCts:
      t.ts_us = rts_us() + sifs_us + cts_us() + sifs_us + h + p + sifs_us +
                ack_us() + difs_us;
      t.tc_us = rts_us() + difs_us;
      break;
  }
  return t;
}

void Parameters::validate() const {
  auto positive = [](double v, const char* name) {
    if (!(v > 0.0)) {
      throw std::invalid_argument(std::string("Parameters: ") + name +
                                  " must be positive");
    }
  };
  positive(payload_bits, "payload_bits");
  positive(bitrate_bps, "bitrate_bps");
  positive(sigma_us, "sigma_us");
  positive(sifs_us, "sifs_us");
  positive(difs_us, "difs_us");
  positive(stage_duration_s, "stage_duration_s");
  positive(gain, "gain");
  if (cost < 0.0) {
    throw std::invalid_argument("Parameters: cost must be non-negative");
  }
  if (max_backoff_stage < 0) {
    throw std::invalid_argument("Parameters: max_backoff_stage must be >= 0");
  }
  if (w_max < 1) {
    throw std::invalid_argument("Parameters: w_max must be >= 1");
  }
  if (!(discount > 0.0) || !(discount < 1.0)) {
    throw std::invalid_argument("Parameters: discount must lie in (0,1)");
  }
  if (packet_error_rate < 0.0 || packet_error_rate >= 1.0) {
    throw std::invalid_argument(
        "Parameters: packet_error_rate must lie in [0,1)");
  }
}

}  // namespace smac::phy
