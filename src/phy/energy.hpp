// Radio energy accounting for the MAC game's cost parameter.
//
// The paper's utility charges an abstract cost e per transmission and
// notes that nodes are energy-constrained. This module grounds e in a
// physical radio model: per-state power draw (transmit / receive / idle,
// defaults from Feeney & Nilsson's classic WaveLAN measurements) combined
// with the frame timings of the configured access mode give the energy of
// every channel event, the long-run power draw of each node at a solved
// network state, and the e-value equivalent to a given price of energy.
#pragma once

#include <vector>

#include "phy/parameters.hpp"

namespace smac::phy {

/// Power draw per radio state, in milliwatts.
struct PowerProfile {
  double tx_mw = 1900.0;    ///< transmitting
  double rx_mw = 1340.0;    ///< receiving / overhearing
  double idle_mw = 1340.0;  ///< idle listening (carrier sensing)

  /// Throws std::invalid_argument on non-positive draws.
  void validate() const;
};

/// Energy components of one node over a measurement period, in millijoules.
struct EnergyBreakdown {
  double tx_mj = 0.0;
  double rx_mj = 0.0;
  double idle_mj = 0.0;
  double total_mj() const noexcept { return tx_mj + rx_mj + idle_mj; }
};

/// Sender-side energy of one *successful* exchange (basic: transmit
/// header+payload, receive ACK; RTS/CTS adds the handshake).
EnergyBreakdown successful_exchange_energy(const Parameters& params,
                                           AccessMode mode,
                                           const PowerProfile& power);

/// Sender-side energy of one *collided* attempt (the whole frame is
/// transmitted in basic mode; only the RTS under RTS/CTS — the energy
/// argument for the handshake).
EnergyBreakdown collided_attempt_energy(const Parameters& params,
                                        AccessMode mode,
                                        const PowerProfile& power);

/// Long-run power draw (milliwatts) of each node given per-slot
/// probabilities: idle slots burn idle power, own transmissions burn the
/// event energies above, and other stations' busy time is overheard at rx
/// power. `tau` and `p` come from the solved network state.
std::vector<double> node_power_draw_mw(const std::vector<double>& tau,
                                       const std::vector<double>& p,
                                       const Parameters& params,
                                       AccessMode mode,
                                       const PowerProfile& power);

/// The game-cost e equivalent to this radio: marginal energy of one
/// attempt (weighted success/collision mix at collision probability
/// `p_collision`) times the price of energy in gain units per millijoule.
double equivalent_transmission_cost(const Parameters& params, AccessMode mode,
                                    const PowerProfile& power,
                                    double p_collision,
                                    double gain_per_mj);

}  // namespace smac::phy
