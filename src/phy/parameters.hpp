// IEEE 802.11 PHY/MAC timing parameters and game constants.
//
// Defaults reproduce Table I of the paper (Bianchi's classic 1 Mbit/s
// parameter set): 8184-bit payload, 272-bit MAC header, 128-bit PHY header,
// σ = 50 µs, SIFS = 28 µs, DIFS = 128 µs, g = 1, e = 0.01, T = 10 s,
// δ = 0.9999.
#pragma once

#include <string>

namespace smac::phy {

/// Channel access mechanism of IEEE 802.11 DCF.
enum class AccessMode {
  kBasic,   ///< data frame collides (long collisions)
  kRtsCts,  ///< RTS/CTS handshake; collisions cost only an RTS
};

/// Short human-readable name ("basic" / "rts-cts").
std::string to_string(AccessMode mode);

/// Busy-channel durations entering Bianchi's average slot length.
struct SlotTimes {
  double sigma_us = 0.0;  ///< empty slot duration σ
  double ts_us = 0.0;     ///< busy time of a successful transmission
  double tc_us = 0.0;     ///< busy time of a collision
};

/// Full parameter set: frame sizes, channel timing, backoff model shape and
/// the utility/game constants of the paper.
struct Parameters {
  // ---- Frame sizes (bits). Control frames exclude their PHY preamble;
  //      the PHY header is added when converting to airtime. ----
  double payload_bits = 8184.0;
  double mac_header_bits = 272.0;
  double phy_header_bits = 128.0;
  double ack_bits = 112.0;
  double rts_bits = 160.0;
  double cts_bits = 112.0;

  // ---- Channel ----
  double bitrate_bps = 1.0e6;
  double sigma_us = 50.0;  ///< empty slot duration
  double sifs_us = 28.0;
  double difs_us = 128.0;
  /// Probability that an otherwise-successful (collision-free) frame is
  /// corrupted by channel noise and earns no ACK. The paper assumes an
  /// error-free channel (0.0); with PER > 0 the backoff chain escalates on
  /// the combined failure probability 1 − (1 − p)(1 − PER).
  double packet_error_rate = 0.0;

  // ---- Backoff model ----
  int max_backoff_stage = 6;  ///< m: CW doubles up to 2^m · W
  int w_max = 4096;           ///< upper bound of the strategy space W

  // ---- Game constants (Table I) ----
  double gain = 1.0;               ///< g: reward per delivered packet
  double cost = 0.01;              ///< e: energy cost per transmission
  double stage_duration_s = 10.0;  ///< T: duration of one game stage
  double discount = 0.9999;        ///< δ: per-stage discount factor

  /// Table I parameter set (identical to the defaults; spelled out for
  /// call-site clarity).
  static Parameters paper();

  /// Airtime of `bits` at the configured bitrate, in µs.
  double airtime_us(double bits) const;

  /// Header transmission time H = PHY + MAC header.
  double header_us() const;
  /// Payload transmission time P.
  double payload_us() const;
  /// ACK / RTS / CTS airtime, each including a PHY preamble.
  double ack_us() const;
  double rts_us() const;
  double cts_us() const;

  /// σ / T_s / T_c for the given access mode.
  ///
  /// Basic:   T_s = H + P + SIFS + ACK + DIFS,  T_c = H + P + SIFS
  /// RTS/CTS: T_s = RTS + SIFS + CTS + SIFS + H + P + SIFS + ACK + DIFS,
  ///          T_c = RTS + DIFS
  /// (collision durations follow the paper's §III / §V.F).
  SlotTimes slot_times(AccessMode mode) const;

  /// Throws std::invalid_argument when any field is out of range
  /// (non-positive durations, m < 0, w_max < 1, δ ∉ (0,1), …).
  void validate() const;
};

}  // namespace smac::phy
