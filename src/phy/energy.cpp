#include "phy/energy.hpp"

#include <stdexcept>

namespace smac::phy {

namespace {
// mW·µs = 1e-3 W · 1e-6 s = 1e-9 J = 1e-6 mJ.
constexpr double kMwUsToMj = 1e-6;
}

void PowerProfile::validate() const {
  if (!(tx_mw > 0.0) || !(rx_mw > 0.0) || !(idle_mw > 0.0)) {
    throw std::invalid_argument("PowerProfile: draws must be positive");
  }
}

EnergyBreakdown successful_exchange_energy(const Parameters& params,
                                           AccessMode mode,
                                           const PowerProfile& power) {
  power.validate();
  EnergyBreakdown e;
  const double data_us = params.header_us() + params.payload_us();
  switch (mode) {
    case AccessMode::kBasic:
      e.tx_mj = power.tx_mw * data_us * kMwUsToMj;
      e.rx_mj = power.rx_mw * params.ack_us() * kMwUsToMj;
      e.idle_mj =
          power.idle_mw * (params.sifs_us + params.difs_us) * kMwUsToMj;
      break;
    case AccessMode::kRtsCts:
      e.tx_mj = power.tx_mw * (params.rts_us() + data_us) * kMwUsToMj;
      e.rx_mj =
          power.rx_mw * (params.cts_us() + params.ack_us()) * kMwUsToMj;
      e.idle_mj =
          power.idle_mw * (3.0 * params.sifs_us + params.difs_us) * kMwUsToMj;
      break;
  }
  return e;
}

EnergyBreakdown collided_attempt_energy(const Parameters& params,
                                        AccessMode mode,
                                        const PowerProfile& power) {
  power.validate();
  EnergyBreakdown e;
  switch (mode) {
    case AccessMode::kBasic:
      e.tx_mj = power.tx_mw * (params.header_us() + params.payload_us()) *
                kMwUsToMj;
      e.idle_mj = power.idle_mw * params.sifs_us * kMwUsToMj;
      break;
    case AccessMode::kRtsCts:
      e.tx_mj = power.tx_mw * params.rts_us() * kMwUsToMj;
      e.idle_mj = power.idle_mw * params.difs_us * kMwUsToMj;
      break;
  }
  return e;
}

std::vector<double> node_power_draw_mw(const std::vector<double>& tau,
                                       const std::vector<double>& p,
                                       const Parameters& params,
                                       AccessMode mode,
                                       const PowerProfile& power) {
  if (tau.empty() || tau.size() != p.size()) {
    throw std::invalid_argument("node_power_draw_mw: malformed state");
  }
  power.validate();
  const SlotTimes t = params.slot_times(mode);
  const std::size_t n = tau.size();

  // Channel composition (as in analytical::channel_metrics).
  std::vector<double> prefix(n + 1, 1.0);
  std::vector<double> suffix(n + 1, 1.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] * (1.0 - tau[i]);
  for (std::size_t i = n; i-- > 0;) suffix[i] = suffix[i + 1] * (1.0 - tau[i]);
  const double p_idle = prefix[n];
  std::vector<double> p_succ(n);
  double p_succ_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p_succ[i] = tau[i] * prefix[i] * suffix[i + 1];
    p_succ_total += p_succ[i];
  }
  const double p_coll_total = 1.0 - p_idle - p_succ_total;

  // Average slot length (shared clock).
  const double t_slot = p_idle * t.sigma_us + p_succ_total * t.ts_us +
                        p_coll_total * t.tc_us;

  const EnergyBreakdown e_succ =
      successful_exchange_energy(params, mode, power);
  const EnergyBreakdown e_coll = collided_attempt_energy(params, mode, power);

  std::vector<double> draw(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double p_own_coll = tau[i] * p[i];  // transmitted and collided
    // Busy time caused by others, overheard at rx power; own busy time is
    // covered by the event energies.
    const double own_busy_us = p_succ[i] * t.ts_us + p_own_coll * t.tc_us;
    const double others_busy_us =
        p_succ_total * t.ts_us + p_coll_total * t.tc_us - own_busy_us;
    const double energy_per_slot_mj =
        p_succ[i] * e_succ.total_mj() + p_own_coll * e_coll.total_mj() +
        power.rx_mw * others_busy_us * kMwUsToMj +
        power.idle_mw * p_idle * t.sigma_us * kMwUsToMj;
    // mJ per µs = W; report mW.
    draw[i] = energy_per_slot_mj / t_slot * 1e6;
  }
  return draw;
}

double equivalent_transmission_cost(const Parameters& params, AccessMode mode,
                                    const PowerProfile& power,
                                    double p_collision, double gain_per_mj) {
  if (p_collision < 0.0 || p_collision > 1.0) {
    throw std::invalid_argument(
        "equivalent_transmission_cost: p_collision outside [0,1]");
  }
  if (gain_per_mj < 0.0) {
    throw std::invalid_argument(
        "equivalent_transmission_cost: negative energy price");
  }
  const double e_succ = successful_exchange_energy(params, mode, power)
                            .total_mj();
  const double e_coll = collided_attempt_energy(params, mode, power)
                            .total_mj();
  return gain_per_mj *
         ((1.0 - p_collision) * e_succ + p_collision * e_coll);
}

}  // namespace smac::phy
