// Evolutionary (replicator) dynamics over strategy populations.
//
// The tournament answers "can one mutant invade?"; replicator dynamics
// answer the population question: starting from a mixed population of two
// strategies, which share grows? Each generation, every individual plays
// one n-player repeated MAC game with opponents drawn from the current
// population; its fitness is the expected discounted utility over the
// binomially distributed composition of its game. Shares then update by
// the discrete replicator rule
//
//   x' = x·f_A / (x·f_A + (1−x)·f_B)
//
// (fitnesses are shifted to be positive when payoffs can be negative).
// Because fitness only depends on the game composition, the expectation
// is exact: n mixes per generation, each played once and cached.
#pragma once

#include <vector>

#include "game/tournament.hpp"

namespace smac::game {

struct ReplicatorStep {
  double share_a = 0.0;      ///< population share of strategy A
  double fitness_a = 0.0;    ///< expected payoff of an A-individual
  double fitness_b = 0.0;
};

struct ReplicatorResult {
  std::vector<ReplicatorStep> trajectory;  ///< per generation, incl. start
  double final_share_a = 0.0;
  bool converged = false;  ///< share moved less than tolerance at the end
};

class ReplicatorDynamics {
 public:
  /// `tournament` supplies the per-mix payoffs (and must outlive this
  /// object). Game size n and horizon come from the tournament.
  explicit ReplicatorDynamics(const Tournament& tournament);

  /// Expected payoff of one A-individual and one B-individual when the
  /// population share of A is `share_a`: averages the cached mix payoffs
  /// over the Binomial(n−1, share_a) composition of the other seats.
  std::pair<double, double> expected_fitness(const Contender& a,
                                             const Contender& b,
                                             double share_a) const;

  /// Iterates the replicator map from `initial_share_a` for up to
  /// `generations`, stopping early when the share moves less than
  /// `tolerance`. Shares are clamped to [floor, 1−floor] so extinction
  /// is asymptotic, not an artifact of finite arithmetic.
  ReplicatorResult run(const Contender& a, const Contender& b,
                       double initial_share_a, int generations = 60,
                       double tolerance = 1e-6,
                       double floor = 1e-6) const;

 private:
  const Tournament& tournament_;
};

}  // namespace smac::game
