// Asymmetric players: relaxing the paper's g_i = g, e_i = e assumption.
//
// The paper simplifies "to assume that gi and ei are the same for all i"
// (§IV). Real populations are not uniform — a plugged-in laptop prices a
// transmission differently from a coin-cell sensor. This module keeps the
// paper's utility u_i = τ_i((1−p_i)·g_i − e_i)/T_slot with per-player
// (g_i, e_i) organized into classes, and exposes the objects the
// asymmetric analysis needs:
//
//  * per-player utilities for arbitrary window profiles;
//  * each class's preferred *common* window (TFT still forces a common
//    window, but the classes now disagree about which one — the
//    single-hop analogue of the multi-hop Theorem 3 tension);
//  * the welfare-maximizing common window and the per-class losses at the
//    TFT outcome W_m = min over class preferences;
//  * myopic best-response dynamics (which still collapse, as in the
//    symmetric game).
#pragma once

#include <cstddef>
#include <vector>

#include "phy/parameters.hpp"

namespace smac::game {

/// A group of players sharing utility coefficients.
struct PlayerClass {
  double gain = 1.0;   ///< g_i
  double cost = 0.01;  ///< e_i
  int count = 1;       ///< players in the class
};

class AsymmetricGame {
 public:
  /// Base `params` supply PHY timing and the strategy space; the per-class
  /// (gain, cost) pairs override params.gain/params.cost per player.
  AsymmetricGame(phy::Parameters params, phy::AccessMode mode,
                 std::vector<PlayerClass> classes);

  std::size_t player_count() const noexcept { return class_of_.size(); }
  std::size_t class_count() const noexcept { return classes_.size(); }
  const PlayerClass& player_class(std::size_t player) const;
  /// Index of the class player `player` belongs to.
  std::size_t class_index(std::size_t player) const;

  /// Per-player utility rates (gain units per µs) for a window profile.
  std::vector<double> utility_rates(const std::vector<int>& w) const;

  /// Utility of one member of class `c` when every player uses window w.
  double common_window_utility(std::size_t c, int w) const;

  /// The common window class `c` would pick if it chose for everyone:
  /// argmax_w of common_window_utility(c, w).
  int preferred_common_window(std::size_t c) const;

  /// Common window maximizing Σ_i u_i.
  int welfare_maximizing_common_window() const;

  /// TFT outcome: the minimum over class-preferred windows (each player
  /// seeds its preference; TFT drags everyone to the minimum).
  int tft_outcome_window() const;

  /// Myopic best response of one player against a fixed profile.
  int best_response(const std::vector<int>& w, std::size_t player) const;

  /// Round-robin iterated best response from `start` until no player
  /// moves (a pure NE of the *stage* game) or max_rounds elapses.
  struct BestResponseResult {
    std::vector<int> profile;
    int rounds = 0;
    bool converged = false;
  };
  BestResponseResult iterated_best_response(std::vector<int> start,
                                            int max_rounds = 100) const;

 private:
  /// utility_rates with an optional warm-start slot: when `warm` is
  /// non-null, its contents seed the solver (SolverOptions::initial_tau)
  /// and the solved τ is written back — best-response scans step the
  /// deviant's window by small amounts, so consecutive solves start one
  /// damped iteration from each other. Serial callers only; warm-started
  /// results must not feed shared caches.
  std::vector<double> utility_rates_warm(const std::vector<int>& w,
                                         std::vector<double>* warm) const;

  phy::Parameters params_;
  phy::AccessMode mode_;
  std::vector<PlayerClass> classes_;
  std::vector<std::size_t> class_of_;  ///< player → class index
};

}  // namespace smac::game
