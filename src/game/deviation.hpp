// Deviation analyses: Lemma 4, short-sighted players (§V.D) and malicious
// players (§V.E).
#pragma once

#include <optional>
#include <vector>

#include "game/stage_game.hpp"

namespace smac::game {

/// Stage payoffs when one player deviates from a homogeneous profile:
/// everyone plays w_base except the deviator on w_dev (Lemma 4 setting).
struct DeviationStagePayoffs {
  double deviator = 0.0;    ///< U_i^s under the deviation profile
  double conformer = 0.0;   ///< U_j^s of any player sticking to w_base
  double symmetric = 0.0;   ///< U^s when *everyone* plays w_base
};

/// Computes the Lemma 4 triple for an n-player game.
DeviationStagePayoffs deviation_stage_payoffs(const StageGame& game, int n,
                                              int w_base, int w_dev);

/// §V.D short-sighted deviation outcome. The deviator s plays w_s for the
/// first `reaction_stages` stages while everyone else is still on w_coop
/// (TFT reaction lag m >= 1); afterwards all players sit on w_s forever.
/// Payoffs are discounted with the deviator's own δ_s:
///
///   U_s = [(1 − δ_s^m)·U_s^s(dev) + δ_s^m·U_s^s(all w_s)] / (1 − δ_s)
///   U_s0 = U^s(all w_coop) / (1 − δ_s)
struct ShortSightedOutcome {
  double u_deviate = 0.0;  ///< U_s when deviating to w_s
  double u_conform = 0.0;  ///< U_s0 when staying at w_coop
  double gain = 0.0;       ///< u_deviate − u_conform
  bool profitable = false;
};

ShortSightedOutcome shortsighted_outcome(const StageGame& game, int n,
                                         int w_coop, int w_s, double delta_s,
                                         int reaction_stages);

/// Best deviation window for a short-sighted player: maximizes u_deviate
/// over w_s ∈ [1, w_coop].
struct BestDeviation {
  int w_s = 0;
  ShortSightedOutcome outcome;
};

BestDeviation best_shortsighted_deviation(const StageGame& game, int n,
                                          int w_coop, double delta_s,
                                          int reaction_stages);

/// Discount factor below which deviating from w_coop to w_s is profitable.
/// Closed form: the §V.D gain is positive iff δ_s^m < (U_dev − U_sym) /
/// (U_dev − U_all_ws), so δ* = ratio^{1/m} (clamped to [0, 1]). Returns 0
/// when the deviation never pays (U_dev <= U_sym) and 1 when it always
/// pays (U_all_ws >= U_sym, i.e. w_s is itself a better symmetric point —
/// only happens when w_coop ≠ W_c*).
///
/// Note: maximizing over *all* w_s drives δ* → 1 through marginal
/// deviations (w_s = w_coop − 1 costs almost nothing after retaliation
/// because the utility peak is flat — those neighbors are themselves NE
/// per Theorem 2), so the threshold is only meaningful per deviation
/// window.
double critical_discount(const StageGame& game, int n, int w_coop, int w_s,
                         int reaction_stages);

/// §V.E malicious impact: social welfare after TFT drags every player down
/// to the attacker's window w_mal, as a fraction of the welfare at w_coop.
/// < 0 means the attacker paralyzed the network (negative payoffs).
double malicious_welfare_ratio(const StageGame& game, int n, int w_coop,
                               int w_mal);

/// Largest attack window that already drives the stage utility negative
/// (network paralysis, §V.E); nullopt when even w = 1 keeps utility
/// positive.
std::optional<int> paralysis_threshold(const StageGame& game, int n);

}  // namespace smac::game
