#include "game/deviation.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

namespace smac::game {

DeviationStagePayoffs deviation_stage_payoffs(const StageGame& game, int n,
                                              int w_base, int w_dev) {
  if (n < 2) throw std::invalid_argument("deviation_stage_payoffs: n < 2");
  std::vector<int> profile(static_cast<std::size_t>(n), w_base);
  profile[0] = w_dev;
  const std::vector<double> u = game.stage_utilities(profile);

  DeviationStagePayoffs out;
  out.deviator = u[0];
  out.conformer = u[1];
  out.symmetric = game.homogeneous_stage_utility(w_base, n);
  return out;
}

ShortSightedOutcome shortsighted_outcome(const StageGame& game, int n,
                                         int w_coop, int w_s, double delta_s,
                                         int reaction_stages) {
  if (!(delta_s >= 0.0) || !(delta_s < 1.0)) {
    throw std::invalid_argument("shortsighted_outcome: delta_s outside [0,1)");
  }
  if (reaction_stages < 1) {
    throw std::invalid_argument("shortsighted_outcome: reaction_stages < 1");
  }
  const DeviationStagePayoffs dev =
      deviation_stage_payoffs(game, n, w_coop, w_s);
  const double u_all_ws = game.homogeneous_stage_utility(w_s, n);
  const double dm = std::pow(delta_s, reaction_stages);

  ShortSightedOutcome out;
  out.u_deviate = ((1.0 - dm) * dev.deviator + dm * u_all_ws) / (1.0 - delta_s);
  out.u_conform = dev.symmetric / (1.0 - delta_s);
  out.gain = out.u_deviate - out.u_conform;
  out.profitable = out.gain > 0.0;
  return out;
}

BestDeviation best_shortsighted_deviation(const StageGame& game, int n,
                                          int w_coop, double delta_s,
                                          int reaction_stages) {
  if (!(delta_s >= 0.0) || !(delta_s < 1.0)) {
    throw std::invalid_argument("shortsighted_outcome: delta_s outside [0,1)");
  }
  if (reaction_stages < 1) {
    throw std::invalid_argument("shortsighted_outcome: reaction_stages < 1");
  }
  if (n < 2) throw std::invalid_argument("deviation_stage_payoffs: n < 2");

  // The objective is not guaranteed unimodal across the whole range for
  // every δ_s, and w_coop is small enough that an exhaustive scan is
  // cheap. Every candidate's one-deviant profile is known upfront, so the
  // scan submits them as one solver batch (w_coop itself first — the
  // conforming baseline) instead of solving inline per candidate.
  std::vector<int> candidates;
  candidates.reserve(static_cast<std::size_t>(w_coop));
  candidates.push_back(w_coop);
  for (int w = 1; w < w_coop; ++w) candidates.push_back(w);

  std::vector<std::vector<int>> profiles;
  profiles.reserve(candidates.size());
  for (const int w : candidates) {
    std::vector<int> profile(static_cast<std::size_t>(n), w_coop);
    profile[0] = w;
    profiles.push_back(std::move(profile));
  }
  const std::vector<StageGame::StagePayoffs> payoffs =
      game.try_stage_utilities_batch(profiles);

  const double symmetric = game.homogeneous_stage_utility(w_coop, n);
  const double dm = std::pow(delta_s, reaction_stages);
  BestDeviation best;
  for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
    const int w = candidates[idx];
    // Unusable solves fall back to the sequential path, which (like
    // stage_utilities) evaluates utilities from the sanitized state
    // regardless of status — a cache hit after the batch drain.
    const double deviator =
        analytical::usable(payoffs[idx].diagnostics.status)
            ? payoffs[idx].utilities[0]
            : game.stage_utilities(profiles[idx])[0];
    const double u_all_ws = game.homogeneous_stage_utility(w, n);

    ShortSightedOutcome o;
    o.u_deviate = ((1.0 - dm) * deviator + dm * u_all_ws) / (1.0 - delta_s);
    o.u_conform = symmetric / (1.0 - delta_s);
    o.gain = o.u_deviate - o.u_conform;
    o.profitable = o.gain > 0.0;
    if (idx == 0 || o.u_deviate > best.outcome.u_deviate) {
      best.outcome = o;
      best.w_s = w;
    }
  }
  return best;
}

double critical_discount(const StageGame& game, int n, int w_coop, int w_s,
                         int reaction_stages) {
  if (reaction_stages < 1) {
    throw std::invalid_argument("critical_discount: reaction_stages < 1");
  }
  const DeviationStagePayoffs dev =
      deviation_stage_payoffs(game, n, w_coop, w_s);
  const double u_all_ws = game.homogeneous_stage_utility(w_s, n);
  if (dev.deviator <= dev.symmetric) return 0.0;   // never pays
  if (u_all_ws >= dev.symmetric) return 1.0;       // always pays
  const double ratio =
      (dev.deviator - dev.symmetric) / (dev.deviator - u_all_ws);
  return std::pow(ratio, 1.0 / static_cast<double>(reaction_stages));
}

double malicious_welfare_ratio(const StageGame& game, int n, int w_coop,
                               int w_mal) {
  const double w_ref = game.social_welfare(w_coop, n);
  if (w_ref == 0.0) {
    throw std::runtime_error("malicious_welfare_ratio: zero reference welfare");
  }
  return game.social_welfare(w_mal, n) / w_ref;
}

std::optional<int> paralysis_threshold(const StageGame& game, int n) {
  // Utility sign is monotone in w (p decreases with w): find the largest
  // w with u(w) <= 0 by binary search.
  const int w_max = game.params().w_max;
  auto non_positive = [&](int w) {
    return game.homogeneous_utility_rate(w, n) <= 0.0;
  };
  if (!non_positive(1)) return std::nullopt;
  if (non_positive(w_max)) return w_max;
  int lo = 1;      // u(lo) <= 0
  int hi = w_max;  // u(hi) > 0
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    (non_positive(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace smac::game
