// The rate-control game (paper §IX future work, contrast with Tan &
// Guttag's "802.11 leads to inefficient equilibria" [7]).
//
// The paper closes by claiming its framework "can be extended to model
// other selfish behaviors such as rate control by redefining the proper
// utility function". This module performs that extension: players fix
// their contention window at the MAC-game NE and instead choose their
// *payload size* L_i. The utility keeps the paper's shape — expected gain
// per unit time —
//
//   u_i = [ q_i · (1 − BER)^{L_i + H_bits} · L_i·g_bit  −  τ·e ] / T_slot
//
// where q_i = τ(1−τ)^{n−1} is the per-slot success probability (identical
// across players since the window is common), g_bit normalizes the MAC
// game's per-packet gain to bits, and the average slot length now depends
// on everyone's frame length: successes occupy T_s(L_i) of the successful
// sender, collisions occupy the *maximum* frame length among colliders.
//
// Modeling choices (documented deviations):
//  * Collisions are approximated as pairwise — with the small τ of any
//    sane window, P(≥3 transmitters | collision) is second-order. The
//    expected collision cost averages max(L_i, L_j) over all pairs.
//  * Bit errors corrupt a frame independently per bit (rate BER); a
//    corrupted frame spends its full channel time and transmission cost
//    but earns nothing.
//
// With BER = 0 the selfish best response races to the maximum frame size
// (longer frames win a larger share of the shared clock — the Tan-Guttag
// inefficiency); with BER > 0 an interior optimum appears, and the selfish
// NE sits *above* the social optimum because a long frame's collision
// cost is externalized. A TFT convention analogous to the CW game (match
// the most aggressive = longest frame) stabilizes the efficient common
// size.
#pragma once

#include <cstddef>
#include <vector>

#include "phy/parameters.hpp"

namespace smac::game {

struct RateGameConfig {
  phy::Parameters params = phy::Parameters::paper();
  phy::AccessMode mode = phy::AccessMode::kBasic;
  int n = 10;             ///< players
  int w_common = 0;       ///< common CW; 0 = use the MAC game's W_c*
  double bit_error_rate = 0.0;
  double min_payload_bits = 512.0;
  double max_payload_bits = 65536.0;
};

class RateGame {
 public:
  explicit RateGame(RateGameConfig config);

  const RateGameConfig& config() const noexcept { return config_; }
  int common_window() const noexcept { return w_common_; }
  double tau() const noexcept { return tau_; }

  /// Per-node utility rates for a payload-size profile (bits per frame).
  std::vector<double> utility_rates(
      const std::vector<double>& payload_bits) const;

  /// Utility of one node when everyone sends L-bit payloads.
  double homogeneous_utility_rate(double payload_bits) const;

  /// Socially efficient common payload: argmax of the homogeneous utility
  /// over [min_payload_bits, max_payload_bits].
  double efficient_payload() const;

  /// Selfish best response: own payload maximizing own utility against a
  /// fixed profile of the others.
  double best_response(const std::vector<double>& payload_bits,
                       std::size_t self) const;

  /// Symmetric selfish equilibrium: iterates the best response from the
  /// efficient payload until the move is below `tolerance` bits. Captures
  /// the Tan-Guttag gap: equilibrium_payload() >= efficient_payload().
  double equilibrium_payload(double tolerance = 1.0,
                             int max_rounds = 200) const;

 private:
  double slot_average_us(const std::vector<double>& payload_bits) const;
  double frame_success_us(double payload_bits) const;
  double frame_collision_us(double payload_bits) const;

  RateGameConfig config_;
  int w_common_;
  double tau_;       ///< per-node transmission probability at w_common_
  double q_slot_;    ///< τ(1−τ)^{n−1}: per-node per-slot success prob
  double p_idle_;    ///< (1−τ)^n
  double gain_per_bit_;
};

}  // namespace smac::game
