#include "game/equilibrium.hpp"

#include <stdexcept>

#include "analytical/utility.hpp"
#include "util/optimize.hpp"

namespace smac::game {

EquilibriumFinder::EquilibriumFinder(const StageGame& game, int n)
    : game_(game), n_(n) {
  if (n < 1) throw std::invalid_argument("EquilibriumFinder: n < 1");
}

int EquilibriumFinder::efficient_cw() const {
  if (cached_efficient_) return *cached_efficient_;
  const auto r = util::ternary_int_max(
      [&](std::int64_t w) {
        return game_.homogeneous_utility_rate(static_cast<int>(w), n_);
      },
      1, game_.params().w_max);
  cached_efficient_ = static_cast<int>(r.x);
  return *cached_efficient_;
}

int EquilibriumFinder::efficient_cw_from(int lo) const {
  if (cached_efficient_) return *cached_efficient_;
  const int w_max = game_.params().w_max;
  if (lo <= 1 || lo > w_max) return efficient_cw();
  auto u = [&](std::int64_t w) {
    return game_.homogeneous_utility_rate(static_cast<int>(w), n_);
  };
  // The bracket premise: the peak is not left of lo. Unimodality makes
  // this checkable at the edge alone.
  if (u(lo - 1) > u(lo)) return efficient_cw();
  const auto r = util::ternary_int_max(u, lo, w_max);
  cached_efficient_ = static_cast<int>(r.x);
  return *cached_efficient_;
}

std::optional<int> EquilibriumFinder::minimum_viable_cw() const {
  // u(w) > 0 ⇔ (1−p(w))·g > e; p decreases in w, so the sign of u is
  // monotone in w: binary-search the first positive window.
  const int w_max = game_.params().w_max;
  auto positive = [&](int w) {
    return game_.homogeneous_utility_rate(w, n_) > 0.0;
  };
  if (!positive(w_max)) return std::nullopt;
  if (positive(1)) return 1;
  int lo = 1;       // u(lo) <= 0
  int hi = w_max;   // u(hi) > 0
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    (positive(mid) ? hi : lo) = mid;
  }
  return hi;
}

NashSet EquilibriumFinder::nash_set() const {
  const auto w0 = minimum_viable_cw();
  if (!w0) {
    throw std::runtime_error(
        "EquilibriumFinder: no viable window (utility <= 0 everywhere)");
  }
  NashSet set;
  set.w_min_viable = *w0;
  set.w_efficient = efficient_cw();
  set.u_efficient = game_.homogeneous_stage_utility(set.w_efficient, n_);
  if (set.w_efficient < set.w_min_viable) {
    // Degenerate (cannot happen with u(W_c*) maximal and positive): guard
    // against parameter sets where the maximum itself is non-positive.
    throw std::runtime_error("EquilibriumFinder: efficient window not viable");
  }
  return set;
}

bool EquilibriumFinder::is_nash(int w) const { return nash_set().contains(w); }

std::optional<double> EquilibriumFinder::tau_star_continuous() const {
  return analytical::optimal_tau_continuous(n_, game_.params(), game_.mode());
}

std::optional<double> EquilibriumFinder::w_star_continuous() const {
  return analytical::optimal_window_continuous(n_, game_.params(),
                                               game_.mode());
}

RefinementReport EquilibriumFinder::refine() const {
  RefinementReport report;
  report.nash_set = nash_set();
  report.all_fair = true;  // symmetric profiles ⇒ identical payoffs
  report.social_welfare_maximizer = report.nash_set.w_efficient;
  report.pareto_optimal = report.nash_set.w_efficient;
  const double u_star = game_.homogeneous_utility_rate(
      report.nash_set.w_efficient, n_);
  const double u_worst = game_.homogeneous_utility_rate(
      report.nash_set.w_min_viable, n_);
  report.worst_ne_efficiency = u_star > 0.0 ? u_worst / u_star : 0.0;
  return report;
}

}  // namespace smac::game
