// Model-driven engine for the repeated MAC game G (paper §IV).
//
// Plays strategies against each other stage by stage; stage payoffs come
// from the analytical stage game (the sim-driven counterpart lives in
// sim::AdaptiveRuntime). Records the full trajectory, discounted
// utilities, and convergence facts.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "fault/degradation.hpp"
#include "fault/fault_injector.hpp"
#include "game/observation_filter.hpp"
#include "game/reaction.hpp"
#include "game/stage_game.hpp"
#include "game/strategies.hpp"

namespace smac::game {

/// Outcome of a finite horizon of the repeated game.
struct RepeatedGameResult {
  History history;                         ///< one record per stage
  std::vector<double> discounted_utility;  ///< Σ_k δ^k·U_i^s(W^k)
  std::vector<double> total_utility;       ///< undiscounted sum
  /// Common window if the final stage is homogeneous, else nullopt.
  std::optional<int> converged_cw;
  /// First stage index from which the profile never changes again;
  /// equals the horizon when the profile kept moving.
  int stable_from = 0;
  /// What did not go cleanly (empty/clean for fault-free runs).
  fault::DegradationReport degradation;
  /// What enforcement did (clean/default when no enforcement installed).
  EnforcementReport enforcement;
};

/// Plays n strategies for a fixed number of stages.
class RepeatedGameEngine {
 public:
  /// `game` must outlive the engine. One strategy per player.
  RepeatedGameEngine(const StageGame& game,
                     std::vector<std::unique_ptr<Strategy>> strategies);

  std::size_t player_count() const noexcept { return strategies_.size(); }

  /// Runs `stages` >= 1 stages from scratch and returns the trajectory.
  RepeatedGameResult play(int stages);

  /// Fault-aware horizon. `injector` (node_count == player_count, stage 0
  /// not yet begun) drives crashes/joins, bursty PER, and observation
  /// faults; pass nullptr for the fault-free behavior of play(stages).
  ///
  /// Semantics under faults:
  ///  - A crashed player keeps its configured window but does not
  ///    transmit: its stage utility is 0 and its strategy is not asked to
  ///    decide until it rejoins. StageRecord::online carries the mask.
  ///  - Stage payoffs solve over the *online* sub-profile with the
  ///    injector's effective PER. A kDegraded solve is used as-is but
  ///    recorded; a kFailed solve reuses each online player's payoff from
  ///    the last stage that solved (0 before any did) — the engine never
  ///    throws on solver trouble.
  ///  - When observation faults are enabled, each player decides on its
  ///    own observed history: opponents' windows pass through
  ///    FaultInjector::observe_cw with the player's previous belief as the
  ///    loss fallback.
  RepeatedGameResult play(int stages, fault::FaultInjector* injector);

  /// Installs an observation filter between the (possibly faulted)
  /// observed histories and the strategies: every player decides on a
  /// view whose opponents' windows are smoothed by `config` (own window,
  /// utilities, and online mask stay exact). Enabling a filter forces
  /// per-player views even without observation faults, so filtered runs
  /// are well defined fault-free too. Pass a default (kNone) config to
  /// remove the filter. Throws std::invalid_argument on a bad config.
  void set_observation_filter(ObservationFilterConfig config);

  const ObservationFilter& observation_filter() const noexcept {
    return filter_;
  }

  /// Installs the enforcement closed loop (game/reaction.hpp): a monitor
  /// observes every stage (through the injector's observation faults when
  /// one is active, drawn after the player views in a fixed order), feeds
  /// a sequential detector, and on a flag opens a calibrated punishment
  /// episode. During an episode:
  ///  - every online player whose strategy follows_enforcement() plays
  ///    the policy's commanded window instead of its own decision;
  ///  - player views of punished stages are sanitized to the agreement
  ///    window (the sanction owns the response — strategies must not
  ///    TFT-ratchet on the punishment itself); utilities and the online
  ///    mask stay real;
  ///  - detection is suspended, and the episode's end rehabilitates the
  ///    offender (evidence cleared).
  /// Enforcement forces per-player views (like a filter). Pass nullopt to
  /// remove. Throws std::invalid_argument on an invalid config.
  void set_enforcement(std::optional<ReactionConfig> config);

  const std::optional<ReactionConfig>& enforcement() const noexcept {
    return enforcement_;
  }

 private:
  const StageGame& game_;
  std::vector<std::unique_ptr<Strategy>> strategies_;
  ObservationFilter filter_;  ///< disabled by default
  std::optional<ReactionConfig> enforcement_;
};

/// Convenience: n TFT players all starting from `initial_w`.
std::vector<std::unique_ptr<Strategy>> make_tft_population(std::size_t n,
                                                           int initial_w);

/// n GTFT players with the given tolerance parameters.
std::vector<std::unique_ptr<Strategy>> make_gtft_population(std::size_t n,
                                                            int initial_w,
                                                            double beta,
                                                            int r0);

/// n Contrite-TFT players drifting back to `w_coop` after `clean_stages`
/// clean stages.
std::vector<std::unique_ptr<Strategy>> make_contrite_population(
    std::size_t n, int w_coop, int clean_stages);

/// n Forgiving-GTFT players with the given trigger/relaxation parameters.
std::vector<std::unique_ptr<Strategy>> make_forgiving_gtft_population(
    std::size_t n, int initial_w, double beta, int r0, int trigger_stages,
    int clean_stages);

}  // namespace smac::game
