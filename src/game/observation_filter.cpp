#include "game/observation_filter.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace smac::game {

const char* to_string(FilterKind kind) noexcept {
  switch (kind) {
    case FilterKind::kNone:
      return "none";
    case FilterKind::kMedian:
      return "median";
    case FilterKind::kTrimmedMean:
      return "trim";
  }
  return "?";
}

std::string ObservationFilterConfig::name() const {
  if (kind == FilterKind::kNone) return "none";
  std::ostringstream os;
  os << to_string(kind) << "(" << window;
  if (kind == FilterKind::kTrimmedMean) os << "," << trim_fraction;
  os << ")";
  return os.str();
}

void ObservationFilterConfig::validate() const {
  if (window < 1) {
    throw std::invalid_argument("ObservationFilterConfig: window < 1");
  }
  if (kind == FilterKind::kTrimmedMean &&
      (trim_fraction < 0.0 || trim_fraction >= 0.5)) {
    throw std::invalid_argument(
        "ObservationFilterConfig: trim_fraction outside [0, 0.5)");
  }
}

ObservationFilter::ObservationFilter(ObservationFilterConfig config)
    : config_(config) {
  config_.validate();
}

int ObservationFilter::smooth(const std::vector<int>& series) const {
  if (series.empty()) {
    throw std::invalid_argument("ObservationFilter::smooth: empty series");
  }
  const std::size_t r =
      std::min(series.size(), static_cast<std::size_t>(config_.window));
  std::vector<int> values(series.end() - static_cast<std::ptrdiff_t>(r),
                          series.end());
  if (!config_.enabled() || values.size() == 1) {
    return std::max(1, values.back());
  }
  std::sort(values.begin(), values.end());
  double estimate = 0.0;
  if (config_.kind == FilterKind::kMedian) {
    const std::size_t mid = values.size() / 2;
    estimate = values.size() % 2 == 1
                   ? values[mid]
                   : (static_cast<double>(values[mid - 1]) + values[mid]) / 2.0;
  } else {
    // Trim the same count from each tail; at least one value survives.
    std::size_t drop = static_cast<std::size_t>(
        std::floor(config_.trim_fraction * static_cast<double>(values.size())));
    drop = std::min(drop, (values.size() - 1) / 2);
    double sum = 0.0;
    for (std::size_t i = drop; i < values.size() - drop; ++i) sum += values[i];
    estimate = sum / static_cast<double>(values.size() - 2 * drop);
  }
  return std::max(1, static_cast<int>(std::llround(estimate)));
}

StageRecord ObservationFilter::filter_latest(const History& raw,
                                             std::size_t self) const {
  if (raw.empty()) {
    throw std::invalid_argument("ObservationFilter: empty history");
  }
  StageRecord view = raw.back();
  if (!config_.enabled()) return view;
  const std::size_t n = view.cw.size();
  const std::size_t first =
      raw.size() > static_cast<std::size_t>(config_.window)
          ? raw.size() - static_cast<std::size_t>(config_.window)
          : 0;
  std::vector<int> series;
  series.reserve(raw.size() - first);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == self) continue;  // own window is known exactly
    series.clear();
    for (std::size_t s = first; s < raw.size(); ++s) {
      series.push_back(raw[s].cw.at(j));
    }
    view.cw[j] = smooth(series);
  }
  return view;
}

History ObservationFilter::filtered(const History& raw,
                                    std::size_t self) const {
  History out;
  out.reserve(raw.size());
  History prefix;
  prefix.reserve(raw.size());
  for (const StageRecord& record : raw) {
    prefix.push_back(record);
    out.push_back(filter_latest(prefix, self));
  }
  return out;
}

}  // namespace smac::game
