// Strategy tournaments and invasion analysis (the paper's §IV claim that
// TFT "is shown to be the best strategy in non-cooperative environments",
// tested rather than asserted).
//
// The MAC game is an n-player game, so Axelrod's pairwise round-robin
// generalizes to *mixes*: k players of strategy A against n − k of
// strategy B, scored by average discounted utility per group. From mix
// outcomes follow the two ecological questions:
//
//   * resistance — does a lone B-mutant in an A-population earn more
//     than a member of the *pure* A-population would? Punishment in this
//     game is collective (TFT drags every window down), so the mutant and
//     the residents end up equal *within* the invaded game and the mutant
//     keeps its early head start forever; the economically meaningful
//     comparison is against the counterfactual of never deviating — the
//     same notion as §V.D's U_s vs U_s0 and Theorem 2's NE condition.
//
// Strategies are supplied as factories because instances hold per-player
// state (GTFT's averaging window).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "game/repeated_game.hpp"
#include "game/stage_game.hpp"
#include "parallel/replication.hpp"
#include "util/stats.hpp"

namespace smac::game {

/// Named strategy factory for tournament play.
struct Contender {
  std::string name;
  std::function<std::unique_ptr<Strategy>()> make;
};

/// Streaming aggregate of replicated faulted plays of one mix: group
/// payoffs summarized across fault-trajectory replications.
struct MixReplicationOutcome {
  /// Across-replication aggregates, columns "payoff A" and "payoff B".
  std::vector<util::MetricSummary> metrics;
  /// Replications executed, achieved CI half-width, and stop reason.
  parallel::StoppingReport stopping;
};

/// Average discounted payoff per member of each group in one mix.
struct MixOutcome {
  int count_a = 0;
  int count_b = 0;
  double payoff_a = 0.0;  ///< mean discounted utility of A-players
  double payoff_b = 0.0;  ///< mean discounted utility of B-players
  /// Faults and solver trouble of this mix's repeated game (clean when no
  /// fault plan is set).
  fault::DegradationReport degradation;
  /// What enforcement did in this mix (default when none installed).
  EnforcementReport enforcement;
};

class Tournament {
 public:
  /// `game` must outlive the tournament. `stages` is the repeated-game
  /// horizon used for every match. `jobs` fans the independent mixes of
  /// invasion_matrix / round_robin_scores across a thread pool (1 =
  /// serial, 0 = parallel::ThreadPool::default_jobs()); every mix is a
  /// deterministic self-contained repeated game and results are reduced
  /// in a fixed order, so scores are bit-identical for any jobs value.
  Tournament(const StageGame& game, int n_players, int stages,
             std::size_t jobs = 1);

  /// Runs every subsequent mix under this fault plan. Each mix gets its
  /// own FaultInjector seeded via parallel::stream_seed(seed, count_a), so
  /// outcomes stay bit-identical for any jobs value and comparisons across
  /// mixes of the same size face the same fault trajectory. Pass an empty
  /// plan to go back to fault-free play.
  void set_fault_plan(fault::FaultPlan plan, std::uint64_t seed);

  /// Runs every subsequent mix with the enforcement closed loop installed
  /// (RepeatedGameEngine::set_enforcement): the monitor flags deviants,
  /// compliant players serve calibrated punishment episodes, offenders
  /// are rehabilitated. Invasion and round-robin analyses then measure
  /// deviant payoffs *under enforcement*. Pass nullopt to go back to
  /// unenforced play. Throws std::invalid_argument on a bad config.
  void set_enforcement(std::optional<ReactionConfig> config);

  const std::optional<ReactionConfig>& enforcement() const noexcept {
    return enforcement_;
  }

  /// Plays one mix: the first `count_a` players use A, the rest B.
  MixOutcome play_mix(const Contender& a, const Contender& b,
                      int count_a) const;

  /// Replicates one mix under the active fault plan until `rule`'s CI
  /// half-width target is met or rule.max_reps (must be > 0) is
  /// exhausted, fanned over this tournament's jobs. Replication r plays
  /// with injector seed stream_seed(stream_seed(fault_seed, count_a), r),
  /// so the family is disjoint from the single-shot play_mix seed and
  /// bit-identical for any jobs value. Without a fault plan every
  /// replication is the same deterministic game — the CI collapses to 0
  /// and the run stops at min_reps.
  MixReplicationOutcome play_mix_replicated(
      const Contender& a, const Contender& b, int count_a,
      const parallel::StoppingRule& rule) const;

  /// True when a lone B-mutant among (n−1) A-residents earns no more than
  /// a member of the *pure* A-population (within `tolerance`, relative):
  /// deviating into B does not pay, so the A-population resists B.
  bool resists_invasion(const Contender& resident, const Contender& mutant,
                        double tolerance = 1e-3) const;

  /// Pairwise invasion matrix over a roster: entry (i, j) is true when a
  /// population of roster[i] resists a lone roster[j] mutant. Diagonal is
  /// trivially true.
  std::vector<std::vector<bool>> invasion_matrix(
      const std::vector<Contender>& roster, double tolerance = 1e-3) const;

  /// Round-robin score: for each roster member, the mean of its
  /// per-member payoff across all mixes (1..n−1 of itself) against every
  /// other roster member — Axelrod's total-points view, generalized.
  std::vector<double> round_robin_scores(
      const std::vector<Contender>& roster) const;

 private:
  /// play_mix with an explicit injector seed (ignored when the plan is
  /// empty) — the shared core of single-shot and replicated play.
  MixOutcome play_mix_impl(const Contender& a, const Contender& b, int count_a,
                           std::uint64_t injector_seed) const;

  const StageGame& game_;
  int n_;
  int stages_;
  std::size_t jobs_;
  fault::FaultPlan fault_plan_;  ///< empty() = fault-free play
  std::uint64_t fault_seed_ = 0;
  std::optional<ReactionConfig> enforcement_;  ///< nullopt = unenforced
};

/// The paper's cast, ready to use: TFT, GTFT(β, r0), Constant(w),
/// ShortSighted(w_s) — all starting from / anchored at `w_coop`.
std::vector<Contender> standard_roster(const StageGame& game, int n,
                                       int w_coop);

/// The enforcement-aware cast: the compliant reactive strategies only
/// (tft, gtft, contrite-tft, forgiving-gtft) — the populations whose
/// members actually execute punishment commands, used as residents in
/// enforcement invasion studies. Deviants come from standard_roster (or
/// deviant_roster below).
std::vector<Contender> enforcement_roster(const StageGame& game, int n,
                                          int w_coop);

/// The §V.D/§V.E deviant cast: relentless short-sighted (W_coop/4) and
/// malicious (cooperate, then attack at w=2 from `attack_stage`).
std::vector<Contender> deviant_roster(int w_coop, int attack_stage = 3);

}  // namespace smac::game
