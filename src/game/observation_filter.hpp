// Robust smoothing of observed contention windows — the stage between
// fault::FaultInjector's noisy per-player histories and Strategy::decide.
//
// The paper's §IV strategies assume perfect promiscuous-mode observation;
// PR 2's fault bench showed that a single false-low window read is
// absorbing under min-matching retaliation (TFT and GTFT both ratchet to
// W = 1 and never recover). The estimation literature (Banchs et al.,
// Tinnirello et al.) absorbs that noise *before* the reaction rule: each
// observer smooths every opponent's window series over a short trailing
// horizon, so an isolated outlier never reaches the trigger. Two robust
// location estimators are provided:
//
//   * kMedian — median of the last r observations; immune to up to
//     ⌊(r−1)/2⌋ arbitrary outliers.
//   * kTrimmedMean — mean after dropping a fixed fraction from each tail;
//     smoother response to genuine window changes, still outlier-robust.
//
// Filters are pure functions of the observed history — no RNG, no
// internal state — so filtered runs inherit the library's determinism
// contract (seed-determined, bit-identical at any --jobs) for free.
#pragma once

#include <string>
#include <vector>

#include "game/strategies.hpp"

namespace smac::game {

/// Which robust estimator smooths each opponent's window series.
enum class FilterKind {
  kNone,         ///< pass observations through untouched
  kMedian,       ///< median of the last `window` observations
  kTrimmedMean,  ///< mean after trimming `trim_fraction` from each tail
};

const char* to_string(FilterKind kind) noexcept;

struct ObservationFilterConfig {
  FilterKind kind = FilterKind::kNone;
  /// Trailing observations fed to the estimator (r). Values beyond the
  /// history length are fine — young histories use what exists.
  int window = 5;
  /// Share of sorted observations dropped from EACH tail (kTrimmedMean
  /// only); at least one observation always survives the trim.
  double trim_fraction = 0.25;

  bool enabled() const noexcept {
    return kind != FilterKind::kNone && window > 1;
  }
  /// Display name: "none", "median(5)", "trim(7,0.25)".
  std::string name() const;
  /// Throws std::invalid_argument on window < 1 or trim_fraction
  /// outside [0, 0.5).
  void validate() const;
};

/// Applies one ObservationFilterConfig to per-player observed histories.
class ObservationFilter {
 public:
  ObservationFilter() = default;
  explicit ObservationFilter(ObservationFilterConfig config);

  const ObservationFilterConfig& config() const noexcept { return config_; }
  bool enabled() const noexcept { return config_.enabled(); }

  /// Robust location of one window series (the trailing `window` values
  /// of `series` — older entries are ignored). `series` must be
  /// non-empty; the result is clamped to >= 1.
  int smooth(const std::vector<int>& series) const;

  /// The filtered view of `raw`'s newest stage: every opponent's window
  /// is replaced by smooth() over its last `window` observed values;
  /// `self`'s own window (always observed exactly), the utilities, and
  /// the online mask pass through unchanged. `raw` must be non-empty.
  StageRecord filter_latest(const History& raw, std::size_t self) const;

  /// The whole causal filtered history: stage k of the result equals
  /// filter_latest applied to the first k+1 raw records — exactly what an
  /// engine maintaining the filtered view incrementally produces.
  History filtered(const History& raw, std::size_t self) const;

 private:
  ObservationFilterConfig config_;
};

}  // namespace smac::game
