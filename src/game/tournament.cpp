#include "game/tournament.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

#include "game/equilibrium.hpp"
#include "parallel/replication.hpp"
#include "parallel/thread_pool.hpp"

namespace smac::game {

namespace {

/// Runs fn(k) for k in [0, count): inline when jobs == 1, otherwise on a
/// pool of `jobs` workers. Results must go into per-index slots; callers
/// reduce those in fixed order afterwards, which keeps scores
/// bit-identical across jobs values.
template <class Fn>
void fan_out(std::size_t count, std::size_t jobs, Fn&& fn) {
  if (jobs == 1 || count <= 1) {
    for (std::size_t k = 0; k < count; ++k) fn(k);
    return;
  }
  parallel::ThreadPool pool(jobs);
  pool.for_each_index(count, std::forward<Fn>(fn));
}

/// Opening contention windows of a roster, or empty when any factory is
/// null (the subsequent play_mix raises the error in that case).
std::vector<int> opening_windows(const std::vector<Contender>& roster) {
  if (!std::all_of(roster.begin(), roster.end(), [](const Contender& c) {
        return static_cast<bool>(c.make);
      })) {
    return {};
  }
  std::vector<int> opening(roster.size());
  for (std::size_t i = 0; i < roster.size(); ++i) {
    opening[i] = roster[i].make()->initial_cw();
  }
  return opening;
}

}  // namespace

Tournament::Tournament(const StageGame& game, int n_players, int stages,
                       std::size_t jobs)
    : game_(game), n_(n_players), stages_(stages), jobs_(jobs) {
  if (n_players < 2) throw std::invalid_argument("Tournament: n < 2");
  if (stages < 1) throw std::invalid_argument("Tournament: stages < 1");
  if (jobs_ == 0) jobs_ = parallel::ThreadPool::default_jobs();
}

void Tournament::set_fault_plan(fault::FaultPlan plan, std::uint64_t seed) {
  plan.validate();
  fault_plan_ = std::move(plan);
  fault_seed_ = seed;
}

void Tournament::set_enforcement(std::optional<ReactionConfig> config) {
  if (config) config->validate();
  enforcement_ = std::move(config);
}

MixOutcome Tournament::play_mix(const Contender& a, const Contender& b,
                                int count_a) const {
  // One injector per mix, seeded off the mix size: every play_mix call
  // is self-contained, so fan-out order cannot perturb fault draws.
  return play_mix_impl(
      a, b, count_a,
      parallel::stream_seed(fault_seed_, static_cast<std::uint64_t>(
                                             std::max(count_a, 0))));
}

MixOutcome Tournament::play_mix_impl(const Contender& a, const Contender& b,
                                     int count_a,
                                     std::uint64_t injector_seed) const {
  if (count_a < 0 || count_a > n_) {
    throw std::invalid_argument("Tournament: count_a outside [0, n]");
  }
  if (!a.make || !b.make) {
    throw std::invalid_argument("Tournament: null contender factory");
  }
  std::vector<std::unique_ptr<Strategy>> players;
  players.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    players.push_back(i < count_a ? a.make() : b.make());
  }
  RepeatedGameEngine engine(game_, std::move(players));
  if (enforcement_) engine.set_enforcement(enforcement_);
  RepeatedGameResult result;
  if (fault_plan_.empty()) {
    result = engine.play(stages_);
  } else {
    fault::FaultInjector injector(fault_plan_, static_cast<std::size_t>(n_),
                                  injector_seed);
    result = engine.play(stages_, &injector);
  }

  MixOutcome outcome;
  outcome.count_a = count_a;
  outcome.degradation = result.degradation;
  outcome.enforcement = result.enforcement;
  outcome.count_b = n_ - count_a;
  for (int i = 0; i < n_; ++i) {
    const double u = result.discounted_utility[static_cast<std::size_t>(i)];
    if (i < count_a) {
      outcome.payoff_a += u / std::max(count_a, 1);
    } else {
      outcome.payoff_b += u / std::max(n_ - count_a, 1);
    }
  }
  return outcome;
}

MixReplicationOutcome Tournament::play_mix_replicated(
    const Contender& a, const Contender& b, int count_a,
    const parallel::StoppingRule& rule) const {
  if (rule.max_reps == 0) {
    throw std::invalid_argument("play_mix_replicated: rule.max_reps == 0");
  }
  static const std::vector<std::string> names{"payoff A", "payoff B"};
  // The replication family hangs off the mix's own seed, so replication 0
  // differs from the single-shot play_mix trajectory and families of
  // different mixes stay disjoint.
  const std::uint64_t mix_seed = parallel::stream_seed(
      fault_seed_, static_cast<std::uint64_t>(std::max(count_a, 0)));
  const parallel::ReplicationRunner runner({rule.max_reps, mix_seed, jobs_});
  auto summary = runner.run_sequential(
      names, rule, [&](std::uint64_t seed, std::size_t /*index*/) {
        const MixOutcome o = play_mix_impl(a, b, count_a, seed);
        return std::vector<double>{o.payoff_a, o.payoff_b};
      });
  MixReplicationOutcome outcome;
  outcome.metrics = std::move(summary.metrics);
  outcome.stopping = std::move(summary.stopping);
  return outcome;
}

bool Tournament::resists_invasion(const Contender& resident,
                                  const Contender& mutant,
                                  double tolerance) const {
  // One mutant (group B) among n−1 residents vs the pure-A counterfactual.
  const MixOutcome invaded = play_mix(resident, mutant, n_ - 1);
  const MixOutcome pure = play_mix(resident, mutant, n_);
  return invaded.payoff_b <=
         pure.payoff_a + tolerance * std::abs(pure.payoff_a);
}

std::vector<std::vector<bool>> Tournament::invasion_matrix(
    const std::vector<Contender>& roster, double tolerance) const {
  std::vector<std::vector<bool>> matrix(
      roster.size(), std::vector<bool>(roster.size(), true));
  // Flatten the off-diagonal pairs so each can run as one pool task.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < roster.size(); ++i) {
    for (std::size_t j = 0; j < roster.size(); ++j) {
      if (i != j) pairs.emplace_back(i, j);
    }
  }
  // Every pair's stage-0 profiles (one mutant among residents, and the
  // pure-resident counterfactual) are known upfront: warm the shared
  // solve cache in one batched drain so the fan-out's opening solves are
  // hits instead of duplicated misses across workers.
  if (const std::vector<int> opening = opening_windows(roster);
      !opening.empty()) {
    std::set<std::vector<int>> distinct;
    for (const auto& [i, j] : pairs) {
      std::vector<int> invaded(static_cast<std::size_t>(n_), opening[j]);
      std::fill_n(invaded.begin(), n_ - 1, opening[i]);
      distinct.insert(std::move(invaded));
      distinct.insert(
          std::vector<int>(static_cast<std::size_t>(n_), opening[i]));
    }
    game_.prefetch_profiles({distinct.begin(), distinct.end()});
  }
  // std::vector<bool> is bit-packed, so concurrent writes to matrix[i][j]
  // would race; stage into a byte vector instead.
  std::vector<char> verdicts(pairs.size(), 0);
  fan_out(pairs.size(), jobs_, [&](std::size_t k) {
    const auto [i, j] = pairs[k];
    verdicts[k] = resists_invasion(roster[i], roster[j], tolerance) ? 1 : 0;
  });
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    matrix[pairs[k].first][pairs[k].second] = verdicts[k] != 0;
  }
  return matrix;
}

std::vector<double> Tournament::round_robin_scores(
    const std::vector<Contender>& roster) const {
  // Every (i, j, count_a) mix is independent; fan them out, then reduce
  // per roster member in enumeration order (fixed flop sequence ⇒ scores
  // bit-identical for any jobs value).
  struct Mix {
    std::size_t i, j;
    int count_a;
  };
  std::vector<Mix> mixes;
  for (std::size_t i = 0; i < roster.size(); ++i) {
    for (std::size_t j = 0; j < roster.size(); ++j) {
      if (i == j) continue;
      for (int count_a = 1; count_a < n_; ++count_a) {
        mixes.push_back({i, j, count_a});
      }
    }
  }
  // Same batched warm-up as invasion_matrix: every mix's stage-0 profile
  // is a function of the two contenders' opening windows and count_a.
  if (const std::vector<int> opening = opening_windows(roster);
      !opening.empty()) {
    std::set<std::vector<int>> distinct;
    for (const Mix& mix : mixes) {
      std::vector<int> profile(static_cast<std::size_t>(n_),
                               opening[mix.j]);
      std::fill_n(profile.begin(), mix.count_a, opening[mix.i]);
      distinct.insert(std::move(profile));
    }
    game_.prefetch_profiles({distinct.begin(), distinct.end()});
  }
  std::vector<double> payoff_a(mixes.size(), 0.0);
  fan_out(mixes.size(), jobs_, [&](std::size_t k) {
    payoff_a[k] =
        play_mix(roster[mixes[k].i], roster[mixes[k].j], mixes[k].count_a)
            .payoff_a;
  });
  std::vector<double> scores(roster.size(), 0.0);
  std::vector<int> samples(roster.size(), 0);
  for (std::size_t k = 0; k < mixes.size(); ++k) {
    scores[mixes[k].i] += payoff_a[k];
    ++samples[mixes[k].i];
  }
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (samples[i] > 0) scores[i] /= samples[i];
  }
  return scores;
}

namespace {

/// A Contender whose display name is the strategy's own name() — the
/// full parameter set (β, r0, trigger/clean stages, …), so bench output
/// disambiguates configurations instead of hand-written labels drifting
/// out of sync with the factory.
Contender make_contender(std::function<std::unique_ptr<Strategy>()> make) {
  Contender c;
  c.name = make()->name();
  c.make = std::move(make);
  return c;
}

}  // namespace

std::vector<Contender> standard_roster(const StageGame& game, int n,
                                       int w_coop) {
  (void)game;
  (void)n;
  std::vector<Contender> roster;
  roster.push_back(make_contender(
      [w_coop] { return std::make_unique<TitForTat>(w_coop); }));
  roster.push_back(make_contender([w_coop] {
    return std::make_unique<GenerousTitForTat>(w_coop, 0.9, 3);
  }));
  roster.push_back(make_contender(
      [w_coop] { return std::make_unique<ConstantStrategy>(w_coop); }));
  roster.push_back(make_contender([w_coop] {
    return std::make_unique<ShortSightedStrategy>(std::max(1, w_coop / 4));
  }));
  // The forgiving cast (observation-robust reaction rules; see
  // src/game/forgiveness_grid.hpp for the noise scenarios they exist for).
  roster.push_back(make_contender(
      [w_coop] { return std::make_unique<ContriteTitForTat>(w_coop, 3); }));
  roster.push_back(make_contender([w_coop] {
    return std::make_unique<ForgivingGtft>(w_coop, 0.9, 3, 2, 2);
  }));
  return roster;
}

std::vector<Contender> enforcement_roster(const StageGame& game, int n,
                                          int w_coop) {
  (void)game;
  (void)n;
  std::vector<Contender> roster;
  roster.push_back(make_contender(
      [w_coop] { return std::make_unique<TitForTat>(w_coop); }));
  roster.push_back(make_contender([w_coop] {
    return std::make_unique<GenerousTitForTat>(w_coop, 0.9, 3);
  }));
  roster.push_back(make_contender(
      [w_coop] { return std::make_unique<ContriteTitForTat>(w_coop, 3); }));
  roster.push_back(make_contender([w_coop] {
    return std::make_unique<ForgivingGtft>(w_coop, 0.9, 3, 2, 2);
  }));
  return roster;
}

std::vector<Contender> deviant_roster(int w_coop, int attack_stage) {
  std::vector<Contender> roster;
  roster.push_back(make_contender([w_coop] {
    return std::make_unique<ShortSightedStrategy>(std::max(1, w_coop / 4));
  }));
  roster.push_back(make_contender([w_coop, attack_stage] {
    return std::make_unique<MaliciousStrategy>(w_coop, 2, attack_stage);
  }));
  return roster;
}

}  // namespace smac::game
