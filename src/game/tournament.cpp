#include "game/tournament.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "game/equilibrium.hpp"

namespace smac::game {

Tournament::Tournament(const StageGame& game, int n_players, int stages)
    : game_(game), n_(n_players), stages_(stages) {
  if (n_players < 2) throw std::invalid_argument("Tournament: n < 2");
  if (stages < 1) throw std::invalid_argument("Tournament: stages < 1");
}

MixOutcome Tournament::play_mix(const Contender& a, const Contender& b,
                                int count_a) const {
  if (count_a < 0 || count_a > n_) {
    throw std::invalid_argument("Tournament: count_a outside [0, n]");
  }
  if (!a.make || !b.make) {
    throw std::invalid_argument("Tournament: null contender factory");
  }
  std::vector<std::unique_ptr<Strategy>> players;
  players.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    players.push_back(i < count_a ? a.make() : b.make());
  }
  RepeatedGameEngine engine(game_, std::move(players));
  const RepeatedGameResult result = engine.play(stages_);

  MixOutcome outcome;
  outcome.count_a = count_a;
  outcome.count_b = n_ - count_a;
  for (int i = 0; i < n_; ++i) {
    const double u = result.discounted_utility[static_cast<std::size_t>(i)];
    if (i < count_a) {
      outcome.payoff_a += u / std::max(count_a, 1);
    } else {
      outcome.payoff_b += u / std::max(n_ - count_a, 1);
    }
  }
  return outcome;
}

bool Tournament::resists_invasion(const Contender& resident,
                                  const Contender& mutant,
                                  double tolerance) const {
  // One mutant (group B) among n−1 residents vs the pure-A counterfactual.
  const MixOutcome invaded = play_mix(resident, mutant, n_ - 1);
  const MixOutcome pure = play_mix(resident, mutant, n_);
  return invaded.payoff_b <=
         pure.payoff_a + tolerance * std::abs(pure.payoff_a);
}

std::vector<std::vector<bool>> Tournament::invasion_matrix(
    const std::vector<Contender>& roster, double tolerance) const {
  std::vector<std::vector<bool>> matrix(
      roster.size(), std::vector<bool>(roster.size(), true));
  for (std::size_t i = 0; i < roster.size(); ++i) {
    for (std::size_t j = 0; j < roster.size(); ++j) {
      if (i == j) continue;
      matrix[i][j] = resists_invasion(roster[i], roster[j], tolerance);
    }
  }
  return matrix;
}

std::vector<double> Tournament::round_robin_scores(
    const std::vector<Contender>& roster) const {
  std::vector<double> scores(roster.size(), 0.0);
  std::vector<int> samples(roster.size(), 0);
  for (std::size_t i = 0; i < roster.size(); ++i) {
    for (std::size_t j = 0; j < roster.size(); ++j) {
      if (i == j) continue;
      for (int count_a = 1; count_a < n_; ++count_a) {
        const MixOutcome mix = play_mix(roster[i], roster[j], count_a);
        scores[i] += mix.payoff_a;
        ++samples[i];
      }
    }
  }
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (samples[i] > 0) scores[i] /= samples[i];
  }
  return scores;
}

std::vector<Contender> standard_roster(const StageGame& game, int n,
                                       int w_coop) {
  (void)game;
  (void)n;
  std::vector<Contender> roster;
  roster.push_back({"tft", [w_coop] {
                      return std::make_unique<TitForTat>(w_coop);
                    }});
  roster.push_back({"gtft(0.9,3)", [w_coop] {
                      return std::make_unique<GenerousTitForTat>(w_coop, 0.9,
                                                                 3);
                    }});
  roster.push_back({"constant(w*)", [w_coop] {
                      return std::make_unique<ConstantStrategy>(w_coop);
                    }});
  roster.push_back({"short-sighted(w*/4)", [w_coop] {
                      return std::make_unique<ShortSightedStrategy>(
                          std::max(1, w_coop / 4));
                    }});
  return roster;
}

}  // namespace smac::game
