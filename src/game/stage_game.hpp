// The stage game of the non-cooperative MAC game G (paper §IV).
//
// One stage lasts T seconds during which every node operates a fixed
// contention window; the stage payoff is the utility rate u_i (from the
// extended Bianchi model) times the stage duration. This class is the
// bridge between the analytical model and the game-theoretic machinery:
// strategies and equilibrium analysis consume it, never the raw solver.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "analytical/fixed_point_solver.hpp"
#include "analytical/solver_cache.hpp"
#include "analytical/solver_service.hpp"
#include "phy/parameters.hpp"

namespace smac::game {

/// Evaluates stage payoffs of contention-window profiles.
///
/// Homogeneous evaluations are memoized: equilibrium sweeps and repeated
/// games revisit the same (w, n) points thousands of times. The memo
/// cache is mutex-guarded, so const evaluation is safe from concurrent
/// threads (parallel tournaments share one StageGame across workers).
class StageGame {
 public:
  StageGame(phy::Parameters params, phy::AccessMode mode);

  /// Same, with explicit SolverService options — the way to hand the
  /// owned service a ThreadPool (city-scale pricing chunks its miss
  /// batches across it; results stay bitwise jobs-invariant per the
  /// service contract). The pool, if any, must outlive this game.
  StageGame(phy::Parameters params, phy::AccessMode mode,
            analytical::SolverService::Options solver_options);

  const phy::Parameters& params() const noexcept { return params_; }
  phy::AccessMode mode() const noexcept { return mode_; }

  /// Stage duration in µs (utility rates are per µs).
  double stage_duration_us() const noexcept {
    return params_.stage_duration_s * 1e6;
  }

  /// Per-node utility *rates* (gain per µs) for an arbitrary profile.
  std::vector<double> utility_rates(const std::vector<int>& w) const;

  /// Per-node stage payoffs U_i^s = u_i·T for an arbitrary profile.
  std::vector<double> stage_utilities(const std::vector<int>& w) const;

  /// Non-throwing stage payoffs: per-node payoffs plus the solver
  /// diagnostics. `per_override` replaces the configured packet error rate
  /// (fault injection layers bursty loss on top of the base PER). Routed
  /// through a thread-safe memo keyed on (profile, max_stage, PER), so
  /// repeated games and tournaments that revisit the same profile —
  /// especially after a fault knocks the history back to a prior state —
  /// pay for each solve once.
  struct StagePayoffs {
    std::vector<double> utilities;
    analytical::SolveDiagnostics diagnostics;
  };
  StagePayoffs try_stage_utilities(
      const std::vector<int>& w,
      std::optional<double> per_override = std::nullopt) const;

  /// Batched try_stage_utilities: submits every profile to the solver
  /// service, drains once, and returns the payoffs in input order. Each
  /// element is bitwise equal to the corresponding sequential
  /// try_stage_utilities call (the batch kernel's identity contract);
  /// only the solver work is shared — empty profiles short-circuit to the
  /// same kFailed/"invalid" payoffs as the sequential path.
  std::vector<StagePayoffs> try_stage_utilities_batch(
      const std::vector<std::vector<int>>& profiles,
      std::optional<double> per_override = std::nullopt) const;

  /// Class-space batch pricing: each entry is a canonical ClassProfile
  /// (as produced by classify_profile, class_of populated) and the result
  /// holds one stage payoff per *class* — the payoff every node of that
  /// class would get from try_stage_utilities on any expansion of the
  /// profile, bitwise (nodes of a class share tau/p exactly). This is the
  /// city-scale entry point: a 10^4-node stage submits only its distinct
  /// (neighborhood-size, window-mix, PER) classes and expands per node
  /// afterwards. Profiles with no classes yield kFailed/"invalid".
  struct ClassPayoffs {
    std::vector<double> utilities;  ///< per class, stage payoff u·T
    analytical::SolveDiagnostics diagnostics;
  };
  std::vector<ClassPayoffs> try_class_utilities_batch(
      const std::vector<analytical::ClassProfile>& profiles,
      std::optional<double> per_override = std::nullopt) const;

  /// Warms the solve cache for a set of profiles in one batched drain.
  /// Later utility_rates / try_stage_utilities calls on these profiles
  /// (or any permutation of them) are cache hits. Invalid profiles are
  /// ignored.
  void prefetch_profiles(const std::vector<std::vector<int>>& profiles,
                         std::optional<double> per_override =
                             std::nullopt) const;

  /// Utility rate of one node when all n nodes play w (memoized).
  double homogeneous_utility_rate(int w, int n) const;

  /// Stage payoff of one node when all n nodes play w.
  double homogeneous_stage_utility(int w, int n) const;

  /// Σ_i U_i^s over a homogeneous profile: the social welfare of a stage.
  double social_welfare(int w, int n) const;

  /// Normalized global payoff U/C (Figures 2–3 y-axis).
  double normalized_global_payoff(int w, int n) const;

  /// Traffic counters of the shared heterogeneous solve cache (both
  /// utility_rates and try_stage_utilities route through it); benches
  /// print these to show how much of a run the class-canonical key
  /// deduplicates.
  analytical::SolveCacheStats solve_cache_stats() const {
    return solver_.cache_stats();
  }

  /// The batched solver front end every heterogeneous evaluation routes
  /// through (see docs/SOLVER_API.md).
  const analytical::SolverService& solver_service() const noexcept {
    return solver_;
  }

 private:
  phy::Parameters params_;
  phy::AccessMode mode_;
  mutable std::mutex cache_mutex_;
  mutable std::map<std::pair<int, int>, double> homogeneous_cache_;
  mutable analytical::SolverService solver_;
};

}  // namespace smac::game
