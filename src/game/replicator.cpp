#include "game/replicator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smac::game {

ReplicatorDynamics::ReplicatorDynamics(const Tournament& tournament)
    : tournament_(tournament) {}

namespace {

// Fitness expectation over the Binomial(n−1, share) composition of an
// individual's game, from pre-played mixes (index k = A-seat count).
std::pair<double, double> fitness_from_mixes(
    const std::vector<MixOutcome>& mixes, double share_a) {
  const int n = static_cast<int>(mixes.size()) - 1;
  double fitness_a = 0.0;
  double fitness_b = 0.0;
  for (int draws = 0; draws <= n - 1; ++draws) {
    // Binomial pmf, computed stably enough for n <= ~40.
    double pmf = 1.0;
    for (int i = 0; i < draws; ++i) {
      pmf *= static_cast<double>(n - 1 - i) / (i + 1) * share_a;
    }
    pmf *= std::pow(1.0 - share_a, n - 1 - draws);
    // An A-individual's game has draws + 1 A-seats; a B-individual's has
    // exactly draws A-seats.
    fitness_a += pmf * mixes[static_cast<std::size_t>(draws) + 1].payoff_a;
    fitness_b += pmf * mixes[static_cast<std::size_t>(draws)].payoff_b;
  }
  return {fitness_a, fitness_b};
}

// The composition payoffs do not depend on the share, so one pass of
// n + 1 games serves the whole trajectory.
std::vector<MixOutcome> play_all_mixes(const Tournament& tournament,
                                       const Contender& a,
                                       const Contender& b) {
  const int n = tournament.play_mix(a, b, 0).count_b;
  std::vector<MixOutcome> mixes;
  mixes.reserve(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) {
    mixes.push_back(tournament.play_mix(a, b, k));
  }
  return mixes;
}

}  // namespace

std::pair<double, double> ReplicatorDynamics::expected_fitness(
    const Contender& a, const Contender& b, double share_a) const {
  if (share_a < 0.0 || share_a > 1.0) {
    throw std::invalid_argument("expected_fitness: share outside [0,1]");
  }
  return fitness_from_mixes(play_all_mixes(tournament_, a, b), share_a);
}

ReplicatorResult ReplicatorDynamics::run(const Contender& a,
                                         const Contender& b,
                                         double initial_share_a,
                                         int generations, double tolerance,
                                         double floor) const {
  if (initial_share_a < 0.0 || initial_share_a > 1.0) {
    throw std::invalid_argument("ReplicatorDynamics: share outside [0,1]");
  }
  if (generations < 1) {
    throw std::invalid_argument("ReplicatorDynamics: generations < 1");
  }
  ReplicatorResult result;
  const std::vector<MixOutcome> mixes = play_all_mixes(tournament_, a, b);
  double share = std::clamp(initial_share_a, floor, 1.0 - floor);
  for (int g = 0; g < generations; ++g) {
    const auto [fa, fb] = fitness_from_mixes(mixes, share);
    result.trajectory.push_back({share, fa, fb});
    // Shift fitnesses so both are positive (replicator needs a ratio).
    const double shift = std::min({fa, fb, 0.0});
    const double ga = fa - shift + 1e-12;
    const double gb = fb - shift + 1e-12;
    const double next = std::clamp(
        share * ga / (share * ga + (1.0 - share) * gb), floor, 1.0 - floor);
    if (std::abs(next - share) < tolerance) {
      share = next;
      result.converged = true;
      result.trajectory.push_back({share, fa, fb});
      break;
    }
    share = next;
  }
  result.final_share_a = share;
  return result;
}

}  // namespace smac::game
