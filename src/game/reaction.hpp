// Enforcement: detection → calibrated reaction → rehabilitation.
//
// The paper's repeated game disciplines deviants through TFT matching —
// every compliant node retaliates against whatever it observes, which PR 2
// showed ratchets to W = 1 under observation noise, and which a §V.D
// short-sighted deviant simply does not care about (it still invades the
// PR 5 tournament). Banchs et al. ("Thwarting Selfish Behavior in 802.11
// WLANs") and Kyasanur & Vaidya (the paper's citation [3]) close that gap
// with an explicit protocol: a statistical detector flags a misbehaving
// station, the compliant crowd applies a *calibrated* punishment response,
// and the station is readmitted afterwards. ReactionPolicy is that
// protocol for the repeated-game runtime:
//
//   flag    — a sim::OnlineDetector (per-opponent SPRT/CUSUM over the
//             monitor's observed windows) crosses its Wald threshold;
//   punish  — compliant nodes drop to a *jamming* window below the
//             deviant's. Matching the deviant (TFT-style) would not hurt
//             it here: the symmetric all-w payoff of this stage game is
//             nearly flat in w, so a deviant only profits from asymmetry
//             (a smaller window than the crowd's) — and only asymmetry
//             the other way starves it back. The episode length is
//             calibrated: the three what-if profiles (all-compliant
//             baseline, deviant-vs-crowd, deviant-vs-jamming-crowd) are
//             solved in one batched StageGame submission (the PR 6
//             SolverService), and the episode runs until the deviant's
//             loss repays its estimated stolen utility times a penalty
//             margin;
//   rehab   — when the episode ends the offender's evidence is cleared
//             (OnlineDetector::rehabilitate) and everyone returns to the
//             agreement. A noise-induced false flag estimates gain ≈ 0
//             (the "offender's" observed window ≈ W_agreed) and lands on
//             the minimum episode length instead of ratcheting — the same
//             forgiveness contract the PR 5 strategies established,
//             lifted to the protocol layer.
//
// The policy models a coordinator-style monitor (one observer, one
// verdict — the §V.C search protocol already assumes such a coordination
// channel), which is what keeps punishers from flagging each other;
// multihop::play_multihop_tft's enforcement variant shows the distributed
// flooding version. Everything here is a pure function of the observation
// sequence — no RNG, no clocks — so enforcement inherits the bit-identical
// determinism contract.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "game/observation_filter.hpp"
#include "game/stage_game.hpp"
#include "game/strategies.hpp"
#include "sim/online_detector.hpp"

namespace smac::game {

struct ReactionConfig {
  /// Sequential detector watching every player against the agreement.
  sim::OnlineDetectorConfig detector;
  /// The agreed cooperative window (e.g. the efficient NE W*).
  int w_agreed = 1;
  /// Backoff-stage bound m of the agreement's model.
  int max_stage = 6;
  /// Optional robust smoothing of the monitor's window readings before
  /// they reach the detector and the ŵ estimate (kNone = raw readings;
  /// the default detector geometry already tolerates magnitude-4 noise).
  ObservationFilterConfig monitor_filter;
  /// Episode length bounds (stages). The calibrated length is clamped
  /// into [min, max]; false flags land on min because their estimated
  /// gain is ≈ 0.
  int min_punishment_stages = 2;
  int max_punishment_stages = 40;
  /// Overcharge factor: the episode makes the deviant lose margin ×
  /// estimated stolen utility, so deviating is strictly unprofitable,
  /// not just neutral.
  double penalty_margin = 2.0;
  /// The jamming window punishers drop to during an episode (must be in
  /// [1, w_agreed]). The default w = 1 denies the channel to everyone —
  /// grim for the episode's duration, which is exactly what makes it
  /// deter; the calibration keeps episodes short.
  int punishment_w = 1;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

/// One punishment episode, for reports and tests.
struct PunishmentEpisode {
  std::size_t offender = 0;
  int start_stage = 0;  ///< first punished stage
  int length = 0;       ///< stages punished
  int w_punish = 1;     ///< jamming window the compliant crowd dropped to
  double gain_per_stage = 0.0;  ///< estimated deviant gain that sized it
  double loss_per_stage = 0.0;  ///< deviant's per-punished-stage loss
};

/// What enforcement did over one run (analog of DegradationReport).
struct EnforcementReport {
  int flags_raised = 0;      ///< detector flags latched (≥ episodes)
  int episodes = 0;          ///< punishment episodes opened
  int punished_stages = 0;   ///< stages spent punishing
  int rehabilitations = 0;   ///< episodes that completed and cleared
  int first_flag_stage = -1; ///< stage whose observation raised the first
                             ///< flag (−1 = never)
  std::vector<PunishmentEpisode> history;

  bool any() const noexcept { return flags_raised > 0; }
  /// "flags=2 episodes=2 punished=16 rehabs=2 first@1" / "clean".
  std::string summary() const;
};

/// The closed loop: consumes the monitor's per-stage observations,
/// decides when an episode is active, and tells compliant players what to
/// play while it is. Driven by RepeatedGameEngine; usable standalone for
/// tests.
class ReactionPolicy {
 public:
  /// `game` must outlive the policy; `players` ≥ 2 is the network size.
  /// Throws std::invalid_argument on an invalid config (including a
  /// detector whose tolerance swallows its design cheat).
  ReactionPolicy(const StageGame& game, const ReactionConfig& config,
                 std::size_t players);

  /// Whether an episode is active — i.e. the *next* stage's compliant
  /// decisions are overridden by command().
  bool punishing() const noexcept { return episode_.has_value(); }
  std::size_t offender() const;       ///< throws std::logic_error when idle
  int punishment_window() const;      ///< throws std::logic_error when idle

  /// The window a compliant player must play during an episode: the
  /// punishment window — except the sanctioned offender itself, which is
  /// commanded back to the agreement (a falsely-flagged compliant node
  /// keeps cooperating; a real deviant ignores the command anyway).
  /// Returns `decided` unchanged when no episode is active.
  int command(std::size_t player, int decided) const;

  /// Absorbs the monitor's observation of stage `stage` (windows already
  /// passed through whatever fault model applies; `observed.online`
  /// marks who was up). Advances or closes the active episode, or feeds
  /// the detector and possibly opens one (affecting stage `stage` + 1).
  void end_stage(const StageRecord& observed, int stage);

  const EnforcementReport& report() const noexcept { return report_; }
  const sim::OnlineDetector& detector() const noexcept { return detector_; }

 private:
  void open_episode(std::size_t offender, int first_stage);

  struct ActiveEpisode {
    std::size_t offender = 0;
    int remaining = 0;
    int w_punish = 1;
  };

  const StageGame& game_;
  ReactionConfig config_;
  sim::OnlineDetector detector_;
  ObservationFilter filter_;
  std::vector<std::vector<int>> series_;  ///< per-player observed windows
  std::optional<ActiveEpisode> episode_;
  EnforcementReport report_;
};

}  // namespace smac::game
