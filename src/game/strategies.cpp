#include "game/strategies.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/optimize.hpp"

namespace smac::game {

bool player_online(const StageRecord& record, std::size_t i) {
  if (record.online.empty()) return true;
  return i < record.online.size() && record.online[i] != 0;
}

int min_cw(const StageRecord& record) {
  if (record.cw.empty()) throw std::invalid_argument("min_cw: empty record");
  int best = 0;
  bool found = false;
  for (std::size_t j = 0; j < record.cw.size(); ++j) {
    if (!player_online(record, j)) continue;
    if (!found || record.cw[j] < best) {
      best = record.cw[j];
      found = true;
    }
  }
  if (found) return best;
  // Every player down this stage — fall back to the raw profile so TFT
  // still has a well-defined (if moot) response.
  return *std::min_element(record.cw.begin(), record.cw.end());
}

int opponent_min_cw(const StageRecord& record, std::size_t self) {
  if (record.cw.empty()) {
    throw std::invalid_argument("opponent_min_cw: empty record");
  }
  int best = 0;
  bool found = false;
  for (std::size_t j = 0; j < record.cw.size(); ++j) {
    if (j == self || !player_online(record, j)) continue;
    if (!found || record.cw[j] < best) {
      best = record.cw[j];
      found = true;
    }
  }
  return found ? best : record.cw.at(self);
}

int forgive_step(int own, int target) noexcept {
  if (own >= target) return target;
  return std::min(target, own + std::max(1, (target - own + 1) / 2));
}

// ---- ConstantStrategy ----

ConstantStrategy::ConstantStrategy(int w) : w_(w) {
  if (w < 1) throw std::invalid_argument("ConstantStrategy: w < 1");
}

std::string ConstantStrategy::name() const {
  std::ostringstream os;
  os << "constant(" << w_ << ")";
  return os.str();
}

// ---- TitForTat ----

TitForTat::TitForTat(int initial_w) : initial_w_(initial_w) {
  if (initial_w < 1) throw std::invalid_argument("TitForTat: initial_w < 1");
}

int TitForTat::decide(const History& history, std::size_t /*self*/) {
  if (history.empty()) return initial_w_;
  return min_cw(history.back());
}

// ---- GenerousTitForTat ----

GenerousTitForTat::GenerousTitForTat(int initial_w, double beta,
                                     int window_stages)
    : initial_w_(initial_w), beta_(beta), r0_(window_stages) {
  if (initial_w < 1) {
    throw std::invalid_argument("GenerousTitForTat: initial_w < 1");
  }
  if (!(beta > 0.0) || !(beta < 1.0)) {
    throw std::invalid_argument("GenerousTitForTat: beta outside (0,1)");
  }
  if (window_stages < 1) {
    throw std::invalid_argument("GenerousTitForTat: window_stages < 1");
  }
}

int GenerousTitForTat::decide(const History& history, std::size_t self) {
  if (history.empty()) return initial_w_;
  const int current = history.back().cw.at(self);

  // Average each player's window over the last r0 stages (fewer if the
  // game is younger than r0).
  const std::size_t n = history.back().cw.size();
  const std::size_t stages =
      std::min<std::size_t>(static_cast<std::size_t>(r0_), history.size());
  std::vector<double> avg(n, 0.0);
  for (std::size_t s = history.size() - stages; s < history.size(); ++s) {
    for (std::size_t j = 0; j < n; ++j) {
      avg[j] += static_cast<double>(history[s].cw.at(j));
    }
  }
  for (double& a : avg) a /= static_cast<double>(stages);

  const double mine = avg[self];
  bool someone_more_aggressive = false;
  for (std::size_t j = 0; j < n; ++j) {
    // A crashed player is not transmitting; its stale window must not
    // trigger retaliation.
    if (!player_online(history.back(), j)) continue;
    if (j != self && avg[j] < beta_ * mine) {
      someone_more_aggressive = true;
      break;
    }
  }
  if (someone_more_aggressive) return min_cw(history.back());
  return current;
}

std::string GenerousTitForTat::name() const {
  std::ostringstream os;
  os << "gtft(beta=" << beta_ << ",r0=" << r0_ << ")";
  return os.str();
}

// ---- ContriteTitForTat ----

ContriteTitForTat::ContriteTitForTat(int w_coop, int clean_stages)
    : w_coop_(w_coop), k_(clean_stages) {
  if (w_coop < 1) throw std::invalid_argument("ContriteTitForTat: w_coop < 1");
  if (clean_stages < 1) {
    throw std::invalid_argument("ContriteTitForTat: clean_stages < 1");
  }
}

namespace {

/// The "standing" reference of player `self` at history stage `s`: the
/// smallest window it played over the last kStandingDepth stages.
/// Opponents at or above this level are not deviating — they may simply
/// not have forgiven as far as we have, or an observer's belief of them
/// may be a few stages stale (observation loss keeps the previous
/// belief). Judging aggression against the *raised* window instead
/// (plain min-matching) makes desynchronized upward drift
/// self-punishing: the first player to forgive sees the laggards "below"
/// it and drops right back, and the population stands at W = 1 forever.
/// Depth 4 tolerates beliefs stale by up to 3 stages — deeper staleness
/// has probability loss_probability^4 per belief and is punished as if
/// real (a bounded episode, not a ratchet).
constexpr std::size_t kStandingDepth = 4;

int standing_ref(const History& history, std::size_t self, std::size_t s) {
  int ref = history[s].cw.at(self);
  const std::size_t first = s + 1 >= kStandingDepth ? s + 1 - kStandingDepth
                                                    : 0;
  for (std::size_t t = first; t < s; ++t) {
    ref = std::min(ref, history[t].cw.at(self));
  }
  return ref;
}

}  // namespace

int ContriteTitForTat::decide(const History& history, std::size_t self) {
  if (history.empty()) return w_coop_;
  const int own = history.back().cw.at(self);
  const std::size_t last = history.size() - 1;
  const int m = opponent_min_cw(history.back(), self);
  if (m < standing_ref(history, self, last)) return m;  // punish, TFT-style
  // Contrition: count the trailing stages in which nobody (online) was
  // observed below this player's standing reference.
  int streak = 0;
  for (std::size_t s = history.size(); s-- > 0;) {
    if (opponent_min_cw(history[s], self) >= standing_ref(history, self, s)) {
      ++streak;
    } else {
      break;
    }
  }
  if (streak >= k_ && own < w_coop_) return forgive_step(own, w_coop_);
  return own;
}

std::string ContriteTitForTat::name() const {
  std::ostringstream os;
  os << "contrite-tft(w=" << w_coop_ << ",k=" << k_ << ")";
  return os.str();
}

// ---- ForgivingGtft ----

ForgivingGtft::ForgivingGtft(int initial_w, double beta, int window_stages,
                             int trigger_stages, int clean_stages)
    : initial_w_(initial_w),
      beta_(beta),
      r0_(window_stages),
      trigger_(trigger_stages),
      clean_(clean_stages) {
  if (initial_w < 1) throw std::invalid_argument("ForgivingGtft: initial_w < 1");
  if (!(beta > 0.0) || !(beta < 1.0)) {
    throw std::invalid_argument("ForgivingGtft: beta outside (0,1)");
  }
  if (window_stages < 1) {
    throw std::invalid_argument("ForgivingGtft: window_stages < 1");
  }
  if (trigger_stages < 1) {
    throw std::invalid_argument("ForgivingGtft: trigger_stages < 1");
  }
  if (clean_stages < 1) {
    throw std::invalid_argument("ForgivingGtft: clean_stages < 1");
  }
}

bool ForgivingGtft::triggered_at(const History& history, std::size_t self,
                                 std::size_t stage) const {
  if (stage >= history.size()) {
    throw std::invalid_argument("ForgivingGtft: stage out of range");
  }
  const StageRecord& record = history[stage];
  const std::size_t n = record.cw.size();
  const std::size_t stages =
      std::min<std::size_t>(static_cast<std::size_t>(r0_), stage + 1);
  std::vector<double> avg(n, 0.0);
  for (std::size_t s = stage + 1 - stages; s <= stage; ++s) {
    for (std::size_t j = 0; j < n; ++j) {
      avg[j] += static_cast<double>(history[s].cw.at(j));
    }
  }
  for (double& a : avg) a /= static_cast<double>(stages);
  // The reference is the smallest of the r0-averaged own window and the
  // windows actually played in the last two stages (the "standing" floor,
  // see standing_ref above): a player that just punished or just drifted
  // upward must not read its own move as opponents turning aggressive.
  const double mine =
      std::min(avg[self],
               static_cast<double>(standing_ref(history, self, stage)));
  for (std::size_t j = 0; j < n; ++j) {
    if (j == self || !player_online(record, j)) continue;
    if (avg[j] < beta_ * mine) return true;
  }
  return false;
}

int ForgivingGtft::decide(const History& history, std::size_t self) {
  if (history.empty()) return initial_w_;
  const int own = history.back().cw.at(self);
  // Punish only when the averaged trigger held for the last `trigger_`
  // stages in a row — one noisy stage can never fire it.
  if (history.size() >= static_cast<std::size_t>(trigger_)) {
    bool sustained = true;
    for (int s = 0; s < trigger_; ++s) {
      if (!triggered_at(history, self, history.size() - 1 -
                                           static_cast<std::size_t>(s))) {
        sustained = false;
        break;
      }
    }
    if (sustained) return min_cw(history.back());
  }
  if (triggered_at(history, self, history.size() - 1)) return own;
  // Upward relaxation after a clean (untriggered) streak.
  int streak = 0;
  for (std::size_t s = history.size(); s-- > 0;) {
    if (triggered_at(history, self, s)) break;
    ++streak;
  }
  if (streak >= clean_ && own < initial_w_) {
    return forgive_step(own, initial_w_);
  }
  return own;
}

std::string ForgivingGtft::name() const {
  std::ostringstream os;
  os << "forgiving-gtft(beta=" << beta_ << ",r0=" << r0_ << ",trig="
     << trigger_ << ",clean=" << clean_ << ")";
  return os.str();
}

// ---- ShortSightedStrategy ----

ShortSightedStrategy::ShortSightedStrategy(int w_s) : w_s_(w_s) {
  if (w_s < 1) throw std::invalid_argument("ShortSightedStrategy: w_s < 1");
}

std::string ShortSightedStrategy::name() const {
  std::ostringstream os;
  os << "short-sighted(" << w_s_ << ")";
  return os.str();
}

// ---- MaliciousStrategy ----

MaliciousStrategy::MaliciousStrategy(int w_coop, int w_attack,
                                     int attack_stage)
    : w_coop_(w_coop), w_attack_(w_attack), attack_stage_(attack_stage) {
  if (w_coop < 1 || w_attack < 1) {
    throw std::invalid_argument("MaliciousStrategy: windows must be >= 1");
  }
  if (attack_stage < 0) {
    throw std::invalid_argument("MaliciousStrategy: attack_stage < 0");
  }
}

int MaliciousStrategy::initial_cw() const {
  return attack_stage_ == 0 ? w_attack_ : w_coop_;
}

int MaliciousStrategy::decide(const History& history, std::size_t /*self*/) {
  const int next_stage = static_cast<int>(history.size());
  return next_stage >= attack_stage_ ? w_attack_ : w_coop_;
}

std::string MaliciousStrategy::name() const {
  std::ostringstream os;
  os << "malicious(" << w_attack_ << "@" << attack_stage_ << ")";
  return os.str();
}

// ---- MyopicBestResponse ----

MyopicBestResponse::MyopicBestResponse(int initial_w, int w_max, Oracle oracle)
    : initial_w_(initial_w), w_max_(w_max), oracle_(std::move(oracle)) {
  if (initial_w < 1 || w_max < initial_w) {
    throw std::invalid_argument("MyopicBestResponse: bad window range");
  }
  if (!oracle_) throw std::invalid_argument("MyopicBestResponse: null oracle");
}

int MyopicBestResponse::decide(const History& history, std::size_t self) {
  if (history.empty()) return initial_w_;
  std::vector<int> profile = history.back().cw;
  // The stage utility against fixed opponents is unimodal in the own
  // window (Lemma 1 monotonicities), so ternary search applies.
  const auto r = util::ternary_int_max(
      [&](std::int64_t w) {
        profile[self] = static_cast<int>(w);
        return oracle_(profile, self);
      },
      1, w_max_);
  return static_cast<int>(r.x);
}

}  // namespace smac::game
