#include "game/strategies.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/optimize.hpp"

namespace smac::game {

bool player_online(const StageRecord& record, std::size_t i) {
  if (record.online.empty()) return true;
  return i < record.online.size() && record.online[i] != 0;
}

int min_cw(const StageRecord& record) {
  if (record.cw.empty()) throw std::invalid_argument("min_cw: empty record");
  int best = 0;
  bool found = false;
  for (std::size_t j = 0; j < record.cw.size(); ++j) {
    if (!player_online(record, j)) continue;
    if (!found || record.cw[j] < best) {
      best = record.cw[j];
      found = true;
    }
  }
  if (found) return best;
  // Every player down this stage — fall back to the raw profile so TFT
  // still has a well-defined (if moot) response.
  return *std::min_element(record.cw.begin(), record.cw.end());
}

// ---- ConstantStrategy ----

ConstantStrategy::ConstantStrategy(int w) : w_(w) {
  if (w < 1) throw std::invalid_argument("ConstantStrategy: w < 1");
}

std::string ConstantStrategy::name() const {
  std::ostringstream os;
  os << "constant(" << w_ << ")";
  return os.str();
}

// ---- TitForTat ----

TitForTat::TitForTat(int initial_w) : initial_w_(initial_w) {
  if (initial_w < 1) throw std::invalid_argument("TitForTat: initial_w < 1");
}

int TitForTat::decide(const History& history, std::size_t /*self*/) {
  if (history.empty()) return initial_w_;
  return min_cw(history.back());
}

// ---- GenerousTitForTat ----

GenerousTitForTat::GenerousTitForTat(int initial_w, double beta,
                                     int window_stages)
    : initial_w_(initial_w), beta_(beta), r0_(window_stages) {
  if (initial_w < 1) {
    throw std::invalid_argument("GenerousTitForTat: initial_w < 1");
  }
  if (!(beta > 0.0) || !(beta < 1.0)) {
    throw std::invalid_argument("GenerousTitForTat: beta outside (0,1)");
  }
  if (window_stages < 1) {
    throw std::invalid_argument("GenerousTitForTat: window_stages < 1");
  }
}

int GenerousTitForTat::decide(const History& history, std::size_t self) {
  if (history.empty()) return initial_w_;
  const int current = history.back().cw.at(self);

  // Average each player's window over the last r0 stages (fewer if the
  // game is younger than r0).
  const std::size_t n = history.back().cw.size();
  const std::size_t stages =
      std::min<std::size_t>(static_cast<std::size_t>(r0_), history.size());
  std::vector<double> avg(n, 0.0);
  for (std::size_t s = history.size() - stages; s < history.size(); ++s) {
    for (std::size_t j = 0; j < n; ++j) {
      avg[j] += static_cast<double>(history[s].cw.at(j));
    }
  }
  for (double& a : avg) a /= static_cast<double>(stages);

  const double mine = avg[self];
  bool someone_more_aggressive = false;
  for (std::size_t j = 0; j < n; ++j) {
    // A crashed player is not transmitting; its stale window must not
    // trigger retaliation.
    if (!player_online(history.back(), j)) continue;
    if (j != self && avg[j] < beta_ * mine) {
      someone_more_aggressive = true;
      break;
    }
  }
  if (someone_more_aggressive) return min_cw(history.back());
  return current;
}

std::string GenerousTitForTat::name() const {
  std::ostringstream os;
  os << "gtft(beta=" << beta_ << ",r0=" << r0_ << ")";
  return os.str();
}

// ---- ShortSightedStrategy ----

ShortSightedStrategy::ShortSightedStrategy(int w_s) : w_s_(w_s) {
  if (w_s < 1) throw std::invalid_argument("ShortSightedStrategy: w_s < 1");
}

std::string ShortSightedStrategy::name() const {
  std::ostringstream os;
  os << "short-sighted(" << w_s_ << ")";
  return os.str();
}

// ---- MaliciousStrategy ----

MaliciousStrategy::MaliciousStrategy(int w_coop, int w_attack,
                                     int attack_stage)
    : w_coop_(w_coop), w_attack_(w_attack), attack_stage_(attack_stage) {
  if (w_coop < 1 || w_attack < 1) {
    throw std::invalid_argument("MaliciousStrategy: windows must be >= 1");
  }
  if (attack_stage < 0) {
    throw std::invalid_argument("MaliciousStrategy: attack_stage < 0");
  }
}

int MaliciousStrategy::initial_cw() const {
  return attack_stage_ == 0 ? w_attack_ : w_coop_;
}

int MaliciousStrategy::decide(const History& history, std::size_t /*self*/) {
  const int next_stage = static_cast<int>(history.size());
  return next_stage >= attack_stage_ ? w_attack_ : w_coop_;
}

std::string MaliciousStrategy::name() const {
  std::ostringstream os;
  os << "malicious(" << w_attack_ << "@" << attack_stage_ << ")";
  return os.str();
}

// ---- MyopicBestResponse ----

MyopicBestResponse::MyopicBestResponse(int initial_w, int w_max, Oracle oracle)
    : initial_w_(initial_w), w_max_(w_max), oracle_(std::move(oracle)) {
  if (initial_w < 1 || w_max < initial_w) {
    throw std::invalid_argument("MyopicBestResponse: bad window range");
  }
  if (!oracle_) throw std::invalid_argument("MyopicBestResponse: null oracle");
}

int MyopicBestResponse::decide(const History& history, std::size_t self) {
  if (history.empty()) return initial_w_;
  std::vector<int> profile = history.back().cw;
  // The stage utility against fixed opponents is unimodal in the own
  // window (Lemma 1 monotonicities), so ternary search applies.
  const auto r = util::ternary_int_max(
      [&](std::int64_t w) {
        profile[self] = static_cast<int>(w);
        return oracle_(profile, self);
      },
      1, w_max_);
  return static_cast<int>(r.x);
}

}  // namespace smac::game
