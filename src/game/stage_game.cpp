#include "game/stage_game.hpp"

#include <stdexcept>

#include "analytical/utility.hpp"

namespace smac::game {

StageGame::StageGame(phy::Parameters params, phy::AccessMode mode)
    : StageGame(std::move(params), mode,
                analytical::SolverService::Options{}) {}

StageGame::StageGame(phy::Parameters params, phy::AccessMode mode,
                     analytical::SolverService::Options solver_options)
    : params_(std::move(params)), mode_(mode),
      solver_(std::move(solver_options)) {
  params_.validate();
}

std::vector<double> StageGame::utility_rates(const std::vector<int>& w) const {
  if (w.empty()) throw std::invalid_argument("StageGame: empty profile");
  for (const int wi : w) {
    if (wi < 1) throw std::invalid_argument("StageGame: window < 1");
  }
  // Routed through the canonical solve cache: repeated games replay the
  // same profile stage after stage, and deviation scans revisit
  // permutations of one-deviant profiles — all of which collapse to a
  // handful of class keys.
  const analytical::TrySolveResult solved = solver_.solve(
      w, params_.max_backoff_stage, params_.packet_error_rate);
  return analytical::utility_rates(solved.state, params_, mode_);
}

std::vector<double> StageGame::stage_utilities(
    const std::vector<int>& w) const {
  std::vector<double> u = utility_rates(w);
  const double t_us = stage_duration_us();
  for (double& v : u) v *= t_us;
  return u;
}

StageGame::StagePayoffs StageGame::try_stage_utilities(
    const std::vector<int>& w, std::optional<double> per_override) const {
  if (w.empty()) {
    StagePayoffs out;
    out.diagnostics.status = analytical::SolveStatus::kFailed;
    out.diagnostics.method = "invalid";
    return out;
  }
  const double per = per_override.value_or(params_.packet_error_rate);
  const analytical::TrySolveResult solved =
      solver_.solve(w, params_.max_backoff_stage, per);
  StagePayoffs out;
  out.diagnostics = solved.diagnostics;
  if (analytical::usable(solved.diagnostics.status)) {
    out.utilities = analytical::utility_rates(solved.state, params_, mode_);
    const double t_us = stage_duration_us();
    for (double& v : out.utilities) v *= t_us;
  }
  return out;
}

std::vector<StageGame::StagePayoffs> StageGame::try_stage_utilities_batch(
    const std::vector<std::vector<int>>& profiles,
    std::optional<double> per_override) const {
  const double per = per_override.value_or(params_.packet_error_rate);
  std::vector<analytical::SolverService::Ticket> tickets(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (!profiles[i].empty()) {
      tickets[i] =
          solver_.submit(profiles[i], params_.max_backoff_stage, per);
    }
  }
  solver_.drain();
  std::vector<StagePayoffs> out(profiles.size());
  const double t_us = stage_duration_us();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i].empty()) {
      out[i].diagnostics.status = analytical::SolveStatus::kFailed;
      out[i].diagnostics.method = "invalid";
      continue;
    }
    const analytical::TrySolveResult& solved = tickets[i].result();
    out[i].diagnostics = solved.diagnostics;
    if (analytical::usable(solved.diagnostics.status)) {
      out[i].utilities =
          analytical::utility_rates(solved.state, params_, mode_);
      for (double& v : out[i].utilities) v *= t_us;
    }
  }
  return out;
}

std::vector<StageGame::ClassPayoffs> StageGame::try_class_utilities_batch(
    const std::vector<analytical::ClassProfile>& profiles,
    std::optional<double> per_override) const {
  const double per = per_override.value_or(params_.packet_error_rate);
  std::vector<analytical::SolverService::Ticket> tickets(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (!profiles[i].window.empty()) {
      tickets[i] = solver_.submit_classes(profiles[i],
                                          params_.max_backoff_stage, per);
    }
  }
  solver_.drain();
  std::vector<ClassPayoffs> out(profiles.size());
  const double t_us = stage_duration_us();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i].window.empty()) {
      out[i].diagnostics.status = analytical::SolveStatus::kFailed;
      out[i].diagnostics.method = "invalid";
      continue;
    }
    const analytical::TrySolveResult& solved = tickets[i].result();
    out[i].diagnostics = solved.diagnostics;
    if (!analytical::usable(solved.diagnostics.status)) continue;
    // utility_rates needs the full per-node vectors (the slot time is a
    // global quantity), so expand, price, and compress back to one entry
    // per class — the representative's value IS the class value, since
    // nodes of a class share tau/p bit-for-bit.
    const analytical::NetworkState full =
        analytical::expand_classes(solved.state, profiles[i]);
    const std::vector<double> u =
        analytical::utility_rates(full, params_, mode_);
    const std::size_t k = profiles[i].class_count();
    out[i].utilities.assign(k, 0.0);
    std::vector<char> seen(k, 0);
    for (std::size_t node = 0; node < profiles[i].node_count(); ++node) {
      const auto c = static_cast<std::size_t>(profiles[i].class_of[node]);
      if (!seen[c]) {
        seen[c] = 1;
        out[i].utilities[c] = u[node] * t_us;
      }
    }
  }
  return out;
}

void StageGame::prefetch_profiles(const std::vector<std::vector<int>>& profiles,
                                  std::optional<double> per_override) const {
  const double per = per_override.value_or(params_.packet_error_rate);
  bool submitted = false;
  for (const std::vector<int>& w : profiles) {
    if (w.empty()) continue;
    solver_.submit(w, params_.max_backoff_stage, per);
    submitted = true;
  }
  if (submitted) solver_.drain();
}

double StageGame::homogeneous_utility_rate(int w, int n) const {
  if (w < 1 || n < 1) {
    throw std::invalid_argument("StageGame: homogeneous w/n out of range");
  }
  const auto key = std::make_pair(w, n);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (const auto it = homogeneous_cache_.find(key);
        it != homogeneous_cache_.end()) {
      return it->second;
    }
  }
  // Solve outside the lock: concurrent misses on the same key may both
  // compute, but the solver is deterministic so they agree.
  const double u = analytical::homogeneous_utility_rate(
      static_cast<double>(w), n, params_, mode_);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  homogeneous_cache_.emplace(key, u);
  return u;
}

double StageGame::homogeneous_stage_utility(int w, int n) const {
  return homogeneous_utility_rate(w, n) * stage_duration_us();
}

double StageGame::social_welfare(int w, int n) const {
  return static_cast<double>(n) * homogeneous_stage_utility(w, n);
}

double StageGame::normalized_global_payoff(int w, int n) const {
  return static_cast<double>(n) * homogeneous_utility_rate(w, n) *
         params_.sigma_us / params_.gain;
}

}  // namespace smac::game
