// Nash-equilibrium computation and refinement for the MAC game (paper §V).
//
// Under TFT all players converge to a common window W_c; Theorem 2 shows
// every common profile with W_c ∈ [W_c0, W_c*] is a NE, where W_c* is the
// stage-utility maximizer and W_c0 the smallest window with positive
// payoff. Refinement by social-welfare maximization / Pareto optimality
// singles out (W_c*, …, W_c*) as the unique efficient NE.
#pragma once

#include <optional>
#include <vector>

#include "game/stage_game.hpp"

namespace smac::game {

/// The interval of symmetric Nash equilibria established by Theorem 2.
struct NashSet {
  int w_min_viable = 0;  ///< W_c0: smallest window with u(W_c0) > 0
  int w_efficient = 0;   ///< W_c*: stage-utility maximizer
  double u_efficient = 0.0;  ///< stage utility at W_c*
  int count() const noexcept { return w_efficient - w_min_viable + 1; }
  bool contains(int w) const noexcept {
    return w >= w_min_viable && w <= w_efficient;
  }
};

/// Outcome of the NE refinement (§V.B): which equilibria survive each
/// criterion.
struct RefinementReport {
  NashSet nash_set;
  /// Every symmetric NE is fair (identical payoffs); kept for the record.
  bool all_fair = true;
  /// The unique social-welfare-maximizing NE (= w_efficient).
  int social_welfare_maximizer = 0;
  /// The unique Pareto-optimal NE (= w_efficient).
  int pareto_optimal = 0;
  /// Payoff loss of the worst surviving-before-refinement NE vs W_c*.
  double worst_ne_efficiency = 0.0;  ///< u(W_c0)/u(W_c*) ∈ (0, 1]
};

/// Computes W_c*, W_c0 and refinement facts for an n-player homogeneous
/// game.
class EquilibriumFinder {
 public:
  /// `game` is captured by reference and must outlive the finder.
  EquilibriumFinder(const StageGame& game, int n);

  int player_count() const noexcept { return n_; }

  /// W_c*: exact discrete argmax of the homogeneous stage utility over
  /// [1, w_max] (unimodal per Lemma 2/3; located by ternary search and
  /// verified by local hill conditions).
  int efficient_cw() const;

  /// W_c* with a warm lower bracket: searches [lo, w_max] instead of
  /// [1, w_max]. Sound when the caller knows W_c* >= lo — W_c*(n) is
  /// nondecreasing in the player count (76/336/879 for n = 5/20/50), so
  /// ascending sweeps over n can chain each result into the next search.
  /// The left edge is verified (u(lo − 1) <= u(lo) must hold for the
  /// bracket to contain the peak); a violated premise falls back to the
  /// full-range search, so the result equals efficient_cw() always.
  int efficient_cw_from(int lo) const;

  /// W_c0: smallest window with strictly positive utility; nullopt when
  /// even w_max yields non-positive payoff (network not viable).
  std::optional<int> minimum_viable_cw() const;

  /// Full NE interval; throws std::runtime_error when not viable.
  NashSet nash_set() const;

  /// Theorem 2 membership test.
  bool is_nash(int w) const;

  /// Continuous benchmark values from Lemma 3 (Q-root).
  std::optional<double> tau_star_continuous() const;
  std::optional<double> w_star_continuous() const;

  /// Refinement per §V.B.
  RefinementReport refine() const;

 private:
  const StageGame& game_;
  int n_;
  mutable std::optional<int> cached_efficient_;
};

}  // namespace smac::game
