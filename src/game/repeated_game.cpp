#include "game/repeated_game.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smac::game {

RepeatedGameEngine::RepeatedGameEngine(
    const StageGame& game, std::vector<std::unique_ptr<Strategy>> strategies)
    : game_(game), strategies_(std::move(strategies)) {
  if (strategies_.empty()) {
    throw std::invalid_argument("RepeatedGameEngine: no strategies");
  }
  for (const auto& s : strategies_) {
    if (!s) throw std::invalid_argument("RepeatedGameEngine: null strategy");
  }
}

RepeatedGameResult RepeatedGameEngine::play(int stages) {
  return play(stages, nullptr);
}

void RepeatedGameEngine::set_observation_filter(
    ObservationFilterConfig config) {
  filter_ = ObservationFilter(config);
}

void RepeatedGameEngine::set_enforcement(
    std::optional<ReactionConfig> config) {
  if (config) {
    // Fail fast on a bad config (including a detector geometry that
    // cannot be built) instead of at the first play().
    ReactionPolicy probe(game_, *config, strategies_.size());
  }
  enforcement_ = std::move(config);
}

RepeatedGameResult RepeatedGameEngine::play(int stages,
                                            fault::FaultInjector* injector) {
  if (stages < 1) throw std::invalid_argument("play: stages < 1");
  const std::size_t n = strategies_.size();
  if (injector && injector->node_count() != n) {
    throw std::invalid_argument(
        "play: injector node_count != player_count");
  }
  const double delta = game_.params().discount;
  // Per-player observed histories only matter when observations can be
  // perturbed, smoothed, or sanitized by enforcement; otherwise every
  // player reads the true trajectory.
  const bool faulted_obs = injector && injector->plan().observation.enabled();
  const bool enforcing = enforcement_.has_value();
  const bool per_view = faulted_obs || filter_.enabled() || enforcing;
  std::optional<ReactionPolicy> police;
  if (enforcing) police.emplace(game_, *enforcement_, n);

  RepeatedGameResult result;
  result.history.reserve(static_cast<std::size_t>(stages));
  result.discounted_utility.assign(n, 0.0);
  result.total_utility.assign(n, 0.0);

  // `observed` holds each player's raw (post-fault) view; when a filter
  // is installed, `smoothed` holds the filtered view the player actually
  // decides on (raw stays the loss-fallback source, matching how a node
  // would remember raw readings and re-filter).
  std::vector<History> observed(per_view ? n : 0);
  std::vector<History> smoothed(per_view && filter_.enabled() ? n : 0);
  History monitor;  ///< enforcement monitor's (possibly faulted) view
  if (enforcing) monitor.reserve(static_cast<std::size_t>(stages));
  std::vector<int> current_cw(n, 1);
  std::vector<double> last_good;  // per-player payoffs of last usable solve

  double discount_k = 1.0;
  for (int k = 0; k < stages; ++k) {
    if (injector) injector->begin_stage(k);

    StageRecord record;
    record.cw.resize(n);
    if (injector) record.online = injector->online_mask();
    for (std::size_t i = 0; i < n; ++i) {
      if (k == 0) {
        current_cw[i] = strategies_[i]->initial_cw();
      } else if (player_online(record, i)) {
        const History& view = !per_view ? result.history
                              : filter_.enabled() ? smoothed[i]
                                                  : observed[i];
        current_cw[i] = strategies_[i]->decide(view, i);
      }  // a crashed player keeps its configured window
      if (current_cw[i] < 1) {
        throw std::runtime_error("RepeatedGameEngine: strategy returned w < 1");
      }
      if (enforcing && police->punishing() && player_online(record, i) &&
          strategies_[i]->follows_enforcement()) {
        current_cw[i] = police->command(i, current_cw[i]);
      }
      record.cw[i] = current_cw[i];
    }
    // Whether stage k's decisions were overridden by an episode — fixed
    // before end_stage below can open or close one.
    const bool punished_stage = enforcing && police->punishing();

    if (!injector) {
      record.utility = game_.stage_utilities(record.cw);
    } else {
      // Solve the stage over the online sub-network at the effective PER.
      std::vector<int> sub;
      std::vector<std::size_t> sub_index;
      sub.reserve(n);
      sub_index.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (player_online(record, i)) {
          sub.push_back(record.cw[i]);
          sub_index.push_back(i);
        }
      }
      record.utility.assign(n, 0.0);
      if (!sub.empty()) {
        const double per =
            injector->effective_per(game_.params().packet_error_rate);
        const StageGame::StagePayoffs payoffs =
            game_.try_stage_utilities(sub, per);
        const analytical::SolveDiagnostics& d = payoffs.diagnostics;
        if (analytical::usable(d.status)) {
          for (std::size_t s = 0; s < sub_index.size(); ++s) {
            record.utility[sub_index[s]] = payoffs.utilities[s];
          }
          last_good = record.utility;
          if (d.status == analytical::SolveStatus::kDegraded) {
            ++result.degradation.degraded_stages;
            result.degradation.incidents.push_back(
                {k, d.status, d.residual, d.retries, false});
          }
        } else {
          // Graceful degradation: keep the trajectory alive on the last
          // payoffs that actually solved (zero before any did).
          for (const std::size_t i : sub_index) {
            record.utility[i] =
                i < last_good.size() ? last_good[i] : 0.0;
          }
          ++result.degradation.failed_stages;
          ++result.degradation.reused_stages;
          result.degradation.incidents.push_back(
              {k, d.status, d.residual, d.retries, true});
        }
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      result.discounted_utility[i] += discount_k * record.utility[i];
      result.total_utility[i] += record.utility[i];
    }
    discount_k *= delta;
    result.history.push_back(std::move(record));

    if (per_view) {
      // Each player's view of this stage: own window exact, opponents'
      // through the observation fault model (fixed i-then-j draw order),
      // then — when a filter is installed — smoothed over the trailing
      // raw observations. Punished stages are sanitized to the agreement
      // window for every online player (the sanction owns the response;
      // without this, TFT-style rules would ratchet on the punishment
      // profile itself and never return to cooperation).
      const StageRecord& truth = result.history.back();
      for (std::size_t i = 0; i < n; ++i) {
        StageRecord view = truth;
        if (faulted_obs) {
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i || !player_online(truth, j)) continue;
            const int fallback =
                k > 0 ? observed[i][static_cast<std::size_t>(k - 1)].cw[j]
                      : truth.cw[j];
            view.cw[j] = injector->observe_cw(truth.cw[j], fallback).cw;
          }
        }
        if (punished_stage) {
          for (std::size_t j = 0; j < n; ++j) {
            if (player_online(truth, j)) view.cw[j] = enforcement_->w_agreed;
          }
        }
        observed[i].push_back(std::move(view));
        if (filter_.enabled()) {
          smoothed[i].push_back(filter_.filter_latest(observed[i], i));
        }
      }
    }

    if (enforcing) {
      // The monitor's own reading of this stage: true windows through the
      // observation fault model, drawn after every player view in a fixed
      // player order so the draw sequence stays deterministic.
      const StageRecord& truth = result.history.back();
      StageRecord mon = truth;
      if (faulted_obs) {
        for (std::size_t j = 0; j < n; ++j) {
          if (!player_online(truth, j)) continue;
          const int fallback =
              monitor.empty() ? truth.cw[j] : monitor.back().cw[j];
          mon.cw[j] = injector->observe_cw(truth.cw[j], fallback).cw;
        }
      }
      monitor.push_back(std::move(mon));
      police->end_stage(monitor.back(), k);
    }
  }

  if (enforcing) result.enforcement = police->report();

  if (injector) {
    result.degradation.stages = stages;
    result.degradation.crash_events = injector->crash_events();
    result.degradation.join_events = injector->join_events();
    result.degradation.lost_observations = injector->lost_observations();
    result.degradation.noisy_observations = injector->noisy_observations();
    result.degradation.last_fault_stage = injector->last_fault_stage();
  }

  // Convergence facts.
  const StageRecord& last = result.history.back();
  const bool homogeneous =
      std::all_of(last.cw.begin(), last.cw.end(),
                  [&](int w) { return w == last.cw.front(); });
  if (homogeneous) result.converged_cw = last.cw.front();

  result.stable_from = stages;
  for (int k = stages; k-- > 0;) {
    if (result.history[static_cast<std::size_t>(k)].cw == last.cw) {
      result.stable_from = k;
    } else {
      break;
    }
  }
  return result;
}

std::vector<std::unique_ptr<Strategy>> make_tft_population(std::size_t n,
                                                           int initial_w) {
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop.push_back(std::make_unique<TitForTat>(initial_w));
  }
  return pop;
}

std::vector<std::unique_ptr<Strategy>> make_gtft_population(std::size_t n,
                                                            int initial_w,
                                                            double beta,
                                                            int r0) {
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop.push_back(std::make_unique<GenerousTitForTat>(initial_w, beta, r0));
  }
  return pop;
}

std::vector<std::unique_ptr<Strategy>> make_contrite_population(
    std::size_t n, int w_coop, int clean_stages) {
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop.push_back(std::make_unique<ContriteTitForTat>(w_coop, clean_stages));
  }
  return pop;
}

std::vector<std::unique_ptr<Strategy>> make_forgiving_gtft_population(
    std::size_t n, int initial_w, double beta, int r0, int trigger_stages,
    int clean_stages) {
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop.push_back(std::make_unique<ForgivingGtft>(initial_w, beta, r0,
                                                  trigger_stages,
                                                  clean_stages));
  }
  return pop;
}

}  // namespace smac::game
