#include "game/repeated_game.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smac::game {

RepeatedGameEngine::RepeatedGameEngine(
    const StageGame& game, std::vector<std::unique_ptr<Strategy>> strategies)
    : game_(game), strategies_(std::move(strategies)) {
  if (strategies_.empty()) {
    throw std::invalid_argument("RepeatedGameEngine: no strategies");
  }
  for (const auto& s : strategies_) {
    if (!s) throw std::invalid_argument("RepeatedGameEngine: null strategy");
  }
}

RepeatedGameResult RepeatedGameEngine::play(int stages) {
  if (stages < 1) throw std::invalid_argument("play: stages < 1");
  const std::size_t n = strategies_.size();
  const double delta = game_.params().discount;

  RepeatedGameResult result;
  result.history.reserve(static_cast<std::size_t>(stages));
  result.discounted_utility.assign(n, 0.0);
  result.total_utility.assign(n, 0.0);

  double discount_k = 1.0;
  for (int k = 0; k < stages; ++k) {
    StageRecord record;
    record.cw.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      record.cw[i] = k == 0 ? strategies_[i]->initial_cw()
                            : strategies_[i]->decide(result.history, i);
      if (record.cw[i] < 1) {
        throw std::runtime_error("RepeatedGameEngine: strategy returned w < 1");
      }
    }
    record.utility = game_.stage_utilities(record.cw);
    for (std::size_t i = 0; i < n; ++i) {
      result.discounted_utility[i] += discount_k * record.utility[i];
      result.total_utility[i] += record.utility[i];
    }
    discount_k *= delta;
    result.history.push_back(std::move(record));
  }

  // Convergence facts.
  const StageRecord& last = result.history.back();
  const bool homogeneous =
      std::all_of(last.cw.begin(), last.cw.end(),
                  [&](int w) { return w == last.cw.front(); });
  if (homogeneous) result.converged_cw = last.cw.front();

  result.stable_from = stages;
  for (int k = stages; k-- > 0;) {
    if (result.history[static_cast<std::size_t>(k)].cw == last.cw) {
      result.stable_from = k;
    } else {
      break;
    }
  }
  return result;
}

std::vector<std::unique_ptr<Strategy>> make_tft_population(std::size_t n,
                                                           int initial_w) {
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop.push_back(std::make_unique<TitForTat>(initial_w));
  }
  return pop;
}

std::vector<std::unique_ptr<Strategy>> make_gtft_population(std::size_t n,
                                                            int initial_w,
                                                            double beta,
                                                            int r0) {
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop.push_back(std::make_unique<GenerousTitForTat>(initial_w, beta, r0));
  }
  return pop;
}

}  // namespace smac::game
