#include "game/rate_game.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analytical/fixed_point_solver.hpp"
#include "game/equilibrium.hpp"
#include "game/stage_game.hpp"
#include "util/optimize.hpp"

namespace smac::game {

RateGame::RateGame(RateGameConfig config) : config_(std::move(config)) {
  config_.params.validate();
  if (config_.n < 2) throw std::invalid_argument("RateGame: n < 2");
  if (config_.bit_error_rate < 0.0 || config_.bit_error_rate >= 1.0) {
    throw std::invalid_argument("RateGame: bit_error_rate outside [0,1)");
  }
  if (!(config_.min_payload_bits > 0.0) ||
      config_.max_payload_bits < config_.min_payload_bits) {
    throw std::invalid_argument("RateGame: bad payload range");
  }
  if (config_.w_common < 0) throw std::invalid_argument("RateGame: w_common < 0");

  if (config_.w_common == 0) {
    const StageGame mac_game(config_.params, config_.mode);
    const EquilibriumFinder finder(mac_game, config_.n);
    w_common_ = finder.efficient_cw();
  } else {
    w_common_ = config_.w_common;
  }

  tau_ = analytical::homogeneous_tau(static_cast<double>(w_common_), config_.n,
                                     config_.params.max_backoff_stage);
  q_slot_ = tau_ * std::pow(1.0 - tau_, config_.n - 1);
  p_idle_ = std::pow(1.0 - tau_, config_.n);
  gain_per_bit_ = config_.params.gain / config_.params.payload_bits;
}

double RateGame::frame_success_us(double payload_bits) const {
  const phy::Parameters& p = config_.params;
  const double h = p.header_us();
  const double data = p.airtime_us(payload_bits);
  switch (config_.mode) {
    case phy::AccessMode::kBasic:
      return h + data + p.sifs_us + p.ack_us() + p.difs_us;
    case phy::AccessMode::kRtsCts:
      return p.rts_us() + p.sifs_us + p.cts_us() + p.sifs_us + h + data +
             p.sifs_us + p.ack_us() + p.difs_us;
  }
  return 0.0;
}

double RateGame::frame_collision_us(double payload_bits) const {
  const phy::Parameters& p = config_.params;
  switch (config_.mode) {
    case phy::AccessMode::kBasic:
      return p.header_us() + p.airtime_us(payload_bits) + p.sifs_us;
    case phy::AccessMode::kRtsCts:
      // RTS/CTS collisions never carry data: length-independent.
      return p.rts_us() + p.difs_us;
  }
  return 0.0;
}

double RateGame::slot_average_us(const std::vector<double>& payload_bits) const {
  const std::size_t n = payload_bits.size();
  const phy::Parameters& p = config_.params;

  // Successes: each node succeeds with the same slot probability q_slot_,
  // occupying its own frame time.
  double success_us = 0.0;
  for (double bits : payload_bits) {
    success_us += q_slot_ * frame_success_us(bits);
  }

  // Collisions: pairwise approximation. P(exactly {i,j} transmit) is equal
  // across pairs; the slot lasts as long as the longer frame.
  const double p_success_total = static_cast<double>(n) * q_slot_;
  const double p_collision = std::max(0.0, 1.0 - p_idle_ - p_success_total);
  double pair_mean_us = 0.0;
  if (n >= 2) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        acc += frame_collision_us(std::max(payload_bits[i], payload_bits[j]));
      }
    }
    pair_mean_us = acc / (static_cast<double>(n) * (n - 1) / 2.0);
  }
  return p_idle_ * p.sigma_us + success_us + p_collision * pair_mean_us;
}

std::vector<double> RateGame::utility_rates(
    const std::vector<double>& payload_bits) const {
  if (payload_bits.size() != static_cast<std::size_t>(config_.n)) {
    throw std::invalid_argument("RateGame: profile size != n");
  }
  for (double bits : payload_bits) {
    if (bits < config_.min_payload_bits || bits > config_.max_payload_bits) {
      throw std::invalid_argument("RateGame: payload outside configured range");
    }
  }
  const double t_slot = slot_average_us(payload_bits);
  const double header_bits =
      config_.params.phy_header_bits + config_.params.mac_header_bits;

  std::vector<double> u(payload_bits.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double ok = std::pow(1.0 - config_.bit_error_rate,
                               payload_bits[i] + header_bits);
    u[i] = (q_slot_ * ok * payload_bits[i] * gain_per_bit_ -
            tau_ * config_.params.cost) /
           t_slot;
  }
  return u;
}

double RateGame::homogeneous_utility_rate(double payload_bits) const {
  return utility_rates(std::vector<double>(
      static_cast<std::size_t>(config_.n), payload_bits))[0];
}

double RateGame::efficient_payload() const {
  const auto r = util::golden_section_max(
      [&](double bits) { return homogeneous_utility_rate(bits); },
      config_.min_payload_bits, config_.max_payload_bits, 1e-3);
  return r.x;
}

double RateGame::best_response(const std::vector<double>& payload_bits,
                               std::size_t self) const {
  if (self >= payload_bits.size()) {
    throw std::invalid_argument("RateGame: self out of range");
  }
  std::vector<double> profile = payload_bits;
  const auto r = util::golden_section_max(
      [&](double bits) {
        profile[self] = bits;
        return utility_rates(profile)[self];
      },
      config_.min_payload_bits, config_.max_payload_bits, 1e-3);
  return r.x;
}

double RateGame::equilibrium_payload(double tolerance, int max_rounds) const {
  // Symmetric fixed point of the best response, seeded at the social
  // optimum; with a common window all players share one best response, so
  // iterating the symmetric profile converges to the symmetric NE.
  double current = efficient_payload();
  std::vector<double> profile(static_cast<std::size_t>(config_.n), current);
  for (int round = 0; round < max_rounds; ++round) {
    const double response = best_response(profile, 0);
    const double step = std::abs(response - current);
    current = response;
    std::fill(profile.begin(), profile.end(), current);
    if (step <= tolerance) break;
  }
  return current;
}

}  // namespace smac::game
