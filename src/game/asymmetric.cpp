#include "game/asymmetric.hpp"

#include <algorithm>
#include <stdexcept>

#include "analytical/fixed_point_solver.hpp"
#include "analytical/throughput.hpp"
#include "util/optimize.hpp"

namespace smac::game {

AsymmetricGame::AsymmetricGame(phy::Parameters params, phy::AccessMode mode,
                               std::vector<PlayerClass> classes)
    : params_(std::move(params)), mode_(mode), classes_(std::move(classes)) {
  params_.validate();
  if (classes_.empty()) {
    throw std::invalid_argument("AsymmetricGame: no classes");
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const PlayerClass& cls = classes_[c];
    if (!(cls.gain > 0.0)) {
      throw std::invalid_argument("AsymmetricGame: gain must be positive");
    }
    if (cls.cost < 0.0) {
      throw std::invalid_argument("AsymmetricGame: cost must be non-negative");
    }
    if (cls.count < 1) {
      throw std::invalid_argument("AsymmetricGame: class count < 1");
    }
    for (int k = 0; k < cls.count; ++k) class_of_.push_back(c);
  }
  if (class_of_.size() < 2) {
    throw std::invalid_argument("AsymmetricGame: need at least 2 players");
  }
}

const PlayerClass& AsymmetricGame::player_class(std::size_t player) const {
  return classes_.at(class_of_.at(player));
}

std::size_t AsymmetricGame::class_index(std::size_t player) const {
  return class_of_.at(player);
}

std::vector<double> AsymmetricGame::utility_rates(
    const std::vector<int>& w) const {
  return utility_rates_warm(w, nullptr);
}

std::vector<double> AsymmetricGame::utility_rates_warm(
    const std::vector<int>& w, std::vector<double>* warm) const {
  if (w.size() != class_of_.size()) {
    throw std::invalid_argument("AsymmetricGame: profile size mismatch");
  }
  for (const int wi : w) {
    if (wi < 1) throw std::invalid_argument("AsymmetricGame: window < 1");
  }
  analytical::SolverOptions opts;
  if (warm) opts.initial_tau = *warm;
  const analytical::TrySolveResult solved =
      analytical::try_solve_network(w, params_.max_backoff_stage, opts);
  const analytical::NetworkState& state = solved.state;
  if (warm && analytical::usable(solved.diagnostics.status)) {
    *warm = state.tau;
  }
  const analytical::ChannelMetrics metrics =
      analytical::channel_metrics(state.tau, params_, mode_);
  std::vector<double> u(w.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const PlayerClass& cls = player_class(i);
    u[i] = state.tau[i] * ((1.0 - state.p[i]) * cls.gain - cls.cost) /
           metrics.t_slot_us;
  }
  return u;
}

double AsymmetricGame::common_window_utility(std::size_t c, int w) const {
  if (c >= classes_.size()) {
    throw std::invalid_argument("AsymmetricGame: class out of range");
  }
  if (w < 1) throw std::invalid_argument("AsymmetricGame: w < 1");
  const int n = static_cast<int>(player_count());
  const analytical::NetworkState state = analytical::solve_network_homogeneous(
      static_cast<double>(w), n, params_.max_backoff_stage);
  const analytical::ChannelMetrics metrics =
      analytical::channel_metrics(state.tau, params_, mode_);
  const PlayerClass& cls = classes_[c];
  return state.tau[0] * ((1.0 - state.p[0]) * cls.gain - cls.cost) /
         metrics.t_slot_us;
}

int AsymmetricGame::preferred_common_window(std::size_t c) const {
  const auto r = util::ternary_int_max(
      [&](std::int64_t w) {
        return common_window_utility(c, static_cast<int>(w));
      },
      1, params_.w_max);
  return static_cast<int>(r.x);
}

int AsymmetricGame::welfare_maximizing_common_window() const {
  const auto r = util::ternary_int_max(
      [&](std::int64_t w) {
        double welfare = 0.0;
        for (std::size_t c = 0; c < classes_.size(); ++c) {
          welfare += classes_[c].count *
                     common_window_utility(c, static_cast<int>(w));
        }
        return welfare;
      },
      1, params_.w_max);
  return static_cast<int>(r.x);
}

int AsymmetricGame::tft_outcome_window() const {
  int w_min = params_.w_max;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    w_min = std::min(w_min, preferred_common_window(c));
  }
  return w_min;
}

int AsymmetricGame::best_response(const std::vector<int>& w,
                                  std::size_t player) const {
  if (player >= class_of_.size()) {
    throw std::invalid_argument("AsymmetricGame: player out of range");
  }
  std::vector<int> profile = w;
  // Chain each candidate's solution into the next solve: the scan moves
  // one player's window while n − 1 stay fixed, so consecutive fixed
  // points are a warm start apart.
  std::vector<double> warm;
  const auto r = util::ternary_int_max(
      [&](std::int64_t candidate) {
        profile[player] = static_cast<int>(candidate);
        return utility_rates_warm(profile, &warm)[player];
      },
      1, params_.w_max);
  return static_cast<int>(r.x);
}

AsymmetricGame::BestResponseResult AsymmetricGame::iterated_best_response(
    std::vector<int> start, int max_rounds) const {
  if (start.size() != class_of_.size()) {
    throw std::invalid_argument("AsymmetricGame: start profile size mismatch");
  }
  BestResponseResult result;
  result.profile = std::move(start);
  for (result.rounds = 1; result.rounds <= max_rounds; ++result.rounds) {
    bool moved = false;
    for (std::size_t i = 0; i < result.profile.size(); ++i) {
      const int response = best_response(result.profile, i);
      if (response != result.profile[i]) {
        result.profile[i] = response;
        moved = true;
      }
    }
    if (!moved) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace smac::game
