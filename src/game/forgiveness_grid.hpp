// The forgiveness grid: the noise × filter × strategy experiment cell
// behind bench_fault_resilience's observation-robustness section.
//
// One cell plays a homogeneous population of one reaction rule (TFT,
// GTFT, Contrite-TFT, Forgiving-GTFT) for a fixed horizon under
// persistent observation faults — false-low window reads being the
// scenario that ratchets plain TFT/GTFT to W = 1 — optionally behind an
// ObservationFilter. The cell runner and the row formatter live in the
// library (not the bench) so tests/parallel can assert that the exact
// strings the bench prints are byte-identical at any jobs fan-out.
//
// Determinism: a cell is a pure function of (game, spec) — the injector
// is seeded from spec.seed, the filter and strategies are stateless, and
// nothing reads thread identity.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/degradation.hpp"
#include "game/observation_filter.hpp"
#include "game/repeated_game.hpp"
#include "game/stage_game.hpp"

namespace smac::game {

/// The reaction rules the grid compares.
enum class ReactionRule { kTft, kGtft, kContriteTft, kForgivingGtft };

const char* to_string(ReactionRule rule) noexcept;

/// A fresh instance of `rule` anchored at `w_coop` (grid defaults:
/// GTFT(0.9, 3), Contrite(k = 3), Forgiving(0.9, 3, trig 2, clean 2)).
std::unique_ptr<Strategy> make_reaction_strategy(ReactionRule rule,
                                                 int w_coop);

/// n independent instances of `rule`.
std::vector<std::unique_ptr<Strategy>> make_reaction_population(
    ReactionRule rule, std::size_t n, int w_coop);

/// One grid cell: which rule, behind which filter, under how much noise.
struct ForgivenessCellSpec {
  ReactionRule rule = ReactionRule::kTft;
  ObservationFilterConfig filter;   ///< kNone = raw observations
  double noise_probability = 0.05;  ///< false window reads per observation
  int noise_magnitude = 4;          ///< read perturbed by up to ±magnitude
  double loss_probability = 0.10;   ///< stale-belief observations
  int players = 6;
  int stages = 120;
  int w_coop = 1;                   ///< cooperative window the cast starts on
  int tail_stages = 40;             ///< averaging window of the tail metric
  std::uint64_t seed = 0;
};

/// What one cell measured.
struct ForgivenessCell {
  std::optional<int> converged_cw;  ///< homogeneous final window, if any
  int final_min_cw = 0;             ///< min window of the last stage
  /// Mean over the last `tail_stages` stages of the per-stage minimum
  /// window — the "where did the population actually live" metric (a
  /// forgiving cast oscillates near W*; a ratcheted one sits at 1).
  double tail_mean_min_cw = 0.0;
  int stable_from = 0;
  fault::DegradationReport report;
};

/// Plays one cell to completion. Throws only on invalid specs; fault and
/// solver trouble degrade gracefully as in RepeatedGameEngine::play.
ForgivenessCell run_forgiveness_cell(const StageGame& game,
                                     const ForgivenessCellSpec& spec);

/// The table row bench_fault_resilience prints for one cell:
/// {noise, filter, strategy, final W, tail mean min W, stable from,
///  noisy obs}. Kept here so the jobs-invariance test compares the very
/// strings the bench emits.
std::vector<std::string> forgiveness_row(const ForgivenessCellSpec& spec,
                                         const ForgivenessCell& cell);

}  // namespace smac::game
