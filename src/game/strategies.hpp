// Player strategies for the repeated MAC game (paper §IV).
//
// A strategy observes the public history — the paper assumes contention
// windows are observable in promiscuous mode (Kyasanur & Vaidya's
// detection technique) — and picks the next stage's window. TFT and GTFT
// are the paper's focus; the remaining strategies implement the deviants
// analyzed in §V.D/§V.E and baselines used in benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace smac::game {

/// One completed stage: the profile played and realized stage payoffs.
struct StageRecord {
  std::vector<int> cw;           ///< contention window of every player
  std::vector<double> utility;   ///< realized stage utility of every player
  /// Fault-aware engines mark crashed players: online[i] == 0 means player
  /// i was down this stage (its cw carries its last configuration but it
  /// did not transmit and must not drive TFT matching). Empty — the
  /// default, and the only state fault-free engines produce — means every
  /// player was online.
  std::vector<std::uint8_t> online;
};

/// Whether player i was online in `record` (empty mask = all online).
bool player_online(const StageRecord& record, std::size_t i);

/// Public history of the repeated game, oldest stage first.
using History = std::vector<StageRecord>;

/// Decision rule of one player.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Window played in stage 0 (TFT "starts cooperative").
  virtual int initial_cw() const = 0;

  /// Window for the next stage given the full public history; `self` is
  /// this player's index into each StageRecord.
  virtual int decide(const History& history, std::size_t self) = 0;

  /// Short display name ("tft", "gtft(0.9,3)", …).
  virtual std::string name() const = 0;

  /// Whether this player's node runs the enforcement protocol (see
  /// game/reaction.hpp): compliant firmware obeys punishment commands and
  /// has its in-episode observations sanitized. The deviants (§V.D/§V.E)
  /// and fixed-window baselines return false — enforcement is exactly the
  /// thing they ignore.
  virtual bool follows_enforcement() const { return true; }
};

/// Plays a fixed window forever. Baseline, and the §V.E malicious player
/// when configured with a very small window.
class ConstantStrategy final : public Strategy {
 public:
  explicit ConstantStrategy(int w);
  int initial_cw() const override { return w_; }
  int decide(const History&, std::size_t) override { return w_; }
  std::string name() const override;
  bool follows_enforcement() const override { return false; }

 private:
  int w_;
};

/// TIT-FOR-TAT: cooperate first, then match the most aggressive opponent:
/// W_i^k = min_j W_j^{k−1} (paper §IV).
class TitForTat final : public Strategy {
 public:
  explicit TitForTat(int initial_w);
  int initial_cw() const override { return initial_w_; }
  int decide(const History& history, std::size_t self) override;
  std::string name() const override { return "tft"; }

 private:
  int initial_w_;
};

/// Generous TFT (paper §IV): averages windows over the last r0 stages and
/// only reacts when some player's average is below β times its own;
/// otherwise it keeps its current window. β < 1 close to 1; larger r0 or
/// smaller β = more tolerant.
class GenerousTitForTat final : public Strategy {
 public:
  GenerousTitForTat(int initial_w, double beta, int window_stages);
  int initial_cw() const override { return initial_w_; }
  int decide(const History& history, std::size_t self) override;
  std::string name() const override;

  double beta() const noexcept { return beta_; }
  int window_stages() const noexcept { return r0_; }

 private:
  int initial_w_;
  double beta_;
  int r0_;
};

/// §V.D short-sighted deviant: plays W_s (< W_c*) from the first stage and
/// never adapts — it discounts the future too heavily to care about the
/// TFT retaliation it provokes.
class ShortSightedStrategy final : public Strategy {
 public:
  explicit ShortSightedStrategy(int w_s);
  int initial_cw() const override { return w_s_; }
  int decide(const History&, std::size_t) override { return w_s_; }
  std::string name() const override;
  bool follows_enforcement() const override { return false; }

 private:
  int w_s_;
};

/// §V.E malicious player: cooperates at W_coop until `attack_stage`, then
/// drops to W_attack to drag the whole network down via TFT contagion.
class MaliciousStrategy final : public Strategy {
 public:
  MaliciousStrategy(int w_coop, int w_attack, int attack_stage);
  int initial_cw() const override;
  int decide(const History& history, std::size_t self) override;
  std::string name() const override;
  bool follows_enforcement() const override { return false; }

 private:
  int w_coop_;
  int w_attack_;
  int attack_stage_;
};

/// Contrite TFT (robustness extension of §IV, after Boyd's "contrite"
/// repair of TFT in noisy games): punishes like TFT — any online opponent
/// observed below its *standing reference* (the smallest window it
/// played over the last few stages) is matched — but once `clean_stages`
/// consecutive stages pass with nobody below that reference, it drifts
/// back up toward its cooperative window, halving the remaining gap each
/// stage. The trailing-minimum reference is the standing notion: a player
/// that just forgave upward must not punish laggards still at the old
/// common level — nor beliefs a few stages stale under observation loss —
/// or desynchronized forgiveness self-destructs. A false-low
/// observation therefore costs a bounded punishment episode instead of
/// TFT's permanent W = 1 ratchet. decide() is a pure function of
/// (history, self): no internal state.
class ContriteTitForTat final : public Strategy {
 public:
  ContriteTitForTat(int w_coop, int clean_stages);
  int initial_cw() const override { return w_coop_; }
  int decide(const History& history, std::size_t self) override;
  std::string name() const override;  // "contrite-tft(w=19,k=3)"

  int cooperative_cw() const noexcept { return w_coop_; }
  int clean_stages() const noexcept { return k_; }

 private:
  int w_coop_;
  int k_;
};

/// Forgiving GTFT: GTFT whose punishment trigger must hold on the
/// r0-stage *averaged* windows for `trigger_stages` consecutive stages
/// before it reacts (one noisy stage can never fire it), and which
/// relaxes upward toward its cooperative window after `clean_stages`
/// consecutive untriggered stages — the upward branch plain GTFT lacks.
/// The trigger compares opponents' averages against β times the smaller
/// of the own r0-average and the own standing reference (minimum window
/// played over the last few stages), so neither its own punishment nor
/// its own upward drift reads as opponents turning aggressive. decide()
/// is a pure function of (history, self).
class ForgivingGtft final : public Strategy {
 public:
  ForgivingGtft(int initial_w, double beta, int window_stages,
                int trigger_stages, int clean_stages);
  int initial_cw() const override { return initial_w_; }
  int decide(const History& history, std::size_t self) override;
  /// "forgiving-gtft(beta=0.9,r0=3,trig=2,clean=2)"
  std::string name() const override;

  double beta() const noexcept { return beta_; }
  int window_stages() const noexcept { return r0_; }
  int trigger_stages() const noexcept { return trigger_; }
  int clean_stages() const noexcept { return clean_; }

  /// Whether the GTFT trigger condition (some online opponent's r0-stage
  /// average below beta × own average) holds at history stage `stage`.
  /// Exposed so tests can pin the trigger semantics independently.
  bool triggered_at(const History& history, std::size_t self,
                    std::size_t stage) const;

 private:
  int initial_w_;
  double beta_;
  int r0_;
  int trigger_;
  int clean_;
};

/// Myopic best response: each stage plays the window maximizing its own
/// *stage* utility against the opponents' last profile. Used as the
/// "everyone short-sighted" baseline that reproduces the network-collapse
/// results of Cagalj et al. (paper §VIII discussion).
class MyopicBestResponse final : public Strategy {
 public:
  /// The response is computed against an evaluation oracle supplied by the
  /// runtime (analytical stage game); `w_max` bounds the search.
  using Oracle = std::function<double(const std::vector<int>& profile,
                                      std::size_t self)>;
  MyopicBestResponse(int initial_w, int w_max, Oracle oracle);
  int initial_cw() const override { return initial_w_; }
  int decide(const History& history, std::size_t self) override;
  std::string name() const override { return "myopic-br"; }
  bool follows_enforcement() const override { return false; }

 private:
  int initial_w_;
  int w_max_;
  Oracle oracle_;
};

/// Convenience: the minimum window across one stage record's *online*
/// players (all players when the online mask is empty; falls back to the
/// full profile if every player is marked down).
int min_cw(const StageRecord& record);

/// Minimum window across the *online opponents* of player `self`; falls
/// back to self's own window when no opponent is online (no evidence of
/// aggression). The quantity the forgiving strategies react to.
int opponent_min_cw(const StageRecord& record, std::size_t self);

/// One upward forgiveness step: halves the remaining gap to `target`
/// (always by at least 1, never past target). Monotone non-decreasing in
/// `own` with fixed point `target`, so a clean streak drives any window
/// back to the cooperative one in O(log(target − own)) stages.
int forgive_step(int own, int target) noexcept;

}  // namespace smac::game
