#include "game/forgiveness_grid.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "util/table.hpp"

namespace smac::game {

const char* to_string(ReactionRule rule) noexcept {
  switch (rule) {
    case ReactionRule::kTft:
      return "tft";
    case ReactionRule::kGtft:
      return "gtft";
    case ReactionRule::kContriteTft:
      return "contrite-tft";
    case ReactionRule::kForgivingGtft:
      return "forgiving-gtft";
  }
  return "?";
}

std::unique_ptr<Strategy> make_reaction_strategy(ReactionRule rule,
                                                 int w_coop) {
  switch (rule) {
    case ReactionRule::kTft:
      return std::make_unique<TitForTat>(w_coop);
    case ReactionRule::kGtft:
      return std::make_unique<GenerousTitForTat>(w_coop, 0.9, 3);
    case ReactionRule::kContriteTft:
      return std::make_unique<ContriteTitForTat>(w_coop, 3);
    case ReactionRule::kForgivingGtft:
      return std::make_unique<ForgivingGtft>(w_coop, 0.9, 3, 2, 2);
  }
  throw std::invalid_argument("make_reaction_strategy: unknown rule");
}

std::vector<std::unique_ptr<Strategy>> make_reaction_population(
    ReactionRule rule, std::size_t n, int w_coop) {
  std::vector<std::unique_ptr<Strategy>> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop.push_back(make_reaction_strategy(rule, w_coop));
  }
  return pop;
}

ForgivenessCell run_forgiveness_cell(const StageGame& game,
                                     const ForgivenessCellSpec& spec) {
  if (spec.players < 2) {
    throw std::invalid_argument("forgiveness cell: players < 2");
  }
  if (spec.stages < 1 || spec.tail_stages < 1) {
    throw std::invalid_argument("forgiveness cell: stages < 1");
  }
  fault::FaultPlan plan;
  plan.observation.loss_probability = spec.loss_probability;
  plan.observation.noise_probability = spec.noise_probability;
  plan.observation.noise_magnitude = spec.noise_magnitude;
  fault::FaultInjector injector(plan,
                                static_cast<std::size_t>(spec.players),
                                spec.seed);
  RepeatedGameEngine engine(
      game, make_reaction_population(spec.rule,
                                     static_cast<std::size_t>(spec.players),
                                     spec.w_coop));
  engine.set_observation_filter(spec.filter);
  const RepeatedGameResult result = engine.play(spec.stages, &injector);

  ForgivenessCell cell;
  cell.converged_cw = result.converged_cw;
  cell.stable_from = result.stable_from;
  cell.report = result.degradation;
  cell.final_min_cw = min_cw(result.history.back());
  const int tail =
      std::min(spec.tail_stages, static_cast<int>(result.history.size()));
  double sum = 0.0;
  for (std::size_t s = result.history.size() - static_cast<std::size_t>(tail);
       s < result.history.size(); ++s) {
    sum += static_cast<double>(min_cw(result.history[s]));
  }
  cell.tail_mean_min_cw = sum / static_cast<double>(tail);
  return cell;
}

std::vector<std::string> forgiveness_row(const ForgivenessCellSpec& spec,
                                         const ForgivenessCell& cell) {
  return {util::fmt_percent(spec.noise_probability, 0),
          spec.filter.name(),
          to_string(spec.rule),
          cell.converged_cw ? std::to_string(*cell.converged_cw) : "mixed",
          std::to_string(cell.final_min_cw),
          util::fmt_double(cell.tail_mean_min_cw, 1),
          std::to_string(cell.stable_from),
          std::to_string(cell.report.noisy_observations)};
}

}  // namespace smac::game
