#include "game/reaction.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace smac::game {

void ReactionConfig::validate() const {
  if (!detector.valid()) {
    throw std::invalid_argument("ReactionConfig: invalid detector config");
  }
  if (w_agreed < 1) {
    throw std::invalid_argument("ReactionConfig: w_agreed < 1");
  }
  if (max_stage < 0) {
    throw std::invalid_argument("ReactionConfig: max_stage < 0");
  }
  monitor_filter.validate();
  if (min_punishment_stages < 1 ||
      max_punishment_stages < min_punishment_stages) {
    throw std::invalid_argument("ReactionConfig: bad punishment bounds");
  }
  if (!(penalty_margin > 0.0) || !std::isfinite(penalty_margin)) {
    throw std::invalid_argument("ReactionConfig: bad penalty_margin");
  }
  if (punishment_w < 1 || punishment_w > w_agreed) {
    throw std::invalid_argument("ReactionConfig: bad punishment_w");
  }
}

std::string EnforcementReport::summary() const {
  if (!any()) return "clean";
  std::ostringstream out;
  out << "flags=" << flags_raised << " episodes=" << episodes
      << " punished=" << punished_stages << " rehabs=" << rehabilitations
      << " first@" << first_flag_stage;
  return out.str();
}

namespace {

sim::OnlineDetector make_monitor(const ReactionConfig& config,
                                 std::size_t players) {
  config.validate();
  if (players < 2) {
    throw std::invalid_argument("ReactionPolicy: players < 2");
  }
  return sim::OnlineDetector(config.detector, config.w_agreed,
                             static_cast<int>(players), config.max_stage,
                             players);
}

}  // namespace

ReactionPolicy::ReactionPolicy(const StageGame& game,
                               const ReactionConfig& config,
                               std::size_t players)
    : game_(game),
      config_(config),
      detector_(make_monitor(config, players)),
      filter_(config.monitor_filter),
      series_(players) {}

std::size_t ReactionPolicy::offender() const {
  if (!episode_) throw std::logic_error("ReactionPolicy: no episode");
  return episode_->offender;
}

int ReactionPolicy::punishment_window() const {
  if (!episode_) throw std::logic_error("ReactionPolicy: no episode");
  return episode_->w_punish;
}

int ReactionPolicy::command(std::size_t player, int decided) const {
  if (!episode_) return decided;
  return player == episode_->offender ? config_.w_agreed
                                      : episode_->w_punish;
}

void ReactionPolicy::end_stage(const StageRecord& observed, int stage) {
  if (observed.cw.size() != series_.size()) {
    throw std::invalid_argument(
        "ReactionPolicy::end_stage: record size != players");
  }
  if (episode_) {
    ++report_.punished_stages;
    // Keep only the offender's belief series fresh during the episode:
    // everyone else is playing a commanded window, and feeding commanded
    // values to the series would corrupt the next episode's ŵ estimate
    // (and, with a monitor filter, poison post-episode detection).
    const std::size_t o = episode_->offender;
    if (player_online(observed, o)) {
      series_[o].push_back(observed.cw[o]);
    }
    if (--episode_->remaining == 0) {
      detector_.rehabilitate(episode_->offender);
      ++report_.rehabilitations;
      episode_.reset();
    }
    return;
  }

  for (std::size_t j = 0; j < series_.size(); ++j) {
    if (!player_online(observed, j)) continue;
    series_[j].push_back(observed.cw[j]);
    const int w_read =
        filter_.enabled() ? filter_.smooth(series_[j]) : observed.cw[j];
    detector_.try_observe_window(j, w_read);
  }
  report_.flags_raised = detector_.flags_raised();

  // Highest-evidence flagged player first; the rest stay latched and get
  // their episode after this one's rehabilitation.
  std::optional<std::size_t> worst;
  for (std::size_t j = 0; j < series_.size(); ++j) {
    const auto& v = detector_.verdict(j);
    if (!v.flagged) continue;
    if (!worst || v.evidence > detector_.verdict(*worst).evidence) {
      worst = j;
    }
  }
  if (worst) open_episode(*worst, stage + 1);
}

void ReactionPolicy::open_episode(std::size_t offender, int first_stage) {
  const auto& verdict = detector_.verdict(offender);
  if (report_.first_flag_stage < 0) {
    report_.first_flag_stage = first_stage - 1;
  }

  // ŵ: the monitor's estimate of the offender's operating window.
  const std::vector<int>& s = series_[offender];
  const int w_observed = s.empty() ? config_.w_agreed
                         : filter_.enabled() ? filter_.smooth(s)
                                             : s.back();
  const int w_dev = std::max(1, w_observed);
  const int w_punish = std::min(config_.punishment_w, config_.w_agreed);

  // Calibration: what did the deviant gain per stage, and what does a
  // punished stage cost *it* (the deviant keeps ŵ; the crowd jams)? One
  // batched submission covers the three asymmetric what-if profiles.
  const std::size_t n = series_.size();
  std::vector<std::vector<int>> profiles(3);
  profiles[0].assign(n, config_.w_agreed);            // all-compliant
  profiles[1].assign(n, config_.w_agreed);            // deviant vs crowd
  profiles[1][0] = w_dev;
  profiles[2].assign(n, w_punish);                    // deviant vs jammers
  profiles[2][0] = w_dev;
  const auto what_if = game_.try_stage_utilities_batch(profiles);

  double gain = 0.0;
  double loss = 0.0;
  const bool solved =
      analytical::usable(what_if[0].diagnostics.status) &&
      analytical::usable(what_if[1].diagnostics.status) &&
      analytical::usable(what_if[2].diagnostics.status);
  if (solved) {
    const double u_base = what_if[0].utilities[0];
    gain = what_if[1].utilities[0] - u_base;
    loss = u_base - what_if[2].utilities[0];
  }

  // Episode length makes the deviant's loss repay margin × (per-stage
  // gain × undetected stages). A false flag has gain ≈ 0 (ŵ ≈ W_agreed)
  // and lands on the minimum.
  int length = config_.min_punishment_stages;
  if (gain > 0.0 && loss > 0.0) {
    const double stages_deviated =
        std::max(1, verdict.suspect_streak);
    const double repay =
        std::ceil(config_.penalty_margin * gain * stages_deviated / loss);
    length = std::clamp(static_cast<int>(repay),
                        config_.min_punishment_stages,
                        config_.max_punishment_stages);
  }

  episode_ = ActiveEpisode{offender, length, w_punish};
  ++report_.episodes;
  report_.history.push_back(
      {offender, first_stage, length, w_punish, gain, loss});
}

}  // namespace smac::game
