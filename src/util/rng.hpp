// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the library (simulators, mobility models,
// strategy noise) draw from util::Rng so that every experiment is exactly
// reproducible from its seed. The generator is xoshiro256** (Blackman &
// Vigna), which is small, fast, and has no observable statistical defects
// at the scales used here.
//
// Determinism contract (shared with src/parallel/replication.hpp):
//
//   * An Rng's output sequence is a pure function of its seed — no
//     global state, no time, no thread identity enters anywhere.
//   * Rng is deliberately UNSYNCHRONIZED. No component may share one
//     Rng instance across threads: concurrent draws would interleave in
//     scheduler order and destroy reproducibility (besides being a data
//     race). Each thread of work owns its own Rng.
//   * Parallel work derives independent streams either with split()/
//     jump() (sequential derivation from one generator) or — preferred
//     for replication fan-out — with parallel::stream_seed(base, index),
//     which is O(1) random access and independent of derivation order.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace smac::util {

/// xoshiro256** pseudo-random generator with SplitMix64 seeding.
///
/// Satisfies the std UniformRandomBitGenerator requirements, so it can be
/// plugged into <random> distributions, but the member helpers below are
/// preferred: they are stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  /// bound must be > 0.
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Poisson-distributed count with the given mean (>= 0). Knuth's method
  /// below mean 30, normal approximation (rounded, clamped at 0) above.
  std::uint64_t poisson(double mean) noexcept;

  /// Jump function: advances the state by 2^128 steps. Use to derive
  /// independent parallel streams from one seed.
  void jump() noexcept;

  /// Returns a new generator whose stream is 2^128 steps ahead; `this`
  /// is also advanced, so repeated calls yield disjoint streams.
  Rng split() noexcept;

 private:
  std::uint64_t next() noexcept;
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace smac::util
