// Scalar root finding: bisection and Brent's method.
//
// Used to solve the paper's Q(τ_c) = 0 condition (Lemma 3) and the
// τ(W, p) / p(τ) coupling in the homogeneous Bianchi model.
#pragma once

#include <functional>
#include <optional>

namespace smac::util {

struct RootResult {
  double x = 0.0;        ///< located root
  double fx = 0.0;       ///< residual f(x)
  int iterations = 0;    ///< iterations consumed
  bool converged = false;
};

struct RootOptions {
  double x_tol = 1e-12;   ///< absolute tolerance on the bracket width
  double f_tol = 1e-12;   ///< absolute tolerance on |f(x)|
  int max_iterations = 200;
};

/// Bisection on [lo, hi]. Requires f(lo) and f(hi) of opposite sign
/// (a zero endpoint is returned immediately). Returns nullopt when the
/// bracket is invalid.
std::optional<RootResult> bisect(const std::function<double(double)>& f,
                                 double lo, double hi,
                                 const RootOptions& opts = {});

/// Brent's method (inverse quadratic interpolation + secant + bisection)
/// on [lo, hi]; same bracketing contract as bisect(), faster convergence.
std::optional<RootResult> brent(const std::function<double(double)>& f,
                                double lo, double hi,
                                const RootOptions& opts = {});

/// Expands/scans [lo, hi] in `steps` uniform pieces and returns the first
/// sub-interval with a sign change, usable as a bracket for brent/bisect.
std::optional<std::pair<double, double>> find_bracket(
    const std::function<double(double)>& f, double lo, double hi,
    int steps = 64);

}  // namespace smac::util
