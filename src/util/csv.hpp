// Minimal CSV writer for exporting benchmark series (figure data).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace smac::util {

/// Writes rows of doubles with a string header to a CSV file.
/// Throws std::runtime_error when the file cannot be opened.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void add_row(const std::vector<double>& row);
  std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Escapes a string cell per RFC 4180 (quotes when needed).
std::string csv_escape(const std::string& cell);

}  // namespace smac::util
