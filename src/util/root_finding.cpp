#include "util/root_finding.hpp"

#include <algorithm>
#include <cmath>

namespace smac::util {

namespace {
bool opposite_signs(double a, double b) noexcept {
  return (a < 0.0 && b > 0.0) || (a > 0.0 && b < 0.0);
}
}  // namespace

std::optional<RootResult> bisect(const std::function<double(double)>& f,
                                 double lo, double hi,
                                 const RootOptions& opts) {
  if (!(lo < hi)) return std::nullopt;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return RootResult{lo, 0.0, 0, true};
  if (fhi == 0.0) return RootResult{hi, 0.0, 0, true};
  if (!opposite_signs(flo, fhi)) return std::nullopt;

  RootResult res;
  for (res.iterations = 1; res.iterations <= opts.max_iterations;
       ++res.iterations) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    res.x = mid;
    res.fx = fmid;
    if (std::abs(fmid) <= opts.f_tol || (hi - lo) * 0.5 <= opts.x_tol) {
      res.converged = true;
      return res;
    }
    if (opposite_signs(flo, fmid)) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return res;  // not converged; best effort
}

std::optional<RootResult> brent(const std::function<double(double)>& f,
                                double lo, double hi,
                                const RootOptions& opts) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return RootResult{a, 0.0, 0, true};
  if (fb == 0.0) return RootResult{b, 0.0, 0, true};
  if (!opposite_signs(fa, fb)) return std::nullopt;

  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  bool mflag = true;
  double d = 0.0;

  RootResult res;
  for (res.iterations = 1; res.iterations <= opts.max_iterations;
       ++res.iterations) {
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }

    const double mid = 0.5 * (a + b);
    const bool between = (s > std::min(mid, b) && s < std::max(mid, b));
    const bool cond2 = mflag && std::abs(s - b) >= std::abs(b - c) * 0.5;
    const bool cond3 = !mflag && std::abs(s - b) >= std::abs(c - d) * 0.5;
    const bool cond4 = mflag && std::abs(b - c) < opts.x_tol;
    const bool cond5 = !mflag && std::abs(c - d) < opts.x_tol;
    if (!between || cond2 || cond3 || cond4 || cond5) {
      s = mid;
      mflag = true;
    } else {
      mflag = false;
    }

    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (opposite_signs(fa, fs)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }

    res.x = b;
    res.fx = fb;
    if (std::abs(fb) <= opts.f_tol || std::abs(b - a) <= opts.x_tol) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

std::optional<std::pair<double, double>> find_bracket(
    const std::function<double(double)>& f, double lo, double hi, int steps) {
  if (!(lo < hi) || steps < 1) return std::nullopt;
  const double h = (hi - lo) / steps;
  double x0 = lo;
  double f0 = f(x0);
  for (int i = 1; i <= steps; ++i) {
    const double x1 = lo + h * i;
    const double f1 = f(x1);
    if (f0 == 0.0) return std::make_pair(x0, x0);
    if (opposite_signs(f0, f1)) return std::make_pair(x0, x1);
    x0 = x1;
    f0 = f1;
  }
  return std::nullopt;
}

}  // namespace smac::util
