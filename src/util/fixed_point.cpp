#include "util/fixed_point.hpp"

#include <cmath>
#include <stdexcept>

namespace smac::util {

FixedPointResult solve_fixed_point(
    const std::function<std::vector<double>(const std::vector<double>&)>& F,
    std::vector<double> x0, const FixedPointOptions& opts) {
  if (opts.damping < 0.0 || opts.damping >= 1.0) {
    throw std::invalid_argument("solve_fixed_point: damping must be in [0,1)");
  }
  FixedPointResult res;
  res.x = std::move(x0);
  for (res.iterations = 1; res.iterations <= opts.max_iterations;
       ++res.iterations) {
    const std::vector<double> fx = F(res.x);
    if (fx.size() != res.x.size()) {
      throw std::invalid_argument("solve_fixed_point: F changed dimension");
    }
    double step = 0.0;
    for (std::size_t i = 0; i < res.x.size(); ++i) {
      const double next = (1.0 - opts.damping) * fx[i] + opts.damping * res.x[i];
      step = std::max(step, std::abs(next - res.x[i]));
      res.x[i] = next;
    }
    res.residual = step;
    if (step <= opts.tolerance) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

}  // namespace smac::util
