// 1-D maximization utilities for unimodal objectives.
//
// The stage utility u(W) of the homogeneous MAC game is unimodal in the
// common contention window (Lemma 2/3 of the paper), so golden-section
// search over the continuous relaxation and integer hill climbing over the
// discrete strategy set both locate the efficient NE W_c*.
#pragma once

#include <cstdint>
#include <functional>

namespace smac::util {

struct MaximizeResult {
  double x = 0.0;    ///< argmax
  double fx = 0.0;   ///< maximum value
  int evaluations = 0;
  bool converged = false;
};

struct IntMaximizeResult {
  std::int64_t x = 0;  ///< argmax over the integer grid
  double fx = 0.0;
  int evaluations = 0;
};

/// Golden-section search maximizing a unimodal f over [lo, hi].
MaximizeResult golden_section_max(const std::function<double(double)>& f,
                                  double lo, double hi, double x_tol = 1e-10,
                                  int max_iterations = 200);

/// Exact maximization of f over the integers {lo, …, hi} for a unimodal f,
/// by ternary search on the integer lattice. Falls back correctly to flat
/// regions (returns the smallest argmax among equals it encounters).
IntMaximizeResult ternary_int_max(
    const std::function<double(std::int64_t)>& f, std::int64_t lo,
    std::int64_t hi);

/// Exhaustive integer argmax over {lo, …, hi}; O(hi-lo) evaluations, no
/// unimodality assumption. Use for validation and small ranges.
IntMaximizeResult exhaustive_int_max(
    const std::function<double(std::int64_t)>& f, std::int64_t lo,
    std::int64_t hi);

/// Hill climb from a starting point on the integer grid: steps by ±1 while
/// the objective improves. For unimodal f this finds the global argmax.
/// Mirrors the paper's Right-Search/Left-Search protocol (§V.C).
IntMaximizeResult hill_climb_int_max(
    const std::function<double(std::int64_t)>& f, std::int64_t start,
    std::int64_t lo, std::int64_t hi);

}  // namespace smac::util
