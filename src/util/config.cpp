#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace smac::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::pair<std::string, std::string> split_entry(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("Config: token without '=': " + token);
  }
  const std::string key = trim(token.substr(0, eq));
  if (key.empty()) {
    throw std::invalid_argument("Config: empty key in: " + token);
  }
  return {key, trim(token.substr(eq + 1))};
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const auto [key, value] = split_entry(argv[i]);
    config.values_[key] = value;
  }
  return config;
}

Config Config::from_string(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const auto [key, value] = split_entry(stripped);
    config.values_[key] = value;
  }
  return config;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_string(buffer.str());
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

void Config::set(const std::string& key, const std::string& value) {
  if (key.empty()) throw std::invalid_argument("Config::set: empty key");
  values_[key] = value;
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(*value, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("Config: key '" + key +
                                "' is not a number: " + *value);
  }
  if (consumed != value->size()) {
    throw std::invalid_argument("Config: key '" + key +
                                "' has trailing junk: " + *value);
  }
  return out;
}

int Config::get_int(const std::string& key, int fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  std::size_t consumed = 0;
  long out = 0;
  try {
    out = std::stol(*value, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("Config: key '" + key +
                                "' is not an integer: " + *value);
  }
  if (consumed != value->size()) {
    throw std::invalid_argument("Config: key '" + key +
                                "' has trailing junk: " + *value);
  }
  if (out < std::numeric_limits<int>::min() ||
      out > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("Config: key '" + key +
                                "' out of int range: " + *value);
  }
  return static_cast<int>(out);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  std::string lower = *value;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  throw std::invalid_argument("Config: key '" + key +
                              "' is not a boolean: " + *value);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

}  // namespace smac::util
