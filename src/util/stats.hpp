// Online statistics used throughout simulations and benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace smac::util {

/// Welford-style single-pass accumulator for mean / variance / extrema.
/// Numerically stable; O(1) per sample, O(1) memory.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of the normal-approximation confidence interval around the
  /// mean, e.g. z = 1.96 for 95%. Returns 0 for fewer than 2 samples.
  double ci_halfwidth(double z = 1.96) const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); samples outside are clamped into the
/// first/last bin and counted as underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_lower(std::size_t i) const noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Value below which `q` (in [0,1]) of the mass lies, interpolated within
  /// the containing bin. Returns lo for an empty histogram.
  double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Quantile (inverse CDF) of the standard normal distribution, via
/// Acklam's rational approximation (|error| < 1.15e-9). p must lie in
/// (0, 1); throws std::invalid_argument otherwise.
double normal_quantile(double p);

/// Standard normal CDF Φ(z) (via erfc).
double normal_cdf(double z) noexcept;

/// Jain's fairness index of a set of non-negative allocations:
/// (sum x)^2 / (n * sum x^2). 1 = perfectly fair, 1/n = maximally unfair.
/// Returns 1.0 for empty or all-zero input (vacuously fair).
double jain_fairness(const std::vector<double>& xs) noexcept;

/// Across-replication aggregate of one named metric (parallel Monte-Carlo
/// batches: one sample per replication).
struct MetricSummary {
  std::string name;
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Column-wise aggregation of replication rows: rows[r][m] is metric m of
/// replication r, named names[m]. Rows are consumed in index order, so for
/// a fixed set of rows the output is bit-identical regardless of how the
/// rows were produced (this is the aggregation half of the parallel
/// determinism contract — see src/parallel/replication.hpp). Throws
/// std::invalid_argument when a row's width differs from names.size().
std::vector<MetricSummary> summarize_replications(
    const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& rows);

/// Snapshot of per-metric accumulators into MetricSummary records. The
/// streaming counterpart of summarize_replications: a caller that feeds
/// rows into per-metric RunningStats in index order (RunningStats::add per
/// element) produces bit-identical summaries to buffering the rows and
/// calling summarize_replications, because both execute the same sequence
/// of floating-point operations. Throws std::invalid_argument when
/// acc.size() != names.size().
std::vector<MetricSummary> summaries_from_stats(
    const std::vector<std::string>& names,
    const std::vector<RunningStats>& acc);

/// Renders summaries as a text table: metric, n, mean, stddev, 95% CI,
/// min, max.
std::string format_metric_summaries(const std::vector<MetricSummary>& metrics,
                                    int precision = 4);

/// Sample mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& xs) noexcept;

/// Unbiased sample variance of a vector (0 for fewer than 2 elements).
double variance_of(const std::vector<double>& xs) noexcept;

}  // namespace smac::util
