#include "util/csv.hpp"

#include <stdexcept>

namespace smac::util {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (columns_ == 0) throw std::invalid_argument("CsvWriter: empty header");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& row) {
  if (row.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width != header width");
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ << ',';
    out_ << row[i];
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace smac::util
