// Leveled logging with a process-global threshold.
//
// The simulators emit trace/debug detail (per-slot channel outcomes, stage
// transitions); benchmarks run with the default Info threshold so that
// output stays comparable to the paper's tables.
#pragma once

#include <sstream>
#include <string>

namespace smac::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets/returns the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Converts a level to its fixed-width tag, e.g. "INFO ".
const char* log_level_tag(LogLevel level) noexcept;

/// Writes one formatted line to stderr if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Stream-style builder used by the SMAC_LOG macro; flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace smac::util

// Usage: SMAC_LOG(kInfo) << "converged after " << k << " stages";
#define SMAC_LOG(level) \
  ::smac::util::detail::LogLine(::smac::util::LogLevel::level)
