// Key-value configuration for examples and experiment harnesses.
//
// Accepts `key=value` tokens from the command line or newline-separated
// files (# comments). Typed getters parse on access and throw
// std::invalid_argument with the offending key on malformed values, so
// misconfigured experiments fail loudly instead of running with silently
// defaulted parameters.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace smac::util {

class Config {
 public:
  Config() = default;

  /// Parses argv[1..] as key=value tokens. Throws on tokens without '='
  /// or with an empty key.
  static Config from_args(int argc, const char* const* argv);

  /// Parses newline-separated key=value text; blank lines and lines
  /// starting with '#' are ignored; inline whitespace around keys and
  /// values is trimmed.
  static Config from_string(const std::string& text);

  /// Reads and parses a file; throws std::runtime_error when unreadable.
  static Config from_file(const std::string& path);

  bool has(const std::string& key) const;
  void set(const std::string& key, const std::string& value);

  /// Raw access; nullopt when absent.
  std::optional<std::string> raw(const std::string& key) const;

  /// Typed getters: return `fallback` when the key is absent; throw
  /// std::invalid_argument when present but unparsable.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  int get_int(const std::string& key, int fallback) const;
  /// Accepts true/false/1/0/yes/no (case-insensitive).
  bool get_bool(const std::string& key, bool fallback) const;

  /// All keys, sorted (for help/debug output).
  std::vector<std::string> keys() const;
  std::size_t size() const noexcept { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace smac::util
