#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace smac::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

const char* log_level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  const std::scoped_lock lock(g_mutex);
  std::cerr << "[" << log_level_tag(level) << "] " << message << '\n';
}

}  // namespace smac::util
