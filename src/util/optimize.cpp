#include "util/optimize.hpp"

#include <cmath>
#include <stdexcept>

namespace smac::util {

MaximizeResult golden_section_max(const std::function<double(double)>& f,
                                  double lo, double hi, double x_tol,
                                  int max_iterations) {
  if (!(lo <= hi)) throw std::invalid_argument("golden_section_max: lo > hi");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  MaximizeResult res;
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  res.evaluations = 2;
  for (int it = 0; it < max_iterations && (b - a) > x_tol; ++it) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    }
    ++res.evaluations;
  }
  res.converged = (b - a) <= x_tol;
  if (f1 >= f2) {
    res.x = x1;
    res.fx = f1;
  } else {
    res.x = x2;
    res.fx = f2;
  }
  return res;
}

IntMaximizeResult ternary_int_max(const std::function<double(std::int64_t)>& f,
                                  std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("ternary_int_max: lo > hi");
  IntMaximizeResult res;
  while (hi - lo > 2) {
    const std::int64_t m1 = lo + (hi - lo) / 3;
    const std::int64_t m2 = hi - (hi - lo) / 3;
    const double f1 = f(m1);
    const double f2 = f(m2);
    res.evaluations += 2;
    if (f1 < f2) {
      lo = m1 + 1;
    } else {
      hi = m2 - 1;
    }
  }
  res.x = lo;
  res.fx = f(lo);
  ++res.evaluations;
  for (std::int64_t x = lo + 1; x <= hi; ++x) {
    const double fx = f(x);
    ++res.evaluations;
    if (fx > res.fx) {
      res.fx = fx;
      res.x = x;
    }
  }
  return res;
}

IntMaximizeResult exhaustive_int_max(
    const std::function<double(std::int64_t)>& f, std::int64_t lo,
    std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("exhaustive_int_max: lo > hi");
  IntMaximizeResult res;
  res.x = lo;
  res.fx = f(lo);
  ++res.evaluations;
  for (std::int64_t x = lo + 1; x <= hi; ++x) {
    const double fx = f(x);
    ++res.evaluations;
    if (fx > res.fx) {
      res.fx = fx;
      res.x = x;
    }
  }
  return res;
}

IntMaximizeResult hill_climb_int_max(
    const std::function<double(std::int64_t)>& f, std::int64_t start,
    std::int64_t lo, std::int64_t hi) {
  if (lo > hi || start < lo || start > hi) {
    throw std::invalid_argument("hill_climb_int_max: bad range/start");
  }
  IntMaximizeResult res;
  std::int64_t x = start;
  double fx = f(x);
  ++res.evaluations;

  // Right-search: climb while strictly improving.
  while (x < hi) {
    const double fnext = f(x + 1);
    ++res.evaluations;
    if (fnext > fx) {
      ++x;
      fx = fnext;
    } else {
      break;
    }
  }
  // Left-search only if right-search never moved (paper's §V.C structure).
  if (x == start) {
    while (x > lo) {
      const double fprev = f(x - 1);
      ++res.evaluations;
      if (fprev > fx) {
        --x;
        fx = fprev;
      } else {
        break;
      }
    }
  }
  res.x = x;
  res.fx = fx;
  return res;
}

}  // namespace smac::util
