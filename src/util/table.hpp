// Plain-text table rendering for benchmark / example output.
//
// Benches reproduce the paper's tables; this renders them in an aligned,
// monospace-friendly format so the harness output can be compared with the
// paper side by side.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace smac::util {

/// Aligned text table. Columns are sized to the widest cell; numeric cells
/// should be pre-formatted by the caller (see fmt_double below).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   n    Wc* (model)  Wc* (sim)
  ///   ---  -----------  ---------
  ///   5    76           75.6
  std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers.
std::string fmt_double(double v, int precision = 4);
std::string fmt_percent(double fraction, int precision = 2);

}  // namespace smac::util
