#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace smac::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width != header width");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 < header_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

}  // namespace smac::util
