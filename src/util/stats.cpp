#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/table.hpp"

namespace smac::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci_halfwidth(double z) const noexcept {
  if (n_ < 2) return 0.0;
  return z * stddev() / std::sqrt(static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  std::size_t idx;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else if (x >= hi_) {
    ++overflow_;
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
}

double Histogram::bin_lower(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0) {
      const double frac = (target - cum) / c;
      return bin_lower(i) + frac * width_;
    }
    cum += c;
  }
  return hi_;
}

double normal_quantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p outside (0,1)");
  }
  // Acklam's approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double jain_fairness(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 1.0;
  double s = 0.0;
  double s2 = 0.0;
  for (double x : xs) {
    s += x;
    s2 += x * x;
  }
  if (s2 == 0.0) return 1.0;
  return s * s / (static_cast<double>(xs.size()) * s2);
}

std::vector<MetricSummary> summarize_replications(
    const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& rows) {
  std::vector<RunningStats> acc(names.size());
  for (const auto& row : rows) {
    if (row.size() != names.size()) {
      throw std::invalid_argument(
          "summarize_replications: row width != metric count");
    }
    for (std::size_t m = 0; m < row.size(); ++m) acc[m].add(row[m]);
  }
  return summaries_from_stats(names, acc);
}

std::vector<MetricSummary> summaries_from_stats(
    const std::vector<std::string>& names,
    const std::vector<RunningStats>& acc) {
  if (acc.size() != names.size()) {
    throw std::invalid_argument(
        "summaries_from_stats: accumulator count != metric count");
  }
  std::vector<MetricSummary> out(names.size());
  for (std::size_t m = 0; m < names.size(); ++m) {
    out[m].name = names[m];
    out[m].count = acc[m].count();
    out[m].mean = acc[m].mean();
    out[m].stddev = acc[m].stddev();
    out[m].ci95 = acc[m].ci_halfwidth(1.96);
    out[m].min = acc[m].empty() ? 0.0 : acc[m].min();
    out[m].max = acc[m].empty() ? 0.0 : acc[m].max();
  }
  return out;
}

std::string format_metric_summaries(const std::vector<MetricSummary>& metrics,
                                    int precision) {
  TextTable table(
      {"metric", "n", "mean", "stddev", "95% CI +/-", "min", "max"});
  for (const auto& m : metrics) {
    table.add_row({m.name, std::to_string(m.count),
                   fmt_double(m.mean, precision),
                   fmt_double(m.stddev, precision),
                   fmt_double(m.ci95, precision), fmt_double(m.min, precision),
                   fmt_double(m.max, precision)});
  }
  return table.to_string();
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance_of(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

}  // namespace smac::util
