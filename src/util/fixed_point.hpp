// Damped fixed-point iteration for vector-valued maps.
//
// The heterogeneous Bianchi model couples 2n unknowns (τ_i, p_i) through
// τ_i = f(W_i, p_i) and p_i = 1 − Π_{j≠i}(1 − τ_j). Eliminating τ leaves a
// fixed point p = F(p) which damped iteration solves robustly for every
// profile we have encountered; damping guards against the oscillation that
// plain Picard iteration exhibits at small contention windows.
#pragma once

#include <functional>
#include <vector>

namespace smac::util {

struct FixedPointOptions {
  double damping = 0.5;       ///< x' = (1-d)·F(x) + d·x, d ∈ [0,1)
  double tolerance = 1e-12;   ///< max-norm of the update step
  int max_iterations = 10000;
};

struct FixedPointResult {
  std::vector<double> x;  ///< solution estimate
  int iterations = 0;
  double residual = 0.0;  ///< final max-norm step size
  bool converged = false;
};

/// Iterates x ← (1−d)·F(x) + d·x from `x0` until the max-norm step is
/// below tolerance. F must map a size-n vector to a size-n vector.
FixedPointResult solve_fixed_point(
    const std::function<std::vector<double>(const std::vector<double>&)>& F,
    std::vector<double> x0, const FixedPointOptions& opts = {});

}  // namespace smac::util
