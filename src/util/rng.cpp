#include "util/rng.hpp"

#include <cmath>

namespace smac::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion guarantees a non-zero xoshiro state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) noexcept {
  // 1 - uniform01() is in (0, 1], keeping the log argument positive.
  return -std::log(1.0 - uniform01()) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform01();
    while (product > limit) {
      ++k;
      product *= uniform01();
    }
    return k;
  }
  // Normal approximation with continuity correction (Box-Muller).
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double gauss =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double value = mean + std::sqrt(mean) * gauss + 0.5;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      (void)next();
    }
  }
  state_ = acc;
}

Rng Rng::split() noexcept {
  Rng child = *this;
  jump();
  return child;
}

}  // namespace smac::util
