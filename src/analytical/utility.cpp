#include "analytical/utility.hpp"

#include <cmath>
#include <stdexcept>

#include "analytical/throughput.hpp"
#include "util/root_finding.hpp"

namespace smac::analytical {

std::vector<double> utility_rates(const NetworkState& state,
                                  const phy::Parameters& params,
                                  phy::AccessMode mode) {
  if (state.tau.size() != state.p.size() || state.tau.empty()) {
    throw std::invalid_argument("utility_rates: malformed network state");
  }
  const ChannelMetrics m = channel_metrics(state.tau, params, mode);
  const double delivered = 1.0 - params.packet_error_rate;
  std::vector<double> u(state.tau.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = state.tau[i] *
           ((1.0 - state.p[i]) * delivered * params.gain - params.cost) /
           m.t_slot_us;
  }
  return u;
}

double homogeneous_utility_rate(double w, int n, const phy::Parameters& params,
                                phy::AccessMode mode) {
  const NetworkState state = solve_network_homogeneous(
      w, n, params.max_backoff_stage, params.packet_error_rate);
  return utility_rates(state, params, mode).front();
}

double homogeneous_stage_utility(double w, int n,
                                 const phy::Parameters& params,
                                 phy::AccessMode mode) {
  return homogeneous_utility_rate(w, n, params, mode) *
         params.stage_duration_s * 1e6;
}

double homogeneous_discounted_utility(double w, int n,
                                      const phy::Parameters& params,
                                      phy::AccessMode mode) {
  return homogeneous_stage_utility(w, n, params, mode) /
         (1.0 - params.discount);
}

double normalized_global_payoff(double w, int n, const phy::Parameters& params,
                                phy::AccessMode mode) {
  // U_global/C with U_global = n·u·T/(1−δ) and C = g·T/(σ(1−δ)):
  // the T and (1−δ) factors cancel, leaving n·u·σ/g.
  const double u = homogeneous_utility_rate(w, n, params, mode);
  return static_cast<double>(n) * u * params.sigma_us / params.gain;
}

double lemma3_q(double tau, int n, const phy::Parameters& params,
                phy::AccessMode mode) {
  const phy::SlotTimes t = params.slot_times(mode);
  const double idle = std::pow(1.0 - tau, n);
  return idle * t.sigma_us - (n * tau + idle) * t.tc_us + t.tc_us;
}

std::optional<double> optimal_tau_continuous(int n,
                                             const phy::Parameters& params,
                                             phy::AccessMode mode) {
  if (n < 2) return std::nullopt;  // a single node has no interior optimum
  auto q = [&](double tau) { return lemma3_q(tau, n, params, mode); };
  // Q(0) = σ > 0, Q(1) = −(n−1)·T_c < 0: a sign change always exists.
  const auto root = util::brent(q, 0.0, 1.0, {1e-15, 1e-12, 300});
  if (!root || !root->converged) return std::nullopt;
  return root->x;
}

std::optional<double> optimal_window_continuous(int n,
                                                const phy::Parameters& params,
                                                phy::AccessMode mode) {
  const auto tau = optimal_tau_continuous(n, params, mode);
  if (!tau) return std::nullopt;
  return window_for_tau(*tau, n, params.max_backoff_stage);
}

}  // namespace smac::analytical
