#include "analytical/fixed_point_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "analytical/backoff_chain.hpp"
#include "analytical/batch_solver.hpp"
#include "util/root_finding.hpp"

namespace smac::analytical {

namespace {

/// p_i = 1 − Π_{j≠i}(1 − τ_j), all i, via prefix/suffix products: O(n),
/// and exact even when some τ_j → 1 (no division by (1 − τ_i)).
std::vector<double> collision_probabilities(const std::vector<double>& tau) {
  const std::size_t n = tau.size();
  std::vector<double> prefix(n + 1, 1.0);
  std::vector<double> suffix(n + 1, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] * (1.0 - tau[i]);
  }
  for (std::size_t i = n; i-- > 0;) {
    suffix[i] = suffix[i + 1] * (1.0 - tau[i]);
  }
  std::vector<double> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = 1.0 - prefix[i] * suffix[i + 1];
    p[i] = std::clamp(p[i], 0.0, 1.0);
  }
  return p;
}

/// One damped-iteration rung on the *full* per-node system (reference
/// kernel) starting from `tau0`; returns the raw fixed-point result.
util::FixedPointResult damped_rung(const std::vector<int>& w, int max_stage,
                                   double per, std::vector<double> tau0,
                                   double damping, double tolerance,
                                   int max_iterations) {
  const std::size_t n = w.size();
  // Fixed point over τ alone; p is recomputed from τ inside the map. The
  // chain escalates on collisions *or* channel corruption.
  auto F = [&](const std::vector<double>& tau) {
    const std::vector<double> p = collision_probabilities(tau);
    std::vector<double> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double fail = 1.0 - (1.0 - p[i]) * (1.0 - per);
      next[i] = transmission_probability(w[i], fail, max_stage);
    }
    return next;
  };
  util::FixedPointOptions fp;
  fp.damping = damping;
  fp.tolerance = tolerance;
  fp.max_iterations = max_iterations;
  return util::solve_fixed_point(F, std::move(tau0), fp);
}

/// Clamps every entry into [0, 1] and replaces non-finite values by 0, so
/// a failed solve can never leak NaN/Inf into utilities downstream.
void sanitize(std::vector<double>& xs) {
  for (double& x : xs) {
    if (!std::isfinite(x)) x = 0.0;
    x = std::clamp(x, 0.0, 1.0);
  }
}

NetworkState state_from(util::FixedPointResult r) {
  NetworkState state;
  state.tau = std::move(r.x);
  sanitize(state.tau);
  state.p = collision_probabilities(state.tau);
  state.converged = r.converged;
  state.iterations = r.iterations;
  state.residual = r.residual;
  return state;
}

bool validate_inputs(const std::vector<int>& w, int max_stage, double per) {
  const bool windows_valid =
      std::all_of(w.begin(), w.end(), [](int wi) { return wi >= 1; });
  return !w.empty() && windows_valid && max_stage >= 0 && per >= 0.0 &&
         per < 1.0;
}

}  // namespace

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kDegraded: return "degraded";
    case SolveStatus::kFailed: return "failed";
  }
  return "unknown";
}

ClassProfile classify_profile(const std::vector<int>& w) {
  ClassProfile classes;
  classes.window = w;
  std::sort(classes.window.begin(), classes.window.end());
  classes.window.erase(
      std::unique(classes.window.begin(), classes.window.end()),
      classes.window.end());
  classes.multiplicity.assign(classes.window.size(), 0);
  classes.class_of.resize(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    const auto it = std::lower_bound(classes.window.begin(),
                                     classes.window.end(), w[i]);
    const auto c =
        static_cast<std::int32_t>(it - classes.window.begin());
    classes.class_of[i] = c;
    ++classes.multiplicity[static_cast<std::size_t>(c)];
  }
  return classes;
}

NetworkState expand_classes(const NetworkState& class_state,
                            const ClassProfile& classes) {
  NetworkState state;
  state.tau.resize(classes.node_count());
  state.p.resize(classes.node_count());
  for (std::size_t i = 0; i < classes.node_count(); ++i) {
    const auto c = static_cast<std::size_t>(classes.class_of[i]);
    state.tau[i] = class_state.tau[c];
    state.p[i] = class_state.p[c];
  }
  state.converged = class_state.converged;
  state.iterations = class_state.iterations;
  state.residual = class_state.residual;
  return state;
}

TrySolveResult try_solve_classes(const ClassProfile& classes, int max_stage,
                                 const SolverOptions& opts,
                                 double packet_error_rate) {
  // A batch of one: the lockstep kernel in batch_solver.cpp is the single
  // implementation of the retry ladder, so the sequential and batched
  // entry points cannot drift apart (the bitwise-identity contract of
  // try_solve_classes_batch is trivially true for this call).
  ClassProfileInstance instance;
  instance.classes = classes;
  instance.max_stage = max_stage;
  instance.packet_error_rate = packet_error_rate;
  instance.opts = opts;
  std::vector<TrySolveResult> results =
      try_solve_classes_batch({&instance, 1});
  return std::move(results.front());
}

TrySolveResult try_solve_network(const std::vector<int>& w, int max_stage,
                                 const SolverOptions& opts,
                                 double packet_error_rate) {
  if (!validate_inputs(w, max_stage, packet_error_rate)) {
    TrySolveResult out;
    out.diagnostics.status = SolveStatus::kFailed;
    out.diagnostics.method = "invalid";
    return out;
  }
  const ClassProfile classes = classify_profile(w);
  TrySolveResult collapsed =
      try_solve_classes(classes, max_stage, opts, packet_error_rate);
  TrySolveResult out;
  out.state = expand_classes(collapsed.state, classes);
  out.diagnostics = collapsed.diagnostics;
  return out;
}

TrySolveResult try_solve_network_full(const std::vector<int>& w,
                                      int max_stage,
                                      const SolverOptions& opts,
                                      double packet_error_rate) {
  TrySolveResult out;
  if (!validate_inputs(w, max_stage, packet_error_rate)) {
    out.diagnostics.status = SolveStatus::kFailed;
    out.diagnostics.method = "invalid";
    return out;
  }
  const double per = packet_error_rate;

  std::vector<double> cold(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    cold[i] = transmission_probability(w[i], 0.0, max_stage);
  }
  std::vector<double> hot(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    hot[i] = transmission_probability(w[i], 0.9, max_stage);
  }
  std::vector<double> warm = opts.initial_tau;
  if (warm.size() != w.size() ||
      std::any_of(warm.begin(), warm.end(),
                  [](double t) { return !std::isfinite(t); })) {
    warm.clear();
  }
  for (double& t : warm) t = std::clamp(t, 0.0, 1.0);

  // Retry ladder: the base attempt, then escalated damping on the same
  // start, then a heavily damped restart from a high-collision point.
  struct Rung {
    const char* method;
    const std::vector<double>* start;
    double damping;
    int iteration_scale;
  };
  std::vector<Rung> ladder;
  if (!warm.empty()) ladder.push_back({"warm", &warm, opts.damping, 1});
  ladder.push_back({"damped", &cold, opts.damping, 1});
  ladder.push_back({"redamped", &cold, std::max(opts.damping, 0.85), 2});
  ladder.push_back({"restart", &hot, std::max(opts.damping, 0.95), 2});

  NetworkState best;
  best.residual = std::numeric_limits<double>::infinity();
  const char* best_method = "damped";
  int total_iterations = 0;
  int retries = 0;
  for (const Rung& rung : ladder) {
    util::FixedPointResult r =
        damped_rung(w, max_stage, per, *rung.start, rung.damping,
                    opts.tolerance, opts.max_iterations * rung.iteration_scale);
    total_iterations += r.iterations;
    NetworkState state = state_from(std::move(r));
    if (state.converged || state.residual < best.residual) {
      best = std::move(state);
      best_method = rung.method;
    }
    if (best.converged) break;
    ++retries;
  }

  // Last rung: a homogeneous profile has an exact scalar fallback.
  if (!best.converged &&
      std::all_of(w.begin(), w.end(), [&](int wi) { return wi == w[0]; })) {
    const TryTauResult tau = try_homogeneous_tau(
        static_cast<double>(w[0]), static_cast<int>(w.size()), max_stage, per);
    total_iterations += tau.diagnostics.iterations;
    if (usable(tau.diagnostics.status)) {
      best.tau.assign(w.size(), tau.tau);
      best.p = collision_probabilities(best.tau);
      best.converged = tau.diagnostics.status == SolveStatus::kConverged;
      best.residual = tau.diagnostics.residual;
      best_method = "bisection";
    }
  }

  out.diagnostics.iterations = total_iterations;
  out.diagnostics.retries = retries;
  out.diagnostics.residual = best.residual;
  out.diagnostics.method = best_method;
  out.diagnostics.status = best.converged              ? SolveStatus::kConverged
                           : best.residual <= kDegradedResidual
                               ? SolveStatus::kDegraded
                               : SolveStatus::kFailed;
  best.converged = out.diagnostics.status == SolveStatus::kConverged;
  out.state = std::move(best);
  return out;
}

NetworkState solve_network(const std::vector<int>& w, int max_stage,
                           const SolverOptions& opts,
                           double packet_error_rate) {
  if (w.empty()) throw std::invalid_argument("solve_network: empty profile");
  for (int wi : w) {
    if (wi < 1) throw std::invalid_argument("solve_network: window < 1");
  }
  if (packet_error_rate < 0.0 || packet_error_rate >= 1.0) {
    throw std::invalid_argument("solve_network: PER outside [0,1)");
  }
  return try_solve_network(w, max_stage, opts, packet_error_rate).state;
}

TryTauResult try_homogeneous_tau(double w, int n, int max_stage,
                                 double packet_error_rate) {
  TryTauResult out;
  if (n < 1 || !(w >= 1.0) || max_stage < 0 || packet_error_rate < 0.0 ||
      packet_error_rate >= 1.0) {
    out.diagnostics.status = SolveStatus::kFailed;
    out.diagnostics.method = "invalid";
    return out;
  }
  const double per = packet_error_rate;
  if (n == 1) {
    out.tau = transmission_probability_cont(w, per, max_stage);
    out.diagnostics.method = "closed-form";
    return out;
  }

  // Root of h(τ) = τ − τ(W, fail(τ)); h(0) < 0, h(1) >= 0.
  auto h = [&](double tau) {
    const double p = 1.0 - std::pow(1.0 - tau, n - 1);
    const double fail = 1.0 - (1.0 - p) * (1.0 - per);
    return tau - transmission_probability_cont(w, fail, max_stage);
  };
  if (h(1.0) == 0.0) {  // degenerate W = 1, m = 0 case
    out.tau = 1.0;
    out.diagnostics.method = "closed-form";
    return out;
  }
  const auto root = util::brent(h, 0.0, 1.0, {1e-15, 1e-15, 300});
  if (root && root->converged) {
    out.tau = root->x;
    out.diagnostics.iterations = root->iterations;
    out.diagnostics.residual = std::abs(root->fx);
    out.diagnostics.method = "brent";
    return out;
  }
  // Fallback rung: bisection cannot be fooled by the interpolation steps
  // and the bracket [0, 1] always holds a sign change.
  out.diagnostics.retries = 1;
  if (root) out.diagnostics.iterations = root->iterations;
  const auto bis = util::bisect(h, 0.0, 1.0, {1e-15, 1e-15, 300});
  if (bis) {
    out.tau = std::clamp(bis->x, 0.0, 1.0);
    out.diagnostics.iterations += bis->iterations;
    out.diagnostics.residual = std::abs(bis->fx);
    out.diagnostics.method = "bisection";
    out.diagnostics.status = bis->converged ? SolveStatus::kConverged
                             : out.diagnostics.residual <= kDegradedResidual
                                 ? SolveStatus::kDegraded
                                 : SolveStatus::kFailed;
    return out;
  }
  out.diagnostics.status = SolveStatus::kFailed;
  out.diagnostics.method = "bisection";
  return out;
}

double homogeneous_tau(double w, int n, int max_stage,
                       double packet_error_rate) {
  if (n < 1) throw std::invalid_argument("homogeneous_tau: n < 1");
  if (!(w >= 1.0)) throw std::invalid_argument("homogeneous_tau: w < 1");
  if (packet_error_rate < 0.0 || packet_error_rate >= 1.0) {
    throw std::invalid_argument("homogeneous_tau: PER outside [0,1)");
  }
  const TryTauResult r = try_homogeneous_tau(w, n, max_stage,
                                             packet_error_rate);
  if (r.diagnostics.status == SolveStatus::kFailed) {
    throw std::runtime_error("homogeneous_tau: root finding failed");
  }
  return r.tau;
}

NetworkState solve_network_homogeneous(double w, int n, int max_stage,
                                       double packet_error_rate) {
  const double tau = homogeneous_tau(w, n, max_stage, packet_error_rate);
  const double p =
      n == 1 ? 0.0 : 1.0 - std::pow(1.0 - tau, n - 1);
  NetworkState state;
  state.tau.assign(static_cast<std::size_t>(n), tau);
  state.p.assign(static_cast<std::size_t>(n), p);
  state.converged = true;
  state.iterations = 0;
  state.residual = 0.0;
  return state;
}

double window_for_tau(double tau_target, int n, int max_stage) {
  if (!(tau_target > 0.0) || !(tau_target <= 1.0)) {
    throw std::invalid_argument("window_for_tau: tau_target outside (0,1]");
  }
  // τ(w) is strictly decreasing in w; check the left edge first.
  if (homogeneous_tau(1.0, n, max_stage) <= tau_target) return 1.0;

  double hi = 2.0;
  while (homogeneous_tau(hi, n, max_stage) > tau_target) {
    hi *= 2.0;
    if (hi > kWindowForTauCap) {
      // No window up to the cap reaches a τ this small: return the
      // documented clamp instead of aborting the caller's sweep — the cap
      // window is the closest achievable approximation from below.
      return kWindowForTauCap;
    }
  }
  auto f = [&](double w) { return homogeneous_tau(w, n, max_stage) - tau_target; };
  const auto root = util::brent(f, hi / 2.0, hi, {1e-9, 1e-14, 300});
  if (!root) {
    throw std::runtime_error("window_for_tau: bracketing failed");
  }
  return root->x;
}

}  // namespace smac::analytical
