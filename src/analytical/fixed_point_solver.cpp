#include "analytical/fixed_point_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "analytical/backoff_chain.hpp"
#include "util/root_finding.hpp"

namespace smac::analytical {

namespace {

/// x^e for integer e >= 0 by binary exponentiation: O(log e) multiplies
/// with a deterministic operation order (std::pow(double, double) would
/// work but routes through exp/log on some libms).
double ipow(double x, int e) {
  double result = 1.0;
  while (e > 0) {
    if (e & 1) result *= x;
    x *= x;
    e >>= 1;
  }
  return result;
}

/// p_i = 1 − Π_{j≠i}(1 − τ_j), all i, via prefix/suffix products: O(n),
/// and exact even when some τ_j → 1 (no division by (1 − τ_i)).
std::vector<double> collision_probabilities(const std::vector<double>& tau) {
  const std::size_t n = tau.size();
  std::vector<double> prefix(n + 1, 1.0);
  std::vector<double> suffix(n + 1, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] * (1.0 - tau[i]);
  }
  for (std::size_t i = n; i-- > 0;) {
    suffix[i] = suffix[i + 1] * (1.0 - tau[i]);
  }
  std::vector<double> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = 1.0 - prefix[i] * suffix[i + 1];
    p[i] = std::clamp(p[i], 0.0, 1.0);
  }
  return p;
}

/// Class-space collision probabilities,
///   p_c = 1 − (1 − τ_c)^(m_c − 1) · Π_{c'≠c} (1 − τ_{c'})^{m_{c'}},
/// via prefix/suffix products over the per-class factors
/// g_c = (1 − τ_c)^{m_c}: O(k + Σ log m_c), no division (exact at τ → 1).
std::vector<double> class_collision_probabilities(
    const std::vector<double>& tau, const std::vector<int>& multiplicity) {
  const std::size_t k = tau.size();
  std::vector<double> prefix(k + 1, 1.0);
  std::vector<double> suffix(k + 1, 1.0);
  for (std::size_t c = 0; c < k; ++c) {
    prefix[c + 1] = prefix[c] * ipow(1.0 - tau[c], multiplicity[c]);
  }
  for (std::size_t c = k; c-- > 0;) {
    suffix[c] = suffix[c + 1] * ipow(1.0 - tau[c], multiplicity[c]);
  }
  std::vector<double> p(k);
  for (std::size_t c = 0; c < k; ++c) {
    const double own = ipow(1.0 - tau[c], multiplicity[c] - 1);
    p[c] = 1.0 - own * prefix[c] * suffix[c + 1];
    p[c] = std::clamp(p[c], 0.0, 1.0);
  }
  return p;
}

/// One damped-iteration rung on the *full* per-node system (reference
/// kernel) starting from `tau0`; returns the raw fixed-point result.
util::FixedPointResult damped_rung(const std::vector<int>& w, int max_stage,
                                   double per, std::vector<double> tau0,
                                   double damping, double tolerance,
                                   int max_iterations) {
  const std::size_t n = w.size();
  // Fixed point over τ alone; p is recomputed from τ inside the map. The
  // chain escalates on collisions *or* channel corruption.
  auto F = [&](const std::vector<double>& tau) {
    const std::vector<double> p = collision_probabilities(tau);
    std::vector<double> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double fail = 1.0 - (1.0 - p[i]) * (1.0 - per);
      next[i] = transmission_probability(w[i], fail, max_stage);
    }
    return next;
  };
  util::FixedPointOptions fp;
  fp.damping = damping;
  fp.tolerance = tolerance;
  fp.max_iterations = max_iterations;
  return util::solve_fixed_point(F, std::move(tau0), fp);
}

/// One damped-iteration rung on the collapsed k-class system. Same map as
/// damped_rung — nodes of a class are exchangeable, so iterating one
/// representative per class visits exactly the class-symmetric iterates of
/// the full system (up to per-iteration rounding).
util::FixedPointResult class_damped_rung(const ClassProfile& classes,
                                         int max_stage, double per,
                                         std::vector<double> tau0,
                                         double damping, double tolerance,
                                         int max_iterations) {
  const std::size_t k = classes.class_count();
  auto F = [&](const std::vector<double>& tau) {
    const std::vector<double> p =
        class_collision_probabilities(tau, classes.multiplicity);
    std::vector<double> next(k);
    for (std::size_t c = 0; c < k; ++c) {
      const double fail = 1.0 - (1.0 - p[c]) * (1.0 - per);
      next[c] = transmission_probability(classes.window[c], fail, max_stage);
    }
    return next;
  };
  util::FixedPointOptions fp;
  fp.damping = damping;
  fp.tolerance = tolerance;
  fp.max_iterations = max_iterations;
  return util::solve_fixed_point(F, std::move(tau0), fp);
}

/// Clamps every entry into [0, 1] and replaces non-finite values by 0, so
/// a failed solve can never leak NaN/Inf into utilities downstream.
void sanitize(std::vector<double>& xs) {
  for (double& x : xs) {
    if (!std::isfinite(x)) x = 0.0;
    x = std::clamp(x, 0.0, 1.0);
  }
}

NetworkState state_from(util::FixedPointResult r) {
  NetworkState state;
  state.tau = std::move(r.x);
  sanitize(state.tau);
  state.p = collision_probabilities(state.tau);
  state.converged = r.converged;
  state.iterations = r.iterations;
  state.residual = r.residual;
  return state;
}

NetworkState class_state_from(util::FixedPointResult r,
                              const std::vector<int>& multiplicity) {
  NetworkState state;
  state.tau = std::move(r.x);
  sanitize(state.tau);
  state.p = class_collision_probabilities(state.tau, multiplicity);
  state.converged = r.converged;
  state.iterations = r.iterations;
  state.residual = r.residual;
  return state;
}

bool validate_inputs(const std::vector<int>& w, int max_stage, double per) {
  const bool windows_valid =
      std::all_of(w.begin(), w.end(), [](int wi) { return wi >= 1; });
  return !w.empty() && windows_valid && max_stage >= 0 && per >= 0.0 &&
         per < 1.0;
}

/// Collapses a caller warm start into class space: accepts per-class
/// (size k, used as-is) or per-node (size n, class-averaged — the mean is
/// invariant under node permutations of a class-consistent hint). Any
/// other size, or non-finite entries, disqualifies the warm rung.
std::vector<double> collapse_initial_tau(const std::vector<double>& initial,
                                         const ClassProfile& classes) {
  const std::size_t k = classes.class_count();
  std::vector<double> tau0;
  if (initial.size() == k) {
    tau0 = initial;
  } else if (initial.size() == classes.node_count()) {
    tau0.assign(k, 0.0);
    for (std::size_t i = 0; i < initial.size(); ++i) {
      tau0[static_cast<std::size_t>(classes.class_of[i])] += initial[i];
    }
    for (std::size_t c = 0; c < k; ++c) {
      tau0[c] /= static_cast<double>(classes.multiplicity[c]);
    }
  } else {
    return {};
  }
  for (const double t : tau0) {
    if (!std::isfinite(t)) return {};
  }
  for (double& t : tau0) t = std::clamp(t, 0.0, 1.0);
  return tau0;
}

}  // namespace

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kDegraded: return "degraded";
    case SolveStatus::kFailed: return "failed";
  }
  return "unknown";
}

ClassProfile classify_profile(const std::vector<int>& w) {
  ClassProfile classes;
  classes.window = w;
  std::sort(classes.window.begin(), classes.window.end());
  classes.window.erase(
      std::unique(classes.window.begin(), classes.window.end()),
      classes.window.end());
  classes.multiplicity.assign(classes.window.size(), 0);
  classes.class_of.resize(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    const auto it = std::lower_bound(classes.window.begin(),
                                     classes.window.end(), w[i]);
    const auto c =
        static_cast<std::int32_t>(it - classes.window.begin());
    classes.class_of[i] = c;
    ++classes.multiplicity[static_cast<std::size_t>(c)];
  }
  return classes;
}

NetworkState expand_classes(const NetworkState& class_state,
                            const ClassProfile& classes) {
  NetworkState state;
  state.tau.resize(classes.node_count());
  state.p.resize(classes.node_count());
  for (std::size_t i = 0; i < classes.node_count(); ++i) {
    const auto c = static_cast<std::size_t>(classes.class_of[i]);
    state.tau[i] = class_state.tau[c];
    state.p[i] = class_state.p[c];
  }
  state.converged = class_state.converged;
  state.iterations = class_state.iterations;
  state.residual = class_state.residual;
  return state;
}

TrySolveResult try_solve_classes(const ClassProfile& classes, int max_stage,
                                 const SolverOptions& opts,
                                 double packet_error_rate) {
  TrySolveResult out;
  const std::size_t k = classes.class_count();
  const double per = packet_error_rate;
  const int n = static_cast<int>(classes.node_count());

  // k = 1: the profile is homogeneous — the whole system is one scalar
  // root problem, solved by the Brent/bisection ladder at machine
  // precision regardless of the caller's iteration budget.
  if (k == 1) {
    const TryTauResult tau = try_homogeneous_tau(
        static_cast<double>(classes.window[0]), n, max_stage, per);
    if (usable(tau.diagnostics.status)) {
      out.state.tau.assign(1, tau.tau);
      out.state.p = class_collision_probabilities(out.state.tau,
                                                  classes.multiplicity);
      out.state.converged =
          tau.diagnostics.status == SolveStatus::kConverged;
      out.state.iterations = tau.diagnostics.iterations;
      out.state.residual = tau.diagnostics.residual;
      out.diagnostics = tau.diagnostics;
      return out;
    }
    // Unusable scalar solve (cannot happen for validated inputs, but the
    // damped ladder below still applies): fall through.
  }

  // Canonical starts. "seeded" warm-starts every class from the
  // homogeneous mean-window fixed point — a pure function of the class
  // system (mean taken in canonical class order), so it is safe to share
  // through caches and cheap (one scalar Brent solve). It lands close
  // enough to the heterogeneous fixed point that starved iteration
  // budgets (fuzz fixtures at max_iterations = 60) converge where the
  // cold start only degrades.
  std::vector<double> cold(k);
  for (std::size_t c = 0; c < k; ++c) {
    cold[c] = transmission_probability(classes.window[c], 0.0, max_stage);
  }
  std::vector<double> hot(k);
  for (std::size_t c = 0; c < k; ++c) {
    hot[c] = transmission_probability(classes.window[c], 0.9, max_stage);
  }
  std::vector<double> seeded;
  {
    double mean_window = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      mean_window += static_cast<double>(classes.multiplicity[c]) *
                     static_cast<double>(classes.window[c]);
    }
    mean_window /= static_cast<double>(n);
    const TryTauResult hom =
        try_homogeneous_tau(mean_window, n, max_stage, per);
    if (usable(hom.diagnostics.status)) {
      const double p_hom =
          n == 1 ? 0.0 : 1.0 - ipow(1.0 - hom.tau, n - 1);
      const double fail_hom = 1.0 - (1.0 - p_hom) * (1.0 - per);
      seeded.resize(k);
      for (std::size_t c = 0; c < k; ++c) {
        seeded[c] =
            transmission_probability(classes.window[c], fail_hom, max_stage);
      }
    }
  }
  const std::vector<double> warm =
      opts.initial_tau.empty()
          ? std::vector<double>{}
          : collapse_initial_tau(opts.initial_tau, classes);

  // Retry ladder: the caller's warm start (if any), the seeded start, the
  // cold base attempt, then escalated damping and a heavily damped
  // restart from a high-collision point.
  struct Rung {
    const char* method;
    const std::vector<double>* start;
    double damping;
    int iteration_scale;
  };
  std::vector<Rung> ladder;
  if (!warm.empty()) ladder.push_back({"warm", &warm, opts.damping, 1});
  if (!seeded.empty()) ladder.push_back({"seeded", &seeded, opts.damping, 1});
  ladder.push_back({"damped", &cold, opts.damping, 1});
  ladder.push_back({"redamped", &cold, std::max(opts.damping, 0.85), 2});
  ladder.push_back({"restart", &hot, std::max(opts.damping, 0.95), 2});

  NetworkState best;
  best.residual = std::numeric_limits<double>::infinity();
  const char* best_method = "damped";
  int total_iterations = 0;
  int retries = 0;
  for (const Rung& rung : ladder) {
    util::FixedPointResult r = class_damped_rung(
        classes, max_stage, per, *rung.start, rung.damping, opts.tolerance,
        opts.max_iterations * rung.iteration_scale);
    total_iterations += r.iterations;
    NetworkState state = class_state_from(std::move(r), classes.multiplicity);
    if (state.converged || state.residual < best.residual) {
      best = std::move(state);
      best_method = rung.method;
    }
    if (best.converged) break;
    ++retries;
  }

  // Polish rung: every earlier rung restarts from a fixed point-agnostic
  // start, discarding the progress of its predecessors. Continuing from
  // the best iterate instead compounds that progress — under starved
  // iteration budgets (fuzz fixtures at max_iterations = 60) this is what
  // turns near-miss kDegraded outcomes into kConverged.
  if (!best.converged && std::isfinite(best.residual) &&
      best.tau.size() == k) {
    util::FixedPointResult r =
        class_damped_rung(classes, max_stage, per, best.tau, opts.damping,
                          opts.tolerance, opts.max_iterations * 2);
    total_iterations += r.iterations;
    ++retries;
    NetworkState state = class_state_from(std::move(r), classes.multiplicity);
    if (state.converged || state.residual < best.residual) {
      best = std::move(state);
      best_method = "polish";
    }
  }

  out.diagnostics.iterations = total_iterations;
  out.diagnostics.retries = retries;
  out.diagnostics.residual = best.residual;
  out.diagnostics.method = best_method;
  out.diagnostics.status = best.converged              ? SolveStatus::kConverged
                           : best.residual <= kDegradedResidual
                               ? SolveStatus::kDegraded
                               : SolveStatus::kFailed;
  best.converged = out.diagnostics.status == SolveStatus::kConverged;
  out.state = std::move(best);
  return out;
}

TrySolveResult try_solve_network(const std::vector<int>& w, int max_stage,
                                 const SolverOptions& opts,
                                 double packet_error_rate) {
  if (!validate_inputs(w, max_stage, packet_error_rate)) {
    TrySolveResult out;
    out.diagnostics.status = SolveStatus::kFailed;
    out.diagnostics.method = "invalid";
    return out;
  }
  const ClassProfile classes = classify_profile(w);
  TrySolveResult collapsed =
      try_solve_classes(classes, max_stage, opts, packet_error_rate);
  TrySolveResult out;
  out.state = expand_classes(collapsed.state, classes);
  out.diagnostics = collapsed.diagnostics;
  return out;
}

TrySolveResult try_solve_network_full(const std::vector<int>& w,
                                      int max_stage,
                                      const SolverOptions& opts,
                                      double packet_error_rate) {
  TrySolveResult out;
  if (!validate_inputs(w, max_stage, packet_error_rate)) {
    out.diagnostics.status = SolveStatus::kFailed;
    out.diagnostics.method = "invalid";
    return out;
  }
  const double per = packet_error_rate;

  std::vector<double> cold(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    cold[i] = transmission_probability(w[i], 0.0, max_stage);
  }
  std::vector<double> hot(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    hot[i] = transmission_probability(w[i], 0.9, max_stage);
  }
  std::vector<double> warm = opts.initial_tau;
  if (warm.size() != w.size() ||
      std::any_of(warm.begin(), warm.end(),
                  [](double t) { return !std::isfinite(t); })) {
    warm.clear();
  }
  for (double& t : warm) t = std::clamp(t, 0.0, 1.0);

  // Retry ladder: the base attempt, then escalated damping on the same
  // start, then a heavily damped restart from a high-collision point.
  struct Rung {
    const char* method;
    const std::vector<double>* start;
    double damping;
    int iteration_scale;
  };
  std::vector<Rung> ladder;
  if (!warm.empty()) ladder.push_back({"warm", &warm, opts.damping, 1});
  ladder.push_back({"damped", &cold, opts.damping, 1});
  ladder.push_back({"redamped", &cold, std::max(opts.damping, 0.85), 2});
  ladder.push_back({"restart", &hot, std::max(opts.damping, 0.95), 2});

  NetworkState best;
  best.residual = std::numeric_limits<double>::infinity();
  const char* best_method = "damped";
  int total_iterations = 0;
  int retries = 0;
  for (const Rung& rung : ladder) {
    util::FixedPointResult r =
        damped_rung(w, max_stage, per, *rung.start, rung.damping,
                    opts.tolerance, opts.max_iterations * rung.iteration_scale);
    total_iterations += r.iterations;
    NetworkState state = state_from(std::move(r));
    if (state.converged || state.residual < best.residual) {
      best = std::move(state);
      best_method = rung.method;
    }
    if (best.converged) break;
    ++retries;
  }

  // Last rung: a homogeneous profile has an exact scalar fallback.
  if (!best.converged &&
      std::all_of(w.begin(), w.end(), [&](int wi) { return wi == w[0]; })) {
    const TryTauResult tau = try_homogeneous_tau(
        static_cast<double>(w[0]), static_cast<int>(w.size()), max_stage, per);
    total_iterations += tau.diagnostics.iterations;
    if (usable(tau.diagnostics.status)) {
      best.tau.assign(w.size(), tau.tau);
      best.p = collision_probabilities(best.tau);
      best.converged = tau.diagnostics.status == SolveStatus::kConverged;
      best.residual = tau.diagnostics.residual;
      best_method = "bisection";
    }
  }

  out.diagnostics.iterations = total_iterations;
  out.diagnostics.retries = retries;
  out.diagnostics.residual = best.residual;
  out.diagnostics.method = best_method;
  out.diagnostics.status = best.converged              ? SolveStatus::kConverged
                           : best.residual <= kDegradedResidual
                               ? SolveStatus::kDegraded
                               : SolveStatus::kFailed;
  best.converged = out.diagnostics.status == SolveStatus::kConverged;
  out.state = std::move(best);
  return out;
}

NetworkState solve_network(const std::vector<int>& w, int max_stage,
                           const SolverOptions& opts,
                           double packet_error_rate) {
  if (w.empty()) throw std::invalid_argument("solve_network: empty profile");
  for (int wi : w) {
    if (wi < 1) throw std::invalid_argument("solve_network: window < 1");
  }
  if (packet_error_rate < 0.0 || packet_error_rate >= 1.0) {
    throw std::invalid_argument("solve_network: PER outside [0,1)");
  }
  return try_solve_network(w, max_stage, opts, packet_error_rate).state;
}

TryTauResult try_homogeneous_tau(double w, int n, int max_stage,
                                 double packet_error_rate) {
  TryTauResult out;
  if (n < 1 || !(w >= 1.0) || max_stage < 0 || packet_error_rate < 0.0 ||
      packet_error_rate >= 1.0) {
    out.diagnostics.status = SolveStatus::kFailed;
    out.diagnostics.method = "invalid";
    return out;
  }
  const double per = packet_error_rate;
  if (n == 1) {
    out.tau = transmission_probability_cont(w, per, max_stage);
    out.diagnostics.method = "closed-form";
    return out;
  }

  // Root of h(τ) = τ − τ(W, fail(τ)); h(0) < 0, h(1) >= 0.
  auto h = [&](double tau) {
    const double p = 1.0 - std::pow(1.0 - tau, n - 1);
    const double fail = 1.0 - (1.0 - p) * (1.0 - per);
    return tau - transmission_probability_cont(w, fail, max_stage);
  };
  if (h(1.0) == 0.0) {  // degenerate W = 1, m = 0 case
    out.tau = 1.0;
    out.diagnostics.method = "closed-form";
    return out;
  }
  const auto root = util::brent(h, 0.0, 1.0, {1e-15, 1e-15, 300});
  if (root && root->converged) {
    out.tau = root->x;
    out.diagnostics.iterations = root->iterations;
    out.diagnostics.residual = std::abs(root->fx);
    out.diagnostics.method = "brent";
    return out;
  }
  // Fallback rung: bisection cannot be fooled by the interpolation steps
  // and the bracket [0, 1] always holds a sign change.
  out.diagnostics.retries = 1;
  if (root) out.diagnostics.iterations = root->iterations;
  const auto bis = util::bisect(h, 0.0, 1.0, {1e-15, 1e-15, 300});
  if (bis) {
    out.tau = std::clamp(bis->x, 0.0, 1.0);
    out.diagnostics.iterations += bis->iterations;
    out.diagnostics.residual = std::abs(bis->fx);
    out.diagnostics.method = "bisection";
    out.diagnostics.status = bis->converged ? SolveStatus::kConverged
                             : out.diagnostics.residual <= kDegradedResidual
                                 ? SolveStatus::kDegraded
                                 : SolveStatus::kFailed;
    return out;
  }
  out.diagnostics.status = SolveStatus::kFailed;
  out.diagnostics.method = "bisection";
  return out;
}

double homogeneous_tau(double w, int n, int max_stage,
                       double packet_error_rate) {
  if (n < 1) throw std::invalid_argument("homogeneous_tau: n < 1");
  if (!(w >= 1.0)) throw std::invalid_argument("homogeneous_tau: w < 1");
  if (packet_error_rate < 0.0 || packet_error_rate >= 1.0) {
    throw std::invalid_argument("homogeneous_tau: PER outside [0,1)");
  }
  const TryTauResult r = try_homogeneous_tau(w, n, max_stage,
                                             packet_error_rate);
  if (r.diagnostics.status == SolveStatus::kFailed) {
    throw std::runtime_error("homogeneous_tau: root finding failed");
  }
  return r.tau;
}

NetworkState solve_network_homogeneous(double w, int n, int max_stage,
                                       double packet_error_rate) {
  const double tau = homogeneous_tau(w, n, max_stage, packet_error_rate);
  const double p =
      n == 1 ? 0.0 : 1.0 - std::pow(1.0 - tau, n - 1);
  NetworkState state;
  state.tau.assign(static_cast<std::size_t>(n), tau);
  state.p.assign(static_cast<std::size_t>(n), p);
  state.converged = true;
  state.iterations = 0;
  state.residual = 0.0;
  return state;
}

double window_for_tau(double tau_target, int n, int max_stage) {
  if (!(tau_target > 0.0) || !(tau_target <= 1.0)) {
    throw std::invalid_argument("window_for_tau: tau_target outside (0,1]");
  }
  // τ(w) is strictly decreasing in w; check the left edge first.
  if (homogeneous_tau(1.0, n, max_stage) <= tau_target) return 1.0;

  double hi = 2.0;
  while (homogeneous_tau(hi, n, max_stage) > tau_target) {
    hi *= 2.0;
    if (hi > kWindowForTauCap) {
      // No window up to the cap reaches a τ this small: return the
      // documented clamp instead of aborting the caller's sweep — the cap
      // window is the closest achievable approximation from below.
      return kWindowForTauCap;
    }
  }
  auto f = [&](double w) { return homogeneous_tau(w, n, max_stage) - tau_target; };
  const auto root = util::brent(f, hi / 2.0, hi, {1e-9, 1e-14, 300});
  if (!root) {
    throw std::runtime_error("window_for_tau: bracketing failed");
  }
  return root->x;
}

}  // namespace smac::analytical
