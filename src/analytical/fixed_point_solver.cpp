#include "analytical/fixed_point_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analytical/backoff_chain.hpp"
#include "util/root_finding.hpp"

namespace smac::analytical {

namespace {

/// p_i = 1 − Π_{j≠i}(1 − τ_j), all i, via prefix/suffix products: O(n),
/// and exact even when some τ_j → 1 (no division by (1 − τ_i)).
std::vector<double> collision_probabilities(const std::vector<double>& tau) {
  const std::size_t n = tau.size();
  std::vector<double> prefix(n + 1, 1.0);
  std::vector<double> suffix(n + 1, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] * (1.0 - tau[i]);
  }
  for (std::size_t i = n; i-- > 0;) {
    suffix[i] = suffix[i + 1] * (1.0 - tau[i]);
  }
  std::vector<double> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = 1.0 - prefix[i] * suffix[i + 1];
    p[i] = std::clamp(p[i], 0.0, 1.0);
  }
  return p;
}

}  // namespace

NetworkState solve_network(const std::vector<int>& w, int max_stage,
                           const SolverOptions& opts,
                           double packet_error_rate) {
  if (w.empty()) throw std::invalid_argument("solve_network: empty profile");
  for (int wi : w) {
    if (wi < 1) throw std::invalid_argument("solve_network: window < 1");
  }
  if (packet_error_rate < 0.0 || packet_error_rate >= 1.0) {
    throw std::invalid_argument("solve_network: PER outside [0,1)");
  }
  const std::size_t n = w.size();
  const double per = packet_error_rate;

  // Fixed point over τ alone; p is recomputed from τ inside the map. The
  // chain escalates on collisions *or* channel corruption.
  auto F = [&](const std::vector<double>& tau) {
    const std::vector<double> p = collision_probabilities(tau);
    std::vector<double> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double fail = 1.0 - (1.0 - p[i]) * (1.0 - per);
      next[i] = transmission_probability(w[i], fail, max_stage);
    }
    return next;
  };

  std::vector<double> tau0(n);
  for (std::size_t i = 0; i < n; ++i) {
    tau0[i] = transmission_probability(w[i], 0.0, max_stage);
  }

  util::FixedPointOptions fp;
  fp.damping = opts.damping;
  fp.tolerance = opts.tolerance;
  fp.max_iterations = opts.max_iterations;
  util::FixedPointResult r = util::solve_fixed_point(F, std::move(tau0), fp);

  NetworkState state;
  state.tau = std::move(r.x);
  state.p = collision_probabilities(state.tau);
  state.converged = r.converged;
  state.iterations = r.iterations;
  state.residual = r.residual;
  return state;
}

double homogeneous_tau(double w, int n, int max_stage,
                       double packet_error_rate) {
  if (n < 1) throw std::invalid_argument("homogeneous_tau: n < 1");
  if (!(w >= 1.0)) throw std::invalid_argument("homogeneous_tau: w < 1");
  if (packet_error_rate < 0.0 || packet_error_rate >= 1.0) {
    throw std::invalid_argument("homogeneous_tau: PER outside [0,1)");
  }
  const double per = packet_error_rate;
  if (n == 1) return transmission_probability_cont(w, per, max_stage);

  // Root of h(τ) = τ − τ(W, fail(τ)); h(0) < 0, h(1) >= 0.
  auto h = [&](double tau) {
    const double p = 1.0 - std::pow(1.0 - tau, n - 1);
    const double fail = 1.0 - (1.0 - p) * (1.0 - per);
    return tau - transmission_probability_cont(w, fail, max_stage);
  };
  if (h(1.0) == 0.0) return 1.0;  // degenerate W = 1, m = 0 case
  const auto root = util::brent(h, 0.0, 1.0, {1e-15, 1e-15, 300});
  if (!root || !root->converged) {
    throw std::runtime_error("homogeneous_tau: root finding failed");
  }
  return root->x;
}

NetworkState solve_network_homogeneous(double w, int n, int max_stage,
                                       double packet_error_rate) {
  const double tau = homogeneous_tau(w, n, max_stage, packet_error_rate);
  const double p =
      n == 1 ? 0.0 : 1.0 - std::pow(1.0 - tau, n - 1);
  NetworkState state;
  state.tau.assign(static_cast<std::size_t>(n), tau);
  state.p.assign(static_cast<std::size_t>(n), p);
  state.converged = true;
  state.iterations = 0;
  state.residual = 0.0;
  return state;
}

double window_for_tau(double tau_target, int n, int max_stage) {
  if (!(tau_target > 0.0) || !(tau_target <= 1.0)) {
    throw std::invalid_argument("window_for_tau: tau_target outside (0,1]");
  }
  // τ(w) is strictly decreasing in w; check the left edge first.
  if (homogeneous_tau(1.0, n, max_stage) <= tau_target) return 1.0;

  double hi = 2.0;
  while (homogeneous_tau(hi, n, max_stage) > tau_target) {
    hi *= 2.0;
    if (hi > 1e9) {
      throw std::runtime_error("window_for_tau: no window reaches target tau");
    }
  }
  auto f = [&](double w) { return homogeneous_tau(w, n, max_stage) - tau_target; };
  const auto root = util::brent(f, hi / 2.0, hi, {1e-9, 1e-14, 300});
  if (!root) {
    throw std::runtime_error("window_for_tau: bracketing failed");
  }
  return root->x;
}

}  // namespace smac::analytical
