#include "analytical/throughput.hpp"

#include <stdexcept>

namespace smac::analytical {

ChannelMetrics channel_metrics(const std::vector<double>& tau,
                               const phy::Parameters& params,
                               phy::AccessMode mode) {
  if (tau.empty()) throw std::invalid_argument("channel_metrics: empty tau");
  const std::size_t n = tau.size();
  const phy::SlotTimes t = params.slot_times(mode);

  // Π(1−τ_j) and the per-node leave-one-out products.
  std::vector<double> prefix(n + 1, 1.0);
  std::vector<double> suffix(n + 1, 1.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] * (1.0 - tau[i]);
  for (std::size_t i = n; i-- > 0;) suffix[i] = suffix[i + 1] * (1.0 - tau[i]);
  const double all_idle = prefix[n];

  ChannelMetrics m;
  m.p_tr = 1.0 - all_idle;
  m.per_node_success.resize(n);
  double p_success_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    m.per_node_success[i] = tau[i] * prefix[i] * suffix[i + 1];
    p_success_total += m.per_node_success[i];
  }
  m.p_s = m.p_tr > 0.0 ? p_success_total / m.p_tr : 0.0;
  m.t_slot_us = (1.0 - m.p_tr) * t.sigma_us + p_success_total * t.ts_us +
                (m.p_tr - p_success_total) * t.tc_us;

  const double payload_us = params.payload_us();
  m.throughput = p_success_total * payload_us / m.t_slot_us;
  m.per_node_throughput.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.per_node_throughput[i] = m.per_node_success[i] * payload_us / m.t_slot_us;
  }
  return m;
}

ChannelMetrics homogeneous_channel_metrics(double w, int n,
                                           const phy::Parameters& params,
                                           phy::AccessMode mode) {
  const NetworkState state =
      solve_network_homogeneous(w, n, params.max_backoff_stage);
  return channel_metrics(state.tau, params, mode);
}

}  // namespace smac::analytical
