#include "analytical/backoff_chain.hpp"

#include <cmath>
#include <stdexcept>

namespace smac::analytical {

namespace {

/// Σ_{r=0}^{m-1} (2p)^r computed termwise: finite and continuous at the
/// closed form's removable singularity p = 1/2.
double geometric_sum_2p(double p, int m) noexcept {
  double sum = 0.0;
  double term = 1.0;
  for (int r = 0; r < m; ++r) {
    sum += term;
    term *= 2.0 * p;
  }
  return sum;
}

}  // namespace

double transmission_probability(int w, double p, int max_stage) {
  if (w < 1) throw std::invalid_argument("transmission_probability: w < 1");
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("transmission_probability: p outside [0,1]");
  }
  if (max_stage < 0) {
    throw std::invalid_argument("transmission_probability: max_stage < 0");
  }
  const double sum = geometric_sum_2p(p, max_stage);
  return 2.0 / (1.0 + w + p * static_cast<double>(w) * sum);
}

double transmission_probability_cont(double w, double p, int max_stage) {
  if (!(w >= 1.0)) {
    throw std::invalid_argument("transmission_probability_cont: w < 1");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("transmission_probability_cont: p outside [0,1]");
  }
  if (max_stage < 0) {
    throw std::invalid_argument("transmission_probability_cont: max_stage < 0");
  }
  const double sum = geometric_sum_2p(p, max_stage);
  return 2.0 / (1.0 + w + p * w * sum);
}

double transmission_probability_derivative_w(int w, double p, int max_stage) {
  const double tau = transmission_probability(w, p, max_stage);
  const double sum = geometric_sum_2p(p, max_stage);
  // 1/τ = (1 + W(1 + p·Σ))/2  ⇒  dτ/dW = −τ²(1 + p·Σ)/2.
  return -tau * tau * (1.0 + p * sum) / 2.0;
}

BackoffChain::BackoffChain(int w, double p, int max_stage)
    : w_(w), p_(p), m_(max_stage) {
  if (w < 1) throw std::invalid_argument("BackoffChain: w < 1");
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("BackoffChain: p outside [0,1)");
  }
  if (max_stage < 0) throw std::invalid_argument("BackoffChain: max_stage < 0");

  // Normalization: Σ_j q(j,0)·(W_j + 1)/2 = 1 with
  //   q(j,0) = p^j·q(0,0)            for j < m
  //   q(m,0) = p^m/(1−p)·q(0,0).
  double mass = 0.0;
  double pj = 1.0;
  for (int j = 0; j < m_; ++j) {
    mass += pj * (static_cast<double>(window_of_stage(j)) + 1.0) / 2.0;
    pj *= p_;
  }
  mass += pj / (1.0 - p_) *
          (static_cast<double>(window_of_stage(m_)) + 1.0) / 2.0;
  q00_ = 1.0 / mass;
  // τ = Σ_j q(j,0) = q(0,0)/(1−p).
  tau_ = q00_ / (1.0 - p_);
}

std::int64_t BackoffChain::window_of_stage(int j) const {
  if (j < 0) throw std::invalid_argument("window_of_stage: j < 0");
  const int stage = j > m_ ? m_ : j;
  return static_cast<std::int64_t>(w_) << stage;
}

double BackoffChain::stage_head(int j) const {
  if (j < 0 || j > m_) throw std::invalid_argument("stage_head: j outside [0,m]");
  if (j < m_) return std::pow(p_, j) * q00_;
  return std::pow(p_, m_) / (1.0 - p_) * q00_;
}

double BackoffChain::stationary(int j, int k) const {
  const auto wj = window_of_stage(j);
  if (k < 0 || k >= wj) {
    throw std::invalid_argument("stationary: k outside [0, W_j)");
  }
  // Within a stage the counter is uniform over its residual life:
  // q(j,k) = (W_j − k)/W_j · q(j,0).
  return (static_cast<double>(wj - k) / static_cast<double>(wj)) *
         stage_head(j);
}

double BackoffChain::total_mass() const {
  double mass = 0.0;
  for (int j = 0; j <= m_; ++j) {
    const auto wj = window_of_stage(j);
    for (std::int64_t k = 0; k < wj; ++k) {
      mass += stationary(j, static_cast<int>(k));
    }
  }
  return mass;
}

double BackoffChain::mean_counter() const {
  double acc = 0.0;
  for (int j = 0; j <= m_; ++j) {
    const auto wj = window_of_stage(j);
    for (std::int64_t k = 0; k < wj; ++k) {
      acc += static_cast<double>(k) * stationary(j, static_cast<int>(k));
    }
  }
  return acc;
}

}  // namespace smac::analytical
