// Thread-safe memoization of heterogeneous fixed-point solves.
//
// Equilibrium sweeps, repeated games, and tournaments revisit the same
// contention-window profiles thousands of times (TFT trajectories spend
// most stages on one of a handful of profiles). solve_network resolves
// each call from scratch; this cache keys the full TrySolveResult on
// (profile, max_stage, PER) — the generalization of the mutex-guarded
// homogeneous memo in game::StageGame — so concurrent tournament workers
// and repeated-game engines share solutions safely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "analytical/fixed_point_solver.hpp"

namespace smac::analytical {

/// Mutex-guarded memo over try_solve_network.
///
/// SolverOptions are fixed per cache instance (set at construction) and
/// deliberately excluded from the key: one cache serves one model
/// configuration, which is how StageGame uses it. Insertion stops at
/// `max_entries` (lookups still hit), bounding memory on adversarial
/// profile streams; the solver is deterministic, so a concurrent miss on
/// the same key recomputes the identical value.
class NetworkSolveCache {
 public:
  explicit NetworkSolveCache(SolverOptions opts = {},
                             std::size_t max_entries = 1 << 16);

  /// Cached equivalent of try_solve_network(w, max_stage, opts, per).
  TrySolveResult solve(const std::vector<int>& w, int max_stage,
                       double packet_error_rate) const;

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void clear();

 private:
  using Key = std::tuple<std::vector<int>, int, double>;

  SolverOptions opts_;
  std::size_t max_entries_;
  mutable std::mutex mutex_;
  mutable std::map<Key, TrySolveResult> cache_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace smac::analytical
