// Thread-safe memoization of heterogeneous fixed-point solves.
//
// Equilibrium sweeps, repeated games, and tournaments revisit the same
// contention-window profiles thousands of times (TFT trajectories spend
// most stages on one of a handful of profiles). solve_network resolves
// each call from scratch; this cache memoizes class-space solutions on
// the *canonical symmetry-class key* (sorted distinct windows +
// multiplicities, max_stage, PER) in a hashed container — so concurrent
// tournament workers and repeated-game engines share solutions safely,
// and every permutation of a solved profile is a hit (deviation scans
// that move the deviant's seat, tournament mixes in different orders).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "analytical/fixed_point_solver.hpp"

namespace smac::analytical {

/// Monotone counters of one cache's traffic, read in a single lock.
struct SolveCacheStats {
  std::size_t size = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Mutex-guarded memo over try_solve_classes, expanded per node on return.
///
/// SolverOptions are fixed per cache instance (set at construction) and
/// deliberately excluded from the key: one cache serves one model
/// configuration, which is how StageGame uses it. Any initial_tau warm
/// start in the options is stripped: cached values must be pure functions
/// of the key, or insert order under concurrency would make last-ulp bits
/// scheduling-dependent and break the bit-identical-at-any---jobs
/// contract. Insertion stops at `max_entries` (lookups still hit),
/// bounding memory on adversarial profile streams; the solver is
/// deterministic, so a concurrent miss on the same key recomputes the
/// identical value.
class NetworkSolveCache {
 public:
  explicit NetworkSolveCache(SolverOptions opts = {},
                             std::size_t max_entries = 1 << 16);

  /// Cached equivalent of try_solve_network(w, max_stage, opts, per) —
  /// bitwise equal to the direct call (both run the collapsed kernel on
  /// the canonical class system).
  TrySolveResult solve(const std::vector<int>& w, int max_stage,
                       double packet_error_rate) const;

  /// The SolverOptions every entry of this cache was (or will be) solved
  /// with — initial_tau already stripped.
  const SolverOptions& options() const noexcept { return opts_; }

  /// Class-space lookup for a batching layer: returns the cached
  /// *class-space* result (tau/p sized k — callers expand with their own
  /// ClassProfile), or nullopt on a miss. A hit counts `requests` hits
  /// (one per pending request the caller is answering from it); a miss
  /// counts nothing — the miss side of the tally happens in
  /// adopt_classes, mirroring solve()'s insert-time classification.
  std::optional<TrySolveResult> lookup_classes(const ClassProfile& classes,
                                               int max_stage,
                                               double packet_error_rate,
                                               std::uint64_t requests) const;

  /// Adopts an externally computed class-space result for the canonical
  /// key of `classes`. Tally mirrors what `requests` sequential solve()
  /// calls would have produced: if the key appeared while the caller was
  /// solving (a racing writer) all `requests` count as hits; otherwise
  /// one miss plus `requests − 1` hits, and the result is inserted
  /// (subject to max_entries). The result must come from the cache's own
  /// options() with no warm start, or cached values stop being pure
  /// functions of the key.
  void adopt_classes(const ClassProfile& classes, int max_stage,
                     double packet_error_rate, TrySolveResult collapsed,
                     std::uint64_t requests) const;

  /// Bumps the traffic counters without touching entries — for batching
  /// layers that answer requests outside the cache (e.g. warm-started
  /// solves that must not be inserted).
  void tally(std::uint64_t hits, std::uint64_t misses) const;

  /// Deterministic warm-start hint: the class tau of the cached usable
  /// entry with the same (multiplicity, max_stage, PER) and the smallest
  /// L1 window distance (lexicographically smallest window on ties).
  /// Scans the cache (O(size)); nullopt when nothing matches. Solutions
  /// started from a hint may differ from cold solves in the last ulp, so
  /// they must never be adopted back into the cache.
  std::optional<std::vector<double>> neighbor_hint(
      const ClassProfile& classes, int max_stage,
      double packet_error_rate) const;

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  SolveCacheStats stats() const;
  void clear();

 private:
  /// Canonical class key: (distinct windows asc, multiplicities,
  /// max_stage, PER). Profiles that are permutations of each other
  /// collapse to the same key; the per-call ClassProfile::class_of map
  /// carries the expansion back to the caller's node order.
  struct Key {
    std::vector<int> window;
    std::vector<int> multiplicity;
    int max_stage = 0;
    double packet_error_rate = 0.0;

    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  SolverOptions opts_;
  std::size_t max_entries_;
  mutable std::mutex mutex_;
  /// Values are *class-space* TrySolveResults (tau/p sized k, not n):
  /// compact, and one entry serves every permutation and every node
  /// count-preserving relabeling of the profile.
  mutable std::unordered_map<Key, TrySolveResult, KeyHash> cache_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace smac::analytical
