// Structure-of-arrays batch solver: many independent class-space solves in
// lockstep.
//
// Tournaments, deviation scans, and detection/reaction loops generate
// thousands of independent (class-profile, PER) instances per run; solving
// them one try_solve_classes call at a time leaves the whole retry ladder's
// bookkeeping (start vectors, rung transitions) on the critical path of
// every instance. try_solve_classes_batch instead advances every instance
// by one damped iteration per sweep over a contiguous arena: the
// prefix/suffix product inner loop runs back to back across instances,
// finished instances drop out via a convergence mask without
// desynchronizing the sweep, and rung start vectors are computed lazily on
// rung entry (a warm-started instance that converges on its warm rung
// never pays for the seeded start's scalar Brent solve).
//
// Contract: the batch result is **bitwise identical** to calling
// try_solve_classes on each instance in isolation — both paths run the
// same per-instance ladder state machine (this file is the single
// implementation; try_solve_classes is a batch of one), and no arithmetic
// ever crosses instances. Pinned over a seeded (n, k, PER, batch-size)
// grid by tests/analytical/batch_solver_test.cpp.
#pragma once

#include <span>
#include <vector>

#include "analytical/fixed_point_solver.hpp"

namespace smac::analytical {

/// One independent solve request: a class system plus its model knobs.
/// Same preconditions as try_solve_classes (non-empty classes, windows
/// >= 1, max_stage >= 0, PER in [0, 1)); opts.initial_tau is the
/// per-instance warm start (class- or node-sized, see SolverOptions).
struct ClassProfileInstance {
  ClassProfile classes;
  int max_stage = 0;
  double packet_error_rate = 0.0;
  SolverOptions opts;
};

/// Solves every instance and returns one TrySolveResult per instance, in
/// input order (class-space tau/p — use expand_classes for per-node
/// vectors). An empty span yields an empty vector.
std::vector<TrySolveResult> try_solve_classes_batch(
    std::span<const ClassProfileInstance> instances);

}  // namespace smac::analytical
