#include "analytical/solver_service.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <span>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "parallel/thread_pool.hpp"

namespace smac::analytical {

namespace {

bool valid_solve_inputs(const std::vector<int>& w, int max_stage,
                        double per) {
  const bool windows_valid =
      std::all_of(w.begin(), w.end(), [](int wi) { return wi >= 1; });
  return !w.empty() && windows_valid && max_stage >= 0 && per >= 0.0 &&
         per < 1.0;
}

bool valid_class_inputs(const ClassProfile& classes, int max_stage,
                        double per) {
  if (classes.window.empty() ||
      classes.window.size() != classes.multiplicity.size()) {
    return false;
  }
  for (std::size_t c = 0; c < classes.window.size(); ++c) {
    if (classes.window[c] < 1 || classes.multiplicity[c] < 1) return false;
    if (c > 0 && classes.window[c] <= classes.window[c - 1]) return false;
  }
  return max_stage >= 0 && per >= 0.0 && per < 1.0;
}

TrySolveResult expand_result(const TrySolveResult& collapsed,
                             const ClassProfile& classes) {
  TrySolveResult out;
  out.state = expand_classes(collapsed.state, classes);
  out.diagnostics = collapsed.diagnostics;
  return out;
}

}  // namespace

const TrySolveResult& SolverService::Ticket::result() const {
  if (request_ == nullptr) {
    throw std::logic_error("SolverService::Ticket: empty ticket");
  }
  // Pending in the queue: our drain fulfills it. In another thread's
  // in-flight drain: our drain blocks on the drain mutex until that one
  // finishes, at which point done is set.
  while (!request_->done.load(std::memory_order_acquire)) {
    service_->drain();
  }
  return request_->result;
}

SolverService::SolverService(Options options)
    : options_(std::move(options)),
      cache_(options_.solver, options_.max_cache_entries) {
  if (options_.chunk_size == 0) options_.chunk_size = 1;
}

SolverService::Ticket SolverService::submit(std::vector<int> w, int max_stage,
                                            double packet_error_rate) const {
  auto request = std::make_shared<Ticket::Request>();
  request->w = std::move(w);
  request->max_stage = max_stage;
  request->packet_error_rate = packet_error_rate;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    pending_.push_back(request);
  }
  return Ticket(this, std::move(request));
}

SolverService::Ticket SolverService::submit_classes(
    ClassProfile classes, int max_stage, double packet_error_rate) const {
  auto request = std::make_shared<Ticket::Request>();
  request->classes = std::move(classes);
  request->class_level = true;
  request->max_stage = max_stage;
  request->packet_error_rate = packet_error_rate;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    pending_.push_back(request);
  }
  return Ticket(this, std::move(request));
}

void SolverService::drain() const {
  std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  std::vector<std::shared_ptr<Ticket::Request>> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    batch.swap(pending_);
  }
  if (batch.empty()) return;

  // Group requests onto canonical symmetry-class keys in deterministic
  // (ordered-map) order, so tally and adoption order are a function of
  // the request set alone — never of submission interleaving.
  struct Pending {
    Ticket::Request* request;
    ClassProfile classes;
  };
  using GroupKey = std::tuple<std::vector<int>, std::vector<int>, int, double>;
  std::map<GroupKey, std::vector<Pending>> groups;
  for (const auto& request : batch) {
    const bool valid =
        request->class_level
            ? valid_class_inputs(request->classes, request->max_stage,
                                 request->packet_error_rate)
            : valid_solve_inputs(request->w, request->max_stage,
                                 request->packet_error_rate);
    if (!valid) {
      // Same path as NetworkSolveCache::solve on invalid inputs: one
      // miss, no entry, the solver's own kFailed/"invalid" result.
      cache_.tally(0, 1);
      request->result =
          try_solve_network(request->w, request->max_stage, cache_.options(),
                            request->packet_error_rate);
      request->done.store(true, std::memory_order_release);
      continue;
    }
    ClassProfile classes = request->class_level
                               ? request->classes
                               : classify_profile(request->w);
    GroupKey key{classes.window, classes.multiplicity, request->max_stage,
                 request->packet_error_rate};
    groups[std::move(key)].push_back({request.get(), std::move(classes)});
  }

  // Answer cached keys, collect the misses.
  struct Miss {
    std::vector<Pending>* requests;
    bool hinted = false;
  };
  std::vector<ClassProfileInstance> instances;
  std::vector<Miss> misses;
  for (auto& [key, requests] : groups) {
    const Pending& head = requests.front();
    if (const auto cached = cache_.lookup_classes(
            head.classes, head.request->max_stage,
            head.request->packet_error_rate, requests.size())) {
      for (Pending& pending : requests) {
        pending.request->result = pending.request->class_level
                                      ? *cached
                                      : expand_result(*cached, pending.classes);
        pending.request->done.store(true, std::memory_order_release);
      }
      continue;
    }
    ClassProfileInstance instance;
    instance.classes = head.classes;
    instance.max_stage = head.request->max_stage;
    instance.packet_error_rate = head.request->packet_error_rate;
    instance.opts = cache_.options();
    Miss miss{&requests, false};
    if (options_.warm_start_neighbors) {
      if (auto hint = cache_.neighbor_hint(head.classes, instance.max_stage,
                                           instance.packet_error_rate)) {
        instance.opts.initial_tau = std::move(*hint);
        miss.hinted = true;
      }
    }
    instances.push_back(std::move(instance));
    misses.push_back(miss);
  }

  // Solve the distinct misses in lockstep, chunked across the pool when
  // one is configured. Instances are independent, so the chunking (and
  // the pool itself) cannot change a single bit of any result.
  std::vector<TrySolveResult> solved(instances.size());
  if (options_.pool != nullptr && instances.size() > 1) {
    std::vector<std::future<void>> chunks;
    for (std::size_t begin = 0; begin < instances.size();
         begin += options_.chunk_size) {
      const std::size_t length =
          std::min(options_.chunk_size, instances.size() - begin);
      chunks.push_back(options_.pool->submit([&, begin, length] {
        std::vector<TrySolveResult> part = try_solve_classes_batch(
            {instances.data() + begin, length});
        std::move(part.begin(), part.end(), solved.begin() + begin);
      }));
    }
    for (auto& chunk : chunks) chunk.get();
  } else if (!instances.empty()) {
    solved = try_solve_classes_batch(instances);
  }

  // Adopt and fulfill in the same deterministic group order.
  for (std::size_t m = 0; m < misses.size(); ++m) {
    std::vector<Pending>& requests = *misses[m].requests;
    const Pending& head = requests.front();
    if (misses[m].hinted) {
      // Warm-started: answer the requests but keep the cache pure —
      // tally as a sequential run would have (first request misses, the
      // duplicates hit).
      cache_.tally(requests.size() - 1, 1);
    } else {
      cache_.adopt_classes(head.classes, head.request->max_stage,
                           head.request->packet_error_rate, solved[m],
                           requests.size());
    }
    for (Pending& pending : requests) {
      pending.request->result =
          pending.request->class_level
              ? solved[m]
              : expand_result(solved[m], pending.classes);
      pending.request->done.store(true, std::memory_order_release);
    }
  }
}

TrySolveResult SolverService::solve(const std::vector<int>& w, int max_stage,
                                    double packet_error_rate) const {
  return cache_.solve(w, max_stage, packet_error_rate);
}

std::size_t SolverService::pending() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return pending_.size();
}

}  // namespace smac::analytical
